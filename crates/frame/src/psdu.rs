//! PSDU construction: a compact MAC-style header, FCS concatenation, and
//! the PHY DATA-field bit assembly (SERVICE + PSDU + tail + pad) with
//! frame-synchronous scrambling.
//!
//! This is the "concatenation of FEC in the packet construction" half that
//! sits above the codec: every MPDU carries a CRC-32 FCS so the receiver
//! can attribute packet errors exactly, and the DATA field framing follows
//! IEEE 802.11-2012 §18.3.5.2–18.3.5.4.

use mimonet_fec::bits::bytes_to_bits;
use mimonet_fec::crc::{append_fcs, check_fcs};
use mimonet_fec::scrambler::Scrambler;

use crate::mcs::Mcs;

/// Number of SERVICE bits prepended to the PSDU (all zero before
/// scrambling; the first 7 reveal the scrambler seed to the receiver).
pub const SERVICE_BITS: usize = 16;
/// Number of encoder tail bits.
pub const TAIL_BITS: usize = 6;
/// Length of the MAC-style header in octets.
pub const HEADER_LEN: usize = 18;
/// FCS length in octets.
pub const FCS_LEN: usize = 4;

/// Frame types carried in the header's first octet.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameType {
    /// User data.
    Data,
    /// Acknowledgement.
    Ack,
    /// Network beacon / probe.
    Beacon,
}

impl FrameType {
    fn to_code(self) -> u8 {
        match self {
            FrameType::Data => 0x08,
            FrameType::Ack => 0x1D,
            FrameType::Beacon => 0x80,
        }
    }

    fn from_code(code: u8) -> Option<Self> {
        match code {
            0x08 => Some(FrameType::Data),
            0x1D => Some(FrameType::Ack),
            0x80 => Some(FrameType::Beacon),
            _ => None,
        }
    }
}

/// Compact MAC header: type, duration, destination, source, sequence.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MacHeader {
    /// Frame type.
    pub frame_type: FrameType,
    /// Duration/ID field (microseconds, NAV-style).
    pub duration: u16,
    /// Destination address.
    pub dst: [u8; 6],
    /// Source address.
    pub src: [u8; 6],
    /// Sequence number (12 bits used).
    pub seq: u16,
}

impl MacHeader {
    /// Serializes to [`HEADER_LEN`] bytes.
    pub fn to_bytes(&self) -> [u8; HEADER_LEN] {
        let mut out = [0u8; HEADER_LEN];
        out[0] = self.frame_type.to_code();
        out[1] = 0; // flags, unused
        out[2..4].copy_from_slice(&self.duration.to_le_bytes());
        out[4..10].copy_from_slice(&self.dst);
        out[10..16].copy_from_slice(&self.src);
        out[16..18].copy_from_slice(&(self.seq & 0x0FFF).to_le_bytes());
        out
    }

    /// Parses from bytes; `None` on short input or unknown type code.
    pub fn from_bytes(b: &[u8]) -> Option<Self> {
        if b.len() < HEADER_LEN {
            return None;
        }
        Some(Self {
            frame_type: FrameType::from_code(b[0])?,
            duration: u16::from_le_bytes([b[2], b[3]]),
            dst: b[4..10].try_into().unwrap(),
            src: b[10..16].try_into().unwrap(),
            seq: u16::from_le_bytes([b[16], b[17]]) & 0x0FFF,
        })
    }
}

/// A MAC protocol data unit: header + payload (FCS added on serialization).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Mpdu {
    /// The MAC header.
    pub header: MacHeader,
    /// The payload octets.
    pub payload: Vec<u8>,
}

impl Mpdu {
    /// Builds a data MPDU between two addresses.
    pub fn data(src: [u8; 6], dst: [u8; 6], seq: u16, payload: Vec<u8>) -> Self {
        Self {
            header: MacHeader {
                frame_type: FrameType::Data,
                duration: 0,
                dst,
                src,
                seq,
            },
            payload,
        }
    }

    /// Serializes header + payload + FCS — the PSDU handed to the PHY.
    pub fn to_psdu(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_LEN + self.payload.len() + FCS_LEN);
        out.extend_from_slice(&self.header.to_bytes());
        out.extend_from_slice(&self.payload);
        append_fcs(&mut out);
        out
    }

    /// Parses and FCS-checks a received PSDU.
    pub fn from_psdu(psdu: &[u8]) -> Option<Self> {
        let inner = check_fcs(psdu)?;
        let header = MacHeader::from_bytes(inner)?;
        Some(Self {
            header,
            payload: inner[HEADER_LEN..].to_vec(),
        })
    }

    /// PSDU length in octets for this MPDU.
    pub fn psdu_len(&self) -> usize {
        HEADER_LEN + self.payload.len() + FCS_LEN
    }
}

/// Assembles the pre-scrambling DATA-field bit stream for a PSDU:
/// `SERVICE (16 zeros) | PSDU bits | 6 tail zeros | pad zeros`, padded to a
/// whole number of OFDM symbols for `mcs`.
pub fn assemble_data_bits(psdu: &[u8], mcs: &Mcs) -> Vec<u8> {
    let psdu_bits = bytes_to_bits(psdu);
    let pad = mcs.pad_bits(psdu_bits.len());
    let mut bits = Vec::with_capacity(SERVICE_BITS + psdu_bits.len() + TAIL_BITS + pad);
    bits.extend_from_slice(&[0u8; SERVICE_BITS]);
    bits.extend_from_slice(&psdu_bits);
    bits.extend(std::iter::repeat_n(0u8, TAIL_BITS + pad));
    bits
}

/// Scrambles an assembled DATA field and re-zeroes the six tail bits
/// (§18.3.5.3: the tail must be zero *after* scrambling so the encoder
/// terminates).
pub fn scramble_data_bits(bits: &mut [u8], psdu_len_octets: usize, seed: u8) {
    let mut s = Scrambler::new(seed);
    s.scramble_in_place(bits);
    let tail_start = SERVICE_BITS + psdu_len_octets * 8;
    for b in &mut bits[tail_start..tail_start + TAIL_BITS] {
        *b = 0;
    }
}

/// Descrambles a received DATA field (seed recovered from the first seven
/// bits, which descramble the all-zero SERVICE prefix) and extracts the
/// PSDU octets. Returns `None` when the seed is unrecoverable.
pub fn descramble_data_bits(bits: &[u8], psdu_len_octets: usize) -> Option<Vec<u8>> {
    let mut scratch = Vec::new();
    let mut psdu = Vec::new();
    descramble_data_bits_into(bits, psdu_len_octets, &mut scratch, &mut psdu).then_some(psdu)
}

/// [`descramble_data_bits`] into caller-owned vectors (cleared first;
/// capacity is reused) — the allocation-free path for the RX FEC stage.
/// `scratch` holds the descrambled bit prefix; `psdu` receives the
/// extracted octets. Returns `false` (leaving `psdu` empty) when the seed
/// is unrecoverable or the input is too short.
pub fn descramble_data_bits_into(
    bits: &[u8],
    psdu_len_octets: usize,
    scratch: &mut Vec<u8>,
    psdu: &mut Vec<u8>,
) -> bool {
    psdu.clear();
    let used = SERVICE_BITS + psdu_len_octets * 8;
    if bits.len() < used {
        return false;
    }
    let first7: [u8; 7] = bits[..7].try_into().unwrap();
    let Some(seed) = mimonet_fec::scrambler::recover_seed(&first7) else {
        return false;
    };
    // The keystream XOR is per-bit, so descrambling only the prefix the
    // PSDU occupies yields the same octets as descrambling everything.
    scratch.clear();
    scratch.extend_from_slice(&bits[..used]);
    let mut s = Scrambler::new(seed);
    s.scramble_in_place(scratch);
    psdu.reserve(psdu_len_octets);
    for chunk in scratch[SERVICE_BITS..used].chunks_exact(8) {
        let mut b = 0u8;
        for (k, &bit) in chunk.iter().enumerate() {
            b |= bit << k;
        }
        psdu.push(b);
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(x: u8) -> [u8; 6] {
        [x; 6]
    }

    #[test]
    fn header_roundtrip() {
        let h = MacHeader {
            frame_type: FrameType::Beacon,
            duration: 314,
            dst: addr(0xFF),
            src: addr(0x42),
            seq: 0x0ABC,
        };
        assert_eq!(MacHeader::from_bytes(&h.to_bytes()), Some(h));
    }

    #[test]
    fn header_rejects_garbage() {
        assert_eq!(MacHeader::from_bytes(&[0u8; 17]), None);
        let mut b = [0u8; 18];
        b[0] = 0x77; // unknown type code
        assert_eq!(MacHeader::from_bytes(&b), None);
    }

    #[test]
    fn seq_is_twelve_bits() {
        let h = MacHeader {
            frame_type: FrameType::Data,
            duration: 0,
            dst: addr(1),
            src: addr(2),
            seq: 0xFFFF,
        };
        assert_eq!(MacHeader::from_bytes(&h.to_bytes()).unwrap().seq, 0x0FFF);
    }

    #[test]
    fn mpdu_psdu_roundtrip() {
        let m = Mpdu::data(addr(1), addr(2), 7, b"the quick brown fox".to_vec());
        let psdu = m.to_psdu();
        assert_eq!(psdu.len(), m.psdu_len());
        assert_eq!(Mpdu::from_psdu(&psdu), Some(m));
    }

    #[test]
    fn corrupted_psdu_fails_fcs() {
        let m = Mpdu::data(addr(1), addr(2), 7, vec![0xAA; 64]);
        let mut psdu = m.to_psdu();
        psdu[20] ^= 0x10;
        assert_eq!(Mpdu::from_psdu(&psdu), None);
    }

    #[test]
    fn data_bits_assembly_length() {
        let mcs = Mcs::from_index(8).unwrap(); // 52 data bits/symbol
        let psdu = vec![0x5Au8; 25]; // 200 bits
        let bits = assemble_data_bits(&psdu, &mcs);
        // 16 + 200 + 6 = 222 → 5 symbols of 52 = 260 bits.
        assert_eq!(bits.len(), 260);
        assert_eq!(&bits[..16], &[0u8; 16]);
        // Tail + pad are zero.
        assert!(bits[216..].iter().all(|&b| b == 0));
    }

    #[test]
    fn scramble_descramble_recovers_psdu() {
        let mcs = Mcs::from_index(3).unwrap();
        let psdu: Vec<u8> = (0..100u8).collect();
        let mut bits = assemble_data_bits(&psdu, &mcs);
        scramble_data_bits(&mut bits, psdu.len(), 0x35);
        // Tail bits must be zero after scrambling.
        let tail_start = SERVICE_BITS + psdu.len() * 8;
        assert!(bits[tail_start..tail_start + TAIL_BITS]
            .iter()
            .all(|&b| b == 0));
        let got = descramble_data_bits(&bits, psdu.len()).unwrap();
        assert_eq!(got, psdu);
    }

    #[test]
    fn every_seed_is_recoverable() {
        let mcs = Mcs::from_index(0).unwrap();
        let psdu = vec![0u8; 10];
        for seed in 1..0x80u8 {
            let mut bits = assemble_data_bits(&psdu, &mcs);
            scramble_data_bits(&mut bits, psdu.len(), seed);
            assert_eq!(
                descramble_data_bits(&bits, psdu.len()),
                Some(psdu.clone()),
                "seed {seed:#x}"
            );
        }
    }

    #[test]
    fn descramble_rejects_short_input() {
        assert_eq!(descramble_data_bits(&[0u8; 10], 10), None);
    }

    #[test]
    fn descramble_into_matches_and_reuses() {
        let mcs = Mcs::from_index(3).unwrap();
        let mut scratch = Vec::new();
        let mut psdu = Vec::new();
        for seed in [0x11u8, 0x35, 0x7F] {
            let want: Vec<u8> = (0..80u8).map(|b| b.wrapping_mul(seed)).collect();
            let mut bits = assemble_data_bits(&want, &mcs);
            scramble_data_bits(&mut bits, want.len(), seed);
            assert!(descramble_data_bits_into(
                &bits,
                want.len(),
                &mut scratch,
                &mut psdu
            ));
            assert_eq!(psdu, want, "seed {seed:#x}");
            assert_eq!(descramble_data_bits(&bits, want.len()), Some(want));
        }
        // Short input clears the output and reports failure.
        assert!(!descramble_data_bits_into(
            &[0u8; 10],
            10,
            &mut scratch,
            &mut psdu
        ));
        assert!(psdu.is_empty());
    }
}
