//! SIGNAL fields: the legacy L-SIG (802.11-2012 §18.3.4) and the
//! two-symbol HT-SIG (802.11n §20.3.9.4.3).
//!
//! These carry the rate/length information the receiver needs before it can
//! demodulate the HT-Data portion. Bit layouts are faithful to the standard
//! (including L-SIG even parity and the HT-SIG CRC-8), so a decoding failure
//! here is a genuine error event that the PER instrumentation counts.

// Index-based loops here are the clearer expression of the math
// (matrix/carrier indexing); silence the iterator-style suggestion.
#![allow(clippy::needless_range_loop)]
use crate::mcs::Mcs;

/// Errors when decoding SIGNAL fields.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SigError {
    /// Wrong number of bits supplied.
    Length { got: usize, want: usize },
    /// L-SIG parity check failed.
    Parity,
    /// Unknown legacy RATE code.
    BadRate(u8),
    /// LENGTH field is zero or otherwise out of range.
    BadLength(u16),
    /// HT-SIG CRC-8 mismatch.
    Crc,
    /// HT-SIG carries an MCS outside the supported 0–15 range.
    BadMcs(u8),
    /// Non-zero tail bits (decoder state corruption upstream).
    Tail,
}

impl std::fmt::Display for SigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SigError::Length { got, want } => {
                write!(f, "SIGNAL field has {got} bits, expected {want}")
            }
            SigError::Parity => write!(f, "L-SIG parity check failed"),
            SigError::BadRate(r) => write!(f, "unknown legacy RATE code {r:#06b}"),
            SigError::BadLength(l) => write!(f, "invalid LENGTH {l}"),
            SigError::Crc => write!(f, "HT-SIG CRC-8 mismatch"),
            SigError::BadMcs(m) => write!(f, "unsupported MCS {m} in HT-SIG"),
            SigError::Tail => write!(f, "non-zero SIGNAL tail bits"),
        }
    }
}

impl std::error::Error for SigError {}

/// Legacy rates and their 4-bit RATE codes (Table 18-6), 20 MHz.
pub const LEGACY_RATE_CODES: [(u8, f64); 8] = [
    (0b1101, 6.0),
    (0b1111, 9.0),
    (0b0101, 12.0),
    (0b0111, 18.0),
    (0b1001, 24.0),
    (0b1011, 36.0),
    (0b0001, 48.0),
    (0b0011, 54.0),
];

/// Decoded L-SIG contents.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LSig {
    /// Legacy rate in Mb/s (6–54).
    pub rate_mbps: f64,
    /// LENGTH field in octets (1..=4095).
    pub length: u16,
}

impl LSig {
    /// Number of bits in the encoded field.
    pub const BITS: usize = 24;

    /// Creates an L-SIG announcing `length` octets at `rate_mbps`.
    ///
    /// # Panics
    ///
    /// Panics on a rate not in the legacy set or a length outside 1..=4095.
    pub fn new(rate_mbps: f64, length: u16) -> Self {
        assert!(
            LEGACY_RATE_CODES.iter().any(|&(_, r)| r == rate_mbps),
            "{rate_mbps} Mb/s is not a legacy rate"
        );
        assert!(
            (1..=4095).contains(&length),
            "L-SIG LENGTH {length} out of range"
        );
        Self { rate_mbps, length }
    }

    /// Encodes to 24 bits in transmission order.
    pub fn encode(&self) -> Vec<u8> {
        let code = LEGACY_RATE_CODES
            .iter()
            .find(|&&(_, r)| r == self.rate_mbps)
            .map(|&(c, _)| c)
            .expect("validated in new()");
        let mut bits = Vec::with_capacity(Self::BITS);
        // RATE: 4 bits, transmitted MSB (R1) first = bit 3 of the code.
        for i in (0..4).rev() {
            bits.push((code >> i) & 1);
        }
        bits.push(0); // reserved
                      // LENGTH: 12 bits, LSB first.
        for i in 0..12 {
            bits.push(((self.length >> i) & 1) as u8);
        }
        // Even parity over bits 0..17.
        let parity: u8 = bits.iter().sum::<u8>() & 1;
        bits.push(parity);
        bits.extend_from_slice(&[0; 6]); // tail
        bits
    }

    /// Decodes 24 received bits.
    pub fn decode(bits: &[u8]) -> Result<Self, SigError> {
        if bits.len() != Self::BITS {
            return Err(SigError::Length {
                got: bits.len(),
                want: Self::BITS,
            });
        }
        let parity: u8 = bits[..18].iter().sum::<u8>() & 1;
        if parity != 0 {
            return Err(SigError::Parity);
        }
        let code = (bits[0] << 3) | (bits[1] << 2) | (bits[2] << 1) | bits[3];
        let rate = LEGACY_RATE_CODES
            .iter()
            .find(|&&(c, _)| c == code)
            .map(|&(_, r)| r)
            .ok_or(SigError::BadRate(code))?;
        let mut length = 0u16;
        for i in 0..12 {
            length |= (bits[5 + i] as u16) << i;
        }
        if length == 0 {
            return Err(SigError::BadLength(length));
        }
        if bits[18..].iter().any(|&b| b != 0) {
            return Err(SigError::Tail);
        }
        Ok(Self {
            rate_mbps: rate,
            length,
        })
    }
}

/// Decoded HT-SIG contents (the subset this transceiver uses; remaining
/// standard fields are carried but fixed).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HtSig {
    /// HT MCS index (0–15 supported).
    pub mcs: u8,
    /// PSDU length in octets (0..=65535).
    pub length: u16,
    /// Smoothing-recommended bit (channel estimate smoothing allowed).
    pub smoothing: bool,
    /// Aggregation (A-MPDU) bit.
    pub aggregation: bool,
}

impl HtSig {
    /// Number of bits across the two HT-SIG symbols.
    pub const BITS: usize = 48;

    /// Creates an HT-SIG.
    pub fn new(mcs: u8, length: u16) -> Self {
        Self {
            mcs,
            length,
            smoothing: true,
            aggregation: false,
        }
    }

    /// CRC-8 over the first 34 bits (x⁸+x²+x+1, init all ones, output
    /// complemented), per §20.3.9.4.3.
    fn crc8(bits: &[u8]) -> u8 {
        let mut reg = 0xFFu8;
        for &b in bits {
            let fb = ((reg >> 7) & 1) ^ b;
            reg <<= 1;
            if fb != 0 {
                reg ^= 0x07; // x^2 + x + 1
            }
        }
        !reg
    }

    /// Encodes to 48 bits in transmission order.
    pub fn encode(&self) -> Vec<u8> {
        let mut bits = Vec::with_capacity(Self::BITS);
        // MCS: 7 bits LSB first.
        for i in 0..7 {
            bits.push((self.mcs >> i) & 1);
        }
        bits.push(0); // CBW 20/40: 0 = 20 MHz
                      // HT LENGTH: 16 bits LSB first.
        for i in 0..16 {
            bits.push(((self.length >> i) & 1) as u8);
        }
        bits.push(self.smoothing as u8);
        bits.push(1); // not sounding
        bits.push(1); // reserved, always 1
        bits.push(self.aggregation as u8);
        bits.extend_from_slice(&[0, 0]); // STBC: none
        bits.push(0); // FEC coding: BCC
        bits.push(0); // short GI: no
        bits.extend_from_slice(&[0, 0]); // extension spatial streams
        debug_assert_eq!(bits.len(), 34);
        let crc = Self::crc8(&bits);
        // CRC transmitted MSB (c7) first.
        for i in (0..8).rev() {
            bits.push((crc >> i) & 1);
        }
        bits.extend_from_slice(&[0; 6]); // tail
        bits
    }

    /// Decodes 48 received bits, checking the CRC and MCS validity.
    pub fn decode(bits: &[u8]) -> Result<Self, SigError> {
        if bits.len() != Self::BITS {
            return Err(SigError::Length {
                got: bits.len(),
                want: Self::BITS,
            });
        }
        let crc_got = bits[34..42].iter().fold(0u8, |acc, &b| (acc << 1) | b);
        if Self::crc8(&bits[..34]) != crc_got {
            return Err(SigError::Crc);
        }
        let mut mcs = 0u8;
        for i in 0..7 {
            mcs |= bits[i] << i;
        }
        if Mcs::from_index(mcs).is_err() {
            return Err(SigError::BadMcs(mcs));
        }
        let mut length = 0u16;
        for i in 0..16 {
            length |= (bits[8 + i] as u16) << i;
        }
        Ok(Self {
            mcs,
            length,
            smoothing: bits[24] != 0,
            aggregation: bits[27] != 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lsig_roundtrip() {
        for (_, rate) in LEGACY_RATE_CODES {
            for len in [1u16, 100, 1500, 4095] {
                let sig = LSig::new(rate, len);
                let bits = sig.encode();
                assert_eq!(bits.len(), 24);
                assert_eq!(LSig::decode(&bits), Ok(sig));
            }
        }
    }

    #[test]
    fn lsig_parity_detects_single_flip_in_protected_bits() {
        let bits = LSig::new(6.0, 256).encode();
        for i in 0..18 {
            let mut bad = bits.clone();
            bad[i] ^= 1;
            // Either parity fails or (never) decodes to the same value.
            match LSig::decode(&bad) {
                Err(_) => {}
                Ok(sig) => panic!("flip at {i} undetected: {sig:?}"),
            }
        }
    }

    #[test]
    fn lsig_rejects_bad_inputs() {
        assert!(matches!(
            LSig::decode(&[0; 23]),
            Err(SigError::Length { got: 23, want: 24 })
        ));
        // Tail violation.
        let mut bits = LSig::new(6.0, 7).encode();
        bits[23] = 1;
        // Parity is over bits 0..18 so the tail flip hits the Tail check.
        assert_eq!(LSig::decode(&bits), Err(SigError::Tail));
    }

    #[test]
    #[should_panic(expected = "not a legacy rate")]
    fn lsig_rejects_nonlegacy_rate() {
        LSig::new(6.5, 100);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn lsig_rejects_zero_length() {
        LSig::new(6.0, 0);
    }

    #[test]
    fn lsig_known_rate_code() {
        // 6 Mb/s = 1101 transmitted R1..R4 = 1,1,0,1.
        let bits = LSig::new(6.0, 1).encode();
        assert_eq!(&bits[..4], &[1, 1, 0, 1]);
    }

    #[test]
    fn htsig_roundtrip() {
        for mcs in 0..16u8 {
            for len in [0u16, 1, 1000, 65535] {
                let sig = HtSig::new(mcs, len);
                let bits = sig.encode();
                assert_eq!(bits.len(), 48);
                assert_eq!(HtSig::decode(&bits), Ok(sig));
            }
        }
    }

    #[test]
    fn htsig_crc_detects_any_single_flip() {
        let bits = HtSig::new(11, 1234).encode();
        for i in 0..42 {
            let mut bad = bits.clone();
            bad[i] ^= 1;
            assert!(HtSig::decode(&bad).is_err(), "flip at {i} undetected");
        }
    }

    #[test]
    fn htsig_rejects_unsupported_mcs() {
        // Build bits for MCS 33 manually (bypassing the constructor) and
        // verify the decoder flags it even with a valid CRC.
        let mut sig = HtSig::new(0, 10);
        sig.mcs = 33;
        let bits = sig.encode();
        assert_eq!(HtSig::decode(&bits), Err(SigError::BadMcs(33)));
    }

    #[test]
    fn htsig_flags() {
        let mut sig = HtSig::new(8, 99);
        sig.aggregation = true;
        sig.smoothing = false;
        let got = HtSig::decode(&sig.encode()).unwrap();
        assert!(got.aggregation);
        assert!(!got.smoothing);
    }

    #[test]
    fn error_display() {
        assert_eq!(SigError::Parity.to_string(), "L-SIG parity check failed");
        assert!(SigError::BadRate(3).to_string().contains("RATE"));
    }
}
