//! # mimonet-frame
//!
//! IEEE 802.11n-style framing for MIMONet-rs: subcarrier layout, gray-coded
//! constellations, the HT MCS table, preamble waveforms (L-STF, L-LTF,
//! HT-STF, HT-LTF with P-matrix mapping and cyclic shift diversity),
//! SIGNAL-field codecs (L-SIG, HT-SIG) and PSDU/DATA-field assembly.
//!
//! The paper "builds the framework of the standard IEEE 802.11n"; this
//! crate is that framework. All sequences and tables follow the standard's
//! 20 MHz channelization; deviations (none known) would be bugs.

pub mod carriers;
pub mod mcs;
pub mod modulation;
pub mod ofdm;
pub mod pilots;
pub mod preamble;
pub mod psdu;
pub mod sig;

pub use carriers::Layout;
pub use mcs::Mcs;
pub use modulation::Modulation;
pub use ofdm::Ofdm;
pub use psdu::Mpdu;
pub use sig::{HtSig, LSig};
