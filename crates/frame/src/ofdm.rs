//! OFDM symbol assembly and disassembly (64-point IFFT/FFT + cyclic
//! prefix), shared by preamble generation and the data TX/RX chains.

// Index-based loops here are the clearer expression of the math
// (matrix/carrier indexing); silence the iterator-style suggestion.
#![allow(clippy::needless_range_loop)]
use crate::carriers::{carrier_to_bin, CP_LEN, FFT_LEN};
use mimonet_dsp::complex::Complex64;
use mimonet_dsp::fft::Fft;

/// Assembles and disassembles OFDM symbols. Holds a planned FFT, so clone
/// or reuse rather than recreating per symbol.
#[derive(Clone, Debug)]
pub struct Ofdm {
    fft: Fft,
}

impl Default for Ofdm {
    fn default() -> Self {
        Self::new()
    }
}

impl Ofdm {
    /// Creates the 64-point engine.
    pub fn new() -> Self {
        Self {
            fft: Fft::new(FFT_LEN),
        }
    }

    /// Converts a frequency-domain map (indexed by *logical* subcarrier,
    /// entries for `-32..=31` addressed through a closure) into one
    /// time-domain symbol of `CP_LEN + FFT_LEN` samples.
    ///
    /// `scale` multiplies the IFFT output; pass
    /// [`Ofdm::unit_power_scale`]`(n_occupied)` for unit average symbol
    /// power.
    pub fn modulate_bins(&self, bins: &[Complex64; FFT_LEN], scale: f64) -> Vec<Complex64> {
        let mut td = bins.to_vec();
        self.fft.inverse(&mut td);
        for x in &mut td {
            *x = x.scale(scale);
        }
        let mut sym = Vec::with_capacity(CP_LEN + FFT_LEN);
        sym.extend_from_slice(&td[FFT_LEN - CP_LEN..]);
        sym.extend_from_slice(&td);
        sym
    }

    /// Builds the FFT-bin array from `(logical carrier, value)` pairs and
    /// modulates it. Unlisted carriers are zero.
    pub fn modulate_carriers(&self, carriers: &[(i32, Complex64)], scale: f64) -> Vec<Complex64> {
        let mut bins = [Complex64::ZERO; FFT_LEN];
        for &(k, v) in carriers {
            bins[carrier_to_bin(k)] = v;
        }
        self.modulate_bins(&bins, scale)
    }

    /// Removes the cyclic prefix from an 80-sample symbol and returns the
    /// frequency-domain bins, scaled so that
    /// `demodulate(modulate(x, s), s) == x`.
    ///
    /// # Panics
    ///
    /// Panics if `symbol.len() != CP_LEN + FFT_LEN`.
    pub fn demodulate(&self, symbol: &[Complex64], scale: f64) -> [Complex64; FFT_LEN] {
        assert_eq!(
            symbol.len(),
            CP_LEN + FFT_LEN,
            "OFDM symbol must be {} samples, got {}",
            CP_LEN + FFT_LEN,
            symbol.len()
        );
        let mut bins = [Complex64::ZERO; FFT_LEN];
        bins.copy_from_slice(&symbol[CP_LEN..]);
        self.fft.forward(&mut bins);
        // The planner's inverse() already folds in 1/N, so the forward
        // transform undoes it exactly; only the caller's scale remains.
        let k = 1.0 / scale;
        for b in &mut bins {
            *b = b.scale(k);
        }
        bins
    }

    /// FFT of a bare 64-sample window (no cyclic prefix), same scaling as
    /// [`Ofdm::demodulate`]. Used when the receiver has already located the
    /// FFT window.
    pub fn demodulate_window(&self, window: &[Complex64], scale: f64) -> [Complex64; FFT_LEN] {
        assert_eq!(
            window.len(),
            FFT_LEN,
            "FFT window must be {FFT_LEN} samples"
        );
        let mut bins = [Complex64::ZERO; FFT_LEN];
        bins.copy_from_slice(window);
        self.fft.forward(&mut bins);
        let k = 1.0 / scale;
        for b in &mut bins {
            *b = b.scale(k);
        }
        bins
    }

    /// Scale that gives an OFDM symbol of `n_occupied` unit-power carriers
    /// an average time-domain power of 1.0: `FFT_LEN / sqrt(n_occupied)`.
    pub fn unit_power_scale(n_occupied: usize) -> f64 {
        FFT_LEN as f64 / (n_occupied as f64).sqrt()
    }
}

/// Applies a cyclic shift of `shift` samples (positive = delay) to the
/// 64-sample base of a frequency-domain symbol, expressed as the standard's
/// per-carrier phase ramp `exp(-i 2 pi k shift / N)`.
///
/// 802.11n transmits every non-primary antenna with a cyclic shift so the
/// legacy preamble does not beamform; shift values are in samples at 20 Msps
/// (200 ns = 4 samples).
pub fn apply_cyclic_shift(bins: &mut [Complex64; FFT_LEN], shift: i32) {
    if shift == 0 {
        return;
    }
    for bin in 0..FFT_LEN {
        let k = crate::carriers::bin_to_carrier(bin);
        let theta = -2.0 * std::f64::consts::PI * k as f64 * shift as f64 / FFT_LEN as f64;
        bins[bin] *= Complex64::cis(theta);
    }
}

/// Cyclic shift prescribed for `antenna` of `n_tx` during the *legacy*
/// portion of the preamble, in samples at 20 Msps (802.11n Table 20-8:
/// 0 / −200 ns for two chains, 0/−100/−200 for three, 0/−50/−100/−150
/// for four).
pub fn legacy_cyclic_shift(antenna: usize, n_tx: usize) -> i32 {
    debug_assert!(antenna < n_tx);
    match (n_tx, antenna) {
        (1, _) => 0,
        (2, 0) => 0,
        (2, 1) => -4, // −200 ns
        (3, 0) => 0,
        (3, 1) => -2, // −100 ns
        (3, 2) => -4, // −200 ns
        (4, 0) => 0,
        (4, 1) => -1, // −50 ns
        (4, 2) => -2, // −100 ns
        (4, 3) => -3, // −150 ns
        _ => panic!("unsupported antenna count {n_tx}"),
    }
}

/// Cyclic shift for the *HT* portion, in samples (802.11n Table 20-9:
/// 0 / −400 / −200 / −600 ns across up to four space-time streams).
pub fn ht_cyclic_shift(stream: usize, n_sts: usize) -> i32 {
    debug_assert!(stream < n_sts);
    match (n_sts, stream) {
        (1, _) => 0,
        (2..=4, 0) => 0,
        (2..=4, 1) => -8, // −400 ns
        (3..=4, 2) => -4, // −200 ns
        (4, 3) => -12,    // −600 ns
        _ => panic!("unsupported stream count {n_sts}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mimonet_dsp::complex::C64;

    #[test]
    fn modulate_demodulate_roundtrip() {
        let ofdm = Ofdm::new();
        let mut bins = [C64::ZERO; FFT_LEN];
        for k in 1..28 {
            bins[k] = C64::new((k as f64).sin(), (k as f64).cos());
            bins[FFT_LEN - k] = C64::new(-(k as f64).cos(), 0.5);
        }
        let scale = Ofdm::unit_power_scale(54);
        let sym = ofdm.modulate_bins(&bins, scale);
        assert_eq!(sym.len(), 80);
        let back = ofdm.demodulate(&sym, scale);
        for (a, b) in bins.iter().zip(back.iter()) {
            assert!(a.dist(*b) < 1e-10);
        }
    }

    #[test]
    fn cyclic_prefix_is_a_copy_of_the_tail() {
        let ofdm = Ofdm::new();
        let sym = ofdm.modulate_carriers(&[(1, C64::ONE), (-5, C64::I)], 1.0);
        for i in 0..CP_LEN {
            assert!(sym[i].dist(sym[FFT_LEN + i]) < 1e-12);
        }
    }

    #[test]
    fn unit_power_normalization() {
        let ofdm = Ofdm::new();
        // 52 unit-power carriers.
        let carriers: Vec<(i32, C64)> = (-26..=26)
            .filter(|&k| k != 0)
            .map(|k| (k, C64::cis(k as f64 * 1.7)))
            .collect();
        let sym = ofdm.modulate_carriers(&carriers, Ofdm::unit_power_scale(52));
        let p = mimonet_dsp::complex::mean_power(&sym[CP_LEN..]);
        assert!((p - 1.0).abs() < 1e-9, "power {p}");
    }

    #[test]
    fn demodulate_window_matches_demodulate() {
        let ofdm = Ofdm::new();
        let sym = ofdm.modulate_carriers(&[(3, C64::ONE), (-3, -C64::ONE)], 2.0);
        let a = ofdm.demodulate(&sym, 2.0);
        let b = ofdm.demodulate_window(&sym[CP_LEN..], 2.0);
        for (x, y) in a.iter().zip(b.iter()) {
            assert!(x.dist(*y) < 1e-12);
        }
    }

    #[test]
    fn cyclic_shift_rotates_time_domain() {
        let ofdm = Ofdm::new();
        let carriers: Vec<(i32, C64)> = (1..=10).map(|k| (k, C64::cis(k as f64))).collect();
        let plain = ofdm.modulate_carriers(&carriers, 1.0);

        let mut bins = [C64::ZERO; FFT_LEN];
        for &(k, v) in &carriers {
            bins[carrier_to_bin(k)] = v;
        }
        apply_cyclic_shift(&mut bins, -4);
        let shifted = ofdm.modulate_bins(&bins, 1.0);

        // A shift of −4 advances the base sequence by 4 samples cyclically.
        for i in 0..FFT_LEN {
            let want = plain[CP_LEN + (i + 4) % FFT_LEN];
            assert!(
                shifted[CP_LEN + i].dist(want) < 1e-9,
                "sample {i}: {:?} vs {want:?}",
                shifted[CP_LEN + i]
            );
        }
    }

    #[test]
    fn zero_shift_is_identity() {
        let mut bins = [C64::ONE; FFT_LEN];
        let orig = bins;
        apply_cyclic_shift(&mut bins, 0);
        assert_eq!(bins, orig);
    }

    #[test]
    fn csd_tables() {
        assert_eq!(legacy_cyclic_shift(0, 2), 0);
        assert_eq!(legacy_cyclic_shift(1, 2), -4);
        assert_eq!(ht_cyclic_shift(1, 2), -8);
        assert_eq!(ht_cyclic_shift(0, 1), 0);
    }

    #[test]
    #[should_panic(expected = "80 samples")]
    fn demodulate_rejects_wrong_length() {
        Ofdm::new().demodulate(&[C64::ZERO; 64], 1.0);
    }
}
