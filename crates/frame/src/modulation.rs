//! Constellation mapping and demapping (gray-coded BPSK / QPSK / 16-QAM /
//! 64-QAM per IEEE 802.11-2012 §18.3.5.8).
//!
//! Mapping consumes bits LSB... wait — bits are consumed in transmission
//! order, first bit = in-phase MSB, per the standard's Table 18-9..18-12.
//! Demapping produces either hard bits or per-bit LLRs
//! (`log P(0) − log P(1)`, positive ⇒ 0); the max-log approximation is used
//! for the LLRs, which is what practical receivers (and gr-ieee802-11) do.

use mimonet_dsp::complex::Complex64;

/// Modulation order used on data subcarriers.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Modulation {
    /// 1 bit/carrier.
    Bpsk,
    /// 2 bits/carrier.
    Qpsk,
    /// 4 bits/carrier.
    Qam16,
    /// 6 bits/carrier.
    Qam64,
}

impl Modulation {
    /// Coded bits per subcarrier (N_BPSC).
    pub fn bits_per_symbol(self) -> usize {
        match self {
            Modulation::Bpsk => 1,
            Modulation::Qpsk => 2,
            Modulation::Qam16 => 4,
            Modulation::Qam64 => 6,
        }
    }

    /// Normalization factor K_MOD so the constellation has unit average
    /// energy.
    pub fn kmod(self) -> f64 {
        match self {
            Modulation::Bpsk => 1.0,
            Modulation::Qpsk => 1.0 / 2f64.sqrt(),
            Modulation::Qam16 => 1.0 / 10f64.sqrt(),
            Modulation::Qam64 => 1.0 / 42f64.sqrt(),
        }
    }

    /// All constellation points, indexed by the integer whose bit `i`
    /// (LSB = first transmitted bit) is the i-th mapped bit.
    pub fn constellation(self) -> Vec<Complex64> {
        let m = self.bits_per_symbol();
        (0..(1usize << m))
            .map(|idx| {
                let bits: Vec<u8> = (0..m).map(|i| ((idx >> i) & 1) as u8).collect();
                self.map_bits(&bits)
            })
            .collect()
    }

    /// Gray map for one axis: `bits` are the per-axis bits in transmission
    /// order, producing amplitudes {±1}, {±1,±3} or {±1,±3,±5,±7}.
    fn axis_level(bits: &[u8]) -> f64 {
        match bits.len() {
            1 => {
                if bits[0] == 0 {
                    -1.0
                } else {
                    1.0
                }
            }
            2 => {
                // Gray: 00→−3, 01→−1, 11→+1, 10→+3
                match (bits[0], bits[1]) {
                    (0, 0) => -3.0,
                    (0, 1) => -1.0,
                    (1, 1) => 1.0,
                    (1, 0) => 3.0,
                    _ => unreachable!(),
                }
            }
            3 => {
                // Gray: 000→−7, 001→−5, 011→−3, 010→−1,
                //       110→+1, 111→+3, 101→+5, 100→+7
                match (bits[0], bits[1], bits[2]) {
                    (0, 0, 0) => -7.0,
                    (0, 0, 1) => -5.0,
                    (0, 1, 1) => -3.0,
                    (0, 1, 0) => -1.0,
                    (1, 1, 0) => 1.0,
                    (1, 1, 1) => 3.0,
                    (1, 0, 1) => 5.0,
                    (1, 0, 0) => 7.0,
                    _ => unreachable!(),
                }
            }
            n => panic!("unsupported axis width {n}"),
        }
    }

    /// Maps `bits_per_symbol` bits (transmission order) to one point.
    ///
    /// # Panics
    ///
    /// Panics if `bits.len() != self.bits_per_symbol()`.
    pub fn map_bits(self, bits: &[u8]) -> Complex64 {
        assert_eq!(
            bits.len(),
            self.bits_per_symbol(),
            "{self:?} maps {} bits at a time",
            self.bits_per_symbol()
        );
        let k = self.kmod();
        match self {
            Modulation::Bpsk => Complex64::new(Self::axis_level(&bits[..1]) * k, 0.0),
            Modulation::Qpsk => Complex64::new(
                Self::axis_level(&bits[..1]) * k,
                Self::axis_level(&bits[1..2]) * k,
            ),
            Modulation::Qam16 => Complex64::new(
                Self::axis_level(&bits[..2]) * k,
                Self::axis_level(&bits[2..4]) * k,
            ),
            Modulation::Qam64 => Complex64::new(
                Self::axis_level(&bits[..3]) * k,
                Self::axis_level(&bits[3..6]) * k,
            ),
        }
    }

    /// Maps a whole bit stream; length must be a multiple of
    /// `bits_per_symbol`.
    pub fn map(self, bits: &[u8]) -> Vec<Complex64> {
        assert!(
            bits.len().is_multiple_of(self.bits_per_symbol()),
            "bit stream length {} not a multiple of {}",
            bits.len(),
            self.bits_per_symbol()
        );
        bits.chunks(self.bits_per_symbol())
            .map(|c| self.map_bits(c))
            .collect()
    }

    /// Bits carried on the in-phase axis (the rest ride quadrature).
    fn i_axis_bits(self) -> usize {
        match self {
            Modulation::Bpsk => 1,
            Modulation::Qpsk => 1,
            Modulation::Qam16 => 2,
            Modulation::Qam64 => 3,
        }
    }

    /// All levels on one axis of width `w` bits, indexed by the axis bit
    /// pattern (bit i of the index = i-th transmitted bit of that axis),
    /// *unscaled* — multiply by [`Self::kmod`] at the point of use. Static
    /// so the demappers never allocate; the entries are exactly what
    /// [`Self::axis_level`] produces for each index's bit pattern.
    fn axis_levels(w: usize) -> &'static [f64] {
        match w {
            1 => &[-1.0, 1.0],
            2 => &[-3.0, 3.0, -1.0, 1.0],
            3 => &[-7.0, 7.0, -1.0, 1.0, -5.0, 5.0, -3.0, 3.0],
            n => panic!("unsupported axis width {n}"),
        }
    }

    /// Hard-decision demapping of one symbol (minimum distance).
    ///
    /// Gray square constellations separate per axis, so this is an
    /// O(sqrt(M)) search rather than O(M).
    pub fn demap_hard(self, y: Complex64) -> Vec<u8> {
        let wi = self.i_axis_bits();
        let wq = self.bits_per_symbol() - wi;
        let k = self.kmod();
        let mut out = Vec::with_capacity(self.bits_per_symbol());
        let nearest = |v: f64, w: usize| -> usize {
            let mut best = 0usize;
            let mut bd = f64::INFINITY;
            for (idx, &lvl0) in Self::axis_levels(w).iter().enumerate() {
                let lvl = lvl0 * k;
                let d = (v - lvl) * (v - lvl);
                if d < bd {
                    bd = d;
                    best = idx;
                }
            }
            best
        };
        let bi = nearest(y.re, wi);
        for i in 0..wi {
            out.push(((bi >> i) & 1) as u8);
        }
        if wq > 0 {
            let bq = nearest(y.im, wq);
            for i in 0..wq {
                out.push(((bq >> i) & 1) as u8);
            }
        }
        out
    }

    /// Hard decision as a constellation point: the nearest transmit symbol
    /// to `y`. Exactly `map_bits(&demap_hard(y))` — the per-axis searches
    /// share [`Self::axis_levels`], whose entries match [`Self::axis_level`]
    /// bit for bit — but without materializing the bit vector, so the
    /// per-symbol EVM accumulation in the RX hot loop never allocates.
    pub fn decide(self, y: Complex64) -> Complex64 {
        let wi = self.i_axis_bits();
        let wq = self.bits_per_symbol() - wi;
        let k = self.kmod();
        let nearest_level = |v: f64, w: usize| -> f64 {
            let mut best = 0.0;
            let mut bd = f64::INFINITY;
            for &lvl0 in Self::axis_levels(w) {
                let lvl = lvl0 * k;
                let d = (v - lvl) * (v - lvl);
                if d < bd {
                    bd = d;
                    best = lvl;
                }
            }
            best
        };
        let re = nearest_level(y.re, wi);
        let im = if wq > 0 { nearest_level(y.im, wq) } else { 0.0 };
        Complex64::new(re, im)
    }

    /// Max-log LLR demapping of one symbol.
    ///
    /// `noise_var` is the complex noise variance N0 on this subcarrier
    /// (after equalization scaling). LLR convention:
    /// `llr = (min_{s: bit=1} |y-s|² − min_{s: bit=0} |y-s|²) / N0`,
    /// so positive values favour bit 0 — the convention
    /// `mimonet_fec::viterbi::decode_soft` expects.
    ///
    /// Because the constellations are gray-coded and square, the joint 2-D
    /// minimization separates per axis: the quadrature term is common to
    /// both hypotheses of an in-phase bit and cancels in the difference,
    /// leaving two O(sqrt(M)) scans. (Exactly equal to the full 2-D
    /// max-log — the tests enforce it.)
    pub fn demap_soft(self, y: Complex64, noise_var: f64) -> Vec<f64> {
        let mut out = vec![0.0; self.bits_per_symbol()];
        self.demap_soft_into(y, noise_var, &mut out);
        out
    }

    /// [`Self::demap_soft`] into a caller-owned slice — the allocation-free
    /// path for the per-carrier RX loop. Produces bit-identical LLRs.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != self.bits_per_symbol()`.
    pub fn demap_soft_into(self, y: Complex64, noise_var: f64, out: &mut [f64]) {
        assert_eq!(
            out.len(),
            self.bits_per_symbol(),
            "{self:?} demaps {} LLRs at a time",
            self.bits_per_symbol()
        );
        let nv = noise_var.max(1e-12);
        let wi = self.i_axis_bits();
        let wq = self.bits_per_symbol() - wi;
        let k = self.kmod();
        let axis_llrs = |v: f64, w: usize, out: &mut [f64]| {
            let levels = Self::axis_levels(w);
            for (bit, llr) in out.iter_mut().enumerate().take(w) {
                let mut d0 = f64::INFINITY;
                let mut d1 = f64::INFINITY;
                for (idx, &lvl0) in levels.iter().enumerate() {
                    let lvl = lvl0 * k;
                    let d = (v - lvl) * (v - lvl);
                    if (idx >> bit) & 1 == 0 {
                        d0 = d0.min(d);
                    } else {
                        d1 = d1.min(d);
                    }
                }
                *llr = (d1 - d0) / nv;
            }
        };
        axis_llrs(y.re, wi, &mut out[..wi]);
        if wq > 0 {
            axis_llrs(y.im, wq, &mut out[wi..]);
        }
    }
}

impl std::fmt::Display for Modulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Modulation::Bpsk => write!(f, "BPSK"),
            Modulation::Qpsk => write!(f, "QPSK"),
            Modulation::Qam16 => write!(f, "16-QAM"),
            Modulation::Qam64 => write!(f, "64-QAM"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mimonet_dsp::complex::C64;

    const ALL: [Modulation; 4] = [
        Modulation::Bpsk,
        Modulation::Qpsk,
        Modulation::Qam16,
        Modulation::Qam64,
    ];

    #[test]
    fn decide_matches_demap_then_map() {
        for m in ALL {
            let mut x = 0x1234_5678_9ABC_DEF0u64;
            for _ in 0..500 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let re = ((x & 0xFFFF) as f64 / 65535.0 - 0.5) * 4.0;
                let im = (((x >> 16) & 0xFFFF) as f64 / 65535.0 - 0.5) * 4.0;
                let y = C64::new(re, im);
                let via_bits = m.map_bits(&m.demap_hard(y));
                assert_eq!(m.decide(y), via_bits, "{m:?} at {y:?}");
            }
        }
    }

    fn prbs(len: usize, mut x: u64) -> Vec<u8> {
        x |= 1;
        (0..len)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x & 1) as u8
            })
            .collect()
    }

    #[test]
    fn constellations_have_unit_average_energy() {
        for m in ALL {
            let pts = m.constellation();
            assert_eq!(pts.len(), 1 << m.bits_per_symbol());
            let avg: f64 = pts.iter().map(|p| p.norm_sqr()).sum::<f64>() / pts.len() as f64;
            assert!((avg - 1.0).abs() < 1e-12, "{m}: avg energy {avg}");
        }
    }

    #[test]
    fn constellation_points_are_distinct() {
        for m in ALL {
            let pts = m.constellation();
            for i in 0..pts.len() {
                for j in (i + 1)..pts.len() {
                    assert!(pts[i].dist(pts[j]) > 1e-9, "{m}: {i} and {j} coincide");
                }
            }
        }
    }

    #[test]
    fn gray_coding_neighbors_differ_by_one_bit() {
        // Along each axis, adjacent amplitude levels must differ in exactly
        // one bit — check via 16-QAM rows.
        let m = Modulation::Qam16;
        let pts = m.constellation();
        let k = m.kmod();
        // Collect (I level, index) for points with the same Q bits (=0b00).
        let mut row: Vec<(f64, usize)> = (0..16)
            .filter(|i| (i >> 2) & 0b11 == 0)
            .map(|i| (pts[i].re / k, i))
            .collect();
        row.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        for w in row.windows(2) {
            let diff = (w[0].1 ^ w[1].1).count_ones();
            assert_eq!(diff, 1, "adjacent I levels differ by {diff} bits");
        }
    }

    #[test]
    fn known_bpsk_and_qpsk_points() {
        assert_eq!(Modulation::Bpsk.map_bits(&[0]), C64::new(-1.0, 0.0));
        assert_eq!(Modulation::Bpsk.map_bits(&[1]), C64::new(1.0, 0.0));
        let s = 1.0 / 2f64.sqrt();
        assert!(Modulation::Qpsk.map_bits(&[1, 1]).dist(C64::new(s, s)) < 1e-12);
        assert!(Modulation::Qpsk.map_bits(&[0, 0]).dist(C64::new(-s, -s)) < 1e-12);
    }

    #[test]
    fn known_64qam_extremes() {
        let k = 1.0 / 42f64.sqrt();
        // bits (1,0,0) on I → +7, (1,0,0) on Q → +7
        let p = Modulation::Qam64.map_bits(&[1, 0, 0, 1, 0, 0]);
        assert!(p.dist(C64::new(7.0 * k, 7.0 * k)) < 1e-12);
    }

    #[test]
    fn hard_demap_roundtrip_noiseless() {
        for m in ALL {
            let bits = prbs(m.bits_per_symbol() * 64, 3);
            for chunk in bits.chunks(m.bits_per_symbol()) {
                let y = m.map_bits(chunk);
                assert_eq!(m.demap_hard(y), chunk, "{m}");
            }
        }
    }

    #[test]
    fn hard_demap_tolerates_small_noise() {
        for m in ALL {
            let bits = prbs(m.bits_per_symbol() * 32, 11);
            // Perturbation well inside half the minimum distance.
            let eps = match m {
                Modulation::Bpsk => 0.4,
                Modulation::Qpsk => 0.25,
                Modulation::Qam16 => 0.1,
                Modulation::Qam64 => 0.05,
            };
            for (i, chunk) in bits.chunks(m.bits_per_symbol()).enumerate() {
                let y = m.map_bits(chunk) + C64::new(eps * ((i % 3) as f64 - 1.0), eps * 0.7);
                assert_eq!(m.demap_hard(y), chunk, "{m} sym {i}");
            }
        }
    }

    #[test]
    fn soft_demap_sign_matches_hard_decision() {
        for m in ALL {
            let bits = prbs(m.bits_per_symbol() * 32, 21);
            for chunk in bits.chunks(m.bits_per_symbol()) {
                let y = m.map_bits(chunk);
                let llrs = m.demap_soft(y, 0.1);
                for (b, l) in chunk.iter().zip(&llrs) {
                    // bit 0 ⇒ positive LLR.
                    assert!((*b == 0) == (*l > 0.0), "{m}: bit {b} got LLR {l}");
                }
            }
        }
    }

    #[test]
    fn soft_demap_scales_inversely_with_noise() {
        let m = Modulation::Qpsk;
        let y = m.map_bits(&[1, 0]);
        let l1 = m.demap_soft(y, 0.1);
        let l2 = m.demap_soft(y, 0.2);
        for (a, b) in l1.iter().zip(&l2) {
            assert!((a / b - 2.0).abs() < 1e-9);
        }
    }

    #[test]
    fn soft_demap_ambiguous_point_gives_zero_llr() {
        // Exactly between BPSK points.
        let l = Modulation::Bpsk.demap_soft(C64::ZERO, 1.0);
        assert!(l[0].abs() < 1e-12);
    }

    #[test]
    fn axis_demap_equals_exhaustive_2d_maxlog() {
        // The per-axis shortcut must reproduce the full 2-D max-log LLRs
        // exactly, for arbitrary received points.
        for m in ALL {
            let points = m.constellation();
            let nb = m.bits_per_symbol();
            for t in 0..200 {
                let y = C64::new(
                    ((t * 37) % 41) as f64 / 10.0 - 2.0,
                    ((t * 53) % 47) as f64 / 12.0 - 2.0,
                );
                let nv = 0.17;
                let fast = m.demap_soft(y, nv);
                // Reference: brute force over the full constellation.
                #[allow(clippy::needless_range_loop)] // bit doubles as a shift count
                for bit in 0..nb {
                    let mut d0 = f64::INFINITY;
                    let mut d1 = f64::INFINITY;
                    for (idx, &s) in points.iter().enumerate() {
                        let d = y.dist_sqr(s);
                        if (idx >> bit) & 1 == 0 {
                            d0 = d0.min(d);
                        } else {
                            d1 = d1.min(d);
                        }
                    }
                    let want = (d1 - d0) / nv;
                    assert!(
                        (fast[bit] - want).abs() <= 1e-9 * (1.0 + want.abs()),
                        "{m} bit {bit}: fast {} vs exhaustive {want}",
                        fast[bit]
                    );
                }
                // Hard decisions must also agree with nearest-point search.
                let hard = m.demap_hard(y);
                let best = points
                    .iter()
                    .enumerate()
                    .min_by(|a, b| y.dist_sqr(*a.1).partial_cmp(&y.dist_sqr(*b.1)).unwrap())
                    .map(|(i, _)| i)
                    .unwrap();
                let want_bits: Vec<u8> = (0..nb).map(|i| ((best >> i) & 1) as u8).collect();
                assert_eq!(hard, want_bits, "{m} at {y:?}");
            }
        }
    }

    #[test]
    fn static_axis_levels_match_gray_map() {
        for w in 1..=3usize {
            let levels = Modulation::axis_levels(w);
            assert_eq!(levels.len(), 1 << w);
            for (idx, &lvl) in levels.iter().enumerate() {
                let bits: Vec<u8> = (0..w).map(|i| ((idx >> i) & 1) as u8).collect();
                assert_eq!(lvl, Modulation::axis_level(&bits), "w={w} idx={idx}");
            }
        }
    }

    #[test]
    fn demap_soft_into_matches_and_reuses() {
        let mut buf = [0.0; 6];
        for m in ALL {
            let nb = m.bits_per_symbol();
            for t in 0..50 {
                let y = C64::new(
                    ((t * 31) % 23) as f64 / 8.0 - 1.5,
                    ((t * 17) % 29) as f64 / 9.0 - 1.5,
                );
                let fresh = m.demap_soft(y, 0.21);
                m.demap_soft_into(y, 0.21, &mut buf[..nb]);
                assert_eq!(&buf[..nb], fresh.as_slice(), "{m} t={t}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "demaps")]
    fn demap_soft_into_wrong_length_panics() {
        Modulation::Qpsk.demap_soft_into(C64::ZERO, 0.1, &mut [0.0; 3]);
    }

    #[test]
    fn map_block_length_check() {
        let m = Modulation::Qam16;
        assert_eq!(m.map(&prbs(64, 1)).len(), 16);
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn map_rejects_ragged_stream() {
        Modulation::Qam64.map(&[1, 0, 1]);
    }
}
