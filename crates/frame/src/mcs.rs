//! HT modulation-and-coding-scheme (MCS) table, 20 MHz, 800 ns GI
//! (IEEE 802.11n Table 20-30 / 20-31).
//!
//! MCS 0–7 are single-stream; MCS 8–15 are the same modulation/rate pairs
//! over two spatially-multiplexed streams — the configuration the SRIF'14
//! paper implements.

use crate::carriers::HT_DATA_CARRIERS;
use crate::modulation::Modulation;
use mimonet_fec::puncture::CodeRate;

/// OFDM symbol duration with the 800 ns guard interval, in microseconds.
pub const SYMBOL_DURATION_US: f64 = 4.0;

/// Highest supported MCS index (MCS 0–31 = 1–4 spatial streams).
pub const MAX_MCS: u8 = 31;

/// One row of the HT MCS table.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Mcs {
    /// MCS index (0–31).
    pub index: u8,
    /// Number of spatial streams.
    pub n_streams: usize,
    /// Subcarrier modulation.
    pub modulation: Modulation,
    /// Convolutional code rate.
    pub code_rate: CodeRate,
}

/// Errors from MCS lookup.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InvalidMcs(pub u8);

impl std::fmt::Display for InvalidMcs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "MCS index {} is outside the supported range 0-31",
            self.0
        )
    }
}

impl std::error::Error for InvalidMcs {}

impl Mcs {
    /// Looks up MCS `index` (0–31; each block of 8 adds a spatial stream).
    pub fn from_index(index: u8) -> Result<Self, InvalidMcs> {
        if index > MAX_MCS {
            return Err(InvalidMcs(index));
        }
        let (modulation, code_rate) = match index % 8 {
            0 => (Modulation::Bpsk, CodeRate::R1_2),
            1 => (Modulation::Qpsk, CodeRate::R1_2),
            2 => (Modulation::Qpsk, CodeRate::R3_4),
            3 => (Modulation::Qam16, CodeRate::R1_2),
            4 => (Modulation::Qam16, CodeRate::R3_4),
            5 => (Modulation::Qam64, CodeRate::R2_3),
            6 => (Modulation::Qam64, CodeRate::R3_4),
            7 => (Modulation::Qam64, CodeRate::R5_6),
            _ => unreachable!(),
        };
        Ok(Self {
            index,
            n_streams: index as usize / 8 + 1,
            modulation,
            code_rate,
        })
    }

    /// All thirty-two MCS entries.
    pub fn all() -> Vec<Mcs> {
        (0..=MAX_MCS).map(|i| Mcs::from_index(i).unwrap()).collect()
    }

    /// Coded bits per subcarrier (N_BPSC).
    pub fn n_bpsc(&self) -> usize {
        self.modulation.bits_per_symbol()
    }

    /// Coded bits per OFDM symbol per spatial stream (N_CBPSS).
    pub fn n_cbpss(&self) -> usize {
        HT_DATA_CARRIERS * self.n_bpsc()
    }

    /// Coded bits per OFDM symbol over all streams (N_CBPS).
    pub fn n_cbps(&self) -> usize {
        self.n_cbpss() * self.n_streams
    }

    /// Data bits per OFDM symbol (N_DBPS).
    pub fn n_dbps(&self) -> usize {
        // N_CBPS * R; all products are exact integers for the standard
        // rates.
        self.n_cbps() * self.code_rate.k() / self.code_rate.n()
    }

    /// PHY data rate in Mb/s (800 ns GI).
    pub fn rate_mbps(&self) -> f64 {
        self.n_dbps() as f64 / SYMBOL_DURATION_US
    }

    /// Number of OFDM symbols needed to carry `payload_bits` data bits plus
    /// the 16-bit SERVICE field and 6 tail bits, with padding to a whole
    /// symbol (802.11n §20.3.11).
    pub fn num_symbols(&self, payload_bits: usize) -> usize {
        let total = 16 + payload_bits + 6;
        total.div_ceil(self.n_dbps())
    }

    /// Number of pad bits appended after the tail for `payload_bits`.
    pub fn pad_bits(&self, payload_bits: usize) -> usize {
        self.num_symbols(payload_bits) * self.n_dbps() - (16 + payload_bits + 6)
    }
}

impl std::fmt::Display for Mcs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "MCS{} ({} stream{}, {}, r={})",
            self.index,
            self.n_streams,
            if self.n_streams == 1 { "" } else { "s" },
            self.modulation,
            self.code_rate
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_match_the_standard_table() {
        // 802.11n 20 MHz, 800 ns GI data rates in Mb/s.
        let want = [
            6.5, 13.0, 19.5, 26.0, 39.0, 52.0, 58.5, 65.0, // 1 stream
            13.0, 26.0, 39.0, 52.0, 78.0, 104.0, 117.0, 130.0, // 2 streams
        ];
        for (i, &rate) in want.iter().enumerate() {
            let mcs = Mcs::from_index(i as u8).unwrap();
            assert!(
                (mcs.rate_mbps() - rate).abs() < 1e-9,
                "MCS{i}: got {} want {rate}",
                mcs.rate_mbps()
            );
        }
    }

    #[test]
    fn ndbps_values() {
        assert_eq!(Mcs::from_index(0).unwrap().n_dbps(), 26);
        assert_eq!(Mcs::from_index(7).unwrap().n_dbps(), 260);
        assert_eq!(Mcs::from_index(8).unwrap().n_dbps(), 52);
        assert_eq!(Mcs::from_index(15).unwrap().n_dbps(), 520);
    }

    #[test]
    fn ncbps_is_interleaver_compatible() {
        // N_CBPSS must be divisible by N_BPSC * 13 (HT interleaver columns).
        for mcs in Mcs::all() {
            assert_eq!(mcs.n_cbpss() % (mcs.n_bpsc() * 13), 0, "{mcs}");
        }
    }

    #[test]
    fn stream_counts() {
        for i in 0..8u8 {
            assert_eq!(Mcs::from_index(i).unwrap().n_streams, 1);
            assert_eq!(Mcs::from_index(i + 8).unwrap().n_streams, 2);
            assert_eq!(Mcs::from_index(i + 16).unwrap().n_streams, 3);
            assert_eq!(Mcs::from_index(i + 24).unwrap().n_streams, 4);
        }
    }

    #[test]
    fn three_and_four_stream_rates() {
        // 3 streams triple the 1-stream rates; 4 streams quadruple them.
        for i in 0..8u8 {
            let base = Mcs::from_index(i).unwrap().rate_mbps();
            assert!((Mcs::from_index(i + 16).unwrap().rate_mbps() - 3.0 * base).abs() < 1e-9);
            assert!((Mcs::from_index(i + 24).unwrap().rate_mbps() - 4.0 * base).abs() < 1e-9);
        }
        // Spot check the table ceiling: MCS31 = 4x 64-QAM 5/6 = 260 Mb/s.
        assert!((Mcs::from_index(31).unwrap().rate_mbps() - 260.0).abs() < 1e-9);
    }

    #[test]
    fn invalid_index_rejected() {
        assert_eq!(Mcs::from_index(32), Err(InvalidMcs(32)));
        assert_eq!(Mcs::from_index(255), Err(InvalidMcs(255)));
    }

    #[test]
    fn symbol_count_and_padding() {
        let mcs = Mcs::from_index(0).unwrap(); // 26 data bits/symbol
                                               // 1 byte payload: 16 + 8 + 6 = 30 bits → 2 symbols, 22 pad bits.
        assert_eq!(mcs.num_symbols(8), 2);
        assert_eq!(mcs.pad_bits(8), 22);
        // Exactly filling: 26*3 - 22 = 56 payload bits → 3 symbols, 0 pad.
        assert_eq!(mcs.num_symbols(56), 3);
        assert_eq!(mcs.pad_bits(56), 0);
    }

    #[test]
    fn padding_is_always_less_than_one_symbol() {
        for mcs in Mcs::all() {
            for payload in [0usize, 1, 7, 100, 999, 12000] {
                let pad = mcs.pad_bits(payload);
                assert!(pad < mcs.n_dbps(), "{mcs} payload {payload}");
                let total = 16 + payload + 6 + pad;
                assert_eq!(total % mcs.n_dbps(), 0);
            }
        }
    }

    #[test]
    fn display_formatting() {
        let mcs = Mcs::from_index(11).unwrap();
        assert_eq!(mcs.to_string(), "MCS11 (2 streams, 16-QAM, r=1/2)");
    }
}
