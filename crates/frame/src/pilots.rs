//! Pilot sub-carrier values (802.11 §18.3.5.10, 802.11n §20.3.11.10).
//!
//! Pilots serve the SRIF'14 paper's "use of pilot sub-carriers for channel
//! estimation": the receiver tracks residual phase (and optionally channel
//! drift) from the four known pilots in every data symbol.
//!
//! Two mechanisms combine:
//!
//! * a **polarity sequence** `p_n` (period 127, identical to the scrambler
//!   keystream with the all-ones seed, mapped 0 → +1, 1 → −1) flips all four
//!   pilots per symbol, whitening their spectrum, and
//! * per-stream **pilot patterns** Ψ that rotate across the four pilot
//!   positions from symbol to symbol in the HT format, keeping the streams'
//!   pilots orthogonal over any 4-symbol span.

use mimonet_fec::scrambler::Scrambler;

/// Length of the pilot polarity sequence.
pub const POLARITY_PERIOD: usize = 127;

/// Returns the pilot polarity `p_n ∈ {+1, −1}` for symbol index `n`
/// (n counts from the first SIGNAL symbol, per the standard).
pub fn polarity(n: usize) -> f64 {
    // The standard's p_0..p_126 equals the scrambler keystream seeded with
    // all ones, mapped 0→+1, 1→−1.
    use std::sync::OnceLock;
    static SEQ: OnceLock<[f64; POLARITY_PERIOD]> = OnceLock::new();
    let seq = SEQ.get_or_init(|| {
        let mut s = Scrambler::new(0x7F);
        let mut out = [0.0; POLARITY_PERIOD];
        for slot in &mut out {
            *slot = if s.next_bit() == 0 { 1.0 } else { -1.0 };
        }
        out
    });
    seq[n % POLARITY_PERIOD]
}

/// Legacy pilot base values at carriers (−21, −7, +7, +21).
pub const LEGACY_PILOTS: [f64; 4] = [1.0, 1.0, 1.0, -1.0];

/// HT per-stream pilot patterns Ψ for 20 MHz (Table 20-19); row = stream,
/// column = pilot position before rotation.
const HT_PSI_1: [[f64; 4]; 1] = [[1.0, 1.0, 1.0, -1.0]];
const HT_PSI_2: [[f64; 4]; 2] = [[1.0, 1.0, -1.0, -1.0], [1.0, -1.0, -1.0, 1.0]];
const HT_PSI_3: [[f64; 4]; 3] = [
    [1.0, 1.0, -1.0, -1.0],
    [1.0, -1.0, 1.0, -1.0],
    [-1.0, 1.0, 1.0, -1.0],
];
const HT_PSI_4: [[f64; 4]; 4] = [
    [1.0, 1.0, 1.0, -1.0],
    [1.0, 1.0, -1.0, 1.0],
    [1.0, -1.0, 1.0, 1.0],
    [-1.0, 1.0, 1.0, 1.0],
];

/// Pilot values for the four pilot carriers (in increasing frequency order
/// −21, −7, +7, +21) of data symbol `sym` (0-based within the HT-Data
/// portion), for `stream` of `n_streams`, *including* the polarity factor.
///
/// `polarity_offset` is the index of the first data symbol in the polarity
/// sequence (the legacy SIGNAL symbol consumes p_0, so data usually starts
/// at offset 1 for legacy frames; HT-mixed frames consume more — the TX and
/// RX chains pass the same offset).
pub fn ht_pilots(stream: usize, n_streams: usize, sym: usize, polarity_offset: usize) -> [f64; 4] {
    assert!(stream < n_streams, "stream {stream} of {n_streams}");
    let psi: &[[f64; 4]] = match n_streams {
        1 => &HT_PSI_1,
        2 => &HT_PSI_2,
        3 => &HT_PSI_3,
        4 => &HT_PSI_4,
        _ => panic!("unsupported stream count {n_streams}"),
    };
    let p = polarity(sym + polarity_offset);
    let mut out = [0.0; 4];
    for (i, slot) in out.iter_mut().enumerate() {
        // The Ψ pattern rotates by one position per symbol.
        *slot = psi[stream][(i + sym) % 4] * p;
    }
    out
}

/// Legacy pilot values for symbol `sym` with the given polarity offset.
pub fn legacy_pilots(sym: usize, polarity_offset: usize) -> [f64; 4] {
    let p = polarity(sym + polarity_offset);
    let mut out = LEGACY_PILOTS;
    for v in &mut out {
        *v *= p;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn polarity_known_prefix() {
        // p_0..p_7 from the standard: 1,1,1,1,-1,-1,-1,1
        let want = [1.0, 1.0, 1.0, 1.0, -1.0, -1.0, -1.0, 1.0];
        for (n, &w) in want.iter().enumerate() {
            assert_eq!(polarity(n), w, "p_{n}");
        }
    }

    #[test]
    fn polarity_is_periodic() {
        for n in 0..260 {
            assert_eq!(polarity(n), polarity(n + POLARITY_PERIOD));
        }
    }

    #[test]
    fn polarity_is_balanced() {
        let ones = (0..POLARITY_PERIOD).filter(|&n| polarity(n) < 0.0).count();
        assert_eq!(ones, 64); // 64 of the 127 values are −1
    }

    #[test]
    fn two_stream_pilots_are_orthogonal_over_four_symbols() {
        // Summed over any 4 consecutive symbols, the per-position product of
        // the two streams' pilots cancels (polarity is common, Ψ rows are
        // orthogonal under rotation).
        for start in 0..8 {
            for pos in 0..4 {
                let dot: f64 = (start..start + 4)
                    .map(|sym| {
                        let a = ht_pilots(0, 2, sym, 3)[pos];
                        let b = ht_pilots(1, 2, sym, 3)[pos];
                        a * b
                    })
                    .sum();
                assert_eq!(dot, 0.0, "start {start} pos {pos}");
            }
        }
    }

    #[test]
    fn pilot_magnitudes_are_unit() {
        for sym in 0..10 {
            for stream in 0..2 {
                for v in ht_pilots(stream, 2, sym, 1) {
                    assert_eq!(v.abs(), 1.0);
                }
            }
            for v in legacy_pilots(sym, 1) {
                assert_eq!(v.abs(), 1.0);
            }
        }
    }

    #[test]
    fn rotation_shifts_pattern() {
        // Symbol n+1's pattern at position i equals symbol n's at i+1,
        // modulo the polarity change.
        let a = ht_pilots(0, 2, 0, 0);
        let b = ht_pilots(0, 2, 1, 0);
        let p0 = polarity(0);
        let p1 = polarity(1);
        for i in 0..3 {
            assert_eq!(a[i + 1] / p0, b[i] / p1);
        }
    }

    #[test]
    fn legacy_pilot_base_pattern() {
        let p = legacy_pilots(0, 0);
        assert_eq!(p, [1.0, 1.0, 1.0, -1.0]); // polarity(0) = +1
    }

    #[test]
    #[should_panic(expected = "stream")]
    fn stream_bounds_checked() {
        ht_pilots(2, 2, 0, 0);
    }
}
