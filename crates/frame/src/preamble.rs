//! 802.11n mixed-format preamble generation: L-STF, L-LTF, HT-STF and
//! HT-LTF, with per-antenna cyclic shift diversity and the orthogonal
//! P-matrix mapping of HT-LTFs across space-time streams.
//!
//! The SRIF'14 paper "put all the preambles needed for synchronization and
//! channel estimation"; this module is that frame skeleton. Sequences come
//! from IEEE 802.11-2012 §18.3.3 (legacy) and 802.11n §20.3.9.4 (HT).

// Index-based loops here are the clearer expression of the math
// (matrix/carrier indexing); silence the iterator-style suggestion.
#![allow(clippy::needless_range_loop)]
use crate::carriers::FFT_LEN;
use crate::ofdm::{apply_cyclic_shift, ht_cyclic_shift, legacy_cyclic_shift, Ofdm};
use mimonet_dsp::complex::Complex64;

/// Samples in the legacy short training field (10 × 16).
pub const LSTF_LEN: usize = 160;
/// Samples in the legacy long training field (32 CP + 2 × 64).
pub const LLTF_LEN: usize = 160;
/// Samples in one HT field (HT-STF or one HT-LTF): 16 CP + 64.
pub const HT_FIELD_LEN: usize = 80;
/// Period of the short-training pattern in samples.
pub const STF_PERIOD: usize = 16;

/// L-LTF frequency sequence over logical carriers −26..=26 (index 26 = DC).
pub const LLTF_SEQ: [i8; 53] = [
    1, 1, -1, -1, 1, 1, -1, 1, -1, 1, 1, 1, 1, 1, 1, -1, -1, 1, 1, -1, 1, -1, 1, 1, 1, 1, //
    0, //
    1, -1, -1, 1, 1, -1, 1, -1, 1, -1, -1, -1, -1, -1, 1, 1, -1, -1, 1, -1, 1, -1, 1, 1, 1, 1,
];

/// Returns the L-LTF value at logical carrier `k` (zero outside −26..26).
pub fn lltf_at(k: i32) -> f64 {
    if !(-26..=26).contains(&k) {
        0.0
    } else {
        LLTF_SEQ[(k + 26) as usize] as f64
    }
}

/// Returns the HT-LTF value at logical carrier `k` (zero outside −28..28).
/// The HT sequence extends the legacy one with `{1, 1}` below and
/// `{−1, −1}` above the legacy band (802.11n §20.3.9.4.6).
pub fn htltf_at(k: i32) -> f64 {
    match k {
        -28 | -27 => 1.0,
        27 | 28 => -1.0,
        _ => lltf_at(k),
    }
}

/// The nonzero L-STF carriers `(k, value)` with unit scaling applied
/// (`sqrt(13/6)` is folded in so total sequence power equals 52).
pub fn lstf_carriers() -> Vec<(i32, Complex64)> {
    let s = (13.0f64 / 6.0).sqrt();
    let p = Complex64::new(s, s); // sqrt(13/6) * (1 + j)
    let m = -p;
    vec![
        (-24, p),
        (-20, m),
        (-16, p),
        (-12, m),
        (-8, m),
        (-4, p),
        (4, m),
        (8, m),
        (12, p),
        (16, p),
        (20, p),
        (24, p),
    ]
}

/// The orthogonal HT-LTF mapping matrix P (802.11n Eq. 20-27). Entry
/// `P[stream][ltf_symbol]`; the 2×2 upper-left block maps two streams onto
/// two HT-LTF symbols.
pub const P_HTLTF: [[f64; 4]; 4] = [
    [1.0, -1.0, 1.0, 1.0],
    [1.0, 1.0, -1.0, 1.0],
    [1.0, 1.0, 1.0, -1.0],
    [-1.0, 1.0, 1.0, 1.0],
];

/// Number of HT-LTF symbols required for `n_sts` space-time streams
/// (Table 20-12; 1→1, 2→2, 3→4, 4→4).
pub fn num_htltf(n_sts: usize) -> usize {
    match n_sts {
        1 => 1,
        2 => 2,
        3 | 4 => 4,
        _ => panic!("unsupported stream count {n_sts}"),
    }
}

fn lstf_bins(shift: i32) -> [Complex64; FFT_LEN] {
    let mut bins = [Complex64::ZERO; FFT_LEN];
    for (k, v) in lstf_carriers() {
        bins[crate::carriers::carrier_to_bin(k)] = v;
    }
    apply_cyclic_shift(&mut bins, shift);
    bins
}

fn lltf_bins(shift: i32) -> [Complex64; FFT_LEN] {
    let mut bins = [Complex64::ZERO; FFT_LEN];
    for k in -26..=26 {
        bins[crate::carriers::carrier_to_bin(k)] = Complex64::from_re(lltf_at(k));
    }
    apply_cyclic_shift(&mut bins, shift);
    bins
}

fn htltf_bins(shift: i32, sign: f64) -> [Complex64; FFT_LEN] {
    let mut bins = [Complex64::ZERO; FFT_LEN];
    for k in -28..=28 {
        bins[crate::carriers::carrier_to_bin(k)] = Complex64::from_re(htltf_at(k) * sign);
    }
    apply_cyclic_shift(&mut bins, shift);
    bins
}

/// Generates the 160-sample L-STF for one antenna (with its legacy cyclic
/// shift). Average power is 1.0.
pub fn lstf_time(antenna: usize, n_tx: usize) -> Vec<Complex64> {
    let bins = lstf_bins(legacy_cyclic_shift(antenna, n_tx));
    // The STF has 12 occupied carriers of power 13/3 each → sequence power
    // 52, so the 52-carrier unit scale applies. The base 64-sample IFFT is
    // 16-periodic; the field is 10 periods = 160 samples.
    let mut td = bins.to_vec();
    let fft = mimonet_dsp::fft::Fft::new(FFT_LEN);
    fft.inverse(&mut td);
    let scale = Ofdm::unit_power_scale(52);
    let base: Vec<Complex64> = td.iter().map(|x| x.scale(scale)).collect();
    (0..LSTF_LEN).map(|i| base[i % FFT_LEN]).collect()
}

/// Generates the 160-sample L-LTF for one antenna: a 32-sample cyclic
/// prefix followed by two repetitions of the 64-sample long training
/// symbol. Average power is 1.0.
pub fn lltf_time(antenna: usize, n_tx: usize) -> Vec<Complex64> {
    let bins = lltf_bins(legacy_cyclic_shift(antenna, n_tx));
    let mut td = bins.to_vec();
    let fft = mimonet_dsp::fft::Fft::new(FFT_LEN);
    fft.inverse(&mut td);
    let scale = Ofdm::unit_power_scale(52);
    let base: Vec<Complex64> = td.iter().map(|x| x.scale(scale)).collect();
    let mut out = Vec::with_capacity(LLTF_LEN);
    out.extend_from_slice(&base[FFT_LEN - 32..]);
    out.extend_from_slice(&base);
    out.extend_from_slice(&base);
    out
}

/// Generates the 80-sample HT-STF for one space-time stream (with the HT
/// cyclic shift). Same frequency sequence as the L-STF.
pub fn htstf_time(ofdm: &Ofdm, stream: usize, n_sts: usize) -> Vec<Complex64> {
    let bins = lstf_bins(ht_cyclic_shift(stream, n_sts));
    ofdm.modulate_bins(&bins, Ofdm::unit_power_scale(52))
}

/// Generates HT-LTF symbol `ltf_index` (0-based) for `stream`, applying the
/// P-matrix sign and the HT cyclic shift. 80 samples.
pub fn htltf_time(ofdm: &Ofdm, stream: usize, n_sts: usize, ltf_index: usize) -> Vec<Complex64> {
    assert!(ltf_index < num_htltf(n_sts), "HT-LTF index out of range");
    let sign = P_HTLTF[stream][ltf_index];
    let bins = htltf_bins(ht_cyclic_shift(stream, n_sts), sign);
    ofdm.modulate_bins(&bins, Ofdm::unit_power_scale(56))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mimonet_dsp::complex::mean_power;

    #[test]
    fn lltf_sequence_structure() {
        assert_eq!(LLTF_SEQ.len(), 53);
        assert_eq!(lltf_at(0), 0.0);
        assert_eq!(lltf_at(-26), 1.0);
        assert_eq!(lltf_at(26), 1.0);
        assert_eq!(lltf_at(27), 0.0);
        assert_eq!(lltf_at(-27), 0.0);
        // First few values from the standard: 1, 1, −1, −1, 1, 1, ...
        assert_eq!(lltf_at(-25), 1.0);
        assert_eq!(lltf_at(-24), -1.0);
        assert_eq!(lltf_at(-23), -1.0);
    }

    #[test]
    fn htltf_extends_lltf() {
        for k in -26..=26 {
            assert_eq!(htltf_at(k), lltf_at(k));
        }
        assert_eq!(htltf_at(-28), 1.0);
        assert_eq!(htltf_at(-27), 1.0);
        assert_eq!(htltf_at(27), -1.0);
        assert_eq!(htltf_at(28), -1.0);
        assert_eq!(htltf_at(29), 0.0);
        // 56 occupied carriers.
        let n: usize = (-28..=28).filter(|&k| htltf_at(k) != 0.0).count();
        assert_eq!(n, 56);
    }

    #[test]
    fn lstf_carrier_power() {
        let total: f64 = lstf_carriers().iter().map(|(_, v)| v.norm_sqr()).sum();
        assert!((total - 52.0).abs() < 1e-9);
        // All carriers are multiples of 4 → 16-sample periodicity.
        for (k, _) in lstf_carriers() {
            assert_eq!(k % 4, 0);
        }
    }

    #[test]
    fn lstf_is_16_periodic_and_unit_power() {
        let stf = lstf_time(0, 1);
        assert_eq!(stf.len(), LSTF_LEN);
        for i in 0..LSTF_LEN - STF_PERIOD {
            assert!(
                stf[i].dist(stf[i + STF_PERIOD]) < 1e-9,
                "period break at {i}"
            );
        }
        assert!((mean_power(&stf) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn lltf_structure() {
        let ltf = lltf_time(0, 1);
        assert_eq!(ltf.len(), LLTF_LEN);
        // Two identical 64-sample symbols after the 32-sample CP.
        for i in 0..64 {
            assert!(ltf[32 + i].dist(ltf[96 + i]) < 1e-9);
        }
        // CP is the tail of the symbol.
        for i in 0..32 {
            assert!(ltf[i].dist(ltf[128 + i]) < 1e-9);
        }
        assert!((mean_power(&ltf) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn second_antenna_lltf_is_cyclic_shift_of_first() {
        let a0 = lltf_time(0, 2);
        let a1 = lltf_time(1, 2);
        // Shift −4: antenna 1's base symbol is antenna 0's advanced by 4.
        for i in 0..64 {
            assert!(a1[32 + i].dist(a0[32 + (i + 4) % 64]) < 1e-9, "i={i}");
        }
    }

    #[test]
    fn p_matrix_rows_are_orthogonal() {
        for i in 0..4 {
            for j in 0..4 {
                let dot: f64 = (0..4).map(|k| P_HTLTF[i][k] * P_HTLTF[j][k]).sum();
                if i == j {
                    assert_eq!(dot, 4.0);
                } else {
                    assert_eq!(dot, 0.0);
                }
            }
        }
    }

    #[test]
    fn two_stream_block_is_orthogonal() {
        // The 2×2 upper-left block used for 2 streams must itself be
        // invertible with orthogonal columns.
        let p = [
            [P_HTLTF[0][0], P_HTLTF[0][1]],
            [P_HTLTF[1][0], P_HTLTF[1][1]],
        ];
        let det = p[0][0] * p[1][1] - p[0][1] * p[1][0];
        assert!(det.abs() > 1.0);
        let col_dot = p[0][0] * p[0][1] + p[1][0] * p[1][1];
        assert_eq!(col_dot, 0.0);
    }

    #[test]
    fn num_htltf_table() {
        assert_eq!(num_htltf(1), 1);
        assert_eq!(num_htltf(2), 2);
        assert_eq!(num_htltf(3), 4);
        assert_eq!(num_htltf(4), 4);
    }

    #[test]
    fn htltf_signs_follow_p_matrix() {
        let ofdm = Ofdm::new();
        // Stream 0: +LTF, +LTF. Stream 1: −LTF then +LTF... per P:
        // P[0] = [1, -1], P[1] = [1, 1] for the first two symbols.
        let s0_l0 = htltf_time(&ofdm, 0, 2, 0);
        let s0_l1 = htltf_time(&ofdm, 0, 2, 1);
        for (a, b) in s0_l0.iter().zip(&s0_l1) {
            assert!(a.dist(-*b) < 1e-9, "P[0] = [1,-1] ⇒ symbols negate");
        }
        let s1_l0 = htltf_time(&ofdm, 1, 2, 0);
        let s1_l1 = htltf_time(&ofdm, 1, 2, 1);
        for (a, b) in s1_l0.iter().zip(&s1_l1) {
            assert!(a.dist(*b) < 1e-9, "P[1] = [1,1] ⇒ symbols equal");
        }
    }

    #[test]
    fn ht_fields_have_unit_power() {
        let ofdm = Ofdm::new();
        assert!((mean_power(&htstf_time(&ofdm, 0, 2)[16..]) - 1.0).abs() < 1e-9);
        assert!((mean_power(&htltf_time(&ofdm, 1, 2, 0)[16..]) - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn htltf_index_bounds() {
        htltf_time(&Ofdm::new(), 0, 1, 1);
    }
}
