//! OFDM subcarrier layout for the 20 MHz 802.11 channelization.
//!
//! Both the legacy (802.11a) and HT (802.11n) mixed-format layouts use a
//! 64-point FFT with a 16-sample cyclic prefix. Subcarriers are indexed by
//! *logical* frequency `-32..=31`; index 0 is DC and is always null.
//!
//! | format | data carriers | pilots | occupied |
//! |--------|---------------|--------|----------|
//! | legacy | 48            | ±7, ±21| −26..26  |
//! | HT     | 52            | ±7, ±21| −28..28  |

/// FFT size of the 20 MHz channelization.
pub const FFT_LEN: usize = 64;
/// Cyclic-prefix length (0.8 µs at 20 Msps).
pub const CP_LEN: usize = 16;
/// Total samples per OFDM symbol including the cyclic prefix.
pub const SYM_LEN: usize = FFT_LEN + CP_LEN;

/// Pilot subcarrier positions (logical indices), common to both formats.
pub const PILOT_CARRIERS: [i32; 4] = [-21, -7, 7, 21];

/// Number of data carriers in the legacy format.
pub const LEGACY_DATA_CARRIERS: usize = 48;
/// Number of data carriers in the HT format.
pub const HT_DATA_CARRIERS: usize = 52;

/// Subcarrier layout descriptor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Layout {
    /// 802.11a legacy: occupied −26..26.
    Legacy,
    /// 802.11n HT 20 MHz: occupied −28..28.
    Ht,
}

impl Layout {
    /// The highest occupied |subcarrier| index.
    pub fn edge(self) -> i32 {
        match self {
            Layout::Legacy => 26,
            Layout::Ht => 28,
        }
    }

    /// Number of data subcarriers.
    pub fn num_data(self) -> usize {
        match self {
            Layout::Legacy => LEGACY_DATA_CARRIERS,
            Layout::Ht => HT_DATA_CARRIERS,
        }
    }

    /// Data subcarrier logical indices in increasing frequency order
    /// (pilots and DC excluded). Static — call sites never allocate.
    pub fn data_carriers(self) -> &'static [i32] {
        match self {
            Layout::Legacy => &LEGACY_DATA_TABLE,
            Layout::Ht => &HT_DATA_TABLE,
        }
    }

    /// `true` if logical index `k` is a pilot.
    pub fn is_pilot(self, k: i32) -> bool {
        PILOT_CARRIERS.contains(&k)
    }

    /// `true` if logical index `k` carries energy (data or pilot).
    pub fn is_occupied(self, k: i32) -> bool {
        k != 0 && k >= -self.edge() && k <= self.edge()
    }
}

/// Builds a data-carrier table at compile time: every index in
/// `-edge..=edge` except DC and the four pilots. `PILOT_CARRIERS` is
/// restated inline because slice `contains` is not const; the test
/// `data_carriers_match_filter_formula` pins the two definitions together.
const fn build_data_carriers<const N: usize>(edge: i32) -> [i32; N] {
    let mut out = [0i32; N];
    let mut k = -edge;
    let mut i = 0;
    while k <= edge {
        if k != 0 && k != -21 && k != -7 && k != 7 && k != 21 {
            out[i] = k;
            i += 1;
        }
        k += 1;
    }
    assert!(i == N, "carrier count mismatch");
    out
}

static LEGACY_DATA_TABLE: [i32; LEGACY_DATA_CARRIERS] = build_data_carriers(26);
static HT_DATA_TABLE: [i32; HT_DATA_CARRIERS] = build_data_carriers(28);

/// Maps a logical subcarrier index (−32..=31) to its FFT bin (0..=63).
/// Negative frequencies occupy the upper half of the FFT input.
pub fn carrier_to_bin(k: i32) -> usize {
    debug_assert!((-(FFT_LEN as i32) / 2..FFT_LEN as i32 / 2).contains(&k));
    k.rem_euclid(FFT_LEN as i32) as usize
}

/// Inverse of [`carrier_to_bin`]: maps an FFT bin to the logical index.
pub fn bin_to_carrier(bin: usize) -> i32 {
    debug_assert!(bin < FFT_LEN);
    if bin < FFT_LEN / 2 {
        bin as i32
    } else {
        bin as i32 - FFT_LEN as i32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_carrier_counts() {
        assert_eq!(Layout::Legacy.data_carriers().len(), 48);
        assert_eq!(Layout::Ht.data_carriers().len(), 52);
    }

    #[test]
    fn data_carriers_exclude_pilots_and_dc() {
        for layout in [Layout::Legacy, Layout::Ht] {
            let dc = layout.data_carriers();
            assert!(!dc.contains(&0));
            for p in PILOT_CARRIERS {
                assert!(!dc.contains(&p));
            }
            assert!(dc.windows(2).all(|w| w[0] < w[1]), "sorted ascending");
        }
    }

    #[test]
    fn data_carriers_match_filter_formula() {
        for layout in [Layout::Legacy, Layout::Ht] {
            let edge = layout.edge();
            let want: Vec<i32> = (-edge..=edge)
                .filter(|&k| k != 0 && !PILOT_CARRIERS.contains(&k))
                .collect();
            assert_eq!(layout.data_carriers(), want.as_slice());
        }
    }

    #[test]
    fn occupancy_edges() {
        assert!(Layout::Legacy.is_occupied(-26));
        assert!(!Layout::Legacy.is_occupied(-27));
        assert!(Layout::Ht.is_occupied(28));
        assert!(!Layout::Ht.is_occupied(29));
        assert!(!Layout::Ht.is_occupied(0));
    }

    #[test]
    fn bin_mapping_roundtrip() {
        for k in -32..32 {
            let bin = carrier_to_bin(k);
            assert!(bin < FFT_LEN);
            assert_eq!(bin_to_carrier(bin), k);
        }
    }

    #[test]
    fn bin_mapping_known_points() {
        assert_eq!(carrier_to_bin(0), 0);
        assert_eq!(carrier_to_bin(1), 1);
        assert_eq!(carrier_to_bin(-1), 63);
        assert_eq!(carrier_to_bin(-26), 38);
        assert_eq!(carrier_to_bin(26), 26);
    }

    #[test]
    fn symbol_timing_constants() {
        assert_eq!(SYM_LEN, 80);
        assert_eq!(FFT_LEN, 64);
        assert_eq!(CP_LEN, 16);
    }
}
