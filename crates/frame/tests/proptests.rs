//! Property-based tests of framing invariants: constellations, OFDM
//! symbol assembly, SIGNAL codecs and PSDU framing.

use mimonet_dsp::complex::Complex64;
use mimonet_frame::carriers::{bin_to_carrier, carrier_to_bin, FFT_LEN};
use mimonet_frame::mcs::Mcs;
use mimonet_frame::modulation::Modulation;
use mimonet_frame::ofdm::Ofdm;
use mimonet_frame::psdu::{FrameType, MacHeader, Mpdu};
use mimonet_frame::sig::{HtSig, LSig};
use proptest::prelude::*;

fn modulation() -> impl Strategy<Value = Modulation> {
    prop_oneof![
        Just(Modulation::Bpsk),
        Just(Modulation::Qpsk),
        Just(Modulation::Qam16),
        Just(Modulation::Qam64),
    ]
}

proptest! {
    #[test]
    fn map_demap_roundtrip(m in modulation(), seed in any::<u64>()) {
        let mut x = seed | 1;
        let bits: Vec<u8> = (0..m.bits_per_symbol() * 20).map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x & 1) as u8
        }).collect();
        for chunk in bits.chunks(m.bits_per_symbol()) {
            let symbol = m.map_bits(chunk);
            prop_assert_eq!(m.demap_hard(symbol), chunk);
            // LLR signs agree with the bits.
            for (b, l) in chunk.iter().zip(m.demap_soft(symbol, 0.1)) {
                prop_assert!((*b == 0) == (l > 0.0));
            }
        }
    }

    #[test]
    fn demap_hard_is_idempotent_under_requantization(
        m in modulation(),
        re in -2.0..2.0f64,
        im in -2.0..2.0f64,
    ) {
        let y = Complex64::new(re, im);
        let bits = m.demap_hard(y);
        let snapped = m.map_bits(&bits);
        prop_assert_eq!(m.demap_hard(snapped), bits);
    }

    #[test]
    fn soft_llr_magnitude_scales_with_noise(
        m in modulation(),
        re in -2.0..2.0f64,
        im in -2.0..2.0f64,
        nv in 0.01..1.0f64,
    ) {
        let y = Complex64::new(re, im);
        let l1 = m.demap_soft(y, nv);
        let l2 = m.demap_soft(y, nv * 2.0);
        for (a, b) in l1.iter().zip(&l2) {
            prop_assert!((a - 2.0 * b).abs() <= 1e-9 * (1.0 + a.abs()));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn ofdm_roundtrip_arbitrary_bins(values in prop::collection::vec((-2.0..2.0f64, -2.0..2.0f64), FFT_LEN)) {
        let mut bins = [Complex64::ZERO; FFT_LEN];
        for (b, (re, im)) in bins.iter_mut().zip(values) {
            *b = Complex64::new(re, im);
        }
        let ofdm = Ofdm::new();
        let scale = Ofdm::unit_power_scale(56);
        let sym = ofdm.modulate_bins(&bins, scale);
        let back = ofdm.demodulate(&sym, scale);
        for (a, b) in bins.iter().zip(back.iter()) {
            prop_assert!(a.dist(*b) < 1e-8);
        }
    }

    #[test]
    fn carrier_bin_bijection(k in -32i32..32) {
        prop_assert_eq!(bin_to_carrier(carrier_to_bin(k)), k);
    }
}

proptest! {
    #[test]
    fn lsig_roundtrip(rate_idx in 0usize..8, len in 1u16..4096) {
        let rate = mimonet_frame::sig::LEGACY_RATE_CODES[rate_idx].1;
        let sig = LSig::new(rate, len);
        prop_assert_eq!(LSig::decode(&sig.encode()), Ok(sig));
    }

    #[test]
    fn htsig_roundtrip(mcs in 0u8..16, len in any::<u16>()) {
        let sig = HtSig::new(mcs, len);
        prop_assert_eq!(HtSig::decode(&sig.encode()), Ok(sig));
    }

    #[test]
    fn htsig_single_flip_always_detected(mcs in 0u8..16, len in any::<u16>(), pos in 0usize..42) {
        let mut bits = HtSig::new(mcs, len).encode();
        bits[pos] ^= 1;
        prop_assert!(HtSig::decode(&bits).is_err());
    }

    #[test]
    fn mpdu_roundtrip(
        src in any::<[u8; 6]>(),
        dst in any::<[u8; 6]>(),
        seq in 0u16..0x1000,
        payload in prop::collection::vec(any::<u8>(), 0..512),
    ) {
        let mpdu = Mpdu::data(src, dst, seq, payload);
        let psdu = mpdu.to_psdu();
        prop_assert_eq!(psdu.len(), mpdu.psdu_len());
        prop_assert_eq!(Mpdu::from_psdu(&psdu), Some(mpdu));
    }

    #[test]
    fn mac_header_roundtrip(duration in any::<u16>(), seq in any::<u16>()) {
        let h = MacHeader {
            frame_type: FrameType::Data,
            duration,
            dst: [1; 6],
            src: [2; 6],
            seq,
        };
        let parsed = MacHeader::from_bytes(&h.to_bytes()).unwrap();
        prop_assert_eq!(parsed.duration, duration);
        prop_assert_eq!(parsed.seq, seq & 0x0FFF);
    }

    #[test]
    fn mcs_padding_invariants(idx in 0u8..16, payload_bits in 0usize..20000) {
        let mcs = Mcs::from_index(idx).unwrap();
        let pad = mcs.pad_bits(payload_bits);
        let syms = mcs.num_symbols(payload_bits);
        prop_assert!(pad < mcs.n_dbps());
        prop_assert_eq!(16 + payload_bits + 6 + pad, syms * mcs.n_dbps());
        prop_assert!(syms >= 1);
    }
}
