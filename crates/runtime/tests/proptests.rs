//! Property-based tests of the flowgraph runtime: delivery must be exact
//! and order-preserving for arbitrary data, chunk sizes and topologies,
//! on both schedulers.

use mimonet_runtime::{
    ChunkBlock, Flowgraph, Item, MapBlock, MessageHub, VectorSink, VectorSource,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn pipeline_delivers_everything_in_order(
        data in prop::collection::vec(any::<u8>(), 0..2000),
        chunk in 1usize..97,
    ) {
        let mut fg = Flowgraph::new();
        let src = fg.add(
            VectorSource::new(data.iter().map(|&b| Item::Byte(b)).collect()).with_chunk(chunk),
        );
        let id = fg.add(MapBlock::new("id", |i| i));
        let (sink, handle) = VectorSink::new();
        let sink = fg.add(sink);
        fg.connect(src, 0, id, 0).unwrap();
        fg.connect(id, 0, sink, 0).unwrap();
        fg.run(&MessageHub::new()).unwrap();
        prop_assert_eq!(handle.bytes(), data);
    }

    #[test]
    fn rate_changer_consumes_whole_chunks_only(
        data in prop::collection::vec(any::<u8>(), 0..500),
        in_chunk in 1usize..17,
        chunk in 1usize..33,
    ) {
        let mut fg = Flowgraph::new();
        let src = fg.add(
            VectorSource::new(data.iter().map(|&b| Item::Byte(b)).collect()).with_chunk(chunk),
        );
        // Emit the first byte of each chunk.
        let dec = fg.add(ChunkBlock::new("first", in_chunk, |c| vec![c[0]]));
        let (sink, handle) = VectorSink::new();
        let sink = fg.add(sink);
        fg.connect(src, 0, dec, 0).unwrap();
        fg.connect(dec, 0, sink, 0).unwrap();
        fg.run(&MessageHub::new()).unwrap();
        let want: Vec<u8> = data.chunks(in_chunk)
            .filter(|c| c.len() == in_chunk)
            .map(|c| c[0])
            .collect();
        prop_assert_eq!(handle.bytes(), want);
    }

    #[test]
    fn both_schedulers_agree(
        data in prop::collection::vec(-100.0..100.0f64, 1..600),
        chunk in 1usize..64,
    ) {
        let build = || {
            let mut fg = Flowgraph::new();
            let src = fg.add(
                VectorSource::new(data.iter().map(|&v| Item::Real(v)).collect()).with_chunk(chunk),
            );
            let sq = fg.add(MapBlock::new("sq", |i| {
                let v = i.real();
                Item::Real(v * v + 1.0)
            }));
            let (sink, handle) = VectorSink::new();
            let sink = fg.add(sink);
            fg.connect(src, 0, sq, 0).unwrap();
            fg.connect(sq, 0, sink, 0).unwrap();
            (fg, handle)
        };
        let (mut fg1, h1) = build();
        fg1.run(&MessageHub::new()).unwrap();
        let (fg2, h2) = build();
        fg2.run_threaded(std::sync::Arc::new(MessageHub::new())).unwrap();
        prop_assert_eq!(h1.reals(), h2.reals());
    }
}
