//! Stream items, tags and the buffers blocks read from / write to.
//!
//! GNU Radio streams are typed (`gr_complex`, `float`, `char`); MIMONet's
//! runtime carries a small tagged union [`Item`] instead, which keeps the
//! scheduler monomorphic while still letting a graph mix sample, soft-bit
//! and byte streams. Stream [`Tag`]s ride along at absolute item offsets —
//! the mechanism the transceiver uses to mark frame starts and carry
//! decoded headers downstream, exactly like GNU Radio's stream tags.

use std::collections::VecDeque;

/// One item on a stream.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Item {
    /// A complex baseband sample.
    Complex(f64, f64),
    /// A real value (soft bit, metric, ...).
    Real(f64),
    /// A byte (hard bits, octets).
    Byte(u8),
}

impl Item {
    /// Interprets as a complex sample.
    ///
    /// # Panics
    ///
    /// Panics if the item is not `Complex` — a graph type error.
    pub fn complex(self) -> (f64, f64) {
        match self {
            Item::Complex(re, im) => (re, im),
            other => panic!("stream type error: expected Complex, got {other:?}"),
        }
    }

    /// Interprets as a real value.
    pub fn real(self) -> f64 {
        match self {
            Item::Real(v) => v,
            other => panic!("stream type error: expected Real, got {other:?}"),
        }
    }

    /// Interprets as a byte.
    pub fn byte(self) -> u8 {
        match self {
            Item::Byte(b) => b,
            other => panic!("stream type error: expected Byte, got {other:?}"),
        }
    }
}

/// Value carried by a stream tag.
#[derive(Clone, Debug, PartialEq)]
pub enum TagValue {
    /// Unsigned integer payload (lengths, indices).
    U64(u64),
    /// Float payload (CFO estimates, SNR).
    F64(f64),
    /// Byte payload (decoded headers).
    Bytes(Vec<u8>),
}

/// A stream tag at an absolute item offset.
#[derive(Clone, Debug, PartialEq)]
pub struct Tag {
    /// Absolute offset (in items since stream start) of the tagged item.
    pub offset: u64,
    /// Key, e.g. `"frame_start"`.
    pub key: String,
    /// Payload.
    pub value: TagValue,
}

/// The read side of an edge, presented to a block's `work`.
#[derive(Debug, Default)]
pub struct InputBuffer {
    items: VecDeque<Item>,
    tags: VecDeque<Tag>,
    /// Absolute offset of `items[0]`.
    read_offset: u64,
    /// Upstream has finished and will produce no more items.
    pub(crate) upstream_done: bool,
}

impl InputBuffer {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Items currently readable.
    pub fn available(&self) -> usize {
        self.items.len()
    }

    /// `true` when the upstream block has finished (no more data will
    /// arrive beyond what [`Self::available`] reports).
    pub fn is_finished(&self) -> bool {
        self.upstream_done
    }

    /// Absolute offset of the next readable item.
    pub fn offset(&self) -> u64 {
        self.read_offset
    }

    /// Peeks at item `i` (0 = next) without consuming.
    pub fn peek(&self, i: usize) -> Option<Item> {
        self.items.get(i).copied()
    }

    /// Consumes and returns up to `n` items.
    pub fn take(&mut self, n: usize) -> Vec<Item> {
        let n = n.min(self.items.len());
        let out: Vec<Item> = self.items.drain(..n).collect();
        self.read_offset += n as u64;
        // Drop tags that fell behind the read pointer.
        while matches!(self.tags.front(), Some(t) if t.offset < self.read_offset) {
            self.tags.pop_front();
        }
        out
    }

    /// Discards up to `n` items without returning them.
    pub fn skip(&mut self, n: usize) {
        let n = n.min(self.items.len());
        self.items.drain(..n);
        self.read_offset += n as u64;
        while matches!(self.tags.front(), Some(t) if t.offset < self.read_offset) {
            self.tags.pop_front();
        }
    }

    /// Tags within the next `n` readable items.
    pub fn tags_in_window(&self, n: usize) -> Vec<&Tag> {
        let end = self.read_offset + n as u64;
        self.tags
            .iter()
            .filter(|t| t.offset >= self.read_offset && t.offset < end)
            .collect()
    }

    /// Feeds items (scheduler side).
    pub(crate) fn push_items(&mut self, items: impl IntoIterator<Item = Item>) {
        self.items.extend(items);
    }

    /// Feeds a tag (scheduler side).
    pub(crate) fn push_tag(&mut self, tag: Tag) {
        self.tags.push_back(tag);
    }
}

/// The write side of an edge.
#[derive(Debug, Default)]
pub struct OutputBuffer {
    items: Vec<Item>,
    tags: Vec<Tag>,
    /// Absolute offset of the next item this block writes.
    write_offset: u64,
}

impl OutputBuffer {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Absolute offset the next pushed item will have.
    pub fn offset(&self) -> u64 {
        self.write_offset
    }

    /// Appends one item.
    pub fn push(&mut self, item: Item) {
        self.items.push(item);
        self.write_offset += 1;
    }

    /// Appends many items.
    pub fn push_slice(&mut self, items: &[Item]) {
        self.items.extend_from_slice(items);
        self.write_offset += items.len() as u64;
    }

    /// Attaches a tag at absolute offset `offset` (usually
    /// `self.offset()` before pushing the tagged item).
    pub fn add_tag(&mut self, offset: u64, key: impl Into<String>, value: TagValue) {
        self.tags.push(Tag {
            offset,
            key: key.into(),
            value,
        });
    }

    /// Items produced since the last drain.
    pub fn pending(&self) -> usize {
        self.items.len()
    }

    /// Applies `f` to every not-yet-drained item in place, preserving
    /// offsets and tags. Used by wrapper blocks (fault injection) that
    /// mutate another block's output before the scheduler ships it;
    /// a drain-and-repush would advance `write_offset` a second time and
    /// misalign every downstream tag.
    pub(crate) fn map_pending(&mut self, mut f: impl FnMut(&mut Item)) {
        for item in &mut self.items {
            f(item);
        }
    }

    /// Drains produced items and tags (scheduler side).
    pub(crate) fn drain(&mut self) -> (Vec<Item>, Vec<Tag>) {
        (
            std::mem::take(&mut self.items),
            std::mem::take(&mut self.tags),
        )
    }
}

/// Convenience conversions between `Item` streams and concrete types.
pub mod convert {
    use super::Item;

    /// Wraps complex samples.
    pub fn from_complex(xs: &[mimonet_dsp::complex::Complex64]) -> Vec<Item> {
        xs.iter().map(|c| Item::Complex(c.re, c.im)).collect()
    }

    /// Unwraps complex samples.
    pub fn to_complex(items: &[Item]) -> Vec<mimonet_dsp::complex::Complex64> {
        items
            .iter()
            .map(|i| {
                let (re, im) = i.complex();
                mimonet_dsp::complex::Complex64::new(re, im)
            })
            .collect()
    }

    /// Wraps bytes.
    pub fn from_bytes(bs: &[u8]) -> Vec<Item> {
        bs.iter().map(|&b| Item::Byte(b)).collect()
    }

    /// Unwraps bytes.
    pub fn to_bytes(items: &[Item]) -> Vec<u8> {
        items.iter().map(|i| i.byte()).collect()
    }

    /// Wraps reals.
    pub fn from_reals(rs: &[f64]) -> Vec<Item> {
        rs.iter().map(|&r| Item::Real(r)).collect()
    }

    /// Unwraps reals.
    pub fn to_reals(items: &[Item]) -> Vec<f64> {
        items.iter().map(|i| i.real()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn item_accessors() {
        assert_eq!(Item::Complex(1.0, -2.0).complex(), (1.0, -2.0));
        assert_eq!(Item::Real(0.5).real(), 0.5);
        assert_eq!(Item::Byte(7).byte(), 7);
    }

    #[test]
    #[should_panic(expected = "stream type error")]
    fn type_mismatch_panics() {
        Item::Byte(1).complex();
    }

    #[test]
    fn input_take_and_offsets() {
        let mut buf = InputBuffer::new();
        buf.push_items((0..10u8).map(Item::Byte));
        assert_eq!(buf.available(), 10);
        assert_eq!(buf.offset(), 0);
        let got = buf.take(4);
        assert_eq!(got.len(), 4);
        assert_eq!(buf.offset(), 4);
        assert_eq!(buf.peek(0), Some(Item::Byte(4)));
        buf.skip(3);
        assert_eq!(buf.offset(), 7);
        assert_eq!(buf.take(100).len(), 3);
    }

    #[test]
    fn tags_follow_the_read_pointer() {
        let mut buf = InputBuffer::new();
        buf.push_items((0..20u8).map(Item::Byte));
        buf.push_tag(Tag {
            offset: 5,
            key: "a".into(),
            value: TagValue::U64(1),
        });
        buf.push_tag(Tag {
            offset: 15,
            key: "b".into(),
            value: TagValue::U64(2),
        });
        assert_eq!(buf.tags_in_window(10).len(), 1);
        buf.take(6); // read past tag "a"
        assert_eq!(buf.tags_in_window(20).len(), 1);
        assert_eq!(buf.tags_in_window(20)[0].key, "b");
    }

    #[test]
    fn output_offsets_and_tags() {
        let mut out = OutputBuffer::new();
        assert_eq!(out.offset(), 0);
        out.push(Item::Real(1.0));
        let frame_start = out.offset();
        out.add_tag(frame_start, "frame_start", TagValue::U64(42));
        out.push_slice(&[Item::Real(2.0), Item::Real(3.0)]);
        assert_eq!(out.offset(), 3);
        let (items, tags) = out.drain();
        assert_eq!(items.len(), 3);
        assert_eq!(tags.len(), 1);
        assert_eq!(tags[0].offset, 1);
        assert_eq!(out.pending(), 0);
        // Offsets keep counting after a drain.
        out.push(Item::Real(4.0));
        assert_eq!(out.offset(), 4);
    }

    #[test]
    fn conversions_roundtrip() {
        use mimonet_dsp::complex::C64;
        let cs = vec![C64::new(1.0, 2.0), C64::new(-0.5, 0.0)];
        assert_eq!(convert::to_complex(&convert::from_complex(&cs)), cs);
        let bs = vec![1u8, 2, 255];
        assert_eq!(convert::to_bytes(&convert::from_bytes(&bs)), bs);
        let rs = vec![0.25, -1.5];
        assert_eq!(convert::to_reals(&convert::from_reals(&rs)), rs);
    }
}
