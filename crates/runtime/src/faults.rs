//! Seeded fault injection for flowgraph blocks.
//!
//! [`FaultInjectorBlock`] wraps any [`Block`] and misbehaves on a
//! deterministic schedule derived from a seed: corrupting the wrapped
//! block's output samples, stalling (reporting `Blocked` forever without
//! consuming), panicking, or returning a typed [`BlockError`]. It exists
//! to *test* the supervised scheduler — every failure mode the supervisor
//! claims to contain can be provoked on demand, reproducibly, from a
//! single `u64`.

use crate::block::{Block, BlockCtx, BlockError, WorkStatus};
use crate::buffer::{InputBuffer, Item, OutputBuffer};

/// What the injector does to the wrapped block, and when.
///
/// Schedules count *work calls* (not items), so a fault fires at the same
/// logical point in the graph's execution regardless of scheduler
/// interleaving.
#[derive(Clone, Copy, Debug)]
pub enum FaultMode {
    /// Corrupt each output item independently with probability `rate`
    /// (complex/real samples get a large deterministic offset, bytes are
    /// bit-flipped), starting from work call `after`.
    CorruptItems { after: u64, rate: f64 },
    /// From work call `after` onward, stop calling the inner block and
    /// report `Blocked` forever without consuming input — a wedged block
    /// that stays responsive to cancellation, which is exactly the shape
    /// the watchdog must catch.
    Stall { after: u64 },
    /// Panic (with a recognisable message) on work call `at`.
    Panic { at: u64 },
    /// Return `WorkStatus::Error` on work call `at`.
    Fail { at: u64 },
}

/// Wraps a block and injects the configured fault on a seeded schedule.
pub struct FaultInjectorBlock {
    inner: Box<dyn Block>,
    mode: FaultMode,
    /// SplitMix64 state for per-item corruption decisions.
    rng: u64,
    calls: u64,
    name: String,
}

/// SplitMix64 step — the same generator the sweep engine uses for seed
/// derivation, so fault schedules stay reproducible without pulling a
/// full RNG crate into the runtime.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform f64 in [0, 1) from one SplitMix64 draw.
fn unit_f64(state: &mut u64) -> f64 {
    (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64
}

impl FaultInjectorBlock {
    /// Wraps `inner`, injecting `mode` on a schedule derived from `seed`.
    pub fn new(inner: impl Block + 'static, mode: FaultMode, seed: u64) -> Self {
        let name = format!("fault:{}", inner.name());
        Self {
            inner: Box::new(inner),
            mode,
            rng: seed | 1,
            calls: 0,
            name,
        }
    }

    fn corrupt(&mut self, outputs: &mut [OutputBuffer], rate: f64) {
        for out in outputs.iter_mut() {
            let rng = &mut self.rng;
            out.map_pending(|item| {
                if unit_f64(rng) >= rate {
                    return;
                }
                match item {
                    Item::Complex(re, im) => {
                        *re += 40.0 * (unit_f64(rng) - 0.5);
                        *im += 40.0 * (unit_f64(rng) - 0.5);
                    }
                    Item::Real(v) => *v += 40.0 * (unit_f64(rng) - 0.5),
                    Item::Byte(b) => *b ^= 1 << (splitmix64(rng) % 8),
                }
            });
        }
    }
}

impl Block for FaultInjectorBlock {
    fn name(&self) -> &str {
        &self.name
    }

    fn num_inputs(&self) -> usize {
        self.inner.num_inputs()
    }

    fn num_outputs(&self) -> usize {
        self.inner.num_outputs()
    }

    fn work(
        &mut self,
        inputs: &mut [InputBuffer],
        outputs: &mut [OutputBuffer],
        ctx: &mut BlockCtx<'_>,
    ) -> WorkStatus {
        let call = self.calls;
        self.calls += 1;
        match self.mode {
            FaultMode::Stall { after } if call >= after => return WorkStatus::Blocked,
            FaultMode::Panic { at } if call == at => {
                panic!("injected fault: panic at work call {at}")
            }
            FaultMode::Fail { at } if call == at => {
                return WorkStatus::Error(BlockError::new(
                    "injected",
                    format!("injected fault at work call {at}"),
                ));
            }
            _ => {}
        }
        let status = self.inner.work(inputs, outputs, ctx);
        if let FaultMode::CorruptItems { after, rate } = self.mode {
            if call >= after {
                self.corrupt(outputs, rate);
            }
        }
        status
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::{VectorSink, VectorSource};
    use crate::graph::{Flowgraph, GraphError, SupervisorConfig};
    use crate::message::MessageHub;
    use std::sync::Arc;
    use std::time::Duration;

    fn byte_pipeline(mode: FaultMode, seed: u64) -> (Flowgraph, crate::block::SinkHandle) {
        let mut fg = Flowgraph::new();
        let src = fg.add(FaultInjectorBlock::new(
            VectorSource::new((0..200u8).map(Item::Byte).collect()).with_chunk(16),
            mode,
            seed,
        ));
        let (sink, handle) = VectorSink::new();
        let sink = fg.add(sink);
        fg.connect(src, 0, sink, 0).unwrap();
        (fg, handle)
    }

    #[test]
    fn injected_panic_is_reported_with_payload() {
        let (fg, _h) = byte_pipeline(FaultMode::Panic { at: 3 }, 1);
        let err = fg.run_threaded(Arc::new(MessageHub::new())).unwrap_err();
        match err {
            GraphError::BlockPanicked { block, payload } => {
                assert_eq!(block, "fault:vector_source");
                assert!(payload.contains("injected fault"), "payload {payload:?}");
            }
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn injected_typed_error_is_reported() {
        let (fg, _h) = byte_pipeline(FaultMode::Fail { at: 2 }, 1);
        let err = fg.run_threaded(Arc::new(MessageHub::new())).unwrap_err();
        match err {
            GraphError::BlockFailed { block, error } => {
                assert_eq!(block, "fault:vector_source");
                assert_eq!(error.kind, "injected");
            }
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn injected_stall_is_caught_by_watchdog() {
        // The stall goes on the *sink*: a blocked source is legitimately
        // treated as finished, but a sink that reports Blocked while data
        // is sitting on its input is a wedge only the watchdog can see.
        let mut fg = Flowgraph::new();
        let src = fg.add(VectorSource::new((0..200u8).map(Item::Byte).collect()).with_chunk(16));
        let (sink, _handle) = VectorSink::new();
        // `after: 0` wedges the sink from its first call — with any later
        // threshold the sink can legitimately finish first on a
        // single-core host where the source runs to completion before the
        // sink is ever scheduled.
        let sink = fg.add(FaultInjectorBlock::new(
            sink,
            FaultMode::Stall { after: 0 },
            1,
        ));
        fg.connect(src, 0, sink, 0).unwrap();
        let sup = SupervisorConfig {
            stall_timeout: Duration::from_millis(100),
            ..SupervisorConfig::default()
        };
        let start = std::time::Instant::now();
        let err = fg
            .run_threaded_with(Arc::new(MessageHub::new()), sup)
            .unwrap_err();
        assert!(start.elapsed() < Duration::from_secs(10));
        match err {
            GraphError::BlockStalled { block, .. } => {
                assert_eq!(block, "fault:vector_sink");
            }
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn corruption_is_deterministic_per_seed() {
        let run = |seed: u64| {
            let (mut fg, h) = byte_pipeline(
                FaultMode::CorruptItems {
                    after: 0,
                    rate: 0.3,
                },
                seed,
            );
            fg.run(&MessageHub::new()).unwrap();
            h.bytes()
        };
        let a = run(7);
        let b = run(7);
        let c = run(8);
        assert_eq!(a, b, "same seed must corrupt identically");
        assert_ne!(a, c, "different seed should differ");
        let clean: Vec<u8> = (0..200u8).collect();
        assert_ne!(a, clean, "rate 0.3 over 200 bytes must flip something");
        // Corruption is single-bit flips: byte count is preserved.
        assert_eq!(a.len(), 200);
    }

    #[test]
    fn passthrough_when_fault_never_fires() {
        let (mut fg, h) = byte_pipeline(FaultMode::Panic { at: u64::MAX }, 1);
        fg.run(&MessageHub::new()).unwrap();
        assert_eq!(h.bytes(), (0..200u8).collect::<Vec<_>>());
    }
}
