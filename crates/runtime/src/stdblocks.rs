//! Standard utility blocks — the everyday vocabulary a flowgraph library
//! needs around the domain-specific blocks (GNU Radio's `blocks/`
//! namespace equivalent).

use crate::block::{Block, BlockCtx, WorkStatus};
use crate::buffer::{InputBuffer, Item, OutputBuffer};

/// Passes the first `n` items, then finishes (GNU Radio `head`). Useful
/// to bound otherwise endless sources in tests and benchmarks.
pub struct HeadBlock {
    remaining: usize,
}

impl HeadBlock {
    /// Creates a head block passing `n` items.
    pub fn new(n: usize) -> Self {
        Self { remaining: n }
    }
}

impl Block for HeadBlock {
    fn name(&self) -> &str {
        "head"
    }
    fn num_inputs(&self) -> usize {
        1
    }
    fn num_outputs(&self) -> usize {
        1
    }
    fn work(
        &mut self,
        inputs: &mut [InputBuffer],
        outputs: &mut [OutputBuffer],
        _ctx: &mut BlockCtx<'_>,
    ) -> WorkStatus {
        if self.remaining == 0 {
            return WorkStatus::Done;
        }
        let take = inputs[0].available().min(self.remaining);
        if take == 0 {
            return if inputs[0].is_finished() {
                WorkStatus::Done
            } else {
                WorkStatus::Blocked
            };
        }
        let items = inputs[0].take(take);
        outputs[0].push_slice(&items);
        self.remaining -= take;
        WorkStatus::Progress
    }
}

/// Discards everything (GNU Radio `null_sink`). Terminates dangling ports.
pub struct NullSink;

impl Block for NullSink {
    fn name(&self) -> &str {
        "null_sink"
    }
    fn num_inputs(&self) -> usize {
        1
    }
    fn num_outputs(&self) -> usize {
        0
    }
    fn work(
        &mut self,
        inputs: &mut [InputBuffer],
        _outputs: &mut [OutputBuffer],
        _ctx: &mut BlockCtx<'_>,
    ) -> WorkStatus {
        let n = inputs[0].available();
        if n > 0 {
            inputs[0].skip(n);
            WorkStatus::Progress
        } else if inputs[0].is_finished() {
            WorkStatus::Done
        } else {
            WorkStatus::Blocked
        }
    }
}

/// Adds N complex streams element-wise (GNU Radio `add_cc`).
pub struct AddBlock {
    n: usize,
}

impl AddBlock {
    /// Creates an `n`-input adder.
    pub fn new(n: usize) -> Self {
        assert!(n >= 2, "an adder needs at least two inputs");
        Self { n }
    }
}

impl Block for AddBlock {
    fn name(&self) -> &str {
        "add"
    }
    fn num_inputs(&self) -> usize {
        self.n
    }
    fn num_outputs(&self) -> usize {
        1
    }
    fn work(
        &mut self,
        inputs: &mut [InputBuffer],
        outputs: &mut [OutputBuffer],
        _ctx: &mut BlockCtx<'_>,
    ) -> WorkStatus {
        let ready = inputs.iter().map(|i| i.available()).min().unwrap_or(0);
        if ready == 0 {
            let starved_out = inputs.iter().any(|i| i.is_finished() && i.available() == 0);
            return if starved_out {
                WorkStatus::Done
            } else {
                WorkStatus::Blocked
            };
        }
        let cols: Vec<Vec<Item>> = inputs.iter_mut().map(|i| i.take(ready)).collect();
        for row in 0..ready {
            let mut re = 0.0;
            let mut im = 0.0;
            for col in &cols {
                let (r, i) = col[row].complex();
                re += r;
                im += i;
            }
            outputs[0].push(Item::Complex(re, im));
        }
        WorkStatus::Progress
    }
}

/// Multiplies a complex stream by a constant (GNU Radio
/// `multiply_const_cc`) — gain stages, phase rotations.
pub struct MultiplyConstBlock {
    re: f64,
    im: f64,
}

impl MultiplyConstBlock {
    /// Creates a multiplier by `re + i*im`.
    pub fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }
}

impl Block for MultiplyConstBlock {
    fn name(&self) -> &str {
        "multiply_const"
    }
    fn num_inputs(&self) -> usize {
        1
    }
    fn num_outputs(&self) -> usize {
        1
    }
    fn work(
        &mut self,
        inputs: &mut [InputBuffer],
        outputs: &mut [OutputBuffer],
        _ctx: &mut BlockCtx<'_>,
    ) -> WorkStatus {
        let n = inputs[0].available();
        if n == 0 {
            return if inputs[0].is_finished() {
                WorkStatus::Done
            } else {
                WorkStatus::Blocked
            };
        }
        for item in inputs[0].take(n) {
            let (r, i) = item.complex();
            outputs[0].push(Item::Complex(
                r * self.re - i * self.im,
                r * self.im + i * self.re,
            ));
        }
        WorkStatus::Progress
    }
}

/// Publishes the running average power of a complex stream to a message
/// topic every `interval` items (a probe, GNU Radio `probe_avg_mag_sqrd`).
pub struct PowerProbe {
    topic: String,
    interval: usize,
    acc: f64,
    count: usize,
}

impl PowerProbe {
    /// Creates a probe publishing to `topic` every `interval` samples.
    pub fn new(topic: impl Into<String>, interval: usize) -> Self {
        assert!(interval > 0, "interval must be nonzero");
        Self {
            topic: topic.into(),
            interval,
            acc: 0.0,
            count: 0,
        }
    }
}

impl Block for PowerProbe {
    fn name(&self) -> &str {
        "power_probe"
    }
    fn num_inputs(&self) -> usize {
        1
    }
    fn num_outputs(&self) -> usize {
        1
    }
    fn work(
        &mut self,
        inputs: &mut [InputBuffer],
        outputs: &mut [OutputBuffer],
        ctx: &mut BlockCtx<'_>,
    ) -> WorkStatus {
        let n = inputs[0].available();
        if n == 0 {
            return if inputs[0].is_finished() {
                WorkStatus::Done
            } else {
                WorkStatus::Blocked
            };
        }
        for item in inputs[0].take(n) {
            let (r, i) = item.complex();
            self.acc += r * r + i * i;
            self.count += 1;
            if self.count == self.interval {
                ctx.msgs.publish(
                    &self.topic,
                    crate::message::Message::F64(self.acc / self.interval as f64),
                );
                self.acc = 0.0;
                self.count = 0;
            }
            outputs[0].push(item);
        }
        WorkStatus::Progress
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::{VectorSink, VectorSource};
    use crate::graph::Flowgraph;
    use crate::message::MessageHub;

    fn complex_items(n: usize) -> Vec<Item> {
        (0..n)
            .map(|i| Item::Complex(i as f64, -(i as f64)))
            .collect()
    }

    #[test]
    fn head_truncates() {
        let mut fg = Flowgraph::new();
        let src = fg.add(VectorSource::new(complex_items(100)).with_chunk(7));
        let head = fg.add(HeadBlock::new(23));
        let (sink, handle) = VectorSink::new();
        let sink = fg.add(sink);
        fg.connect(src, 0, head, 0).unwrap();
        fg.connect(head, 0, sink, 0).unwrap();
        fg.run(&MessageHub::new()).unwrap();
        assert_eq!(handle.len(), 23);
        assert_eq!(handle.complex()[22].re, 22.0);
    }

    #[test]
    fn head_passes_short_input_entirely() {
        let mut fg = Flowgraph::new();
        let src = fg.add(VectorSource::new(complex_items(5)));
        let head = fg.add(HeadBlock::new(100));
        let (sink, handle) = VectorSink::new();
        let sink = fg.add(sink);
        fg.connect(src, 0, head, 0).unwrap();
        fg.connect(head, 0, sink, 0).unwrap();
        fg.run(&MessageHub::new()).unwrap();
        assert_eq!(handle.len(), 5);
    }

    #[test]
    fn null_sink_swallows() {
        let mut fg = Flowgraph::new();
        let src = fg.add(VectorSource::new(complex_items(50)));
        let sink = fg.add(NullSink);
        fg.connect(src, 0, sink, 0).unwrap();
        fg.run(&MessageHub::new()).unwrap();
    }

    #[test]
    fn adder_sums_elementwise() {
        let mut fg = Flowgraph::new();
        let a = fg.add(VectorSource::new(complex_items(10)));
        let b = fg.add(VectorSource::new(complex_items(10)));
        let add = fg.add(AddBlock::new(2));
        let (sink, handle) = VectorSink::new();
        let sink = fg.add(sink);
        fg.connect(a, 0, add, 0).unwrap();
        fg.connect(b, 0, add, 1).unwrap();
        fg.connect(add, 0, sink, 0).unwrap();
        fg.run(&MessageHub::new()).unwrap();
        let out = handle.complex();
        assert_eq!(out.len(), 10);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(v.re, 2.0 * i as f64);
            assert_eq!(v.im, -2.0 * i as f64);
        }
    }

    #[test]
    fn multiply_by_i_rotates() {
        let mut fg = Flowgraph::new();
        let src = fg.add(VectorSource::new(vec![
            Item::Complex(1.0, 0.0),
            Item::Complex(0.0, 1.0),
        ]));
        let mul = fg.add(MultiplyConstBlock::new(0.0, 1.0));
        let (sink, handle) = VectorSink::new();
        let sink = fg.add(sink);
        fg.connect(src, 0, mul, 0).unwrap();
        fg.connect(mul, 0, sink, 0).unwrap();
        fg.run(&MessageHub::new()).unwrap();
        let out = handle.complex();
        assert!((out[0].re, out[0].im) == (0.0, 1.0));
        assert!((out[1].re, out[1].im) == (-1.0, 0.0));
    }

    #[test]
    fn power_probe_reports_and_passes_through() {
        let mut fg = Flowgraph::new();
        // Constant-magnitude stream of power 4.
        let src = fg.add(VectorSource::new(vec![Item::Complex(2.0, 0.0); 64]));
        let probe = fg.add(PowerProbe::new("pwr", 16));
        let (sink, handle) = VectorSink::new();
        let sink = fg.add(sink);
        fg.connect(src, 0, probe, 0).unwrap();
        fg.connect(probe, 0, sink, 0).unwrap();
        let hub = MessageHub::new();
        let sub = hub.subscribe("pwr");
        fg.run(&hub).unwrap();
        assert_eq!(handle.len(), 64, "probe must be transparent");
        let reports = sub.drain();
        assert_eq!(reports.len(), 4);
        for r in reports {
            match r {
                crate::message::Message::F64(p) => assert!((p - 4.0).abs() < 1e-12),
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least two inputs")]
    fn adder_needs_two_inputs() {
        AddBlock::new(1);
    }
}
