//! The block trait and a library of general-purpose blocks.
//!
//! A block mirrors GNU Radio's `general_work`: the scheduler hands it its
//! input buffers and output buffers; the block consumes what it wants,
//! produces what it can, and reports whether it made progress. Rate
//! changes, buffering and multi-port blocks all fall out naturally.

use crate::buffer::{convert, InputBuffer, Item, OutputBuffer};
use crate::message::MessageHub;

/// A typed, recoverable block failure — the alternative to panicking.
///
/// A block that hits an unprocessable condition (malformed header,
/// numerically singular matrix, resource exhaustion) returns
/// [`WorkStatus::Error`] carrying one of these; the scheduler stops the
/// graph and surfaces it as `GraphError::BlockFailed` with the block's
/// name attached, so the failure is diagnosable without a backtrace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BlockError {
    /// Short machine-matchable failure class, e.g. `"bad-header"`.
    pub kind: String,
    /// Human-readable detail.
    pub detail: String,
}

impl BlockError {
    /// Creates an error with a failure class and detail message.
    pub fn new(kind: impl Into<String>, detail: impl Into<String>) -> Self {
        Self {
            kind: kind.into(),
            detail: detail.into(),
        }
    }
}

impl std::fmt::Display for BlockError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.kind, self.detail)
    }
}

impl std::error::Error for BlockError {}

/// What a `work` call accomplished.
#[derive(Clone, Debug, PartialEq)]
pub enum WorkStatus {
    /// Consumed and/or produced something; call again.
    Progress,
    /// Cannot proceed until more input arrives.
    Blocked,
    /// This block will never produce again (source exhausted, or all
    /// upstreams finished and residual input processed).
    Done,
    /// The block failed in a typed, recoverable way; the scheduler stops
    /// the graph and reports `GraphError::BlockFailed`.
    Error(BlockError),
}

/// Context handed to `work` alongside the stream buffers.
pub struct BlockCtx<'a> {
    /// Publish/subscribe message hub shared by the flowgraph (out-of-band
    /// control, decoded-frame announcements, ...).
    pub msgs: &'a MessageHub,
}

/// A signal-processing block.
pub trait Block: Send {
    /// Human-readable name for diagnostics.
    fn name(&self) -> &str;
    /// Number of input stream ports.
    fn num_inputs(&self) -> usize;
    /// Number of output stream ports.
    fn num_outputs(&self) -> usize;
    /// Processes available input into output.
    fn work(
        &mut self,
        inputs: &mut [InputBuffer],
        outputs: &mut [OutputBuffer],
        ctx: &mut BlockCtx<'_>,
    ) -> WorkStatus;
    /// Hands the block its telemetry slot when the flowgraph is
    /// instrumented, so blocks with internal machinery (bounded network
    /// queues, reader threads) can surface their own counters — e.g.
    /// overflow drops into `BlockTelemetry::queue_drops`. The default
    /// implementation ignores it; the schedulers record the generic
    /// counters regardless.
    fn attach_telemetry(&mut self, tel: &std::sync::Arc<crate::telemetry::BlockTelemetry>) {
        let _ = tel;
    }
}

/// Emits a fixed item vector once, then finishes.
pub struct VectorSource {
    name: String,
    items: Vec<Item>,
    pos: usize,
    /// Max items emitted per work call (exercises chunked scheduling).
    chunk: usize,
}

impl VectorSource {
    /// Creates a source over `items`.
    pub fn new(items: Vec<Item>) -> Self {
        Self {
            name: "vector_source".into(),
            items,
            pos: 0,
            chunk: 4096,
        }
    }

    /// Creates a source of complex samples.
    pub fn from_complex(xs: &[mimonet_dsp::complex::Complex64]) -> Self {
        Self::new(convert::from_complex(xs))
    }

    /// Creates a source of bytes.
    pub fn from_bytes(bs: &[u8]) -> Self {
        Self::new(convert::from_bytes(bs))
    }

    /// Overrides the per-call chunk size (testing aid).
    pub fn with_chunk(mut self, chunk: usize) -> Self {
        assert!(chunk > 0);
        self.chunk = chunk;
        self
    }
}

impl Block for VectorSource {
    fn name(&self) -> &str {
        &self.name
    }
    fn num_inputs(&self) -> usize {
        0
    }
    fn num_outputs(&self) -> usize {
        1
    }
    fn work(
        &mut self,
        _inputs: &mut [InputBuffer],
        outputs: &mut [OutputBuffer],
        _ctx: &mut BlockCtx<'_>,
    ) -> WorkStatus {
        if self.pos >= self.items.len() {
            return WorkStatus::Done;
        }
        let end = (self.pos + self.chunk).min(self.items.len());
        outputs[0].push_slice(&self.items[self.pos..end]);
        self.pos = end;
        WorkStatus::Progress
    }
}

/// Collects every received item; read the result through the shared handle
/// after the graph finishes.
pub struct VectorSink {
    name: String,
    store: SinkHandle,
}

/// Shared view of a [`VectorSink`]'s collected items.
#[derive(Clone, Default)]
pub struct SinkHandle(std::sync::Arc<parking_lot::Mutex<Vec<Item>>>);

impl SinkHandle {
    /// Snapshot of everything collected so far.
    pub fn items(&self) -> Vec<Item> {
        self.0.lock().clone()
    }

    /// Collected items as complex samples.
    pub fn complex(&self) -> Vec<mimonet_dsp::complex::Complex64> {
        convert::to_complex(&self.0.lock())
    }

    /// Collected items as bytes.
    pub fn bytes(&self) -> Vec<u8> {
        convert::to_bytes(&self.0.lock())
    }

    /// Collected items as reals.
    pub fn reals(&self) -> Vec<f64> {
        convert::to_reals(&self.0.lock())
    }

    /// Number of items collected.
    pub fn len(&self) -> usize {
        self.0.lock().len()
    }

    /// `true` when nothing has been collected.
    pub fn is_empty(&self) -> bool {
        self.0.lock().is_empty()
    }
}

impl VectorSink {
    /// Creates the sink and its read handle.
    pub fn new() -> (Self, SinkHandle) {
        let handle = SinkHandle::default();
        (
            Self {
                name: "vector_sink".into(),
                store: handle.clone(),
            },
            handle,
        )
    }
}

impl Block for VectorSink {
    fn name(&self) -> &str {
        &self.name
    }
    fn num_inputs(&self) -> usize {
        1
    }
    fn num_outputs(&self) -> usize {
        0
    }
    fn work(
        &mut self,
        inputs: &mut [InputBuffer],
        _outputs: &mut [OutputBuffer],
        _ctx: &mut BlockCtx<'_>,
    ) -> WorkStatus {
        let n = inputs[0].available();
        if n > 0 {
            let items = inputs[0].take(n);
            self.store.0.lock().extend(items);
            WorkStatus::Progress
        } else if inputs[0].is_finished() {
            WorkStatus::Done
        } else {
            WorkStatus::Blocked
        }
    }
}

/// Applies a per-item function (a 1:1 "sync block").
pub struct MapBlock {
    name: String,
    f: Box<dyn FnMut(Item) -> Item + Send>,
}

impl MapBlock {
    /// Creates a map block.
    pub fn new(name: impl Into<String>, f: impl FnMut(Item) -> Item + Send + 'static) -> Self {
        Self {
            name: name.into(),
            f: Box::new(f),
        }
    }
}

impl Block for MapBlock {
    fn name(&self) -> &str {
        &self.name
    }
    fn num_inputs(&self) -> usize {
        1
    }
    fn num_outputs(&self) -> usize {
        1
    }
    fn work(
        &mut self,
        inputs: &mut [InputBuffer],
        outputs: &mut [OutputBuffer],
        _ctx: &mut BlockCtx<'_>,
    ) -> WorkStatus {
        let n = inputs[0].available();
        if n == 0 {
            return if inputs[0].is_finished() {
                WorkStatus::Done
            } else {
                WorkStatus::Blocked
            };
        }
        for item in inputs[0].take(n) {
            outputs[0].push((self.f)(item));
        }
        WorkStatus::Progress
    }
}

/// Consumes fixed-size input chunks and emits the transformed chunk — the
/// shape of every OFDM-symbol-rate stage (rate-changing "general block").
pub struct ChunkBlock {
    name: String,
    in_chunk: usize,
    #[allow(clippy::type_complexity)]
    f: Box<dyn FnMut(&[Item]) -> Vec<Item> + Send>,
}

impl ChunkBlock {
    /// Creates a block that waits for `in_chunk` items and maps them
    /// through `f` (which may return any number of items).
    pub fn new(
        name: impl Into<String>,
        in_chunk: usize,
        f: impl FnMut(&[Item]) -> Vec<Item> + Send + 'static,
    ) -> Self {
        assert!(in_chunk > 0, "chunk size must be nonzero");
        Self {
            name: name.into(),
            in_chunk,
            f: Box::new(f),
        }
    }
}

impl Block for ChunkBlock {
    fn name(&self) -> &str {
        &self.name
    }
    fn num_inputs(&self) -> usize {
        1
    }
    fn num_outputs(&self) -> usize {
        1
    }
    fn work(
        &mut self,
        inputs: &mut [InputBuffer],
        outputs: &mut [OutputBuffer],
        _ctx: &mut BlockCtx<'_>,
    ) -> WorkStatus {
        let mut progressed = false;
        while inputs[0].available() >= self.in_chunk {
            let chunk = inputs[0].take(self.in_chunk);
            let out = (self.f)(&chunk);
            outputs[0].push_slice(&out);
            progressed = true;
        }
        if progressed {
            WorkStatus::Progress
        } else if inputs[0].is_finished() {
            // Residual partial chunk (if any) is dropped, mirroring GNU
            // Radio fixed-rate blocks at flowgraph teardown.
            WorkStatus::Done
        } else {
            WorkStatus::Blocked
        }
    }
}

/// Duplicates one input to N outputs.
pub struct FanoutBlock {
    name: String,
    n: usize,
}

impl FanoutBlock {
    /// Creates a 1-to-`n` duplicator.
    pub fn new(n: usize) -> Self {
        assert!(n >= 1);
        Self {
            name: "fanout".into(),
            n,
        }
    }
}

impl Block for FanoutBlock {
    fn name(&self) -> &str {
        &self.name
    }
    fn num_inputs(&self) -> usize {
        1
    }
    fn num_outputs(&self) -> usize {
        self.n
    }
    fn work(
        &mut self,
        inputs: &mut [InputBuffer],
        outputs: &mut [OutputBuffer],
        _ctx: &mut BlockCtx<'_>,
    ) -> WorkStatus {
        let n = inputs[0].available();
        if n == 0 {
            return if inputs[0].is_finished() {
                WorkStatus::Done
            } else {
                WorkStatus::Blocked
            };
        }
        let items = inputs[0].take(n);
        for out in outputs.iter_mut() {
            out.push_slice(&items);
        }
        WorkStatus::Progress
    }
}

/// Interleaves N inputs item-by-item into one output (used to merge
/// per-antenna streams); blocks until every input has an item.
pub struct ZipBlock {
    name: String,
    n: usize,
}

impl ZipBlock {
    /// Creates an `n`-to-1 zipper.
    pub fn new(n: usize) -> Self {
        assert!(n >= 1);
        Self {
            name: "zip".into(),
            n,
        }
    }
}

impl Block for ZipBlock {
    fn name(&self) -> &str {
        &self.name
    }
    fn num_inputs(&self) -> usize {
        self.n
    }
    fn num_outputs(&self) -> usize {
        1
    }
    fn work(
        &mut self,
        inputs: &mut [InputBuffer],
        outputs: &mut [OutputBuffer],
        _ctx: &mut BlockCtx<'_>,
    ) -> WorkStatus {
        let ready = inputs.iter().map(|i| i.available()).min().unwrap_or(0);
        if ready == 0 {
            let all_done = inputs.iter().all(|i| i.is_finished() && i.available() == 0);
            let any_starved_done = inputs.iter().any(|i| i.is_finished() && i.available() == 0);
            return if all_done || any_starved_done {
                // One leg can never deliver again → the zip can never
                // produce another full row.
                WorkStatus::Done
            } else {
                WorkStatus::Blocked
            };
        }
        let columns: Vec<Vec<Item>> = inputs.iter_mut().map(|i| i.take(ready)).collect();
        for row in 0..ready {
            for col in &columns {
                outputs[0].push(col[row]);
            }
        }
        WorkStatus::Progress
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx_hub() -> MessageHub {
        MessageHub::new()
    }

    #[test]
    fn vector_source_emits_in_chunks() {
        let hub = ctx_hub();
        let mut ctx = BlockCtx { msgs: &hub };
        let mut src = VectorSource::new((0..10u8).map(Item::Byte).collect()).with_chunk(4);
        let mut out = [OutputBuffer::new()];
        assert_eq!(src.work(&mut [], &mut out, &mut ctx), WorkStatus::Progress);
        assert_eq!(out[0].pending(), 4);
        src.work(&mut [], &mut out, &mut ctx);
        src.work(&mut [], &mut out, &mut ctx);
        assert_eq!(out[0].pending(), 10);
        assert_eq!(src.work(&mut [], &mut out, &mut ctx), WorkStatus::Done);
    }

    #[test]
    fn map_block_applies_function() {
        let hub = ctx_hub();
        let mut ctx = BlockCtx { msgs: &hub };
        let mut map = MapBlock::new("inc", |i| Item::Byte(i.byte() + 1));
        let mut input = InputBuffer::new();
        input.push_items([Item::Byte(1), Item::Byte(2)]);
        let mut inputs = [input];
        let mut outputs = [OutputBuffer::new()];
        assert_eq!(
            map.work(&mut inputs, &mut outputs, &mut ctx),
            WorkStatus::Progress
        );
        let (items, _) = outputs[0].drain();
        assert_eq!(items, vec![Item::Byte(2), Item::Byte(3)]);
        // Starved but upstream alive → Blocked; finished → Done.
        assert_eq!(
            map.work(&mut inputs, &mut outputs, &mut ctx),
            WorkStatus::Blocked
        );
        inputs[0].upstream_done = true;
        assert_eq!(
            map.work(&mut inputs, &mut outputs, &mut ctx),
            WorkStatus::Done
        );
    }

    #[test]
    fn chunk_block_respects_boundaries() {
        let hub = ctx_hub();
        let mut ctx = BlockCtx { msgs: &hub };
        // Sum each pair into one byte.
        let mut blk = ChunkBlock::new("pairsum", 2, |c| {
            vec![Item::Byte(c[0].byte() + c[1].byte())]
        });
        let mut input = InputBuffer::new();
        input.push_items([Item::Byte(1), Item::Byte(2), Item::Byte(3)]);
        let mut inputs = [input];
        let mut outputs = [OutputBuffer::new()];
        blk.work(&mut inputs, &mut outputs, &mut ctx);
        let (items, _) = outputs[0].drain();
        assert_eq!(items, vec![Item::Byte(3)]); // 1+2; the 3 waits
        assert_eq!(inputs[0].available(), 1);
        // Upstream ends: residual partial chunk dropped, block done.
        inputs[0].upstream_done = true;
        assert_eq!(
            blk.work(&mut inputs, &mut outputs, &mut ctx),
            WorkStatus::Done
        );
    }

    #[test]
    fn fanout_duplicates() {
        let hub = ctx_hub();
        let mut ctx = BlockCtx { msgs: &hub };
        let mut blk = FanoutBlock::new(3);
        let mut input = InputBuffer::new();
        input.push_items([Item::Real(1.5)]);
        let mut inputs = [input];
        let mut outputs = [
            OutputBuffer::new(),
            OutputBuffer::new(),
            OutputBuffer::new(),
        ];
        blk.work(&mut inputs, &mut outputs, &mut ctx);
        for out in &mut outputs {
            let (items, _) = out.drain();
            assert_eq!(items, vec![Item::Real(1.5)]);
        }
    }

    #[test]
    fn zip_interleaves_rows() {
        let hub = ctx_hub();
        let mut ctx = BlockCtx { msgs: &hub };
        let mut blk = ZipBlock::new(2);
        let mut a = InputBuffer::new();
        a.push_items([Item::Byte(1), Item::Byte(3)]);
        let mut b = InputBuffer::new();
        b.push_items([Item::Byte(2)]);
        let mut inputs = [a, b];
        let mut outputs = [OutputBuffer::new()];
        blk.work(&mut inputs, &mut outputs, &mut ctx);
        let (items, _) = outputs[0].drain();
        assert_eq!(items, vec![Item::Byte(1), Item::Byte(2)]);
        assert_eq!(inputs[0].available(), 1, "unmatched row stays queued");
    }

    #[test]
    fn sink_handle_reads_across_types() {
        let hub = ctx_hub();
        let mut ctx = BlockCtx { msgs: &hub };
        let (mut sink, handle) = VectorSink::new();
        let mut input = InputBuffer::new();
        input.push_items([Item::Byte(9), Item::Byte(10)]);
        let mut inputs = [input];
        sink.work(&mut inputs, &mut [], &mut ctx);
        assert_eq!(handle.bytes(), vec![9, 10]);
        assert_eq!(handle.len(), 2);
        inputs[0].upstream_done = true;
        assert_eq!(sink.work(&mut inputs, &mut [], &mut ctx), WorkStatus::Done);
    }
}
