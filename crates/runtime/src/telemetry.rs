//! Lock-cheap runtime telemetry: counters, high-water gauges, log-scale
//! histograms, and the per-graph registry both schedulers write into.
//!
//! The primitives are single atomics with `Relaxed` ordering — a recording
//! site costs one uncontended RMW, cheap enough to leave on in production
//! paths. The `telemetry-off` cargo feature compiles every recording
//! method to a no-op (the zero-overhead escape hatch CI builds to prove
//! nothing load-bearing hides in the counters).
//!
//! Snapshots ([`BlockSnapshot`] / [`GraphSnapshot`]) are plain data:
//! mergeable (summed counters, maxed gauges) and serializable. Wall-clock
//! fields (`*_ns`, the work-latency histogram) are dropped when a snapshot
//! is rendered with `include_wall = false` — the determinism contract that
//! lets `MIMONET_DETERMINISTIC=1` runs byte-compare their reports while
//! keeping every count.

#[cfg(not(feature = "telemetry-off"))]
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// A monotonically increasing event counter.
#[derive(Debug, Default)]
pub struct Counter(#[cfg(not(feature = "telemetry-off"))] AtomicU64);

impl Counter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` events.
    #[inline]
    pub fn add(&self, n: u64) {
        #[cfg(not(feature = "telemetry-off"))]
        self.0.fetch_add(n, Ordering::Relaxed);
        #[cfg(feature = "telemetry-off")]
        let _ = n;
    }

    /// Adds one event.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current count (0 with `telemetry-off`).
    #[inline]
    pub fn get(&self) -> u64 {
        #[cfg(not(feature = "telemetry-off"))]
        return self.0.load(Ordering::Relaxed);
        #[cfg(feature = "telemetry-off")]
        0
    }
}

/// A high-water-mark gauge: `record` keeps the maximum ever seen.
#[derive(Debug, Default)]
pub struct MaxGauge(#[cfg(not(feature = "telemetry-off"))] AtomicU64);

impl MaxGauge {
    /// Creates a zeroed gauge.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an observation; the gauge keeps the maximum.
    #[inline]
    pub fn record(&self, v: u64) {
        #[cfg(not(feature = "telemetry-off"))]
        self.0.fetch_max(v, Ordering::Relaxed);
        #[cfg(feature = "telemetry-off")]
        let _ = v;
    }

    /// Highest value recorded (0 with `telemetry-off`).
    #[inline]
    pub fn get(&self) -> u64 {
        #[cfg(not(feature = "telemetry-off"))]
        return self.0.load(Ordering::Relaxed);
        #[cfg(feature = "telemetry-off")]
        0
    }
}

/// Buckets in a [`LogHistogram`]: bucket `b` counts values in
/// `[2^(b-1), 2^b)` (bucket 0 holds exact zeros), clamped at the top.
pub const HIST_BUCKETS: usize = 64;

/// Fixed-bucket base-2 log-scale histogram of `u64` observations (work
/// call latencies in ns, items per call, ...). Recording is one relaxed
/// `fetch_add`; precision is "within 2x", which is what you want from a
/// latency profile, not percentile exactness.
pub struct LogHistogram {
    #[cfg(not(feature = "telemetry-off"))]
    buckets: [AtomicU64; HIST_BUCKETS],
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self {
            #[cfg(not(feature = "telemetry-off"))]
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Bucket index for a value.
    #[inline]
    pub fn bucket_of(v: u64) -> usize {
        ((u64::BITS - v.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
    }

    /// Lower edge of bucket `b` (0 for the zero bucket).
    pub fn bucket_floor(b: usize) -> u64 {
        if b == 0 {
            0
        } else {
            1u64 << (b - 1)
        }
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        #[cfg(not(feature = "telemetry-off"))]
        self.buckets[Self::bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        #[cfg(feature = "telemetry-off")]
        let _ = v;
    }

    /// Plain-data copy of the bucket counts.
    pub fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            #[cfg(not(feature = "telemetry-off"))]
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            #[cfg(feature = "telemetry-off")]
            buckets: vec![0; HIST_BUCKETS],
        }
    }
}

/// Mergeable, serializable copy of a [`LogHistogram`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Dense bucket counts, length [`HIST_BUCKETS`].
    pub buckets: Vec<u64>,
}

impl Default for HistSnapshot {
    fn default() -> Self {
        Self {
            buckets: vec![0; HIST_BUCKETS],
        }
    }
}

impl HistSnapshot {
    /// Total observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Element-wise sum of another snapshot into this one.
    pub fn merge(&mut self, other: &Self) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
    }

    /// Sparse `[bucket_floor, count]` pairs for the non-empty buckets.
    pub fn to_value(&self) -> serde::Value {
        serde::Value::Array(
            self.buckets
                .iter()
                .enumerate()
                .filter(|(_, &c)| c > 0)
                .map(|(b, &c)| {
                    serde::Value::Array(vec![
                        serde::Value::U64(LogHistogram::bucket_floor(b)),
                        serde::Value::U64(c),
                    ])
                })
                .collect(),
        )
    }
}

/// Live per-block telemetry the schedulers record into. All fields are
/// atomics; worker threads share it through the [`GraphTelemetry`] arc.
#[derive(Default)]
pub struct BlockTelemetry {
    /// Block name (diagnostics only).
    pub name: String,
    /// `work` invocations.
    pub work_calls: Counter,
    /// Items consumed across all input ports.
    pub items_in: Counter,
    /// Items produced across all output ports.
    pub items_out: Counter,
    /// Wall time spent inside `work`, ns.
    pub work_ns: Counter,
    /// Wall time spent waiting for input (threaded scheduler), ns.
    pub blocked_input_ns: Counter,
    /// Wall time spent waiting on downstream backpressure, ns.
    pub blocked_output_ns: Counter,
    /// `work` calls that returned `Blocked`.
    pub blocked_calls: Counter,
    /// Output sends that found the edge channel full (threaded only).
    pub backpressure_events: Counter,
    /// Items dropped instead of delivered: sends to a finished downstream
    /// in the threaded scheduler, plus any block-internal bounded-queue
    /// overflow a block mirrors in through `Block::attach_telemetry`.
    pub queue_drops: Counter,
    /// Per-input-port high-water mark of items waiting before a `work`
    /// call — one gauge per inbound edge.
    pub input_highwater: Vec<MaxGauge>,
    /// Per-call `work` latency histogram, ns.
    pub work_ns_hist: LogHistogram,
}

impl BlockTelemetry {
    /// Creates telemetry for a block with `n_in` input ports.
    pub fn new(name: impl Into<String>, n_in: usize) -> Self {
        Self {
            name: name.into(),
            input_highwater: (0..n_in).map(|_| MaxGauge::new()).collect(),
            ..Self::default()
        }
    }

    /// Plain-data copy of every counter.
    pub fn snapshot(&self) -> BlockSnapshot {
        BlockSnapshot {
            name: self.name.clone(),
            work_calls: self.work_calls.get(),
            items_in: self.items_in.get(),
            items_out: self.items_out.get(),
            work_ns: self.work_ns.get(),
            blocked_input_ns: self.blocked_input_ns.get(),
            blocked_output_ns: self.blocked_output_ns.get(),
            blocked_calls: self.blocked_calls.get(),
            backpressure_events: self.backpressure_events.get(),
            queue_drops: self.queue_drops.get(),
            input_highwater: self.input_highwater.iter().map(MaxGauge::get).collect(),
            work_ns_hist: self.work_ns_hist.snapshot(),
        }
    }
}

/// Per-graph telemetry registry: one [`BlockTelemetry`] per block, in the
/// graph's block order. Obtained from `Flowgraph::instrument`.
pub struct GraphTelemetry {
    /// Per-block telemetry, indexed like the flowgraph's blocks.
    pub blocks: Vec<std::sync::Arc<BlockTelemetry>>,
}

impl GraphTelemetry {
    /// Builds a registry from `(name, n_in)` block descriptors.
    pub fn new(blocks: impl IntoIterator<Item = (String, usize)>) -> Self {
        Self {
            blocks: blocks
                .into_iter()
                .map(|(name, n_in)| std::sync::Arc::new(BlockTelemetry::new(name, n_in)))
                .collect(),
        }
    }

    /// Plain-data copy of the whole registry.
    pub fn snapshot(&self) -> GraphSnapshot {
        GraphSnapshot {
            blocks: self.blocks.iter().map(|b| b.snapshot()).collect(),
        }
    }
}

/// Mergeable, serializable copy of one block's counters.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BlockSnapshot {
    /// Block name.
    pub name: String,
    /// `work` invocations.
    pub work_calls: u64,
    /// Items consumed.
    pub items_in: u64,
    /// Items produced.
    pub items_out: u64,
    /// Time inside `work`, ns (wall-clock; stripped in deterministic
    /// renderings).
    pub work_ns: u64,
    /// Time waiting for input, ns.
    pub blocked_input_ns: u64,
    /// Time waiting on backpressure, ns.
    pub blocked_output_ns: u64,
    /// `work` calls that returned `Blocked`.
    pub blocked_calls: u64,
    /// Full-channel events on output sends.
    pub backpressure_events: u64,
    /// Items dropped (disconnected downstream, bounded-queue overflow).
    pub queue_drops: u64,
    /// Per-input-port queue high-water marks, items.
    pub input_highwater: Vec<u64>,
    /// Work-latency histogram (wall-clock; stripped when deterministic).
    pub work_ns_hist: HistSnapshot,
}

impl BlockSnapshot {
    /// Folds another snapshot of the *same block* into this one: counters
    /// add, high-water marks take the max.
    pub fn merge(&mut self, other: &Self) {
        if self.name.is_empty() {
            self.name = other.name.clone();
        }
        self.work_calls += other.work_calls;
        self.items_in += other.items_in;
        self.items_out += other.items_out;
        self.work_ns += other.work_ns;
        self.blocked_input_ns += other.blocked_input_ns;
        self.blocked_output_ns += other.blocked_output_ns;
        self.blocked_calls += other.blocked_calls;
        self.backpressure_events += other.backpressure_events;
        self.queue_drops += other.queue_drops;
        if self.input_highwater.len() < other.input_highwater.len() {
            self.input_highwater.resize(other.input_highwater.len(), 0);
        }
        for (a, b) in self.input_highwater.iter_mut().zip(&other.input_highwater) {
            *a = (*a).max(*b);
        }
        self.work_ns_hist.merge(&other.work_ns_hist);
    }

    /// Serializes; `include_wall = false` drops every wall-clock-derived
    /// field (`*_ns`, the latency histogram) so deterministic runs
    /// byte-compare.
    pub fn to_value(&self, include_wall: bool) -> serde::Value {
        use serde::Serialize;
        let mut fields = vec![
            ("block", self.name.serialize()),
            ("work_calls", self.work_calls.serialize()),
            ("items_in", self.items_in.serialize()),
            ("items_out", self.items_out.serialize()),
            ("blocked_calls", self.blocked_calls.serialize()),
            ("backpressure_events", self.backpressure_events.serialize()),
            ("queue_drops", self.queue_drops.serialize()),
            ("input_highwater", self.input_highwater.serialize()),
        ];
        if include_wall {
            fields.push(("work_ns", self.work_ns.serialize()));
            fields.push(("blocked_input_ns", self.blocked_input_ns.serialize()));
            fields.push(("blocked_output_ns", self.blocked_output_ns.serialize()));
            fields.push(("work_ns_hist", self.work_ns_hist.to_value()));
        }
        serde::Value::object(fields)
    }
}

/// Mergeable, serializable copy of a whole graph's telemetry.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct GraphSnapshot {
    /// Per-block snapshots, in graph block order.
    pub blocks: Vec<BlockSnapshot>,
}

impl GraphSnapshot {
    /// Folds another snapshot of the *same graph topology* into this one
    /// (block-wise [`BlockSnapshot::merge`]); an empty side adopts the
    /// other wholesale, so `Default` is the merge identity.
    pub fn merge(&mut self, other: &Self) {
        if self.blocks.is_empty() {
            self.blocks = other.blocks.clone();
            return;
        }
        assert_eq!(
            self.blocks.len(),
            other.blocks.len(),
            "merging telemetry of different graph topologies"
        );
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            a.merge(b);
        }
    }

    /// Serializes every block; see [`BlockSnapshot::to_value`].
    pub fn to_value(&self, include_wall: bool) -> serde::Value {
        serde::Value::Array(
            self.blocks
                .iter()
                .map(|b| b.to_value(include_wall))
                .collect(),
        )
    }

    /// Total time inside `work` across all blocks, ns.
    pub fn total_work_ns(&self) -> u64 {
        self.blocks.iter().map(|b| b.work_ns).sum()
    }

    /// Renders the per-block profile table — the flamegraph-lite for a
    /// flowgraph. `wall` is the graph's wall-clock run time (items/s
    /// denominator); pass `None` to omit the rate and time-percentage
    /// columns (deterministic mode has no meaningful wall clock).
    pub fn render_table(&self, wall: Option<Duration>) -> String {
        let mut out = String::new();
        let header = format!(
            "{:<16} {:>9} {:>10} {:>10} {:>9} {:>7} {:>9} {:>9} {:>7} {:>7} {:>8}\n",
            "block",
            "calls",
            "items_in",
            "items_out",
            "work_ms",
            "%time",
            "blk_in",
            "blk_out",
            "stalls",
            "drops",
            "in_hw"
        );
        out.push_str(&header);
        out.push_str(&format!("{}\n", "-".repeat(header.len().saturating_sub(1))));
        let total_ns = self.total_work_ns().max(1);
        for b in &self.blocks {
            let pct = match wall {
                Some(_) => 100.0 * b.work_ns as f64 / total_ns as f64,
                None => f64::NAN,
            };
            let ms = |ns: u64| ns as f64 / 1e6;
            let fmt_ms = |ns: u64| {
                if wall.is_some() {
                    format!("{:9.3}", ms(ns))
                } else {
                    format!("{:>9}", "-")
                }
            };
            let pct_s = if pct.is_nan() {
                format!("{:>7}", "-")
            } else {
                format!("{pct:6.1}%")
            };
            out.push_str(&format!(
                "{:<16} {:>9} {:>10} {:>10} {} {} {} {} {:>7} {:>7} {:>8}\n",
                b.name,
                b.work_calls,
                b.items_in,
                b.items_out,
                fmt_ms(b.work_ns),
                pct_s,
                fmt_ms(b.blocked_input_ns),
                fmt_ms(b.blocked_output_ns),
                b.blocked_calls,
                b.queue_drops,
                b.input_highwater.iter().copied().max().unwrap_or(0),
            ));
        }
        if let Some(w) = wall {
            let items: u64 = self.blocks.iter().map(|b| b.items_out).sum();
            let s = w.as_secs_f64();
            if s > 0.0 {
                out.push_str(&format!(
                    "# wall {:.3} s, {:.0} items/s aggregate\n",
                    s,
                    items as f64 / s
                ));
            }
        }
        out
    }
}

/// RAII span that adds its elapsed wall time (ns) to a [`Counter`] on
/// drop — the stage-timer building block.
pub struct Span<'a> {
    target: &'a Counter,
    #[cfg(not(feature = "telemetry-off"))]
    start: std::time::Instant,
}

impl<'a> Span<'a> {
    /// Starts a span feeding `target`.
    pub fn new(target: &'a Counter) -> Self {
        Self {
            target,
            #[cfg(not(feature = "telemetry-off"))]
            start: std::time::Instant::now(),
        }
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        #[cfg(not(feature = "telemetry-off"))]
        self.target.add(self.start.elapsed().as_nanos() as u64);
        #[cfg(feature = "telemetry-off")]
        let _ = self.target;
    }
}

#[cfg(all(test, not(feature = "telemetry-off")))]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.add(3);
        c.incr();
        assert_eq!(c.get(), 4);
        let g = MaxGauge::new();
        g.record(7);
        g.record(3);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn histogram_buckets_are_log2() {
        assert_eq!(LogHistogram::bucket_of(0), 0);
        assert_eq!(LogHistogram::bucket_of(1), 1);
        assert_eq!(LogHistogram::bucket_of(2), 2);
        assert_eq!(LogHistogram::bucket_of(3), 2);
        assert_eq!(LogHistogram::bucket_of(4), 3);
        assert_eq!(LogHistogram::bucket_of(u64::MAX), HIST_BUCKETS - 1);
        assert_eq!(LogHistogram::bucket_floor(0), 0);
        assert_eq!(LogHistogram::bucket_floor(3), 4);
        let h = LogHistogram::new();
        h.record(0);
        h.record(5);
        h.record(6);
        let s = h.snapshot();
        assert_eq!(s.count(), 3);
        assert_eq!(s.buckets[0], 1);
        assert_eq!(s.buckets[3], 2);
    }

    #[test]
    fn span_accumulates_time() {
        let c = Counter::new();
        {
            let _s = Span::new(&c);
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        assert!(c.get() >= 1_000_000, "span recorded {} ns", c.get());
    }

    #[test]
    fn snapshot_merge_adds_counts_and_maxes_highwater() {
        let t = BlockTelemetry::new("b", 2);
        t.work_calls.add(2);
        t.items_in.add(10);
        t.queue_drops.add(3);
        t.input_highwater[0].record(4);
        t.input_highwater[1].record(9);
        let mut a = t.snapshot();
        let u = BlockTelemetry::new("b", 2);
        u.work_calls.add(1);
        u.queue_drops.add(2);
        u.input_highwater[0].record(6);
        a.merge(&u.snapshot());
        assert_eq!(a.work_calls, 3);
        assert_eq!(a.items_in, 10);
        assert_eq!(a.queue_drops, 5);
        assert_eq!(a.input_highwater, vec![6, 9]);
    }

    #[test]
    fn graph_snapshot_serializes_and_strips_wall_fields() {
        let g = GraphTelemetry::new([("src".to_string(), 0), ("sink".to_string(), 1)]);
        g.blocks[0].work_calls.add(5);
        g.blocks[0].work_ns.add(1234);
        let with = serde::json::to_string(&g.snapshot().to_value(true));
        let without = serde::json::to_string(&g.snapshot().to_value(false));
        assert!(with.contains("work_ns"));
        assert!(!without.contains("work_ns"), "{without}");
        assert!(without.contains("\"work_calls\":5"));
    }

    #[test]
    fn render_table_lists_every_block() {
        let g = GraphTelemetry::new([("tx".to_string(), 1), ("rx".to_string(), 2)]);
        g.blocks[0].work_calls.add(3);
        let table = g.snapshot().render_table(Some(Duration::from_millis(10)));
        assert!(table.contains("tx"));
        assert!(table.contains("rx"));
        assert!(table.contains("items/s"));
        let det = g.snapshot().render_table(None);
        assert!(det.contains("tx") && !det.contains("items/s"));
    }
}
