//! # mimonet-runtime
//!
//! A GNU-Radio-like flowgraph runtime — MIMONet-rs's substitute for the
//! GNU Radio block scheduler the SRIF'14 paper builds on (see DESIGN.md
//! "Substitutions"). It reproduces the programming model the paper's
//! blocks assume:
//!
//! * [`block::Block`] — `general_work`-style processing with arbitrary
//!   consume/produce rates,
//! * [`buffer`] — typed stream items with absolute-offset stream tags,
//! * [`message`] — out-of-band publish/subscribe message ports,
//! * [`graph::Flowgraph`] — topology building plus two schedulers:
//!   deterministic single-threaded and supervised thread-per-block over
//!   bounded channels (panic capture, typed block errors, stall watchdog —
//!   see [`graph::SupervisorConfig`]),
//! * [`faults::FaultInjectorBlock`] — seeded fault injection (corrupt /
//!   stall / panic / typed failure) for chaos-testing the supervisor,
//! * [`telemetry`] — lock-cheap per-block counters, blocked-time spans
//!   and buffer high-water gauges both schedulers record into (see
//!   [`graph::Flowgraph::instrument`]); compiled to no-ops by the
//!   `telemetry-off` feature.

pub mod block;
pub mod buffer;
pub mod faults;
pub mod graph;
pub mod message;
pub mod stdblocks;
pub mod telemetry;

pub use block::{
    Block, BlockCtx, BlockError, ChunkBlock, FanoutBlock, MapBlock, SinkHandle, VectorSink,
    VectorSource, WorkStatus, ZipBlock,
};
pub use buffer::{convert, InputBuffer, Item, OutputBuffer, Tag, TagValue};
pub use faults::{FaultInjectorBlock, FaultMode};
pub use graph::{BlockId, Flowgraph, GraphError, SupervisorConfig};
pub use message::{Message, MessageHub, Subscription};
pub use stdblocks::{AddBlock, HeadBlock, MultiplyConstBlock, NullSink, PowerProbe};
pub use telemetry::{
    BlockSnapshot, BlockTelemetry, Counter, GraphSnapshot, GraphTelemetry, HistSnapshot,
    LogHistogram, MaxGauge, Span,
};
