//! Out-of-band message passing between blocks — the analogue of GNU
//! Radio's message ports.
//!
//! Blocks publish to named topics; anyone holding a subscription handle
//! drains them. The transceiver uses this for decoded-frame announcements
//! and for control (e.g. an SNR probe publishing channel-state messages a
//! rate-adaptation block consumes).

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use std::collections::HashMap;

/// A message payload.
#[derive(Clone, Debug, PartialEq)]
pub enum Message {
    /// Byte payload (decoded PSDUs).
    Bytes(Vec<u8>),
    /// Float payload (SNR reports, CFO estimates).
    F64(f64),
    /// Key/value-free event marker.
    Event(String),
}

/// A subscription to one topic.
pub struct Subscription {
    rx: Receiver<Message>,
}

impl Subscription {
    /// Drains everything currently queued.
    pub fn drain(&self) -> Vec<Message> {
        let mut out = Vec::new();
        while let Ok(m) = self.rx.try_recv() {
            out.push(m);
        }
        out
    }

    /// Non-blocking single receive.
    pub fn try_recv(&self) -> Option<Message> {
        self.rx.try_recv().ok()
    }
}

/// The flowgraph-wide publish/subscribe hub. Cheap to share by reference;
/// thread-safe for the multi-threaded scheduler.
#[derive(Default)]
pub struct MessageHub {
    topics: Mutex<HashMap<String, Vec<Sender<Message>>>>,
}

impl MessageHub {
    /// Creates an empty hub.
    pub fn new() -> Self {
        Self::default()
    }

    /// Subscribes to `topic`; messages published after this call are
    /// delivered to the returned handle.
    pub fn subscribe(&self, topic: impl Into<String>) -> Subscription {
        let (tx, rx) = unbounded();
        self.topics.lock().entry(topic.into()).or_default().push(tx);
        Subscription { rx }
    }

    /// Publishes to every current subscriber of `topic`; a no-op without
    /// subscribers.
    pub fn publish(&self, topic: &str, msg: Message) {
        if let Some(subs) = self.topics.lock().get(topic) {
            for s in subs {
                // A dropped subscriber just misses messages.
                let _ = s.send(msg.clone());
            }
        }
    }

    /// Number of subscribers currently attached to `topic`.
    pub fn subscriber_count(&self, topic: &str) -> usize {
        self.topics.lock().get(topic).map_or(0, |v| v.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_subscribe_roundtrip() {
        let hub = MessageHub::new();
        let sub = hub.subscribe("frames");
        hub.publish("frames", Message::Bytes(vec![1, 2, 3]));
        hub.publish("frames", Message::F64(12.5));
        let got = sub.drain();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0], Message::Bytes(vec![1, 2, 3]));
        assert_eq!(got[1], Message::F64(12.5));
    }

    #[test]
    fn publish_without_subscribers_is_noop() {
        let hub = MessageHub::new();
        hub.publish("nobody", Message::Event("x".into()));
        assert_eq!(hub.subscriber_count("nobody"), 0);
    }

    #[test]
    fn multiple_subscribers_each_get_a_copy() {
        let hub = MessageHub::new();
        let a = hub.subscribe("t");
        let b = hub.subscribe("t");
        hub.publish("t", Message::Event("e".into()));
        assert_eq!(a.drain().len(), 1);
        assert_eq!(b.drain().len(), 1);
        assert_eq!(hub.subscriber_count("t"), 2);
    }

    #[test]
    fn topics_are_isolated() {
        let hub = MessageHub::new();
        let a = hub.subscribe("a");
        hub.publish("b", Message::F64(1.0));
        assert!(a.try_recv().is_none());
    }

    #[test]
    fn dropped_subscriber_does_not_break_publish() {
        let hub = MessageHub::new();
        let sub = hub.subscribe("t");
        drop(sub);
        hub.publish("t", Message::F64(2.0)); // must not panic
    }

    #[test]
    fn hub_is_shareable_across_threads() {
        let hub = std::sync::Arc::new(MessageHub::new());
        let sub = hub.subscribe("t");
        let h2 = hub.clone();
        let th = std::thread::spawn(move || {
            for i in 0..10 {
                h2.publish("t", Message::F64(i as f64));
            }
        });
        th.join().unwrap();
        assert_eq!(sub.drain().len(), 10);
    }
}
