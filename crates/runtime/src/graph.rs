//! Flowgraph topology and schedulers.
//!
//! [`Flowgraph`] owns blocks and the directed edges between their stream
//! ports, validates the topology, and runs it to completion with either
//! the deterministic single-threaded scheduler ([`Flowgraph::run`]) or one
//! thread per block connected by bounded channels
//! ([`Flowgraph::run_threaded`]) — the same two execution models GNU Radio
//! offers (single-threaded scheduler vs. thread-per-block).
//!
//! Each output port connects to exactly one input port; use
//! [`crate::block::FanoutBlock`] to duplicate a stream.

// Index-based loops here are the clearer expression of the math
// (matrix/carrier indexing); silence the iterator-style suggestion.
#![allow(clippy::needless_range_loop)]
use crate::block::{Block, BlockCtx, BlockError, WorkStatus};
use crate::buffer::{InputBuffer, OutputBuffer};
use crate::message::MessageHub;
use crate::telemetry::{BlockTelemetry, GraphTelemetry};
use std::collections::HashMap;
use std::time::Duration;

/// Identifies a block inside a flowgraph.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct BlockId(usize);

/// Topology or execution error.
#[derive(Debug, PartialEq, Eq)]
pub enum GraphError {
    /// Port index out of range for the named block.
    BadPort {
        block: String,
        port: usize,
        is_input: bool,
    },
    /// The port is already connected.
    PortTaken {
        block: String,
        port: usize,
        is_input: bool,
    },
    /// A port was left unconnected at run time.
    Unconnected {
        block: String,
        port: usize,
        is_input: bool,
    },
    /// No block made progress but not all finished — a livelock (usually a
    /// block that never reports `Done`).
    Deadlock { stuck: Vec<String> },
    /// A block thread panicked in the threaded scheduler. `payload` is the
    /// captured panic message (or a placeholder for non-string payloads).
    BlockPanicked { block: String, payload: String },
    /// A block reported a typed [`BlockError`] from `work`.
    BlockFailed { block: String, error: BlockError },
    /// The supervisor's watchdog saw no progress from this block for
    /// longer than the stall timeout while the graph was still unfinished.
    BlockStalled { block: String, idle: Duration },
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::BadPort {
                block,
                port,
                is_input,
            } => write!(
                f,
                "{} port {port} out of range on block '{block}'",
                if *is_input { "input" } else { "output" }
            ),
            GraphError::PortTaken {
                block,
                port,
                is_input,
            } => write!(
                f,
                "{} port {port} on block '{block}' already connected",
                if *is_input { "input" } else { "output" }
            ),
            GraphError::Unconnected {
                block,
                port,
                is_input,
            } => write!(
                f,
                "{} port {port} on block '{block}' is not connected",
                if *is_input { "input" } else { "output" }
            ),
            GraphError::Deadlock { stuck } => {
                write!(
                    f,
                    "flowgraph deadlocked; stuck blocks: {}",
                    stuck.join(", ")
                )
            }
            GraphError::BlockPanicked { block, payload } => {
                write!(f, "block '{block}' panicked: {payload}")
            }
            GraphError::BlockFailed { block, error } => {
                write!(f, "block '{block}' failed: {error}")
            }
            GraphError::BlockStalled { block, idle } => {
                write!(
                    f,
                    "block '{block}' stalled: no progress for {:.3} s",
                    idle.as_secs_f64()
                )
            }
        }
    }
}

/// Supervision knobs for [`Flowgraph::run_threaded_with`].
#[derive(Clone, Copy, Debug)]
pub struct SupervisorConfig {
    /// A non-finished block with no healthy activity for this long is
    /// reported as [`GraphError::BlockStalled`] and the graph cancelled.
    pub stall_timeout: Duration,
    /// How often the supervisor wakes to run the watchdog when no worker
    /// outcome is arriving.
    pub poll_interval: Duration,
    /// After cancellation, how long to wait for workers to acknowledge
    /// before detaching their threads (a thread wedged *inside* one `work`
    /// call cannot be interrupted; it is abandoned so the caller returns).
    pub join_grace: Duration,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        Self {
            stall_timeout: Duration::from_secs(5),
            poll_interval: Duration::from_millis(5),
            join_grace: Duration::from_millis(200),
        }
    }
}

impl std::error::Error for GraphError {}

/// Extracts a human-readable message from a `catch_unwind`/`join` payload.
/// `panic!("...")` and `panic!(String)` cover essentially every panic in
/// practice; anything else gets a placeholder rather than being dropped.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

struct Entry {
    block: Box<dyn Block>,
    name: String,
    n_in: usize,
    n_out: usize,
}

/// A directed flowgraph of blocks.
#[derive(Default)]
pub struct Flowgraph {
    blocks: Vec<Entry>,
    /// (src, src_port) → (dst, dst_port)
    edges: HashMap<(usize, usize), (usize, usize)>,
    /// (dst, dst_port) → (src, src_port)
    redges: HashMap<(usize, usize), (usize, usize)>,
    /// Telemetry registry both schedulers record into, when instrumented.
    telemetry: Option<std::sync::Arc<GraphTelemetry>>,
}

impl Flowgraph {
    /// Creates an empty flowgraph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a block, returning its id.
    pub fn add(&mut self, block: impl Block + 'static) -> BlockId {
        let name = block.name().to_string();
        let n_in = block.num_inputs();
        let n_out = block.num_outputs();
        self.blocks.push(Entry {
            block: Box::new(block),
            name,
            n_in,
            n_out,
        });
        BlockId(self.blocks.len() - 1)
    }

    /// Connects `src`'s output `src_port` to `dst`'s input `dst_port`.
    pub fn connect(
        &mut self,
        src: BlockId,
        src_port: usize,
        dst: BlockId,
        dst_port: usize,
    ) -> Result<(), GraphError> {
        let se = &self.blocks[src.0];
        if src_port >= se.n_out {
            return Err(GraphError::BadPort {
                block: se.name.clone(),
                port: src_port,
                is_input: false,
            });
        }
        let de = &self.blocks[dst.0];
        if dst_port >= de.n_in {
            return Err(GraphError::BadPort {
                block: de.name.clone(),
                port: dst_port,
                is_input: true,
            });
        }
        if self.edges.contains_key(&(src.0, src_port)) {
            return Err(GraphError::PortTaken {
                block: self.blocks[src.0].name.clone(),
                port: src_port,
                is_input: false,
            });
        }
        if self.redges.contains_key(&(dst.0, dst_port)) {
            return Err(GraphError::PortTaken {
                block: self.blocks[dst.0].name.clone(),
                port: dst_port,
                is_input: true,
            });
        }
        self.edges.insert((src.0, src_port), (dst.0, dst_port));
        self.redges.insert((dst.0, dst_port), (src.0, src_port));
        Ok(())
    }

    /// Attaches a telemetry registry (one [`BlockTelemetry`] per block
    /// already added, in block order) and returns a handle to it. Both
    /// schedulers record into the registry from then on; snapshot it any
    /// time — including after the graph finished — via
    /// [`GraphTelemetry::snapshot`]. Call after the last [`Flowgraph::add`];
    /// blocks added later run uninstrumented.
    pub fn instrument(&mut self) -> std::sync::Arc<GraphTelemetry> {
        let tel = std::sync::Arc::new(GraphTelemetry::new(
            self.blocks.iter().map(|e| (e.name.clone(), e.n_in)),
        ));
        for (entry, slot) in self.blocks.iter_mut().zip(&tel.blocks) {
            entry.block.attach_telemetry(slot);
        }
        self.telemetry = Some(tel.clone());
        tel
    }

    fn validate(&self) -> Result<(), GraphError> {
        for (i, e) in self.blocks.iter().enumerate() {
            for p in 0..e.n_out {
                if !self.edges.contains_key(&(i, p)) {
                    return Err(GraphError::Unconnected {
                        block: e.name.clone(),
                        port: p,
                        is_input: false,
                    });
                }
            }
            for p in 0..e.n_in {
                if !self.redges.contains_key(&(i, p)) {
                    return Err(GraphError::Unconnected {
                        block: e.name.clone(),
                        port: p,
                        is_input: true,
                    });
                }
            }
        }
        Ok(())
    }

    /// Runs single-threaded until every block reports `Done`. Deterministic
    /// and easiest to debug; the default for tests and experiments.
    pub fn run(&mut self, hub: &MessageHub) -> Result<(), GraphError> {
        self.validate()?;
        let n = self.blocks.len();
        let mut inputs: Vec<Vec<InputBuffer>> = self
            .blocks
            .iter()
            .map(|e| (0..e.n_in).map(|_| InputBuffer::new()).collect())
            .collect();
        let mut outputs: Vec<Vec<OutputBuffer>> = self
            .blocks
            .iter()
            .map(|e| (0..e.n_out).map(|_| OutputBuffer::new()).collect())
            .collect();
        let mut done = vec![false; n];

        loop {
            let mut progress = false;
            for i in 0..n {
                if done[i] {
                    continue;
                }
                let tel: Option<&BlockTelemetry> = self.telemetry.as_ref().map(|t| &*t.blocks[i]);
                let status = {
                    let mut ctx = BlockCtx { msgs: hub };
                    // Split-borrow: take this block's buffers out briefly.
                    let mut my_inputs = std::mem::take(&mut inputs[i]);
                    let mut my_outputs = std::mem::take(&mut outputs[i]);
                    let in_before: usize = my_inputs.iter().map(|b| b.available()).sum();
                    if let Some(t) = tel {
                        for (g, b) in t.input_highwater.iter().zip(&my_inputs) {
                            g.record(b.available() as u64);
                        }
                    }
                    let t0 = tel.map(|_| std::time::Instant::now());
                    let st = self.blocks[i]
                        .block
                        .work(&mut my_inputs, &mut my_outputs, &mut ctx);
                    if let (Some(t), Some(t0)) = (tel, t0) {
                        let ns = t0.elapsed().as_nanos() as u64;
                        t.work_calls.incr();
                        t.work_ns.add(ns);
                        t.work_ns_hist.record(ns);
                        let in_after: usize = my_inputs.iter().map(|b| b.available()).sum();
                        t.items_in.add((in_before - in_after) as u64);
                        t.items_out
                            .add(my_outputs.iter().map(|o| o.pending() as u64).sum());
                        if matches!(st, WorkStatus::Blocked) {
                            t.blocked_calls.incr();
                        }
                    }
                    inputs[i] = my_inputs;
                    outputs[i] = my_outputs;
                    st
                };
                // Ship produced items downstream.
                for p in 0..self.blocks[i].n_out {
                    let (items, tags) = outputs[i][p].drain();
                    if items.is_empty() && tags.is_empty() {
                        continue;
                    }
                    let &(di, dp) = self.edges.get(&(i, p)).expect("validated");
                    inputs[di][dp].push_items(items);
                    for t in tags {
                        inputs[di][dp].push_tag(t);
                    }
                }
                match status {
                    WorkStatus::Progress => progress = true,
                    WorkStatus::Blocked => {}
                    WorkStatus::Done => {
                        done[i] = true;
                        progress = true;
                        for p in 0..self.blocks[i].n_out {
                            let &(di, dp) = self.edges.get(&(i, p)).expect("validated");
                            inputs[di][dp].upstream_done = true;
                        }
                    }
                    WorkStatus::Error(error) => {
                        return Err(GraphError::BlockFailed {
                            block: self.blocks[i].name.clone(),
                            error,
                        });
                    }
                }
            }
            if done.iter().all(|&d| d) {
                return Ok(());
            }
            if !progress {
                let stuck = self
                    .blocks
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| !done[*i])
                    .map(|(_, e)| e.name.clone())
                    .collect();
                return Err(GraphError::Deadlock { stuck });
            }
        }
    }

    /// Runs one thread per block, edges as bounded channels (the
    /// thread-per-block model), under the default [`SupervisorConfig`].
    /// Results are identical to [`Flowgraph::run`] for well-behaved
    /// blocks; ordering of message-hub publications may differ.
    pub fn run_threaded(self, hub: std::sync::Arc<MessageHub>) -> Result<(), GraphError> {
        self.run_threaded_with(hub, SupervisorConfig::default())
    }

    /// Threaded scheduler with explicit supervision: every block body runs
    /// under `catch_unwind`, a panic or [`WorkStatus::Error`] cancels the
    /// remaining threads promptly, and a watchdog converts a block that
    /// stops making progress into [`GraphError::BlockStalled`] instead of
    /// hanging the caller. The call always terminates — a thread wedged
    /// inside a single `work` invocation is detached after `join_grace`.
    pub fn run_threaded_with(
        self,
        hub: std::sync::Arc<MessageHub>,
        sup: SupervisorConfig,
    ) -> Result<(), GraphError> {
        self.validate()?;
        use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender};
        use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
        use std::sync::Arc;
        use std::time::Instant;
        type Chunk = (Vec<crate::buffer::Item>, Vec<crate::buffer::Tag>);

        /// How a worker thread ended, reported to the supervisor.
        enum Outcome {
            /// The block reported `Done` (or was a starved source).
            Finished,
            /// The worker saw the cancel flag and bailed out.
            Cancelled,
            /// The block returned `WorkStatus::Error`.
            Failed(BlockError),
            /// `work` panicked; the payload was captured.
            Panicked(String),
        }

        let n = self.blocks.len();
        if n == 0 {
            return Ok(());
        }
        let telemetry = self.telemetry.clone();
        // Build channels per edge.
        let mut senders: Vec<Vec<Option<Sender<Chunk>>>> = self
            .blocks
            .iter()
            .map(|e| (0..e.n_out).map(|_| None).collect())
            .collect();
        let mut receivers: Vec<Vec<Option<Receiver<Chunk>>>> = self
            .blocks
            .iter()
            .map(|e| (0..e.n_in).map(|_| None).collect())
            .collect();
        for (&(si, sp), &(di, dp)) in &self.edges {
            let (tx, rx) = bounded::<Chunk>(64);
            senders[si][sp] = Some(tx);
            receivers[di][dp] = Some(rx);
        }

        let start = Instant::now();
        let cancel = Arc::new(AtomicBool::new(false));
        // Per-block "last healthy activity" timestamp, in ms since `start`.
        let heartbeats: Arc<Vec<AtomicU64>> = Arc::new((0..n).map(|_| AtomicU64::new(0)).collect());
        let (report_tx, report_rx) = unbounded::<(usize, Outcome)>();

        let mut handles: Vec<Option<std::thread::JoinHandle<()>>> = Vec::with_capacity(n);
        let mut names = Vec::with_capacity(n);
        for (i, entry) in self.blocks.into_iter().enumerate() {
            let mut block = entry.block;
            names.push(entry.name.clone());
            let my_senders: Vec<Sender<Chunk>> = senders[i]
                .iter_mut()
                .map(|s| s.take().expect("validated"))
                .collect();
            let my_receivers: Vec<Receiver<Chunk>> = receivers[i]
                .iter_mut()
                .map(|r| r.take().expect("validated"))
                .collect();
            let hub = hub.clone();
            let n_in = entry.n_in;
            let n_out = entry.n_out;
            let cancel = cancel.clone();
            let heartbeats = heartbeats.clone();
            let report = report_tx.clone();
            let tel: Option<Arc<BlockTelemetry>> = telemetry.as_ref().map(|t| t.blocks[i].clone());
            handles.push(Some(std::thread::spawn(move || {
                let mut inputs: Vec<InputBuffer> = (0..n_in).map(|_| InputBuffer::new()).collect();
                let mut outputs: Vec<OutputBuffer> =
                    (0..n_out).map(|_| OutputBuffer::new()).collect();
                let beat = |hb: &AtomicU64| {
                    hb.store(start.elapsed().as_millis() as u64, Ordering::Relaxed)
                };
                let outcome = 'life: loop {
                    if cancel.load(Ordering::Relaxed) {
                        break 'life Outcome::Cancelled;
                    }
                    // Drain whatever has arrived.
                    for (buf, rx) in inputs.iter_mut().zip(&my_receivers) {
                        loop {
                            match rx.try_recv() {
                                Ok((items, tags)) => {
                                    buf.push_items(items);
                                    for t in tags {
                                        buf.push_tag(t);
                                    }
                                }
                                Err(crossbeam::channel::TryRecvError::Empty) => break,
                                Err(crossbeam::channel::TryRecvError::Disconnected) => {
                                    buf.upstream_done = true;
                                    break;
                                }
                            }
                        }
                    }
                    let in_before: usize = inputs.iter().map(|b| b.available()).sum();
                    if let Some(t) = &tel {
                        // Queue occupancy seen by this work call — the
                        // per-edge backpressure high-water mark.
                        for (g, b) in t.input_highwater.iter().zip(&inputs) {
                            g.record(b.available() as u64);
                        }
                    }
                    let work_t0 = tel.as_ref().map(|_| Instant::now());
                    let status = {
                        let mut ctx = BlockCtx { msgs: &hub };
                        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            block.work(&mut inputs, &mut outputs, &mut ctx)
                        })) {
                            Ok(status) => status,
                            Err(payload) => {
                                break 'life Outcome::Panicked(panic_message(&*payload))
                            }
                        }
                    };
                    let produced: usize = outputs.iter().map(|o| o.pending()).sum();
                    let in_after: usize = inputs.iter().map(|b| b.available()).sum();
                    let consumed = in_after < in_before;
                    if let (Some(t), Some(t0)) = (&tel, work_t0) {
                        let ns = t0.elapsed().as_nanos() as u64;
                        t.work_calls.incr();
                        t.work_ns.add(ns);
                        t.work_ns_hist.record(ns);
                        t.items_in.add((in_before - in_after) as u64);
                        t.items_out.add(produced as u64);
                        if matches!(status, WorkStatus::Blocked) {
                            t.blocked_calls.incr();
                        }
                    }
                    // Ship outputs, keeping backpressure waits cancellable.
                    for (out, tx) in outputs.iter_mut().zip(&my_senders) {
                        let (items, tags) = out.drain();
                        if items.is_empty() && tags.is_empty() {
                            continue;
                        }
                        let mut chunk = (items, tags);
                        loop {
                            match tx.try_send(chunk) {
                                Ok(()) => break,
                                Err(crossbeam::channel::TrySendError::Full(c)) => {
                                    if cancel.load(Ordering::Relaxed) {
                                        break 'life Outcome::Cancelled;
                                    }
                                    chunk = c;
                                    let t0 = tel.as_ref().map(|t| {
                                        t.backpressure_events.incr();
                                        Instant::now()
                                    });
                                    std::thread::sleep(Duration::from_micros(200));
                                    if let (Some(t), Some(t0)) = (&tel, t0) {
                                        t.blocked_output_ns.add(t0.elapsed().as_nanos() as u64);
                                    }
                                }
                                Err(crossbeam::channel::TrySendError::Disconnected(c)) => {
                                    // Downstream gone; drop this port's data
                                    // (visible as queue_drops, not silent).
                                    if let Some(t) = &tel {
                                        t.queue_drops.add(c.0.len() as u64);
                                    }
                                    break;
                                }
                            }
                        }
                    }
                    match status {
                        WorkStatus::Done => {
                            beat(&heartbeats[i]);
                            break 'life Outcome::Finished;
                        }
                        WorkStatus::Error(e) => break 'life Outcome::Failed(e),
                        WorkStatus::Progress => {
                            // Progress without consuming or producing is a
                            // busy-loop the watchdog should see through, so
                            // only real activity refreshes the heartbeat.
                            if consumed || produced > 0 {
                                beat(&heartbeats[i]);
                            }
                        }
                        WorkStatus::Blocked => {
                            if my_receivers.is_empty() {
                                // A blocked source can never be unblocked.
                                beat(&heartbeats[i]);
                                break 'life Outcome::Finished;
                            }
                            // Healthy only while some open upstream could
                            // still deliver the missing input; Blocked with
                            // data on every port, or after all upstreams
                            // finished, ages toward the stall timeout.
                            if inputs
                                .iter()
                                .any(|b| b.available() == 0 && !b.is_finished())
                            {
                                beat(&heartbeats[i]);
                            }
                            let t0 = tel.as_ref().map(|_| Instant::now());
                            match my_receivers[0].recv_timeout(Duration::from_millis(1)) {
                                Ok((items, tags)) => {
                                    inputs[0].push_items(items);
                                    for t in tags {
                                        inputs[0].push_tag(t);
                                    }
                                }
                                Err(RecvTimeoutError::Timeout) => {}
                                Err(RecvTimeoutError::Disconnected) => {
                                    inputs[0].upstream_done = true;
                                }
                            }
                            if let (Some(t), Some(t0)) = (&tel, t0) {
                                t.blocked_input_ns.add(t0.elapsed().as_nanos() as u64);
                            }
                        }
                    }
                };
                let _ = report.send((i, outcome));
                // Dropping senders signals downstream completion.
            })));
        }
        drop(report_tx);

        // Supervisor: collect outcomes, run the watchdog, cancel and
        // detach as needed. Never blocks indefinitely.
        let mut first_error: Option<GraphError> = None;
        let mut finished = vec![false; n];
        let mut outcomes = 0usize;
        let mut cancelled_at: Option<Instant> = None;
        let fail = |err: GraphError,
                    first_error: &mut Option<GraphError>,
                    cancelled_at: &mut Option<Instant>| {
            if first_error.is_none() {
                *first_error = Some(err);
            }
            cancel.store(true, Ordering::Relaxed);
            cancelled_at.get_or_insert_with(Instant::now);
        };
        while outcomes < n {
            match report_rx.recv_timeout(sup.poll_interval) {
                Ok((i, outcome)) => {
                    outcomes += 1;
                    finished[i] = true;
                    if let Some(h) = handles[i].take() {
                        let _ = h.join();
                    }
                    match outcome {
                        Outcome::Finished | Outcome::Cancelled => {}
                        Outcome::Failed(error) => fail(
                            GraphError::BlockFailed {
                                block: names[i].clone(),
                                error,
                            },
                            &mut first_error,
                            &mut cancelled_at,
                        ),
                        Outcome::Panicked(payload) => fail(
                            GraphError::BlockPanicked {
                                block: names[i].clone(),
                                payload,
                            },
                            &mut first_error,
                            &mut cancelled_at,
                        ),
                    }
                }
                Err(RecvTimeoutError::Timeout) => {
                    if let Some(t) = cancelled_at {
                        if t.elapsed() > sup.join_grace {
                            // Stragglers are wedged inside `work`; detach
                            // them so the caller gets its typed error.
                            break;
                        }
                        continue;
                    }
                    // Watchdog: blame the stalest unfinished block.
                    let now_ms = start.elapsed().as_millis() as u64;
                    let stalest = (0..n)
                        .filter(|&i| !finished[i])
                        .map(|i| {
                            let hb = heartbeats[i].load(Ordering::Relaxed);
                            (now_ms.saturating_sub(hb), i)
                        })
                        .max();
                    if let Some((idle_ms, i)) = stalest {
                        if Duration::from_millis(idle_ms) >= sup.stall_timeout {
                            fail(
                                GraphError::BlockStalled {
                                    block: names[i].clone(),
                                    idle: Duration::from_millis(idle_ms),
                                },
                                &mut first_error,
                                &mut cancelled_at,
                            );
                        }
                    }
                }
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        if cancelled_at.is_none() {
            // Clean finish (or a worker died without reporting): join the
            // rest; a join error here means our own scheduler code
            // panicked inside a worker thread.
            for (h, name) in handles.iter_mut().zip(&names) {
                if let Some(h) = h.take() {
                    if let Err(payload) = h.join() {
                        if first_error.is_none() {
                            first_error = Some(GraphError::BlockPanicked {
                                block: name.clone(),
                                payload: panic_message(&*payload),
                            });
                        }
                    }
                }
            }
        }
        match first_error {
            Some(err) => Err(err),
            None => Ok(()),
        }
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// `true` when the graph has no blocks.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::{ChunkBlock, FanoutBlock, MapBlock, VectorSink, VectorSource, ZipBlock};
    use crate::buffer::Item;

    #[test]
    fn linear_pipeline_runs() {
        let mut fg = Flowgraph::new();
        let src = fg.add(VectorSource::new((0..100u8).map(Item::Byte).collect()).with_chunk(7));
        let map = fg.add(MapBlock::new("double", |i| {
            Item::Byte(i.byte().wrapping_mul(2))
        }));
        let (sink, handle) = VectorSink::new();
        let sink = fg.add(sink);
        fg.connect(src, 0, map, 0).unwrap();
        fg.connect(map, 0, sink, 0).unwrap();
        fg.run(&MessageHub::new()).unwrap();
        let want: Vec<u8> = (0..100u8).map(|b| b.wrapping_mul(2)).collect();
        assert_eq!(handle.bytes(), want);
    }

    #[test]
    fn rate_changing_pipeline() {
        let mut fg = Flowgraph::new();
        let src = fg.add(VectorSource::new((0..64u8).map(Item::Byte).collect()).with_chunk(5));
        // 8:1 decimator summing chunks (wrapping — bytes overflow past 255).
        let dec = fg.add(ChunkBlock::new("sum8", 8, |c| {
            vec![Item::Byte(
                c.iter().fold(0u8, |a, i| a.wrapping_add(i.byte())),
            )]
        }));
        let (sink, handle) = VectorSink::new();
        let sink = fg.add(sink);
        fg.connect(src, 0, dec, 0).unwrap();
        fg.connect(dec, 0, sink, 0).unwrap();
        fg.run(&MessageHub::new()).unwrap();
        assert_eq!(handle.len(), 8);
        assert_eq!(handle.bytes()[0], (0..8u8).sum::<u8>());
    }

    #[test]
    fn fanout_and_zip_topology() {
        let mut fg = Flowgraph::new();
        let src = fg.add(VectorSource::new((1..=10u8).map(Item::Byte).collect()));
        let fan = fg.add(FanoutBlock::new(2));
        let inc = fg.add(MapBlock::new("inc", |i| Item::Byte(i.byte() + 1)));
        let dec = fg.add(MapBlock::new("dec", |i| Item::Byte(i.byte() - 1)));
        let zip = fg.add(ZipBlock::new(2));
        let (sink, handle) = VectorSink::new();
        let sink = fg.add(sink);
        fg.connect(src, 0, fan, 0).unwrap();
        fg.connect(fan, 0, inc, 0).unwrap();
        fg.connect(fan, 1, dec, 0).unwrap();
        fg.connect(inc, 0, zip, 0).unwrap();
        fg.connect(dec, 0, zip, 1).unwrap();
        fg.connect(zip, 0, sink, 0).unwrap();
        fg.run(&MessageHub::new()).unwrap();
        let got = handle.bytes();
        assert_eq!(got.len(), 20);
        assert_eq!(&got[..4], &[2, 0, 3, 1]);
    }

    #[test]
    fn threaded_matches_single_threaded() {
        let build = || {
            let mut fg = Flowgraph::new();
            let src = fg.add(
                VectorSource::new((0..500u32).map(|i| Item::Real(i as f64)).collect())
                    .with_chunk(13),
            );
            let sq = fg.add(MapBlock::new("square", |i| {
                let v = i.real();
                Item::Real(v * v)
            }));
            let (sink, handle) = VectorSink::new();
            let sink = fg.add(sink);
            fg.connect(src, 0, sq, 0).unwrap();
            fg.connect(sq, 0, sink, 0).unwrap();
            (fg, handle)
        };
        let (mut fg1, h1) = build();
        fg1.run(&MessageHub::new()).unwrap();
        let (fg2, h2) = build();
        fg2.run_threaded(std::sync::Arc::new(MessageHub::new()))
            .unwrap();
        assert_eq!(h1.reals(), h2.reals());
    }

    #[test]
    fn unconnected_port_detected() {
        let mut fg = Flowgraph::new();
        let _src = fg.add(VectorSource::new(vec![Item::Byte(1)]));
        let err = fg.run(&MessageHub::new()).unwrap_err();
        assert!(
            matches!(
                err,
                GraphError::Unconnected {
                    is_input: false,
                    ..
                }
            ),
            "{err}"
        );
    }

    #[test]
    fn double_connect_rejected() {
        let mut fg = Flowgraph::new();
        let src = fg.add(VectorSource::new(vec![Item::Byte(1)]));
        let (s1, _h1) = VectorSink::new();
        let (s2, _h2) = VectorSink::new();
        let a = fg.add(s1);
        let b = fg.add(s2);
        fg.connect(src, 0, a, 0).unwrap();
        assert!(matches!(
            fg.connect(src, 0, b, 0),
            Err(GraphError::PortTaken {
                is_input: false,
                ..
            })
        ));
    }

    #[test]
    fn bad_port_rejected() {
        let mut fg = Flowgraph::new();
        let src = fg.add(VectorSource::new(vec![]));
        let (sink, _h) = VectorSink::new();
        let sink = fg.add(sink);
        assert!(matches!(
            fg.connect(src, 1, sink, 0),
            Err(GraphError::BadPort {
                is_input: false,
                ..
            })
        ));
        assert!(matches!(
            fg.connect(src, 0, sink, 3),
            Err(GraphError::BadPort { is_input: true, .. })
        ));
    }

    #[test]
    fn deadlock_detected() {
        /// A pathological block that always claims Blocked.
        struct Stuck;
        impl crate::block::Block for Stuck {
            fn name(&self) -> &str {
                "stuck"
            }
            fn num_inputs(&self) -> usize {
                1
            }
            fn num_outputs(&self) -> usize {
                0
            }
            fn work(
                &mut self,
                _i: &mut [InputBuffer],
                _o: &mut [OutputBuffer],
                _c: &mut BlockCtx<'_>,
            ) -> WorkStatus {
                WorkStatus::Blocked
            }
        }
        let mut fg = Flowgraph::new();
        let src = fg.add(VectorSource::new(vec![Item::Byte(1)]));
        let stuck = fg.add(Stuck);
        fg.connect(src, 0, stuck, 0).unwrap();
        let err = fg.run(&MessageHub::new()).unwrap_err();
        assert!(matches!(err, GraphError::Deadlock { .. }), "{err}");
    }

    #[test]
    fn threaded_scheduler_reports_block_panics() {
        struct Bomb;
        impl crate::block::Block for Bomb {
            fn name(&self) -> &str {
                "bomb"
            }
            fn num_inputs(&self) -> usize {
                1
            }
            fn num_outputs(&self) -> usize {
                0
            }
            fn work(
                &mut self,
                i: &mut [InputBuffer],
                _o: &mut [OutputBuffer],
                _c: &mut BlockCtx<'_>,
            ) -> WorkStatus {
                if i[0].available() > 0 {
                    panic!("boom");
                }
                if i[0].is_finished() {
                    WorkStatus::Done
                } else {
                    WorkStatus::Blocked
                }
            }
        }
        let mut fg = Flowgraph::new();
        let src = fg.add(VectorSource::new(vec![crate::buffer::Item::Byte(1)]));
        let bomb = fg.add(Bomb);
        fg.connect(src, 0, bomb, 0).unwrap();
        let err = fg
            .run_threaded(std::sync::Arc::new(MessageHub::new()))
            .unwrap_err();
        match err {
            GraphError::BlockPanicked { block, payload } => {
                assert_eq!(block, "bomb");
                assert!(payload.contains("boom"), "payload was {payload:?}");
            }
            other => panic!("unexpected {other}"),
        }
    }

    /// Sink that fails with a typed error on the first delivered item.
    struct Failing;
    impl crate::block::Block for Failing {
        fn name(&self) -> &str {
            "failing"
        }
        fn num_inputs(&self) -> usize {
            1
        }
        fn num_outputs(&self) -> usize {
            0
        }
        fn work(
            &mut self,
            i: &mut [InputBuffer],
            _o: &mut [OutputBuffer],
            _c: &mut BlockCtx<'_>,
        ) -> WorkStatus {
            if i[0].available() > 0 {
                return WorkStatus::Error(crate::block::BlockError::new(
                    "decode",
                    "checksum mismatch",
                ));
            }
            if i[0].is_finished() {
                WorkStatus::Done
            } else {
                WorkStatus::Blocked
            }
        }
    }

    #[test]
    fn single_threaded_scheduler_surfaces_typed_errors() {
        let mut fg = Flowgraph::new();
        let src = fg.add(VectorSource::new(vec![Item::Byte(1)]));
        let bad = fg.add(Failing);
        fg.connect(src, 0, bad, 0).unwrap();
        let err = fg.run(&MessageHub::new()).unwrap_err();
        match err {
            GraphError::BlockFailed { block, error } => {
                assert_eq!(block, "failing");
                assert_eq!(error.kind, "decode");
                assert!(error.to_string().contains("checksum mismatch"));
            }
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn threaded_scheduler_surfaces_typed_errors() {
        let mut fg = Flowgraph::new();
        let src = fg.add(VectorSource::new(vec![Item::Byte(1)]));
        let bad = fg.add(Failing);
        fg.connect(src, 0, bad, 0).unwrap();
        let err = fg
            .run_threaded(std::sync::Arc::new(MessageHub::new()))
            .unwrap_err();
        match err {
            GraphError::BlockFailed { block, error } => {
                assert_eq!(block, "failing");
                assert_eq!(error.kind, "decode");
            }
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn watchdog_converts_livelock_into_block_stalled() {
        /// Claims Progress forever without consuming anything: the classic
        /// livelock the single-threaded scheduler cannot distinguish from
        /// useful work and the old threaded scheduler span on forever.
        struct Spinner;
        impl crate::block::Block for Spinner {
            fn name(&self) -> &str {
                "spinner"
            }
            fn num_inputs(&self) -> usize {
                1
            }
            fn num_outputs(&self) -> usize {
                0
            }
            fn work(
                &mut self,
                _i: &mut [InputBuffer],
                _o: &mut [OutputBuffer],
                _c: &mut BlockCtx<'_>,
            ) -> WorkStatus {
                std::thread::sleep(Duration::from_millis(1));
                WorkStatus::Progress
            }
        }
        let mut fg = Flowgraph::new();
        let src = fg.add(VectorSource::new(vec![Item::Byte(1)]));
        let spin = fg.add(Spinner);
        fg.connect(src, 0, spin, 0).unwrap();
        let sup = SupervisorConfig {
            stall_timeout: Duration::from_millis(100),
            ..SupervisorConfig::default()
        };
        let start = std::time::Instant::now();
        let err = fg
            .run_threaded_with(std::sync::Arc::new(MessageHub::new()), sup)
            .unwrap_err();
        assert!(
            start.elapsed() < Duration::from_secs(10),
            "scheduler failed to terminate promptly"
        );
        match err {
            GraphError::BlockStalled { block, idle } => {
                assert_eq!(block, "spinner");
                assert!(idle >= Duration::from_millis(100));
            }
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn empty_graph_runs_trivially() {
        let mut fg = Flowgraph::new();
        assert!(fg.is_empty());
        fg.run(&MessageHub::new()).unwrap();
        assert_eq!(fg.len(), 0);
    }

    #[test]
    fn tags_travel_with_items() {
        use crate::buffer::{Tag, TagValue};
        /// Source that tags item 3.
        struct TaggingSource {
            sent: bool,
        }
        impl crate::block::Block for TaggingSource {
            fn name(&self) -> &str {
                "tagging_source"
            }
            fn num_inputs(&self) -> usize {
                0
            }
            fn num_outputs(&self) -> usize {
                1
            }
            fn work(
                &mut self,
                _i: &mut [InputBuffer],
                o: &mut [OutputBuffer],
                _c: &mut BlockCtx<'_>,
            ) -> WorkStatus {
                if self.sent {
                    return WorkStatus::Done;
                }
                for k in 0..8u8 {
                    if k == 3 {
                        o[0].add_tag(o[0].offset(), "frame_start", TagValue::U64(99));
                    }
                    o[0].push(Item::Byte(k));
                }
                self.sent = true;
                WorkStatus::Progress
            }
        }
        /// Sink that records tag positions.
        struct TagSink {
            seen: std::sync::Arc<parking_lot::Mutex<Vec<Tag>>>,
        }
        impl crate::block::Block for TagSink {
            fn name(&self) -> &str {
                "tag_sink"
            }
            fn num_inputs(&self) -> usize {
                1
            }
            fn num_outputs(&self) -> usize {
                0
            }
            fn work(
                &mut self,
                i: &mut [InputBuffer],
                _o: &mut [OutputBuffer],
                _c: &mut BlockCtx<'_>,
            ) -> WorkStatus {
                let n = i[0].available();
                if n == 0 {
                    return if i[0].is_finished() {
                        WorkStatus::Done
                    } else {
                        WorkStatus::Blocked
                    };
                }
                let tags: Vec<Tag> = i[0].tags_in_window(n).into_iter().cloned().collect();
                self.seen.lock().extend(tags);
                i[0].take(n);
                WorkStatus::Progress
            }
        }
        let seen = std::sync::Arc::new(parking_lot::Mutex::new(Vec::new()));
        let mut fg = Flowgraph::new();
        let src = fg.add(TaggingSource { sent: false });
        let sink = fg.add(TagSink { seen: seen.clone() });
        fg.connect(src, 0, sink, 0).unwrap();
        fg.run(&MessageHub::new()).unwrap();
        let tags = seen.lock();
        assert_eq!(tags.len(), 1);
        assert_eq!(tags[0].offset, 3);
        assert_eq!(tags[0].key, "frame_start");
    }

    #[test]
    fn messages_published_during_run_are_received() {
        struct Publisher {
            done: bool,
        }
        impl crate::block::Block for Publisher {
            fn name(&self) -> &str {
                "publisher"
            }
            fn num_inputs(&self) -> usize {
                0
            }
            fn num_outputs(&self) -> usize {
                1
            }
            fn work(
                &mut self,
                _i: &mut [InputBuffer],
                o: &mut [OutputBuffer],
                c: &mut BlockCtx<'_>,
            ) -> WorkStatus {
                if self.done {
                    return WorkStatus::Done;
                }
                c.msgs.publish("snr", crate::message::Message::F64(17.0));
                o[0].push(Item::Byte(0));
                self.done = true;
                WorkStatus::Progress
            }
        }
        let mut fg = Flowgraph::new();
        let p = fg.add(Publisher { done: false });
        let (sink, _h) = VectorSink::new();
        let sink = fg.add(sink);
        fg.connect(p, 0, sink, 0).unwrap();
        let hub = MessageHub::new();
        let sub = hub.subscribe("snr");
        fg.run(&hub).unwrap();
        assert_eq!(sub.drain(), vec![crate::message::Message::F64(17.0)]);
    }
}
