//! Radix-2 decimation-in-time FFT / IFFT.
//!
//! OFDM modulation in this workspace uses a 64-point transform, so an
//! iterative radix-2 kernel with precomputed twiddles is ample. The planner
//! ([`Fft`]) precomputes bit-reversal permutation and twiddle tables once and
//! is then reusable (and cheap to clone) for any number of transforms of that
//! size — the same pattern FFTW/RustFFT planners use.
//!
//! Conventions: forward transform uses `exp(-i 2 pi k n / N)` with no
//! scaling; inverse uses `exp(+i 2 pi k n / N)` scaled by `1/N`, so
//! `ifft(fft(x)) == x`.

use crate::complex::Complex64;

/// Transform direction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Time → frequency, `exp(-i...)`, unscaled.
    Forward,
    /// Frequency → time, `exp(+i...)`, scaled by `1/N`.
    Inverse,
}

/// A planned fixed-size FFT.
///
/// # Examples
///
/// ```
/// use mimonet_dsp::fft::Fft;
/// use mimonet_dsp::complex::Complex64;
///
/// let fft = Fft::new(64);
/// let mut buf = vec![Complex64::ONE; 64];
/// fft.forward(&mut buf);
/// // A constant signal concentrates all energy in bin 0.
/// assert!((buf[0].re - 64.0).abs() < 1e-9);
/// assert!(buf[1].abs() < 1e-9);
/// ```
#[derive(Clone, Debug)]
pub struct Fft {
    n: usize,
    // twiddles[s] holds the factors for stage with half-size m = 2^s.
    twiddles_fwd: Vec<Vec<Complex64>>,
    twiddles_inv: Vec<Vec<Complex64>>,
    bitrev: Vec<u32>,
}

impl Fft {
    /// Plans a transform of size `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or not a power of two.
    pub fn new(n: usize) -> Self {
        assert!(
            n.is_power_of_two() && n > 0,
            "FFT size must be a power of two, got {n}"
        );
        let stages = n.trailing_zeros() as usize;

        let mut bitrev = vec![0u32; n];
        for (i, slot) in bitrev.iter_mut().enumerate() {
            *slot = (i as u32).reverse_bits() >> (32 - stages.max(1) as u32);
        }
        if n == 1 {
            bitrev[0] = 0;
        }

        let mut twiddles_fwd = Vec::with_capacity(stages);
        let mut twiddles_inv = Vec::with_capacity(stages);
        for s in 0..stages {
            let m = 1usize << s; // half the butterfly span at this stage
            let mut tf = Vec::with_capacity(m);
            let mut ti = Vec::with_capacity(m);
            for k in 0..m {
                let theta = std::f64::consts::PI * k as f64 / m as f64;
                tf.push(Complex64::cis(-theta));
                ti.push(Complex64::cis(theta));
            }
            twiddles_fwd.push(tf);
            twiddles_inv.push(ti);
        }

        Self {
            n,
            twiddles_fwd,
            twiddles_inv,
            bitrev,
        }
    }

    /// The planned transform size.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` when the planned size is zero. [`Fft::new`] rejects `n == 0`,
    /// so this is always `false` for a constructed plan; it exists (honestly
    /// computed, not hardcoded) because clippy expects `is_empty` alongside
    /// `len`.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    fn run(&self, buf: &mut [Complex64], dir: Direction) {
        assert_eq!(
            buf.len(),
            self.n,
            "buffer length {} does not match planned FFT size {}",
            buf.len(),
            self.n
        );
        let n = self.n;
        if n == 1 {
            return;
        }

        // Bit-reversal permutation.
        for i in 0..n {
            let j = self.bitrev[i] as usize;
            if j > i {
                buf.swap(i, j);
            }
        }

        let tables = match dir {
            Direction::Forward => &self.twiddles_fwd,
            Direction::Inverse => &self.twiddles_inv,
        };

        for (s, tw) in tables.iter().enumerate() {
            let m = 1usize << s; // half span
            let span = m << 1;
            let mut base = 0;
            while base < n {
                for k in 0..m {
                    let w = tw[k];
                    let a = buf[base + k];
                    let b = buf[base + k + m] * w;
                    buf[base + k] = a + b;
                    buf[base + k + m] = a - b;
                }
                base += span;
            }
        }

        if dir == Direction::Inverse {
            let inv_n = 1.0 / n as f64;
            for x in buf.iter_mut() {
                *x = x.scale(inv_n);
            }
        }
    }

    /// In-place forward transform (time → frequency, unscaled).
    pub fn forward(&self, buf: &mut [Complex64]) {
        self.run(buf, Direction::Forward);
    }

    /// In-place inverse transform (frequency → time, scaled by `1/N`).
    pub fn inverse(&self, buf: &mut [Complex64]) {
        self.run(buf, Direction::Inverse);
    }
}

/// Runs `f` with a cached plan of size `n`, planning (and memoizing, per
/// thread) on first use. One-shot callers hit the planner exactly once per
/// (thread, size) instead of rebuilding twiddle tables on every call.
fn with_cached_plan<R>(n: usize, f: impl FnOnce(&Fft) -> R) -> R {
    use std::cell::RefCell;
    use std::collections::BTreeMap;
    thread_local! {
        static PLANS: RefCell<BTreeMap<usize, Fft>> = const { RefCell::new(BTreeMap::new()) };
    }
    PLANS.with(|plans| {
        let mut plans = plans.borrow_mut();
        let plan = plans.entry(n).or_insert_with(|| Fft::new(n));
        f(plan)
    })
}

/// One-shot forward FFT of a slice, returning a new vector.
/// Plans are cached per thread and size; for tight loops that can hold a
/// planner across calls, prefer [`Fft`] directly.
pub fn fft(x: &[Complex64]) -> Vec<Complex64> {
    let mut buf = x.to_vec();
    with_cached_plan(x.len(), |plan| plan.forward(&mut buf));
    buf
}

/// One-shot inverse FFT of a slice, returning a new vector.
/// Plans are cached per thread and size, like [`fft`].
pub fn ifft(x: &[Complex64]) -> Vec<Complex64> {
    let mut buf = x.to_vec();
    with_cached_plan(x.len(), |plan| plan.inverse(&mut buf));
    buf
}

/// Rotates a spectrum so that index 0 (DC) moves to the middle — the
/// classic `fftshift`. For even `n` the negative frequencies come first.
pub fn fftshift(x: &[Complex64]) -> Vec<Complex64> {
    let n = x.len();
    let half = n.div_ceil(2);
    let mut out = Vec::with_capacity(n);
    out.extend_from_slice(&x[half..]);
    out.extend_from_slice(&x[..half]);
    out
}

/// Inverse of [`fftshift`].
pub fn ifftshift(x: &[Complex64]) -> Vec<Complex64> {
    let n = x.len();
    let half = n / 2;
    let mut out = Vec::with_capacity(n);
    out.extend_from_slice(&x[half..]);
    out.extend_from_slice(&x[..half]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::C64;

    fn naive_dft(x: &[C64], sign: f64) -> Vec<C64> {
        let n = x.len();
        (0..n)
            .map(|k| {
                (0..n)
                    .map(|t| {
                        x[t] * C64::cis(
                            sign * 2.0 * std::f64::consts::PI * (k * t) as f64 / n as f64,
                        )
                    })
                    .sum()
            })
            .collect()
    }

    fn assert_close(a: &[C64], b: &[C64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!(x.dist(*y) < tol, "index {i}: {x:?} vs {y:?} (tol {tol})");
        }
    }

    #[test]
    fn matches_naive_dft_various_sizes() {
        for &n in &[1usize, 2, 4, 8, 16, 64, 128] {
            let x: Vec<C64> = (0..n)
                .map(|i| C64::new((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()))
                .collect();
            let got = fft(&x);
            let want = naive_dft(&x, -1.0);
            assert_close(&got, &want, 1e-9 * n as f64);
        }
    }

    #[test]
    fn inverse_roundtrip() {
        let n = 64;
        let x: Vec<C64> = (0..n)
            .map(|i| C64::new((i as f64).sin(), (i as f64 * 2.0).cos()))
            .collect();
        let y = ifft(&fft(&x));
        assert_close(&y, &x, 1e-10);
    }

    #[test]
    fn impulse_gives_flat_spectrum() {
        let mut x = vec![C64::ZERO; 32];
        x[0] = C64::ONE;
        let y = fft(&x);
        for v in &y {
            assert!(v.dist(C64::ONE) < 1e-12);
        }
    }

    #[test]
    fn single_tone_lands_in_one_bin() {
        let n = 64;
        let k0 = 5;
        let x: Vec<C64> = (0..n)
            .map(|t| C64::cis(2.0 * std::f64::consts::PI * (k0 * t) as f64 / n as f64))
            .collect();
        let y = fft(&x);
        for (k, v) in y.iter().enumerate() {
            if k == k0 {
                assert!((v.abs() - n as f64).abs() < 1e-9);
            } else {
                assert!(v.abs() < 1e-9, "bin {k} leaked {v:?}");
            }
        }
    }

    #[test]
    fn parseval_energy_conserved() {
        let n = 128;
        let x: Vec<C64> = (0..n)
            .map(|i| C64::new((i as f64 * 1.3).sin(), (i as f64 * 0.7).sin()))
            .collect();
        let y = fft(&x);
        let et: f64 = x.iter().map(|v| v.norm_sqr()).sum();
        let ef: f64 = y.iter().map(|v| v.norm_sqr()).sum::<f64>() / n as f64;
        assert!((et - ef).abs() < 1e-8);
    }

    #[test]
    fn linearity() {
        let n = 16;
        let a: Vec<C64> = (0..n).map(|i| C64::new(i as f64, -(i as f64))).collect();
        let b: Vec<C64> = (0..n).map(|i| C64::new((i as f64).cos(), 0.5)).collect();
        let sum: Vec<C64> = a.iter().zip(&b).map(|(&x, &y)| x + y).collect();
        let fa = fft(&a);
        let fb = fft(&b);
        let fsum = fft(&sum);
        let want: Vec<C64> = fa.iter().zip(&fb).map(|(&x, &y)| x + y).collect();
        assert_close(&fsum, &want, 1e-10);
    }

    #[test]
    fn shift_roundtrip() {
        let x: Vec<C64> = (0..8).map(|i| C64::from_re(i as f64)).collect();
        assert_eq!(ifftshift(&fftshift(&x)), x);
        // For even n, fftshift puts bin n/2 first.
        assert_eq!(fftshift(&x)[0], C64::from_re(4.0));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        Fft::new(48);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn rejects_wrong_buffer_length() {
        let f = Fft::new(8);
        let mut b = vec![C64::ZERO; 4];
        f.forward(&mut b);
    }

    #[test]
    fn planner_is_reusable() {
        let f = Fft::new(64);
        let x: Vec<C64> = (0..64).map(|i| C64::from_re(i as f64)).collect();
        let mut b1 = x.clone();
        let mut b2 = x.clone();
        f.forward(&mut b1);
        f.forward(&mut b2);
        assert_eq!(b1, b2);
        f.inverse(&mut b1);
        assert_close(&b1, &x, 1e-9);
    }
}
