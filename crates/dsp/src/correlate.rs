//! Correlation primitives used by packet detection and fine timing.
//!
//! Two families live here:
//!
//! * **Sliding cross-correlation** against a known reference (matched
//!   filtering against a preamble) — [`cross_correlate`] and the normalized
//!   variant used for detection thresholds.
//! * **Lagged autocorrelation** of a signal with a delayed copy of itself —
//!   the core of Schmidl–Cox-style detectors and the Van de Beek metric;
//!   [`SlidingAutocorrelator`] maintains the running sums in O(1) per sample.

use crate::complex::{dot_conj, Complex64};

/// Cross-correlates `signal` against `reference` at every alignment where the
/// reference fits entirely inside the signal.
///
/// Output length is `signal.len() - reference.len() + 1`; entry `d` is
/// `sum_k signal[d+k] * conj(reference[k])`.
///
/// Returns an empty vector when the reference is longer than the signal.
pub fn cross_correlate(signal: &[Complex64], reference: &[Complex64]) -> Vec<Complex64> {
    if reference.is_empty() || reference.len() > signal.len() {
        return Vec::new();
    }
    let n = signal.len() - reference.len() + 1;
    (0..n)
        .map(|d| dot_conj(&signal[d..d + reference.len()], reference))
        .collect()
}

/// Normalized cross-correlation magnitude in `[0, 1]`:
/// `|<s_d, r>| / (||s_d|| * ||r||)`, where `s_d` is the signal window at
/// offset `d`. Windows with (near-)zero energy produce 0.
///
/// The window energy `||s_d||²` is maintained as a running sum — O(1) per
/// lag, mirroring [`SlidingAutocorrelator`] — instead of being recomputed
/// from scratch at every offset. The running update reassociates the
/// floating-point summation, so individual values can differ from the
/// per-window reference ([`normalized_cross_correlate_reference`]) by
/// rounding noise; peak positions and threshold decisions are unaffected.
pub fn normalized_cross_correlate(signal: &[Complex64], reference: &[Complex64]) -> Vec<f64> {
    let mut out = Vec::new();
    normalized_cross_correlate_into(signal, reference, &mut out);
    out
}

/// [`normalized_cross_correlate`] writing into a caller-owned vector
/// (cleared first; capacity is reused) so warmed-up callers allocate
/// nothing.
pub fn normalized_cross_correlate_into(
    signal: &[Complex64],
    reference: &[Complex64],
    out: &mut Vec<f64>,
) {
    out.clear();
    if reference.is_empty() || reference.len() > signal.len() {
        return;
    }
    let l = reference.len();
    let n = signal.len() - l + 1;
    let r_energy: f64 = reference.iter().map(|x| x.norm_sqr()).sum();
    if r_energy <= f64::EPSILON {
        out.resize(n, 0.0);
        return;
    }
    // Prime the window energy, then slide: add the entering sample, drop
    // the leaving one. Clamp at zero — the running difference can dip to a
    // tiny negative value once the true energy is ~0.
    let mut s_energy: f64 = signal[..l].iter().map(|x| x.norm_sqr()).sum();
    for d in 0..n {
        let win = &signal[d..d + l];
        let e = s_energy.max(0.0);
        out.push(if e <= f64::EPSILON {
            0.0
        } else {
            dot_conj(win, reference).abs() / (e * r_energy).sqrt()
        });
        if d + 1 < n {
            s_energy += signal[d + l].norm_sqr() - signal[d].norm_sqr();
        }
    }
}

/// Reference implementation of [`normalized_cross_correlate`] that
/// recomputes the window energy from scratch at every lag — O(len(r)) per
/// lag. Kept as the equivalence oracle for tests and as the "before" side
/// of the hot-path benchmark.
pub fn normalized_cross_correlate_reference(
    signal: &[Complex64],
    reference: &[Complex64],
) -> Vec<f64> {
    if reference.is_empty() || reference.len() > signal.len() {
        return Vec::new();
    }
    let r_energy: f64 = reference.iter().map(|x| x.norm_sqr()).sum();
    if r_energy <= f64::EPSILON {
        return vec![0.0; signal.len() - reference.len() + 1];
    }
    let n = signal.len() - reference.len() + 1;
    (0..n)
        .map(|d| {
            let win = &signal[d..d + reference.len()];
            let s_energy: f64 = win.iter().map(|x| x.norm_sqr()).sum();
            if s_energy <= f64::EPSILON {
                0.0
            } else {
                dot_conj(win, reference).abs() / (s_energy * r_energy).sqrt()
            }
        })
        .collect()
}

/// Index of the maximum value in a real slice; `None` for empty input.
/// Ties resolve to the earliest index, matching "first peak wins" detection
/// semantics.
pub fn argmax(xs: &[f64]) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, &v) in xs.iter().enumerate() {
        match best {
            Some((_, bv)) if v <= bv => {}
            _ => best = Some((i, v)),
        }
    }
    best.map(|(i, _)| i)
}

/// Running lagged autocorrelation over a sliding window.
///
/// At each pushed sample the correlator maintains, in O(1):
///
/// * `gamma = sum_{k in window} x[k] * conj(x[k+lag])` — the complex
///   correlation between the window and its lag-delayed copy, and
/// * `phi = 1/2 * sum_{k in window} (|x[k]|^2 + |x[k+lag]|^2)` — the
///   corresponding energy term.
///
/// These are exactly the Γ(θ) and Φ(θ) sums of the Van de Beek ML estimator
/// (and of Schmidl–Cox when `lag == window`). The caller defines which sample
/// index the window refers to; see `mimonet-sync` for usage.
#[derive(Clone, Debug)]
pub struct SlidingAutocorrelator {
    lag: usize,
    window: usize,
    history: Vec<Complex64>, // ring buffer of the last `lag + window` samples
    head: usize,             // next write slot
    filled: usize,
    gamma: Complex64,
    phi: f64,
}

impl SlidingAutocorrelator {
    /// Creates a correlator with the given delay `lag` and summation window
    /// length `window` (both in samples, both nonzero).
    pub fn new(lag: usize, window: usize) -> Self {
        assert!(lag > 0 && window > 0, "lag and window must be nonzero");
        Self {
            lag,
            window,
            history: vec![Complex64::ZERO; lag + window],
            head: 0,
            filled: 0,
            gamma: Complex64::ZERO,
            phi: 0.0,
        }
    }

    /// Number of samples that must be pushed before outputs are valid.
    pub fn warmup(&self) -> usize {
        self.lag + self.window
    }

    /// `true` once enough samples have been pushed for `gamma`/`phi` to cover
    /// a full window.
    pub fn is_warm(&self) -> bool {
        self.filled >= self.warmup()
    }

    fn at(&self, age: usize) -> Complex64 {
        // age 0 = most recently pushed sample.
        let len = self.history.len();
        self.history[(self.head + len - 1 - age) % len]
    }

    /// Pushes one sample and updates the running sums.
    ///
    /// After pushing sample `x[n]`, the window covers pairs
    /// `(x[n - lag - window + 1 + k], x[n - window + 1 + k])` for
    /// `k in 0..window`; i.e. the *newest* pair is `(x[n-lag], x[n])`.
    pub fn push(&mut self, x: Complex64) {
        // The pair leaving the window (only once warm): the oldest pair is
        // (x[n - lag - window + 1], x[n - window + 1]) *before* this push.
        if self.is_warm() {
            let old_early = self.at(self.lag + self.window - 1);
            let old_late = self.at(self.window - 1);
            self.gamma -= old_early * old_late.conj();
            self.phi -= 0.5 * (old_early.norm_sqr() + old_late.norm_sqr());
        }

        self.history[self.head] = x;
        self.head = (self.head + 1) % self.history.len();
        self.filled = (self.filled + 1).min(self.warmup() + 1);

        // The pair entering: (x[n - lag], x[n]) where x[n] = just pushed.
        if self.filled > self.lag {
            let early = self.at(self.lag);
            let late = x;
            self.gamma += early * late.conj();
            self.phi += 0.5 * (early.norm_sqr() + late.norm_sqr());
        }
    }

    /// Current complex correlation sum Γ. Valid once [`Self::is_warm`].
    pub fn gamma(&self) -> Complex64 {
        self.gamma
    }

    /// Current energy sum Φ. Valid once [`Self::is_warm`].
    pub fn phi(&self) -> f64 {
        self.phi
    }

    /// Normalized correlation magnitude `|Γ| / Φ` in `[0, 1]` (up to noise);
    /// the standard plateau/peak detection metric. Returns 0 when Φ is
    /// negligible.
    pub fn metric(&self) -> f64 {
        if self.phi <= f64::EPSILON {
            0.0
        } else {
            self.gamma.abs() / self.phi
        }
    }

    /// Resets all state, as after `new`.
    pub fn reset(&mut self) {
        self.history.fill(Complex64::ZERO);
        self.head = 0;
        self.filled = 0;
        self.gamma = Complex64::ZERO;
        self.phi = 0.0;
    }
}

/// Batch lagged autocorrelation: for each position where a full window of
/// pairs is available, returns `(gamma, phi)` as defined on
/// [`SlidingAutocorrelator`] — i.e. `gamma = sum_k x[i+k] * conj(x[i+k+lag])`,
/// the Van de Beek convention. Output index `i` covers pairs
/// `(x[i+k], x[i+k+lag])` for `k in 0..window`.
pub fn lagged_autocorrelation(x: &[Complex64], lag: usize, window: usize) -> Vec<(Complex64, f64)> {
    if x.len() < lag + window {
        return Vec::new();
    }
    let n = x.len() - lag - window + 1;
    let mut out = Vec::with_capacity(n);
    let mut corr = SlidingAutocorrelator::new(lag, window);
    for (i, &s) in x.iter().enumerate() {
        corr.push(s);
        if i + 1 >= lag + window {
            out.push((corr.gamma(), corr.phi()));
        }
    }
    debug_assert_eq!(out.len(), n);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::C64;

    #[test]
    fn cross_correlation_peaks_at_embedded_reference() {
        let reference: Vec<C64> = (0..16)
            .map(|i| C64::cis(i as f64 * 1.1) * (1.0 + 0.1 * i as f64))
            .collect();
        let mut signal = vec![C64::new(0.01, -0.02); 100];
        let offset = 37;
        for (k, &r) in reference.iter().enumerate() {
            signal[offset + k] = r;
        }
        let c = normalized_cross_correlate(&signal, &reference);
        assert_eq!(argmax(&c), Some(offset));
        assert!(c[offset] > 0.99);
    }

    #[test]
    fn normalized_correlation_is_bounded() {
        let reference: Vec<C64> = (0..8).map(|i| C64::cis(i as f64)).collect();
        let signal: Vec<C64> = (0..64).map(|i| C64::cis(i as f64 * 0.3)).collect();
        for v in normalized_cross_correlate(&signal, &reference) {
            assert!((0.0..=1.0 + 1e-12).contains(&v));
        }
    }

    #[test]
    fn cross_correlate_handles_degenerate_inputs() {
        let sig = vec![C64::ONE; 4];
        assert!(cross_correlate(&sig, &[]).is_empty());
        assert!(cross_correlate(&sig, &[C64::ONE; 5]).is_empty());
        assert!(normalized_cross_correlate(&[], &sig).is_empty());
    }

    #[test]
    fn sliding_energy_matches_reference() {
        // Mixed signal: silence, a tone, impulses — exercises both the
        // zero-energy clamp and the running update.
        let mut signal = vec![C64::ZERO; 30];
        signal.extend((0..80).map(|i| C64::cis(i as f64 * 0.4) * (0.5 + (i % 7) as f64)));
        signal.extend(vec![C64::ZERO; 20]);
        signal.push(C64::new(3.0, -2.0));
        signal.extend(vec![C64::ZERO; 30]);
        let reference: Vec<C64> = (0..16).map(|i| C64::cis(i as f64 * 1.3)).collect();
        let fast = normalized_cross_correlate(&signal, &reference);
        let slow = normalized_cross_correlate_reference(&signal, &reference);
        assert_eq!(fast.len(), slow.len());
        for (d, (f, s)) in fast.iter().zip(&slow).enumerate() {
            assert!((f - s).abs() < 1e-9, "lag {d}: {f} vs {s}");
        }
    }

    #[test]
    fn into_variant_reuses_buffer_and_clears() {
        let signal: Vec<C64> = (0..40).map(|i| C64::cis(i as f64 * 0.2)).collect();
        let reference: Vec<C64> = (0..8).map(|i| C64::cis(i as f64)).collect();
        let mut out = vec![99.0; 7];
        normalized_cross_correlate_into(&signal, &reference, &mut out);
        assert_eq!(out, normalized_cross_correlate(&signal, &reference));
        // Degenerate input leaves the buffer empty, not stale.
        normalized_cross_correlate_into(&[], &reference, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn argmax_basics() {
        assert_eq!(argmax(&[]), None);
        assert_eq!(argmax(&[1.0]), Some(0));
        assert_eq!(argmax(&[1.0, 3.0, 2.0]), Some(1));
        // Ties resolve to the earliest.
        assert_eq!(argmax(&[2.0, 5.0, 5.0]), Some(1));
    }

    fn naive_lagged(x: &[C64], lag: usize, window: usize) -> Vec<(C64, f64)> {
        if x.len() < lag + window {
            return Vec::new();
        }
        (0..=x.len() - lag - window)
            .map(|i| {
                let mut g = C64::ZERO;
                let mut p = 0.0;
                for k in 0..window {
                    g += x[i + k] * x[i + k + lag].conj();
                    p += 0.5 * (x[i + k].norm_sqr() + x[i + k + lag].norm_sqr());
                }
                (g, p)
            })
            .collect()
    }

    #[test]
    fn sliding_matches_naive() {
        let x: Vec<C64> = (0..60)
            .map(|i| C64::new((i as f64 * 0.7).sin(), (i as f64 * 0.3).cos()))
            .collect();
        for &(lag, window) in &[(1usize, 1usize), (4, 8), (16, 16), (16, 32), (7, 3)] {
            let got = lagged_autocorrelation(&x, lag, window);
            let want = naive_lagged(&x, lag, window);
            assert_eq!(got.len(), want.len(), "lag={lag} window={window}");
            for (i, ((gg, gp), (wg, wp))) in got.iter().zip(&want).enumerate() {
                assert!(
                    gg.dist(*wg) < 1e-9,
                    "gamma mismatch at {i} lag={lag} w={window}"
                );
                assert!((gp - wp).abs() < 1e-9, "phi mismatch at {i}");
            }
        }
    }

    #[test]
    fn periodic_signal_saturates_metric() {
        // A signal with period `lag` has |gamma| == phi, metric == 1.
        let lag = 16;
        let base: Vec<C64> = (0..lag).map(|i| C64::cis(i as f64 * 0.9)).collect();
        let x: Vec<C64> = (0..4 * lag).map(|i| base[i % lag]).collect();
        let mut c = SlidingAutocorrelator::new(lag, lag);
        for &s in &x {
            c.push(s);
        }
        assert!(c.is_warm());
        assert!((c.metric() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut c = SlidingAutocorrelator::new(4, 4);
        for i in 0..20 {
            c.push(C64::cis(i as f64));
        }
        assert!(c.is_warm());
        c.reset();
        assert!(!c.is_warm());
        assert_eq!(c.gamma(), C64::ZERO);
        assert_eq!(c.phi(), 0.0);
    }

    #[test]
    fn warmup_accounting() {
        let mut c = SlidingAutocorrelator::new(3, 5);
        assert_eq!(c.warmup(), 8);
        for i in 0..7 {
            c.push(C64::ONE);
            assert!(!c.is_warm(), "not warm after {} samples", i + 1);
        }
        c.push(C64::ONE);
        assert!(c.is_warm());
    }

    #[test]
    fn empty_or_short_input_yields_empty_batch() {
        assert!(lagged_autocorrelation(&[], 4, 4).is_empty());
        assert!(lagged_autocorrelation(&[C64::ONE; 7], 4, 4).is_empty());
        assert_eq!(lagged_autocorrelation(&[C64::ONE; 8], 4, 4).len(), 1);
    }
}
