//! Canonical seed derivation for every seeded subsystem — the one place
//! `(seed, index, shard)` mixing lives.
//!
//! The sweep engine, the chaos harness, the channel fault injector and
//! the scenario engine all need independent deterministic RNG streams
//! derived from a single master seed. Before this module each of them
//! hand-rolled the same SplitMix64 mixing with its own ad-hoc constants;
//! now they share one tree:
//!
//! ```text
//! master seed
//! ├── point_seed(seed, p)              sweep grid point p
//! │   └── shard_seed(seed, p, s)       parallel work shard s
//! │       └── trial_seed(shard, TAG, t)  per-trial stream (chaos captures)
//! ├── salted(seed, CHANNEL_SALT)       channel noise vs payload split
//! ├── salted(seed, FAULT_SALT)         fault-schedule placement
//! └── name_seed(seed, TAG, "link-a")   order-invariant named substreams
//! ```
//!
//! Every function is a pure value computation. The exact constants are
//! **frozen**: the per-figure goldens under `results/golden/` and every
//! determinism test pin their byte-identical output to these derivations
//! (see the `derivations_are_frozen` test below, which locks the values
//! themselves).

/// SplitMix64 finalizer — the hash behind every derivation here.
pub fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Domain tag for sweep grid points (ASCII `point`).
pub const POINT_TAG: u64 = 0x0070_6F69_6E74;
/// Domain tag for sweep shards (ASCII `shard`).
pub const SHARD_TAG: u64 = 0x0073_6861_7264;
/// Domain tag for chaos-capture trials (ASCII `chaos`).
pub const CHAOS_TAG: u64 = 0x0063_6861_6F73;
/// Domain tag for scenario links (ASCII `link`).
pub const LINK_TAG: u64 = 0x0000_6C69_6E6B;
/// Domain tag for scenario rounds (ASCII `round`).
pub const ROUND_TAG: u64 = 0x0072_6F75_6E64;
/// Domain tag for cross-link interference streams (ASCII `xlink`).
pub const XLINK_TAG: u64 = 0x0078_6C69_6E6B;

/// Salt separating channel-noise streams from payload streams (the
/// golden-ratio constant `LinkSim`/`ChaosConfig` have always used).
pub const CHANNEL_SALT: u64 = 0x9E37_79B9_7F4A_7C15;
/// Salt for fault-schedule event placement.
pub const FAULT_SALT: u64 = 0xC3A5_C85C_97CB_3127;
/// Salt for the sample-level noise a fault schedule injects.
pub const FAULT_NOISE_SALT: u64 = 0xA076_1D64_78BD_642F;
/// Salt for session PSDU payload bytes (`mimonet-io`).
pub const PSDU_SALT: u64 = 0x5053_4455_1057_3A1D;
/// Salt for scenario transport-layer chunk-loss schedules.
pub const TRANSPORT_SALT: u64 = 0x7452_616E_7350_6F72;

/// Splits a master seed into an independent salted stream. XOR keeps the
/// historical derivations (`seed ^ SALT`) byte-identical.
pub fn salted(seed: u64, salt: u64) -> u64 {
    seed ^ salt
}

/// Derives the per-point seed: `spec_seed ^ hash(point_index)`.
pub fn point_seed(spec_seed: u64, point_index: usize) -> u64 {
    spec_seed ^ mix(POINT_TAG ^ point_index as u64)
}

/// Derives the per-shard seed from the point seed and shard index.
pub fn shard_seed(spec_seed: u64, point_index: usize, shard_index: usize) -> u64 {
    mix(point_seed(spec_seed, point_index) ^ mix(SHARD_TAG ^ shard_index as u64))
}

/// Derives an indexed sub-stream under `tag` from a parent seed — the
/// chaos harness's per-trial capture seeds, the scenario engine's
/// per-round seeds.
pub fn trial_seed(parent_seed: u64, tag: u64, index: usize) -> u64 {
    mix(parent_seed ^ mix(tag ^ index as u64))
}

/// FNV-1a over a byte string — the stable name hash behind
/// [`name_seed`]. Public so tests can pin it.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Derives a named sub-stream under `tag` from a parent seed. Because the
/// derivation hashes the *name* rather than a list position, shuffling a
/// collection of named entities (scenario links) never changes any
/// entity's stream — the order-invariance the scenario determinism tests
/// assert.
pub fn name_seed(parent_seed: u64, tag: u64, name: &str) -> u64 {
    mix(parent_seed ^ mix(tag ^ fnv1a(name.as_bytes())))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The derivation constants and formulas are frozen: these exact
    /// values back every checked-in golden (`results/golden/*.json`) and
    /// the byte-identity CI checks. If this test fails, a derivation
    /// changed and every golden is invalidated — that is a release
    /// decision, not a refactor.
    #[test]
    fn derivations_are_frozen() {
        assert_eq!(mix(0), 0xE220_A839_7B1D_CDAF);
        assert_eq!(mix(1), 0x910A_2DEC_8902_5CC1);
        assert_eq!(mix(0xDEAD_BEEF), 0x4ADF_B90F_68C9_EB9B);

        // Sweep-engine derivations (PR 1, pinned since).
        assert_eq!(point_seed(42, 0), 0xEED3_712B_C6A2_434A);
        assert_eq!(point_seed(42, 3), 0x2C84_3AD2_998C_6D03);
        assert_eq!(shard_seed(42, 0, 0), 0x46B8_D10A_DCC4_A6D8);
        assert_eq!(shard_seed(42, 3, 7), 0xEFE1_EB1B_9DF6_55EB);
        assert_eq!(shard_seed(0, 0, 0), 0xE3B8_4E89_B8BB_2D38);

        // Chaos per-trial derivation (PR 2): mix(seed ^ mix(TAG ^ t)).
        assert_eq!(trial_seed(99, CHAOS_TAG, 0), 0x801B_E76C_6D21_F08D);
        assert_eq!(trial_seed(99, CHAOS_TAG, 5), 0x82B0_BD01_4294_0FD2);

        // Salted splits are plain XOR (historical behavior).
        assert_eq!(salted(7, CHANNEL_SALT), 7 ^ 0x9E37_79B9_7F4A_7C15);
        assert_eq!(salted(7, FAULT_SALT), 7 ^ 0xC3A5_C85C_97CB_3127);
        assert_eq!(salted(7, FAULT_NOISE_SALT), 7 ^ 0xA076_1D64_78BD_642F);

        // Name hashing (scenario links).
        assert_eq!(fnv1a(b""), 0xCBF2_9CE4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xAF63_DC4C_8601_EC8C);
        assert_eq!(name_seed(42, LINK_TAG, "a"), 0x5F9C_B6AD_EA21_23D3);
    }

    #[test]
    fn streams_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for p in 0..16 {
            for s in 0..16 {
                assert!(seen.insert(shard_seed(1, p, s)));
            }
        }
        for t in 0..64 {
            assert!(seen.insert(trial_seed(1, CHAOS_TAG, t)));
            assert!(seen.insert(trial_seed(1, ROUND_TAG, t)));
        }
        for name in ["a", "b", "ab", "ba", "link-0", "link-1"] {
            assert!(seen.insert(name_seed(1, LINK_TAG, name)));
            assert!(seen.insert(name_seed(1, XLINK_TAG, name)));
        }
    }

    #[test]
    fn name_seed_depends_on_name_not_position() {
        let names = ["alpha", "beta", "gamma"];
        let forward: Vec<u64> = names.iter().map(|n| name_seed(9, LINK_TAG, n)).collect();
        let reversed: Vec<u64> = names
            .iter()
            .rev()
            .map(|n| name_seed(9, LINK_TAG, n))
            .collect();
        assert_eq!(
            forward,
            reversed.into_iter().rev().collect::<Vec<_>>(),
            "a name's stream must not depend on iteration order"
        );
    }
}
