//! Window functions for filter design and spectral analysis.

use std::f64::consts::PI;

/// Hamming window coefficient at index `i` of an `n`-point window.
/// For `n == 1` returns 1.0.
pub fn hamming_at(i: usize, n: usize) -> f64 {
    if n <= 1 {
        return 1.0;
    }
    0.54 - 0.46 * (2.0 * PI * i as f64 / (n - 1) as f64).cos()
}

/// Hann window coefficient at index `i` of an `n`-point window.
pub fn hann_at(i: usize, n: usize) -> f64 {
    if n <= 1 {
        return 1.0;
    }
    0.5 * (1.0 - (2.0 * PI * i as f64 / (n - 1) as f64).cos())
}

/// Blackman window coefficient at index `i` of an `n`-point window.
pub fn blackman_at(i: usize, n: usize) -> f64 {
    if n <= 1 {
        return 1.0;
    }
    let x = 2.0 * PI * i as f64 / (n - 1) as f64;
    0.42 - 0.5 * x.cos() + 0.08 * (2.0 * x).cos()
}

/// Full Hamming window of length `n`.
pub fn hamming(n: usize) -> Vec<f64> {
    (0..n).map(|i| hamming_at(i, n)).collect()
}

/// Full Hann window of length `n`.
pub fn hann(n: usize) -> Vec<f64> {
    (0..n).map(|i| hann_at(i, n)).collect()
}

/// Full Blackman window of length `n`.
pub fn blackman(n: usize) -> Vec<f64> {
    (0..n).map(|i| blackman_at(i, n)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_are_symmetric() {
        for n in [2usize, 5, 16, 65] {
            for w in [hamming(n), hann(n), blackman(n)] {
                for i in 0..n {
                    assert!((w[i] - w[n - 1 - i]).abs() < 1e-12, "n={n} i={i}");
                }
            }
        }
    }

    #[test]
    fn window_peaks_at_center() {
        let n = 33;
        for w in [hamming(n), hann(n), blackman(n)] {
            let center = w[n / 2];
            assert!((center - 1.0).abs() < 1e-12);
            for &v in &w {
                assert!(v <= center + 1e-12);
            }
        }
    }

    #[test]
    fn hann_endpoints_are_zero() {
        let w = hann(16);
        assert!(w[0].abs() < 1e-12);
        assert!(w[15].abs() < 1e-12);
    }

    #[test]
    fn hamming_endpoints() {
        let w = hamming(10);
        assert!((w[0] - 0.08).abs() < 1e-12);
    }

    #[test]
    fn degenerate_lengths() {
        assert_eq!(hamming(0).len(), 0);
        assert_eq!(hamming(1), vec![1.0]);
        assert_eq!(hann(1), vec![1.0]);
        assert_eq!(blackman(1), vec![1.0]);
    }
}
