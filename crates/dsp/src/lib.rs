//! # mimonet-dsp
//!
//! Numerics substrate for MIMONet-rs, the Rust reproduction of the SRIF'14
//! MIMO-OFDM spatial-multiplexing transceiver. Everything here is
//! implemented from scratch (no external numeric crates): complex
//! arithmetic, a planned radix-2 FFT, correlation kernels for
//! synchronization, FIR filtering, fractional resampling and streaming
//! statistics.
//!
//! The crate is intentionally free of any protocol knowledge; 802.11n
//! specifics live in `mimonet-frame` and above.

pub mod complex;
pub mod correlate;
pub mod fft;
pub mod filter;
pub mod resample;
pub mod seedtree;
pub mod spectrum;
pub mod stats;
pub mod window;

pub use complex::{Complex64, C64};
pub use fft::Fft;
