//! Power spectral density estimation (Welch's method) and occupied-
//! bandwidth measurement.
//!
//! Used by the evaluation harness to verify the transmitter's spectral
//! shape (energy confined to the occupied subcarriers, nulls at DC and the
//! band edges) — the closest software analogue of a spectrum-analyzer
//! check on a real SDR transmit chain.

use crate::complex::Complex64;
use crate::fft::Fft;
use crate::window::hann;

/// Welch PSD estimate.
///
/// Splits `x` into `segment_len`-sample segments with 50% overlap, Hann-
/// windows each, and averages the squared FFT magnitudes. Returns
/// `segment_len` bins of *linear* power, bin `k` at normalized frequency
/// `k/segment_len` cycles/sample (use [`crate::fft::fftshift`] to center).
///
/// # Panics
///
/// Panics if `segment_len` is not a power of two or `x` is shorter than
/// one segment.
pub fn welch_psd(x: &[Complex64], segment_len: usize) -> Vec<f64> {
    assert!(
        segment_len.is_power_of_two(),
        "segment length must be a power of two"
    );
    assert!(
        x.len() >= segment_len,
        "signal ({} samples) shorter than one segment ({segment_len})",
        x.len()
    );
    let fft = Fft::new(segment_len);
    let win = hann(segment_len);
    let win_power: f64 = win.iter().map(|w| w * w).sum::<f64>() / segment_len as f64;
    let hop = segment_len / 2;

    let mut acc = vec![0.0f64; segment_len];
    let mut count = 0usize;
    let mut start = 0usize;
    while start + segment_len <= x.len() {
        let mut seg: Vec<Complex64> = x[start..start + segment_len]
            .iter()
            .zip(&win)
            .map(|(&s, &w)| s.scale(w))
            .collect();
        fft.forward(&mut seg);
        for (a, v) in acc.iter_mut().zip(&seg) {
            *a += v.norm_sqr();
        }
        count += 1;
        start += hop;
    }
    // Parseval with the unscaled forward FFT: sum_k |X_k|^2 = N sum_n
    // |w_n x_n|^2 = N^2 * win_power * P_sig — hence the N^2 below, so the
    // bins sum to the mean signal power.
    let norm = 1.0 / (count as f64 * (segment_len * segment_len) as f64 * win_power);
    for a in &mut acc {
        *a *= norm;
    }
    acc
}

/// Fraction of total PSD power inside normalized frequencies
/// `[-half_bw, half_bw]` (cycles/sample), given an *unshifted* PSD.
pub fn power_in_band(psd: &[f64], half_bw: f64) -> f64 {
    assert!((0.0..=0.5).contains(&half_bw), "half bandwidth in [0, 0.5]");
    let n = psd.len();
    let total: f64 = psd.iter().sum();
    if total <= 0.0 {
        return 0.0;
    }
    let mut inside = 0.0;
    for (k, &p) in psd.iter().enumerate() {
        // Normalized frequency in [-0.5, 0.5).
        let f = if k < n / 2 {
            k as f64
        } else {
            k as f64 - n as f64
        } / n as f64;
        if f.abs() <= half_bw {
            inside += p;
        }
    }
    inside / total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::C64;

    fn tone(n: usize, f: f64, amp: f64) -> Vec<C64> {
        (0..n)
            .map(|i| C64::cis(2.0 * std::f64::consts::PI * f * i as f64).scale(amp))
            .collect()
    }

    #[test]
    fn tone_concentrates_in_its_bin() {
        let f = 10.0 / 64.0;
        let psd = welch_psd(&tone(1024, f, 1.0), 64);
        let peak = crate::correlate::argmax(&psd).unwrap();
        assert_eq!(peak, 10);
        // At least 90% of power within ±1 bin of the tone.
        let local: f64 = psd[9..=11].iter().sum();
        let total: f64 = psd.iter().sum();
        assert!(local / total > 0.9, "concentration {}", local / total);
    }

    #[test]
    fn psd_total_power_matches_signal_power() {
        // Parseval-like: sum of PSD bins ≈ mean signal power.
        let x = tone(4096, 0.13, 0.7);
        let psd = welch_psd(&x, 128);
        let total: f64 = psd.iter().sum();
        let sig_power = crate::complex::mean_power(&x);
        assert!(
            (total / sig_power - 1.0).abs() < 0.05,
            "PSD total {total} vs signal power {sig_power}"
        );
    }

    #[test]
    fn negative_frequencies_land_in_upper_bins() {
        let psd = welch_psd(&tone(1024, -5.0 / 64.0, 1.0), 64);
        let peak = crate::correlate::argmax(&psd).unwrap();
        assert_eq!(peak, 64 - 5);
    }

    #[test]
    fn power_in_band_full_and_none() {
        let psd = welch_psd(&tone(512, 0.1, 1.0), 64);
        assert!((power_in_band(&psd, 0.5) - 1.0).abs() < 1e-12);
        // Tone at 0.1: a 0.05-wide band around DC misses it.
        assert!(power_in_band(&psd, 0.05) < 0.1);
        // And a band that includes 0.1 captures it.
        assert!(power_in_band(&psd, 0.15) > 0.9);
    }

    #[test]
    fn white_noise_is_flat() {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
        let x: Vec<C64> = (0..65536)
            .map(|_| {
                // Inline Box-Muller to avoid a channel-crate dev-dependency cycle.
                use rand::Rng;
                let u1: f64 = rng.gen_range(1e-12..1.0);
                let u2: f64 = rng.gen();
                let r = (-2.0f64 * u1.ln()).sqrt();
                C64::new(
                    r * (2.0 * std::f64::consts::PI * u2).cos(),
                    r * (2.0 * std::f64::consts::PI * u2).sin(),
                )
                .scale(std::f64::consts::FRAC_1_SQRT_2)
            })
            .collect();
        let psd = welch_psd(&x, 64);
        let mean: f64 = psd.iter().sum::<f64>() / psd.len() as f64;
        for (k, &p) in psd.iter().enumerate() {
            assert!((p / mean - 1.0).abs() < 0.3, "bin {k}: {p} vs mean {mean}");
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_bad_segment() {
        welch_psd(&[C64::ZERO; 100], 48);
    }

    #[test]
    #[should_panic(expected = "shorter than one segment")]
    fn rejects_short_signal() {
        welch_psd(&[C64::ZERO; 10], 64);
    }
}
