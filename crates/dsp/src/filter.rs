//! FIR filtering and filter design.
//!
//! The transmit chain does not strictly need pulse shaping (OFDM's cyclic
//! prefix does the work), but the channel simulator uses FIR structures for
//! tapped-delay-line fading, and windowed-sinc low-pass design backs the
//! fractional resampler in [`crate::resample`].

use crate::complex::Complex64;

/// A direct-form FIR filter with complex taps and streaming state.
///
/// Feed samples with [`Fir::process`] (one in, one out); the delay line
/// persists across calls, so arbitrarily chunked streams filter identically
/// to one big slice.
#[derive(Clone, Debug)]
pub struct Fir {
    taps: Vec<Complex64>,
    delay: Vec<Complex64>,
    pos: usize,
}

impl Fir {
    /// Creates a filter from its impulse response. Must be non-empty.
    pub fn new(taps: Vec<Complex64>) -> Self {
        assert!(!taps.is_empty(), "FIR filter needs at least one tap");
        let n = taps.len();
        Self {
            taps,
            delay: vec![Complex64::ZERO; n],
            pos: 0,
        }
    }

    /// Creates a filter from real-valued taps.
    pub fn from_real(taps: &[f64]) -> Self {
        Self::new(taps.iter().map(|&t| Complex64::from_re(t)).collect())
    }

    /// Number of taps.
    pub fn len(&self) -> usize {
        self.taps.len()
    }

    /// Always false; a filter has at least one tap.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The filter's taps.
    pub fn taps(&self) -> &[Complex64] {
        &self.taps
    }

    /// Pushes one input sample and returns one output sample
    /// (`y[n] = sum_k taps[k] * x[n-k]`).
    pub fn process(&mut self, x: Complex64) -> Complex64 {
        let n = self.taps.len();
        self.delay[self.pos] = x;
        let mut acc = Complex64::ZERO;
        let mut idx = self.pos;
        for &t in &self.taps {
            acc += t * self.delay[idx];
            idx = if idx == 0 { n - 1 } else { idx - 1 };
        }
        self.pos = (self.pos + 1) % n;
        acc
    }

    /// Filters a whole block, preserving state across calls.
    pub fn process_block(&mut self, xs: &[Complex64]) -> Vec<Complex64> {
        xs.iter().map(|&x| self.process(x)).collect()
    }

    /// Clears the delay line.
    pub fn reset(&mut self) {
        self.delay.fill(Complex64::ZERO);
        self.pos = 0;
    }
}

/// Full linear convolution of two sequences (output length `a + b - 1`).
/// Used by the channel simulator to apply multipath impulse responses to
/// whole frames.
pub fn convolve(a: &[Complex64], b: &[Complex64]) -> Vec<Complex64> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let mut out = vec![Complex64::ZERO; a.len() + b.len() - 1];
    for (i, &x) in a.iter().enumerate() {
        for (j, &y) in b.iter().enumerate() {
            out[i + j] += x * y;
        }
    }
    out
}

/// Normalized sinc, `sin(pi x) / (pi x)` with `sinc(0) = 1`.
pub fn sinc(x: f64) -> f64 {
    if x.abs() < 1e-12 {
        1.0
    } else {
        let px = std::f64::consts::PI * x;
        px.sin() / px
    }
}

/// Designs a windowed-sinc low-pass FIR.
///
/// * `num_taps` — filter length (odd lengths give exact linear phase about
///   the center tap).
/// * `cutoff` — normalized cutoff in cycles/sample, in `(0, 0.5)`.
///
/// Taps are Hamming-windowed and scaled for unity DC gain.
pub fn lowpass_taps(num_taps: usize, cutoff: f64) -> Vec<f64> {
    assert!(num_taps > 0, "filter length must be nonzero");
    assert!(
        cutoff > 0.0 && cutoff < 0.5,
        "cutoff must be in (0, 0.5), got {cutoff}"
    );
    let center = (num_taps - 1) as f64 / 2.0;
    let mut taps: Vec<f64> = (0..num_taps)
        .map(|i| {
            let t = i as f64 - center;
            let w = crate::window::hamming_at(i, num_taps);
            2.0 * cutoff * sinc(2.0 * cutoff * t) * w
        })
        .collect();
    let gain: f64 = taps.iter().sum();
    for t in &mut taps {
        *t /= gain;
    }
    taps
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::C64;
    use crate::fft::fft;

    #[test]
    fn fir_identity() {
        let mut f = Fir::from_real(&[1.0]);
        for i in 0..10 {
            let x = C64::new(i as f64, -(i as f64));
            assert_eq!(f.process(x), x);
        }
    }

    #[test]
    fn fir_delay() {
        let mut f = Fir::from_real(&[0.0, 0.0, 1.0]);
        let xs: Vec<C64> = (0..8).map(|i| C64::from_re(i as f64 + 1.0)).collect();
        let ys = f.process_block(&xs);
        assert_eq!(ys[0], C64::ZERO);
        assert_eq!(ys[1], C64::ZERO);
        for i in 2..8 {
            assert_eq!(ys[i], xs[i - 2]);
        }
    }

    #[test]
    fn fir_matches_convolution_prefix() {
        let taps: Vec<C64> = vec![C64::new(0.5, 0.1), C64::new(-0.2, 0.0), C64::new(0.0, 0.3)];
        let xs: Vec<C64> = (0..20)
            .map(|i| C64::new((i as f64 * 0.4).sin(), (i as f64 * 0.9).cos()))
            .collect();
        let mut f = Fir::new(taps.clone());
        let stream = f.process_block(&xs);
        let full = convolve(&xs, &taps);
        for i in 0..xs.len() {
            assert!(stream[i].dist(full[i]) < 1e-12, "sample {i}");
        }
    }

    #[test]
    fn fir_state_survives_chunking() {
        let taps = lowpass_taps(21, 0.2);
        let xs: Vec<C64> = (0..50).map(|i| C64::cis(i as f64 * 0.2)).collect();
        let mut whole = Fir::from_real(&taps);
        let y_whole = whole.process_block(&xs);
        let mut chunked = Fir::from_real(&taps);
        let mut y_chunked = Vec::new();
        for chunk in xs.chunks(7) {
            y_chunked.extend(chunked.process_block(chunk));
        }
        for (a, b) in y_whole.iter().zip(&y_chunked) {
            assert!(a.dist(*b) < 1e-12);
        }
    }

    #[test]
    fn fir_reset() {
        let mut f = Fir::from_real(&[0.0, 1.0]);
        f.process(C64::ONE);
        f.reset();
        assert_eq!(f.process(C64::ONE), C64::ZERO);
    }

    #[test]
    fn convolve_lengths_and_values() {
        let a = [C64::from_re(1.0), C64::from_re(2.0)];
        let b = [C64::from_re(3.0), C64::from_re(4.0), C64::from_re(5.0)];
        let c = convolve(&a, &b);
        assert_eq!(c.len(), 4);
        // [1,2] * [3,4,5] = [3, 10, 13, 10]
        let want = [3.0, 10.0, 13.0, 10.0];
        for (x, w) in c.iter().zip(want) {
            assert!((x.re - w).abs() < 1e-12 && x.im.abs() < 1e-12);
        }
        assert!(convolve(&[], &b).is_empty());
    }

    #[test]
    fn sinc_values() {
        assert_eq!(sinc(0.0), 1.0);
        assert!(sinc(1.0).abs() < 1e-12);
        assert!(sinc(2.0).abs() < 1e-12);
        assert!((sinc(0.5) - 2.0 / std::f64::consts::PI).abs() < 1e-12);
    }

    #[test]
    fn lowpass_has_unity_dc_gain_and_stopband_rejection() {
        let taps = lowpass_taps(63, 0.1);
        assert!((taps.iter().sum::<f64>() - 1.0).abs() < 1e-12);

        // Zero-pad to 256 and check the frequency response.
        let mut padded = vec![C64::ZERO; 256];
        for (i, &t) in taps.iter().enumerate() {
            padded[i] = C64::from_re(t);
        }
        let h = fft(&padded);
        // Passband (DC): ~0 dB.
        assert!((h[0].abs() - 1.0).abs() < 1e-6);
        // Deep stopband: at 0.3 cycles/sample (bin 77) expect < -40 dB.
        let stop = h[77].abs();
        assert!(stop < 0.01, "stopband leakage {stop}");
    }

    #[test]
    #[should_panic(expected = "cutoff")]
    fn lowpass_rejects_bad_cutoff() {
        lowpass_taps(11, 0.6);
    }
}
