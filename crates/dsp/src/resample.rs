//! Fractional delay and arbitrary-ratio resampling.
//!
//! The channel simulator uses these to model sampling-frequency offset (SFO)
//! between transmitter and receiver clocks, and sub-sample timing offsets.
//! Interpolation is windowed-sinc over a configurable number of side taps —
//! effectively a polyphase interpolator evaluated at exact fractional
//! positions, which keeps the implementation simple and the error floor far
//! below the noise levels the experiments sweep.

// Index-based loops here are the clearer expression of the math
// (matrix/carrier indexing); silence the iterator-style suggestion.
#![allow(clippy::needless_range_loop)]
use crate::complex::Complex64;
use crate::filter::sinc;
use crate::window::hann_at;

/// Interpolates `x` at fractional position `t` (in samples) using
/// windowed-sinc interpolation with `half_taps` samples each side.
/// Positions outside the signal are treated as zeros.
pub fn interpolate_at(x: &[Complex64], t: f64, half_taps: usize) -> Complex64 {
    assert!(half_taps >= 1, "need at least one side tap");
    if x.is_empty() {
        return Complex64::ZERO;
    }
    let k0 = t.floor() as isize;
    let n = 2 * half_taps;
    let mut acc = Complex64::ZERO;
    let mut wsum = 0.0;
    for j in 0..n as isize {
        let k = k0 - half_taps as isize + 1 + j;
        let d = t - k as f64;
        // Window indexed by tap position so the kernel tapers at its edges.
        let w = sinc(d) * hann_at(j as usize, n);
        wsum += w;
        if k < 0 || k as usize >= x.len() {
            continue;
        }
        acc += x[k as usize] * w;
    }
    // Normalize so the truncated/windowed sinc kernel still sums to one
    // (partition of unity), which removes the small gain ripple at
    // fractional positions.
    if wsum.abs() > 1e-9 {
        acc / wsum
    } else {
        acc
    }
}

/// Applies a constant fractional delay of `delay` samples (may be any real
/// number; integer parts shift, fractional parts interpolate).
/// Output has the same length as input; samples shifted in from outside the
/// signal are zero.
pub fn fractional_delay(x: &[Complex64], delay: f64, half_taps: usize) -> Vec<Complex64> {
    (0..x.len())
        .map(|i| interpolate_at(x, i as f64 - delay, half_taps))
        .collect()
}

/// Resamples `x` by the given `ratio` = output rate / input rate.
///
/// A ratio slightly below 1 models a receiver sampling slower than the
/// transmitter (positive SFO in ppm shrinks it: `ratio = 1 / (1 + ppm*1e-6)`).
/// Output length is `floor(x.len() * ratio)`.
pub fn resample(x: &[Complex64], ratio: f64, half_taps: usize) -> Vec<Complex64> {
    assert!(ratio > 0.0, "resampling ratio must be positive");
    let out_len = (x.len() as f64 * ratio).floor() as usize;
    let step = 1.0 / ratio;
    (0..out_len)
        .map(|i| interpolate_at(x, i as f64 * step, half_taps))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::C64;

    fn tone(n: usize, freq: f64) -> Vec<C64> {
        (0..n)
            .map(|i| C64::cis(2.0 * std::f64::consts::PI * freq * i as f64))
            .collect()
    }

    #[test]
    fn integer_positions_reproduce_samples() {
        let x = tone(64, 0.07);
        for i in 8..56 {
            let y = interpolate_at(&x, i as f64, 8);
            assert!(y.dist(x[i]) < 1e-6, "sample {i}: {y:?} vs {:?}", x[i]);
        }
    }

    #[test]
    fn half_sample_delay_of_tone_is_phase_shift() {
        let f = 0.05;
        let x = tone(128, f);
        let y = fractional_delay(&x, 0.5, 10);
        // Away from the edges, a delayed tone equals the tone with phase
        // retarded by 2*pi*f*0.5.
        let expect_rot = C64::cis(-2.0 * std::f64::consts::PI * f * 0.5);
        for i in 20..108 {
            let want = x[i] * expect_rot;
            assert!(y[i].dist(want) < 1e-3, "i={i}: {:?} vs {:?}", y[i], want);
        }
    }

    #[test]
    fn integer_delay_is_exact_shift() {
        let x = tone(64, 0.11);
        let y = fractional_delay(&x, 3.0, 8);
        for i in 12..60 {
            assert!(y[i].dist(x[i - 3]) < 1e-6);
        }
    }

    #[test]
    fn unit_ratio_resample_is_near_identity() {
        let x = tone(100, 0.03);
        let y = resample(&x, 1.0, 8);
        assert_eq!(y.len(), 100);
        for i in 16..84 {
            assert!(y[i].dist(x[i]) < 1e-6);
        }
    }

    #[test]
    fn resample_length_scaling() {
        let x = vec![C64::ONE; 1000];
        assert_eq!(resample(&x, 0.5, 4).len(), 500);
        assert_eq!(resample(&x, 2.0, 4).len(), 2000);
        // 40 ppm clock error barely changes the length of 1000 samples.
        let r = 1.0 / (1.0 + 40e-6);
        assert_eq!(resample(&x, r, 4).len(), 999);
    }

    #[test]
    fn resampled_tone_keeps_frequency() {
        // Downsample a slow tone by 2: frequency per-sample doubles.
        let f = 0.01;
        let x = tone(400, f);
        let y = resample(&x, 0.5, 10);
        for i in 20..180 {
            let want = C64::cis(2.0 * std::f64::consts::PI * (2.0 * f) * i as f64);
            assert!(y[i].dist(want) < 1e-3, "i={i}");
        }
    }

    #[test]
    fn empty_input() {
        assert!(fractional_delay(&[], 0.3, 4).is_empty());
        assert!(resample(&[], 1.5, 4).is_empty());
        assert_eq!(interpolate_at(&[], 0.0, 4), C64::ZERO);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_nonpositive_ratio() {
        resample(&[C64::ONE], 0.0, 4);
    }
}
