//! Complex arithmetic for baseband signal processing.
//!
//! MIMONet-rs deliberately avoids external numeric crates; this module
//! provides the small set of complex operations the transceiver needs.
//! Samples are `f64` pairs (see DESIGN.md, "Numeric conventions").

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` components, used for all baseband samples
/// and frequency-domain symbols.
#[derive(Clone, Copy, PartialEq, Default)]
pub struct Complex64 {
    /// Real (in-phase) component.
    pub re: f64,
    /// Imaginary (quadrature) component.
    pub im: f64,
}

/// Shorthand alias used throughout the workspace.
pub type C64 = Complex64;

impl Complex64 {
    /// The additive identity, `0 + 0i`.
    pub const ZERO: Self = Self { re: 0.0, im: 0.0 };
    /// The multiplicative identity, `1 + 0i`.
    pub const ONE: Self = Self { re: 1.0, im: 0.0 };
    /// The imaginary unit, `0 + 1i`.
    pub const I: Self = Self { re: 0.0, im: 1.0 };

    /// Creates a complex number from rectangular components.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn from_re(re: f64) -> Self {
        Self { re, im: 0.0 }
    }

    /// Creates a complex number from polar form: `r * exp(i * theta)`.
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Self {
            re: r * theta.cos(),
            im: r * theta.sin(),
        }
    }

    /// Unit phasor `exp(i * theta)`. The workhorse of CFO application
    /// and correction.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Self::from_polar(1.0, theta)
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Self {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared magnitude `|z|^2`. Cheaper than [`Self::abs`]; prefer it for
    /// energy computations and comparisons.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude `|z|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Phase angle in `(-pi, pi]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplicative inverse `1/z`. Returns NaN components for zero input,
    /// matching IEEE division semantics.
    #[inline]
    pub fn inv(self) -> Self {
        let d = self.norm_sqr();
        Self {
            re: self.re / d,
            im: -self.im / d,
        }
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        Self {
            re: self.re * k,
            im: self.im * k,
        }
    }

    /// `true` if either component is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        self.re.is_nan() || self.im.is_nan()
    }

    /// `true` if both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }

    /// Euclidean distance to another point in the complex plane.
    #[inline]
    pub fn dist(self, other: Self) -> f64 {
        (self - other).abs()
    }

    /// Squared Euclidean distance; prefer this for nearest-point searches
    /// (ML detection, hard slicing).
    #[inline]
    pub fn dist_sqr(self, other: Self) -> f64 {
        (self - other).norm_sqr()
    }
}

impl Add for Complex64 {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Self::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex64 {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Self::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex64 {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        Self::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for Complex64 {
    type Output = Self;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // z/w computed as z * w^-1
    fn div(self, rhs: Self) -> Self {
        self * rhs.inv()
    }
}

impl Mul<f64> for Complex64 {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: f64) -> Self {
        self.scale(rhs)
    }
}

impl Mul<Complex64> for f64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: Complex64) -> Complex64 {
        rhs.scale(self)
    }
}

impl Div<f64> for Complex64 {
    type Output = Self;
    #[inline]
    fn div(self, rhs: f64) -> Self {
        self.scale(1.0 / rhs)
    }
}

impl Neg for Complex64 {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        Self::new(-self.re, -self.im)
    }
}

impl AddAssign for Complex64 {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl SubAssign for Complex64 {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}

impl MulAssign for Complex64 {
    #[inline]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl MulAssign<f64> for Complex64 {
    #[inline]
    fn mul_assign(&mut self, rhs: f64) {
        *self = self.scale(rhs);
    }
}

impl DivAssign for Complex64 {
    #[inline]
    fn div_assign(&mut self, rhs: Self) {
        *self = *self / rhs;
    }
}

impl Sum for Complex64 {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::ZERO, |a, b| a + b)
    }
}

impl<'a> Sum<&'a Complex64> for Complex64 {
    fn sum<I: Iterator<Item = &'a Complex64>>(iter: I) -> Self {
        iter.fold(Self::ZERO, |a, b| a + *b)
    }
}

impl From<f64> for Complex64 {
    #[inline]
    fn from(re: f64) -> Self {
        Self::from_re(re)
    }
}

impl From<(f64, f64)> for Complex64 {
    #[inline]
    fn from((re, im): (f64, f64)) -> Self {
        Self::new(re, im)
    }
}

impl fmt::Debug for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

impl fmt::Display for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Sum of squared magnitudes of a slice — the total energy of a signal
/// segment.
pub fn energy(xs: &[Complex64]) -> f64 {
    xs.iter().map(|x| x.norm_sqr()).sum()
}

/// Mean squared magnitude of a slice — the average power of a signal
/// segment. Returns 0.0 for an empty slice.
pub fn mean_power(xs: &[Complex64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        energy(xs) / xs.len() as f64
    }
}

/// Inner product `sum_k a[k] * conj(b[k])` over the common prefix of the two
/// slices. This convention (conjugate on the second argument) matches the
/// correlation sums in the Van de Beek estimator.
pub fn dot_conj(a: &[Complex64], b: &[Complex64]) -> Complex64 {
    a.iter()
        .zip(b.iter())
        .fold(Complex64::ZERO, |acc, (&x, &y)| acc + x * y.conj())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn arithmetic_identities() {
        let z = C64::new(3.0, -4.0);
        assert_eq!(z + C64::ZERO, z);
        assert_eq!(z * C64::ONE, z);
        assert_eq!(z - z, C64::ZERO);
        assert_eq!(-z, C64::new(-3.0, 4.0));
    }

    #[test]
    fn multiplication_matches_expansion() {
        let a = C64::new(1.0, 2.0);
        let b = C64::new(3.0, -1.0);
        // (1+2i)(3-i) = 3 - i + 6i - 2i^2 = 5 + 5i
        assert_eq!(a * b, C64::new(5.0, 5.0));
    }

    #[test]
    fn division_inverts_multiplication() {
        let a = C64::new(2.5, -1.5);
        let b = C64::new(-0.5, 3.0);
        let q = (a * b) / b;
        assert!(close(q.re, a.re) && close(q.im, a.im));
    }

    #[test]
    fn conjugate_and_norm() {
        let z = C64::new(3.0, 4.0);
        assert_eq!(z.conj(), C64::new(3.0, -4.0));
        assert!(close(z.norm_sqr(), 25.0));
        assert!(close(z.abs(), 5.0));
        assert!(close((z * z.conj()).re, 25.0));
        assert!(close((z * z.conj()).im, 0.0));
    }

    #[test]
    fn polar_roundtrip() {
        let z = C64::from_polar(2.0, 0.7);
        assert!(close(z.abs(), 2.0));
        assert!(close(z.arg(), 0.7));
    }

    #[test]
    fn cis_is_unit_magnitude() {
        for k in 0..32 {
            let th = k as f64 * 0.41 - 6.0;
            assert!(close(C64::cis(th).abs(), 1.0));
        }
    }

    #[test]
    fn inv_of_zero_is_nan() {
        assert!(C64::ZERO.inv().is_nan());
    }

    #[test]
    fn scalar_ops() {
        let z = C64::new(1.0, -2.0);
        assert_eq!(z * 2.0, C64::new(2.0, -4.0));
        assert_eq!(2.0 * z, z * 2.0);
        assert_eq!(z / 2.0, C64::new(0.5, -1.0));
    }

    #[test]
    fn sum_over_iterator() {
        let xs = [C64::new(1.0, 1.0), C64::new(2.0, -3.0), C64::new(-1.0, 0.5)];
        let s: C64 = xs.iter().sum();
        assert_eq!(s, C64::new(2.0, -1.5));
    }

    #[test]
    fn energy_and_power() {
        let xs = [C64::new(1.0, 0.0), C64::new(0.0, 2.0)];
        assert!(close(energy(&xs), 5.0));
        assert!(close(mean_power(&xs), 2.5));
        assert_eq!(mean_power(&[]), 0.0);
    }

    #[test]
    fn dot_conj_convention() {
        // <a, b> = sum a conj(b); for a = i*b this must be i*|b|^2.
        let b = [C64::new(1.0, 2.0), C64::new(-0.5, 0.25)];
        let a: Vec<C64> = b.iter().map(|&x| C64::I * x).collect();
        let d = dot_conj(&a, &b);
        let e = energy(&b);
        assert!(close(d.re, 0.0));
        assert!(close(d.im, e));
    }

    #[test]
    fn dist_metrics_agree() {
        let a = C64::new(1.0, 1.0);
        let b = C64::new(4.0, 5.0);
        assert!(close(a.dist(b), 5.0));
        assert!(close(a.dist_sqr(b), 25.0));
    }

    #[test]
    fn debug_formatting() {
        assert_eq!(format!("{:?}", C64::new(1.0, -2.0)), "1-2i");
        assert_eq!(format!("{:?}", C64::new(1.0, 2.0)), "1+2i");
    }
}
