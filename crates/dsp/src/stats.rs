//! Streaming statistics and dB conversions used throughout the evaluation
//! harness.

/// Converts a linear power ratio to decibels. Zero or negative input maps to
/// negative infinity.
pub fn lin_to_db(lin: f64) -> f64 {
    if lin <= 0.0 {
        f64::NEG_INFINITY
    } else {
        10.0 * lin.log10()
    }
}

/// Converts decibels to a linear power ratio.
pub fn db_to_lin(db: f64) -> f64 {
    10f64.powf(db / 10.0)
}

/// Welford online mean/variance accumulator.
///
/// Numerically stable for the long Monte-Carlo runs the benches perform,
/// where naive sum-of-squares would lose precision.
#[derive(Clone, Copy, Debug, Default)]
pub struct Running {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Running {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 with fewer than one observation).
    pub fn variance(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Unbiased sample variance (0 with fewer than two observations).
    pub fn sample_variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Root-mean-square of the observations: `sqrt(mean^2 + var)`.
    pub fn rms(&self) -> f64 {
        (self.mean() * self.mean() + self.variance()).sqrt()
    }

    /// Smallest observation (`inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &Running) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// JSON shape: derived moments rather than the raw Welford state, since
/// reports consume mean/std/min/max directly. Non-finite min/max (empty
/// accumulator) render as null.
impl serde::Serialize for Running {
    fn serialize(&self) -> serde::Value {
        serde::Value::object([
            ("count", self.count().serialize()),
            ("mean", self.mean().serialize()),
            ("std_dev", self.std_dev().serialize()),
            ("rms", self.rms().serialize()),
            ("min", self.min().serialize()),
            ("max", self.max().serialize()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn db_conversions_roundtrip() {
        for db in [-30.0, -3.0, 0.0, 3.0, 10.0, 27.5] {
            assert!((lin_to_db(db_to_lin(db)) - db).abs() < 1e-12);
        }
        assert_eq!(lin_to_db(0.0), f64::NEG_INFINITY);
        assert!((db_to_lin(3.0) - 1.9952623149688795).abs() < 1e-12);
        assert!((db_to_lin(10.0) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn running_moments() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut r = Running::new();
        for &x in &xs {
            r.push(x);
        }
        assert_eq!(r.count(), 8);
        assert!((r.mean() - 5.0).abs() < 1e-12);
        assert!((r.variance() - 4.0).abs() < 1e-12);
        assert!((r.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(r.min(), 2.0);
        assert_eq!(r.max(), 9.0);
    }

    #[test]
    fn empty_accumulator() {
        let r = Running::new();
        assert_eq!(r.count(), 0);
        assert_eq!(r.mean(), 0.0);
        assert_eq!(r.variance(), 0.0);
        assert_eq!(r.sample_variance(), 0.0);
    }

    #[test]
    fn rms_of_zero_mean() {
        let mut r = Running::new();
        for &x in &[-1.0, 1.0, -1.0, 1.0] {
            r.push(x);
        }
        assert!((r.rms() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100)
            .map(|i| (i as f64 * 0.77).sin() * 3.0 + 1.0)
            .collect();
        let mut whole = Running::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut a = Running::new();
        let mut b = Running::new();
        for &x in &xs[..37] {
            a.push(x);
        }
        for &x in &xs[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-12);
        assert!((a.variance() - whole.variance()).abs() < 1e-10);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn merge_with_empty() {
        let mut a = Running::new();
        a.push(5.0);
        let b = Running::new();
        let mut a2 = a;
        a2.merge(&b);
        assert!((a2.mean() - 5.0).abs() < 1e-12);
        let mut c = Running::new();
        c.merge(&a);
        assert_eq!(c.count(), 1);
    }

    #[test]
    fn sample_variance_bessel_correction() {
        let mut r = Running::new();
        r.push(1.0);
        r.push(3.0);
        assert!((r.variance() - 1.0).abs() < 1e-12);
        assert!((r.sample_variance() - 2.0).abs() < 1e-12);
    }
}
