//! Property-based tests of the DSP substrate's algebraic invariants.

use mimonet_dsp::complex::{dot_conj, energy, Complex64};
use mimonet_dsp::correlate::{lagged_autocorrelation, normalized_cross_correlate};
use mimonet_dsp::fft::{fft, fftshift, ifft, ifftshift};
use mimonet_dsp::stats::Running;
use proptest::prelude::*;

fn small_f64() -> impl Strategy<Value = f64> {
    (-100.0..100.0f64).prop_filter("finite", |v| v.is_finite())
}

fn complex() -> impl Strategy<Value = Complex64> {
    (small_f64(), small_f64()).prop_map(|(re, im)| Complex64::new(re, im))
}

fn complex_vec(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<Complex64>> {
    prop::collection::vec(complex(), len)
}

proptest! {
    #[test]
    fn complex_mul_is_commutative_and_associative(a in complex(), b in complex(), c in complex()) {
        prop_assert!((a * b).dist(b * a) < 1e-6);
        let lhs = (a * b) * c;
        let rhs = a * (b * c);
        prop_assert!(lhs.dist(rhs) <= 1e-6 * (1.0 + lhs.abs()));
    }

    #[test]
    fn complex_distributive_law(a in complex(), b in complex(), c in complex()) {
        let lhs = a * (b + c);
        let rhs = a * b + a * c;
        prop_assert!(lhs.dist(rhs) <= 1e-6 * (1.0 + lhs.abs()));
    }

    #[test]
    fn conjugation_is_an_involution_and_multiplicative(a in complex(), b in complex()) {
        prop_assert_eq!(a.conj().conj(), a);
        prop_assert!((a * b).conj().dist(a.conj() * b.conj()) < 1e-6);
    }

    #[test]
    fn magnitude_is_multiplicative(a in complex(), b in complex()) {
        prop_assert!(((a * b).abs() - a.abs() * b.abs()).abs() <= 1e-6 * (1.0 + a.abs() * b.abs()));
    }

    #[test]
    fn nonzero_division_roundtrips(a in complex(), b in complex()) {
        prop_assume!(b.abs() > 1e-3);
        let q = a / b;
        prop_assert!((q * b).dist(a) <= 1e-6 * (1.0 + a.abs()));
    }

    #[test]
    fn triangle_inequality(a in complex(), b in complex()) {
        prop_assert!((a + b).abs() <= a.abs() + b.abs() + 1e-9);
    }
}

fn pow2_vec() -> impl Strategy<Value = Vec<Complex64>> {
    (2u32..9).prop_flat_map(|log| prop::collection::vec(complex(), 1usize << log))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fft_roundtrip(x in pow2_vec()) {
        let y = ifft(&fft(&x));
        for (a, b) in x.iter().zip(&y) {
            prop_assert!(a.dist(*b) < 1e-6 * (1.0 + a.abs()));
        }
    }

    #[test]
    fn fft_is_linear(x in pow2_vec(), k in complex()) {
        let scaled: Vec<Complex64> = x.iter().map(|&v| v * k).collect();
        let fx = fft(&x);
        let fscaled = fft(&scaled);
        for (a, b) in fx.iter().zip(&fscaled) {
            prop_assert!((*a * k).dist(*b) < 1e-5 * (1.0 + b.abs()));
        }
    }

    #[test]
    fn parseval_holds(x in pow2_vec()) {
        let f = fft(&x);
        let et = energy(&x);
        let ef = energy(&f) / x.len() as f64;
        prop_assert!((et - ef).abs() <= 1e-6 * (1.0 + et));
    }

    #[test]
    fn fftshift_roundtrip(x in complex_vec(1..64)) {
        prop_assert_eq!(ifftshift(&fftshift(&x)), x);
    }

    #[test]
    fn circular_time_shift_preserves_spectrum_magnitude(x in pow2_vec()) {
        let n = x.len();
        let mut shifted = x.clone();
        shifted.rotate_left(n / 3 % n.max(1));
        let a = fft(&x);
        let b = fft(&shifted);
        for (u, v) in a.iter().zip(&b) {
            prop_assert!((u.abs() - v.abs()).abs() <= 1e-6 * (1.0 + u.abs()));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn normalized_correlation_bounded(
        signal in complex_vec(8..128),
        reference in complex_vec(1..8),
    ) {
        for v in normalized_cross_correlate(&signal, &reference) {
            prop_assert!((0.0..=1.0 + 1e-9).contains(&v));
        }
    }

    #[test]
    fn autocorrelation_metric_bounded(x in complex_vec(24..96)) {
        for (g, p) in lagged_autocorrelation(&x, 4, 8) {
            // |gamma| <= phi (Cauchy-Schwarz + AM-GM).
            prop_assert!(g.abs() <= p + 1e-6 * (1.0 + p));
        }
    }

    #[test]
    fn dot_conj_cauchy_schwarz(a in complex_vec(1..32), b in complex_vec(1..32)) {
        let n = a.len().min(b.len());
        let d = dot_conj(&a[..n], &b[..n]).abs();
        let bound = (energy(&a[..n]) * energy(&b[..n])).sqrt();
        prop_assert!(d <= bound + 1e-6 * (1.0 + bound));
    }
}

proptest! {
    #[test]
    fn running_stats_match_naive(xs in prop::collection::vec(-1e6..1e6f64, 1..200)) {
        let mut r = Running::new();
        for &x in &xs {
            r.push(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        prop_assert!((r.mean() - mean).abs() <= 1e-6 * (1.0 + mean.abs()));
        prop_assert!((r.variance() - var).abs() <= 1e-5 * (1.0 + var));
        prop_assert_eq!(r.count(), xs.len() as u64);
    }

    #[test]
    fn running_merge_is_order_independent(
        xs in prop::collection::vec(-1e3..1e3f64, 1..100),
        split in 0usize..100,
    ) {
        let split = split % xs.len();
        let mut whole = Running::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut a = Running::new();
        let mut b = Running::new();
        for &x in &xs[..split] {
            a.push(x);
        }
        for &x in &xs[split..] {
            b.push(x);
        }
        // merge in both orders
        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        prop_assert!((ab.mean() - whole.mean()).abs() < 1e-9 * (1.0 + whole.mean().abs()));
        prop_assert!((ba.variance() - whole.variance()).abs() < 1e-6 * (1.0 + whole.variance()));
        prop_assert_eq!(ab.count(), whole.count());
    }
}
