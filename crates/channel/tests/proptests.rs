//! Property-based tests of the channel simulator's contracts.

use mimonet_channel::{ChannelConfig, ChannelSim, Fading, TgnModel};
use mimonet_dsp::complex::{mean_power, Complex64};
use proptest::prelude::*;

fn signal(len: usize, seed: u64) -> Vec<Complex64> {
    let mut x = seed | 1;
    (0..len)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            Complex64::cis((x % 628) as f64 / 100.0)
        })
        .collect()
}

fn fading() -> impl Strategy<Value = Fading> {
    prop_oneof![
        Just(Fading::Ideal),
        Just(Fading::RayleighFlat),
        Just(Fading::Tgn(TgnModel::B)),
        Just(Fading::Tgn(TgnModel::D)),
        (1e-7..1e-4f64).prop_map(|fd_norm| Fading::Jakes { fd_norm }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn same_seed_always_reproduces(
        f in fading(),
        snr in 0.0..40.0f64,
        cfo in -0.5..0.5f64,
        seed in any::<u64>(),
    ) {
        let mut cfg = ChannelConfig::awgn(2, 2, snr);
        cfg.fading = f;
        cfg.cfo_norm = cfo;
        let tx = vec![signal(300, 1), signal(300, 2)];
        let (a, _) = ChannelSim::new(cfg.clone(), seed).apply(&tx);
        let (b, _) = ChannelSim::new(cfg, seed).apply(&tx);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn output_antenna_count_matches_config(f in fading(), n_rx in 1usize..3) {
        let mut cfg = ChannelConfig::awgn(2, n_rx.max(1), 20.0);
        cfg.fading = match f {
            Fading::Ideal if n_rx != 2 => Fading::RayleighFlat,
            other => other,
        };
        let tx = vec![signal(100, 3), signal(100, 4)];
        let (rx, _) = ChannelSim::new(cfg, 7).apply(&tx);
        prop_assert_eq!(rx.len(), n_rx.max(1));
        let lens: Vec<usize> = rx.iter().map(|s| s.len()).collect();
        prop_assert!(lens.iter().all(|&l| l == lens[0]), "equal RX lengths");
        prop_assert!(lens[0] >= 100, "channel never shortens below the input (no SFO)");
    }

    #[test]
    fn truth_reports_what_was_configured(
        cfo in -0.4..0.4f64,
        off in 0.0..50.0f64,
        snr in 5.0..35.0f64,
    ) {
        let mut cfg = ChannelConfig::awgn(1, 1, snr);
        cfg.cfo_norm = cfo;
        cfg.timing_offset = off;
        let tx = vec![signal(200, 5)];
        let (_, truth) = ChannelSim::new(cfg, 11).apply(&tx);
        prop_assert_eq!(truth.cfo_norm, cfo);
        prop_assert_eq!(truth.timing_offset, off);
        let want_np = mimonet_dsp::stats::db_to_lin(-snr);
        prop_assert!((truth.noise_power - want_np).abs() < 1e-12);
    }

    #[test]
    fn noiseless_ideal_channel_preserves_power(seed in any::<u64>()) {
        let cfg = ChannelConfig::clean(2, 2);
        let tx = vec![signal(400, seed), signal(400, seed ^ 1)];
        let (rx, _) = ChannelSim::new(cfg, 0).apply(&tx);
        for (r, t) in rx.iter().zip(&tx) {
            prop_assert!((mean_power(r) - mean_power(t)).abs() < 1e-9);
        }
    }

    #[test]
    fn cfo_never_changes_power(cfo in -2.0..2.0f64) {
        let mut cfg = ChannelConfig::clean(1, 1);
        cfg.cfo_norm = cfo;
        let tx = vec![signal(256, 9)];
        let (rx, _) = ChannelSim::new(cfg, 1).apply(&tx);
        prop_assert!((mean_power(&rx[0]) - mean_power(&tx[0])).abs() < 1e-9);
    }
}
