//! IEEE TGn-style indoor multipath profiles.
//!
//! The TGn channel models (Erceg et al., IEEE 802.11-03/940r4) define
//! indoor environments A–F by their RMS delay spread. The full models add
//! cluster angular spectra and Doppler; for a block-fading link-level
//! simulation the dominant effect is the **power-delay profile**, which we
//! reproduce as a sample-spaced exponential PDP with the standard RMS delay
//! spreads at 20 Msps (50 ns sample period).
//!
//! | model | environment        | RMS delay spread |
//! |-------|--------------------|------------------|
//! | A     | flat (reference)   | 0 ns             |
//! | B     | residential        | 15 ns            |
//! | C     | small office       | 30 ns            |
//! | D     | typical office     | 50 ns            |
//! | E     | large office       | 100 ns           |

use crate::fading::TappedDelayLine;
use rand::Rng;

/// Sample period at 20 Msps, in nanoseconds.
pub const SAMPLE_NS: f64 = 50.0;

/// TGn-style model selector.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TgnModel {
    /// Flat fading (single tap).
    A,
    /// Residential, 15 ns RMS.
    B,
    /// Small office, 30 ns RMS.
    C,
    /// Typical office, 50 ns RMS.
    D,
    /// Large office, 100 ns RMS.
    E,
}

impl TgnModel {
    /// RMS delay spread in nanoseconds.
    pub fn rms_delay_ns(self) -> f64 {
        match self {
            TgnModel::A => 0.0,
            TgnModel::B => 15.0,
            TgnModel::C => 30.0,
            TgnModel::D => 50.0,
            TgnModel::E => 100.0,
        }
    }

    /// Sample-spaced exponential power-delay profile. Taps extend to
    /// roughly 5× the RMS delay spread (≥ 99% of the energy); model A is a
    /// single tap.
    pub fn pdp(self) -> Vec<f64> {
        let rms = self.rms_delay_ns();
        if rms == 0.0 {
            return vec![1.0];
        }
        let tau = rms / SAMPLE_NS; // RMS delay in samples
        let n_taps = (5.0 * tau).ceil() as usize + 1;
        (0..n_taps).map(|d| (-(d as f64) / tau).exp()).collect()
    }

    /// Draws a block-fading frequency-selective MIMO realization of this
    /// model.
    pub fn realize<R: Rng + ?Sized>(
        self,
        rng: &mut R,
        n_rx: usize,
        n_tx: usize,
    ) -> TappedDelayLine {
        TappedDelayLine::rayleigh(rng, n_rx, n_tx, &self.pdp())
    }

    /// All models in order.
    pub fn all() -> [TgnModel; 5] {
        [
            TgnModel::A,
            TgnModel::B,
            TgnModel::C,
            TgnModel::D,
            TgnModel::E,
        ]
    }
}

impl std::fmt::Display for TgnModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TGn-{:?}", self)
    }
}

/// Empirical RMS delay spread of a PDP in nanoseconds (for validation).
pub fn pdp_rms_ns(pdp: &[f64]) -> f64 {
    let total: f64 = pdp.iter().sum();
    if total <= 0.0 {
        return 0.0;
    }
    let mean: f64 = pdp
        .iter()
        .enumerate()
        .map(|(d, &p)| d as f64 * SAMPLE_NS * p)
        .sum::<f64>()
        / total;
    let var: f64 = pdp
        .iter()
        .enumerate()
        .map(|(d, &p)| {
            let t = d as f64 * SAMPLE_NS - mean;
            t * t * p
        })
        .sum::<f64>()
        / total;
    var.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn model_a_is_flat() {
        assert_eq!(TgnModel::A.pdp(), vec![1.0]);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        assert_eq!(TgnModel::A.realize(&mut rng, 2, 2).max_delay(), 1);
    }

    #[test]
    fn pdp_decays_monotonically() {
        for m in TgnModel::all() {
            let pdp = m.pdp();
            assert!(pdp.windows(2).all(|w| w[0] >= w[1]), "{m}");
            assert!(pdp[0] == 1.0);
        }
    }

    #[test]
    fn rms_delay_close_to_spec() {
        // Sample-spaced discretization at 50 ns cannot match 15 ns exactly,
        // but should land in the right regime and ordering must hold.
        let rms: Vec<f64> = TgnModel::all()
            .iter()
            .map(|m| pdp_rms_ns(&m.pdp()))
            .collect();
        assert_eq!(rms[0], 0.0);
        assert!(rms.windows(2).all(|w| w[0] < w[1]), "ordering {rms:?}");
        // D (50 ns target, one tap per RMS period) within 40%.
        assert!((rms[3] - 50.0).abs() / 50.0 < 0.4, "model D rms {}", rms[3]);
        // E (100 ns) within 25%.
        assert!(
            (rms[4] - 100.0).abs() / 100.0 < 0.25,
            "model E rms {}",
            rms[4]
        );
    }

    #[test]
    fn pdp_captures_nearly_all_energy() {
        for m in [TgnModel::D, TgnModel::E] {
            let pdp = m.pdp();
            let tau = m.rms_delay_ns() / SAMPLE_NS;
            // Closed form: full exponential sum = 1/(1-exp(-1/tau)).
            let full = 1.0 / (1.0 - (-1.0 / tau).exp());
            let got: f64 = pdp.iter().sum();
            assert!(got / full > 0.99, "{m} captures {}", got / full);
        }
    }

    #[test]
    fn realizations_have_expected_tap_counts() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let tdl = TgnModel::E.realize(&mut rng, 2, 2);
        assert_eq!(tdl.max_delay(), TgnModel::E.pdp().len());
        assert_eq!(tdl.n_rx(), 2);
        assert_eq!(tdl.n_tx(), 2);
    }

    #[test]
    fn display_names() {
        assert_eq!(TgnModel::C.to_string(), "TGn-C");
    }
}
