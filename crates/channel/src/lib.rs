//! # mimonet-channel
//!
//! Baseband channel and RF-impairment simulator — MIMONet-rs's substitute
//! for the SRIF'14 paper's USRP front ends and over-the-air propagation
//! (see DESIGN.md "Substitutions").
//!
//! Building blocks:
//!
//! * [`noise`] — seeded complex AWGN and SNR bookkeeping,
//! * [`fading`] — flat Rayleigh MIMO matrices and frequency-selective
//!   tapped delay lines,
//! * [`doppler`] — time-varying Jakes fading for mobility experiments,
//! * [`tgn`] — TGn-style indoor power-delay profiles (models A–E),
//! * [`impairments`] — CFO, SFO, timing offset, IQ imbalance, DC offset,
//!   ADC quantization,
//! * [`sim`] — the composable [`sim::ChannelSim`] pipeline with ground
//!   truth for estimator-accuracy experiments,
//! * [`faults`] — deterministic seeded fault schedules (bursts, dropouts,
//!   impulses, desync, truncation) for chaos testing the receiver,
//! * [`presets`] — the named channel/fault preset registry shared by the
//!   figure binaries and the scenario DSL.

pub mod doppler;
pub mod fading;
pub mod faults;
pub mod impairments;
pub mod noise;
pub mod presets;
pub mod sim;
pub mod tgn;

pub use doppler::{JakesProcess, TimeVaryingChannel};
pub use fading::{MimoChannelMatrix, TappedDelayLine};
pub use faults::{FaultEvent, FaultKind, FaultReport, FaultSchedule, FaultSpec};
pub use sim::{ChannelConfig, ChannelSim, ChannelTruth, Fading};
pub use tgn::TgnModel;
