//! Named channel and fault presets — the single registry behind both the
//! figure binaries and the scenario DSL.
//!
//! The TGn/Doppler tables used to be duplicated (and had drifted) across
//! `fig_ber_mimo`, `fig_doppler` and `fig_chaos`; every figure now pulls
//! its channel from here, and a scenario file names the same presets
//! (`preset = "tgn_d"`), so the emulator and the evaluation harness can
//! never disagree about what "TGn-D" means.

use crate::faults::FaultSpec;
use crate::sim::{ChannelConfig, Fading};
use crate::tgn::TgnModel;

/// Reference normalized-Doppler operating points at 20 Msps / 5.2 GHz
/// (cycles per sample): `fd = v * f_c / c / f_s`.
///
/// Pedestrian is 1 m/s (~17 Hz), vehicular 30 m/s (~520 Hz). These were
/// quoted slightly differently in the `fig_doppler` header comment and
/// the DESIGN.md mobility note; this pair is now the source of truth.
pub const FD_PEDESTRIAN: f64 = 9e-7;
/// Vehicular (30 m/s) normalized Doppler at 20 Msps / 5.2 GHz.
pub const FD_VEHICULAR: f64 = 2.6e-5;

/// The Doppler sweep grid `fig_doppler` runs (cycles/sample): zero,
/// sub-pedestrian, around pedestrian-to-vehicular, then past vehicular to
/// expose the channel-aging wall.
pub const FD_GRID: [f64; 6] = [0.0, 2e-6, 1e-5, 3e-5, 1e-4, 3e-4];

/// A named fading preset.
#[derive(Clone, Copy, Debug)]
pub struct Preset {
    /// Registry key (lower_snake; what scenario files write).
    pub name: &'static str,
    /// One-line description for `--list`-style output and docs.
    pub description: &'static str,
    /// The fading model the name denotes.
    pub fading: Fading,
}

/// Every named fading preset. Jakes presets pin the reference Doppler
/// operating points; arbitrary `fd_norm` values remain available through
/// [`jakes`] (and the scenario DSL's `fd_norm` key).
pub const REGISTRY: &[Preset] = &[
    Preset {
        name: "awgn",
        description: "ideal identity channel + AWGN (no fading)",
        fading: Fading::Ideal,
    },
    Preset {
        name: "rayleigh",
        description: "block flat Rayleigh, i.i.d. entries per frame",
        fading: Fading::RayleighFlat,
    },
    Preset {
        name: "tgn_a",
        description: "TGn model A: single-tap flat indoor reference",
        fading: Fading::Tgn(TgnModel::A),
    },
    Preset {
        name: "tgn_b",
        description: "TGn model B: residential, 15 ns RMS delay spread",
        fading: Fading::Tgn(TgnModel::B),
    },
    Preset {
        name: "tgn_c",
        description: "TGn model C: small office, 30 ns RMS delay spread",
        fading: Fading::Tgn(TgnModel::C),
    },
    Preset {
        name: "tgn_d",
        description: "TGn model D: typical office, 50 ns RMS delay spread",
        fading: Fading::Tgn(TgnModel::D),
    },
    Preset {
        name: "tgn_e",
        description: "TGn model E: large office, 100 ns RMS delay spread",
        fading: Fading::Tgn(TgnModel::E),
    },
    Preset {
        name: "jakes_pedestrian",
        description: "time-varying flat Rayleigh at pedestrian Doppler",
        fading: Fading::Jakes {
            fd_norm: FD_PEDESTRIAN,
        },
    },
    Preset {
        name: "jakes_vehicular",
        description: "time-varying flat Rayleigh at vehicular Doppler",
        fading: Fading::Jakes {
            fd_norm: FD_VEHICULAR,
        },
    },
];

/// Looks a fading preset up by name.
pub fn lookup(name: &str) -> Option<&'static Preset> {
    REGISTRY.iter().find(|p| p.name == name)
}

/// Builds the channel a preset names: `lookup` + antenna/SNR dressing.
pub fn channel(name: &str, n_tx: usize, n_rx: usize, snr_db: f64) -> Option<ChannelConfig> {
    let preset = lookup(name)?;
    let mut cfg = ChannelConfig::awgn(n_tx, n_rx, snr_db);
    cfg.fading = preset.fading;
    Some(cfg)
}

/// Flat-Rayleigh channel at `snr_db` — the `fig_ber_mimo` arm builder.
pub fn rayleigh(n_tx: usize, n_rx: usize, snr_db: f64) -> ChannelConfig {
    let mut cfg = ChannelConfig::awgn(n_tx, n_rx, snr_db);
    cfg.fading = Fading::RayleighFlat;
    cfg
}

/// Frequency-selective TGn channel at `snr_db`.
pub fn tgn(model: TgnModel, n_tx: usize, n_rx: usize, snr_db: f64) -> ChannelConfig {
    let mut cfg = ChannelConfig::awgn(n_tx, n_rx, snr_db);
    cfg.fading = Fading::Tgn(model);
    cfg
}

/// Time-varying Jakes channel with the given normalized Doppler.
pub fn jakes(fd_norm: f64, n_tx: usize, n_rx: usize, snr_db: f64) -> ChannelConfig {
    let mut cfg = ChannelConfig::awgn(n_tx, n_rx, snr_db);
    cfg.fading = Fading::Jakes { fd_norm };
    cfg
}

/// Looks a fault-schedule preset up by name — the scenario DSL's
/// `faults` key and the chaos figures share these.
pub fn fault_lookup(name: &str) -> Option<FaultSpec> {
    match name {
        "none" => Some(FaultSpec::none()),
        "default" => Some(FaultSpec::default()),
        "harsh_mid_capture" => Some(FaultSpec::harsh_mid_capture()),
        _ => None,
    }
}

/// Every fault-preset name [`fault_lookup`] accepts, for validation
/// messages and docs.
pub const FAULT_PRESETS: &[&str] = &["none", "default", "harsh_mid_capture"];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_resolvable() {
        let mut seen = std::collections::HashSet::new();
        for p in REGISTRY {
            assert!(seen.insert(p.name), "duplicate preset {}", p.name);
            assert!(lookup(p.name).is_some());
            let cfg = channel(p.name, 2, 2, 20.0).unwrap();
            assert_eq!(cfg.snr_db, 20.0);
            assert_eq!(cfg.fading, p.fading);
        }
        assert!(lookup("no_such_model").is_none());
        assert!(channel("no_such_model", 2, 2, 20.0).is_none());
    }

    #[test]
    fn builders_match_named_presets() {
        assert_eq!(rayleigh(2, 2, 15.0).fading, Fading::RayleighFlat);
        assert_eq!(
            tgn(TgnModel::D, 2, 2, 15.0).fading,
            Fading::Tgn(TgnModel::D)
        );
        assert_eq!(
            jakes(FD_VEHICULAR, 2, 2, 15.0).fading,
            lookup("jakes_vehicular").unwrap().fading
        );
    }

    #[test]
    fn fault_presets_resolve() {
        for name in FAULT_PRESETS {
            assert!(fault_lookup(name).is_some(), "missing fault preset {name}");
        }
        assert!(fault_lookup("harsh_mid_capture").unwrap().bursts > 0);
        assert_eq!(fault_lookup("none").unwrap().bursts, 0);
        assert!(fault_lookup("bogus").is_none());
    }
}
