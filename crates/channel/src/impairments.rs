//! RF front-end impairments.
//!
//! Everything a USRP front end would inflict on the baseband stream that
//! matters to this receiver: carrier frequency offset (the quantity the Van
//! de Beek extension estimates), sampling frequency offset, integer and
//! fractional timing offset, IQ imbalance, DC offset and ADC quantization.
//! Each impairment is a pure function on sample streams so they compose in
//! any order; [`crate::sim::ChannelSim`] wires the standard order.

use mimonet_dsp::complex::Complex64;
use mimonet_dsp::resample::{fractional_delay, resample};

/// Applies a carrier frequency offset of `cfo_norm` *subcarrier spacings*
/// (1 spacing = 312.5 kHz at 20 MHz / 64 carriers), starting at phase
/// `phase0`, i.e. multiplies sample `n` by
/// `exp(i (2 pi cfo_norm n / 64 + phase0))`.
///
/// Returns the phase after the last sample so multi-segment streams stay
/// continuous.
pub fn apply_cfo(signal: &mut [Complex64], cfo_norm: f64, phase0: f64) -> f64 {
    apply_cfo_raw(signal, cfo_norm, phase0).rem_euclid(2.0 * std::f64::consts::PI)
}

/// [`apply_cfo`] returning the *raw* accumulated phase (no `rem_euclid`
/// wrap). Chunked application is bit-identical to one whole-buffer call
/// only when the raw phase is carried across chunk boundaries — wrapping
/// perturbs the accumulator by one ulp-scale rounding and changes every
/// subsequent sample. The lazy-correction RX path depends on this.
pub fn apply_cfo_raw(signal: &mut [Complex64], cfo_norm: f64, phase0: f64) -> f64 {
    let step = 2.0 * std::f64::consts::PI * cfo_norm / 64.0;
    let mut phase = phase0;
    for x in signal.iter_mut() {
        *x *= Complex64::cis(phase);
        phase += step;
    }
    phase
}

/// Converts a CFO in parts-per-million of a carrier frequency into
/// normalized subcarrier spacings at 20 Msps. E.g. ±20 ppm at 5.2 GHz is
/// ±104 kHz ≈ ±0.33 spacings.
pub fn cfo_ppm_to_norm(ppm: f64, carrier_hz: f64) -> f64 {
    let hz = ppm * 1e-6 * carrier_hz;
    hz / (20e6 / 64.0)
}

/// Applies a sampling-frequency offset of `ppm` parts per million:
/// positive `ppm` means the receiver's clock runs fast (it samples the
/// waveform on a slightly compressed grid). Implemented by windowed-sinc
/// resampling; output length shrinks/grows accordingly.
pub fn apply_sfo(signal: &[Complex64], ppm: f64) -> Vec<Complex64> {
    let ratio = 1.0 + ppm * 1e-6;
    resample(signal, ratio, 16)
}

/// Delays the stream by `offset` samples: the integer part prepends zeros
/// (a late detection sees the packet start later in its buffer), the
/// fractional part is a sub-sample interpolation.
pub fn apply_timing_offset(signal: &[Complex64], offset: f64) -> Vec<Complex64> {
    assert!(
        offset >= 0.0,
        "negative timing offsets are expressed by trimming"
    );
    let int = offset.floor() as usize;
    let frac = offset - int as f64;
    let shifted = if frac > 1e-12 {
        fractional_delay(signal, frac, 16)
    } else {
        signal.to_vec()
    };
    let mut out = vec![Complex64::ZERO; int];
    out.extend(shifted);
    out
}

/// Transmit IQ imbalance: gain mismatch `epsilon` (linear, e.g. 0.05 = 5%)
/// and quadrature skew `phi` radians. Model:
/// `y = alpha * x + beta * conj(x)` with
/// `alpha = cos(phi/2) + i epsilon/2 sin(phi/2)`,
/// `beta = epsilon/2 cos(phi/2) - i sin(phi/2)` (small-angle standard form).
pub fn apply_iq_imbalance(signal: &mut [Complex64], epsilon: f64, phi: f64) {
    let (s, c) = (phi / 2.0).sin_cos();
    let alpha = Complex64::new(c, epsilon / 2.0 * s);
    let beta = Complex64::new(epsilon / 2.0 * c, -s);
    for x in signal.iter_mut() {
        *x = alpha * *x + beta * x.conj();
    }
}

/// Adds a constant DC offset.
pub fn apply_dc_offset(signal: &mut [Complex64], dc: Complex64) {
    for x in signal.iter_mut() {
        *x += dc;
    }
}

/// Quantizes both components to `bits`-bit two's-complement ADC codes over
/// the full-scale range `[-full_scale, +full_scale)`, with saturation.
/// Models the USRP's 12/14-bit converters.
pub fn quantize(signal: &mut [Complex64], bits: u32, full_scale: f64) {
    assert!((2..=24).contains(&bits), "ADC width {bits} out of range");
    assert!(full_scale > 0.0, "full scale must be positive");
    let levels = (1u64 << (bits - 1)) as f64; // codes per polarity
    let q = full_scale / levels;
    let clamp = |v: f64| -> f64 {
        let code = (v / q).round().clamp(-levels, levels - 1.0);
        code * q
    };
    for x in signal.iter_mut() {
        *x = Complex64::new(clamp(x.re), clamp(x.im));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mimonet_dsp::complex::C64;

    #[test]
    fn cfo_rotates_at_expected_rate() {
        let mut x = vec![C64::ONE; 128];
        apply_cfo(&mut x, 1.0, 0.0);
        // One subcarrier spacing: full rotation every 64 samples.
        assert!(x[0].dist(C64::ONE) < 1e-12);
        assert!(x[64].dist(C64::ONE) < 1e-9);
        assert!(x[32].dist(-C64::ONE) < 1e-9);
        assert!(x[16].dist(C64::I) < 1e-9);
    }

    #[test]
    fn cfo_phase_continuity() {
        let mut whole = vec![C64::ONE; 100];
        apply_cfo(&mut whole, 0.37, 0.2);
        let mut a = vec![C64::ONE; 60];
        let mut b = vec![C64::ONE; 40];
        let mid = apply_cfo(&mut a, 0.37, 0.2);
        apply_cfo(&mut b, 0.37, mid);
        for (i, (x, y)) in whole.iter().zip(a.iter().chain(b.iter())).enumerate() {
            assert!(x.dist(*y) < 1e-9, "sample {i}");
        }
    }

    #[test]
    fn cfo_raw_phase_chunking_is_bit_identical() {
        // Raw-phase carry must reproduce the whole-buffer result exactly —
        // not just closely — because the receiver's lazy correction splits
        // one logical pass into many chunks.
        let src: Vec<C64> = (0..512).map(|i| C64::cis(i as f64 * 0.31) * 0.7).collect();
        let mut whole = src.clone();
        apply_cfo_raw(&mut whole, 0.4371, 0.93);
        let mut chunked = src;
        let mut phase = 0.93;
        for chunk in chunked.chunks_mut(37) {
            phase = apply_cfo_raw(chunk, 0.4371, phase);
        }
        for (i, (a, b)) in whole.iter().zip(&chunked).enumerate() {
            assert_eq!(a, b, "sample {i}");
        }
    }

    #[test]
    fn cfo_preserves_power() {
        let mut x: Vec<C64> = (0..64).map(|i| C64::new(i as f64, -1.0)).collect();
        let p0 = mimonet_dsp::complex::energy(&x);
        apply_cfo(&mut x, 0.23, 1.0);
        assert!((mimonet_dsp::complex::energy(&x) - p0).abs() < 1e-9);
    }

    #[test]
    fn ppm_conversion() {
        // 20 ppm at 5.2 GHz = 104 kHz; spacing = 312.5 kHz → 0.3328.
        let norm = cfo_ppm_to_norm(20.0, 5.2e9);
        assert!((norm - 0.3328).abs() < 1e-4);
    }

    #[test]
    fn sfo_changes_length() {
        let x = vec![C64::ONE; 100_000];
        let y = apply_sfo(&x, 40.0);
        // 40 ppm over 100k samples = 4 samples longer.
        assert_eq!(y.len(), 100_004);
        let z = apply_sfo(&x, -40.0);
        assert_eq!(z.len(), 99_996);
    }

    #[test]
    fn zero_sfo_is_near_identity() {
        let x: Vec<C64> = (0..200).map(|i| C64::cis(i as f64 * 0.1)).collect();
        let y = apply_sfo(&x, 0.0);
        assert_eq!(y.len(), x.len());
        for i in 20..180 {
            assert!(y[i].dist(x[i]) < 1e-6);
        }
    }

    #[test]
    fn integer_timing_offset_prepends_zeros() {
        let x = vec![C64::ONE; 5];
        let y = apply_timing_offset(&x, 3.0);
        assert_eq!(y.len(), 8);
        assert!(y[..3].iter().all(|v| v.abs() < 1e-12));
        assert!(y[3..].iter().all(|v| v.dist(C64::ONE) < 1e-9));
    }

    #[test]
    fn fractional_timing_offset_interpolates() {
        let f = 0.05;
        let x: Vec<C64> = (0..128)
            .map(|i| C64::cis(2.0 * std::f64::consts::PI * f * i as f64))
            .collect();
        let y = apply_timing_offset(&x, 0.5);
        let rot = C64::cis(-2.0 * std::f64::consts::PI * f * 0.5);
        for i in 20..108 {
            assert!(y[i].dist(x[i] * rot) < 1e-3, "i={i}");
        }
    }

    #[test]
    fn iq_imbalance_creates_image() {
        // A pure positive-frequency tone acquires a negative-frequency
        // image with power ~ (eps/2)^2 + (phi/2)^2.
        let n = 256;
        let k = 10.0;
        let mut x: Vec<C64> = (0..n)
            .map(|t| C64::cis(2.0 * std::f64::consts::PI * k * t as f64 / n as f64))
            .collect();
        apply_iq_imbalance(&mut x, 0.1, 0.05);
        let spec = mimonet_dsp::fft::fft(&x);
        let signal = spec[10].norm_sqr();
        let image = spec[n - 10].norm_sqr();
        assert!(image > 0.0);
        let irr = signal / image;
        // Expected image rejection ≈ |alpha|²/|beta|² ≈ 1/(0.05² + 0.025²)
        let expect = 1.0 / (0.05f64.powi(2) + 0.025f64.powi(2));
        assert!(
            (irr / expect).ln().abs() < 0.3,
            "IRR {irr}, expected ~{expect}"
        );
    }

    #[test]
    fn no_imbalance_is_identity() {
        let mut x = vec![C64::new(0.3, -0.7); 8];
        let orig = x.clone();
        apply_iq_imbalance(&mut x, 0.0, 0.0);
        for (a, b) in x.iter().zip(&orig) {
            assert!(a.dist(*b) < 1e-12);
        }
    }

    #[test]
    fn dc_offset_shifts_mean() {
        let mut x = vec![C64::ZERO; 10];
        apply_dc_offset(&mut x, C64::new(0.1, -0.2));
        for v in &x {
            assert!(v.dist(C64::new(0.1, -0.2)) < 1e-12);
        }
    }

    #[test]
    fn quantizer_error_bounded_by_half_lsb() {
        let mut x: Vec<C64> = (0..1000)
            .map(|i| C64::new((i as f64 * 0.013).sin(), (i as f64 * 0.027).cos()))
            .collect();
        let orig = x.clone();
        quantize(&mut x, 12, 2.0);
        let lsb = 2.0 / (1 << 11) as f64;
        for (a, b) in x.iter().zip(&orig) {
            assert!((a.re - b.re).abs() <= lsb / 2.0 + 1e-12);
            assert!((a.im - b.im).abs() <= lsb / 2.0 + 1e-12);
        }
    }

    #[test]
    fn quantizer_saturates() {
        let mut x = vec![C64::new(10.0, -10.0)];
        quantize(&mut x, 8, 1.0);
        let max_code = 1.0 - 1.0 / 128.0;
        assert!((x[0].re - max_code).abs() < 1e-12);
        assert!((x[0].im + 1.0).abs() < 1e-12);
    }

    #[test]
    fn coarse_quantizer_is_lossy_but_decodable_snr() {
        // 12-bit quantization of a unit-power signal leaves ~70 dB SQNR —
        // far above any operating point in the experiments.
        let mut x: Vec<C64> = (0..4096).map(|i| C64::cis(i as f64 * 0.11) * 0.5).collect();
        let orig = x.clone();
        quantize(&mut x, 12, 2.0);
        let err: Vec<C64> = x.iter().zip(&orig).map(|(a, b)| *a - *b).collect();
        let sqnr = mimonet_dsp::stats::lin_to_db(
            mimonet_dsp::complex::mean_power(&orig) / mimonet_dsp::complex::mean_power(&err),
        );
        assert!(sqnr > 60.0, "SQNR {sqnr} dB");
    }
}
