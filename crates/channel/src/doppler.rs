//! Time-varying flat fading: Jakes-style sum-of-sinusoids Doppler
//! processes.
//!
//! Block fading (one H per frame) models a static indoor link; with
//! terminal mobility the channel *ages between the preamble and the last
//! data symbol*, breaking the channel estimate — the effect that bounds
//! frame length in practice. [`JakesProcess`] generates a complex gain
//! whose autocorrelation follows the classic Clarke/Jakes model
//! `J0(2 pi fd t)`, and [`TimeVaryingChannel`] applies an independent
//! process per antenna pair.
//!
//! The Doppler frequency is normalized to the sample rate: at 20 Msps, a
//! pedestrian 5.2 GHz Doppler of ~35 Hz is `fd = 1.75e-6`; experiments
//! sweep far above that to probe the failure mode within short frames.

use crate::noise::crandn;
use mimonet_dsp::complex::Complex64;
use rand::Rng;

/// Number of sinusoids in the sum-of-sinusoids approximation.
const N_OSC: usize = 16;

/// One Rayleigh-fading complex gain evolving in time.
#[derive(Clone, Debug)]
pub struct JakesProcess {
    /// Per-oscillator normalized Doppler shift (cycles/sample).
    freqs: [f64; N_OSC],
    /// Per-oscillator phase offsets.
    phases: [f64; N_OSC],
    /// Per-oscillator complex amplitudes.
    amps: [Complex64; N_OSC],
}

impl JakesProcess {
    /// Draws a process with maximum Doppler `fd_norm` (cycles/sample).
    ///
    /// # Panics
    ///
    /// Panics on a negative Doppler.
    pub fn new<R: Rng + ?Sized>(rng: &mut R, fd_norm: f64) -> Self {
        assert!(fd_norm >= 0.0, "Doppler frequency must be non-negative");
        let mut freqs = [0.0; N_OSC];
        let mut phases = [0.0; N_OSC];
        let mut amps = [Complex64::ZERO; N_OSC];
        let scale = 1.0 / (N_OSC as f64).sqrt();
        for i in 0..N_OSC {
            // Arrival angles uniform on the circle → Doppler = fd cos(a),
            // the Clarke model. Randomized per process (no two antenna
            // pairs share a ray set).
            let angle = rng.gen::<f64>() * 2.0 * std::f64::consts::PI;
            freqs[i] = fd_norm * angle.cos();
            phases[i] = rng.gen::<f64>() * 2.0 * std::f64::consts::PI;
            amps[i] = crandn(rng).scale(scale);
        }
        Self {
            freqs,
            phases,
            amps,
        }
    }

    /// The complex gain at sample index `n`. Unit average power over the
    /// ensemble.
    pub fn gain_at(&self, n: u64) -> Complex64 {
        let t = n as f64;
        let mut g = Complex64::ZERO;
        for i in 0..N_OSC {
            g += self.amps[i]
                * Complex64::cis(2.0 * std::f64::consts::PI * self.freqs[i] * t + self.phases[i]);
        }
        g
    }
}

/// A time-varying flat MIMO channel: an independent Jakes process per
/// `(rx, tx)` pair.
#[derive(Clone, Debug)]
pub struct TimeVaryingChannel {
    n_rx: usize,
    n_tx: usize,
    procs: Vec<JakesProcess>, // row-major [rx][tx]
    /// Absolute sample clock, advanced by `apply`.
    clock: u64,
}

impl TimeVaryingChannel {
    /// Draws a channel with per-pair maximum Doppler `fd_norm`.
    pub fn new<R: Rng + ?Sized>(rng: &mut R, n_rx: usize, n_tx: usize, fd_norm: f64) -> Self {
        assert!(n_rx > 0 && n_tx > 0, "antenna counts must be nonzero");
        let procs = (0..n_rx * n_tx)
            .map(|_| JakesProcess::new(rng, fd_norm))
            .collect();
        Self {
            n_rx,
            n_tx,
            procs,
            clock: 0,
        }
    }

    /// Receive antenna count.
    pub fn n_rx(&self) -> usize {
        self.n_rx
    }

    /// Transmit antenna count.
    pub fn n_tx(&self) -> usize {
        self.n_tx
    }

    /// The gain of pair `(rx, tx)` at the current clock plus `offset`.
    pub fn gain(&self, rx: usize, tx: usize, offset: u64) -> Complex64 {
        self.procs[rx * self.n_tx + tx].gain_at(self.clock + offset)
    }

    /// Applies the channel sample-by-sample, advancing the internal clock
    /// (consecutive calls are continuous in time).
    ///
    /// # Panics
    ///
    /// Panics on antenna-count or length mismatches.
    pub fn apply(&mut self, tx: &[Vec<Complex64>]) -> Vec<Vec<Complex64>> {
        assert_eq!(tx.len(), self.n_tx, "expected {} TX streams", self.n_tx);
        let len = tx.first().map_or(0, |s| s.len());
        assert!(
            tx.iter().all(|s| s.len() == len),
            "TX stream lengths differ"
        );
        let out = (0..self.n_rx)
            .map(|r| {
                (0..len)
                    .map(|n| {
                        let mut y = Complex64::ZERO;
                        for (t, stream) in tx.iter().enumerate() {
                            y += self.gain(r, t, n as u64) * stream[n];
                        }
                        y
                    })
                    .collect()
            })
            .collect();
        self.clock += len as u64;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mimonet_dsp::complex::C64;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// Bessel J0 via its power series (adequate for |x| < ~12).
    fn bessel_j0(x: f64) -> f64 {
        let mut term = 1.0;
        let mut sum = 1.0;
        let q = x * x / 4.0;
        for k in 1..40 {
            term *= -q / (k * k) as f64;
            sum += term;
            if term.abs() < 1e-15 {
                break;
            }
        }
        sum
    }

    #[test]
    fn ensemble_power_is_unity() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut p = 0.0;
        let trials = 3000;
        for _ in 0..trials {
            let proc = JakesProcess::new(&mut rng, 1e-3);
            p += proc.gain_at(0).norm_sqr();
        }
        let avg = p / trials as f64;
        assert!((avg - 1.0).abs() < 0.06, "avg power {avg}");
    }

    #[test]
    fn autocorrelation_follows_bessel() {
        // E[g(t) g*(t+tau)] = J0(2 pi fd tau) for the Clarke model.
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let fd = 2e-4;
        let trials = 4000;
        for &tau in &[0u64, 400, 800, 1600] {
            let mut acc = C64::ZERO;
            for _ in 0..trials {
                let proc = JakesProcess::new(&mut rng, fd);
                acc += proc.gain_at(0) * proc.gain_at(tau).conj();
            }
            let rho = acc.scale(1.0 / trials as f64);
            let want = bessel_j0(2.0 * std::f64::consts::PI * fd * tau as f64);
            assert!(
                (rho.re - want).abs() < 0.07 && rho.im.abs() < 0.07,
                "tau {tau}: got {rho:?}, want {want}"
            );
        }
    }

    #[test]
    fn zero_doppler_is_static() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let proc = JakesProcess::new(&mut rng, 0.0);
        let g0 = proc.gain_at(0);
        for n in [1u64, 100, 100_000] {
            assert!(proc.gain_at(n).dist(g0) < 1e-9);
        }
    }

    #[test]
    fn channel_clock_is_continuous_across_calls() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let mut whole = TimeVaryingChannel::new(&mut rng, 1, 1, 1e-3);
        let mut split = whole.clone();
        let x = vec![vec![C64::ONE; 100]];
        let y_whole = whole.apply(&x);
        let xa = vec![vec![C64::ONE; 60]];
        let xb = vec![vec![C64::ONE; 40]];
        let ya = split.apply(&xa);
        let yb = split.apply(&xb);
        for (i, v) in ya[0].iter().chain(yb[0].iter()).enumerate() {
            assert!(v.dist(y_whole[0][i]) < 1e-12, "sample {i}");
        }
    }

    #[test]
    fn pairs_fade_independently() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        // Correlation between two pairs' gains over the ensemble ≈ 0.
        let mut acc = C64::ZERO;
        let trials = 3000;
        for _ in 0..trials {
            let ch = TimeVaryingChannel::new(&mut rng, 2, 2, 1e-3);
            acc += ch.gain(0, 0, 0) * ch.gain(1, 1, 0).conj();
        }
        assert!(acc.scale(1.0 / trials as f64).abs() < 0.06);
    }

    #[test]
    fn fast_fading_decorrelates_within_a_frame() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        // fd = 1e-3: over a 4000-sample frame the gain moves substantially.
        let mut moved = 0usize;
        let trials = 200;
        for _ in 0..trials {
            let proc = JakesProcess::new(&mut rng, 1e-3);
            if proc.gain_at(0).dist(proc.gain_at(4000)) > 0.3 {
                moved += 1;
            }
        }
        assert!(moved > trials / 2, "only {moved}/{trials} moved");
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_doppler_rejected() {
        JakesProcess::new(&mut ChaCha8Rng::seed_from_u64(0), -0.1);
    }
}
