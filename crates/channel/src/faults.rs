//! Deterministic fault injection on captured sample streams.
//!
//! A [`FaultSchedule`] is a list of timed [`FaultEvent`]s — corruption
//! bursts, deep-fade dropouts, impulse noise, inter-antenna desync and
//! capture truncation — generated purely from `(spec, capture_len, seed)`.
//! The same triple always yields the same schedule and the same corrupted
//! samples, so chaos experiments compose with the `mimonet::sweep` engine
//! bit-identically at any thread count: derive the seed with
//! `shard_seed(...)` and the fault pattern is a pure function of the
//! trial, not of scheduling.
//!
//! Faults are confined to a configurable window of the capture so tests
//! can assert recovery *after* the window closes — the "link comes back
//! when the interference stops" property the paper's channel-validation
//! experiments care about.

use mimonet_dsp::complex::Complex64;
use mimonet_dsp::seedtree;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// What kinds and how many faults to inject. Counts are exact (not
/// probabilistic), so the severity of a schedule is controlled and the
/// randomness only places and shapes the events.
#[derive(Clone, Debug)]
pub struct FaultSpec {
    /// Number of corruption bursts (samples replaced by strong noise).
    pub bursts: usize,
    /// Samples per burst.
    pub burst_len: usize,
    /// Linear amplitude of burst noise relative to unit signal power.
    pub burst_gain: f64,
    /// Number of deep-fade dropouts (samples zeroed).
    pub dropouts: usize,
    /// Samples per dropout.
    pub dropout_len: usize,
    /// Number of single-sample impulses.
    pub impulses: usize,
    /// Linear amplitude of each impulse.
    pub impulse_gain: f64,
    /// Number of transient inter-antenna desync events (one antenna slips
    /// by up to `max_slip` samples for the event's duration, then
    /// realigns).
    pub desyncs: usize,
    /// Maximum slip, in samples, of a desync event.
    pub max_slip: usize,
    /// Length of a desync event.
    pub desync_len: usize,
    /// Truncate the capture to this fraction of its length (1.0 = keep
    /// all). Models a capture that stops mid-frame.
    pub truncate_frac: f64,
    /// Fault window as fractions of the capture: events start inside
    /// `[window.0, window.1) * capture_len`.
    pub window: (f64, f64),
}

impl Default for FaultSpec {
    fn default() -> Self {
        Self {
            bursts: 2,
            burst_len: 256,
            burst_gain: 6.0,
            dropouts: 1,
            dropout_len: 512,
            impulses: 8,
            impulse_gain: 20.0,
            desyncs: 0,
            max_slip: 4,
            desync_len: 1024,
            truncate_frac: 1.0,
            window: (0.0, 1.0),
        }
    }
}

impl FaultSpec {
    /// No faults at all — the identity schedule.
    pub fn none() -> Self {
        Self {
            bursts: 0,
            dropouts: 0,
            impulses: 0,
            desyncs: 0,
            truncate_frac: 1.0,
            ..Self::default()
        }
    }

    /// A harsh mix of every fault type confined to the middle of the
    /// capture (window 0.25–0.60), leaving the tail clean so recovery can
    /// be measured.
    pub fn harsh_mid_capture() -> Self {
        Self {
            bursts: 3,
            burst_len: 384,
            burst_gain: 8.0,
            dropouts: 2,
            dropout_len: 640,
            impulses: 12,
            impulse_gain: 25.0,
            desyncs: 1,
            max_slip: 3,
            desync_len: 800,
            truncate_frac: 1.0,
            window: (0.25, 0.60),
        }
    }
}

/// One fault's type and parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultKind {
    /// Replace samples with strong Gaussian noise of the given amplitude.
    Burst {
        /// Linear noise amplitude.
        gain: f64,
    },
    /// Zero samples (deep fade / squelch).
    Dropout,
    /// Add one large impulse to a single sample.
    Impulse {
        /// Linear impulse amplitude.
        gain: f64,
    },
    /// One antenna's stream slips by `slip` samples for the event's
    /// duration, then realigns (transient sample drop at `start`,
    /// zero-fill at the event end keeps total length unchanged).
    Desync {
        /// Which RX antenna slips.
        antenna: usize,
        /// Samples slipped.
        slip: usize,
    },
    /// The capture ends at `start`; everything after is discarded.
    Truncate,
}

/// A fault at an absolute sample position.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultEvent {
    /// What happens.
    pub kind: FaultKind,
    /// First affected sample index.
    pub start: usize,
    /// Affected span in samples (1 for impulses, 0 for truncation).
    pub len: usize,
}

/// What a schedule actually did to a capture, for stats and assertions.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultReport {
    /// Samples overwritten with noise or an impulse.
    pub corrupted_samples: usize,
    /// Samples zeroed by dropouts or desync fills.
    pub zeroed_samples: usize,
    /// Samples removed by truncation (per antenna).
    pub truncated_samples: usize,
    /// The events applied, in application order.
    pub events: Vec<FaultEvent>,
}

/// A deterministic, seeded list of fault events for one capture.
#[derive(Clone, Debug)]
pub struct FaultSchedule {
    events: Vec<FaultEvent>,
    /// Seed for the sample-level noise the events inject.
    noise_seed: u64,
    capture_len: usize,
}

impl FaultSchedule {
    /// Generates the schedule for a capture of `capture_len` samples per
    /// antenna. Pure in `(spec, capture_len, seed)`.
    pub fn generate(spec: &FaultSpec, capture_len: usize, seed: u64) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut events = Vec::new();
        let lo = ((spec.window.0.clamp(0.0, 1.0)) * capture_len as f64) as usize;
        let hi = ((spec.window.1.clamp(0.0, 1.0)) * capture_len as f64) as usize;
        let place = |rng: &mut ChaCha8Rng, len: usize| -> Option<usize> {
            let len = len.min(capture_len);
            let end = hi.min(capture_len.saturating_sub(len)).max(lo);
            if capture_len == 0 || end <= lo {
                return if lo < capture_len { Some(lo) } else { None };
            }
            Some(rng.gen_range(lo..end))
        };
        for _ in 0..spec.bursts {
            if let Some(start) = place(&mut rng, spec.burst_len) {
                events.push(FaultEvent {
                    kind: FaultKind::Burst {
                        gain: spec.burst_gain,
                    },
                    start,
                    len: spec.burst_len.min(capture_len - start),
                });
            }
        }
        for _ in 0..spec.dropouts {
            if let Some(start) = place(&mut rng, spec.dropout_len) {
                events.push(FaultEvent {
                    kind: FaultKind::Dropout,
                    start,
                    len: spec.dropout_len.min(capture_len - start),
                });
            }
        }
        for _ in 0..spec.impulses {
            if let Some(start) = place(&mut rng, 1) {
                events.push(FaultEvent {
                    kind: FaultKind::Impulse {
                        gain: spec.impulse_gain,
                    },
                    start,
                    len: 1.min(capture_len - start),
                });
            }
        }
        for _ in 0..spec.desyncs {
            if spec.max_slip == 0 {
                continue;
            }
            if let Some(start) = place(&mut rng, spec.desync_len) {
                let antenna = rng.gen_range(0..usize::MAX); // bound at apply time
                let slip = rng.gen_range(1..spec.max_slip + 1);
                events.push(FaultEvent {
                    kind: FaultKind::Desync { antenna, slip },
                    start,
                    len: spec.desync_len.min(capture_len - start),
                });
            }
        }
        if spec.truncate_frac < 1.0 {
            let keep = ((spec.truncate_frac.max(0.0)) * capture_len as f64) as usize;
            events.push(FaultEvent {
                kind: FaultKind::Truncate,
                start: keep,
                len: 0,
            });
        }
        // Sort for a canonical application order independent of the
        // generation sequence above (truncation last so spans are
        // measured against the full capture).
        events.sort_by_key(|e| {
            (
                matches!(e.kind, FaultKind::Truncate) as usize,
                e.start,
                e.len,
            )
        });
        Self {
            events,
            noise_seed: seedtree::salted(seed, seedtree::FAULT_NOISE_SALT),
            capture_len,
        }
    }

    /// The generated events.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// The sample span `[start, end)` covering every event, or `None` for
    /// an empty schedule. Samples at or past `end` are untouched — the
    /// basis for "recovers after the fault window" assertions.
    pub fn window(&self) -> Option<(usize, usize)> {
        let mut lo = usize::MAX;
        let mut hi = 0usize;
        for e in &self.events {
            match e.kind {
                // Truncation affects everything from its start onward.
                FaultKind::Truncate => {
                    lo = lo.min(e.start);
                    hi = hi.max(self.capture_len);
                }
                _ => {
                    lo = lo.min(e.start);
                    hi = hi.max(e.start + e.len);
                }
            }
        }
        if lo == usize::MAX {
            None
        } else {
            Some((lo, hi))
        }
    }

    /// Applies every event to the per-antenna capture in place. Antenna
    /// vectors may end up shorter (truncation) but are kept equal-length.
    pub fn apply(&self, rx: &mut [Vec<Complex64>]) -> FaultReport {
        let mut rng = ChaCha8Rng::seed_from_u64(self.noise_seed);
        let mut report = FaultReport {
            events: self.events.clone(),
            ..FaultReport::default()
        };
        for event in &self.events {
            match event.kind {
                FaultKind::Burst { gain } => {
                    for ant in rx.iter_mut() {
                        let end = (event.start + event.len).min(ant.len());
                        let start = event.start.min(ant.len());
                        for s in ant.iter_mut().take(end).skip(start) {
                            // Box-Muller-free: two uniforms centred at 0
                            // are noise enough for a jammer burst, and
                            // cheaper to keep bit-stable.
                            let re: f64 = rng.gen_range(-1.0..1.0);
                            let im: f64 = rng.gen_range(-1.0..1.0);
                            *s = Complex64::new(gain * re, gain * im);
                            report.corrupted_samples += 1;
                        }
                    }
                }
                FaultKind::Dropout => {
                    for ant in rx.iter_mut() {
                        let end = (event.start + event.len).min(ant.len());
                        let start = event.start.min(ant.len());
                        for s in ant.iter_mut().take(end).skip(start) {
                            *s = Complex64::new(0.0, 0.0);
                            report.zeroed_samples += 1;
                        }
                    }
                }
                FaultKind::Impulse { gain } => {
                    // Alternate the impulse phase deterministically.
                    let re: f64 = rng.gen_range(-1.0..1.0);
                    let im: f64 = rng.gen_range(-1.0..1.0);
                    for ant in rx.iter_mut() {
                        if event.start < ant.len() {
                            ant[event.start] += Complex64::new(gain * re, gain * im);
                            report.corrupted_samples += 1;
                        }
                    }
                }
                FaultKind::Desync { antenna, slip } => {
                    if rx.is_empty() {
                        continue;
                    }
                    let antenna = antenna % rx.len();
                    let ant = &mut rx[antenna];
                    if event.start >= ant.len() || slip == 0 {
                        continue;
                    }
                    let end = (event.start + event.len).min(ant.len());
                    let slip = slip.min(end - event.start);
                    // Shift the event span left by `slip` (samples drop
                    // out at the event start), zero-fill the gap at the
                    // event end so the stream realigns afterwards.
                    ant.copy_within(event.start + slip..end, event.start);
                    for s in &mut ant[end - slip..end] {
                        *s = Complex64::new(0.0, 0.0);
                        report.zeroed_samples += 1;
                    }
                }
                FaultKind::Truncate => {
                    for ant in rx.iter_mut() {
                        if event.start < ant.len() {
                            report.truncated_samples += ant.len() - event.start;
                            ant.truncate(event.start);
                        }
                    }
                }
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn capture(n_ant: usize, len: usize) -> Vec<Vec<Complex64>> {
        (0..n_ant)
            .map(|a| {
                (0..len)
                    .map(|i| Complex64::new(1.0 + a as f64, i as f64 * 1e-3))
                    .collect()
            })
            .collect()
    }

    #[test]
    fn generation_is_pure_in_seed() {
        let spec = FaultSpec::default();
        let a = FaultSchedule::generate(&spec, 10_000, 42);
        let b = FaultSchedule::generate(&spec, 10_000, 42);
        let c = FaultSchedule::generate(&spec, 10_000, 43);
        assert_eq!(a.events(), b.events());
        assert_ne!(a.events(), c.events());
    }

    #[test]
    fn apply_is_deterministic() {
        let spec = FaultSpec::harsh_mid_capture();
        let sched = FaultSchedule::generate(&spec, 8_000, 7);
        let mut x = capture(2, 8_000);
        let mut y = capture(2, 8_000);
        let ra = sched.apply(&mut x);
        let rb = sched.apply(&mut y);
        assert_eq!(x, y);
        assert_eq!(ra, rb);
        assert!(ra.corrupted_samples > 0);
        assert!(ra.zeroed_samples > 0);
    }

    #[test]
    fn window_confines_all_damage() {
        let spec = FaultSpec::harsh_mid_capture();
        let len = 20_000;
        let sched = FaultSchedule::generate(&spec, len, 99);
        let clean = capture(2, len);
        let mut dirty = clean.clone();
        sched.apply(&mut dirty);
        let (lo, hi) = sched.window().expect("events exist");
        assert!(lo >= (0.25 * len as f64) as usize);
        // Events start inside the window; spans may run past its upper
        // fraction but never past the capture.
        assert!(hi <= len);
        for (c, d) in clean.iter().zip(&dirty) {
            assert_eq!(c[..lo], d[..lo], "samples before the window changed");
            assert_eq!(c[hi..], d[hi..], "samples after the window changed");
        }
    }

    #[test]
    fn none_schedule_is_identity() {
        let sched = FaultSchedule::generate(&FaultSpec::none(), 5_000, 1);
        assert!(sched.events().is_empty());
        assert_eq!(sched.window(), None);
        let clean = capture(2, 5_000);
        let mut x = clean.clone();
        let report = sched.apply(&mut x);
        assert_eq!(x, clean);
        assert_eq!(report.corrupted_samples + report.zeroed_samples, 0);
    }

    #[test]
    fn truncation_shortens_every_antenna_equally() {
        let spec = FaultSpec {
            truncate_frac: 0.5,
            ..FaultSpec::none()
        };
        let sched = FaultSchedule::generate(&spec, 4_000, 3);
        let mut x = capture(3, 4_000);
        let report = sched.apply(&mut x);
        assert!(x.iter().all(|a| a.len() == 2_000));
        assert_eq!(report.truncated_samples, 3 * 2_000);
    }

    #[test]
    fn desync_preserves_length_and_realigns_after_event() {
        let spec = FaultSpec {
            desyncs: 1,
            max_slip: 4,
            desync_len: 100,
            window: (0.2, 0.5),
            ..FaultSpec::none()
        };
        let len = 2_000;
        let sched = FaultSchedule::generate(&spec, len, 11);
        let clean = capture(2, len);
        let mut x = clean.clone();
        sched.apply(&mut x);
        let (_, hi) = sched.window().expect("one desync event");
        for (c, d) in clean.iter().zip(&x) {
            assert_eq!(c.len(), d.len(), "desync must not change length");
            assert_eq!(c[hi..], d[hi..], "streams must realign after event");
        }
    }

    #[test]
    fn degenerate_captures_do_not_panic() {
        let spec = FaultSpec::harsh_mid_capture();
        for len in [0usize, 1, 2, 63] {
            let sched = FaultSchedule::generate(&spec, len, 5);
            let mut x = capture(2, len);
            sched.apply(&mut x);
            let mut empty: Vec<Vec<Complex64>> = Vec::new();
            sched.apply(&mut empty);
        }
    }
}
