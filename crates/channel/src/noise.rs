//! Gaussian noise generation and SNR bookkeeping.
//!
//! Implemented with a Box–Muller transform over `rand`'s uniform source so
//! the workspace needs no external distribution crate. All SNRs in MIMONet
//! are defined as **total received signal power / noise power per receive
//! antenna**, with unit-power transmit normalization (see DESIGN.md).

use mimonet_dsp::complex::Complex64;
use rand::Rng;

/// Draws a standard normal (mean 0, variance 1) real sample.
pub fn randn<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Box–Muller; reject u1 == 0 to keep ln finite.
    loop {
        let u1: f64 = rng.gen();
        if u1 > f64::MIN_POSITIVE {
            let u2: f64 = rng.gen();
            return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        }
    }
}

/// Draws a circularly-symmetric complex Gaussian with **unit total
/// variance** (each component has variance 1/2).
pub fn crandn<R: Rng + ?Sized>(rng: &mut R) -> Complex64 {
    let s = std::f64::consts::FRAC_1_SQRT_2;
    Complex64::new(randn(rng) * s, randn(rng) * s)
}

/// Adds complex AWGN of total variance `noise_power` to `signal` in place.
pub fn add_awgn<R: Rng + ?Sized>(rng: &mut R, signal: &mut [Complex64], noise_power: f64) {
    assert!(noise_power >= 0.0, "noise power must be non-negative");
    if noise_power == 0.0 {
        return;
    }
    let sigma = noise_power.sqrt();
    for x in signal.iter_mut() {
        *x += crandn(rng).scale(sigma);
    }
}

/// Noise power per receive antenna for a given SNR in dB, assuming unit
/// total received signal power.
pub fn noise_power_for_snr_db(snr_db: f64) -> f64 {
    mimonet_dsp::stats::db_to_lin(-snr_db)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mimonet_dsp::complex::mean_power;
    use mimonet_dsp::stats::Running;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn randn_moments() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut r = Running::new();
        for _ in 0..200_000 {
            r.push(randn(&mut rng));
        }
        assert!(r.mean().abs() < 0.01, "mean {}", r.mean());
        assert!((r.variance() - 1.0).abs() < 0.02, "var {}", r.variance());
    }

    #[test]
    fn crandn_is_circular_unit_power() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let xs: Vec<_> = (0..100_000).map(|_| crandn(&mut rng)).collect();
        let p = mean_power(&xs);
        assert!((p - 1.0).abs() < 0.02, "power {p}");
        // Components uncorrelated: E[re*im] ≈ 0.
        let cross: f64 = xs.iter().map(|z| z.re * z.im).sum::<f64>() / xs.len() as f64;
        assert!(cross.abs() < 0.01);
        // Rotation invariance of the mean phasor.
        let m: Complex64 = xs
            .iter()
            .copied()
            .sum::<Complex64>()
            .scale(1.0 / xs.len() as f64);
        assert!(m.abs() < 0.02);
    }

    #[test]
    fn awgn_hits_requested_snr() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for snr_db in [0.0, 10.0, 20.0] {
            let clean = vec![Complex64::ONE; 50_000];
            let mut noisy = clean.clone();
            add_awgn(&mut rng, &mut noisy, noise_power_for_snr_db(snr_db));
            let noise: Vec<Complex64> = noisy.iter().zip(&clean).map(|(a, b)| *a - *b).collect();
            let measured = mimonet_dsp::stats::lin_to_db(mean_power(&clean) / mean_power(&noise));
            assert!(
                (measured - snr_db).abs() < 0.3,
                "target {snr_db} dB, measured {measured} dB"
            );
        }
    }

    #[test]
    fn zero_noise_is_identity() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let mut x = vec![Complex64::new(1.0, -2.0); 8];
        let orig = x.clone();
        add_awgn(&mut rng, &mut x, 0.0);
        assert_eq!(x, orig);
    }

    #[test]
    fn seeded_noise_is_reproducible() {
        let gen = |seed| {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let mut x = vec![Complex64::ZERO; 16];
            add_awgn(&mut rng, &mut x, 1.0);
            x
        };
        assert_eq!(gen(7), gen(7));
        assert_ne!(gen(7), gen(8));
    }
}
