//! MIMO fading channel models.
//!
//! Three models of increasing realism, all block-fading (constant over one
//! frame, redrawn per frame — appropriate for indoor 802.11 where coherence
//! time spans many frames):
//!
//! * [`MimoChannelMatrix::identity`] — ideal wires, for calibration;
//! * [`MimoChannelMatrix::rayleigh_flat`] — i.i.d. flat Rayleigh entries,
//!   the canonical spatial-multiplexing analysis channel;
//! * [`TappedDelayLine`] — frequency-selective Rayleigh with an exponential
//!   power-delay profile parameterized like the IEEE TGn indoor models
//!   (see [`crate::tgn`]).

use crate::noise::crandn;
use mimonet_dsp::complex::Complex64;
use mimonet_dsp::filter::convolve;
use rand::Rng;

/// A flat (single-tap) MIMO channel matrix `H`, `n_rx × n_tx`.
#[derive(Clone, Debug, PartialEq)]
pub struct MimoChannelMatrix {
    n_rx: usize,
    n_tx: usize,
    h: Vec<Complex64>, // row-major [rx][tx]
}

impl MimoChannelMatrix {
    /// Builds from a row-major coefficient vector.
    ///
    /// # Panics
    ///
    /// Panics if `h.len() != n_rx * n_tx` or either dimension is zero.
    pub fn new(n_rx: usize, n_tx: usize, h: Vec<Complex64>) -> Self {
        assert!(n_rx > 0 && n_tx > 0, "channel dimensions must be nonzero");
        assert_eq!(h.len(), n_rx * n_tx, "coefficient count mismatch");
        Self { n_rx, n_tx, h }
    }

    /// The identity channel (requires `n_rx == n_tx`).
    pub fn identity(n: usize) -> Self {
        let mut h = vec![Complex64::ZERO; n * n];
        for i in 0..n {
            h[i * n + i] = Complex64::ONE;
        }
        Self::new(n, n, h)
    }

    /// Draws an i.i.d. flat Rayleigh matrix: each entry CN(0, 1), so the
    /// average received power per RX antenna equals the total transmitted
    /// power (unit with our TX normalization).
    pub fn rayleigh_flat<R: Rng + ?Sized>(rng: &mut R, n_rx: usize, n_tx: usize) -> Self {
        let h = (0..n_rx * n_tx).map(|_| crandn(rng)).collect();
        Self::new(n_rx, n_tx, h)
    }

    /// Receive antenna count.
    pub fn n_rx(&self) -> usize {
        self.n_rx
    }

    /// Transmit antenna count.
    pub fn n_tx(&self) -> usize {
        self.n_tx
    }

    /// Coefficient `h[rx][tx]`.
    pub fn at(&self, rx: usize, tx: usize) -> Complex64 {
        self.h[rx * self.n_tx + tx]
    }

    /// Applies the channel to per-antenna transmit streams (all the same
    /// length), producing per-RX-antenna streams: `y_r = sum_t h[r][t] x_t`.
    ///
    /// # Panics
    ///
    /// Panics if `tx.len() != n_tx` or stream lengths differ.
    pub fn apply(&self, tx: &[Vec<Complex64>]) -> Vec<Vec<Complex64>> {
        assert_eq!(tx.len(), self.n_tx, "expected {} TX streams", self.n_tx);
        let len = tx.first().map_or(0, |s| s.len());
        assert!(
            tx.iter().all(|s| s.len() == len),
            "TX stream lengths differ"
        );
        (0..self.n_rx)
            .map(|r| {
                let mut y = vec![Complex64::ZERO; len];
                for (t, stream) in tx.iter().enumerate() {
                    let h = self.at(r, t);
                    for (yi, &xi) in y.iter_mut().zip(stream) {
                        *yi += h * xi;
                    }
                }
                y
            })
            .collect()
    }

    /// Frobenius norm squared of H (total channel gain).
    pub fn frobenius_sqr(&self) -> f64 {
        self.h.iter().map(|c| c.norm_sqr()).sum()
    }
}

/// A frequency-selective MIMO channel: an independent FIR impulse response
/// per (rx, tx) antenna pair.
#[derive(Clone, Debug)]
pub struct TappedDelayLine {
    n_rx: usize,
    n_tx: usize,
    /// `taps[rx][tx]` is that pair's impulse response.
    taps: Vec<Vec<Vec<Complex64>>>,
}

impl TappedDelayLine {
    /// Builds from explicit per-pair impulse responses.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent dimensions or empty responses.
    pub fn new(taps: Vec<Vec<Vec<Complex64>>>) -> Self {
        let n_rx = taps.len();
        assert!(n_rx > 0, "need at least one RX row");
        let n_tx = taps[0].len();
        assert!(n_tx > 0, "need at least one TX column");
        for row in &taps {
            assert_eq!(row.len(), n_tx, "ragged tap matrix");
            for ir in row {
                assert!(!ir.is_empty(), "empty impulse response");
            }
        }
        Self { n_rx, n_tx, taps }
    }

    /// Draws i.i.d. Rayleigh taps with the given power-delay profile
    /// (linear power per tap, need not be normalized — it will be scaled to
    /// sum to 1 so the average channel gain per antenna pair is unity).
    pub fn rayleigh<R: Rng + ?Sized>(rng: &mut R, n_rx: usize, n_tx: usize, pdp: &[f64]) -> Self {
        assert!(!pdp.is_empty(), "power-delay profile must be non-empty");
        let total: f64 = pdp.iter().sum();
        assert!(total > 0.0, "power-delay profile must have positive power");
        let taps = (0..n_rx)
            .map(|_| {
                (0..n_tx)
                    .map(|_| {
                        pdp.iter()
                            .map(|&p| crandn(rng).scale((p / total).sqrt()))
                            .collect()
                    })
                    .collect()
            })
            .collect();
        Self::new(taps)
    }

    /// Receive antenna count.
    pub fn n_rx(&self) -> usize {
        self.n_rx
    }

    /// Transmit antenna count.
    pub fn n_tx(&self) -> usize {
        self.n_tx
    }

    /// Impulse response for an antenna pair.
    pub fn impulse_response(&self, rx: usize, tx: usize) -> &[Complex64] {
        &self.taps[rx][tx]
    }

    /// Longest impulse response across pairs (delay spread in samples).
    pub fn max_delay(&self) -> usize {
        self.taps
            .iter()
            .flat_map(|row| row.iter().map(|ir| ir.len()))
            .max()
            .unwrap_or(0)
    }

    /// Applies the channel: per-RX sums of per-pair convolutions. Output
    /// streams are `len + max_delay - 1` samples (the tail rings out).
    pub fn apply(&self, tx: &[Vec<Complex64>]) -> Vec<Vec<Complex64>> {
        assert_eq!(tx.len(), self.n_tx, "expected {} TX streams", self.n_tx);
        let len = tx.first().map_or(0, |s| s.len());
        assert!(
            tx.iter().all(|s| s.len() == len),
            "TX stream lengths differ"
        );
        let out_len = len + self.max_delay() - 1;
        (0..self.n_rx)
            .map(|r| {
                let mut y = vec![Complex64::ZERO; out_len];
                for (t, stream) in tx.iter().enumerate() {
                    let conv = convolve(stream, &self.taps[r][t]);
                    for (yi, ci) in y.iter_mut().zip(conv) {
                        *yi += ci;
                    }
                }
                y
            })
            .collect()
    }

    /// Frequency response of pair `(rx, tx)` at logical subcarrier `k` of an
    /// `n_fft`-point OFDM system.
    pub fn freq_response(&self, rx: usize, tx: usize, k: i32, n_fft: usize) -> Complex64 {
        self.taps[rx][tx]
            .iter()
            .enumerate()
            .map(|(d, &h)| {
                h * Complex64::cis(-2.0 * std::f64::consts::PI * k as f64 * d as f64 / n_fft as f64)
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mimonet_dsp::complex::C64;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn identity_passes_streams_through() {
        let ch = MimoChannelMatrix::identity(2);
        let tx = vec![
            vec![C64::new(1.0, 2.0), C64::new(3.0, -1.0)],
            vec![C64::new(-1.0, 0.0), C64::new(0.0, 1.0)],
        ];
        let rx = ch.apply(&tx);
        assert_eq!(rx, tx);
    }

    #[test]
    fn flat_channel_mixes_streams() {
        let h = vec![
            C64::new(1.0, 0.0),
            C64::new(0.0, 1.0), // rx0 = x0 + j*x1
            C64::new(2.0, 0.0),
            C64::new(0.0, 0.0), // rx1 = 2*x0
        ];
        let ch = MimoChannelMatrix::new(2, 2, h);
        let tx = vec![vec![C64::ONE], vec![C64::ONE]];
        let rx = ch.apply(&tx);
        assert!(rx[0][0].dist(C64::new(1.0, 1.0)) < 1e-12);
        assert!(rx[1][0].dist(C64::new(2.0, 0.0)) < 1e-12);
    }

    #[test]
    fn rayleigh_flat_statistics() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let mut gain = 0.0;
        let trials = 5000;
        for _ in 0..trials {
            let ch = MimoChannelMatrix::rayleigh_flat(&mut rng, 2, 2);
            gain += ch.frobenius_sqr();
        }
        // E[|h|^2] = 1 per entry → E[frobenius] = 4.
        let avg = gain / trials as f64;
        assert!((avg - 4.0).abs() < 0.15, "avg Frobenius {avg}");
    }

    #[test]
    fn rayleigh_phase_is_uniformish() {
        let mut rng = ChaCha8Rng::seed_from_u64(12);
        let mut quadrants = [0usize; 4];
        for _ in 0..4000 {
            let ch = MimoChannelMatrix::rayleigh_flat(&mut rng, 1, 1);
            let a = ch.at(0, 0).arg();
            let q = ((a + std::f64::consts::PI) / (std::f64::consts::PI / 2.0)) as usize;
            quadrants[q.min(3)] += 1;
        }
        for &q in &quadrants {
            assert!((800..1200).contains(&q), "quadrants {quadrants:?}");
        }
    }

    #[test]
    fn tdl_single_tap_equals_flat() {
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        let tdl = TappedDelayLine::rayleigh(&mut rng, 2, 2, &[1.0]);
        let tx = vec![
            (0..10).map(|i| C64::cis(i as f64)).collect::<Vec<_>>(),
            (0..10)
                .map(|i| C64::cis(-0.5 * i as f64))
                .collect::<Vec<_>>(),
        ];
        let rx = tdl.apply(&tx);
        assert_eq!(rx[0].len(), 10); // no tail for single tap
        let flat = MimoChannelMatrix::new(
            2,
            2,
            vec![
                tdl.impulse_response(0, 0)[0],
                tdl.impulse_response(0, 1)[0],
                tdl.impulse_response(1, 0)[0],
                tdl.impulse_response(1, 1)[0],
            ],
        );
        let rx2 = flat.apply(&tx);
        for (a, b) in rx[0].iter().zip(&rx2[0]) {
            assert!(a.dist(*b) < 1e-12);
        }
    }

    #[test]
    fn tdl_delays_extend_output() {
        let taps = vec![vec![vec![C64::ZERO, C64::ZERO, C64::ONE]]]; // pure 2-sample delay
        let tdl = TappedDelayLine::new(taps);
        let tx = vec![vec![C64::ONE, C64::new(2.0, 0.0)]];
        let rx = tdl.apply(&tx);
        assert_eq!(rx[0].len(), 4);
        assert!(rx[0][0].abs() < 1e-12);
        assert!(rx[0][1].abs() < 1e-12);
        assert!(rx[0][2].dist(C64::ONE) < 1e-12);
        assert!(rx[0][3].dist(C64::new(2.0, 0.0)) < 1e-12);
    }

    #[test]
    fn tdl_pdp_normalization() {
        let mut rng = ChaCha8Rng::seed_from_u64(14);
        let mut gain = 0.0;
        let trials = 4000;
        for _ in 0..trials {
            let tdl = TappedDelayLine::rayleigh(&mut rng, 1, 1, &[4.0, 2.0, 1.0]);
            gain += tdl
                .impulse_response(0, 0)
                .iter()
                .map(|h| h.norm_sqr())
                .sum::<f64>();
        }
        let avg = gain / trials as f64;
        assert!((avg - 1.0).abs() < 0.05, "avg gain {avg}");
    }

    #[test]
    fn freq_response_matches_tone_through_channel() {
        let mut rng = ChaCha8Rng::seed_from_u64(15);
        let tdl = TappedDelayLine::rayleigh(&mut rng, 1, 1, &[1.0, 0.5, 0.25]);
        let n = 64;
        let k = 7i32;
        let tone: Vec<C64> = (0..4 * n)
            .map(|t| C64::cis(2.0 * std::f64::consts::PI * k as f64 * t as f64 / n as f64))
            .collect();
        let rx = tdl.apply(std::slice::from_ref(&tone));
        // In steady state, rx = H(k) * tone.
        let h = tdl.freq_response(0, 0, k, n);
        for t in 10..100 {
            assert!(rx[0][t].dist(h * tone[t]) < 1e-9, "t={t}");
        }
    }

    #[test]
    #[should_panic(expected = "TX stream lengths differ")]
    fn ragged_streams_rejected() {
        let ch = MimoChannelMatrix::identity(2);
        ch.apply(&[vec![C64::ONE], vec![C64::ONE, C64::ONE]]);
    }

    #[test]
    #[should_panic(expected = "coefficient count")]
    fn wrong_coefficient_count_rejected() {
        MimoChannelMatrix::new(2, 2, vec![C64::ONE; 3]);
    }
}
