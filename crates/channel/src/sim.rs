//! Composable end-to-end channel simulator — the workspace's stand-in for
//! the paper's USRP front ends and over-the-air propagation.
//!
//! [`ChannelSim`] applies, in physical order: MIMO fading → timing offset →
//! sampling-frequency offset → carrier frequency offset → IQ imbalance →
//! DC offset → AWGN → ADC quantization. Every knob defaults to "ideal", so
//! experiments enable exactly the impairments they study. The simulator is
//! seeded and returns the ground truth ([`ChannelTruth`]) for estimator-
//! accuracy experiments.

use crate::doppler::TimeVaryingChannel;
use crate::fading::{MimoChannelMatrix, TappedDelayLine};
use crate::impairments::{
    apply_cfo, apply_dc_offset, apply_iq_imbalance, apply_sfo, apply_timing_offset, quantize,
};
use crate::noise::{add_awgn, noise_power_for_snr_db};
use crate::tgn::TgnModel;
use mimonet_dsp::complex::Complex64;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Fading model selection.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Fading {
    /// Ideal identity channel (n_rx must equal n_tx).
    Ideal,
    /// Block flat Rayleigh, i.i.d. entries.
    RayleighFlat,
    /// Frequency-selective TGn-style model.
    Tgn(TgnModel),
    /// Time-varying flat Rayleigh (Jakes) with the given maximum Doppler
    /// in cycles/sample — the channel ages *within* the frame.
    Jakes {
        /// Maximum Doppler frequency, normalized to the sample rate.
        fd_norm: f64,
    },
}

/// Complete channel configuration. Start from `ChannelConfig::clean(...)`
/// and set fields.
#[derive(Clone, Debug)]
pub struct ChannelConfig {
    /// Transmit antennas.
    pub n_tx: usize,
    /// Receive antennas.
    pub n_rx: usize,
    /// SNR in dB (signal power is the *total* received signal power per RX
    /// antenna under unit-total-power transmission).
    pub snr_db: f64,
    /// Fading model.
    pub fading: Fading,
    /// Carrier frequency offset in subcarrier spacings (±0.5 is the
    /// acquisition range of CP-based estimators).
    pub cfo_norm: f64,
    /// Sampling frequency offset in ppm.
    pub sfo_ppm: f64,
    /// Timing offset in samples (≥ 0; the frame starts this late in the RX
    /// buffer).
    pub timing_offset: f64,
    /// IQ gain imbalance (linear fraction).
    pub iq_epsilon: f64,
    /// IQ phase skew in radians.
    pub iq_phi: f64,
    /// DC offset added at the receiver.
    pub dc_offset: Complex64,
    /// ADC bits (`None` = ideal converter).
    pub adc_bits: Option<u32>,
    /// ADC full scale.
    pub adc_full_scale: f64,
}

impl ChannelConfig {
    /// An ideal, noiseless, impairment-free wire between `n` antennas.
    pub fn clean(n_tx: usize, n_rx: usize) -> Self {
        Self {
            n_tx,
            n_rx,
            snr_db: f64::INFINITY,
            fading: Fading::Ideal,
            cfo_norm: 0.0,
            sfo_ppm: 0.0,
            timing_offset: 0.0,
            iq_epsilon: 0.0,
            iq_phi: 0.0,
            dc_offset: Complex64::ZERO,
            adc_bits: None,
            adc_full_scale: 4.0,
        }
    }

    /// AWGN-only channel at `snr_db`.
    pub fn awgn(n_tx: usize, n_rx: usize, snr_db: f64) -> Self {
        Self {
            snr_db,
            ..Self::clean(n_tx, n_rx)
        }
    }
}

/// Ground truth the simulator used for one frame, for estimator-accuracy
/// experiments.
#[derive(Clone, Debug)]
pub struct ChannelTruth {
    /// Flat channel matrix, when the fading model is flat.
    pub flat: Option<MimoChannelMatrix>,
    /// Tapped-delay-line realization, when frequency selective.
    pub tdl: Option<TappedDelayLine>,
    /// The CFO that was applied (subcarrier spacings).
    pub cfo_norm: f64,
    /// The timing offset that was applied (samples).
    pub timing_offset: f64,
    /// Noise power per RX antenna that was added.
    pub noise_power: f64,
}

/// The seeded channel simulator.
#[derive(Clone, Debug)]
pub struct ChannelSim {
    cfg: ChannelConfig,
    rng: ChaCha8Rng,
}

impl ChannelSim {
    /// Creates a simulator with a deterministic seed.
    pub fn new(cfg: ChannelConfig, seed: u64) -> Self {
        assert!(
            cfg.n_tx > 0 && cfg.n_rx > 0,
            "antenna counts must be nonzero"
        );
        if matches!(cfg.fading, Fading::Ideal) {
            assert_eq!(cfg.n_tx, cfg.n_rx, "ideal channel requires n_tx == n_rx");
        }
        Self {
            cfg,
            rng: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &ChannelConfig {
        &self.cfg
    }

    /// Passes one frame (per-TX-antenna streams) through the channel,
    /// drawing a fresh fading realization, and returns the per-RX-antenna
    /// streams plus the ground truth.
    pub fn apply(&mut self, tx: &[Vec<Complex64>]) -> (Vec<Vec<Complex64>>, ChannelTruth) {
        assert_eq!(
            tx.len(),
            self.cfg.n_tx,
            "expected {} TX streams",
            self.cfg.n_tx
        );

        // 1. Fading.
        let (mut rx, flat, tdl) = match self.cfg.fading {
            Fading::Ideal => {
                let ch = MimoChannelMatrix::identity(self.cfg.n_tx);
                (ch.apply(tx), Some(ch), None)
            }
            Fading::RayleighFlat => {
                let ch =
                    MimoChannelMatrix::rayleigh_flat(&mut self.rng, self.cfg.n_rx, self.cfg.n_tx);
                (ch.apply(tx), Some(ch), None)
            }
            Fading::Tgn(model) => {
                let ch = model.realize(&mut self.rng, self.cfg.n_rx, self.cfg.n_tx);
                (ch.apply(tx), None, Some(ch))
            }
            Fading::Jakes { fd_norm } => {
                let mut ch =
                    TimeVaryingChannel::new(&mut self.rng, self.cfg.n_rx, self.cfg.n_tx, fd_norm);
                (ch.apply(tx), None, None)
            }
        };

        // 2. Receiver clock/oscillator impairments: identical across RX
        //    chains (one LO and one sampling clock per device, as on a
        //    USRP with a shared daughterboard clock).
        let phase0 = self.rng.gen::<f64>() * 2.0 * std::f64::consts::PI;
        for stream in rx.iter_mut() {
            let mut s = apply_timing_offset(stream, self.cfg.timing_offset);
            if self.cfg.sfo_ppm != 0.0 {
                s = apply_sfo(&s, self.cfg.sfo_ppm);
            }
            if self.cfg.cfo_norm != 0.0 {
                apply_cfo(&mut s, self.cfg.cfo_norm, phase0);
            }
            if self.cfg.iq_epsilon != 0.0 || self.cfg.iq_phi != 0.0 {
                apply_iq_imbalance(&mut s, self.cfg.iq_epsilon, self.cfg.iq_phi);
            }
            if self.cfg.dc_offset != Complex64::ZERO {
                apply_dc_offset(&mut s, self.cfg.dc_offset);
            }
            *stream = s;
        }

        // 3. Noise and quantization.
        let noise_power = if self.cfg.snr_db.is_finite() {
            noise_power_for_snr_db(self.cfg.snr_db)
        } else {
            0.0
        };
        for stream in rx.iter_mut() {
            add_awgn(&mut self.rng, stream, noise_power);
            if let Some(bits) = self.cfg.adc_bits {
                quantize(stream, bits, self.cfg.adc_full_scale);
            }
        }

        let truth = ChannelTruth {
            flat,
            tdl,
            cfo_norm: self.cfg.cfo_norm,
            timing_offset: self.cfg.timing_offset,
            noise_power,
        };
        (rx, truth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mimonet_dsp::complex::{mean_power, C64};

    fn tone(n: usize, f: f64) -> Vec<C64> {
        (0..n)
            .map(|i| C64::cis(2.0 * std::f64::consts::PI * f * i as f64))
            .collect()
    }

    #[test]
    fn clean_channel_is_identity() {
        let mut sim = ChannelSim::new(ChannelConfig::clean(2, 2), 1);
        let tx = vec![tone(100, 0.03), tone(100, 0.07)];
        let (rx, truth) = sim.apply(&tx);
        assert_eq!(rx.len(), 2);
        for (r, t) in rx.iter().zip(&tx) {
            for (a, b) in r.iter().zip(t) {
                assert!(a.dist(*b) < 1e-12);
            }
        }
        assert_eq!(truth.noise_power, 0.0);
        assert!(truth.flat.is_some());
    }

    #[test]
    fn awgn_snr_measured() {
        let cfg = ChannelConfig::awgn(1, 1, 15.0);
        let mut sim = ChannelSim::new(cfg, 2);
        let tx = vec![tone(100_000, 0.01)];
        let (rx, truth) = sim.apply(&tx);
        let noise: Vec<C64> = rx[0].iter().zip(&tx[0]).map(|(a, b)| *a - *b).collect();
        let snr = mimonet_dsp::stats::lin_to_db(mean_power(&tx[0]) / mean_power(&noise));
        assert!((snr - 15.0).abs() < 0.3, "snr {snr}");
        assert!((truth.noise_power - mimonet_dsp::stats::db_to_lin(-15.0)).abs() < 1e-12);
    }

    #[test]
    fn timing_offset_recorded_and_applied() {
        let mut cfg = ChannelConfig::clean(1, 1);
        cfg.timing_offset = 25.0;
        let mut sim = ChannelSim::new(cfg, 3);
        let tx = vec![vec![C64::ONE; 10]];
        let (rx, truth) = sim.apply(&tx);
        assert_eq!(truth.timing_offset, 25.0);
        assert_eq!(rx[0].len(), 35);
        assert!(rx[0][..25].iter().all(|v| v.abs() < 1e-12));
    }

    #[test]
    fn cfo_applied_identically_across_rx_antennas() {
        let mut cfg = ChannelConfig::clean(2, 2);
        cfg.cfo_norm = 0.2;
        let mut sim = ChannelSim::new(cfg, 4);
        let tx = vec![vec![C64::ONE; 64], vec![C64::ONE; 64]];
        let (rx, _) = sim.apply(&tx);
        // Identity fading + same input ⇒ the two RX streams stay equal if
        // (and only if) the CFO phase trajectory is shared.
        for (a, b) in rx[0].iter().zip(&rx[1]) {
            assert!(a.dist(*b) < 1e-12);
        }
        // The rotation rate itself is covered by the impairments tests.
    }

    #[test]
    fn rayleigh_frames_differ_between_applies() {
        let cfg = ChannelConfig {
            fading: Fading::RayleighFlat,
            ..ChannelConfig::clean(2, 2)
        };
        let mut sim = ChannelSim::new(cfg, 5);
        let tx = vec![vec![C64::ONE; 4], vec![C64::ONE; 4]];
        let (_, t1) = sim.apply(&tx);
        let (_, t2) = sim.apply(&tx);
        assert_ne!(t1.flat, t2.flat, "block fading must redraw per frame");
    }

    #[test]
    fn tgn_channel_extends_stream() {
        let cfg = ChannelConfig {
            fading: Fading::Tgn(TgnModel::D),
            ..ChannelConfig::clean(2, 2)
        };
        let mut sim = ChannelSim::new(cfg, 6);
        let tx = vec![vec![C64::ONE; 50], vec![C64::ONE; 50]];
        let (rx, truth) = sim.apply(&tx);
        let spread = truth.tdl.as_ref().unwrap().max_delay();
        assert!(spread > 1);
        assert_eq!(rx[0].len(), 50 + spread - 1);
    }

    #[test]
    fn same_seed_reproduces() {
        let cfg = ChannelConfig {
            fading: Fading::RayleighFlat,
            snr_db: 10.0,
            ..ChannelConfig::clean(2, 2)
        };
        let tx = vec![tone(64, 0.05), tone(64, 0.11)];
        let mut s1 = ChannelSim::new(cfg.clone(), 42);
        let mut s2 = ChannelSim::new(cfg, 42);
        let (r1, _) = s1.apply(&tx);
        let (r2, _) = s2.apply(&tx);
        assert_eq!(r1, r2);
    }

    #[test]
    #[should_panic(expected = "ideal channel requires")]
    fn ideal_requires_square() {
        ChannelSim::new(ChannelConfig::clean(2, 1), 0);
    }
}
