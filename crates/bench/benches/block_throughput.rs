//! Criterion benchmarks of the flowgraph runtime (experiment T3): raw
//! scheduler overhead and the transceiver blocks running as a graph, on
//! both schedulers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mimonet::blocks::build_link_flowgraph;
use mimonet::{RxConfig, TxConfig};
use mimonet_channel::ChannelConfig;
use mimonet_runtime::{Flowgraph, Item, MapBlock, MessageHub, VectorSink, VectorSource};

fn bench_scheduler_overhead(c: &mut Criterion) {
    // A trivial 3-block pipeline pushing N items: measures per-item
    // scheduling cost.
    let mut g = c.benchmark_group("scheduler");
    for &n in &[10_000usize, 100_000] {
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("map_pipeline", n), &n, |b, &n| {
            b.iter(|| {
                let mut fg = Flowgraph::new();
                let src = fg.add(
                    VectorSource::new((0..n).map(|i| Item::Real(i as f64)).collect())
                        .with_chunk(4096),
                );
                let map = fg.add(MapBlock::new("x2", |i| Item::Real(i.real() * 2.0)));
                let (sink, handle) = VectorSink::new();
                let sink = fg.add(sink);
                fg.connect(src, 0, map, 0).unwrap();
                fg.connect(map, 0, sink, 0).unwrap();
                fg.run(&MessageHub::new()).unwrap();
                handle.len()
            });
        });
    }
    g.finish();
}

fn bench_transceiver_graph(c: &mut Criterion) {
    let psdu_len = 200;
    let psdus: Vec<u8> = vec![0x5A; 4 * psdu_len];
    let mut g = c.benchmark_group("transceiver_graph");
    g.sample_size(10);
    g.bench_function("single_threaded_4_frames", |b| {
        b.iter(|| {
            let (mut fg, handle, _) = build_link_flowgraph(
                TxConfig::new(9).unwrap(),
                ChannelConfig::awgn(2, 2, 28.0),
                RxConfig::new(2),
                &psdus,
                psdu_len,
                3,
            );
            fg.run(&MessageHub::new()).unwrap();
            handle.len()
        });
    });
    g.bench_function("thread_per_block_4_frames", |b| {
        b.iter(|| {
            let (fg, handle, _) = build_link_flowgraph(
                TxConfig::new(9).unwrap(),
                ChannelConfig::awgn(2, 2, 28.0),
                RxConfig::new(2),
                &psdus,
                psdu_len,
                3,
            );
            fg.run_threaded(std::sync::Arc::new(MessageHub::new()))
                .unwrap();
            handle.len()
        });
    });
    g.finish();
}

criterion_group!(benches, bench_scheduler_overhead, bench_transceiver_graph);
criterion_main!(benches);
