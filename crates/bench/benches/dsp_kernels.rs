//! Criterion microbenchmarks of the DSP substrate: the kernels every
//! received sample passes through (part of experiment T3).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mimonet_dsp::complex::C64;
use mimonet_dsp::correlate::{
    normalized_cross_correlate, normalized_cross_correlate_into,
    normalized_cross_correlate_reference, SlidingAutocorrelator,
};
use mimonet_dsp::fft::Fft;
use mimonet_dsp::resample::resample;

fn signal(n: usize) -> Vec<C64> {
    (0..n)
        .map(|i| C64::cis(i as f64 * 0.37) * (1.0 + 0.1 * (i % 7) as f64))
        .collect()
}

fn bench_fft(c: &mut Criterion) {
    let mut g = c.benchmark_group("fft");
    for &n in &[64usize, 256, 1024] {
        let plan = Fft::new(n);
        let x = signal(n);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("forward", n), &n, |b, _| {
            let mut buf = x.clone();
            b.iter(|| {
                plan.forward(&mut buf);
            });
        });
    }
    g.finish();
}

fn bench_autocorrelator(c: &mut Criterion) {
    let x = signal(8192);
    c.benchmark_group("sync")
        .throughput(Throughput::Elements(x.len() as u64))
        .bench_function("sliding_autocorr_16_32", |b| {
            b.iter(|| {
                let mut corr = SlidingAutocorrelator::new(16, 32);
                let mut peak = 0.0f64;
                for &s in &x {
                    corr.push(s);
                    peak = peak.max(corr.metric());
                }
                peak
            });
        });
}

fn bench_cross_correlate(c: &mut Criterion) {
    let x = signal(2048);
    let reference = signal(64);
    c.bench_function("cross_correlate_2048x64", |b| {
        b.iter(|| normalized_cross_correlate(&x, &reference));
    });

    // Before/after pair for the hot-path optimization: per-lag window
    // energy recomputed from scratch vs the O(1) sliding update writing
    // into a reused buffer.
    let mut g = c.benchmark_group("cross_correlate_4096x64");
    g.throughput(Throughput::Elements(4096));
    let x = signal(4096);
    g.bench_function("reference", |b| {
        b.iter(|| normalized_cross_correlate_reference(&x, &reference));
    });
    g.bench_function("sliding_into", |b| {
        let mut out = Vec::new();
        b.iter(|| normalized_cross_correlate_into(&x, &reference, &mut out));
    });
    g.finish();
}

fn bench_resample(c: &mut Criterion) {
    let x = signal(4096);
    c.bench_function("resample_20ppm_4096", |b| {
        b.iter(|| resample(&x, 1.0 / (1.0 + 20e-6), 16));
    });
}

criterion_group!(
    benches,
    bench_fft,
    bench_autocorrelator,
    bench_cross_correlate,
    bench_resample
);
criterion_main!(benches);
