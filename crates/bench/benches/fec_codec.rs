//! Criterion benchmarks of the FEC pipeline: encode, interleave and
//! Viterbi decode at frame-realistic sizes (part of experiment T3).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mimonet_fec::interleaver::Interleaver;
use mimonet_fec::puncture::{depuncture_soft, puncture, CodeRate};
use mimonet_fec::viterbi::{decode_soft_unterminated, reference, ViterbiDecoder};
use mimonet_fec::{ConvEncoder, Scrambler};

fn bits(n: usize) -> Vec<u8> {
    (0..n)
        .map(|i| ((i * 1103515245 + 12345) >> 16 & 1) as u8)
        .collect()
}

fn bench_encoder(c: &mut Criterion) {
    let data = bits(8192);
    c.benchmark_group("fec")
        .throughput(Throughput::Elements(data.len() as u64))
        .bench_function("conv_encode_8k", |b| {
            b.iter(|| ConvEncoder::new().encode(&data));
        });
}

fn bench_viterbi(c: &mut Criterion) {
    let mut g = c.benchmark_group("viterbi");
    for &n in &[1024usize, 4096] {
        let data = bits(n);
        let coded = ConvEncoder::new().encode(&data);
        let llrs: Vec<f64> = coded
            .iter()
            .map(|&b| if b == 0 { 4.0 } else { -4.0 })
            .collect();
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("soft_unterminated", n), &n, |b, _| {
            b.iter(|| decode_soft_unterminated(&llrs).unwrap());
        });
        // Before/after pair for the hot-path optimization: the
        // closure-per-transition reference decoder vs the table-driven
        // decoder reusing its metric/survivor buffers across calls.
        g.bench_with_input(BenchmarkId::new("soft_reference", n), &n, |b, _| {
            b.iter(|| reference::decode_soft_unterminated(&llrs).unwrap());
        });
        g.bench_with_input(BenchmarkId::new("soft_table_into", n), &n, |b, _| {
            let mut dec = ViterbiDecoder::new();
            let mut out = Vec::new();
            b.iter(|| dec.decode_soft_unterminated_into(&llrs, &mut out).unwrap());
        });
    }
    g.finish();
}

fn bench_punctured_path(c: &mut Criterion) {
    let data = bits(4096);
    let coded = ConvEncoder::new().encode(&data);
    c.bench_function("puncture_depuncture_r34_8k", |b| {
        b.iter(|| {
            let tx = puncture(&coded, CodeRate::R3_4);
            let soft: Vec<f64> = tx
                .iter()
                .map(|&x| if x == 0 { 1.0 } else { -1.0 })
                .collect();
            depuncture_soft(&soft, CodeRate::R3_4, coded.len())
        });
    });
}

fn bench_scrambler(c: &mut Criterion) {
    let data = bits(65536);
    c.benchmark_group("scrambler")
        .throughput(Throughput::Elements(data.len() as u64))
        .bench_function("scramble_64k", |b| {
            b.iter(|| Scrambler::new(0x5D).scramble(&data));
        });
}

fn bench_interleaver(c: &mut Criterion) {
    let il = Interleaver::ht(312, 6, 1, 2); // 64-QAM HT symbol, stream 2
    let data = bits(312);
    c.bench_function("ht_interleave_64qam_symbol", |b| {
        b.iter(|| il.interleave(&data));
    });
}

criterion_group!(
    benches,
    bench_encoder,
    bench_viterbi,
    bench_punctured_path,
    bench_scrambler,
    bench_interleaver
);
criterion_main!(benches);
