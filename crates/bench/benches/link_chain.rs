//! Criterion benchmarks of the whole transceiver: TX chain, RX chain and
//! a full link round trip — the "can this run a 20 MHz stream" question
//! (experiment T3's headline row).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mimonet::{Receiver, ReferenceReceiver, RxConfig, RxFrame, RxWorkspace, Transmitter, TxConfig};
use mimonet_channel::{ChannelConfig, ChannelSim};
use mimonet_dsp::complex::Complex64;

fn padded_frame(tx: &Transmitter, psdu: &[u8]) -> Vec<Vec<Complex64>> {
    let mut streams = tx.transmit(psdu).expect("valid PSDU");
    for s in &mut streams {
        let mut p = vec![Complex64::ZERO; 160];
        p.extend_from_slice(s);
        p.extend(vec![Complex64::ZERO; 80]);
        *s = p;
    }
    streams
}

fn bench_tx(c: &mut Criterion) {
    let mut g = c.benchmark_group("tx_chain");
    for &mcs in &[0u8, 9, 15] {
        let tx = Transmitter::new(TxConfig::new(mcs).unwrap());
        let psdu = vec![0xA5u8; 1000];
        let samples = tx.frame_len(psdu.len()) as u64;
        g.throughput(Throughput::Elements(samples));
        g.bench_with_input(BenchmarkId::new("mcs", mcs), &mcs, |b, _| {
            b.iter(|| tx.transmit(&psdu).unwrap());
        });
    }
    g.finish();
}

fn bench_rx(c: &mut Criterion) {
    let mut g = c.benchmark_group("rx_chain");
    for &mcs in &[9u8, 15] {
        let tx = Transmitter::new(TxConfig::new(mcs).unwrap());
        let psdu = vec![0xA5u8; 1000];
        let streams = padded_frame(&tx, &psdu);
        let mut chan = ChannelSim::new(ChannelConfig::awgn(2, 2, 30.0), 1);
        let (rx_streams, _) = chan.apply(&streams);
        let rx = Receiver::new(RxConfig::new(2));
        let samples = rx_streams[0].len() as u64;
        g.throughput(Throughput::Elements(samples));
        g.bench_with_input(BenchmarkId::new("mcs", mcs), &mcs, |b, _| {
            b.iter(|| rx.receive(&rx_streams).expect("decodes"));
        });
    }
    g.finish();
}

/// Before/after pair for the hot-path optimization: the copy-based
/// pre-optimization receiver vs the zero-copy workspace receiver, on a
/// single-frame capture with a realistic idle tail (the reference pays
/// for copying and CFO-correcting the tail; the workspace path stops at
/// the end of the frame).
fn bench_rx_before_after(c: &mut Criterion) {
    let tx = Transmitter::new(TxConfig::new(9).unwrap());
    let psdu = vec![0xA5u8; 500];
    let mut streams = padded_frame(&tx, &psdu);
    for s in &mut streams {
        s.extend(vec![Complex64::ZERO; 16_000]);
    }
    let mut chan = ChannelSim::new(ChannelConfig::awgn(2, 2, 30.0), 1);
    let (rx_streams, _) = chan.apply(&streams);
    let samples = rx_streams[0].len() as u64;

    let mut g = c.benchmark_group("rx_chain_mcs9_500B");
    g.throughput(Throughput::Elements(samples));
    g.bench_function("reference", |b| {
        let rx = ReferenceReceiver::new(RxConfig::new(2));
        b.iter(|| rx.receive(&rx_streams).expect("decodes"));
    });
    g.bench_function("workspace", |b| {
        let rx = Receiver::new(RxConfig::new(2));
        let views: Vec<&[Complex64]> = rx_streams.iter().map(|a| a.as_slice()).collect();
        let mut ws = RxWorkspace::new();
        let mut frame = RxFrame::default();
        b.iter(|| {
            rx.receive_into(&views, &mut ws, &mut frame)
                .expect("decodes");
            frame.psdu.len()
        });
    });
    g.finish();
}

/// Scan before/after: a multi-frame capture where the reference scan
/// copies an O(remaining-capture) window per attempt while the view-based
/// scan borrows slices.
fn bench_scan_before_after(c: &mut Criterion) {
    let tx = Transmitter::new(TxConfig::new(9).unwrap());
    let mut capture: Vec<Vec<Complex64>> = vec![vec![Complex64::ZERO; 200]; 2];
    for k in 0..4usize {
        let psdu: Vec<u8> = (0..220).map(|i| (i + 13 * k) as u8).collect();
        let streams = tx.transmit(&psdu).unwrap();
        for (cap, s) in capture.iter_mut().zip(&streams) {
            cap.extend_from_slice(s);
            cap.extend(vec![Complex64::ZERO; 12_000]);
        }
    }
    let mut chan = ChannelSim::new(ChannelConfig::awgn(2, 2, 30.0), 3);
    let (noisy, _) = chan.apply(&capture);
    let samples = noisy[0].len() as u64;

    let mut g = c.benchmark_group("scan_4_frames");
    g.sample_size(20);
    g.throughput(Throughput::Elements(samples));
    g.bench_function("reference", |b| {
        let rx = ReferenceReceiver::new(RxConfig::new(2));
        b.iter(|| {
            let (frames, _) = rx.scan(&noisy);
            assert_eq!(frames.len(), 4);
            frames.len()
        });
    });
    g.bench_function("views", |b| {
        let rx = Receiver::new(RxConfig::new(2));
        b.iter(|| {
            let (frames, _) = rx.scan(&noisy);
            assert_eq!(frames.len(), 4);
            frames.len()
        });
    });
    g.finish();
}

fn bench_full_link(c: &mut Criterion) {
    let tx = Transmitter::new(TxConfig::new(9).unwrap());
    let rx = Receiver::new(RxConfig::new(2));
    let psdu = vec![0x3Cu8; 500];
    c.bench_function("full_link_mcs9_500B", |b| {
        let mut chan = ChannelSim::new(ChannelConfig::awgn(2, 2, 25.0), 2);
        b.iter(|| {
            let streams = padded_frame(&tx, &psdu);
            let (rx_streams, _) = chan.apply(&streams);
            rx.receive(&rx_streams).expect("decodes")
        });
    });
}

criterion_group!(
    benches,
    bench_tx,
    bench_rx,
    bench_rx_before_after,
    bench_scan_before_after,
    bench_full_link
);
criterion_main!(benches);
