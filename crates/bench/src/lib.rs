//! Evaluation harness support: sweep drivers and table formatting shared
//! by the figure-regeneration binaries (see EXPERIMENTS.md for the
//! figure/table index).
//!
//! Every binary accepts `--quick` to cut trial counts ~10x for smoke
//! runs; published numbers use the defaults.

/// Runtime knobs common to all experiment binaries.
#[derive(Clone, Copy, Debug)]
pub struct RunScale {
    /// Multiplier applied to trial/frame counts (1.0 = paper-quality).
    pub scale: f64,
}

impl RunScale {
    /// Parses `--quick` (0.1x) / `--thorough` (3x) from the process args.
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().collect();
        let scale = if args.iter().any(|a| a == "--quick") {
            0.1
        } else if args.iter().any(|a| a == "--thorough") {
            3.0
        } else {
            1.0
        };
        Self { scale }
    }

    /// Scales a nominal count, keeping at least `min`.
    pub fn count(&self, nominal: usize, min: usize) -> usize {
        ((nominal as f64 * self.scale) as usize).max(min)
    }
}

/// Prints a table header row and its underline.
pub fn header(cols: &[&str]) {
    let row: Vec<String> = cols.iter().map(|c| format!("{c:>12}")).collect();
    let line = row.join(" ");
    println!("{line}");
    println!("{}", "-".repeat(line.len()));
}

/// Prints one data row of f64 cells (NaN renders as "-").
pub fn row(label: f64, cells: &[f64]) {
    print!("{label:>12.1}");
    for &c in cells {
        if c.is_nan() {
            print!(" {:>12}", "-");
        } else if c != 0.0 && c.abs() < 1e-3 {
            print!(" {c:>12.2e}");
        } else {
            print!(" {c:>12.4}");
        }
    }
    println!();
}

/// Standard SNR grid for waterfall curves.
pub fn snr_grid(lo: i32, hi: i32, step: i32) -> Vec<f64> {
    (lo..=hi).step_by(step as usize).map(|s| s as f64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_counts() {
        let quick = RunScale { scale: 0.1 };
        assert_eq!(quick.count(1000, 10), 100);
        assert_eq!(quick.count(50, 10), 10);
        let full = RunScale { scale: 1.0 };
        assert_eq!(full.count(1000, 10), 1000);
    }

    #[test]
    fn grid() {
        assert_eq!(snr_grid(0, 10, 5), vec![0.0, 5.0, 10.0]);
    }
}
