//! Evaluation harness support: sweep drivers and table formatting shared
//! by the figure-regeneration binaries (see EXPERIMENTS.md for the
//! figure/table index).
//!
//! Every binary accepts `--quick` to cut trial counts ~10x for smoke
//! runs and `--threads N` to pin the sweep-engine worker count (0 /
//! absent = one per CPU); published numbers use the defaults. Results are
//! bit-identical for any `--threads` value — see `mimonet::sweep`.
//! Alongside the stdout tables, each binary writes a structured JSON
//! series file into `results/` (see [`report`]).

pub mod report;
pub mod seeds;

use mimonet::sweep::SweepSpec;

/// Runtime knobs common to all experiment binaries.
#[derive(Clone, Copy, Debug)]
pub struct RunScale {
    /// Multiplier applied to trial/frame counts (1.0 = paper-quality).
    pub scale: f64,
}

impl RunScale {
    /// Parses `--quick` (0.1x) / `--thorough` (3x) from the process args.
    pub fn from_args() -> Self {
        Self::from_arg_list(&std::env::args().collect::<Vec<_>>())
    }

    fn from_arg_list(args: &[String]) -> Self {
        let scale = if args.iter().any(|a| a == "--quick") {
            0.1
        } else if args.iter().any(|a| a == "--thorough") {
            3.0
        } else {
            1.0
        };
        Self { scale }
    }

    /// Scales a nominal count, keeping at least `min`.
    pub fn count(&self, nominal: usize, min: usize) -> usize {
        ((nominal as f64 * self.scale) as usize).max(min)
    }
}

/// Full command-line options for an experiment binary: run scale plus the
/// sweep-engine thread count.
#[derive(Clone, Copy, Debug)]
pub struct BenchOpts {
    /// Trial-count multiplier (`--quick` / `--thorough`).
    pub scale: RunScale,
    /// Sweep worker threads (`--threads N`; 0 = one per CPU).
    pub threads: usize,
    /// `--telemetry`: embed a telemetry snapshot (merged outcome
    /// taxonomy, stage/registry counters) under `telemetry` in the JSON
    /// report. Off by default — snapshots are bulky.
    pub telemetry: bool,
}

impl BenchOpts {
    /// Parses the process arguments.
    pub fn from_args() -> Self {
        Self::from_arg_list(&std::env::args().collect::<Vec<_>>())
    }

    fn from_arg_list(args: &[String]) -> Self {
        let mut threads = 0usize;
        let mut iter = args.iter().peekable();
        while let Some(a) = iter.next() {
            if let Some(v) = a.strip_prefix("--threads=") {
                threads = v.parse().expect("--threads=N takes an integer");
            } else if a == "--threads" {
                let v = iter.next().expect("--threads requires a value");
                threads = v.parse().expect("--threads takes an integer");
            }
        }
        Self {
            scale: RunScale::from_arg_list(args),
            threads,
            telemetry: args.iter().any(|a| a == "--telemetry"),
        }
    }

    /// Scales a nominal count, keeping at least `min`.
    pub fn count(&self, nominal: usize, min: usize) -> usize {
        self.scale.count(nominal, min)
    }

    /// Builds a [`SweepSpec`] wired to this binary's seed and thread
    /// settings.
    pub fn spec<P>(
        &self,
        name: impl Into<String>,
        points: Vec<P>,
        trials: usize,
        seed: u64,
    ) -> SweepSpec<P> {
        SweepSpec::new(name, points, trials)
            .seed(seed)
            .threads(self.threads)
    }
}

/// Prints a table header row and its underline.
pub fn header(cols: &[&str]) {
    let row: Vec<String> = cols.iter().map(|c| format!("{c:>12}")).collect();
    let line = row.join(" ");
    println!("{line}");
    println!("{}", "-".repeat(line.len()));
}

/// Prints one data row of f64 cells (NaN renders as "-").
pub fn row(label: f64, cells: &[f64]) {
    print!("{label:>12.1}");
    for &c in cells {
        if c.is_nan() {
            print!(" {:>12}", "-");
        } else if c != 0.0 && c.abs() < 1e-3 {
            print!(" {c:>12.2e}");
        } else {
            print!(" {c:>12.4}");
        }
    }
    println!();
}

/// Standard SNR grid for waterfall curves.
pub fn snr_grid(lo: i32, hi: i32, step: i32) -> Vec<f64> {
    (lo..=hi).step_by(step as usize).map(|s| s as f64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn scale_counts() {
        let quick = RunScale { scale: 0.1 };
        assert_eq!(quick.count(1000, 10), 100);
        assert_eq!(quick.count(50, 10), 10);
        let full = RunScale { scale: 1.0 };
        assert_eq!(full.count(1000, 10), 1000);
    }

    #[test]
    fn grid() {
        assert_eq!(snr_grid(0, 10, 5), vec![0.0, 5.0, 10.0]);
    }

    #[test]
    fn opts_parse_threads() {
        let o = BenchOpts::from_arg_list(&args(&["bin", "--threads", "4"]));
        assert_eq!(o.threads, 4);
        assert_eq!(o.scale.scale, 1.0);
        let o = BenchOpts::from_arg_list(&args(&["bin", "--quick", "--threads=2"]));
        assert_eq!(o.threads, 2);
        assert_eq!(o.scale.scale, 0.1);
        let o = BenchOpts::from_arg_list(&args(&["bin"]));
        assert_eq!(o.threads, 0);
        assert!(!o.telemetry);
        let o = BenchOpts::from_arg_list(&args(&["bin", "--telemetry"]));
        assert!(o.telemetry);
    }

    #[test]
    fn opts_build_spec() {
        let o = BenchOpts::from_arg_list(&args(&["bin", "--threads", "3"]));
        let spec = o.spec("s", vec![1.0, 2.0], 10, 42);
        assert_eq!(spec.threads, 3);
        assert_eq!(spec.seed, 42);
        assert_eq!(spec.points.len(), 2);
        assert_eq!(spec.trials, 10);
    }
}
