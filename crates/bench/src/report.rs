//! Structured JSON figure reports.
//!
//! Every experiment binary writes `results/<figure>.json` next to its
//! stdout table so plots and regression diffs never re-parse text. The
//! schema (documented in EXPERIMENTS.md):
//!
//! ```json
//! {
//!   "figure": "fig_ber_mimo",
//!   "title": "2x2 SM pre-FEC BER vs SNR",
//!   "x_label": "SNR dB",
//!   "seed": 555,
//!   "threads": 8,
//!   "scale": 1.0,
//!   "wall_s": 12.3,
//!   "series": [
//!     {"label": "ZF", "x": [0.0, ...], "y": [0.31, ...], "points": [...]}
//!   ],
//!   "meta": { ... figure-specific extras ... }
//! }
//! ```
//!
//! `points` carries the full per-point statistics dump (e.g. serialized
//! `LinkStats`) when the binary provides it; `y` is always the headline
//! curve. JSON rendering is deterministic (insertion-ordered keys,
//! shortest-roundtrip floats), so identical sweeps produce identical
//! bytes — the property the determinism tests assert end to end.

use serde::{json, Serialize, Value};
use std::io::Write as _;
use std::path::PathBuf;
use std::time::Instant;

/// One curve of a figure.
pub struct Series {
    /// Legend label.
    pub label: String,
    /// X coordinates.
    pub x: Vec<f64>,
    /// Headline Y values (BER, PER, RMSE, ...).
    pub y: Vec<f64>,
    /// Optional full statistics per point.
    pub points: Vec<Value>,
}

impl Serialize for Series {
    fn serialize(&self) -> Value {
        let mut fields = vec![
            ("label", self.label.serialize()),
            ("x", self.x.serialize()),
            ("y", self.y.serialize()),
        ];
        if !self.points.is_empty() {
            fields.push(("points", Value::Array(self.points.clone())));
        }
        Value::object(fields)
    }
}

/// True when `MIMONET_DETERMINISTIC` is set (to anything but `0`): the
/// written report drops the volatile `wall_s` and run-dependent `threads`
/// fields, so `results/*.json` from different `--threads` runs are
/// byte-identical — the property `scripts`/CI compare for the chaos
/// figure.
fn deterministic_from_env() -> bool {
    std::env::var("MIMONET_DETERMINISTIC").is_ok_and(|v| v != "0")
}

/// Accumulates a figure's curves and writes the JSON report.
pub struct FigureReport {
    name: String,
    title: String,
    x_label: String,
    seed: u64,
    threads: usize,
    scale: f64,
    deterministic: bool,
    series: Vec<Series>,
    meta: Vec<(String, Value)>,
    telemetry: Option<Value>,
    started: Instant,
}

impl FigureReport {
    /// Starts a report; the wall clock runs from here to [`write`].
    ///
    /// [`write`]: FigureReport::write
    pub fn new(
        name: impl Into<String>,
        title: impl Into<String>,
        x_label: impl Into<String>,
        seed: u64,
        opts: &crate::BenchOpts,
    ) -> Self {
        Self {
            name: name.into(),
            title: title.into(),
            x_label: x_label.into(),
            seed,
            threads: opts.threads,
            scale: opts.scale.scale,
            deterministic: deterministic_from_env(),
            series: Vec::new(),
            meta: Vec::new(),
            telemetry: None,
            started: Instant::now(),
        }
    }

    /// Whether the report is in deterministic mode (set by the
    /// `MIMONET_DETERMINISTIC` environment or [`Self::deterministic`]).
    /// Binaries use this to decide whether telemetry snapshots should
    /// include wall-clock fields before embedding them.
    pub fn is_deterministic(&self) -> bool {
        self.deterministic
    }

    /// Embeds a telemetry snapshot under the top-level `telemetry` key
    /// (the `--telemetry` flag's payload). Callers serialize snapshots
    /// with wall-clock fields stripped in deterministic mode (e.g.
    /// `GraphSnapshot::to_value(!report.is_deterministic())`), keeping
    /// reports byte-comparable across thread counts.
    pub fn telemetry(&mut self, snapshot: Value) -> &mut Self {
        self.telemetry = Some(snapshot);
        self
    }

    /// Adds a curve.
    pub fn series(&mut self, label: impl Into<String>, x: &[f64], y: &[f64]) -> &mut Self {
        self.series_with_points(label, x, y, Vec::new())
    }

    /// Adds a curve with full per-point statistics dumps.
    pub fn series_with_points(
        &mut self,
        label: impl Into<String>,
        x: &[f64],
        y: &[f64],
        points: Vec<Value>,
    ) -> &mut Self {
        assert_eq!(x.len(), y.len(), "series x/y length mismatch");
        self.series.push(Series {
            label: label.into(),
            x: x.to_vec(),
            y: y.to_vec(),
            points,
        });
        self
    }

    /// Attaches a figure-specific extra under `meta.<key>`.
    pub fn meta(&mut self, key: impl Into<String>, value: Value) -> &mut Self {
        self.meta.push((key.into(), value));
        self
    }

    /// Forces deterministic output on or off, overriding the
    /// `MIMONET_DETERMINISTIC` environment default.
    pub fn deterministic(&mut self, on: bool) -> &mut Self {
        self.deterministic = on;
        self
    }

    /// Renders the report (without the volatile `wall_s` field) — used by
    /// the determinism tests, which need byte-stable output. In
    /// deterministic mode the `threads` field is omitted too, so reports
    /// from different `--threads` runs can be byte-compared.
    pub fn to_value(&self) -> Value {
        let mut fields = vec![
            ("figure", self.name.serialize()),
            ("title", self.title.serialize()),
            ("x_label", self.x_label.serialize()),
            ("seed", self.seed.serialize()),
        ];
        if !self.deterministic {
            fields.push(("threads", self.threads.serialize()));
        }
        fields.push(("scale", self.scale.serialize()));
        fields.push(("series", self.series.serialize()));
        if let Some(t) = &self.telemetry {
            fields.push(("telemetry", t.clone()));
        }
        if !self.meta.is_empty() {
            fields.push((
                "meta",
                Value::Object(
                    self.meta
                        .iter()
                        .map(|(k, v)| (k.clone(), v.clone()))
                        .collect(),
                ),
            ));
        }
        Value::object(fields)
    }

    /// Writes `results/<figure>.json` (directory from
    /// `MIMONET_RESULTS_DIR`, default `results`), appending the measured
    /// wall time. Returns the path written.
    pub fn write(&self) -> std::io::Result<PathBuf> {
        let dir = std::env::var("MIMONET_RESULTS_DIR").unwrap_or_else(|_| "results".into());
        let dir = PathBuf::from(dir);
        std::fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{}.json", self.name));

        let mut value = self.to_value();
        if !self.deterministic {
            let wall_s = self.started.elapsed().as_secs_f64();
            if let Value::Object(fields) = &mut value {
                // Keep wall_s before the bulky series array for readability.
                let at = fields
                    .iter()
                    .position(|(k, _)| k == "series")
                    .unwrap_or(fields.len());
                fields.insert(at, ("wall_s".into(), wall_s.serialize()));
            }
        }

        let mut file = std::fs::File::create(&path)?;
        file.write_all(json::to_string_pretty(&value).as_bytes())?;
        file.write_all(b"\n")?;
        Ok(path)
    }

    /// Writes the report and prints the destination as a trailing comment
    /// line, swallowing (but reporting) IO errors — figure output on
    /// stdout must survive an unwritable results directory.
    pub fn finish(&self) {
        match self.write() {
            Ok(path) => println!("# json: {}", path.display()),
            Err(e) => eprintln!("# warning: could not write {}.json: {e}", self.name),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BenchOpts, RunScale};

    fn opts() -> BenchOpts {
        BenchOpts {
            scale: RunScale { scale: 1.0 },
            threads: 2,
            telemetry: false,
        }
    }

    #[test]
    fn telemetry_snapshot_embedded() {
        let mut r = FigureReport::new("fig_tel", "T", "x", 1, &opts());
        r.series("s", &[1.0], &[2.0]);
        assert!(!json::to_string(&r.to_value()).contains("telemetry"));
        r.telemetry(Value::object([("outcomes", 3u64.serialize())]));
        let s = json::to_string(&r.to_value());
        assert!(s.contains("\"telemetry\":{\"outcomes\":3}"), "{s}");
    }

    #[test]
    fn report_value_shape() {
        let mut r = FigureReport::new("fig_test", "A test", "SNR dB", 7, &opts());
        r.series("curve", &[1.0, 2.0], &[0.5, 0.25]);
        r.meta("note", "hello".serialize());
        let s = json::to_string(&r.to_value());
        assert!(s.contains("\"figure\":\"fig_test\""));
        assert!(s.contains("\"seed\":7"));
        assert!(s.contains("\"threads\":2"));
        assert!(s.contains("\"label\":\"curve\""));
        assert!(s.contains("\"x\":[1.0,2.0]"));
        assert!(s.contains("\"note\":\"hello\""));
        assert!(
            !s.contains("wall_s"),
            "to_value must omit the volatile field"
        );
    }

    #[test]
    fn report_value_is_deterministic() {
        let build = || {
            let mut r = FigureReport::new("fig_det", "Det", "x", 3, &opts());
            r.series("a", &[0.0], &[1.0e-5]);
            json::to_string(&r.to_value())
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn deterministic_mode_strips_volatile_fields() {
        let dir = std::env::temp_dir().join(format!("mimonet_det_report_{}", std::process::id()));
        std::env::set_var("MIMONET_RESULTS_DIR", &dir);
        let mut r = FigureReport::new("fig_det_mode", "D", "x", 1, &opts());
        r.series("s", &[1.0], &[2.0]).deterministic(true);
        let s = json::to_string(&r.to_value());
        assert!(!s.contains("\"threads\""), "deterministic omits threads");
        let path = r.write().expect("write");
        let text = std::fs::read_to_string(&path).expect("read back");
        assert!(!text.contains("wall_s"), "deterministic omits wall_s");
        assert!(!text.contains("\"threads\""));
        std::env::remove_var("MIMONET_RESULTS_DIR");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_series_rejected() {
        FigureReport::new("f", "t", "x", 0, &opts()).series("bad", &[1.0], &[]);
    }

    #[test]
    fn write_creates_file() {
        let dir = std::env::temp_dir().join(format!("mimonet_report_{}", std::process::id()));
        std::env::set_var("MIMONET_RESULTS_DIR", &dir);
        let mut r = FigureReport::new("fig_write_test", "W", "x", 1, &opts());
        r.series("s", &[1.0], &[2.0]);
        let path = r.write().expect("write");
        let text = std::fs::read_to_string(&path).expect("read back");
        assert!(text.contains("\"wall_s\""));
        assert!(text.trim_start().starts_with('{'));
        std::env::remove_var("MIMONET_RESULTS_DIR");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
