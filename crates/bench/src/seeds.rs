//! Master RNG seeds for every figure and table, in one place.
//!
//! Each experiment binary owns one (occasionally two) master seeds; the
//! sweep engine derives every per-point, per-shard stream from them (see
//! `mimonet::sweep::shard_seed`). Paired comparisons — e.g. a detector
//! ablation where every arm must see the same channel realizations —
//! share a master seed across arms, so equal point indices draw equal
//! channels. Changing a value here changes that figure's noise
//! realizations and nothing else.

/// F1 — Van de Beek metric traces.
pub const SYNC_METRIC: u64 = 50;
/// F2 — timing lock probability.
pub const SYNC_TIMING: u64 = 1000;
/// F3 — CFO estimation RMSE.
pub const SYNC_CFO: u64 = 77;
/// F4 — channel-estimation MSE.
pub const CHANEST: u64 = 31337;
/// F5 — SNR-estimator accuracy.
pub const SNR_EST: u64 = 4242;
/// F6 — SISO BER waterfalls.
pub const BER_SISO: u64 = 9090;
/// F7 — 2×2 spatial-multiplexing BER (shared by the ZF/MMSE/ML arms).
pub const BER_MIMO: u64 = 555;
/// F7 — the SISO baseline curve.
pub const BER_MIMO_SISO: u64 = 777;
/// F8a — PER vs payload size.
pub const PER_PAYLOAD: u64 = 808;
/// F8b — PER vs MCS.
pub const PER_MCS: u64 = 909;
/// F8c — failure attribution.
pub const PER_ATTRIBUTION: u64 = 1010;
/// F9 — goodput envelope.
pub const THROUGHPUT: u64 = 2020;
/// F10 — STBC vs spatial multiplexing.
pub const STBC_VS_SM: u64 = 314;
/// T1 — MCS table TX throughput measurement.
pub const TABLE_MCS: u64 = 112;
/// T2 — FEC coding gain crossings.
pub const FEC_GAIN: u64 = 3030;
/// A1 — pilot-tracking ablation, CFO sweep (shared by on/off arms).
pub const ABLATION_PILOTS_CFO: u64 = 6060;
/// A1 — pilot-tracking ablation, payload-length sweep.
pub const ABLATION_PILOTS_LEN: u64 = 6161;
/// A2a — fine-timing ablation, clean channel.
pub const ABLATION_FINETIMING_CLEAN: u64 = 7070;
/// A2b — fine-timing ablation, TGn-D.
pub const ABLATION_FINETIMING_TGN: u64 = 7171;
/// A3 — soft-vs-hard Viterbi ablation.
pub const ABLATION_SOFT: u64 = 8080;
/// A5 — Doppler / channel-aging sweep.
pub const DOPPLER: u64 = 2718;
/// R1 — chaos/fault-injection recovery figure.
pub const CHAOS: u64 = 0xFA_0175;
/// P1 — flowgraph profiler / RX-stage timing / outcome taxonomy.
pub const PROFILE: u64 = 0x9821;
/// T3b — RX hot-path before/after microbenchmarks.
pub const HOTPATH: u64 = 0x407B;
/// T4 — I/O subsystem: wire codec, loopback link service, queue policy.
pub const IO: u64 = 0x10C4;
/// N1 — network-scale scenario capacity figure (multi-link goodput).
pub const CAPACITY: u64 = 0xCA9A;
