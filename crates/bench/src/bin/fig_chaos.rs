//! R1 — link recovery under seeded fault schedules (chaos figure).
//!
//! Sweeps SNR for a 2×2 MCS8 link whose captures take the harsh
//! mid-capture fault schedule (noise bursts, dropouts, impulses, a
//! transient desync): each point reports overall frame delivery, delivery
//! inside the damage window, and — the robustness headline — the
//! post-fault-window recovery rate the chaos soak suite gates at ≥ 0.9.
//!
//! ```sh
//! cargo run --release -p mimonet-bench --bin fig_chaos [--quick] [--threads N]
//! ```
//!
//! With `MIMONET_DETERMINISTIC=1` the JSON report omits `wall_s` and
//! `threads`, so `results/fig_chaos.json` is byte-identical for any
//! `--threads` value. `--telemetry` embeds the merged frame-outcome
//! taxonomy (counts only — still deterministic) under `telemetry`.

use mimonet::chaos::{run_chaos, ChaosConfig};
use mimonet::sweep::Merge;
use mimonet::FrameOutcomes;
use mimonet_bench::report::FigureReport;
use mimonet_bench::{header, row, seeds, snr_grid, BenchOpts};
use mimonet_channel::{presets, ChannelConfig};
use serde::{Serialize, Value};

fn main() {
    let opts = BenchOpts::from_args();
    let captures = opts.count(60, 8);

    let mut report = FigureReport::new(
        "fig_chaos",
        "2x2 MCS8 frame recovery under seeded fault schedules",
        "SNR dB",
        seeds::CHAOS,
        &opts,
    );

    let snrs = snr_grid(18, 34, 2);
    let points: Vec<ChaosConfig> = snrs
        .iter()
        .map(|&snr| {
            ChaosConfig::new(
                8,
                6,
                ChannelConfig::awgn(2, 2, snr),
                presets::fault_lookup("harsh_mid_capture").expect("registered fault preset"),
            )
        })
        .collect();

    println!("# R1: frame recovery under harsh mid-capture faults, {captures} captures/point");
    println!("# (6 frames per capture; faults confined to the 25-60% window)");
    header(&["SNR dB", "delivery", "in-fault", "post-fault", "rescans"]);

    let result = run_chaos(&opts.spec("chaos/mcs8", points, captures, seeds::CHAOS));

    let mut delivery = Vec::new();
    let mut in_fault = Vec::new();
    let mut post_fault = Vec::new();
    for (&snr, stats) in snrs.iter().zip(&result.stats) {
        let (f_sent, f_ok) = stats.recovery.faulted();
        let faulted_rate = if f_sent == 0 {
            f64::NAN
        } else {
            f_ok as f64 / f_sent as f64
        };
        let recovery = stats.recovery.post_fault_recovery();
        let ok_rate = 1.0 - stats.per.per();
        row(
            snr,
            &[
                ok_rate,
                faulted_rate,
                recovery,
                stats.recovery.rescans() as f64 / captures as f64,
            ],
        );
        delivery.push(ok_rate);
        in_fault.push(faulted_rate);
        post_fault.push(recovery);
    }

    report.series_with_points(
        "post-fault recovery",
        &snrs,
        &post_fault,
        result.stats.iter().map(|s| s.serialize()).collect(),
    );
    report.series("overall delivery", &snrs, &delivery);
    report.series("delivery inside fault window", &snrs, &in_fault);

    if opts.telemetry {
        let mut outcomes = FrameOutcomes::default();
        for stats in &result.stats {
            outcomes.merge(&stats.outcomes);
        }
        report.telemetry(Value::object([("outcomes", outcomes.serialize())]));
    }

    println!("# expected shape: post-fault recovery saturates near 1.0 once the");
    println!("# clean-channel waterfall clears (~24 dB); delivery inside the fault");
    println!("# window stays depressed at every SNR because bursts and dropouts");
    println!("# destroy frames regardless of noise floor");
    report.finish();
}
