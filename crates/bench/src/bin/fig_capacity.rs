//! N1 — network capacity: aggregate goodput vs concurrent link count.
//!
//! Builds scenarios of K co-channel 2×2 links (K up to 16) on the
//! scenario engine and measures the network aggregate goodput under
//! three policies:
//!
//! * **isolated** — no cross-link coupling: the additive upper bound,
//!   aggregate goodput grows linearly in K;
//! * **interfered** — seeded co-channel burst interference between every
//!   pair of band mates: each added link steals airtime from all the
//!   others, so the curve bends and eventually turns over — the
//!   interference crossover;
//! * **interfered + adaptation** — same coupling with the per-link
//!   [`RateController`] running: clean links climb above the base rate
//!   while jammed ones back off, trading peak rate for delivery.
//!
//! ```sh
//! cargo run --release -p mimonet-bench --bin fig_capacity [--quick] [--threads N]
//! ```
//!
//! With `MIMONET_DETERMINISTIC=1` the JSON report omits `wall_s` and
//! `threads`; CI regenerates it at 1 and 8 workers and byte-compares
//! both against `results/golden/fig_capacity.json`. The report also
//! embeds the merged report of `scenarios/soak_4link.toml` (every
//! engine feature in one run) under `meta.soak`.
//!
//! [`RateController`]: mimonet::adapt::RateController

use mimonet::scenario::{InterferenceModel, InterferenceSpec, LinkSpec, ScenarioSpec};
use mimonet::sweep::Merge;
use mimonet::FrameOutcomes;
use mimonet_bench::report::FigureReport;
use mimonet_bench::{header, row, seeds, BenchOpts};
use serde::{Serialize, Value};

/// Interferer power at each victim, dB relative to unit signal power.
const COUPLING_DB: f64 = -15.0;

/// K links on one band: names and SNRs depend only on the link index, so
/// link `l03` sees identical conditions in every K >= 4 scenario.
fn build(k: usize, rounds: usize, model: InterferenceModel, adapt: bool) -> ScenarioSpec {
    let links = (0..k)
        .map(|i| LinkSpec {
            name: format!("l{i:02}"),
            snr_db: 26.0 + 2.0 * (i % 4) as f64,
            adapt,
            ..LinkSpec::default()
        })
        .collect();
    ScenarioSpec {
        name: format!("capacity/{k:02}"),
        seed: seeds::CAPACITY,
        rounds,
        interference: InterferenceSpec {
            model,
            coupling_db: COUPLING_DB,
        },
        links,
    }
}

fn main() {
    let opts = BenchOpts::from_args();
    let rounds = opts.count(30, 6);

    let mut report = FigureReport::new(
        "fig_capacity",
        "Aggregate goodput vs concurrent co-channel links",
        "links",
        seeds::CAPACITY,
        &opts,
    );

    let ks = [1usize, 2, 4, 8, 12, 16];
    let arms: [(&str, InterferenceModel, bool); 3] = [
        ("isolated", InterferenceModel::None, false),
        ("interfered", InterferenceModel::Burst, false),
        ("interfered + adaptation", InterferenceModel::Burst, true),
    ];

    println!("# N1: aggregate goodput vs link count ({rounds} rounds/link,");
    println!("# burst coupling {COUPLING_DB} dB, base MCS8, 256 B frames)");
    header(&["links", "iso Mb/s", "intf Mb/s", "adapt Mb/s", "intf dlvry"]);

    let x: Vec<f64> = ks.iter().map(|&k| k as f64).collect();
    let mut curves: Vec<Vec<f64>> = Vec::new();
    let mut delivery: Vec<Vec<f64>> = Vec::new();
    for (label, model, adapt) in arms {
        let mut goodput = Vec::new();
        let mut rate = Vec::new();
        let mut points = Vec::new();
        for &k in &ks {
            let scenario = build(k, rounds, model, adapt);
            let net = scenario.run(opts.threads);
            goodput.push(net.aggregate_goodput_mbps());
            rate.push(net.delivery_rate());
            let mut mean_mcs_sum = 0.0;
            for link in &net.links {
                mean_mcs_sum += link.mean_mcs();
            }
            points.push(Value::object([
                ("links", Value::U64(k as u64)),
                ("delivered", Value::U64(net.delivered())),
                ("sent", Value::U64(net.sent())),
                ("mean_mcs", Value::F64(mean_mcs_sum / k as f64)),
                ("outcomes", net.outcomes().serialize()),
            ]));
        }
        report.series_with_points(label, &x, &goodput, points);
        curves.push(goodput);
        delivery.push(rate);
    }
    for (label, _, _) in arms {
        let i = arms.iter().position(|(l, _, _)| *l == label).unwrap();
        report.series(format!("{label} delivery rate"), &x, &delivery[i]);
    }

    for (i, &k) in ks.iter().enumerate() {
        row(
            k as f64,
            &[curves[0][i], curves[1][i], curves[2][i], delivery[1][i]],
        );
    }

    // The interference crossover: past this K, adding a co-channel link
    // lowers the interfered network's aggregate goodput.
    let crossover = curves[1]
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| ks[i])
        .unwrap_or(0);
    report.meta("interference_crossover_links", Value::U64(crossover as u64));
    println!("# interfered aggregate peaks at {crossover} links");

    // Merged soak report: the checked-in 4-link everything-at-once
    // scenario, part of the golden byte-comparison.
    let soak_path = std::path::Path::new("scenarios/soak_4link.toml");
    match ScenarioSpec::from_file(soak_path) {
        Ok(spec) => {
            let soak = spec.run(opts.threads);
            report.meta("soak", soak.serialize());
            println!(
                "# soak ({}): {}/{} frames delivered, {:.2} Mb/s aggregate",
                soak.name,
                soak.delivered(),
                soak.sent(),
                soak.aggregate_goodput_mbps()
            );
        }
        Err(e) => eprintln!("# warning: skipping soak scenario: {e}"),
    }

    if opts.telemetry {
        let mut outcomes = FrameOutcomes::default();
        for &k in &ks {
            let net = build(k, rounds, InterferenceModel::Burst, true).run(opts.threads);
            outcomes.merge(&net.outcomes());
        }
        report.telemetry(Value::object([("outcomes", outcomes.serialize())]));
    }

    println!("# expected shape: the isolated curve grows linearly in K; the");
    println!("# interfered curve bends as burst collisions eat frames and turns");
    println!("# over at the crossover; adaptation recovers part of the gap by");
    println!("# backing jammed links off and letting clean ones climb");
    report.finish();
}
