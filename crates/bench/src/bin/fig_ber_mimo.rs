//! F7 — BER vs SNR, 2×2 spatial multiplexing, ZF vs MMSE vs ML, flat
//! Rayleigh fading.
//!
//! QPSK rate-1/2 (MCS9); pre-FEC BER is the fair detector comparison
//! (post-FEC PER crossovers are in F8). Also prints the SISO QPSK
//! baseline (MCS1, 1×1 Rayleigh) for the diversity-vs-multiplexing
//! context the paper frames. The three detector arms share a master seed
//! so every detector sees identical channel realizations point for point.
//!
//! ```sh
//! cargo run --release -p mimonet-bench --bin fig_ber_mimo [--quick] [--threads N]
//! ```

use mimonet::link::LinkConfig;
use mimonet::sweep::run_link;
use mimonet_bench::report::FigureReport;
use mimonet_bench::{header, row, seeds, snr_grid, BenchOpts};
use mimonet_channel::presets::rayleigh;
use mimonet_detect::DetectorKind;
use serde::Serialize;

fn coded_ber(stats: &mimonet::link::LinkStats) -> f64 {
    if stats.coded_ber.bits() > 0 {
        stats.coded_ber.ber()
    } else {
        f64::NAN
    }
}

fn main() {
    let opts = BenchOpts::from_args();
    let frames = opts.count(300, 30);
    let snrs = snr_grid(0, 30, 3);

    println!("# F7: 2x2 SM pre-FEC BER vs SNR, flat Rayleigh (QPSK, {frames} frames/pt)");
    header(&["SNR dB", "ZF", "MMSE", "ML", "SISO 1x1"]);

    let mut report = FigureReport::new(
        "fig_ber_mimo",
        "2x2 SM pre-FEC BER vs SNR, flat Rayleigh",
        "SNR dB",
        seeds::BER_MIMO,
        &opts,
    );

    let detectors = [
        (DetectorKind::Zf, "ZF"),
        (DetectorKind::Mmse, "MMSE"),
        (DetectorKind::Ml, "ML"),
    ];
    let mut curves: Vec<Vec<f64>> = Vec::new();
    for (det, label) in detectors {
        let points: Vec<LinkConfig> = snrs
            .iter()
            .map(|&snr| {
                let mut cfg = LinkConfig::new(9, 400, rayleigh(2, 2, snr));
                cfg.rx.detector = det;
                cfg
            })
            .collect();
        let result =
            run_link(&opts.spec(format!("ber_mimo/{label}"), points, frames, seeds::BER_MIMO));
        let y: Vec<f64> = result.stats.iter().map(coded_ber).collect();
        report.series_with_points(
            label,
            &snrs,
            &y,
            result.stats.iter().map(|s| s.serialize()).collect(),
        );
        curves.push(y);
    }

    let siso_points: Vec<LinkConfig> = snrs
        .iter()
        .map(|&snr| LinkConfig::new(1, 400, rayleigh(1, 1, snr)))
        .collect();
    let siso = run_link(&opts.spec("ber_mimo/siso", siso_points, frames, seeds::BER_MIMO_SISO));
    let siso_y: Vec<f64> = siso.stats.iter().map(coded_ber).collect();
    report.series_with_points(
        "SISO 1x1",
        &snrs,
        &siso_y,
        siso.stats.iter().map(|s| s.serialize()).collect(),
    );
    curves.push(siso_y);

    for (i, &snr) in snrs.iter().enumerate() {
        let cells: Vec<f64> = curves.iter().map(|c| c[i]).collect();
        row(snr, &cells);
    }

    println!("# expected shape: ML < MMSE < ZF at every SNR, gap widening with");
    println!("# SNR (ML extracts RX diversity the linear detectors spend on");
    println!("# stream separation); SISO sits below the linear detectors at the");
    println!("# same SNR but carries half the bits per symbol");
    report.finish();
}
