//! F7 — BER vs SNR, 2×2 spatial multiplexing, ZF vs MMSE vs ML, flat
//! Rayleigh fading.
//!
//! QPSK rate-1/2 (MCS9); pre-FEC BER is the fair detector comparison
//! (post-FEC PER crossovers are in F8). Also prints the SISO QPSK
//! baseline (MCS1, 1×1 Rayleigh) for the diversity-vs-multiplexing
//! context the paper frames.
//!
//! ```sh
//! cargo run --release -p mimonet-bench --bin fig_ber_mimo [--quick]
//! ```

use mimonet::link::{LinkConfig, LinkSim};
use mimonet_bench::{header, row, snr_grid, RunScale};
use mimonet_channel::{ChannelConfig, Fading};
use mimonet_detect::DetectorKind;

fn main() {
    let scale = RunScale::from_args();
    let frames = scale.count(300, 30);

    println!("# F7: 2x2 SM pre-FEC BER vs SNR, flat Rayleigh (QPSK, {frames} frames/pt)");
    header(&["SNR dB", "ZF", "MMSE", "ML", "SISO 1x1"]);

    for snr in snr_grid(0, 30, 3) {
        let mut cells = Vec::new();
        for det in [DetectorKind::Zf, DetectorKind::Mmse, DetectorKind::Ml] {
            let mut chan = ChannelConfig::awgn(2, 2, snr);
            chan.fading = Fading::RayleighFlat;
            let mut cfg = LinkConfig::new(9, 400, chan);
            cfg.rx.detector = det;
            let stats = LinkSim::new(cfg, 555 + snr as i64 as u64).run(frames);
            cells.push(if stats.coded_ber.bits() > 0 {
                stats.coded_ber.ber()
            } else {
                f64::NAN
            });
        }
        // SISO baseline.
        let mut chan = ChannelConfig::awgn(1, 1, snr);
        chan.fading = Fading::RayleighFlat;
        let cfg = LinkConfig::new(1, 400, chan);
        let stats = LinkSim::new(cfg, 777 + snr as i64 as u64).run(frames);
        cells.push(if stats.coded_ber.bits() > 0 {
            stats.coded_ber.ber()
        } else {
            f64::NAN
        });
        row(snr, &cells);
    }
    println!("# expected shape: ML < MMSE < ZF at every SNR, gap widening with");
    println!("# SNR (ML extracts RX diversity the linear detectors spend on");
    println!("# stream separation); SISO sits below the linear detectors at the");
    println!("# same SNR but carries half the bits per symbol");
}
