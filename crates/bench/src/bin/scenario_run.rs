//! Scenario CLI: validate and execute scenario files.
//!
//! ```sh
//! # Schema-check every example (exit 1 on the first invalid file):
//! cargo run --release -p mimonet-bench --bin scenario_run -- --check scenarios/*.toml scenarios/*.json
//!
//! # Run a scenario and write results/scenario_<name>.json:
//! cargo run --release -p mimonet-bench --bin scenario_run -- [--threads N] scenarios/soak_4link.toml
//! ```
//!
//! Reports honor `MIMONET_RESULTS_DIR` and `MIMONET_DETERMINISTIC` like
//! the figure binaries (scenario reports carry no volatile fields, so
//! deterministic mode changes nothing — they are always byte-stable for
//! a given file and thread count).

use mimonet::scenario::ScenarioSpec;
use mimonet_bench::{header, BenchOpts};
use serde::{json, Serialize};
use std::io::Write as _;
use std::path::{Path, PathBuf};

fn check(path: &Path) -> Result<(), String> {
    let spec = ScenarioSpec::from_file(path).map_err(|e| e.to_string())?;
    println!(
        "ok {} ({} links, {} rounds, interference {:?})",
        path.display(),
        spec.links.len(),
        spec.rounds,
        spec.interference.model
    );
    Ok(())
}

fn run(path: &Path, threads: usize) -> Result<(), String> {
    let spec = ScenarioSpec::from_file(path).map_err(|e| e.to_string())?;
    let net = spec.run(threads);

    println!(
        "# scenario {}: {} links x {} rounds, seed {}",
        net.name,
        net.links.len(),
        net.rounds,
        net.seed
    );
    header(&["link", "band", "delivery", "Mb/s", "mean MCS", "final MCS"]);
    for link in &net.links {
        println!(
            "{:>12} {:>12} {:>12.4} {:>12.3} {:>12.2} {:>12}",
            link.name,
            link.band,
            1.0 - link.stats.per.per(),
            link.goodput_mbps(),
            link.mean_mcs(),
            link.final_mcs
        );
    }
    println!(
        "# aggregate: {}/{} frames, {:.3} Mb/s",
        net.delivered(),
        net.sent(),
        net.aggregate_goodput_mbps()
    );

    let dir = std::env::var("MIMONET_RESULTS_DIR").unwrap_or_else(|_| "results".into());
    let out = PathBuf::from(dir).join(format!("scenario_{}.json", net.name));
    std::fs::create_dir_all(out.parent().expect("joined path has a parent"))
        .and_then(|_| {
            let mut f = std::fs::File::create(&out)?;
            f.write_all(json::to_string_pretty(&net.serialize()).as_bytes())?;
            f.write_all(b"\n")
        })
        .map_err(|e| format!("writing {}: {e}", out.display()))?;
    println!("# json: {}", out.display());
    Ok(())
}

fn main() {
    let opts = BenchOpts::from_args();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let check_only = args.iter().any(|a| a == "--check");
    let files: Vec<&String> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        // Skip the value that followed a bare `--threads`.
        .filter(|a| a.parse::<usize>().is_err())
        .collect();
    if files.is_empty() {
        eprintln!("usage: scenario_run [--check] [--threads N] FILE...");
        std::process::exit(2);
    }
    for file in files {
        let path = Path::new(file);
        let result = if check_only {
            check(path)
        } else {
            run(path, opts.threads)
        };
        if let Err(e) = result {
            eprintln!("error: {}: {e}", path.display());
            std::process::exit(1);
        }
    }
}
