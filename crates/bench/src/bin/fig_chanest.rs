//! F4 — Channel-estimation MSE vs SNR, HT-LTF least squares, 2×2.
//!
//! Per trial: transmit the HT preamble through a TGn channel, estimate
//! H(k) from the demodulated HT-LTFs, compare against the simulator's
//! ground-truth frequency response (including cyclic shift and antenna
//! scaling). Also reports the smoothed-estimator column (half-width 2) to
//! show the flat-vs-selective bias trade.
//!
//! ```sh
//! cargo run --release -p mimonet-bench --bin fig_chanest [--quick]
//! ```

use mimonet::{Transmitter, TxConfig};
use mimonet_bench::{header, row, snr_grid, RunScale};
use mimonet_channel::{ChannelConfig, ChannelSim, Fading, TgnModel};
use mimonet_detect::{estimate_mimo_htltf, smooth_frequency};
use mimonet_dsp::complex::Complex64;
use mimonet_frame::carriers::FFT_LEN;
use mimonet_frame::ofdm::{ht_cyclic_shift, Ofdm};

const HTLTF_START: usize = 160 + 160 + 80 + 160 + 80;

fn main() {
    let scale = RunScale::from_args();
    let trials = scale.count(400, 40);
    let tx = Transmitter::new(TxConfig::new(8).expect("valid MCS"));
    let frame = tx.transmit(&[0u8; 30]).expect("valid PSDU");
    let ofdm = Ofdm::new();
    let s56 = Ofdm::unit_power_scale(56);

    for model in [TgnModel::B, TgnModel::D] {
        println!("# F4: channel estimation MSE vs SNR ({model}, 2x2, {trials} trials/point)");
        header(&["SNR dB", "LS MSE", "smoothed"]);
        for snr in snr_grid(0, 30, 3) {
            let mut chan_cfg = ChannelConfig::awgn(2, 2, snr);
            chan_cfg.fading = Fading::Tgn(model);
            let mut chan = ChannelSim::new(chan_cfg, 31337 + snr as i64 as u64);
            let mut mse_ls = 0.0;
            let mut mse_sm = 0.0;
            for _ in 0..trials {
                let (rx, truth) = chan.apply(&frame);
                let tdl = truth.tdl.as_ref().expect("TGn fading");
                let mut ltf_bins = Vec::new();
                for i in 0..2 {
                    let base = HTLTF_START + i * 80;
                    let per_rx: Vec<[Complex64; FFT_LEN]> = rx
                        .iter()
                        .map(|b| ofdm.demodulate(&b[base..base + 80], s56))
                        .collect();
                    ltf_bins.push(per_rx);
                }
                let est = estimate_mimo_htltf(&ltf_bins, 2);
                let smoothed = smooth_frequency(&est, 2);
                let reference = |k: i32, r: usize, s: usize| -> Complex64 {
                    let shift = ht_cyclic_shift(s, 2);
                    let csd = Complex64::cis(
                        -2.0 * std::f64::consts::PI * k as f64 * shift as f64 / FFT_LEN as f64,
                    );
                    tdl.freq_response(r, s, k, FFT_LEN) * csd * (1.0 / 2f64.sqrt())
                };
                mse_ls += est.mse_against(reference);
                mse_sm += smoothed.mse_against(reference);
            }
            row(snr, &[mse_ls / trials as f64, mse_sm / trials as f64]);
        }
        println!();
    }
    println!("# expected shape: LS MSE falls 10x per 10 dB (noise-limited);");
    println!("# smoothing wins at low SNR, hits a bias floor at high SNR on");
    println!("# the more selective model D");
}
