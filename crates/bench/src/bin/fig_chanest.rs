//! F4 — Channel-estimation MSE vs SNR, HT-LTF least squares, 2×2.
//!
//! Per trial: transmit the HT preamble through a TGn channel, estimate
//! H(k) from the demodulated HT-LTFs, compare against the simulator's
//! ground-truth frequency response (including cyclic shift and antenna
//! scaling). Also reports the smoothed-estimator column (half-width 2) to
//! show the flat-vs-selective bias trade.
//!
//! ```sh
//! cargo run --release -p mimonet-bench --bin fig_chanest [--quick] [--threads N]
//! ```

use mimonet::{Transmitter, TxConfig};
use mimonet_bench::report::FigureReport;
use mimonet_bench::{header, row, seeds, snr_grid, BenchOpts};
use mimonet_channel::{presets, ChannelSim, TgnModel};
use mimonet_detect::{estimate_mimo_htltf, smooth_frequency};
use mimonet_dsp::complex::Complex64;
use mimonet_frame::carriers::FFT_LEN;
use mimonet_frame::ofdm::{ht_cyclic_shift, Ofdm};

const HTLTF_START: usize = 160 + 160 + 80 + 160 + 80;

fn main() {
    let opts = BenchOpts::from_args();
    let trials = opts.count(400, 40);
    let tx = Transmitter::new(TxConfig::new(8).expect("valid MCS"));
    let frame = tx.transmit(&[0u8; 30]).expect("valid PSDU");
    let snrs = snr_grid(0, 30, 3);

    let mut report = FigureReport::new(
        "fig_chanest",
        "HT-LTF channel-estimation MSE vs SNR",
        "SNR dB",
        seeds::CHANEST,
        &opts,
    );

    let frame_ref = &frame;
    for model in [TgnModel::B, TgnModel::D] {
        println!("# F4: channel estimation MSE vs SNR ({model}, 2x2, {trials} trials/point)");
        header(&["SNR dB", "LS MSE", "smoothed"]);

        let spec = opts.spec(
            format!("chanest/{model}"),
            snrs.clone(),
            trials,
            seeds::CHANEST,
        );
        // Accumulator: summed (LS, smoothed) MSE; divided by trial count
        // after the sweep.
        let result = spec.run(move |&snr, ctx, (mse_ls, mse_sm): &mut (f64, f64)| {
            let ofdm = Ofdm::new();
            let s56 = Ofdm::unit_power_scale(56);
            let chan_cfg = presets::tgn(model, 2, 2, snr);
            let mut chan = ChannelSim::new(chan_cfg, ctx.seed);
            for _ in 0..ctx.trials {
                let (rx, truth) = chan.apply(frame_ref);
                let tdl = truth.tdl.as_ref().expect("TGn fading");
                let mut ltf_bins = Vec::new();
                for i in 0..2 {
                    let base = HTLTF_START + i * 80;
                    let per_rx: Vec<[Complex64; FFT_LEN]> = rx
                        .iter()
                        .map(|b| ofdm.demodulate(&b[base..base + 80], s56))
                        .collect();
                    ltf_bins.push(per_rx);
                }
                let est = estimate_mimo_htltf(&ltf_bins, 2);
                let smoothed = smooth_frequency(&est, 2);
                let reference = |k: i32, r: usize, s: usize| -> Complex64 {
                    let shift = ht_cyclic_shift(s, 2);
                    let csd = Complex64::cis(
                        -2.0 * std::f64::consts::PI * k as f64 * shift as f64 / FFT_LEN as f64,
                    );
                    tdl.freq_response(r, s, k, FFT_LEN) * csd * (1.0 / 2f64.sqrt())
                };
                *mse_ls += est.mse_against(reference);
                *mse_sm += smoothed.mse_against(reference);
            }
        });

        let ls_y: Vec<f64> = result
            .stats
            .iter()
            .zip(&result.trials_run)
            .map(|((ls, _), &n)| ls / n as f64)
            .collect();
        let sm_y: Vec<f64> = result
            .stats
            .iter()
            .zip(&result.trials_run)
            .map(|((_, sm), &n)| sm / n as f64)
            .collect();
        for (i, &snr) in snrs.iter().enumerate() {
            row(snr, &[ls_y[i], sm_y[i]]);
        }
        report.series(format!("{model} LS"), &snrs, &ls_y);
        report.series(format!("{model} smoothed"), &snrs, &sm_y);
        println!();
    }
    println!("# expected shape: LS MSE falls 10x per 10 dB (noise-limited);");
    println!("# smoothing wins at low SNR, hits a bias floor at high SNR on");
    println!("# the more selective model D");
    report.finish();
}
