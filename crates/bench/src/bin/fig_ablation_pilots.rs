//! A1 — Ablation: pilot phase tracking on/off under residual CFO.
//!
//! Sweeps the true CFO's fractional part (what remains after the integer
//! part is pulled by the STF/LTF estimators is the estimation error, which
//! grows with the frame) and frame length, comparing PER with and without
//! per-symbol pilot tracking — quantifying the paper's "use of pilot
//! sub-carriers" feature.
//!
//! ```sh
//! cargo run --release -p mimonet-bench --bin fig_ablation_pilots [--quick]
//! ```

use mimonet::link::{LinkConfig, LinkSim};
use mimonet_bench::{header, row, RunScale};
use mimonet_channel::ChannelConfig;

fn per_with_tracking(cfo: f64, payload: usize, tracking: bool, frames: usize, seed: u64) -> f64 {
    let mut chan = ChannelConfig::awgn(2, 2, 18.0);
    chan.cfo_norm = cfo;
    let mut cfg = LinkConfig::new(11, payload, chan);
    cfg.rx.pilot_tracking = tracking;
    LinkSim::new(cfg, seed).run(frames).per.per()
}

fn main() {
    let scale = RunScale::from_args();
    let frames = scale.count(120, 20);

    println!("# A1: pilot tracking ablation (MCS11, 18 dB, {frames} frames/point)");
    println!("# sweep 1: CFO at fixed 1200 B payload");
    header(&["CFO", "PER track", "PER no-trk"]);
    for &cfo in &[0.0, 0.1, 0.2, 0.3, 0.4] {
        let on = per_with_tracking(cfo, 1200, true, frames, 6060);
        let off = per_with_tracking(cfo, 1200, false, frames, 6060);
        row(cfo * 10.0, &[on, off]); // label column ×10 to fit the grid
    }
    println!("# (label column = CFO x 10 in subcarrier spacings)");

    println!();
    println!("# sweep 2: payload length at fixed CFO 0.3");
    header(&["bytes", "PER track", "PER no-trk"]);
    for &len in &[100usize, 400, 800, 1600] {
        let on = per_with_tracking(0.3, len, true, frames, 6161);
        let off = per_with_tracking(0.3, len, false, frames, 6161);
        row(len as f64, &[on, off]);
    }
    println!("# expected shape: with tracking PER is flat in both sweeps; without,");
    println!("# PER climbs with frame length (residual-CFO phase accumulates across");
    println!("# symbols until constellations rotate out of their decision regions)");
}
