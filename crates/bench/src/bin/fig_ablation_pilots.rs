//! A1 — Ablation: pilot phase tracking on/off under residual CFO.
//!
//! Sweeps the true CFO's fractional part (what remains after the integer
//! part is pulled by the STF/LTF estimators is the estimation error, which
//! grows with the frame) and frame length, comparing PER with and without
//! per-symbol pilot tracking — quantifying the paper's "use of pilot
//! sub-carriers" feature. On/off arms share master seeds, so both see
//! identical channel noise point for point.
//!
//! ```sh
//! cargo run --release -p mimonet-bench --bin fig_ablation_pilots [--quick] [--threads N]
//! ```

use mimonet::link::LinkConfig;
use mimonet::sweep::run_link;
use mimonet_bench::report::FigureReport;
use mimonet_bench::{header, row, seeds, BenchOpts};
use mimonet_channel::ChannelConfig;

fn cfg_at(cfo: f64, payload: usize, tracking: bool) -> LinkConfig {
    let mut chan = ChannelConfig::awgn(2, 2, 18.0);
    chan.cfo_norm = cfo;
    let mut cfg = LinkConfig::new(11, payload, chan);
    cfg.rx.pilot_tracking = tracking;
    cfg
}

fn main() {
    let opts = BenchOpts::from_args();
    let frames = opts.count(120, 20);

    let mut report = FigureReport::new(
        "fig_ablation_pilots",
        "Pilot-tracking ablation under residual CFO",
        "CFO / payload B",
        seeds::ABLATION_PILOTS_CFO,
        &opts,
    );

    println!("# A1: pilot tracking ablation (MCS11, 18 dB, {frames} frames/point)");
    println!("# sweep 1: CFO at fixed 1200 B payload");
    header(&["CFO", "PER track", "PER no-trk"]);
    let cfos = [0.0, 0.1, 0.2, 0.3, 0.4];
    let mut per_cfo: Vec<Vec<f64>> = Vec::new();
    for tracking in [true, false] {
        let points: Vec<LinkConfig> = cfos.iter().map(|&c| cfg_at(c, 1200, tracking)).collect();
        let result = run_link(&opts.spec(
            format!("ablation_pilots/cfo/{tracking}"),
            points,
            frames,
            seeds::ABLATION_PILOTS_CFO,
        ));
        let y: Vec<f64> = result.stats.iter().map(|s| s.per.per()).collect();
        report.series(
            if tracking {
                "cfo tracking"
            } else {
                "cfo no-tracking"
            },
            &cfos,
            &y,
        );
        per_cfo.push(y);
    }
    for (i, &cfo) in cfos.iter().enumerate() {
        row(cfo * 10.0, &[per_cfo[0][i], per_cfo[1][i]]); // label column ×10 to fit the grid
    }
    println!("# (label column = CFO x 10 in subcarrier spacings)");

    println!();
    println!("# sweep 2: payload length at fixed CFO 0.3");
    header(&["bytes", "PER track", "PER no-trk"]);
    let lens = [100.0, 400.0, 800.0, 1600.0];
    let mut per_len: Vec<Vec<f64>> = Vec::new();
    for tracking in [true, false] {
        let points: Vec<LinkConfig> = lens
            .iter()
            .map(|&l| cfg_at(0.3, l as usize, tracking))
            .collect();
        let result = run_link(&opts.spec(
            format!("ablation_pilots/len/{tracking}"),
            points,
            frames,
            seeds::ABLATION_PILOTS_LEN,
        ));
        let y: Vec<f64> = result.stats.iter().map(|s| s.per.per()).collect();
        report.series(
            if tracking {
                "length tracking"
            } else {
                "length no-tracking"
            },
            &lens,
            &y,
        );
        per_len.push(y);
    }
    for (i, &len) in lens.iter().enumerate() {
        row(len, &[per_len[0][i], per_len[1][i]]);
    }

    println!("# expected shape: with tracking PER is flat in both sweeps; without,");
    println!("# PER climbs with frame length (residual-CFO phase accumulates across");
    println!("# symbols until constellations rotate out of their decision regions)");
    report.finish();
}
