//! F8 — PER vs SNR, 2×2 spatial multiplexing, across payload sizes and
//! MCS, with per-class failure attribution.
//!
//! Two sweeps: (a) MCS9 at three payload sizes, (b) three MCS at 500 B.
//! The attribution columns (sync / header / FCS shares at one mid-curve
//! point) reproduce the paper's observation that header and payload
//! failures dominate different SNR regimes.
//!
//! ```sh
//! cargo run --release -p mimonet-bench --bin fig_per [--quick]
//! ```

use mimonet::link::{LinkConfig, LinkSim};
use mimonet_bench::{header, row, snr_grid, RunScale};
use mimonet_channel::ChannelConfig;

fn main() {
    let scale = RunScale::from_args();
    let frames = scale.count(400, 40);

    println!("# F8a: PER vs SNR, MCS9 (2x2 QPSK 1/2), AWGN, {frames} frames/point");
    header(&["SNR dB", "100 B", "500 B", "1500 B"]);
    for snr in snr_grid(4, 16, 1) {
        let cells: Vec<f64> = [100usize, 500, 1500]
            .iter()
            .map(|&len| {
                let cfg = LinkConfig::new(9, len, ChannelConfig::awgn(2, 2, snr));
                LinkSim::new(cfg, 808 + len as u64 + snr as i64 as u64).run(frames).per.per()
            })
            .collect();
        row(snr, &cells);
    }

    println!();
    println!("# F8b: PER vs SNR across MCS, 500 B payloads");
    header(&["SNR dB", "MCS8", "MCS11", "MCS15"]);
    for snr in snr_grid(4, 34, 2) {
        let cells: Vec<f64> = [8u8, 11, 15]
            .iter()
            .map(|&mcs| {
                let cfg = LinkConfig::new(mcs, 500, ChannelConfig::awgn(2, 2, snr));
                LinkSim::new(cfg, 909 + mcs as u64 * 100 + snr as i64 as u64)
                    .run(frames)
                    .per
                    .per()
            })
            .collect();
        row(snr, &cells);
    }

    println!();
    println!("# F8c: failure attribution at mid-waterfall (MCS9, 500 B)");
    header(&["SNR dB", "PER", "sync", "header", "fcs"]);
    for snr in [6.0, 8.0, 10.0] {
        let cfg = LinkConfig::new(9, 500, ChannelConfig::awgn(2, 2, snr));
        let stats = LinkSim::new(cfg, 1010 + snr as u64).run(frames);
        let sent = stats.per.sent() as f64;
        row(
            snr,
            &[
                stats.per.per(),
                stats.per.sync_failures() as f64 / sent,
                stats.per.header_failures() as f64 / sent,
                stats.per.fcs_failures() as f64 / sent,
            ],
        );
    }
    println!("# expected shape: longer payloads shift the waterfall right ~1 dB per");
    println!("# 3x length; higher MCS shift it right ~4-6 dB per step in order;");
    println!("# at the lowest SNR sync losses dominate, FCS failures take over as");
    println!("# detection becomes reliable");
}
