//! F8 — PER vs SNR, 2×2 spatial multiplexing, across payload sizes and
//! MCS, with per-class failure attribution.
//!
//! Three sweeps: (a) MCS9 at three payload sizes, (b) three MCS at 500 B,
//! (c) sync/header/FCS failure shares at mid-waterfall points —
//! reproducing the paper's observation that header and payload failures
//! dominate different SNR regimes.
//!
//! ```sh
//! cargo run --release -p mimonet-bench --bin fig_per [--quick] [--threads N]
//! ```

use mimonet::link::LinkConfig;
use mimonet::sweep::run_link;
use mimonet_bench::report::FigureReport;
use mimonet_bench::{header, row, seeds, snr_grid, BenchOpts};
use mimonet_channel::ChannelConfig;
use serde::Serialize;

fn main() {
    let opts = BenchOpts::from_args();
    let frames = opts.count(400, 40);

    let mut report = FigureReport::new(
        "fig_per",
        "2x2 PER vs SNR: payload sizes, MCS, attribution",
        "SNR dB",
        seeds::PER_PAYLOAD,
        &opts,
    );

    println!("# F8a: PER vs SNR, MCS9 (2x2 QPSK 1/2), AWGN, {frames} frames/point");
    header(&["SNR dB", "100 B", "500 B", "1500 B"]);
    let snrs_a = snr_grid(4, 16, 1);
    let mut curves_a: Vec<Vec<f64>> = Vec::new();
    for len in [100usize, 500, 1500] {
        let points: Vec<LinkConfig> = snrs_a
            .iter()
            .map(|&snr| LinkConfig::new(9, len, ChannelConfig::awgn(2, 2, snr)))
            .collect();
        let result =
            run_link(&opts.spec(format!("per/{len}B"), points, frames, seeds::PER_PAYLOAD));
        let y: Vec<f64> = result.stats.iter().map(|s| s.per.per()).collect();
        report.series_with_points(
            format!("MCS9 {len} B"),
            &snrs_a,
            &y,
            result.stats.iter().map(|s| s.serialize()).collect(),
        );
        curves_a.push(y);
    }
    for (i, &snr) in snrs_a.iter().enumerate() {
        row(snr, &curves_a.iter().map(|c| c[i]).collect::<Vec<_>>());
    }

    println!();
    println!("# F8b: PER vs SNR across MCS, 500 B payloads");
    header(&["SNR dB", "MCS8", "MCS11", "MCS15"]);
    let snrs_b = snr_grid(4, 34, 2);
    let mut curves_b: Vec<Vec<f64>> = Vec::new();
    for mcs in [8u8, 11, 15] {
        let points: Vec<LinkConfig> = snrs_b
            .iter()
            .map(|&snr| LinkConfig::new(mcs, 500, ChannelConfig::awgn(2, 2, snr)))
            .collect();
        let result = run_link(&opts.spec(format!("per/mcs{mcs}"), points, frames, seeds::PER_MCS));
        let y: Vec<f64> = result.stats.iter().map(|s| s.per.per()).collect();
        report.series_with_points(
            format!("MCS{mcs} 500 B"),
            &snrs_b,
            &y,
            result.stats.iter().map(|s| s.serialize()).collect(),
        );
        curves_b.push(y);
    }
    for (i, &snr) in snrs_b.iter().enumerate() {
        row(snr, &curves_b.iter().map(|c| c[i]).collect::<Vec<_>>());
    }

    println!();
    println!("# F8c: failure attribution at mid-waterfall (MCS9, 500 B)");
    header(&["SNR dB", "PER", "sync", "header", "fcs"]);
    let snrs_c = [6.0, 8.0, 10.0];
    let points: Vec<LinkConfig> = snrs_c
        .iter()
        .map(|&snr| LinkConfig::new(9, 500, ChannelConfig::awgn(2, 2, snr)))
        .collect();
    let result = run_link(&opts.spec("per/attribution", points, frames, seeds::PER_ATTRIBUTION));
    for (&snr, stats) in snrs_c.iter().zip(&result.stats) {
        let sent = stats.per.sent() as f64;
        row(
            snr,
            &[
                stats.per.per(),
                stats.per.sync_failures() as f64 / sent,
                stats.per.header_failures() as f64 / sent,
                stats.per.fcs_failures() as f64 / sent,
            ],
        );
    }
    report.series_with_points(
        "attribution MCS9 500 B",
        &snrs_c,
        &result.stats.iter().map(|s| s.per.per()).collect::<Vec<_>>(),
        result.stats.iter().map(|s| s.serialize()).collect(),
    );

    println!("# expected shape: longer payloads shift the waterfall right ~1 dB per");
    println!("# 3x length; higher MCS shift it right ~4-6 dB per step in order;");
    println!("# at the lowest SNR sync losses dominate, FCS failures take over as");
    println!("# detection becomes reliable");
    report.finish();
}
