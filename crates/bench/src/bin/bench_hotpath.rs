//! T3b — RX hot-path before/after: the four optimizations of the
//! zero-copy receiver PR, each measured against the reference
//! implementation kept in-tree as its equivalence oracle:
//!
//! 1. **scan** — view-based multi-frame scan ([`Receiver::scan`]) vs the
//!    copy-based [`ReferenceReceiver::scan`], which clones an
//!    O(remaining-capture) window per decode attempt.
//! 2. **link** — one-frame decode from a capture with an idle tail:
//!    warmed [`Receiver::receive_into`] (workspace reuse, lazy chunked
//!    CFO) vs [`ReferenceReceiver::receive`] (fresh allocations,
//!    whole-buffer CFO passes).
//! 3. **viterbi** — table-driven [`ViterbiDecoder`] with buffer reuse vs
//!    the closure-per-transition `viterbi::reference` decoder.
//! 4. **correlate** — O(1)-per-lag sliding window energy in
//!    [`normalized_cross_correlate_into`] vs the O(L)-per-lag
//!    `normalized_cross_correlate_reference`.
//!
//! Every pair is checked for equivalence before timing — a speedup over
//! an implementation that computes something else is meaningless. The
//! scan/link/viterbi pairs must be *bit-identical* (the contract the
//! `tests/equivalence.rs` proptests enforce); the correlate kernel pair
//! is tolerance-checked (`max_abs_err`, same peak), since the sliding
//! energy update legitimately differs from fresh summation in the last
//! ulps — bit-identity of the RX chain that consumes it is covered by
//! the scan/link rows.
//!
//! ```sh
//! cargo run --release -p mimonet-bench --bin bench_hotpath [--quick]
//! ```
//!
//! Writes `results/BENCH_hotpath.json`. With `MIMONET_DETERMINISTIC=1`
//! timing is skipped entirely and every wall-clock field (`*_ns`,
//! `speedup`, `wall_s`, `threads`) is omitted, so the report is a pure
//! function of the seed — the property the CI job diffs against
//! `results/golden/BENCH_hotpath.json`.

use mimonet::{Receiver, ReferenceReceiver, RxConfig, RxFrame, RxWorkspace, Transmitter, TxConfig};
use mimonet_bench::report::FigureReport;
use mimonet_bench::{seeds, BenchOpts};
use mimonet_channel::{ChannelConfig, ChannelSim};
use mimonet_dsp::complex::Complex64;
use mimonet_dsp::correlate::{
    normalized_cross_correlate_into, normalized_cross_correlate_reference,
};
use mimonet_fec::viterbi::{reference as viterbi_reference, ViterbiDecoder};
use mimonet_fec::ConvEncoder;
use serde::{Serialize, Value};
use std::hint::black_box;
use std::time::Instant;

/// One before/after measurement.
struct BenchRow {
    name: &'static str,
    /// Samples (or coded bits) processed per call — the throughput basis.
    work_items: u64,
    /// Whether before and after agree (bit-identical, or within the
    /// documented tolerance for the correlate row).
    matches: bool,
    /// Worst absolute output difference — only for the tolerance-checked
    /// correlate row (the other rows require exact equality).
    max_abs_err: Option<f64>,
    /// Best-of-reps per-call nanoseconds; `None` in deterministic mode.
    before_ns: Option<f64>,
    after_ns: Option<f64>,
}

impl BenchRow {
    fn speedup(&self) -> Option<f64> {
        match (self.before_ns, self.after_ns) {
            (Some(b), Some(a)) if a > 0.0 => Some(b / a),
            _ => None,
        }
    }

    fn to_value(&self) -> Value {
        let mut fields = vec![
            ("name", self.name.serialize()),
            ("work_items", self.work_items.serialize()),
            ("matches", self.matches.serialize()),
        ];
        if let Some(e) = self.max_abs_err {
            fields.push(("max_abs_err", e.serialize()));
        }
        if let (Some(b), Some(a)) = (self.before_ns, self.after_ns) {
            fields.push(("before_ns", b.serialize()));
            fields.push(("after_ns", a.serialize()));
            fields.push(("speedup", self.speedup().unwrap().serialize()));
        }
        Value::object(fields)
    }
}

/// Best-of-`reps` mean per-call nanoseconds over `iters` calls.
fn time_ns(reps: usize, iters: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        for _ in 0..iters {
            f();
        }
        best = best.min(t0.elapsed().as_nanos() as f64 / iters as f64);
    }
    best
}

/// Transmit one frame with lead-in silence and a trailing pad.
fn padded_frame(tx: &Transmitter, psdu: &[u8], lead: usize, tail: usize) -> Vec<Vec<Complex64>> {
    let mut streams = tx.transmit(psdu).expect("valid PSDU");
    for s in &mut streams {
        let mut p = vec![Complex64::ZERO; lead];
        p.extend_from_slice(s);
        p.extend(vec![Complex64::ZERO; tail]);
        *s = p;
    }
    streams
}

fn bench_scan(det: bool, opts: &BenchOpts) -> BenchRow {
    // Four back-to-back frames separated by long idle gaps: the regime
    // where the reference scan's per-attempt window copy is quadratic in
    // the capture length.
    let tx = Transmitter::new(TxConfig::new(9).unwrap());
    let mut capture: Vec<Vec<Complex64>> = vec![vec![Complex64::ZERO; 200]; 2];
    for k in 0..4usize {
        let psdu: Vec<u8> = (0..220).map(|i| (i + 13 * k) as u8).collect();
        let streams = tx.transmit(&psdu).unwrap();
        for (cap, s) in capture.iter_mut().zip(&streams) {
            cap.extend_from_slice(s);
            cap.extend(vec![Complex64::ZERO; 80_000]);
        }
    }
    let mut chan = ChannelSim::new(ChannelConfig::awgn(2, 2, 30.0), seeds::HOTPATH);
    let (noisy, _) = chan.apply(&capture);

    let before_rx = ReferenceReceiver::new(RxConfig::new(2));
    let after_rx = Receiver::new(RxConfig::new(2));
    let want = before_rx.scan(&noisy);
    let got = after_rx.scan(&noisy);
    assert_eq!(want.0.len(), 4, "scan workload must decode all 4 frames");
    let matches = got == want;

    let (before_ns, after_ns) = if det {
        (None, None)
    } else {
        let iters = opts.count(5, 1);
        (
            Some(time_ns(3, iters, || {
                black_box(before_rx.scan(&noisy));
            })),
            Some(time_ns(3, iters, || {
                black_box(after_rx.scan(&noisy));
            })),
        )
    };
    BenchRow {
        name: "scan",
        work_items: noisy[0].len() as u64,
        matches,
        max_abs_err: None,
        before_ns,
        after_ns,
    }
}

fn bench_link(det: bool, opts: &BenchOpts) -> BenchRow {
    // One 500-byte MCS9 frame followed by an idle tail, as a streaming
    // receiver sees it: the reference copies and CFO-corrects the whole
    // capture; the workspace path stops at the end of the frame.
    let tx = Transmitter::new(TxConfig::new(9).unwrap());
    let psdu = vec![0xA5u8; 500];
    let streams = padded_frame(&tx, &psdu, 160, 48_000);
    let mut chan = ChannelSim::new(ChannelConfig::awgn(2, 2, 30.0), seeds::HOTPATH ^ 1);
    let (noisy, _) = chan.apply(&streams);
    let views: Vec<&[Complex64]> = noisy.iter().map(|a| a.as_slice()).collect();

    let before_rx = ReferenceReceiver::new(RxConfig::new(2));
    let after_rx = Receiver::new(RxConfig::new(2));
    let want = before_rx.receive(&noisy).expect("reference decodes");
    let mut ws = RxWorkspace::new();
    let mut frame = RxFrame::default();
    after_rx
        .receive_into(&views, &mut ws, &mut frame)
        .expect("workspace decodes");
    let matches = frame == want;

    let (before_ns, after_ns) = if det {
        (None, None)
    } else {
        let iters = opts.count(30, 3);
        (
            Some(time_ns(3, iters, || {
                black_box(before_rx.receive(&noisy).unwrap());
            })),
            Some(time_ns(3, iters, || {
                after_rx.receive_into(&views, &mut ws, &mut frame).unwrap();
                black_box(frame.psdu.len());
            })),
        )
    };
    BenchRow {
        name: "link",
        work_items: noisy[0].len() as u64,
        matches,
        max_abs_err: None,
        before_ns,
        after_ns,
    }
}

fn bench_viterbi(det: bool, opts: &BenchOpts) -> BenchRow {
    let data: Vec<u8> = (0..4096)
        .map(|i: usize| ((i * 1103515245 + 12345) >> 16 & 1) as u8)
        .collect();
    let coded = ConvEncoder::new().encode(&data);
    let llrs: Vec<f64> = coded
        .iter()
        .map(|&b| if b == 0 { 4.0 } else { -4.0 })
        .collect();

    let want = viterbi_reference::decode_soft_unterminated(&llrs).unwrap();
    let mut dec = ViterbiDecoder::new();
    let mut out = Vec::new();
    dec.decode_soft_unterminated_into(&llrs, &mut out).unwrap();
    let matches = out == want;

    let (before_ns, after_ns) = if det {
        (None, None)
    } else {
        let iters = opts.count(50, 5);
        (
            Some(time_ns(3, iters, || {
                black_box(viterbi_reference::decode_soft_unterminated(&llrs).unwrap());
            })),
            Some(time_ns(3, iters, || {
                dec.decode_soft_unterminated_into(&llrs, &mut out).unwrap();
                black_box(out.len());
            })),
        )
    };
    BenchRow {
        name: "viterbi",
        work_items: llrs.len() as u64,
        matches,
        max_abs_err: None,
        before_ns,
        after_ns,
    }
}

fn bench_correlate(det: bool, opts: &BenchOpts) -> BenchRow {
    let sig: Vec<Complex64> = (0..4096)
        .map(|i| Complex64::cis(i as f64 * 0.37) * (1.0 + 0.1 * (i % 7) as f64))
        .collect();
    let pat: Vec<Complex64> = sig[512..576].to_vec();

    let want = normalized_cross_correlate_reference(&sig, &pat);
    let mut out = Vec::new();
    normalized_cross_correlate_into(&sig, &pat, &mut out);
    let max_abs_err = out
        .iter()
        .zip(&want)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    let same_peak = mimonet_dsp::correlate::argmax(&out) == mimonet_dsp::correlate::argmax(&want);
    let matches = out.len() == want.len() && same_peak && max_abs_err < 1e-9;

    let (before_ns, after_ns) = if det {
        (None, None)
    } else {
        let iters = opts.count(300, 30);
        (
            Some(time_ns(3, iters, || {
                black_box(normalized_cross_correlate_reference(&sig, &pat));
            })),
            Some(time_ns(3, iters, || {
                normalized_cross_correlate_into(&sig, &pat, &mut out);
                black_box(out.len());
            })),
        )
    };
    BenchRow {
        name: "correlate",
        work_items: sig.len() as u64,
        matches,
        max_abs_err: Some(max_abs_err),
        before_ns,
        after_ns,
    }
}

fn main() {
    let opts = BenchOpts::from_args();
    let mut report = FigureReport::new(
        "BENCH_hotpath",
        "RX hot path before/after: zero-copy scan, workspace receive, table Viterbi, O(1) correlation",
        "benchmark index",
        seeds::HOTPATH,
        &opts,
    );
    let det = report.is_deterministic();

    let rows = [
        bench_scan(det, &opts),
        bench_link(det, &opts),
        bench_viterbi(det, &opts),
        bench_correlate(det, &opts),
    ];

    println!("# T3b: RX hot-path before/after (best-of-3, release)");
    if det {
        println!("{:<10} {:>10} {:>10}", "bench", "items", "matches");
        for r in &rows {
            println!("{:<10} {:>10} {:>10}", r.name, r.work_items, r.matches);
        }
    } else {
        println!(
            "{:<10} {:>10} {:>12} {:>12} {:>8}",
            "bench", "items", "before_us", "after_us", "speedup"
        );
        for r in &rows {
            println!(
                "{:<10} {:>10} {:>12.1} {:>12.1} {:>7.2}x",
                r.name,
                r.work_items,
                r.before_ns.unwrap() / 1e3,
                r.after_ns.unwrap() / 1e3,
                r.speedup().unwrap()
            );
        }
    }
    for r in &rows {
        assert!(r.matches, "{}: before/after outputs must agree", r.name);
    }

    let x: Vec<f64> = (0..rows.len()).map(|i| i as f64).collect();
    let y: Vec<f64> = rows
        .iter()
        .map(|r| f64::from(u8::from(r.matches)))
        .collect();
    report.series("outputs_match", &x, &y);
    report.meta("bench_labels", Value::array(rows.iter().map(|r| r.name)));
    report.meta(
        "benches",
        Value::Array(rows.iter().map(BenchRow::to_value).collect()),
    );
    report.meta(
        "targets",
        Value::object([
            ("scan_min_speedup", 3.0f64.serialize()),
            ("link_min_speedup", 1.5f64.serialize()),
        ]),
    );
    report.finish();
}
