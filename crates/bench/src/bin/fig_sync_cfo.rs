//! F3 — CFO estimation RMSE vs SNR: SISO Van de Beek vs the MIMO-joint
//! extension.
//!
//! Random CFOs in ±0.4 subcarrier spacings per trial; the error is
//! (estimate − truth). Flat Rayleigh per-antenna gains keep the antennas
//! statistically independent, which is where joint estimation pays. Both
//! estimator columns come from the same trials (paired comparison).
//!
//! ```sh
//! cargo run --release -p mimonet-bench --bin fig_sync_cfo [--quick] [--threads N]
//! ```

use mimonet::{Transmitter, TxConfig};
use mimonet_bench::report::FigureReport;
use mimonet_bench::{header, row, seeds, snr_grid, BenchOpts};
use mimonet_channel::{presets, ChannelSim};
use mimonet_dsp::complex::Complex64;
use mimonet_dsp::stats::Running;
use mimonet_sync::VanDeBeek;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::Serialize;

fn main() {
    let opts = BenchOpts::from_args();
    let trials = opts.count(2000, 100);
    let tx = Transmitter::new(TxConfig::new(8).expect("valid MCS"));
    let frame = tx.transmit(&[0x55u8; 60]).expect("valid PSDU");
    let lead = 50usize;
    let snrs = snr_grid(-4, 20, 2);

    println!("# F3: CFO RMSE (subcarrier spacings) vs SNR ({trials} trials/point)");
    header(&["SNR dB", "SISO RMSE", "MIMO RMSE"]);

    let frame_ref = &frame;
    let spec = opts.spec("sync_cfo", snrs.clone(), trials, seeds::SYNC_CFO);
    let result = spec.run(|&snr, ctx, (siso, mimo): &mut (Running, Running)| {
        let mut rng = ChaCha8Rng::seed_from_u64(ctx.seed);
        for _ in 0..ctx.trials {
            let cfo = rng.gen_range(-0.4..0.4);
            let mut chan_cfg = presets::rayleigh(2, 2, snr);
            chan_cfg.cfo_norm = cfo;
            let mut chan = ChannelSim::new(chan_cfg, rng.gen());
            let padded: Vec<Vec<Complex64>> = frame_ref
                .iter()
                .map(|s| {
                    let mut p = vec![Complex64::ZERO; lead];
                    p.extend_from_slice(s);
                    p
                })
                .collect();
            let (rx, _) = chan.apply(&padded);
            let vdb = VanDeBeek::new(64, 16, snr);
            let hi = (lead + frame_ref[0].len()).min(rx[0].len());
            if let Some(e) = vdb.estimate(&[&rx[0][..hi]]) {
                siso.push(e.cfo - cfo);
            }
            if let Some(e) = vdb.estimate(&[&rx[0][..hi], &rx[1][..hi]]) {
                mimo.push(e.cfo - cfo);
            }
        }
    });

    let siso_y: Vec<f64> = result.stats.iter().map(|(s, _)| s.rms()).collect();
    let mimo_y: Vec<f64> = result.stats.iter().map(|(_, m)| m.rms()).collect();
    for (i, &snr) in snrs.iter().enumerate() {
        row(snr, &[siso_y[i], mimo_y[i]]);
    }

    let mut report = FigureReport::new(
        "fig_sync_cfo",
        "CFO estimation RMSE vs SNR (Van de Beek)",
        "SNR dB",
        seeds::SYNC_CFO,
        &opts,
    );
    report.series_with_points(
        "SISO",
        &snrs,
        &siso_y,
        result.stats.iter().map(|(s, _)| s.serialize()).collect(),
    );
    report.series_with_points(
        "MIMO-joint",
        &snrs,
        &mimo_y,
        result.stats.iter().map(|(_, m)| m.serialize()).collect(),
    );
    println!("# expected shape: both fall with SNR; MIMO-joint below SISO everywhere,");
    println!("# approaching 3 dB (sqrt 2 in RMSE) at low SNR where noise dominates");
    report.finish();
}
