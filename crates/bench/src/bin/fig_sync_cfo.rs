//! F3 — CFO estimation RMSE vs SNR: SISO Van de Beek vs the MIMO-joint
//! extension.
//!
//! Random CFOs in ±0.4 subcarrier spacings per trial; the error is
//! (estimate − truth). Flat Rayleigh per-antenna gains keep the antennas
//! statistically independent, which is where joint estimation pays.
//!
//! ```sh
//! cargo run --release -p mimonet-bench --bin fig_sync_cfo [--quick]
//! ```

use mimonet::{Transmitter, TxConfig};
use mimonet_bench::{header, row, snr_grid, RunScale};
use mimonet_channel::{ChannelConfig, ChannelSim, Fading};
use mimonet_dsp::complex::Complex64;
use mimonet_dsp::stats::Running;
use mimonet_sync::VanDeBeek;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let scale = RunScale::from_args();
    let trials = scale.count(2000, 100);
    let tx = Transmitter::new(TxConfig::new(8).expect("valid MCS"));
    let frame = tx.transmit(&[0x55u8; 60]).expect("valid PSDU");
    let lead = 50usize;

    println!("# F3: CFO RMSE (subcarrier spacings) vs SNR ({trials} trials/point)");
    header(&["SNR dB", "SISO RMSE", "MIMO RMSE"]);

    let mut rng = ChaCha8Rng::seed_from_u64(77);
    for snr in snr_grid(-4, 20, 2) {
        let mut siso = Running::new();
        let mut mimo = Running::new();
        for t in 0..trials {
            let cfo = rng.gen_range(-0.4..0.4);
            let mut chan_cfg = ChannelConfig::awgn(2, 2, snr);
            chan_cfg.fading = Fading::RayleighFlat;
            chan_cfg.cfo_norm = cfo;
            let mut chan = ChannelSim::new(chan_cfg, (snr as i64 as u64) << 20 | t as u64);
            let padded: Vec<Vec<Complex64>> = frame
                .iter()
                .map(|s| {
                    let mut p = vec![Complex64::ZERO; lead];
                    p.extend_from_slice(s);
                    p
                })
                .collect();
            let (rx, _) = chan.apply(&padded);
            let vdb = VanDeBeek::new(64, 16, snr);
            let hi = (lead + frame[0].len()).min(rx[0].len());
            if let Some(e) = vdb.estimate(&[&rx[0][..hi]]) {
                siso.push(e.cfo - cfo);
            }
            if let Some(e) = vdb.estimate(&[&rx[0][..hi], &rx[1][..hi]]) {
                mimo.push(e.cfo - cfo);
            }
        }
        row(snr, &[siso.rms(), mimo.rms()]);
    }
    println!("# expected shape: both fall with SNR; MIMO-joint below SISO everywhere,");
    println!("# approaching 3 dB (sqrt 2 in RMSE) at low SNR where noise dominates");
}
