//! F2 — Timing-sync lock probability vs SNR: SISO Van de Beek vs the
//! paper's MIMO extension.
//!
//! A trial transmits one 2×2 frame over a TGn-B channel; a "lock" is a
//! Van de Beek timing estimate whose mod-80 residue lands inside the
//! ISI-free part of the cyclic prefix. The MIMO-extended estimator sums
//! per-antenna statistics before the decision; SISO uses antenna 0 alone.
//!
//! ```sh
//! cargo run --release -p mimonet-bench --bin fig_sync_timing [--quick] [--threads N]
//! ```

use mimonet::{Transmitter, TxConfig};
use mimonet_bench::report::FigureReport;
use mimonet_bench::{header, row, seeds, snr_grid, BenchOpts};
use mimonet_channel::{presets, ChannelSim, TgnModel};
use mimonet_dsp::complex::Complex64;
use mimonet_sync::VanDeBeek;

fn main() {
    let opts = BenchOpts::from_args();
    let trials = opts.count(2000, 100);
    let tx = Transmitter::new(TxConfig::new(8).expect("valid MCS"));
    let frame = tx.transmit(&[0x42u8; 40]).expect("valid PSDU");
    let lead = 60usize;
    let snrs = snr_grid(-6, 20, 2);

    println!("# F2: timing lock probability vs SNR ({trials} trials/point, TGn-B 2x2)");
    header(&["SNR dB", "SISO", "MIMO"]);

    let frame_ref = &frame;
    let spec = opts.spec("sync_timing", snrs.clone(), trials, seeds::SYNC_TIMING);
    let result = spec.run(|&snr, ctx, (siso_locks, mimo_locks): &mut (u64, u64)| {
        let mut chan_cfg = presets::tgn(TgnModel::B, 2, 2, snr);
        chan_cfg.cfo_norm = 0.15;
        let mut chan = ChannelSim::new(chan_cfg, ctx.seed);
        let vdb = VanDeBeek::new(64, 16, snr);

        for _ in 0..ctx.trials {
            let padded: Vec<Vec<Complex64>> = frame_ref
                .iter()
                .map(|s| {
                    let mut p = vec![Complex64::ZERO; lead];
                    p.extend_from_slice(s);
                    p.extend(vec![Complex64::ZERO; 40]);
                    p
                })
                .collect();
            let (rx, _) = chan.apply(&padded);
            // Gate the estimator onto the HT-Data region: the STF/LTF are
            // themselves periodic at lag 64 and would otherwise create
            // wide false plateaus in the CP metric. For this MCS the data
            // region begins 800 samples into the frame (legacy preamble
            // 560 + HT-STF 80 + two HT-LTFs 160).
            let data = lead + 800;
            let hi = (lead + frame_ref[0].len()).min(rx[0].len());
            let a0 = &rx[0][data..hi];
            let a1 = &rx[1][data..hi];
            // A lock = timing residue inside the ISI-free part of the
            // cyclic prefix: up to (CP − delay-spread) samples early or a
            // few samples late of any symbol boundary. For TGn-B the
            // delay spread is ~3 taps, leaving a ~12-sample safe plateau.
            let is_lock = |t: usize| {
                // `t` is relative to the gated slice, which starts on a
                // symbol boundary.
                let rel = (t as isize).rem_euclid(80);
                rel <= 4 || rel >= 68
            };
            if let Some(e) = vdb.estimate(&[a0]) {
                if is_lock(e.timing) {
                    *siso_locks += 1;
                }
            }
            if let Some(e) = vdb.estimate(&[a0, a1]) {
                if is_lock(e.timing) {
                    *mimo_locks += 1;
                }
            }
        }
    });

    let siso_y: Vec<f64> = result
        .stats
        .iter()
        .zip(&result.trials_run)
        .map(|((s, _), &n)| *s as f64 / n as f64)
        .collect();
    let mimo_y: Vec<f64> = result
        .stats
        .iter()
        .zip(&result.trials_run)
        .map(|((_, m), &n)| *m as f64 / n as f64)
        .collect();
    for (i, &snr) in snrs.iter().enumerate() {
        row(snr, &[siso_y[i], mimo_y[i]]);
    }

    let mut report = FigureReport::new(
        "fig_sync_timing",
        "Timing lock probability vs SNR (TGn-B)",
        "SNR dB",
        seeds::SYNC_TIMING,
        &opts,
    );
    report.series("SISO", &snrs, &siso_y);
    report.series("MIMO", &snrs, &mimo_y);
    println!("# expected shape: MIMO curve sits a few dB left of SISO (combining gain)");
    report.finish();
}
