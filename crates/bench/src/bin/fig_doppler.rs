//! A5 (extension) — channel aging under mobility: PER vs normalized
//! Doppler and frame length.
//!
//! The receiver estimates H once per frame (HT-LTFs); with terminal
//! motion the channel decorrelates from that estimate over the frame
//! body. Pilot tracking recovers the *common-phase* component of the
//! drift but not the full matrix rotation, so long frames die first —
//! the effect that motivates per-packet channel estimation (and bounds
//! A-MPDU lengths) in real systems.
//!
//! Context: a 5.2 GHz pedestrian (1 m/s) Doppler is ~17 Hz ≈ 9e-7
//! cycles/sample at 20 Msps; vehicular (30 m/s) ~520 Hz ≈ 2.6e-5. The
//! sweep extends beyond that to expose the failure slope.
//!
//! ```sh
//! cargo run --release -p mimonet-bench --bin fig_doppler [--quick] [--threads N]
//! ```

use mimonet::link::LinkConfig;
use mimonet::sweep::run_link;
use mimonet_bench::report::FigureReport;
use mimonet_bench::{header, row, seeds, BenchOpts};
use mimonet_channel::presets::{self, FD_GRID};
use serde::Serialize;

fn main() {
    let opts = BenchOpts::from_args();
    let frames = opts.count(150, 30);

    println!("# A5: PER vs normalized Doppler (MCS9 2x2, 28 dB, {frames} frames/pt)");
    println!("# fd in cycles/sample at 20 Msps; 2.6e-5 ~ vehicular at 5.2 GHz");
    header(&[
        "fd x 1e6",
        "300B trk",
        "300B none",
        "1500B trk",
        "1500B none",
    ]);

    let mut report = FigureReport::new(
        "fig_doppler",
        "PER vs normalized Doppler (channel aging)",
        "fd cycles/sample",
        seeds::DOPPLER,
        &opts,
    );

    let arms: [(usize, bool, &str); 4] = [
        (300, true, "300B tracking"),
        (300, false, "300B no-tracking"),
        (1500, true, "1500B tracking"),
        (1500, false, "1500B no-tracking"),
    ];
    let fds: Vec<f64> = FD_GRID.to_vec();
    let mut curves: Vec<Vec<f64>> = Vec::new();
    for (payload, tracking, label) in arms {
        let points: Vec<LinkConfig> = fds
            .iter()
            .map(|&fd| {
                let mut cfg = LinkConfig::new(9, payload, presets::jakes(fd, 2, 2, 28.0));
                cfg.rx.pilot_tracking = tracking;
                cfg
            })
            .collect();
        // Shared master seed: every arm ages the same fading processes.
        let result =
            run_link(&opts.spec(format!("doppler/{label}"), points, frames, seeds::DOPPLER));
        let y: Vec<f64> = result.stats.iter().map(|s| s.per.per()).collect();
        report.series_with_points(
            label,
            &fds,
            &y,
            result.stats.iter().map(|s| s.serialize()).collect(),
        );
        curves.push(y);
    }

    for (i, &fd) in fds.iter().enumerate() {
        row(fd * 1e6, &curves.iter().map(|c| c[i]).collect::<Vec<_>>());
    }

    println!("# expected shape: flat near zero through vehicular Doppler, then a");
    println!("# sharp wall where the channel decorrelates within one frame; the");
    println!("# wall hits long frames at ~4x lower Doppler than short ones, and");
    println!("# pilot tracking pushes it out by recovering the common phase");
    report.finish();
}
