//! A5 (extension) — channel aging under mobility: PER vs normalized
//! Doppler and frame length.
//!
//! The receiver estimates H once per frame (HT-LTFs); with terminal
//! motion the channel decorrelates from that estimate over the frame
//! body. Pilot tracking recovers the *common-phase* component of the
//! drift but not the full matrix rotation, so long frames die first —
//! the effect that motivates per-packet channel estimation (and bounds
//! A-MPDU lengths) in real systems.
//!
//! Context: a 5.2 GHz pedestrian (1 m/s) Doppler is ~17 Hz ≈ 9e-7
//! cycles/sample at 20 Msps; vehicular (30 m/s) ~520 Hz ≈ 2.6e-5. The
//! sweep extends beyond that to expose the failure slope.
//!
//! ```sh
//! cargo run --release -p mimonet-bench --bin fig_doppler [--quick]
//! ```

use mimonet::link::{LinkConfig, LinkSim};
use mimonet_bench::{header, row, RunScale};
use mimonet_channel::{ChannelConfig, Fading};

fn per_at(fd: f64, payload: usize, tracking: bool, frames: usize) -> f64 {
    let mut chan = ChannelConfig::awgn(2, 2, 28.0);
    chan.fading = Fading::Jakes { fd_norm: fd };
    let mut cfg = LinkConfig::new(9, payload, chan);
    cfg.rx.pilot_tracking = tracking;
    LinkSim::new(cfg, 2718).run(frames).per.per()
}

fn main() {
    let scale = RunScale::from_args();
    let frames = scale.count(150, 30);

    println!("# A5: PER vs normalized Doppler (MCS9 2x2, 28 dB, {frames} frames/pt)");
    println!("# fd in cycles/sample at 20 Msps; 2.6e-5 ~ vehicular at 5.2 GHz");
    header(&["fd x 1e6", "300B trk", "300B none", "1500B trk", "1500B none"]);
    for &fd in &[0.0, 2e-6, 1e-5, 3e-5, 1e-4, 3e-4] {
        row(
            fd * 1e6,
            &[
                per_at(fd, 300, true, frames),
                per_at(fd, 300, false, frames),
                per_at(fd, 1500, true, frames),
                per_at(fd, 1500, false, frames),
            ],
        );
    }
    println!("# expected shape: flat near zero through vehicular Doppler, then a");
    println!("# sharp wall where the channel decorrelates within one frame; the");
    println!("# wall hits long frames at ~4x lower Doppler than short ones, and");
    println!("# pilot tracking pushes it out by recovering the common phase");
}
