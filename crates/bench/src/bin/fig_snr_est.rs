//! F5 — SNR-estimator accuracy: estimated vs true SNR for the
//! preamble-based and EVM-based estimators, through the full receiver.
//!
//! Uses the link simulator so both estimators see exactly what a real
//! receive chain sees (after sync and equalization). Note the identity
//! 2×2 channel splits power across antennas, so "true" per-antenna SNR is
//! the configured value; we run SISO to keep the mapping exact.
//!
//! ```sh
//! cargo run --release -p mimonet-bench --bin fig_snr_est [--quick] [--threads N]
//! ```

use mimonet::link::LinkConfig;
use mimonet::sweep::run_link;
use mimonet_bench::report::FigureReport;
use mimonet_bench::{header, row, seeds, snr_grid, BenchOpts};
use mimonet_channel::ChannelConfig;
use mimonet_dsp::stats::Running;
use serde::Serialize;

fn mean_std(r: &Running) -> (f64, f64) {
    if r.count() > 0 {
        (r.mean(), r.std_dev())
    } else {
        (f64::NAN, f64::NAN) // nothing decoded at this SNR
    }
}

fn main() {
    let opts = BenchOpts::from_args();
    let frames = opts.count(200, 20);
    let snrs = snr_grid(0, 30, 3);

    println!("# F5: SNR estimation (SISO MCS3, {frames} frames/point)");
    header(&["true dB", "preamble", "pre std", "EVM-based", "evm std"]);

    let points: Vec<LinkConfig> = snrs
        .iter()
        .map(|&snr| LinkConfig::new(3, 300, ChannelConfig::awgn(1, 1, snr)))
        .collect();
    let result = run_link(&opts.spec("snr_est", points, frames, seeds::SNR_EST));

    let mut preamble = Vec::new();
    let mut evm = Vec::new();
    for (&snr, stats) in snrs.iter().zip(&result.stats) {
        let (p, ps) = mean_std(&stats.snr_est_db);
        let (e, es) = mean_std(&stats.evm_snr_db);
        row(snr, &[p, ps, e, es]);
        preamble.push(p);
        evm.push(e);
    }

    let mut report = FigureReport::new(
        "fig_snr_est",
        "SNR estimator accuracy (SISO MCS3)",
        "true SNR dB",
        seeds::SNR_EST,
        &opts,
    );
    report.series_with_points(
        "preamble",
        &snrs,
        &preamble,
        result.stats.iter().map(|s| s.serialize()).collect(),
    );
    report.series("evm", &snrs, &evm);

    println!("# expected shape: preamble estimate tracks truth within ~1 dB across");
    println!("# the range. The EVM estimate sits ~3 dB BELOW truth at mid/high SNR:");
    println!("# it measures post-equalization SINR, which folds in channel-estimation");
    println!("# noise and detector scaling — the 'fine grained' channel-quality view");
    println!("# the paper uses for link adaptation. Below ~8 dB decision errors snap");
    println!("# toward constellation points and compress the reading further.");
    report.finish();
}
