//! F5 — SNR-estimator accuracy: estimated vs true SNR for the
//! preamble-based and EVM-based estimators, through the full receiver.
//!
//! Uses the link simulator so both estimators see exactly what a real
//! receive chain sees (after sync and equalization). Note the identity
//! 2×2 channel splits power across antennas, so "true" per-antenna SNR is
//! the configured value; we run SISO to keep the mapping exact.
//!
//! ```sh
//! cargo run --release -p mimonet-bench --bin fig_snr_est [--quick]
//! ```

use mimonet::link::{LinkConfig, LinkSim};
use mimonet_bench::{header, row, snr_grid, RunScale};
use mimonet_channel::ChannelConfig;

fn main() {
    let scale = RunScale::from_args();
    let frames = scale.count(200, 20);

    println!("# F5: SNR estimation (SISO MCS3, {frames} frames/point)");
    header(&["true dB", "preamble", "pre std", "EVM-based", "evm std"]);
    for snr in snr_grid(0, 30, 3) {
        let cfg = LinkConfig::new(3, 300, ChannelConfig::awgn(1, 1, snr));
        let stats = LinkSim::new(cfg, 4242 + snr as i64 as u64).run(frames);
        let (p, ps) = if stats.snr_est_db.count() > 0 {
            (stats.snr_est_db.mean(), stats.snr_est_db.std_dev())
        } else {
            (f64::NAN, f64::NAN) // nothing decoded at this SNR
        };
        let (e, es) = if stats.evm_snr_db.count() > 0 {
            (stats.evm_snr_db.mean(), stats.evm_snr_db.std_dev())
        } else {
            (f64::NAN, f64::NAN)
        };
        row(snr, &[p, ps, e, es]);
    }
    println!("# expected shape: preamble estimate tracks truth within ~1 dB across");
    println!("# the range. The EVM estimate sits ~3 dB BELOW truth at mid/high SNR:");
    println!("# it measures post-equalization SINR, which folds in channel-estimation");
    println!("# noise and detector scaling — the 'fine grained' channel-quality view");
    println!("# the paper uses for link adaptation. Below ~8 dB decision errors snap");
    println!("# toward constellation points and compress the reading further.");
}
