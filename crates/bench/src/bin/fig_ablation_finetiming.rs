//! A2 — Ablation: L-LTF cross-correlation fine timing vs the
//! MIMO-extended Van de Beek CP refinement.
//!
//! With `fine_timing` disabled the receiver refines timing with the
//! paper's Van de Beek metric instead of the LTF matched filter. At high
//! SNR on clean channels both pin the FFT window; the sweeps below also
//! probe low-SNR frequency-selective conditions, where the CP correlation
//! is degraded by ISI and reduced correlation energy while the matched
//! filter retains its processing gain.
//!
//! ```sh
//! cargo run --release -p mimonet-bench --bin fig_ablation_finetiming [--quick]
//! ```

use mimonet::link::{LinkConfig, LinkSim};
use mimonet_bench::{header, row, RunScale};
use mimonet_channel::ChannelConfig;

fn main() {
    let scale = RunScale::from_args();
    let frames = scale.count(100, 20);

    println!("# A2a: clean channel, 30 dB, timing offset 13.7 ({frames} frames/pt)");
    header(&["MCS", "PER ltf", "PER vdb", "rmsT ltf", "rmsT vdb"]);
    for &mcs in &[8u8, 11, 13, 15] {
        let run = |fine: bool| {
            let mut chan = ChannelConfig::awgn(2, 2, 30.0);
            chan.timing_offset = 13.7;
            let mut cfg = LinkConfig::new(mcs, 400, chan);
            cfg.rx.fine_timing = fine;
            LinkSim::new(cfg, 7070 + mcs as u64).run(frames)
        };
        let f = run(true);
        let g = run(false);
        row(
            mcs as f64,
            &[f.per.per(), g.per.per(), f.timing_error.rms(), g.timing_error.rms()],
        );
    }

    println!();
    println!("# A2b: TGn-D multipath, SNR sweep, MCS9 ({frames} frames/pt)");
    header(&["SNR dB", "PER ltf", "PER vdb"]);
    for &snr in &[10.0, 12.0, 14.0, 18.0, 24.0] {
        let run = |fine: bool| {
            let mut chan = ChannelConfig::awgn(2, 2, snr);
            chan.fading = mimonet_channel::Fading::Tgn(mimonet_channel::TgnModel::D);
            chan.timing_offset = 9.3;
            let mut cfg = LinkConfig::new(9, 400, chan);
            cfg.rx.fine_timing = fine;
            LinkSim::new(cfg, 7171 + snr as u64).run(frames).per.per()
        };
        row(snr, &[run(true), run(false)]);
    }
    println!("# finding: both refiners pin the window (rms < 1 sample, PER 0) on");
    println!("# the clean channel, and stay statistically indistinguishable on");
    println!("# TGn-D down to the PER waterfall — i.e. the paper's MIMO Van de");
    println!("# Beek is a full substitute for LTF matched filtering across the");
    println!("# swept conditions (its advantage: no known reference needed)");
}
