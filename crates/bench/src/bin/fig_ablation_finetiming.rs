//! A2 — Ablation: L-LTF cross-correlation fine timing vs the
//! MIMO-extended Van de Beek CP refinement.
//!
//! With `fine_timing` disabled the receiver refines timing with the
//! paper's Van de Beek metric instead of the LTF matched filter. At high
//! SNR on clean channels both pin the FFT window; the sweeps below also
//! probe low-SNR frequency-selective conditions, where the CP correlation
//! is degraded by ISI and reduced correlation energy while the matched
//! filter retains its processing gain.
//!
//! ```sh
//! cargo run --release -p mimonet-bench --bin fig_ablation_finetiming [--quick] [--threads N]
//! ```

use mimonet::link::LinkConfig;
use mimonet::sweep::run_link;
use mimonet_bench::report::FigureReport;
use mimonet_bench::{header, row, seeds, BenchOpts};
use mimonet_channel::ChannelConfig;

fn main() {
    let opts = BenchOpts::from_args();
    let frames = opts.count(100, 20);

    let mut report = FigureReport::new(
        "fig_ablation_finetiming",
        "Fine-timing ablation: LTF matched filter vs Van de Beek",
        "MCS / SNR dB",
        seeds::ABLATION_FINETIMING_CLEAN,
        &opts,
    );

    println!("# A2a: clean channel, 30 dB, timing offset 13.7 ({frames} frames/pt)");
    header(&["MCS", "PER ltf", "PER vdb", "rmsT ltf", "rmsT vdb"]);
    let mcs_set = [8u8, 11, 13, 15];
    let mcs_x: Vec<f64> = mcs_set.iter().map(|&m| m as f64).collect();
    let mut clean: Vec<mimonet::sweep::SweepResult<mimonet::link::LinkStats>> = Vec::new();
    for fine in [true, false] {
        let points: Vec<LinkConfig> = mcs_set
            .iter()
            .map(|&mcs| {
                let mut chan = ChannelConfig::awgn(2, 2, 30.0);
                chan.timing_offset = 13.7;
                let mut cfg = LinkConfig::new(mcs, 400, chan);
                cfg.rx.fine_timing = fine;
                cfg
            })
            .collect();
        clean.push(run_link(&opts.spec(
            format!("ablation_finetiming/clean/{fine}"),
            points,
            frames,
            seeds::ABLATION_FINETIMING_CLEAN,
        )));
    }
    for (i, &mcs) in mcs_set.iter().enumerate() {
        let f = &clean[0].stats[i];
        let g = &clean[1].stats[i];
        row(
            mcs as f64,
            &[
                f.per.per(),
                g.per.per(),
                f.timing_error.rms(),
                g.timing_error.rms(),
            ],
        );
    }
    report.series(
        "clean PER ltf",
        &mcs_x,
        &clean[0]
            .stats
            .iter()
            .map(|s| s.per.per())
            .collect::<Vec<_>>(),
    );
    report.series(
        "clean PER vdb",
        &mcs_x,
        &clean[1]
            .stats
            .iter()
            .map(|s| s.per.per())
            .collect::<Vec<_>>(),
    );

    println!();
    println!("# A2b: TGn-D multipath, SNR sweep, MCS9 ({frames} frames/pt)");
    header(&["SNR dB", "PER ltf", "PER vdb"]);
    let snrs = [10.0, 12.0, 14.0, 18.0, 24.0];
    let mut tgn: Vec<Vec<f64>> = Vec::new();
    for fine in [true, false] {
        let points: Vec<LinkConfig> = snrs
            .iter()
            .map(|&snr| {
                let mut chan =
                    mimonet_channel::presets::tgn(mimonet_channel::TgnModel::D, 2, 2, snr);
                chan.timing_offset = 9.3;
                let mut cfg = LinkConfig::new(9, 400, chan);
                cfg.rx.fine_timing = fine;
                cfg
            })
            .collect();
        let result = run_link(&opts.spec(
            format!("ablation_finetiming/tgn/{fine}"),
            points,
            frames,
            seeds::ABLATION_FINETIMING_TGN,
        ));
        tgn.push(result.stats.iter().map(|s| s.per.per()).collect());
    }
    for (i, &snr) in snrs.iter().enumerate() {
        row(snr, &[tgn[0][i], tgn[1][i]]);
    }
    report.series("tgn-d PER ltf", &snrs, &tgn[0]);
    report.series("tgn-d PER vdb", &snrs, &tgn[1]);

    println!("# finding: both refiners pin the window (rms < 1 sample, PER 0) on");
    println!("# the clean channel, and stay statistically indistinguishable on");
    println!("# TGn-D down to the PER waterfall — i.e. the paper's MIMO Van de");
    println!("# Beek is a full substitute for LTF matched filtering across the");
    println!("# swept conditions (its advantage: no known reference needed)");
    report.finish();
}
