//! F1 — Van de Beek timing metric trace.
//!
//! Emits the decision metric `|gamma(theta)| - rho*Phi(theta)` around one
//! OFDM frame at three SNRs, showing the characteristic peak at each
//! symbol boundary. Output: CSV-ish columns `offset, metric@5dB,
//! metric@15dB, metric@25dB` plus the detected peak positions. One
//! realization per SNR — a single-trial sweep, one point per SNR.
//!
//! ```sh
//! cargo run --release -p mimonet-bench --bin fig_sync_metric [--threads N]
//! ```

use mimonet::{Transmitter, TxConfig};
use mimonet_bench::report::FigureReport;
use mimonet_bench::{seeds, BenchOpts};
use mimonet_channel::{ChannelConfig, ChannelSim};
use mimonet_dsp::complex::Complex64;
use mimonet_sync::VanDeBeek;
use serde::Serialize;

fn main() {
    let opts = BenchOpts::from_args();
    let tx = Transmitter::new(TxConfig::new(0).expect("valid MCS"));
    let frame = tx.transmit(&[0x77u8; 60]).expect("valid PSDU");

    let lead = 100usize;
    let snrs = vec![5.0, 15.0, 25.0];

    let frame_ref = &frame;
    let spec = opts
        .spec("sync_metric", snrs.clone(), 1, seeds::SYNC_METRIC)
        .shard_size(1);
    let result = spec.run(|&snr, ctx, trace: &mut Vec<f64>| {
        let mut chan_cfg = ChannelConfig::awgn(1, 1, snr);
        chan_cfg.cfo_norm = 0.1;
        let mut chan = ChannelSim::new(chan_cfg, ctx.seed);
        let mut padded = vec![Complex64::ZERO; lead];
        padded.extend_from_slice(&frame_ref[0]);
        padded.extend(vec![Complex64::ZERO; 100]);
        let (rx, _) = chan.apply(&[padded]);
        let vdb = VanDeBeek::new(64, 16, snr);
        *trace = vdb.metric_trace(&rx[0]);
    });
    let traces = &result.stats;

    println!("# F1: Van de Beek metric trace (frame starts at offset {lead}, CFO = 0.1)");
    println!("# offset metric@5dB metric@15dB metric@25dB");
    let n = traces.iter().map(|t| t.len()).min().unwrap();
    // HT-Data begins 720 samples into this SISO frame (legacy preamble
    // 560 + HT-STF 80 + one HT-LTF 80); the STF/LTF region before it is
    // itself lag-64 periodic and shows as a broad plateau in the trace —
    // which is why receivers gate the CP metric onto the data region.
    let data = lead + 720;
    let (from, to) = (lead.saturating_sub(50), (data + 480).min(n));
    for i in (from..to).step_by(2) {
        println!(
            "{i} {:.4} {:.4} {:.4}",
            traces[0][i], traces[1][i], traces[2][i]
        );
    }

    let mut report = FigureReport::new(
        "fig_sync_metric",
        "Van de Beek timing metric traces",
        "sample offset",
        seeds::SYNC_METRIC,
        &opts,
    );
    let offsets: Vec<f64> = (from..to).step_by(2).map(|i| i as f64).collect();

    println!("#");
    println!("# peak structure in the data region (symbol boundaries every 80):");
    for (t, &snr) in traces.iter().zip(&snrs) {
        let peak = mimonet_dsp::correlate::argmax(&t[data..to]).unwrap() + data;
        let rel = (peak as isize - data as isize).rem_euclid(80);
        println!("# SNR {snr:>4.1} dB: strongest peak at {peak} (mod-80 residue {rel})");
        let y: Vec<f64> = (from..to).step_by(2).map(|i| t[i]).collect();
        report.series_with_points(
            format!("metric@{snr}dB"),
            &offsets,
            &y,
            vec![serde::Value::object([
                ("peak", peak.serialize()),
                ("mod80_residue", (rel as i64).serialize()),
            ])],
        );
    }
    report.finish();
}
