//! P1 — flowgraph profiler: per-block runtime counters, RX-stage timing,
//! and the chaos frame-outcome taxonomy, in one report.
//!
//! Three profiles of the same 2×2 spatial-multiplexing link:
//!
//! 1. **Flowgraph** — the full src→tx→chan→rx→sink graph instrumented
//!    with [`mimonet_runtime::GraphTelemetry`]: per-block work calls,
//!    items in/out, time-in-work, blocked time and buffer high-water
//!    marks, rendered as the per-block table.
//! 2. **RX stages** — per-frame stage timing spans (detect → sync →
//!    SNR est → header → chanest → equalize → FEC) from
//!    [`mimonet::StageProfile`].
//! 3. **Outcome taxonomy** — chaos captures under the harsh fault
//!    schedule with every transmitted frame attributed to exactly one
//!    outcome bucket; the binary asserts 100% attribution.
//!
//! ```sh
//! cargo run --release -p mimonet-bench --bin fig_profile [--quick] [--threads N]
//! ```
//!
//! With `MIMONET_DETERMINISTIC=1` the graph runs on the single-threaded
//! scheduler and every wall-clock field (work/blocked ns, stage ns,
//! `wall_s`, `threads`) is stripped from stdout and the JSON report:
//! what remains — counts, items, high-water marks, outcome taxonomy —
//! is a pure function of the seed, which is what the CI telemetry job
//! diffs against `results/golden/fig_profile.json`.

use mimonet::chaos::{run_chaos_capture_profiled, ChaosConfig};
use mimonet::sweep::{mix, Merge};
use mimonet::{
    build_link_flowgraph, LinkConfig, LinkSim, LinkStats, RxCaptureProfile, RxConfig, RxStage,
    StageProfile, TxConfig,
};
use mimonet_bench::report::FigureReport;
use mimonet_bench::{seeds, BenchOpts};
use mimonet_channel::{presets, ChannelConfig};
use mimonet_runtime::MessageHub;
use serde::{Serialize, Value};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let opts = BenchOpts::from_args();
    let mut report = FigureReport::new(
        "fig_profile",
        "2x2 MCS10 link: flowgraph profile, RX-stage timing, outcome taxonomy",
        "outcome index",
        seeds::PROFILE,
        &opts,
    );
    let det = report.is_deterministic();

    // --- 1. Flowgraph profile: the full link inside the runtime ---
    let psdu_len = 90;
    let n_frames = opts.count(60, 6);
    let psdus: Vec<u8> = (0..n_frames * psdu_len).map(|i| (i % 251) as u8).collect();
    let (mut fg, handle, _) = build_link_flowgraph(
        TxConfig::new(10).expect("valid MCS"),
        ChannelConfig::awgn(2, 2, 32.0),
        RxConfig::new(2),
        &psdus,
        psdu_len,
        seeds::PROFILE,
    );
    let tel = fg.instrument();
    println!("# P1: flowgraph profile, {n_frames} frames through src->tx->chan->rx->sink");
    let t0 = Instant::now();
    if det {
        // Deterministic counts for the golden diff: single-threaded
        // scheduler, no cross-thread interleaving in the counters.
        fg.run(&MessageHub::new()).expect("flowgraph run");
    } else {
        fg.run_threaded(Arc::new(MessageHub::new()))
            .expect("flowgraph run");
    }
    let wall = t0.elapsed();
    assert_eq!(handle.bytes(), psdus, "link must deliver every frame");
    let snap = tel.snapshot();
    print!("{}", snap.render_table((!det).then_some(wall)));
    println!();

    // --- 2. RX-stage timing spans ---
    let stage_frames = opts.count(200, 20);
    let mut stages = StageProfile::default();
    let mut stage_stats = LinkStats::default();
    let mut sim = LinkSim::new(
        LinkConfig::new(10, 120, ChannelConfig::awgn(2, 2, 30.0)),
        seeds::PROFILE ^ 0x51A6,
    );
    for _ in 0..stage_frames {
        sim.run_frame_profiled(&mut stage_stats, &mut stages);
    }
    println!("# RX-stage timing over {stage_frames} clean-channel frames at 30 dB");
    if det {
        // Stage call counts are seed-deterministic; the ns column is not.
        for (stage, calls) in RxStage::ALL.iter().zip(stages.calls.iter()) {
            println!("{:<10} {calls:>9}", stage.name());
        }
    } else {
        print!("{}", stages.render_table());
    }
    println!();

    // --- 3. Chaos outcome taxonomy: 100% frame attribution ---
    let captures = opts.count(40, 6);
    let cfg = ChaosConfig::new(
        8,
        6,
        ChannelConfig::awgn(2, 2, 26.0),
        presets::fault_lookup("harsh_mid_capture").expect("registered fault preset"),
    );
    let mut chaos_stats = LinkStats::default();
    let mut cap = RxCaptureProfile::default();
    for t in 0..captures {
        let capture_seed = mix(seeds::PROFILE ^ mix(0x0070_726F_6669 ^ t as u64));
        run_chaos_capture_profiled(&cfg, capture_seed, &mut chaos_stats, &mut cap);
    }
    stages.merge(&cap.stages);
    let sent = chaos_stats.per.sent();
    assert_eq!(
        chaos_stats.outcomes.total(),
        sent,
        "outcome taxonomy must account for every transmitted frame"
    );
    println!("# chaos outcome taxonomy, {captures} faulted captures x 6 frames");
    println!("{:<14} {:>9}", "outcome", "frames");
    println!("{}", "-".repeat(24));
    for (name, count) in chaos_stats.outcomes.rows() {
        println!("{name:<14} {count:>9}");
    }
    println!("# attribution: {sent}/{sent} frames (100%)");

    let rows = chaos_stats.outcomes.rows();
    let x: Vec<f64> = (0..rows.len()).map(|i| i as f64).collect();
    let y: Vec<f64> = rows.iter().map(|(_, c)| *c as f64).collect();
    report.series_with_points("frame outcomes", &x, &y, vec![chaos_stats.serialize()]);
    report.meta("outcome_labels", Value::array(rows.iter().map(|(n, _)| *n)));

    report.telemetry(Value::object([
        ("graph", snap.to_value(!det)),
        ("rx_stages", stages.to_value(!det)),
        ("outcomes", chaos_stats.outcomes.serialize()),
    ]));
    report.finish();
}
