//! F6 — BER vs SNR, SISO OFDM, all four modulations, uncoded vs coded,
//! AWGN.
//!
//! "Uncoded" is the pre-FEC BER measured on hard decisions of the
//! received coded stream (same waveform, same receiver); "coded" is the
//! residual post-Viterbi payload BER. One MCS per modulation at rate 1/2
//! where available (BPSK/QPSK/16-QAM) and 2/3 for 64-QAM. Each point
//! early-stops once 200 payload bit errors have accumulated.
//!
//! ```sh
//! cargo run --release -p mimonet-bench --bin fig_ber_siso [--quick] [--threads N]
//! ```

use mimonet::link::LinkConfig;
use mimonet::sweep::run_link_until_errors;
use mimonet_bench::report::FigureReport;
use mimonet_bench::{header, row, seeds, snr_grid, BenchOpts};
use mimonet_channel::ChannelConfig;
use serde::Serialize;

const MCS_SET: [(u8, &str); 4] = [(0, "BPSK"), (1, "QPSK"), (3, "16QAM"), (5, "64QAM")];

fn main() {
    let opts = BenchOpts::from_args();
    let max_frames = opts.count(400, 40);
    let snrs = snr_grid(0, 30, 2);

    println!("# F6: SISO BER vs SNR, AWGN (payload 500 B, up to {max_frames} frames/point)");
    println!("# 'u' = uncoded (pre-FEC), 'c' = coded (post-Viterbi residual)");
    let cols: Vec<String> = MCS_SET
        .iter()
        .flat_map(|(_, name)| [format!("{name}-u"), format!("{name}-c")])
        .collect();
    let mut hdr: Vec<&str> = vec!["SNR dB"];
    hdr.extend(cols.iter().map(|s| s.as_str()));
    header(&hdr);

    let mut report = FigureReport::new(
        "fig_ber_siso",
        "SISO BER vs SNR, AWGN, uncoded vs coded",
        "SNR dB",
        seeds::BER_SISO,
        &opts,
    );

    let mut curves: Vec<Vec<f64>> = Vec::new();
    for (mcs, name) in MCS_SET {
        let points: Vec<LinkConfig> = snrs
            .iter()
            .map(|&snr| LinkConfig::new(mcs, 500, ChannelConfig::awgn(1, 1, snr)))
            .collect();
        let spec = opts.spec(
            format!("ber_siso/{name}"),
            points,
            max_frames,
            seeds::BER_SISO,
        );
        let result = run_link_until_errors(&spec, 200);
        let (mut u, mut c) = (Vec::new(), Vec::new());
        for stats in &result.stats {
            if stats.coded_ber.bits() > 0 {
                u.push(stats.coded_ber.ber());
                c.push(stats.payload_ber.ber());
            } else {
                u.push(f64::NAN); // nothing decoded at this point
                c.push(f64::NAN);
            }
        }
        let points_json = result.stats.iter().map(|s| s.serialize()).collect();
        report.series(format!("{name}-uncoded"), &snrs, &u);
        report.series_with_points(format!("{name}-coded"), &snrs, &c, points_json);
        curves.push(u);
        curves.push(c);
    }

    for (i, &snr) in snrs.iter().enumerate() {
        let cells: Vec<f64> = curves.iter().map(|col| col[i]).collect();
        row(snr, &cells);
    }

    println!("# expected shape: classic waterfalls ordered BPSK < QPSK < 16QAM <");
    println!("# 64QAM (~6 dB between QAM orders); coded curves fall off a cliff");
    println!("# ~4-5 dB left of where uncoded reaches ~1e-2");
    report.finish();
}
