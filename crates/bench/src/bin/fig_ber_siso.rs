//! F6 — BER vs SNR, SISO OFDM, all four modulations, uncoded vs coded,
//! AWGN.
//!
//! "Uncoded" is the pre-FEC BER measured on hard decisions of the
//! received coded stream (same waveform, same receiver); "coded" is the
//! residual post-Viterbi payload BER. One MCS per modulation at rate 1/2
//! where available (BPSK/QPSK/16-QAM) and 2/3 for 64-QAM.
//!
//! ```sh
//! cargo run --release -p mimonet-bench --bin fig_ber_siso [--quick]
//! ```

use mimonet::link::{LinkConfig, LinkSim};
use mimonet_bench::{header, snr_grid, RunScale};
use mimonet_channel::ChannelConfig;

const MCS_SET: [(u8, &str); 4] = [(0, "BPSK"), (1, "QPSK"), (3, "16QAM"), (5, "64QAM")];

fn main() {
    let scale = RunScale::from_args();
    let max_frames = scale.count(400, 40);

    println!("# F6: SISO BER vs SNR, AWGN (payload 500 B, up to {max_frames} frames/point)");
    println!("# 'u' = uncoded (pre-FEC), 'c' = coded (post-Viterbi residual)");
    let cols: Vec<String> = MCS_SET
        .iter()
        .flat_map(|(_, name)| [format!("{name}-u"), format!("{name}-c")])
        .collect();
    let mut hdr: Vec<&str> = vec!["SNR dB"];
    hdr.extend(cols.iter().map(|s| s.as_str()));
    header(&hdr);

    for snr in snr_grid(0, 30, 2) {
        let mut cells = Vec::new();
        for (mcs, _) in MCS_SET {
            let cfg = LinkConfig::new(mcs, 500, ChannelConfig::awgn(1, 1, snr));
            let mut sim = LinkSim::new(cfg, 9090 + mcs as u64 * 1000 + snr as i64 as u64);
            let stats = sim.run_until_errors(200, max_frames);
            let (u, c) = if stats.coded_ber.bits() > 0 {
                (stats.coded_ber.ber(), stats.payload_ber.ber())
            } else {
                (f64::NAN, f64::NAN) // nothing decoded at this point
            };
            cells.push(u);
            cells.push(c);
        }
        mimonet_bench::row(snr, &cells);
    }
    println!("# expected shape: classic waterfalls ordered BPSK < QPSK < 16QAM <");
    println!("# 64QAM (~6 dB between QAM orders); coded curves fall off a cliff");
    println!("# ~4-5 dB left of where uncoded reaches ~1e-2");
}
