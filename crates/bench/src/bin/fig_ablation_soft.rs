//! A3 — Ablation: soft-decision vs hard-decision Viterbi in the live
//! receiver, AWGN and TGn-B fading.
//!
//! The textbook gap is ~2 dB on AWGN and larger on fading channels where
//! per-carrier reliability varies (soft decisions weight strong carriers
//! up). Measured as payload BER across SNR for MCS9.
//!
//! ```sh
//! cargo run --release -p mimonet-bench --bin fig_ablation_soft [--quick]
//! ```

use mimonet::link::{LinkConfig, LinkSim};
use mimonet_bench::{header, row, snr_grid, RunScale};
use mimonet_channel::{ChannelConfig, Fading, TgnModel};

fn main() {
    let scale = RunScale::from_args();
    let max_frames = scale.count(300, 30);

    for (name, fading, grid) in [
        ("AWGN", Fading::Ideal, snr_grid(4, 14, 1)),
        ("TGn-B", Fading::Tgn(TgnModel::B), snr_grid(8, 26, 2)),
    ] {
        println!("# A3: soft vs hard Viterbi, {name} (MCS9, 500 B, <= {max_frames} frames/pt)");
        header(&["SNR dB", "soft BER", "hard BER", "soft PER", "hard PER"]);
        for snr in grid {
            let run = |soft: bool| {
                let mut chan = ChannelConfig::awgn(2, 2, snr);
                chan.fading = fading;
                let mut cfg = LinkConfig::new(9, 500, chan);
                cfg.rx.soft_decoding = soft;
                LinkSim::new(cfg, 8080 + snr as i64 as u64).run_until_errors(100, max_frames)
            };
            let s = run(true);
            let h = run(false);
            let cell = |st: &mimonet::link::LinkStats| {
                if st.payload_ber.bits() > 0 {
                    st.payload_ber.ber()
                } else {
                    f64::NAN
                }
            };
            row(snr, &[cell(&s), cell(&h), s.per.per(), h.per.per()]);
        }
        println!();
    }
    println!("# expected shape: soft curves sit ~2 dB left of hard on AWGN and");
    println!("# 2-3 dB on TGn-B; identical at the floor and ceiling");
}
