//! A3 — Ablation: soft-decision vs hard-decision Viterbi in the live
//! receiver, AWGN and TGn-B fading.
//!
//! The textbook gap is ~2 dB on AWGN and larger on fading channels where
//! per-carrier reliability varies (soft decisions weight strong carriers
//! up). Measured as payload BER across SNR for MCS9; each point
//! early-stops at 100 payload bit errors.
//!
//! ```sh
//! cargo run --release -p mimonet-bench --bin fig_ablation_soft [--quick] [--threads N]
//! ```

use mimonet::link::{LinkConfig, LinkStats};
use mimonet::sweep::run_link_until_errors;
use mimonet_bench::report::FigureReport;
use mimonet_bench::{header, row, seeds, snr_grid, BenchOpts};
use mimonet_channel::presets;
use mimonet_channel::ChannelConfig;

fn ber_cell(st: &LinkStats) -> f64 {
    if st.payload_ber.bits() > 0 {
        st.payload_ber.ber()
    } else {
        f64::NAN
    }
}

fn main() {
    let opts = BenchOpts::from_args();
    let max_frames = opts.count(300, 30);

    let mut report = FigureReport::new(
        "fig_ablation_soft",
        "Soft vs hard Viterbi decoding",
        "SNR dB",
        seeds::ABLATION_SOFT,
        &opts,
    );

    for (name, preset, grid) in [
        ("AWGN", "awgn", snr_grid(4, 14, 1)),
        ("TGn-B", "tgn_b", snr_grid(8, 26, 2)),
    ] {
        let fading = presets::lookup(preset).expect("registered preset").fading;
        println!("# A3: soft vs hard Viterbi, {name} (MCS9, 500 B, <= {max_frames} frames/pt)");
        header(&["SNR dB", "soft BER", "hard BER", "soft PER", "hard PER"]);
        let mut results: Vec<mimonet::sweep::SweepResult<LinkStats>> = Vec::new();
        for soft in [true, false] {
            let points: Vec<LinkConfig> = grid
                .iter()
                .map(|&snr| {
                    let mut chan = ChannelConfig::awgn(2, 2, snr);
                    chan.fading = fading;
                    let mut cfg = LinkConfig::new(9, 500, chan);
                    cfg.rx.soft_decoding = soft;
                    cfg
                })
                .collect();
            let spec = opts.spec(
                format!("ablation_soft/{name}/{soft}"),
                points,
                max_frames,
                seeds::ABLATION_SOFT,
            );
            results.push(run_link_until_errors(&spec, 100));
        }
        for (i, &snr) in grid.iter().enumerate() {
            let s = &results[0].stats[i];
            let h = &results[1].stats[i];
            row(snr, &[ber_cell(s), ber_cell(h), s.per.per(), h.per.per()]);
        }
        report.series(
            format!("{name} soft BER"),
            &grid,
            &results[0].stats.iter().map(ber_cell).collect::<Vec<_>>(),
        );
        report.series(
            format!("{name} hard BER"),
            &grid,
            &results[1].stats.iter().map(ber_cell).collect::<Vec<_>>(),
        );
        println!();
    }
    println!("# expected shape: soft curves sit ~2 dB left of hard on AWGN and");
    println!("# 2-3 dB on TGn-B; identical at the floor and ceiling");
    report.finish();
}
