//! T2 — FEC coding gain per rate: the SNR where each configuration's
//! payload BER crosses 1e-4, against its own uncoded (pre-FEC) curve.
//!
//! Runs the full link (SISO QPSK carrier, AWGN) at each code rate by
//! picking the MCS with that rate, scanning SNR in 0.5 dB steps, and
//! interpolating the crossing. Coding gain = uncoded-crossing −
//! coded-crossing in dB. Each probe point is a one-point sweep with
//! error-count early stopping, so the scan itself parallelizes across
//! shards.
//!
//! ```sh
//! cargo run --release -p mimonet-bench --bin table_fec_gain [--quick] [--threads N]
//! ```

use mimonet::link::{LinkConfig, LinkStats};
use mimonet::sweep::run_link_until_errors;
use mimonet_bench::report::FigureReport;
use mimonet_bench::{seeds, BenchOpts};
use mimonet_channel::ChannelConfig;
use serde::{Serialize, Value};

const TARGET_BER: f64 = 1e-4;

/// Scans SNR (dB) for the first point where `ber(snr)` drops below the
/// target, then linearly interpolates in log-BER.
fn crossing(mut ber_at: impl FnMut(f64) -> f64, lo: f64, hi: f64, step: f64) -> Option<f64> {
    let mut prev: Option<(f64, f64)> = None;
    let mut snr = lo;
    while snr <= hi {
        let ber = ber_at(snr).max(1e-12);
        if ber <= TARGET_BER {
            return Some(match prev {
                Some((psnr, pber)) if pber > TARGET_BER => {
                    let t = (pber.log10() - TARGET_BER.log10()) / (pber.log10() - ber.log10());
                    psnr + t * (snr - psnr)
                }
                _ => snr,
            });
        }
        prev = Some((snr, ber));
        snr += step;
    }
    None
}

fn main() {
    let opts = BenchOpts::from_args();
    let max_frames = opts.count(600, 60);

    // MCS with QPSK where possible; 64-QAM MCS5/7 carry rates 2/3 and 5/6.
    let configs: [(u8, &str); 4] = [(1, "1/2"), (5, "2/3"), (2, "3/4"), (7, "5/6")];

    println!("# T2: coding gain at BER = 1e-4 (SISO, AWGN, 500 B, <= {max_frames} frames/pt)");
    println!(
        "{:>5} {:>7} {:>9} {:>14} {:>14} {:>10}",
        "MCS", "rate", "mod", "uncoded@1e-4", "coded@1e-4", "gain dB"
    );
    println!("{}", "-".repeat(64));

    let mut rows: Vec<Value> = Vec::new();
    for (mcs, rate) in configs {
        // One full-link run per probe SNR provides both BER readings.
        let stats_at = |snr: f64| -> LinkStats {
            let cfg = LinkConfig::new(mcs, 500, ChannelConfig::awgn(1, 1, snr));
            let spec = opts.spec(
                format!("fec_gain/mcs{mcs}"),
                vec![cfg],
                max_frames,
                seeds::FEC_GAIN + mcs as u64,
            );
            run_link_until_errors(&spec, 60).stats.remove(0)
        };
        let coded_ber = |snr: f64| {
            let stats = stats_at(snr);
            if stats.payload_ber.bits() == 0 {
                1.0
            } else {
                stats.payload_ber.ber()
            }
        };
        let uncoded_ber = |snr: f64| {
            let stats = stats_at(snr);
            if stats.coded_ber.bits() == 0 {
                1.0
            } else {
                stats.coded_ber.ber()
            }
        };
        let modulation = mimonet_frame::mcs::Mcs::from_index(mcs).unwrap().modulation;
        let coded = crossing(coded_ber, 0.0, 30.0, 0.5);
        let uncoded = crossing(uncoded_ber, 0.0, 40.0, 0.5);
        match (uncoded, coded) {
            (Some(u), Some(c)) => println!(
                "{:>5} {:>7} {:>9} {:>14.1} {:>14.1} {:>10.1}",
                mcs,
                rate,
                modulation.to_string(),
                u,
                c,
                u - c
            ),
            _ => println!(
                "{:>5} {:>7} {:>9} {:>14?} {:>14?} {:>10}",
                mcs,
                rate,
                modulation.to_string(),
                uncoded,
                coded,
                "-"
            ),
        }
        let opt_db = |v: Option<f64>| v.map(|x| x.serialize()).unwrap_or(Value::Null);
        rows.push(Value::object([
            ("mcs", mcs.serialize()),
            ("rate", rate.serialize()),
            ("modulation", modulation.to_string().serialize()),
            ("uncoded_crossing_db", opt_db(uncoded)),
            ("coded_crossing_db", opt_db(coded)),
            (
                "gain_db",
                match (uncoded, coded) {
                    (Some(u), Some(c)) => (u - c).serialize(),
                    _ => Value::Null,
                },
            ),
        ]));
    }
    println!("# expected shape: gains of roughly 5-6 dB at rate 1/2 shrinking");
    println!("# toward ~3 dB at rate 5/6 (less redundancy, less gain)");

    let mut report = FigureReport::new(
        "table_fec_gain",
        "FEC coding gain at BER 1e-4",
        "code rate",
        seeds::FEC_GAIN,
        &opts,
    );
    report.meta("target_ber", TARGET_BER.serialize());
    report.meta("rows", Value::Array(rows));
    report.finish();
}
