//! T2 — FEC coding gain per rate: the SNR where each configuration's
//! payload BER crosses 1e-4, against its own uncoded (pre-FEC) curve.
//!
//! Runs the full link (SISO QPSK carrier, AWGN) at each code rate by
//! picking the MCS with that rate, scanning SNR in 0.5 dB steps, and
//! interpolating the crossing. Coding gain = uncoded-crossing −
//! coded-crossing in dB.
//!
//! ```sh
//! cargo run --release -p mimonet-bench --bin table_fec_gain [--quick]
//! ```

use mimonet::link::{LinkConfig, LinkSim};
use mimonet_bench::RunScale;
use mimonet_channel::ChannelConfig;

const TARGET_BER: f64 = 1e-4;

/// Scans SNR (dB) for the first point where `ber(snr)` drops below the
/// target, then linearly interpolates in log-BER.
fn crossing(mut ber_at: impl FnMut(f64) -> f64, lo: f64, hi: f64, step: f64) -> Option<f64> {
    let mut prev: Option<(f64, f64)> = None;
    let mut snr = lo;
    while snr <= hi {
        let ber = ber_at(snr).max(1e-12);
        if ber <= TARGET_BER {
            return Some(match prev {
                Some((psnr, pber)) if pber > TARGET_BER => {
                    let t = (pber.log10() - TARGET_BER.log10())
                        / (pber.log10() - ber.log10());
                    psnr + t * (snr - psnr)
                }
                _ => snr,
            });
        }
        prev = Some((snr, ber));
        snr += step;
    }
    None
}

fn main() {
    let scale = RunScale::from_args();
    let max_frames = scale.count(600, 60);

    // MCS with QPSK where possible; 64-QAM MCS5/7 carry rates 2/3 and 5/6.
    let configs: [(u8, &str); 4] = [(1, "1/2"), (5, "2/3"), (2, "3/4"), (7, "5/6")];

    println!("# T2: coding gain at BER = 1e-4 (SISO, AWGN, 500 B, <= {max_frames} frames/pt)");
    println!(
        "{:>5} {:>7} {:>9} {:>14} {:>14} {:>10}",
        "MCS", "rate", "mod", "uncoded@1e-4", "coded@1e-4", "gain dB"
    );
    println!("{}", "-".repeat(64));

    for (mcs, rate) in configs {
        let coded_ber = |snr: f64| {
            let cfg = LinkConfig::new(mcs, 500, ChannelConfig::awgn(1, 1, snr));
            let stats = LinkSim::new(cfg, 3030 + mcs as u64).run_until_errors(60, max_frames);
            if stats.payload_ber.bits() == 0 {
                1.0
            } else {
                stats.payload_ber.ber()
            }
        };
        let uncoded_ber = |snr: f64| {
            let cfg = LinkConfig::new(mcs, 500, ChannelConfig::awgn(1, 1, snr));
            let stats = LinkSim::new(cfg, 3030 + mcs as u64).run_until_errors(60, max_frames);
            if stats.coded_ber.bits() == 0 {
                1.0
            } else {
                stats.coded_ber.ber()
            }
        };
        let modulation = mimonet_frame::mcs::Mcs::from_index(mcs).unwrap().modulation;
        let coded = crossing(coded_ber, 0.0, 30.0, 0.5);
        let uncoded = crossing(uncoded_ber, 0.0, 40.0, 0.5);
        match (uncoded, coded) {
            (Some(u), Some(c)) => println!(
                "{:>5} {:>7} {:>9} {:>14.1} {:>14.1} {:>10.1}",
                mcs,
                rate,
                modulation.to_string(),
                u,
                c,
                u - c
            ),
            _ => println!(
                "{:>5} {:>7} {:>9} {:>14?} {:>14?} {:>10}",
                mcs, rate, modulation.to_string(), uncoded, coded, "-"
            ),
        }
    }
    println!("# expected shape: gains of roughly 5-6 dB at rate 1/2 shrinking");
    println!("# toward ~3 dB at rate 5/6 (less redundancy, less gain)");
}
