//! T4 — the I/O subsystem end to end:
//!
//! 1. **codec** — wire-format encode/decode throughput for IQ chunks
//!    (chunks/sec and samples/sec), with a bit-exact round-trip check.
//! 2. **loopback** — a full `mimonet-linkd` session over a TCP loopback
//!    socket: end-to-end frame goodput (payload bits delivered per
//!    wall-clock second) versus the same session run in-process.
//! 3. **queue policy** — drop rate versus bounded-queue depth under a
//!    seeded burst arrival process, for both `DropOldest` and
//!    `DropNewest`; a pure function of the seed, so these curves are the
//!    deterministic golden the CI job diffs.
//!
//! ```sh
//! cargo run --release -p mimonet-bench --bin bench_io [--quick]
//! ```
//!
//! Writes `results/BENCH_io.json`. With `MIMONET_DETERMINISTIC=1` every
//! wall-clock-derived field (`*_ns`, `*_per_sec`, `goodput_mbps`,
//! `wall_s`, `threads`) is omitted and the report is a pure function of
//! `seeds::IO`.

use mimonet_bench::report::FigureReport;
use mimonet_bench::{seeds, BenchOpts};
use mimonet_dsp::complex::Complex64;
use mimonet_io::client::LinkClient;
use mimonet_io::linkd::LinkServer;
use mimonet_io::queue::{BoundedQueue, OverflowPolicy};
use mimonet_io::session::{run_session, Scheduler};
use mimonet_io::wire::{decode, encode, IqChunk, SessionConfig, WireMsg};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Serialize, Value};
use std::hint::black_box;
use std::time::Instant;

/// Best-of-`reps` mean per-call nanoseconds over `iters` calls.
fn time_ns(reps: usize, iters: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        for _ in 0..iters {
            f();
        }
        best = best.min(t0.elapsed().as_nanos() as f64 / iters as f64);
    }
    best
}

/// Section 1: wire-codec throughput on a 2-antenna 4096-sample chunk.
fn bench_codec(det: bool, opts: &BenchOpts) -> Value {
    let chunk_len = 4096usize;
    let n_ant = 2usize;
    let mut rng = ChaCha8Rng::seed_from_u64(seeds::IO);
    let chunk = IqChunk {
        seq: 7,
        samples: (0..n_ant)
            .map(|_| {
                (0..chunk_len)
                    .map(|_| Complex64::new(rng.gen::<f64>() - 0.5, rng.gen::<f64>() - 0.5))
                    .collect()
            })
            .collect(),
    };
    let frame = encode(&WireMsg::IqChunk(chunk.clone()));
    let (back, consumed) = decode(&frame).expect("codec round-trip");
    let round_trip_ok =
        consumed == frame.len() && matches!(&back, WireMsg::IqChunk(c) if *c == chunk);

    let mut fields = vec![
        ("chunk_len", chunk_len.serialize()),
        ("n_ant", n_ant.serialize()),
        ("frame_bytes", frame.len().serialize()),
        ("round_trip_ok", round_trip_ok.serialize()),
    ];
    if !det {
        let iters = opts.count(200, 20);
        let msg = WireMsg::IqChunk(chunk);
        let enc_ns = time_ns(3, iters, || {
            black_box(encode(&msg));
        });
        let dec_ns = time_ns(3, iters, || {
            black_box(decode(&frame).unwrap());
        });
        let samples = (chunk_len * n_ant) as f64;
        fields.push(("encode_ns", enc_ns.serialize()));
        fields.push(("decode_ns", dec_ns.serialize()));
        fields.push(("encode_chunks_per_sec", (1e9 / enc_ns).serialize()));
        fields.push(("decode_chunks_per_sec", (1e9 / dec_ns).serialize()));
        fields.push((
            "encode_msamples_per_sec",
            (samples * 1e3 / enc_ns).serialize(),
        ));
        fields.push((
            "decode_msamples_per_sec",
            (samples * 1e3 / dec_ns).serialize(),
        ));
    }
    Value::object(fields)
}

/// Section 2: a served loopback session versus the in-process reference.
fn bench_loopback(det: bool, opts: &BenchOpts) -> Value {
    let cfg = SessionConfig {
        mcs: 9,
        payload_len: 500,
        n_frames: opts.count(16, 2) as u32,
        snr_db: 30.0,
        seed: seeds::IO,
    };
    let local = run_session(&cfg, Scheduler::Threaded).expect("local session");

    let server = LinkServer::bind("127.0.0.1:0").expect("bind loopback");
    let mut client = LinkClient::connect(server.local_addr()).expect("connect");
    let t0 = Instant::now();
    let served = client.run_session(&cfg).expect("served session");
    let wall = t0.elapsed();
    client.close().ok();
    server.shutdown();

    let matches_local = served.frames == local.decoded;
    let frames_ok = local.stats.per.ok();
    let payload_bits = frames_ok * u64::from(cfg.payload_len) * 8;
    let mut fields = vec![
        ("mcs", cfg.mcs.serialize()),
        ("payload_len", cfg.payload_len.serialize()),
        ("frames_sent", cfg.n_frames.serialize()),
        ("frames_ok", frames_ok.serialize()),
        ("per", local.stats.per.per().serialize()),
        ("matches_local", matches_local.serialize()),
    ];
    if !det {
        let secs = wall.as_secs_f64().max(1e-9);
        fields.push(("wall_s", secs.serialize()));
        fields.push((
            "goodput_mbps",
            (payload_bits as f64 / secs / 1e6).serialize(),
        ));
    }
    Value::object(fields)
}

/// Section 3: drop rate vs queue depth under a seeded bursty producer.
///
/// Each step delivers one chunk; the consumer then drains 0..=2 chunks
/// (seeded). The producer runs hot (mean drain rate ~= arrival rate), so
/// shallow queues shed load and deeper queues absorb the bursts — the
/// depth/drop trade the transport blocks expose. Pure function of the
/// seed: no threads, no clocks.
fn queue_drop_curve(policy: OverflowPolicy, n_chunks: usize) -> (Vec<f64>, Vec<f64>) {
    let depths = [1usize, 2, 4, 8, 16, 32];
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for &depth in &depths {
        let q = BoundedQueue::new(depth, policy);
        let mut rng = ChaCha8Rng::seed_from_u64(seeds::IO ^ depth as u64);
        for seq in 0..n_chunks as u64 {
            q.push(seq);
            for _ in 0..rng.gen_range(0..3u32) {
                q.try_pop();
            }
        }
        xs.push(depth as f64);
        ys.push(q.stats().dropped() as f64 / n_chunks as f64);
    }
    (xs, ys)
}

fn main() {
    let opts = BenchOpts::from_args();
    let mut report = FigureReport::new(
        "BENCH_io",
        "I/O subsystem: wire codec throughput, linkd loopback goodput, queue drop rate vs depth",
        "queue depth (chunks)",
        seeds::IO,
        &opts,
    );
    let det = report.is_deterministic();

    println!("# T4: I/O subsystem bench");
    let codec = bench_codec(det, &opts);
    println!("codec: {}", serde::json::to_string(&codec));
    let loopback = bench_loopback(det, &opts);
    println!("loopback: {}", serde::json::to_string(&loopback));

    // The deterministic curves: drop rate vs depth per policy.
    let n_chunks = 10_000;
    let (x_old, y_old) = queue_drop_curve(OverflowPolicy::DropOldest, n_chunks);
    let (x_new, y_new) = queue_drop_curve(OverflowPolicy::DropNewest, n_chunks);
    println!("drop_rate_vs_depth (DropOldest): {y_old:?}");
    println!("drop_rate_vs_depth (DropNewest): {y_new:?}");
    assert!(
        y_old.windows(2).all(|w| w[1] <= w[0]),
        "drop rate must not rise with queue depth"
    );

    report.series("drop_rate_drop_oldest", &x_old, &y_old);
    report.series("drop_rate_drop_newest", &x_new, &y_new);
    report.meta("codec", codec);
    report.meta("loopback", loopback);
    report.meta("queue_chunks", n_chunks.serialize());
    report.finish();
}
