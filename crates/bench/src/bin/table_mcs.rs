//! T1 — The MCS table: modulation, code rate, N_DBPS and PHY rate for
//! MCS 0–15, checked against IEEE 802.11n Table 20-30/31, plus measured
//! encoder throughput per MCS on this machine.
//!
//! ```sh
//! cargo run --release -p mimonet-bench --bin table_mcs
//! ```

use mimonet::{Transmitter, TxConfig};
use mimonet_frame::mcs::Mcs;
use std::time::Instant;

/// 802.11n 20 MHz / 800 ns GI reference rates in Mb/s (Tables 20-30..33).
const REFERENCE_MBPS: [f64; 32] = [
    6.5, 13.0, 19.5, 26.0, 39.0, 52.0, 58.5, 65.0, //
    13.0, 26.0, 39.0, 52.0, 78.0, 104.0, 117.0, 130.0, //
    19.5, 39.0, 58.5, 78.0, 117.0, 156.0, 175.5, 195.0, //
    26.0, 52.0, 78.0, 104.0, 156.0, 208.0, 234.0, 260.0,
];

fn main() {
    println!("# T1: HT MCS table (20 MHz, 800 ns GI) — implementation vs standard");
    println!(
        "{:>5} {:>8} {:>7} {:>5} {:>7} {:>10} {:>10} {:>6} {:>12}",
        "MCS", "mod", "rate", "Nss", "N_DBPS", "impl Mb/s", "std Mb/s", "match", "TX Msamp/s"
    );
    println!("{}", "-".repeat(80));

    let psdu = vec![0xA5u8; 1000];
    for mcs in Mcs::all() {
        let tx = Transmitter::new(TxConfig::new(mcs.index).expect("valid"));
        // Measure transmit-chain throughput (samples/s of baseband out).
        let reps = 20;
        let start = Instant::now();
        let mut samples = 0usize;
        for _ in 0..reps {
            let s = tx.transmit(&psdu).expect("valid PSDU");
            samples += s[0].len() * s.len();
        }
        let elapsed = start.elapsed().as_secs_f64();
        let msps = samples as f64 / elapsed / 1e6;

        let reference = REFERENCE_MBPS[mcs.index as usize];
        let matches = (mcs.rate_mbps() - reference).abs() < 1e-9;
        println!(
            "{:>5} {:>8} {:>7} {:>5} {:>7} {:>10.1} {:>10.1} {:>6} {:>12.1}",
            mcs.index,
            mcs.modulation.to_string(),
            mcs.code_rate.to_string(),
            mcs.n_streams,
            mcs.n_dbps(),
            mcs.rate_mbps(),
            reference,
            if matches { "yes" } else { "NO" },
            msps
        );
        assert!(matches, "MCS{} deviates from the standard table", mcs.index);
    }
    println!("# all 32 rows match IEEE 802.11n Tables 20-30..33");
    println!("# (real-time at 20 Msps needs >= 20 Msamp/s in the TX column)");
}
