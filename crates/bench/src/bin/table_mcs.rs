//! T1 — The MCS table: modulation, code rate, N_DBPS and PHY rate for
//! MCS 0–15, checked against IEEE 802.11n Table 20-30/31, plus measured
//! encoder throughput per MCS on this machine.
//!
//! The throughput measurement runs each MCS's transmit chain as a
//! single-threaded, single-point sweep so wall time reflects one core
//! (the real-time question is per-core headroom).
//!
//! ```sh
//! cargo run --release -p mimonet-bench --bin table_mcs
//! ```

use mimonet::sweep::SweepSpec;
use mimonet::{Transmitter, TxConfig};
use mimonet_bench::report::FigureReport;
use mimonet_bench::{seeds, BenchOpts};
use mimonet_frame::mcs::Mcs;
use serde::{Serialize, Value};

/// 802.11n 20 MHz / 800 ns GI reference rates in Mb/s (Tables 20-30..33).
const REFERENCE_MBPS: [f64; 32] = [
    6.5, 13.0, 19.5, 26.0, 39.0, 52.0, 58.5, 65.0, //
    13.0, 26.0, 39.0, 52.0, 78.0, 104.0, 117.0, 130.0, //
    19.5, 39.0, 58.5, 78.0, 117.0, 156.0, 175.5, 195.0, //
    26.0, 52.0, 78.0, 104.0, 156.0, 208.0, 234.0, 260.0,
];

fn main() {
    let opts = BenchOpts::from_args();
    println!("# T1: HT MCS table (20 MHz, 800 ns GI) — implementation vs standard");
    println!(
        "{:>5} {:>8} {:>7} {:>5} {:>7} {:>10} {:>10} {:>6} {:>12}",
        "MCS", "mod", "rate", "Nss", "N_DBPS", "impl Mb/s", "std Mb/s", "match", "TX Msamp/s"
    );
    println!("{}", "-".repeat(80));

    let mut rows: Vec<Value> = Vec::new();
    let mut mcs_x = Vec::new();
    let mut msps_y = Vec::new();
    let psdu = vec![0xA5u8; 1000];
    for mcs in Mcs::all() {
        let tx = Transmitter::new(TxConfig::new(mcs.index).expect("valid"));
        // Measure transmit-chain throughput (samples/s of baseband out):
        // one point, 20 frames, one worker — timing wants a single core.
        let psdu_ref = &psdu;
        let tx_ref = &tx;
        let spec = SweepSpec::new(format!("table_mcs/{}", mcs.index), vec![mcs.index], 20)
            .seed(seeds::TABLE_MCS)
            .threads(1);
        let result = spec.run(|_, ctx, samples: &mut u64| {
            for _ in 0..ctx.trials {
                let s = tx_ref.transmit(psdu_ref).expect("valid PSDU");
                *samples += (s[0].len() * s.len()) as u64;
            }
        });
        let msps = result.stats[0] as f64 / result.wall.as_secs_f64() / 1e6;

        let reference = REFERENCE_MBPS[mcs.index as usize];
        let matches = (mcs.rate_mbps() - reference).abs() < 1e-9;
        println!(
            "{:>5} {:>8} {:>7} {:>5} {:>7} {:>10.1} {:>10.1} {:>6} {:>12.1}",
            mcs.index,
            mcs.modulation.to_string(),
            mcs.code_rate.to_string(),
            mcs.n_streams,
            mcs.n_dbps(),
            mcs.rate_mbps(),
            reference,
            if matches { "yes" } else { "NO" },
            msps
        );
        assert!(matches, "MCS{} deviates from the standard table", mcs.index);
        mcs_x.push(mcs.index as f64);
        msps_y.push(msps);
        rows.push(Value::object([
            ("mcs", mcs.index.serialize()),
            ("modulation", mcs.modulation.to_string().serialize()),
            ("code_rate", mcs.code_rate.to_string().serialize()),
            ("n_streams", mcs.n_streams.serialize()),
            ("n_dbps", mcs.n_dbps().serialize()),
            ("impl_mbps", mcs.rate_mbps().serialize()),
            ("std_mbps", reference.serialize()),
            ("tx_msamp_per_s", msps.serialize()),
        ]));
    }
    println!("# all 32 rows match IEEE 802.11n Tables 20-30..33");
    println!("# (real-time at 20 Msps needs >= 20 Msamp/s in the TX column)");

    let mut report = FigureReport::new(
        "table_mcs",
        "HT MCS table with measured TX throughput",
        "MCS index",
        seeds::TABLE_MCS,
        &opts,
    );
    report.series("tx_msamp_per_s", &mcs_x, &msps_y);
    report.meta("rows", Value::Array(rows));
    report.finish();
}
