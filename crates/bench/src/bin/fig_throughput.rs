//! F9 — Goodput vs SNR per MCS: the rate-adaptation envelope.
//!
//! Goodput = delivered payload bits / total airtime, per MCS, over AWGN.
//! The upper envelope of the curves is what an ideal rate controller
//! achieves; the crossover points are where adaptation should switch.
//!
//! ```sh
//! cargo run --release -p mimonet-bench --bin fig_throughput [--quick] [--threads N]
//! ```

use mimonet::link::{LinkConfig, LinkSim};
use mimonet::sweep::run_link;
use mimonet_bench::report::FigureReport;
use mimonet_bench::{header, row, seeds, snr_grid, BenchOpts};
use mimonet_channel::ChannelConfig;
use serde::{Serialize, Value};

const PAYLOAD: usize = 1000;
const MCS_SET: [u8; 6] = [8, 9, 10, 11, 13, 15];

fn main() {
    let opts = BenchOpts::from_args();
    let frames = opts.count(200, 20);
    let snrs = snr_grid(2, 36, 2);

    println!("# F9: goodput (Mb/s) vs SNR per 2-stream MCS, AWGN, {PAYLOAD} B, {frames} frames/pt");
    let names: Vec<String> = MCS_SET.iter().map(|m| format!("MCS{m}")).collect();
    let mut hdr = vec!["SNR dB"];
    hdr.extend(names.iter().map(|s| s.as_str()));
    header(&hdr);

    let mut report = FigureReport::new(
        "fig_throughput",
        "Goodput vs SNR per MCS (rate-adaptation envelope)",
        "SNR dB",
        seeds::THROUGHPUT,
        &opts,
    );

    // goodput[mcs_idx][snr_idx]
    let mut curves: Vec<Vec<f64>> = Vec::new();
    for (&mcs, name) in MCS_SET.iter().zip(&names) {
        let cfg0 = LinkConfig::new(mcs, PAYLOAD, ChannelConfig::awgn(2, 2, snrs[0]));
        let airtime = LinkSim::new(cfg0, 0).frame_airtime_us();
        let points: Vec<LinkConfig> = snrs
            .iter()
            .map(|&snr| LinkConfig::new(mcs, PAYLOAD, ChannelConfig::awgn(2, 2, snr)))
            .collect();
        let result = run_link(&opts.spec(
            format!("throughput/{name}"),
            points,
            frames,
            seeds::THROUGHPUT,
        ));
        let y: Vec<f64> = result
            .stats
            .iter()
            .map(|s| s.per.goodput_mbps(PAYLOAD, airtime))
            .collect();
        report.series_with_points(
            name.clone(),
            &snrs,
            &y,
            result.stats.iter().map(|s| s.serialize()).collect(),
        );
        curves.push(y);
    }

    let mut envelope: Vec<(f64, u8, f64)> = Vec::new();
    for (i, &snr) in snrs.iter().enumerate() {
        let cells: Vec<f64> = curves.iter().map(|c| c[i]).collect();
        let best = MCS_SET
            .iter()
            .zip(&cells)
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(&m, &g)| (m, g))
            .unwrap();
        envelope.push((snr, best.0, best.1));
        row(snr, &cells);
    }

    println!();
    println!("# rate-adaptation envelope (best MCS per SNR):");
    let mut switches: Vec<Value> = Vec::new();
    let mut last = u8::MAX;
    for (snr, mcs, goodput) in envelope {
        if mcs != last && goodput > 0.0 {
            println!("#   from {snr:>5.1} dB: MCS{mcs} ({goodput:.1} Mb/s)");
            switches.push(Value::object([
                ("snr_db", snr.serialize()),
                ("mcs", mcs.serialize()),
                ("goodput_mbps", goodput.serialize()),
            ]));
            last = mcs;
        }
    }
    report.meta("envelope", Value::Array(switches));

    println!("# expected shape: each MCS rises to a plateau at its PHY rate x");
    println!("# payload efficiency; higher MCS plateau higher but start later;");
    println!("# envelope switches MCS every ~3-5 dB");
    report.finish();
}
