//! F9 — Goodput vs SNR per MCS: the rate-adaptation envelope.
//!
//! Goodput = delivered payload bits / total airtime, per MCS, over AWGN.
//! The upper envelope of the curves is what an ideal rate controller
//! achieves; the crossover points are where adaptation should switch.
//!
//! ```sh
//! cargo run --release -p mimonet-bench --bin fig_throughput [--quick]
//! ```

use mimonet::link::{LinkConfig, LinkSim};
use mimonet_bench::{header, row, snr_grid, RunScale};
use mimonet_channel::ChannelConfig;

const PAYLOAD: usize = 1000;
const MCS_SET: [u8; 6] = [8, 9, 10, 11, 13, 15];

fn main() {
    let scale = RunScale::from_args();
    let frames = scale.count(200, 20);

    println!("# F9: goodput (Mb/s) vs SNR per 2-stream MCS, AWGN, {PAYLOAD} B, {frames} frames/pt");
    let names: Vec<String> = MCS_SET.iter().map(|m| format!("MCS{m}")).collect();
    let mut hdr = vec!["SNR dB"];
    hdr.extend(names.iter().map(|s| s.as_str()));
    header(&hdr);

    let mut envelope: Vec<(f64, u8, f64)> = Vec::new();
    for snr in snr_grid(2, 36, 2) {
        let mut cells = Vec::new();
        let mut best = (0u8, 0.0f64);
        for &mcs in &MCS_SET {
            let cfg = LinkConfig::new(mcs, PAYLOAD, ChannelConfig::awgn(2, 2, snr));
            let mut sim = LinkSim::new(cfg, 2020 + mcs as u64 * 37 + snr as i64 as u64);
            let airtime = sim.frame_airtime_us();
            let stats = sim.run(frames);
            let goodput = stats.per.goodput_mbps(PAYLOAD, airtime);
            if goodput > best.1 {
                best = (mcs, goodput);
            }
            cells.push(goodput);
        }
        envelope.push((snr, best.0, best.1));
        row(snr, &cells);
    }

    println!();
    println!("# rate-adaptation envelope (best MCS per SNR):");
    let mut last = u8::MAX;
    for (snr, mcs, goodput) in envelope {
        if mcs != last && goodput > 0.0 {
            println!("#   from {snr:>5.1} dB: MCS{mcs} ({goodput:.1} Mb/s)");
            last = mcs;
        }
    }
    println!("# expected shape: each MCS rises to a plateau at its PHY rate x");
    println!("# payload efficiency; higher MCS plateau higher but start later;");
    println!("# envelope switches MCS every ~3-5 dB");
}
