//! F10 (extension) — diversity vs multiplexing: Alamouti STBC against
//! 2-stream spatial multiplexing at matched spectral efficiency.
//!
//! Both configurations use two TX antennas and carry 2 bits/carrier-use:
//! STBC sends one 16-QAM symbol stream at half rate (diversity order
//! 2·n_rx), SM sends two QPSK streams (rate 2, diversity from RX only).
//! Per-subcarrier symbol-level Monte Carlo over flat Rayleigh — the
//! classic diversity–multiplexing crossover. All three arms share each
//! trial's channel draw (paired comparison).
//!
//! ```sh
//! cargo run --release -p mimonet-bench --bin fig_stbc_vs_sm [--quick] [--threads N]
//! ```

use mimonet_bench::report::FigureReport;
use mimonet_bench::{header, row, seeds, snr_grid, BenchOpts};
use mimonet_channel::noise::crandn;
use mimonet_detect::linalg::CMat;
use mimonet_detect::stbc::{alamouti_decode, alamouti_encode};
use mimonet_detect::{detect, DetectorKind};
use mimonet_dsp::complex::Complex64;
use mimonet_frame::modulation::Modulation;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let opts = BenchOpts::from_args();
    let trials = opts.count(20000, 2000);
    let snrs = snr_grid(0, 30, 3);

    println!("# F10: STBC (16-QAM, rate 1) vs SM-ML (2x QPSK, rate 2) vs SM-ZF");
    println!("# 2x2 flat Rayleigh, equal spectral efficiency (4 bits/carrier-use),");
    println!("# {trials} channel uses per point, raw symbol BER");
    header(&["SNR dB", "STBC", "SM-ML", "SM-ZF"]);

    let spec = opts.spec("stbc_vs_sm", snrs.clone(), trials, seeds::STBC_VS_SM);
    let result = spec.run(
        |&snr, ctx, (errs, bits_counted): &mut ([u64; 3], [u64; 3])| {
            let nv = mimonet_dsp::stats::db_to_lin(-snr);
            let mut rng = ChaCha8Rng::seed_from_u64(ctx.seed);
            for _ in 0..ctx.trials {
                // Common channel draw per trial.
                let h: Vec<[Complex64; 2]> = (0..2)
                    .map(|_| [crandn(&mut rng), crandn(&mut rng)])
                    .collect();

                // --- STBC: two 16-QAM symbols over two periods ---
                let m16 = Modulation::Qam16;
                let bits16: Vec<u8> = (0..8).map(|_| rng.gen_range(0..2u8)).collect();
                let syms = m16.map(&bits16);
                let pscale = 1.0 / 2f64.sqrt(); // two antennas share power
                let tx = alamouti_encode(syms[0] * pscale, syms[1] * pscale);
                let y: Vec<[Complex64; 2]> = h
                    .iter()
                    .map(|hr| {
                        let mut yr = [Complex64::ZERO; 2];
                        for (t, slot) in yr.iter_mut().enumerate() {
                            *slot = hr[0] * tx[0][t]
                                + hr[1] * tx[1][t]
                                + crandn(&mut rng).scale(nv.sqrt());
                        }
                        yr
                    })
                    .collect();
                let dec = alamouti_decode(&y, &h, nv, m16);
                for (i, d) in dec.iter().enumerate() {
                    let got = m16.demap_hard(d.symbol / pscale);
                    errs[0] += got
                        .iter()
                        .zip(&bits16[i * 4..i * 4 + 4])
                        .filter(|(a, b)| a != b)
                        .count() as u64;
                    bits_counted[0] += 4;
                }

                // --- SM: two QPSK streams in one period (run twice to match
                //     the STBC block's two periods / 8 bits) ---
                let mq = Modulation::Qpsk;
                let hm = CMat::new(
                    2,
                    2,
                    vec![
                        h[0][0].scale(pscale),
                        h[0][1].scale(pscale),
                        h[1][0].scale(pscale),
                        h[1][1].scale(pscale),
                    ],
                );
                for _ in 0..2 {
                    let bitsq: Vec<u8> = (0..4).map(|_| rng.gen_range(0..2u8)).collect();
                    let x = mq.map(&bitsq);
                    let mut yv = hm.mul_vec(&x);
                    for v in &mut yv {
                        *v += crandn(&mut rng).scale(nv.sqrt());
                    }
                    for (ki, kind) in [DetectorKind::Ml, DetectorKind::Zf].iter().enumerate() {
                        if let Ok(d) = detect(*kind, &hm, &yv, nv, mq) {
                            for (s, sd) in d.iter().enumerate() {
                                let got = mq.demap_hard(sd.symbol);
                                errs[1 + ki] += got
                                    .iter()
                                    .zip(&bitsq[s * 2..s * 2 + 2])
                                    .filter(|(a, b)| a != b)
                                    .count() as u64;
                                bits_counted[1 + ki] += 2;
                            }
                        }
                    }
                }
            }
        },
    );

    let ber = |arm: usize| -> Vec<f64> {
        result
            .stats
            .iter()
            .map(|(errs, bits)| errs[arm] as f64 / bits[arm].max(1) as f64)
            .collect()
    };
    let curves = [ber(0), ber(1), ber(2)];
    for (i, &snr) in snrs.iter().enumerate() {
        row(snr, &[curves[0][i], curves[1][i], curves[2][i]]);
    }

    let mut report = FigureReport::new(
        "fig_stbc_vs_sm",
        "STBC vs spatial multiplexing, matched spectral efficiency",
        "SNR dB",
        seeds::STBC_VS_SM,
        &opts,
    );
    report.series("STBC 16QAM", &snrs, &curves[0]);
    report.series("SM-ML QPSK", &snrs, &curves[1]);
    report.series("SM-ZF QPSK", &snrs, &curves[2]);
    println!("# expected shape: SM curves are shallower (diversity ~2 for ML,");
    println!("# ~1 for ZF); STBC's slope is ~4 (2 TX x 2 RX), so it starts worse");
    println!("# (denser constellation) and crosses below SM as SNR grows");
    report.finish();
}
