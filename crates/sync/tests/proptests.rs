//! Property-based tests of the synchronization estimators' contracts.

use mimonet_channel::impairments::apply_cfo;
use mimonet_channel::noise::{add_awgn, crandn};
use mimonet_dsp::complex::Complex64;
use mimonet_sync::{estimate_phase, fine_timing, DetectorConfig, PacketDetector, VanDeBeek};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Random OFDM-like signal with proper cyclic prefixes.
fn cp_signal(seed: u64, n_sym: usize, lead: usize) -> Vec<Complex64> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut out = vec![Complex64::ZERO; lead];
    for _ in 0..n_sym {
        let body: Vec<Complex64> = (0..64).map(|_| crandn(&mut rng)).collect();
        out.extend_from_slice(&body[48..]);
        out.extend_from_slice(&body);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn vdb_cfo_estimate_always_in_range(seed in any::<u64>(), snr in -5.0..30.0f64) {
        let mut sig = cp_signal(seed, 3, 20);
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xAA);
        add_awgn(&mut rng, &mut sig, mimonet_dsp::stats::db_to_lin(-snr));
        let vdb = VanDeBeek::new(64, 16, snr);
        let est = vdb.estimate_siso(&sig).expect("long enough");
        // CP-based CFO is inherently limited to half a subcarrier spacing.
        prop_assert!(est.cfo.abs() <= 0.5 + 1e-12, "cfo {}", est.cfo);
        prop_assert!(est.timing < sig.len());
    }

    #[test]
    fn vdb_recovers_cfo_at_high_snr(seed in any::<u64>(), cfo in -0.45..0.45f64) {
        let mut sig = cp_signal(seed, 4, 10);
        apply_cfo(&mut sig, cfo, 0.7);
        let vdb = VanDeBeek::new(64, 16, 30.0);
        let est = vdb.estimate_siso(&sig).expect("long enough");
        prop_assert!((est.cfo - cfo).abs() < 0.03, "true {cfo}, got {}", est.cfo);
    }

    #[test]
    fn vdb_metric_trace_length_contract(len in 80usize..400) {
        let sig = cp_signal(1, 5, 0);
        let slice = &sig[..len];
        let vdb = VanDeBeek::new(64, 16, 10.0);
        let trace = vdb.metric_trace(slice);
        prop_assert_eq!(trace.len(), len - 79);
    }

    #[test]
    fn mimo_estimate_equals_siso_on_duplicated_antennas(seed in any::<u64>()) {
        // Two identical antennas carry no extra information; the joint
        // estimate must coincide with the single-antenna one.
        let sig = cp_signal(seed, 3, 15);
        let vdb = VanDeBeek::new(64, 16, 15.0);
        let siso = vdb.estimate_siso(&sig).unwrap();
        let mimo = vdb.estimate(&[&sig, &sig]).unwrap();
        prop_assert_eq!(siso.timing, mimo.timing);
        prop_assert!((siso.cfo - mimo.cfo).abs() < 1e-12);
    }

    #[test]
    fn detector_never_fires_on_silence(n in 100usize..3000) {
        let mut det = PacketDetector::new(1, DetectorConfig::default());
        let silence = vec![Complex64::ZERO; n];
        prop_assert!(det.detect(&[&silence]).is_none());
    }

    #[test]
    fn fine_timing_peak_is_bounded(seed in any::<u64>(), len in 64usize..400) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let sig: Vec<Complex64> = (0..len).map(|_| crandn(&mut rng)).collect();
        if let Some(ft) = fine_timing(&[&sig]) {
            prop_assert!(ft.peak <= 1.0 + 1e-9);
            prop_assert!(ft.ltf_start <= len - 64);
        }
    }

    #[test]
    fn phase_estimate_is_rotation_equivariant(theta in -3.0..3.0f64, extra in -1.0..1.0f64) {
        // Rotating all observations by `extra` shifts theta by exactly
        // `extra` (slope unchanged).
        let pilots: Vec<(i32, Complex64, Complex64)> = [-21, -7, 7, 21]
            .iter()
            .map(|&k| {
                let e = Complex64::from_polar(1.0, 0.2 * k as f64);
                (k, e, e * Complex64::cis(theta))
            })
            .collect();
        let rotated: Vec<(i32, Complex64, Complex64)> = pilots
            .iter()
            .map(|&(k, e, o)| (k, e, o * Complex64::cis(extra)))
            .collect();
        let a = estimate_phase(&pilots).unwrap();
        let b = estimate_phase(&rotated).unwrap();
        let mut d = b.theta - a.theta - extra;
        while d > std::f64::consts::PI {
            d -= 2.0 * std::f64::consts::PI;
        }
        while d < -std::f64::consts::PI {
            d += 2.0 * std::f64::consts::PI;
        }
        prop_assert!(d.abs() < 1e-9, "delta {d}");
        prop_assert!((a.slope - b.slope).abs() < 1e-9);
    }
}
