//! Pilot-based residual phase tracking.
//!
//! After coarse+fine CFO correction a residual offset of a few hundred Hz
//! remains; over a long frame it accumulates into a common phase rotation
//! per OFDM symbol (and, together with sampling clock error, a phase
//! *slope* across subcarriers). The receiver measures both each symbol from
//! the four pilot subcarriers — whose transmitted values are known (see
//! [`mimonet_frame::pilots`]) — and derotates the data carriers. This is
//! the receiver-side half of the paper's "use of pilot sub-carriers".
//!
//! The estimator receives, per symbol, the *expected* pilot observations
//! (known pilot value × channel estimate, summed over streams) and the
//! actual observations, and fits `phase(k) ≈ theta + slope * k` by
//! magnitude-weighted least squares on the per-pilot phase errors.

use mimonet_dsp::complex::Complex64;

/// Per-symbol phase correction estimate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PhaseEstimate {
    /// Common phase error in radians.
    pub theta: f64,
    /// Phase slope across subcarriers, radians per carrier index
    /// (timing-drift signature).
    pub slope: f64,
}

impl PhaseEstimate {
    /// The correction phasor for logical subcarrier `k`:
    /// `exp(-i (theta + slope k))`.
    pub fn correction(&self, k: i32) -> Complex64 {
        Complex64::cis(-(self.theta + self.slope * k as f64))
    }
}

/// Estimates the common phase and slope from pilot observations.
///
/// `pilots` holds `(carrier_index, expected, observed)` triples. At least
/// one pilot is required for `theta`; with fewer than two distinct
/// carriers the slope is reported as zero. Magnitude-weighting suppresses
/// pilots in channel fades.
pub fn estimate_phase(pilots: &[(i32, Complex64, Complex64)]) -> Option<PhaseEstimate> {
    if pilots.is_empty() {
        return None;
    }
    // Rotation-invariant common phase: angle of sum of obs * conj(expected).
    let common: Complex64 = pilots.iter().map(|&(_, e, o)| o * e.conj()).sum();
    if common.abs() < 1e-15 {
        return None;
    }
    let theta = common.arg();

    // Per-pilot residual phases after removing theta, fit slope by weighted
    // least squares through the (k, phase) points (zero-intercept handled
    // by refitting both).
    let mut sw = 0.0;
    let mut swk = 0.0;
    let mut swkk = 0.0;
    let mut swp = 0.0;
    let mut swkp = 0.0;
    for &(k, e, o) in pilots {
        let r = o * e.conj() * Complex64::cis(-theta);
        let w = r.abs();
        if w < 1e-15 {
            continue;
        }
        let p = r.arg(); // residual phase, small after theta removal
        let kf = k as f64;
        sw += w;
        swk += w * kf;
        swkk += w * kf * kf;
        swp += w * p;
        swkp += w * kf * p;
    }
    let denom = sw * swkk - swk * swk;
    let (d_theta, slope) = if denom.abs() < 1e-12 || pilots.len() < 2 {
        (if sw > 0.0 { swp / sw } else { 0.0 }, 0.0)
    } else {
        let slope = (sw * swkp - swk * swp) / denom;
        let d_theta = (swp - slope * swk) / sw;
        (d_theta, slope)
    };
    Some(PhaseEstimate {
        theta: theta + d_theta,
        slope,
    })
}

/// Streaming tracker that smooths per-symbol estimates with a single-pole
/// IIR (the per-symbol pilot estimate is noisy at low SNR; smoothing with
/// `alpha ≈ 0.5` halves the variance without lagging realistic drifts).
#[derive(Clone, Debug)]
pub struct PhaseTracker {
    alpha: f64,
    state: Option<PhaseEstimate>,
}

impl PhaseTracker {
    /// Creates a tracker with smoothing factor `alpha` in (0, 1]; 1.0
    /// disables smoothing.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha in (0, 1]");
        Self { alpha, state: None }
    }

    /// Feeds one symbol's pilots, returns the smoothed estimate.
    pub fn update(&mut self, pilots: &[(i32, Complex64, Complex64)]) -> Option<PhaseEstimate> {
        let raw = estimate_phase(pilots)?;
        let est = match self.state {
            None => raw,
            Some(prev) => {
                // Unwrap theta towards the previous estimate before mixing.
                let mut dt = raw.theta - prev.theta;
                while dt > std::f64::consts::PI {
                    dt -= 2.0 * std::f64::consts::PI;
                }
                while dt < -std::f64::consts::PI {
                    dt += 2.0 * std::f64::consts::PI;
                }
                PhaseEstimate {
                    theta: prev.theta + self.alpha * dt,
                    slope: prev.slope + self.alpha * (raw.slope - prev.slope),
                }
            }
        };
        self.state = Some(est);
        Some(est)
    }

    /// Last smoothed estimate.
    pub fn current(&self) -> Option<PhaseEstimate> {
        self.state
    }

    /// Clears tracking state (new frame).
    pub fn reset(&mut self) {
        self.state = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mimonet_dsp::complex::C64;

    const PILOT_KS: [i32; 4] = [-21, -7, 7, 21];

    fn make_pilots(theta: f64, slope: f64, gains: [f64; 4]) -> Vec<(i32, C64, C64)> {
        PILOT_KS
            .iter()
            .zip(gains)
            .map(|(&k, g)| {
                let expected = C64::from_polar(g, 0.31 * k as f64);
                let observed = expected * C64::cis(theta + slope * k as f64);
                (k, expected, observed)
            })
            .collect()
    }

    #[test]
    fn recovers_pure_common_phase() {
        for &theta in &[-2.0, -0.3, 0.0, 0.9, 2.9] {
            let est = estimate_phase(&make_pilots(theta, 0.0, [1.0; 4])).unwrap();
            assert!((est.theta - theta).abs() < 1e-9, "theta {theta}: {est:?}");
            assert!(est.slope.abs() < 1e-9);
        }
    }

    #[test]
    fn recovers_phase_and_slope() {
        let est = estimate_phase(&make_pilots(0.4, 0.01, [1.0, 0.8, 1.2, 0.9])).unwrap();
        assert!((est.theta - 0.4).abs() < 1e-6, "{est:?}");
        assert!((est.slope - 0.01).abs() < 1e-6, "{est:?}");
    }

    #[test]
    fn correction_undoes_rotation() {
        let pilots = make_pilots(0.7, 0.02, [1.0; 4]);
        let est = estimate_phase(&pilots).unwrap();
        for &(k, e, o) in &pilots {
            let fixed = o * est.correction(k);
            assert!(fixed.dist(e) < 1e-6, "carrier {k}");
        }
    }

    #[test]
    fn faded_pilot_is_downweighted() {
        // One pilot almost gone and carrying garbage phase.
        let mut pilots = make_pilots(0.2, 0.0, [1.0, 1.0, 1.0, 1e-6]);
        pilots[3].2 = C64::from_polar(1e-6, -3.0);
        let est = estimate_phase(&pilots).unwrap();
        assert!((est.theta - 0.2).abs() < 1e-3, "{est:?}");
    }

    #[test]
    fn empty_and_zero_inputs() {
        assert_eq!(estimate_phase(&[]), None);
        assert_eq!(estimate_phase(&[(7, C64::ZERO, C64::ZERO)]), None);
    }

    #[test]
    fn tracker_smooths_noise() {
        let mut tr = PhaseTracker::new(0.3);
        // Alternating noisy estimates around 0.5 rad.
        let mut last = 0.0;
        for i in 0..50 {
            let noise = if i % 2 == 0 { 0.3 } else { -0.3 };
            let est = tr.update(&make_pilots(0.5 + noise, 0.0, [1.0; 4])).unwrap();
            last = est.theta;
        }
        assert!((last - 0.5).abs() < 0.2, "converged to {last}");
        // Raw estimates vary by ±0.3; smoothed must vary less.
        let a = tr.update(&make_pilots(0.8, 0.0, [1.0; 4])).unwrap().theta;
        let b = tr.update(&make_pilots(0.2, 0.0, [1.0; 4])).unwrap().theta;
        assert!((a - b).abs() < 0.6 * 0.9);
    }

    #[test]
    fn tracker_unwraps_through_pi() {
        let mut tr = PhaseTracker::new(1.0);
        tr.update(&make_pilots(3.0, 0.0, [1.0; 4])).unwrap();
        // Next symbol drifts past +pi and wraps to negative angle.
        let est = tr.update(&make_pilots(-3.0, 0.0, [1.0; 4])).unwrap();
        // Unwrapped: 3.0 + 0.28.. ≈ 3.28, not −3.0.
        assert!(est.theta > 3.0, "unwrapped theta {}", est.theta);
    }

    #[test]
    fn tracker_reset() {
        let mut tr = PhaseTracker::new(0.5);
        tr.update(&make_pilots(1.0, 0.0, [1.0; 4]));
        tr.reset();
        assert_eq!(tr.current(), None);
        let est = tr.update(&make_pilots(-1.0, 0.0, [1.0; 4])).unwrap();
        assert!((est.theta + 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn bad_alpha_rejected() {
        PhaseTracker::new(0.0);
    }
}
