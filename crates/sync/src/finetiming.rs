//! Fine timing refinement by cross-correlation against the known long
//! training symbol.
//!
//! Van de Beek's CP metric locates the symbol boundary to within a couple
//! of samples; multipath and noise blur the plateau. Cross-correlating the
//! received stream against the known 64-sample L-LTF base symbol produces a
//! sharp peak (the LTF is white across its 52 carriers) that pins the FFT
//! window to the sample. Multi-antenna operation sums the per-antenna
//! correlation magnitudes — peaks align because the antennas share one
//! clock.

use mimonet_dsp::complex::Complex64;
use mimonet_dsp::correlate::argmax;
use mimonet_dsp::fft::Fft;
use mimonet_frame::carriers::{carrier_to_bin, FFT_LEN};
use mimonet_frame::ofdm::Ofdm;
use mimonet_frame::preamble::lltf_at;

/// The 64-sample time-domain L-LTF base symbol (no CP, antenna 0, unit
/// power) used as the matched-filter reference.
pub fn lltf_reference() -> Vec<Complex64> {
    lltf_reference_static().to_vec()
}

/// [`lltf_reference`] computed once per process — the IFFT and its plan run
/// on first use only, so the per-frame timing search never replans.
pub fn lltf_reference_static() -> &'static [Complex64] {
    static REF: std::sync::OnceLock<Vec<Complex64>> = std::sync::OnceLock::new();
    REF.get_or_init(|| {
        let mut bins = vec![Complex64::ZERO; FFT_LEN];
        for k in -26..=26 {
            bins[carrier_to_bin(k)] = Complex64::from_re(lltf_at(k));
        }
        let fft = Fft::new(FFT_LEN);
        fft.inverse(&mut bins);
        let scale = Ofdm::unit_power_scale(52);
        bins.iter().map(|x| x.scale(scale)).collect()
    })
}

/// Result of fine timing.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FineTiming {
    /// Offset (into the searched slice) of the start of the first LTF
    /// repetition's 64-sample body.
    pub ltf_start: usize,
    /// Normalized peak value in [0, 1].
    pub peak: f64,
}

/// Searches `window` (per antenna) for the L-LTF body and returns the
/// sample offset of its first repetition.
///
/// The search assumes the window contains the two LTF repetitions
/// somewhere; it correlates against [`lltf_reference`], sums normalized
/// magnitudes across antennas, and — because two identical repetitions
/// produce two equal peaks 64 samples apart — picks the *earlier* peak of
/// the best pair.
pub fn fine_timing(rx: &[&[Complex64]]) -> Option<FineTiming> {
    let mut scratch = FineTimingScratch::default();
    fine_timing_with(rx, &mut scratch)
}

/// Reusable buffers for [`fine_timing_with`] — one per receiver, so the
/// per-frame timing search allocates nothing after the first frame.
#[derive(Clone, Debug, Default)]
pub struct FineTimingScratch {
    corr: Vec<f64>,
    acc: Vec<f64>,
    combined: Vec<f64>,
}

/// [`fine_timing`] with caller-owned scratch buffers — identical results,
/// allocation-free after warm-up.
pub fn fine_timing_with(
    rx: &[&[Complex64]],
    scratch: &mut FineTimingScratch,
) -> Option<FineTiming> {
    assert!(!rx.is_empty(), "need at least one antenna");
    let len = rx[0].len();
    assert!(
        rx.iter().all(|a| a.len() == len),
        "antenna buffers must be equal length"
    );
    let reference = lltf_reference_static();
    if len < reference.len() {
        return None;
    }
    let out_len = len - reference.len() + 1;
    scratch.acc.clear();
    scratch.acc.resize(out_len, 0.0);
    for ant in rx {
        mimonet_dsp::correlate::normalized_cross_correlate_into(ant, reference, &mut scratch.corr);
        for (a, &v) in scratch.acc.iter_mut().zip(&scratch.corr) {
            *a += v;
        }
    }
    // Combine the two repetitions: score(d) = acc[d] + acc[d+64] where
    // possible, which suppresses single spurious peaks.
    let acc = &scratch.acc;
    scratch.combined.clear();
    scratch.combined.extend((0..out_len).map(|d| {
        if d + FFT_LEN < out_len {
            acc[d] + acc[d + FFT_LEN]
        } else {
            acc[d]
        }
    }));
    let best = argmax(&scratch.combined)?;
    Some(FineTiming {
        ltf_start: best,
        peak: scratch.acc[best] / rx.len() as f64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mimonet_channel::impairments::apply_cfo;
    use mimonet_channel::noise::add_awgn;
    use mimonet_dsp::complex::C64;
    use mimonet_frame::preamble::lltf_time;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn reference_is_unit_power_and_matches_lltf_body() {
        let r = lltf_reference();
        assert_eq!(r.len(), 64);
        assert!((mimonet_dsp::complex::mean_power(&r) - 1.0).abs() < 1e-9);
        let full = lltf_time(0, 1);
        for i in 0..64 {
            assert!(r[i].dist(full[32 + i]) < 1e-9);
        }
    }

    #[test]
    fn locates_ltf_exactly_noiseless() {
        let lead = 123;
        let mut sig = vec![C64::ZERO; lead];
        sig.extend(lltf_time(0, 1));
        sig.extend(vec![C64::ZERO; 40]);
        let ft = fine_timing(&[&sig]).unwrap();
        // First body starts 32 samples into the LTF field.
        assert_eq!(ft.ltf_start, lead + 32);
        assert!(ft.peak > 0.99);
    }

    #[test]
    fn survives_noise_and_moderate_cfo() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut hits = 0;
        let trials = 50;
        for t in 0..trials {
            let lead = 60 + t;
            let mut sig = vec![C64::ZERO; lead];
            sig.extend(lltf_time(0, 1));
            sig.extend(vec![C64::ZERO; 30]);
            apply_cfo(&mut sig, 0.05, 0.0); // residual after coarse correction
            add_awgn(&mut rng, &mut sig, mimonet_dsp::stats::db_to_lin(-10.0));
            let ft = fine_timing(&[&sig]).unwrap();
            if (ft.ltf_start as isize - (lead + 32) as isize).abs() <= 1 {
                hits += 1;
            }
        }
        assert!(hits >= trials * 9 / 10, "hits {hits}/{trials}");
    }

    #[test]
    fn multi_antenna_sharpens_peak() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let lead = 77;
        let mut clean = vec![C64::ZERO; lead];
        clean.extend(lltf_time(0, 1));
        clean.extend(vec![C64::ZERO; 20]);
        let npow = mimonet_dsp::stats::db_to_lin(5.0); // SNR −5 dB
        let mut errs_siso = 0usize;
        let mut errs_mimo = 0usize;
        for _ in 0..60 {
            let mut a0 = clean.clone();
            let mut a1: Vec<C64> = clean.iter().map(|&x| x * C64::cis(0.9)).collect();
            add_awgn(&mut rng, &mut a0, npow);
            add_awgn(&mut rng, &mut a1, npow);
            let siso = fine_timing(&[&a0]).unwrap();
            let mimo = fine_timing(&[&a0, &a1]).unwrap();
            if siso.ltf_start != lead + 32 {
                errs_siso += 1;
            }
            if mimo.ltf_start != lead + 32 {
                errs_mimo += 1;
            }
        }
        assert!(
            errs_mimo <= errs_siso,
            "mimo errs {errs_mimo} vs siso {errs_siso}"
        );
    }

    #[test]
    fn short_window_returns_none() {
        let sig = vec![C64::ONE; 32];
        assert_eq!(fine_timing(&[&sig]), None);
    }
}
