//! # mimonet-sync
//!
//! Synchronization for MIMONet-rs — the paper's algorithmic core:
//!
//! * [`detect`] — STF plateau packet detection with coarse CFO, combined
//!   across receive antennas,
//! * [`vandebeek`] — the Van de Beek CP-based ML time/CFO estimator and
//!   its **MIMO extension** (per-antenna statistics summed under the joint
//!   likelihood),
//! * [`finetiming`] — L-LTF matched-filter refinement of the FFT window,
//! * [`tracking`] — pilot-based residual phase/slope tracking.
//!
//! The receiver chain in `mimonet` (core crate) runs these in order:
//! detect → coarse CFO correct → Van de Beek → fine timing → per-symbol
//! pilot tracking.

pub mod detect;
pub mod finetiming;
pub mod tracking;
pub mod vandebeek;

pub use detect::{Detection, DetectorConfig, PacketDetector};
pub use finetiming::{fine_timing, FineTiming};
pub use tracking::{estimate_phase, PhaseEstimate, PhaseTracker};
pub use vandebeek::{SyncEstimate, VanDeBeek};
