//! Van de Beek ML time/frequency estimator and its MIMO extension.
//!
//! Van de Beek, Sandell & Börjesson ("ML Estimation of Time and Frequency
//! Offset in OFDM Systems", IEEE Trans. SP 45(7), 1997) exploit the cyclic
//! prefix: samples `r[n]` and `r[n+N]` inside the CP window are correlated.
//! With CP length `L`, FFT size `N` and SNR-derived weight
//! `rho = SNR/(SNR+1)`, the joint log-likelihood over the candidate symbol
//! start `theta` and normalized CFO `eps` is maximized by
//!
//! ```text
//! theta_hat = argmax_theta { |gamma(theta)| - rho * Phi(theta) }
//! eps_hat   = -angle(gamma(theta_hat)) / (2 pi)
//! gamma(th) = sum_{n=th}^{th+L-1} r[n] * conj(r[n + N])
//! Phi(th)   = 1/2 sum_{n=th}^{th+L-1} (|r[n]|^2 + |r[n+N]|^2)
//! ```
//!
//! **MIMO extension (the SRIF'14 contribution):** all receive chains of one
//! device share the same sampling clock and local oscillator, so `theta`
//! and `eps` are common across antennas while the noise is independent.
//! The joint likelihood therefore *sums per-antenna statistics*:
//! `gamma = sum_r gamma_r`, `Phi = sum_r Phi_r`, maximizing
//! `|sum_r gamma_r| - rho * sum_r Phi_r`. Because the per-antenna CFO
//! phasors are identical, the gammas add coherently while the noise adds
//! incoherently — an SNR gain of up to `10 log10(N_rx)` dB over using a
//! single antenna, which experiment F2/F3 quantifies.

use mimonet_dsp::complex::Complex64;
use mimonet_dsp::correlate::lagged_autocorrelation;

/// Result of a Van de Beek search.
#[derive(Clone, Debug)]
pub struct SyncEstimate {
    /// Estimated symbol start (index into the search buffer).
    pub timing: usize,
    /// Estimated CFO in subcarrier spacings, range ±0.5.
    pub cfo: f64,
    /// Value of the decision metric at the estimate.
    pub peak_metric: f64,
}

/// The ML estimator, configured for one OFDM numerology.
#[derive(Clone, Debug)]
pub struct VanDeBeek {
    fft_len: usize,
    cp_len: usize,
    rho: f64,
}

impl VanDeBeek {
    /// Creates an estimator for FFT size `fft_len`, cyclic prefix `cp_len`,
    /// operating at an assumed `snr_db` (sets the ML weight `rho`; the
    /// estimator is mildly sensitive to mismatch, so a nominal mid-range
    /// value like 10 dB works across the sweep).
    pub fn new(fft_len: usize, cp_len: usize, snr_db: f64) -> Self {
        assert!(fft_len > 0 && cp_len > 0, "nonzero numerology required");
        let snr = mimonet_dsp::stats::db_to_lin(snr_db);
        Self {
            fft_len,
            cp_len,
            rho: snr / (snr + 1.0),
        }
    }

    /// The ML weight `rho` in use.
    pub fn rho(&self) -> f64 {
        self.rho
    }

    /// Computes the decision metric `|gamma| - rho*Phi` for every candidate
    /// offset in `rx` (one antenna). Entry `i` is the metric for symbol
    /// start `i`; the output is shorter than the input by
    /// `fft_len + cp_len - 1`.
    pub fn metric_trace(&self, rx: &[Complex64]) -> Vec<f64> {
        lagged_autocorrelation(rx, self.fft_len, self.cp_len)
            .into_iter()
            .map(|(g, p)| g.abs() - self.rho * p)
            .collect()
    }

    /// Joint MIMO metric trace: per-antenna `gamma` and `Phi` summed before
    /// the nonlinearity, per the extension above. All antenna buffers must
    /// have equal length.
    pub fn metric_trace_mimo(&self, rx: &[&[Complex64]]) -> Vec<f64> {
        let combined = self.combined_stats(rx);
        combined
            .into_iter()
            .map(|(g, p)| g.abs() - self.rho * p)
            .collect()
    }

    fn combined_stats(&self, rx: &[&[Complex64]]) -> Vec<(Complex64, f64)> {
        assert!(!rx.is_empty(), "need at least one antenna");
        let len = rx[0].len();
        assert!(
            rx.iter().all(|a| a.len() == len),
            "antenna buffers must be equal length"
        );
        let mut acc: Vec<(Complex64, f64)> = Vec::new();
        for ant in rx {
            let stats = lagged_autocorrelation(ant, self.fft_len, self.cp_len);
            if acc.is_empty() {
                acc = stats;
            } else {
                for (a, s) in acc.iter_mut().zip(stats) {
                    a.0 += s.0;
                    a.1 += s.1;
                }
            }
        }
        acc
    }

    /// Runs the joint search over one or more antennas. Returns `None` when
    /// the buffer is too short to evaluate a single candidate.
    pub fn estimate(&self, rx: &[&[Complex64]]) -> Option<SyncEstimate> {
        let stats = self.combined_stats(rx);
        if stats.is_empty() {
            return None;
        }
        let (best, (g, p)) = stats
            .iter()
            .enumerate()
            .max_by(|a, b| {
                let ma = a.1 .0.abs() - self.rho * a.1 .1;
                let mb = b.1 .0.abs() - self.rho * b.1 .1;
                ma.partial_cmp(&mb).unwrap()
            })
            .map(|(i, s)| (i, *s))?;
        Some(SyncEstimate {
            timing: best,
            cfo: cfo_from_gamma(g),
            peak_metric: g.abs() - self.rho * p,
        })
    }

    /// Single-antenna convenience wrapper.
    pub fn estimate_siso(&self, rx: &[Complex64]) -> Option<SyncEstimate> {
        self.estimate(&[rx])
    }
}

/// CFO (subcarrier spacings) from a CP correlation sum:
/// with `gamma = sum r[n] conj(r[n+N])`, the phase is `-2 pi eps`, so
/// `eps = -angle(gamma) / (2 pi)`. Unambiguous for `|eps| < 0.5`.
pub fn cfo_from_gamma(gamma: Complex64) -> f64 {
    -gamma.arg() / (2.0 * std::f64::consts::PI)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mimonet_channel::impairments::apply_cfo;
    use mimonet_channel::noise::add_awgn;
    use mimonet_dsp::complex::C64;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    const N: usize = 64;
    const L: usize = 16;

    /// Builds `n_sym` random OFDM-like symbols (random time samples with a
    /// proper cyclic prefix) preceded by `lead` noise-free zero samples.
    fn cp_signal(rng: &mut ChaCha8Rng, n_sym: usize, lead: usize) -> Vec<C64> {
        let mut out = vec![C64::ZERO; lead];
        for _ in 0..n_sym {
            let body: Vec<C64> = (0..N)
                .map(|_| mimonet_channel::noise::crandn(rng))
                .collect();
            out.extend_from_slice(&body[N - L..]);
            out.extend_from_slice(&body);
        }
        out
    }

    #[test]
    fn finds_symbol_boundary_noiseless() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let lead = 37;
        let sig = cp_signal(&mut rng, 3, lead);
        let est = VanDeBeek::new(N, L, 30.0).estimate_siso(&sig).unwrap();
        // Any CP start is a valid detection; starts occur at
        // lead + k*(N+L). The first is the strongest candidate region.
        let rel = (est.timing as isize - lead as isize).rem_euclid((N + L) as isize);
        assert_eq!(rel, 0, "timing {} lead {lead}", est.timing);
    }

    #[test]
    fn estimates_cfo_within_tolerance() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        for &cfo in &[-0.4, -0.11, 0.0, 0.2, 0.45] {
            let mut sig = cp_signal(&mut rng, 4, 21);
            apply_cfo(&mut sig, cfo, 0.3);
            add_awgn(&mut rng, &mut sig, mimonet_dsp::stats::db_to_lin(-20.0));
            let est = VanDeBeek::new(N, L, 20.0).estimate_siso(&sig).unwrap();
            assert!(
                (est.cfo - cfo).abs() < 0.02,
                "cfo {cfo}: estimated {}",
                est.cfo
            );
        }
    }

    #[test]
    fn metric_peaks_at_cp_positions() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let lead = 50;
        let sig = cp_signal(&mut rng, 2, lead);
        let vdb = VanDeBeek::new(N, L, 20.0);
        let trace = vdb.metric_trace(&sig);
        let peak = mimonet_dsp::correlate::argmax(&trace).unwrap();
        let rel = (peak as isize - lead as isize).rem_euclid((N + L) as isize);
        assert_eq!(rel, 0);
    }

    #[test]
    fn mimo_combination_beats_siso_at_low_snr() {
        // At poor SNR, the 2-antenna joint estimate should lock (timing
        // within the CP) strictly more often than single-antenna.
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let snr_db = -4.0;
        let vdb = VanDeBeek::new(N, L, snr_db);
        let trials = 300;
        let lead = 40;
        let mut siso_hits = 0;
        let mut mimo_hits = 0;
        for _ in 0..trials {
            // Same transmitted signal observed on two antennas with
            // independent noise and independent flat gains.
            let clean = cp_signal(&mut rng, 2, lead);
            let tail = vec![C64::ZERO; 30];
            let mut a0: Vec<C64> = clean
                .iter()
                .chain(&tail)
                .map(|&x| x * C64::cis(0.7))
                .collect();
            let mut a1: Vec<C64> = clean
                .iter()
                .chain(&tail)
                .map(|&x| x * C64::cis(-1.1))
                .collect();
            let npow = mimonet_dsp::stats::db_to_lin(-snr_db);
            add_awgn(&mut rng, &mut a0, npow);
            add_awgn(&mut rng, &mut a1, npow);
            let hit = |t: usize| {
                let rel = (t as isize - lead as isize).rem_euclid((N + L) as isize);
                rel == 0 || rel > (N + L - 3) as isize || rel < 3
            };
            if let Some(e) = vdb.estimate_siso(&a0) {
                if hit(e.timing) {
                    siso_hits += 1;
                }
            }
            if let Some(e) = vdb.estimate(&[&a0, &a1]) {
                if hit(e.timing) {
                    mimo_hits += 1;
                }
            }
        }
        assert!(
            mimo_hits > siso_hits,
            "MIMO {mimo_hits}/{trials} vs SISO {siso_hits}/{trials}"
        );
    }

    #[test]
    fn mimo_cfo_estimate_is_tighter() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let cfo = 0.25;
        let vdb = VanDeBeek::new(N, L, 0.0);
        let trials = 200;
        let mut err_siso = 0.0;
        let mut err_mimo = 0.0;
        for _ in 0..trials {
            let mut clean = cp_signal(&mut rng, 3, 20);
            apply_cfo(&mut clean, cfo, 0.0);
            let npow = 1.0; // 0 dB
            let mut a0 = clean.clone();
            let mut a1 = clean.clone();
            add_awgn(&mut rng, &mut a0, npow);
            add_awgn(&mut rng, &mut a1, npow);
            if let Some(e) = vdb.estimate_siso(&a0) {
                err_siso += (e.cfo - cfo).powi(2);
            }
            if let Some(e) = vdb.estimate(&[&a0, &a1]) {
                err_mimo += (e.cfo - cfo).powi(2);
            }
        }
        assert!(
            err_mimo < err_siso,
            "MIMO mse {} vs SISO mse {}",
            err_mimo / trials as f64,
            err_siso / trials as f64
        );
    }

    #[test]
    fn cfo_sign_convention() {
        // gamma for positive CFO must have negative phase.
        let mut sig = cp_signal(&mut ChaCha8Rng::seed_from_u64(6), 2, 0);
        apply_cfo(&mut sig, 0.3, 0.0);
        let stats = lagged_autocorrelation(&sig, N, L);
        let g = stats[0].0;
        assert!(g.arg() < 0.0);
        assert!((cfo_from_gamma(g) - 0.3).abs() < 1e-6);
    }

    #[test]
    fn short_buffer_returns_none() {
        let vdb = VanDeBeek::new(N, L, 10.0);
        assert!(vdb.estimate_siso(&vec![C64::ONE; N + L - 1]).is_none());
        assert!(vdb.estimate_siso(&vec![C64::ONE; N + L]).is_some());
    }

    #[test]
    fn rho_saturates_with_snr() {
        assert!(VanDeBeek::new(N, L, 40.0).rho() > 0.999);
        assert!((VanDeBeek::new(N, L, 0.0).rho() - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn ragged_antennas_rejected() {
        let vdb = VanDeBeek::new(N, L, 10.0);
        let a = vec![C64::ONE; 100];
        let b = vec![C64::ONE; 99];
        vdb.estimate(&[&a, &b]);
    }
}
