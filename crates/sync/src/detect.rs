//! Packet detection from the legacy short training field.
//!
//! The L-STF is periodic with period 16; an autocorrelator at lag 16 sees
//! its normalized metric `|gamma|/phi` rise to ≈1 for the whole 160-sample
//! field — the classic "plateau" detector. The detector requires the
//! metric to stay above threshold for a minimum run *and* the window energy
//! to exceed a floor (pure silence has an ill-defined metric), combining
//! across receive antennas by summing correlation statistics exactly as the
//! MIMO Van de Beek does.

use mimonet_dsp::complex::Complex64;
use mimonet_dsp::correlate::SlidingAutocorrelator;

/// Configuration for the plateau detector.
#[derive(Clone, Copy, Debug)]
pub struct DetectorConfig {
    /// Autocorrelation lag — the STF period (16).
    pub lag: usize,
    /// Summation window (use ≥ 2 periods for stability; 32 default).
    pub window: usize,
    /// Metric threshold in (0, 1); 0.75 default.
    pub threshold: f64,
    /// Number of consecutive above-threshold samples to declare detection.
    pub min_run: usize,
    /// Energy floor per window sample below which the metric is ignored.
    pub energy_floor: f64,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        Self {
            lag: 16,
            window: 32,
            threshold: 0.75,
            min_run: 24,
            energy_floor: 1e-6,
        }
    }
}

/// A detected packet.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Detection {
    /// Sample index at which the plateau was confirmed (roughly
    /// `min_run + lag + window` into the STF; the caller refines with
    /// Van de Beek / fine timing).
    pub confirmed_at: usize,
    /// Coarse CFO estimate from the STF autocorrelation phase, in
    /// subcarrier spacings. Lag-16 correlation disambiguates up to ±2.
    pub coarse_cfo: f64,
    /// Plateau metric value at confirmation.
    pub metric: f64,
}

/// Streaming multi-antenna packet detector.
#[derive(Clone, Debug)]
pub struct PacketDetector {
    cfg: DetectorConfig,
    corr: Vec<SlidingAutocorrelator>,
    run: usize,
    sample_idx: usize,
    /// Reused by [`Self::detect`] to gather one sample per antenna, so
    /// batch detection allocates nothing after construction.
    sample_buf: Vec<Complex64>,
}

impl PacketDetector {
    /// Creates a detector for `n_rx` antennas.
    pub fn new(n_rx: usize, cfg: DetectorConfig) -> Self {
        assert!(n_rx > 0, "need at least one antenna");
        assert!(
            cfg.threshold > 0.0 && cfg.threshold < 1.0,
            "threshold in (0,1)"
        );
        Self {
            cfg,
            corr: (0..n_rx)
                .map(|_| SlidingAutocorrelator::new(cfg.lag, cfg.window))
                .collect(),
            run: 0,
            sample_idx: 0,
            sample_buf: vec![Complex64::ZERO; n_rx],
        }
    }

    /// Pushes one sample per antenna; returns a detection when the plateau
    /// is confirmed. After a detection the caller typically switches to
    /// synchronization; pushing further samples continues the search.
    ///
    /// # Panics
    ///
    /// Panics if `samples.len()` differs from the antenna count.
    pub fn push(&mut self, samples: &[Complex64]) -> Option<Detection> {
        assert_eq!(samples.len(), self.corr.len(), "one sample per antenna");
        for (c, &s) in self.corr.iter_mut().zip(samples) {
            c.push(s);
        }
        self.sample_idx += 1;
        if !self.corr[0].is_warm() {
            return None;
        }
        let gamma: Complex64 = self.corr.iter().map(|c| c.gamma()).sum();
        let phi: f64 = self.corr.iter().map(|c| c.phi()).sum();
        let energy_ok = phi / self.cfg.window as f64 > self.cfg.energy_floor;
        let metric = if phi > f64::EPSILON {
            gamma.abs() / phi
        } else {
            0.0
        };
        if energy_ok && metric >= self.cfg.threshold {
            self.run += 1;
            if self.run >= self.cfg.min_run {
                self.run = 0;
                return Some(Detection {
                    confirmed_at: self.sample_idx - 1,
                    coarse_cfo: coarse_cfo_from_stf(gamma, self.cfg.lag),
                    metric,
                });
            }
        } else {
            self.run = 0;
        }
        None
    }

    /// Processes a whole buffer (`rx[antenna][sample]`), returning the first
    /// detection.
    pub fn detect(&mut self, rx: &[&[Complex64]]) -> Option<Detection> {
        assert_eq!(rx.len(), self.corr.len(), "antenna count mismatch");
        let len = rx[0].len();
        assert!(
            rx.iter().all(|a| a.len() == len),
            "antenna buffers must be equal length"
        );
        let mut sample = std::mem::take(&mut self.sample_buf);
        sample.clear();
        sample.resize(rx.len(), Complex64::ZERO);
        for i in 0..len {
            for (s, a) in sample.iter_mut().zip(rx) {
                *s = a[i];
            }
            if let Some(d) = self.push(&sample) {
                self.sample_buf = sample;
                return Some(d);
            }
        }
        self.sample_buf = sample;
        None
    }

    /// Number of antennas this detector was built for.
    pub fn n_antennas(&self) -> usize {
        self.corr.len()
    }

    /// Resets all streaming state.
    pub fn reset(&mut self) {
        for c in &mut self.corr {
            c.reset();
        }
        self.run = 0;
        self.sample_idx = 0;
    }
}

/// Coarse CFO from an STF autocorrelation sum at `lag` samples:
/// phase of `gamma = sum r[n] conj(r[n+lag])` is `-2 pi eps lag / 64`,
/// so `eps = -angle(gamma) * 64 / (2 pi lag)` — range ±(32/lag) spacings.
pub fn coarse_cfo_from_stf(gamma: Complex64, lag: usize) -> f64 {
    -gamma.arg() * 64.0 / (2.0 * std::f64::consts::PI * lag as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mimonet_channel::impairments::apply_cfo;
    use mimonet_channel::noise::add_awgn;
    use mimonet_dsp::complex::C64;
    use mimonet_frame::preamble::lstf_time;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn frame_with_stf(lead: usize, rng: &mut ChaCha8Rng, snr_db: f64) -> Vec<C64> {
        let mut sig = vec![C64::ZERO; lead];
        sig.extend(lstf_time(0, 1));
        // Some payload-like random samples after.
        sig.extend((0..200).map(|_| mimonet_channel::noise::crandn(rng)));
        add_awgn(rng, &mut sig, mimonet_dsp::stats::db_to_lin(-snr_db));
        sig
    }

    #[test]
    fn detects_stf_in_noise() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let lead = 300;
        let sig = frame_with_stf(lead, &mut rng, 15.0);
        let mut det = PacketDetector::new(1, DetectorConfig::default());
        let d = det.detect(&[&sig]).expect("should detect");
        // Confirmation lands inside the STF (after warmup + run).
        assert!(
            d.confirmed_at > lead && d.confirmed_at < lead + 160 + 16,
            "confirmed at {} (lead {lead})",
            d.confirmed_at
        );
        assert!(d.metric > 0.75);
    }

    #[test]
    fn no_detection_on_pure_noise() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut sig = vec![C64::ZERO; 2000];
        add_awgn(&mut rng, &mut sig, 1.0);
        let mut det = PacketDetector::new(1, DetectorConfig::default());
        assert_eq!(det.detect(&[&sig]), None);
    }

    #[test]
    fn no_detection_on_silence() {
        let sig = vec![C64::ZERO; 1000];
        let mut det = PacketDetector::new(1, DetectorConfig::default());
        assert_eq!(det.detect(&[&sig]), None);
    }

    #[test]
    fn coarse_cfo_from_stf_is_accurate() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for &cfo in &[-1.5, -0.3, 0.0, 0.7, 1.9] {
            let mut sig = vec![C64::ZERO; 50];
            sig.extend(lstf_time(0, 1));
            apply_cfo(&mut sig, cfo, 0.1);
            add_awgn(&mut rng, &mut sig, mimonet_dsp::stats::db_to_lin(-25.0));
            let mut det = PacketDetector::new(1, DetectorConfig::default());
            let d = det.detect(&[&sig]).expect("detect");
            assert!(
                (d.coarse_cfo - cfo).abs() < 0.05,
                "cfo {cfo}: got {}",
                d.coarse_cfo
            );
        }
    }

    #[test]
    fn two_antenna_detection_at_marginal_snr() {
        // The plateau metric's mean is SNR/(1+SNR); near the 0.75 threshold
        // (≈ 6 dB) detection is fluctuation-limited, and two-antenna
        // combining — which halves the metric variance — should detect at
        // least as often as one antenna.
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let mut siso = 0;
        let mut mimo = 0;
        let trials = 100;
        for _ in 0..trials {
            let lead = 100;
            let clean: Vec<C64> = {
                let mut s = vec![C64::ZERO; lead];
                s.extend(lstf_time(0, 1));
                s.extend(vec![C64::ZERO; 50]);
                s
            };
            let npow = mimonet_dsp::stats::db_to_lin(-6.0); // SNR 6 dB
            let mut a0 = clean.clone();
            let mut a1: Vec<C64> = clean.iter().map(|&x| x * C64::cis(1.3)).collect();
            add_awgn(&mut rng, &mut a0, npow);
            add_awgn(&mut rng, &mut a1, npow);
            let mut d1 = PacketDetector::new(1, DetectorConfig::default());
            if d1.detect(&[&a0]).is_some() {
                siso += 1;
            }
            let mut d2 = PacketDetector::new(2, DetectorConfig::default());
            if d2.detect(&[&a0, &a1]).is_some() {
                mimo += 1;
            }
        }
        assert!(mimo >= siso, "MIMO {mimo} vs SISO {siso}");
        assert!(
            mimo > trials / 2,
            "MIMO detects most frames: {mimo}/{trials}"
        );
    }

    #[test]
    fn detector_reset_clears_state() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let sig = frame_with_stf(50, &mut rng, 20.0);
        let mut det = PacketDetector::new(1, DetectorConfig::default());
        assert!(det.detect(&[&sig]).is_some());
        det.reset();
        let silence = vec![C64::ZERO; 500];
        assert_eq!(det.detect(&[&silence]), None);
    }

    #[test]
    fn streaming_equals_batch() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let sig = frame_with_stf(120, &mut rng, 12.0);
        let mut batch = PacketDetector::new(1, DetectorConfig::default());
        let want = batch.detect(&[&sig]);
        let mut stream = PacketDetector::new(1, DetectorConfig::default());
        let mut got = None;
        for &s in &sig {
            if got.is_none() {
                got = stream.push(&[s]);
            }
        }
        assert_eq!(got, want);
    }

    #[test]
    #[should_panic(expected = "one sample per antenna")]
    fn wrong_antenna_count_rejected() {
        let mut det = PacketDetector::new(2, DetectorConfig::default());
        det.push(&[C64::ONE]);
    }
}
