//! Property-based tests of the linear algebra and detection invariants.

use mimonet_detect::linalg::CMat;
use mimonet_detect::{detect, DetectorKind};
use mimonet_dsp::complex::Complex64;
use mimonet_frame::modulation::Modulation;
use proptest::prelude::*;

fn c() -> impl Strategy<Value = Complex64> {
    (-5.0..5.0f64, -5.0..5.0f64).prop_map(|(re, im)| Complex64::new(re, im))
}

fn mat(n: usize) -> impl Strategy<Value = CMat> {
    prop::collection::vec(c(), n * n).prop_map(move |d| CMat::new(n, n, d))
}

proptest! {
    #[test]
    fn matmul_associativity(a in mat(2), b in mat(2), d in mat(2)) {
        let lhs = a.mul(&b).mul(&d);
        let rhs = a.mul(&b.mul(&d));
        for i in 0..2 {
            for j in 0..2 {
                prop_assert!(lhs[(i, j)].dist(rhs[(i, j)]) <= 1e-6 * (1.0 + lhs[(i, j)].abs()));
            }
        }
    }

    #[test]
    fn hermitian_of_product(a in mat(3), b in mat(3)) {
        let lhs = a.mul(&b).hermitian();
        let rhs = b.hermitian().mul(&a.hermitian());
        for i in 0..3 {
            for j in 0..3 {
                prop_assert!(lhs[(i, j)].dist(rhs[(i, j)]) < 1e-6 * (1.0 + lhs[(i, j)].abs()));
            }
        }
    }

    #[test]
    fn inverse_roundtrip_when_well_conditioned(a in mat(2)) {
        // Regularize to guarantee invertibility (diagonally dominant).
        let mut m = a;
        m.add_diag(20.0);
        let inv = m.inverse().expect("diagonally dominant");
        let id = m.mul(&inv);
        for i in 0..2 {
            for j in 0..2 {
                let want = if i == j { Complex64::ONE } else { Complex64::ZERO };
                prop_assert!(id[(i, j)].dist(want) < 1e-7);
            }
        }
    }

    #[test]
    fn mul_vec_is_linear(a in mat(2), x in prop::collection::vec(c(), 2), k in c()) {
        let scaled: Vec<Complex64> = x.iter().map(|&v| v * k).collect();
        let ax = a.mul_vec(&x);
        let ascaled = a.mul_vec(&scaled);
        for (u, v) in ax.iter().zip(&ascaled) {
            prop_assert!((*u * k).dist(*v) <= 1e-6 * (1.0 + v.abs()));
        }
    }
}

fn modulation() -> impl Strategy<Value = Modulation> {
    prop_oneof![
        Just(Modulation::Bpsk),
        Just(Modulation::Qpsk),
        Just(Modulation::Qam16),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn all_detectors_invert_clean_well_conditioned_channels(
        m in modulation(),
        seed in any::<u64>(),
        diag in 1.0..3.0f64,
        offdiag in -0.3..0.3f64,
    ) {
        // Channel = strong diagonal + weak coupling: always invertible.
        let h = CMat::new(2, 2, vec![
            Complex64::new(diag, 0.2),
            Complex64::new(offdiag, -offdiag),
            Complex64::new(-offdiag, offdiag),
            Complex64::new(diag, -0.1),
        ]);
        let mut x = seed | 1;
        let bits: Vec<u8> = (0..2 * m.bits_per_symbol()).map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x & 1) as u8
        }).collect();
        let tx = m.map(&bits);
        let y = h.mul_vec(&tx);
        for kind in [DetectorKind::Zf, DetectorKind::Mmse, DetectorKind::Ml] {
            let dec = detect(kind, &h, &y, 1e-6, m).unwrap();
            for (s, d) in dec.iter().enumerate() {
                let got = m.demap_hard(d.symbol);
                let want = &bits[s * m.bits_per_symbol()..(s + 1) * m.bits_per_symbol()];
                prop_assert_eq!(got.as_slice(), want, "{} {:?}", kind, m);
            }
        }
    }

    #[test]
    fn llr_signs_never_contradict_clean_symbols(
        m in modulation(),
        seed in any::<u64>(),
    ) {
        let h = CMat::identity(2);
        let mut x = seed | 1;
        let bits: Vec<u8> = (0..2 * m.bits_per_symbol()).map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x & 1) as u8
        }).collect();
        let y = h.mul_vec(&m.map(&bits));
        for kind in [DetectorKind::Zf, DetectorKind::Mmse, DetectorKind::Ml] {
            let dec = detect(kind, &h, &y, 0.01, m).unwrap();
            for (s, d) in dec.iter().enumerate() {
                for (i, l) in d.llrs.iter().enumerate() {
                    let bit = bits[s * m.bits_per_symbol() + i];
                    prop_assert!((bit == 0) == (*l > 0.0), "{kind} bit {bit} llr {l}");
                }
            }
        }
    }
}
