//! Channel estimation from the long training fields.
//!
//! Two estimators:
//!
//! * [`estimate_siso_lltf`] — legacy L-LTF least squares: the two identical
//!   64-sample repetitions are averaged (3 dB noise reduction) and divided
//!   by the known sequence, per occupied carrier.
//! * [`estimate_mimo_htltf`] — HT-LTF least squares for spatial streams.
//!   During HT-LTF symbol `n`, stream `s` transmits `L_k * P[s][n]`; per
//!   carrier the received matrix `Y (n_rx × n_ltf)` satisfies
//!   `Y = H * diag? — no: Y = H_eff * (L_k * P_block)`, so
//!   `H_eff = Y * P_block^H / (n_ltf * L_k)` using the P matrix's
//!   orthogonality (`P P^H = n_ltf I`). The estimate absorbs each stream's
//!   cyclic shift — exactly what the equalizer wants.
//!
//! [`smooth_frequency`] optionally averages neighboring carriers (valid
//! when the delay spread is short; the HT-SIG "smoothing" bit advertises
//! it).

// Index-based loops here are the clearer expression of the math
// (matrix/carrier indexing); silence the iterator-style suggestion.
#![allow(clippy::needless_range_loop)]
use crate::linalg::CMat;
use mimonet_dsp::complex::Complex64;
use mimonet_frame::carriers::FFT_LEN;
use mimonet_frame::preamble::{htltf_at, lltf_at, P_HTLTF};

/// Per-carrier MIMO channel estimate: `h[k]` is an `n_rx × n_ss` matrix for
/// logical carrier `k` (stored at `k + FFT_LEN/2`).
#[derive(Clone, Debug)]
pub struct ChannelEstimate {
    n_rx: usize,
    n_ss: usize,
    /// Indexed `[carrier + 32]`; `None` on unoccupied carriers.
    h: Vec<Option<CMat>>,
}

impl ChannelEstimate {
    /// An estimate with no trained carriers — the starting point for the
    /// estimators, and the state a workspace-owned estimate holds between
    /// frames.
    pub fn empty(n_rx: usize, n_ss: usize) -> Self {
        Self {
            n_rx,
            n_ss,
            h: vec![None; FFT_LEN],
        }
    }

    /// Clears all carriers and re-dimensions the estimate without
    /// reallocating — lets a receiver reuse one `ChannelEstimate` across
    /// frames.
    pub fn reset(&mut self, n_rx: usize, n_ss: usize) {
        self.n_rx = n_rx;
        self.n_ss = n_ss;
        self.h.fill(None);
    }

    /// Receive antenna count.
    pub fn n_rx(&self) -> usize {
        self.n_rx
    }

    /// Spatial stream count.
    pub fn n_ss(&self) -> usize {
        self.n_ss
    }

    /// The estimate at logical carrier `k`, if that carrier was trained.
    pub fn at(&self, k: i32) -> Option<&CMat> {
        self.h.get((k + FFT_LEN as i32 / 2) as usize)?.as_ref()
    }

    fn set(&mut self, k: i32, m: CMat) {
        self.h[(k + FFT_LEN as i32 / 2) as usize] = Some(m);
    }

    /// Carriers with estimates, ascending.
    pub fn carriers(&self) -> Vec<i32> {
        (0..FFT_LEN)
            .filter(|&i| self.h[i].is_some())
            .map(|i| i as i32 - FFT_LEN as i32 / 2)
            .collect()
    }

    /// Mean squared error against a reference channel (for experiments),
    /// averaged over trained carriers and matrix entries.
    pub fn mse_against<F>(&self, reference: F) -> f64
    where
        F: Fn(i32, usize, usize) -> Complex64, // (carrier, rx, ss) -> h
    {
        let mut err = 0.0;
        let mut count = 0usize;
        for k in self.carriers() {
            let est = self.at(k).unwrap();
            for r in 0..self.n_rx {
                for s in 0..self.n_ss {
                    err += est[(r, s)].dist_sqr(reference(k, r, s));
                    count += 1;
                }
            }
        }
        if count == 0 {
            0.0
        } else {
            err / count as f64
        }
    }
}

/// Legacy L-LTF estimation for a SISO (or per-RX-antenna) link.
///
/// `rep1` and `rep2` are the two demodulated 64-bin L-LTF repetitions
/// (same scaling as the data symbols). Returns a 1×1-matrix-per-carrier
/// estimate over the 52 legacy carriers.
pub fn estimate_siso_lltf(
    rep1: &[Complex64; FFT_LEN],
    rep2: &[Complex64; FFT_LEN],
) -> ChannelEstimate {
    let mut est = ChannelEstimate::empty(1, 1);
    estimate_siso_lltf_into(rep1, rep2, &mut est);
    est
}

/// [`estimate_siso_lltf`] into a caller-owned estimate (reset first) — the
/// allocation-free path for a receiver that reuses its estimates across
/// frames.
pub fn estimate_siso_lltf_into(
    rep1: &[Complex64; FFT_LEN],
    rep2: &[Complex64; FFT_LEN],
    est: &mut ChannelEstimate,
) {
    est.reset(1, 1);
    for k in -26..=26i32 {
        let l = lltf_at(k);
        if l == 0.0 {
            continue;
        }
        let bin = mimonet_frame::carriers::carrier_to_bin(k);
        let avg = (rep1[bin] + rep2[bin]).scale(0.5);
        est.set(k, CMat::scalar(avg / l));
    }
}

/// HT-LTF MIMO estimation.
///
/// `ltf_bins[n][r]` holds the demodulated 64 bins of HT-LTF symbol `n` at
/// receive antenna `r`. Requires `ltf_bins.len() >= n_ss` LTF symbols (2
/// for 2 streams). Returns an `n_rx × n_ss` estimate per HT carrier.
pub fn estimate_mimo_htltf(ltf_bins: &[Vec<[Complex64; FFT_LEN]>], n_ss: usize) -> ChannelEstimate {
    let n_ltf = ltf_bins.len();
    assert!(
        n_ltf >= n_ss,
        "need at least {n_ss} HT-LTF symbols, got {n_ltf}"
    );
    let n_rx = ltf_bins[0].len();
    assert!(
        ltf_bins.iter().all(|s| s.len() == n_rx),
        "ragged antenna data"
    );
    let mut est = ChannelEstimate::empty(n_rx, n_ss);
    mimo_htltf_core(n_ltf, n_rx, n_ss, &mut est, |n, r, bin| ltf_bins[n][r][bin]);
    est
}

/// [`estimate_mimo_htltf`] over a flat, symbol-major slab of demodulated
/// LTF bins: `ltf_bins[n * n_rx + r]` holds HT-LTF symbol `n` at antenna
/// `r`. Writes into a caller-owned estimate (reset first) — the
/// allocation-free path for the RX channel-estimation stage.
pub fn estimate_mimo_htltf_into(
    ltf_bins: &[[Complex64; FFT_LEN]],
    n_rx: usize,
    n_ss: usize,
    est: &mut ChannelEstimate,
) {
    assert!(n_rx > 0, "need at least one RX antenna");
    assert!(
        ltf_bins.len().is_multiple_of(n_rx),
        "LTF slab length {} not a multiple of n_rx {}",
        ltf_bins.len(),
        n_rx
    );
    let n_ltf = ltf_bins.len() / n_rx;
    assert!(
        n_ltf >= n_ss,
        "need at least {n_ss} HT-LTF symbols, got {n_ltf}"
    );
    mimo_htltf_core(n_ltf, n_rx, n_ss, est, |n, r, bin| {
        ltf_bins[n * n_rx + r][bin]
    });
}

/// Shared LS solve for both HT-LTF entry points. `get(n, r, bin)` reads
/// the demodulated bin of LTF symbol `n` at antenna `r`; the floating-point
/// operation order is identical regardless of the backing layout.
fn mimo_htltf_core(
    n_ltf: usize,
    n_rx: usize,
    n_ss: usize,
    est: &mut ChannelEstimate,
    get: impl Fn(usize, usize, usize) -> Complex64,
) {
    assert!(
        (1..=4).contains(&n_ss),
        "this transceiver supports 1-4 streams"
    );
    est.reset(n_rx, n_ss);
    for k in -28..=28i32 {
        let l = htltf_at(k);
        if l == 0.0 {
            continue;
        }
        let bin = mimonet_frame::carriers::carrier_to_bin(k);
        // Y: n_rx × n_ltf
        let mut y = CMat::zeros(n_rx, n_ltf);
        for n in 0..n_ltf {
            for r in 0..n_rx {
                y[(r, n)] = get(n, r, bin);
            }
        }
        // P block: n_ss × n_ltf.
        let mut p = CMat::zeros(n_ss, n_ltf);
        for s in 0..n_ss {
            for n in 0..n_ltf {
                p[(s, n)] = Complex64::from_re(P_HTLTF[s][n]);
            }
        }
        // H = Y P^H / (n_ltf * L_k).
        let mut h = y.mul(&p.hermitian());
        let scale = 1.0 / (n_ltf as f64 * l);
        for r in 0..n_rx {
            for s in 0..n_ss {
                h[(r, s)] = h[(r, s)].scale(scale);
            }
        }
        est.set(k, h);
    }
}

/// Smooths an estimate across frequency with a centered moving average of
/// `2*half + 1` carriers (clipped at band edges and the DC gap). Reduces
/// noise ~(2·half+1)× on flat channels at the cost of bias on selective
/// ones — experiment A-class territory.
pub fn smooth_frequency(est: &ChannelEstimate, half: usize) -> ChannelEstimate {
    let mut out = ChannelEstimate::empty(est.n_rx, est.n_ss);
    smooth_frequency_into(est, half, &mut out);
    out
}

/// [`smooth_frequency`] into a caller-owned estimate (reset first) — the
/// allocation-free path. The trained-carrier list is gathered on the stack.
pub fn smooth_frequency_into(est: &ChannelEstimate, half: usize, out: &mut ChannelEstimate) {
    out.reset(est.n_rx, est.n_ss);
    let mut carr = [0i32; FFT_LEN];
    let mut nc = 0usize;
    for i in 0..FFT_LEN {
        if est.h[i].is_some() {
            carr[nc] = i as i32 - FFT_LEN as i32 / 2;
            nc += 1;
        }
    }
    let carriers = &carr[..nc];
    for (idx, &k) in carriers.iter().enumerate() {
        let lo = idx.saturating_sub(half);
        let hi = (idx + half).min(carriers.len() - 1);
        let mut acc = CMat::zeros(est.n_rx, est.n_ss);
        let mut n = 0.0;
        for &kk in &carriers[lo..=hi] {
            let m = est.at(kk).unwrap();
            for r in 0..est.n_rx {
                for s in 0..est.n_ss {
                    acc[(r, s)] += m[(r, s)];
                }
            }
            n += 1.0;
        }
        for r in 0..est.n_rx {
            for s in 0..est.n_ss {
                acc[(r, s)] = acc[(r, s)].scale(1.0 / n);
            }
        }
        out.set(k, acc);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mimonet_channel::noise::crandn;
    use mimonet_dsp::complex::C64;
    use mimonet_frame::carriers::carrier_to_bin;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// Simulates demodulated LTF bins through a flat per-carrier channel.
    fn siso_ltf_through(
        h: impl Fn(i32) -> C64,
        noise: f64,
        rng: &mut ChaCha8Rng,
    ) -> ([C64; FFT_LEN], [C64; FFT_LEN]) {
        let mut r1 = [C64::ZERO; FFT_LEN];
        let mut r2 = [C64::ZERO; FFT_LEN];
        for k in -26..=26i32 {
            let l = lltf_at(k);
            if l == 0.0 {
                continue;
            }
            let bin = carrier_to_bin(k);
            let clean = h(k) * l;
            r1[bin] = clean + crandn(rng).scale(noise.sqrt());
            r2[bin] = clean + crandn(rng).scale(noise.sqrt());
        }
        (r1, r2)
    }

    #[test]
    fn siso_estimate_exact_noiseless() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let h = |k: i32| C64::from_polar(1.0 + 0.01 * k as f64, 0.07 * k as f64);
        let (r1, r2) = siso_ltf_through(h, 0.0, &mut rng);
        let est = estimate_siso_lltf(&r1, &r2);
        assert_eq!(est.carriers().len(), 52);
        for k in est.carriers() {
            assert!(est.at(k).unwrap()[(0, 0)].dist(h(k)) < 1e-12, "carrier {k}");
        }
        assert!(est.at(0).is_none());
        assert!(est.at(27).is_none());
    }

    #[test]
    fn siso_averaging_halves_noise_power() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let h = |_: i32| C64::ONE;
        let noise = 0.1;
        let mut mse = 0.0;
        let trials = 200;
        for _ in 0..trials {
            let (r1, r2) = siso_ltf_through(h, noise, &mut rng);
            let est = estimate_siso_lltf(&r1, &r2);
            mse += est.mse_against(|_, _, _| C64::ONE);
        }
        mse /= trials as f64;
        // Expected MSE = noise/2 (two averaged repetitions, |L|=1).
        assert!((mse / (noise / 2.0) - 1.0).abs() < 0.1, "mse {mse}");
    }

    /// Builds HT-LTF observations through a given flat MIMO channel.
    fn mimo_ltf_through(
        h: &[[C64; 2]; 2],
        noise: f64,
        rng: &mut ChaCha8Rng,
    ) -> Vec<Vec<[C64; FFT_LEN]>> {
        let mut out = Vec::new();
        for n in 0..2 {
            let mut per_rx = Vec::new();
            for r in 0..2 {
                let mut bins = [C64::ZERO; FFT_LEN];
                for k in -28..=28i32 {
                    let l = htltf_at(k);
                    if l == 0.0 {
                        continue;
                    }
                    let bin = carrier_to_bin(k);
                    let mut v = C64::ZERO;
                    for s in 0..2 {
                        v += h[r][s] * (l * P_HTLTF[s][n]);
                    }
                    bins[bin] = v + crandn(rng).scale(noise.sqrt());
                }
                per_rx.push(bins);
            }
            out.push(per_rx);
        }
        out
    }

    #[test]
    fn mimo_estimate_exact_noiseless() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let h = [
            [C64::new(0.9, 0.2), C64::new(-0.3, 0.6)],
            [C64::new(0.1, -0.8), C64::new(1.1, 0.0)],
        ];
        let obs = mimo_ltf_through(&h, 0.0, &mut rng);
        let est = estimate_mimo_htltf(&obs, 2);
        assert_eq!(est.carriers().len(), 56);
        for k in est.carriers() {
            let m = est.at(k).unwrap();
            for r in 0..2 {
                for s in 0..2 {
                    assert!(m[(r, s)].dist(h[r][s]) < 1e-10, "k={k} ({r},{s})");
                }
            }
        }
    }

    #[test]
    fn mimo_estimation_noise_scaling() {
        // LS over 2 orthogonal LTFs: per-entry MSE = noise/2 (|L|=1,
        // P P^H = 2I).
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let h = [[C64::ONE, C64::ZERO], [C64::ZERO, C64::ONE]];
        let noise = 0.2;
        let mut mse = 0.0;
        let trials = 200;
        for _ in 0..trials {
            let obs = mimo_ltf_through(&h, noise, &mut rng);
            let est = estimate_mimo_htltf(&obs, 2);
            mse += est.mse_against(|_, r, s| h[r][s]);
        }
        mse /= trials as f64;
        assert!((mse / (noise / 2.0) - 1.0).abs() < 0.15, "mse {mse}");
    }

    #[test]
    fn single_stream_htltf_estimation() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        // 1 stream over 2 RX antennas, one LTF symbol.
        let h = [C64::new(0.7, -0.1), C64::new(-0.2, 0.5)];
        let mut per_rx = Vec::new();
        for r in 0..2 {
            let mut bins = [C64::ZERO; FFT_LEN];
            for k in -28..=28i32 {
                let l = htltf_at(k);
                if l != 0.0 {
                    bins[carrier_to_bin(k)] = h[r] * l;
                }
            }
            per_rx.push(bins);
        }
        let est = estimate_mimo_htltf(std::slice::from_ref(&per_rx), 1);
        let _ = &mut rng;
        for k in est.carriers() {
            let m = est.at(k).unwrap();
            assert!(m[(0, 0)].dist(h[0]) < 1e-10);
            assert!(m[(1, 0)].dist(h[1]) < 1e-10);
        }
    }

    #[test]
    fn smoothing_reduces_noise_on_flat_channel() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let h = |_: i32| C64::ONE;
        let (r1, r2) = siso_ltf_through(h, 0.2, &mut rng);
        let est = estimate_siso_lltf(&r1, &r2);
        let smoothed = smooth_frequency(&est, 2);
        let raw_mse = est.mse_against(|_, _, _| C64::ONE);
        let smooth_mse = smoothed.mse_against(|_, _, _| C64::ONE);
        assert!(
            smooth_mse < raw_mse / 2.0,
            "raw {raw_mse} smoothed {smooth_mse}"
        );
        assert_eq!(smoothed.carriers(), est.carriers());
    }

    #[test]
    fn smoothing_biases_selective_channel() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        // Fast-varying channel: smoothing must *hurt* (bias outweighs noise
        // win at zero noise).
        let h = |k: i32| C64::cis(1.3 * k as f64);
        let (r1, r2) = siso_ltf_through(h, 0.0, &mut rng);
        let est = estimate_siso_lltf(&r1, &r2);
        let smoothed = smooth_frequency(&est, 3);
        assert!(smoothed.mse_against(|k, _, _| h(k)) > est.mse_against(|k, _, _| h(k)));
    }

    #[test]
    #[should_panic(expected = "need at least 2 HT-LTF")]
    fn insufficient_ltfs_rejected() {
        let bins = vec![vec![[C64::ZERO; FFT_LEN]; 2]];
        estimate_mimo_htltf(&bins, 2);
    }

    #[test]
    fn flat_into_variant_matches_nested() {
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let h = [
            [C64::new(0.4, 0.3), C64::new(-0.7, 0.2)],
            [C64::new(0.2, -0.5), C64::new(0.9, 0.1)],
        ];
        let obs = mimo_ltf_through(&h, 0.05, &mut rng);
        let nested = estimate_mimo_htltf(&obs, 2);

        // Flatten symbol-major: slab[n * n_rx + r].
        let mut slab = Vec::new();
        for sym in &obs {
            for ant in sym {
                slab.push(*ant);
            }
        }
        // Deliberately mis-dimensioned workspace: reset must fix it.
        let mut est = ChannelEstimate::empty(1, 1);
        estimate_mimo_htltf_into(&slab, 2, 2, &mut est);

        assert_eq!(est.n_rx(), nested.n_rx());
        assert_eq!(est.n_ss(), nested.n_ss());
        assert_eq!(est.carriers(), nested.carriers());
        for k in nested.carriers() {
            assert_eq!(est.at(k).unwrap(), nested.at(k).unwrap(), "carrier {k}");
        }
    }

    #[test]
    fn siso_into_variant_matches_and_reuses() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let h = |k: i32| C64::from_polar(1.0, 0.03 * k as f64);
        let (r1, r2) = siso_ltf_through(h, 0.1, &mut rng);
        let fresh = estimate_siso_lltf(&r1, &r2);
        // Reuse a previously-populated estimate of different dimensions.
        let mut est = estimate_siso_lltf(&r2, &r1);
        estimate_siso_lltf_into(&r1, &r2, &mut est);
        assert_eq!(est.carriers(), fresh.carriers());
        for k in fresh.carriers() {
            assert_eq!(est.at(k).unwrap(), fresh.at(k).unwrap());
        }
    }

    #[test]
    fn smooth_into_variant_matches() {
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        let h = |k: i32| C64::cis(0.2 * k as f64);
        let (r1, r2) = siso_ltf_through(h, 0.05, &mut rng);
        let est = estimate_siso_lltf(&r1, &r2);
        let fresh = smooth_frequency(&est, 2);
        let mut out = ChannelEstimate::empty(4, 4);
        smooth_frequency_into(&est, 2, &mut out);
        assert_eq!(out.carriers(), fresh.carriers());
        for k in fresh.carriers() {
            assert_eq!(out.at(k).unwrap(), fresh.at(k).unwrap());
        }
    }
}
