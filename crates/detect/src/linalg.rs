//! Small dense complex matrices for MIMO detection.
//!
//! MIMO dimensions here are 1–4, so a simple row-major matrix with inline
//! (stack) storage and Gauss–Jordan inversion (partial pivoting) is both
//! adequate and easy to audit. Inline storage keeps every matrix operation
//! heap-free — constructing, multiplying, and inverting channel matrices in
//! the per-frame RX path allocates nothing. No external linear-algebra
//! crate is used.

use mimonet_dsp::complex::Complex64;

/// Largest supported dimension (rows or columns).
pub const MAX_DIM: usize = 4;

/// A dense complex matrix, row-major, with inline storage for up to
/// [`MAX_DIM`]² entries. Cheap to copy; unused slots are kept at zero so
/// equality can compare storage directly.
#[derive(Clone, Copy, Debug)]
pub struct CMat {
    rows: usize,
    cols: usize,
    data: [Complex64; MAX_DIM * MAX_DIM],
}

impl PartialEq for CMat {
    fn eq(&self, other: &Self) -> bool {
        // Unused slots are zero by construction, so whole-storage
        // comparison equals element-wise comparison of the used region.
        self.rows == other.rows && self.cols == other.cols && self.data == other.data
    }
}

impl CMat {
    /// Largest supported dimension, re-exported for sizing stack scratch
    /// at call sites.
    pub const MAX_DIM: usize = MAX_DIM;

    /// Creates a matrix from row-major data (a slice, array, or `Vec`).
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`, either dimension is zero, or
    /// a dimension exceeds [`MAX_DIM`].
    pub fn new(rows: usize, cols: usize, data: impl AsRef<[Complex64]>) -> Self {
        let data = data.as_ref();
        assert_eq!(data.len(), rows * cols, "data length mismatch");
        let mut m = Self::zeros(rows, cols);
        m.data[..data.len()].copy_from_slice(data);
        m
    }

    /// The `rows × cols` zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be nonzero");
        assert!(
            rows <= MAX_DIM && cols <= MAX_DIM,
            "matrix dimensions {rows}x{cols} exceed the {MAX_DIM}x{MAX_DIM} MIMO maximum"
        );
        Self {
            rows,
            cols,
            data: [Complex64::ZERO; MAX_DIM * MAX_DIM],
        }
    }

    /// The `1 × 1` matrix holding `v` — the SISO channel-estimate case,
    /// built without touching the heap.
    pub fn scalar(v: Complex64) -> Self {
        let mut m = Self::zeros(1, 1);
        m.data[0] = v;
        m
    }

    /// The identity.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = Complex64::ONE;
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Matrix product `self * other`.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn mul(&self, other: &CMat) -> CMat {
        assert_eq!(self.cols, other.rows, "inner dimensions must agree");
        let mut out = CMat::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == Complex64::ZERO {
                    continue;
                }
                for j in 0..other.cols {
                    out[(i, j)] += a * other[(k, j)];
                }
            }
        }
        out
    }

    /// Matrix–vector product.
    pub fn mul_vec(&self, v: &[Complex64]) -> Vec<Complex64> {
        assert_eq!(self.cols, v.len(), "vector length must equal cols");
        (0..self.rows)
            .map(|i| (0..self.cols).map(|j| self[(i, j)] * v[j]).sum())
            .collect()
    }

    /// Matrix–vector product into a caller-owned slice of length
    /// `self.rows()` — the allocation-free path. Uses the same summation
    /// order as [`Self::mul_vec`], so results are bit-identical.
    pub fn mul_vec_into(&self, v: &[Complex64], out: &mut [Complex64]) {
        assert_eq!(self.cols, v.len(), "vector length must equal cols");
        assert_eq!(out.len(), self.rows, "output length must equal rows");
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = (0..self.cols).map(|j| self[(i, j)] * v[j]).sum();
        }
    }

    /// Conjugate transpose.
    pub fn hermitian(&self) -> CMat {
        let mut out = CMat::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)].conj();
            }
        }
        out
    }

    /// Adds `lambda` to each diagonal entry (in place), the MMSE
    /// regularization.
    pub fn add_diag(&mut self, lambda: f64) {
        let n = self.rows.min(self.cols);
        for i in 0..n {
            self[(i, i)] += Complex64::from_re(lambda);
        }
    }

    /// Inverse by Gauss–Jordan with partial pivoting. Returns `None` for
    /// singular (or numerically singular) matrices.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn inverse(&self) -> Option<CMat> {
        assert_eq!(self.rows, self.cols, "inverse requires a square matrix");
        let n = self.rows;
        let mut a = *self;
        let mut inv = CMat::identity(n);
        for col in 0..n {
            // Pivot: largest magnitude in this column at or below the
            // diagonal.
            let pivot = (col..n)
                .max_by(|&i, &j| {
                    a[(i, col)]
                        .norm_sqr()
                        .partial_cmp(&a[(j, col)].norm_sqr())
                        .unwrap()
                })
                .unwrap();
            if a[(pivot, col)].norm_sqr() < 1e-24 {
                return None;
            }
            if pivot != col {
                for j in 0..n {
                    let tmp = a[(col, j)];
                    a[(col, j)] = a[(pivot, j)];
                    a[(pivot, j)] = tmp;
                    let tmp = inv[(col, j)];
                    inv[(col, j)] = inv[(pivot, j)];
                    inv[(pivot, j)] = tmp;
                }
            }
            let d = a[(col, col)].inv();
            for j in 0..n {
                a[(col, j)] *= d;
                inv[(col, j)] *= d;
            }
            for i in 0..n {
                if i == col {
                    continue;
                }
                let f = a[(i, col)];
                if f == Complex64::ZERO {
                    continue;
                }
                for j in 0..n {
                    let s = a[(col, j)];
                    a[(i, j)] -= f * s;
                    let s = inv[(col, j)];
                    inv[(i, j)] -= f * s;
                }
            }
        }
        Some(inv)
    }

    /// Frobenius norm squared.
    pub fn frobenius_sqr(&self) -> f64 {
        self.data[..self.rows * self.cols]
            .iter()
            .map(|c| c.norm_sqr())
            .sum()
    }
}

impl std::ops::Index<(usize, usize)> for CMat {
    type Output = Complex64;
    fn index(&self, (i, j): (usize, usize)) -> &Complex64 {
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for CMat {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut Complex64 {
        &mut self.data[i * self.cols + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mimonet_dsp::complex::C64;

    fn c(re: f64, im: f64) -> C64 {
        C64::new(re, im)
    }

    fn assert_mat_close(a: &CMat, b: &CMat, tol: f64) {
        assert_eq!(a.rows(), b.rows());
        assert_eq!(a.cols(), b.cols());
        for i in 0..a.rows() {
            for j in 0..a.cols() {
                assert!(
                    a[(i, j)].dist(b[(i, j)]) < tol,
                    "({i},{j}): {:?} vs {:?}",
                    a[(i, j)],
                    b[(i, j)]
                );
            }
        }
    }

    #[test]
    fn identity_multiplication() {
        let m = CMat::new(
            2,
            2,
            vec![c(1.0, 2.0), c(-0.5, 0.0), c(0.0, 1.0), c(3.0, -1.0)],
        );
        assert_mat_close(&m.mul(&CMat::identity(2)), &m, 1e-12);
        assert_mat_close(&CMat::identity(2).mul(&m), &m, 1e-12);
    }

    #[test]
    fn known_product() {
        // [[1, i], [0, 2]] * [[1, 0], [1, 1]] = [[1+i, i], [2, 2]]
        let a = CMat::new(2, 2, vec![C64::ONE, C64::I, C64::ZERO, c(2.0, 0.0)]);
        let b = CMat::new(2, 2, vec![C64::ONE, C64::ZERO, C64::ONE, C64::ONE]);
        let p = a.mul(&b);
        assert!(p[(0, 0)].dist(c(1.0, 1.0)) < 1e-12);
        assert!(p[(0, 1)].dist(C64::I) < 1e-12);
        assert!(p[(1, 0)].dist(c(2.0, 0.0)) < 1e-12);
        assert!(p[(1, 1)].dist(c(2.0, 0.0)) < 1e-12);
    }

    #[test]
    fn hermitian_properties() {
        let m = CMat::new(
            2,
            3,
            (0..6)
                .map(|i| c(i as f64, -(i as f64) * 0.5))
                .collect::<Vec<_>>(),
        );
        let h = m.hermitian();
        assert_eq!(h.rows(), 3);
        assert_eq!(h.cols(), 2);
        for i in 0..2 {
            for j in 0..3 {
                assert_eq!(h[(j, i)], m[(i, j)].conj());
            }
        }
        // (AB)^H = B^H A^H
        let a = CMat::new(
            2,
            2,
            vec![c(1.0, 1.0), c(0.0, 2.0), c(-1.0, 0.5), c(2.0, 0.0)],
        );
        let b = CMat::new(2, 2, vec![c(0.5, -1.0), C64::ONE, C64::I, c(1.0, 1.0)]);
        assert_mat_close(
            &a.mul(&b).hermitian(),
            &b.hermitian().mul(&a.hermitian()),
            1e-12,
        );
    }

    #[test]
    fn inverse_roundtrip() {
        let m = CMat::new(
            3,
            3,
            vec![
                c(2.0, 1.0),
                c(0.0, -1.0),
                c(1.0, 0.0),
                c(1.0, 0.0),
                c(3.0, 0.5),
                c(0.0, 0.0),
                c(0.0, 2.0),
                c(1.0, -1.0),
                c(4.0, 0.0),
            ],
        );
        let inv = m.inverse().expect("invertible");
        assert_mat_close(&m.mul(&inv), &CMat::identity(3), 1e-10);
        assert_mat_close(&inv.mul(&m), &CMat::identity(3), 1e-10);
    }

    #[test]
    fn inverse_of_diagonal() {
        let m = CMat::new(2, 2, vec![c(2.0, 0.0), C64::ZERO, C64::ZERO, c(0.0, 4.0)]);
        let inv = m.inverse().unwrap();
        assert!(inv[(0, 0)].dist(c(0.5, 0.0)) < 1e-12);
        assert!(inv[(1, 1)].dist(c(0.0, -0.25)) < 1e-12);
    }

    #[test]
    fn singular_matrix_returns_none() {
        let m = CMat::new(2, 2, vec![C64::ONE, c(2.0, 0.0), c(2.0, 0.0), c(4.0, 0.0)]);
        assert!(m.inverse().is_none());
        assert!(CMat::zeros(3, 3).inverse().is_none());
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let m = CMat::new(2, 2, vec![C64::ZERO, C64::ONE, C64::ONE, C64::ZERO]);
        let inv = m.inverse().unwrap();
        assert_mat_close(&m.mul(&inv), &CMat::identity(2), 1e-12);
    }

    #[test]
    fn mul_vec_matches_mul() {
        let m = CMat::new(
            2,
            3,
            (0..6)
                .map(|i| c(i as f64 * 0.3, 1.0 - i as f64))
                .collect::<Vec<_>>(),
        );
        let v = vec![c(1.0, 0.0), c(0.0, 1.0), c(-1.0, 2.0)];
        let as_mat = CMat::new(3, 1, v.clone());
        let want = m.mul(&as_mat);
        let got = m.mul_vec(&v);
        for i in 0..2 {
            assert!(got[i].dist(want[(i, 0)]) < 1e-12);
        }
    }

    #[test]
    fn add_diag_regularizes() {
        let mut m = CMat::zeros(2, 2);
        m.add_diag(0.5);
        assert!(m[(0, 0)].dist(c(0.5, 0.0)) < 1e-12);
        assert!(m[(1, 1)].dist(c(0.5, 0.0)) < 1e-12);
        assert!(m.inverse().is_some());
    }

    #[test]
    fn mul_vec_into_matches_mul_vec() {
        let m = CMat::new(
            3,
            2,
            (0..6)
                .map(|i| c(i as f64 * 0.7, 2.0 - i as f64))
                .collect::<Vec<_>>(),
        );
        let v = vec![c(1.0, -1.0), c(0.5, 2.0)];
        let want = m.mul_vec(&v);
        let mut got = [C64::ZERO; 3];
        m.mul_vec_into(&v, &mut got);
        assert_eq!(&got[..], &want[..]);
    }

    #[test]
    fn scalar_constructor() {
        let m = CMat::scalar(c(2.0, -3.0));
        assert_eq!(m.rows(), 1);
        assert_eq!(m.cols(), 1);
        assert_eq!(m, CMat::new(1, 1, vec![c(2.0, -3.0)]));
    }

    #[test]
    fn equality_ignores_storage_beyond_dims() {
        // Two paths to the same logical matrix must compare equal.
        let a = CMat::new(2, 2, vec![C64::ONE, C64::I, C64::ZERO, C64::ONE]);
        let mut b = CMat::zeros(2, 2);
        b[(0, 0)] = C64::ONE;
        b[(0, 1)] = C64::I;
        b[(1, 1)] = C64::ONE;
        assert_eq!(a, b);
        assert_ne!(a, CMat::identity(2));
    }

    #[test]
    #[should_panic(expected = "exceed")]
    fn oversized_dimensions_panic() {
        CMat::zeros(5, 1);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn dimension_mismatch_panics() {
        CMat::identity(2).mul(&CMat::identity(3));
    }

    #[test]
    #[should_panic(expected = "square")]
    fn nonsquare_inverse_panics() {
        CMat::zeros(2, 3).inverse();
    }
}
