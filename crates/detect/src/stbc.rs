//! Alamouti space-time block coding (STBC) — the transmit-diversity
//! counterpart of spatial multiplexing (802.11n's STBC option, here at the
//! per-subcarrier symbol level).
//!
//! Where spatial multiplexing sends two *different* symbols per carrier
//! use, Alamouti sends one symbol stream with order-2 transmit diversity:
//! over two consecutive OFDM symbols, antenna 0 transmits `(s1, s2)` while
//! antenna 1 transmits `(-conj(s2), conj(s1))`. The code is orthogonal, so
//! a matched-filter combiner achieves maximum-likelihood detection with
//! diversity order `2 * n_rx` — half the rate of 2-stream SM, but a far
//! steeper BER slope on fading channels. The A4/F10 experiment plots the
//! classic crossover.

use mimonet_dsp::complex::Complex64;
use mimonet_frame::modulation::Modulation;

/// Encodes a symbol pair for transmission over two antennas and two symbol
/// periods. Returns `[[antenna0_t1, antenna0_t2], [antenna1_t1, antenna1_t2]]`.
///
/// Each antenna's average power equals the input symbol power; divide by
/// `sqrt(2)` at the radio (as the SM transmitter does) to keep total
/// radiated power constant.
pub fn alamouti_encode(s1: Complex64, s2: Complex64) -> [[Complex64; 2]; 2] {
    [[s1, s2], [-s2.conj(), s1.conj()]]
}

/// One combined symbol decision out of the Alamouti decoder.
#[derive(Clone, Debug)]
pub struct StbcDecision {
    /// Combined, normalized symbol estimate.
    pub symbol: Complex64,
    /// Per-bit LLRs (positive ⇒ bit 0), scaled by the post-combining SNR.
    pub llrs: Vec<f64>,
}

/// Decodes one Alamouti block on one subcarrier.
///
/// * `y` — received samples `y[rx][t]` for the two symbol periods,
/// * `h` — per-antenna channel `h[rx][tx]` (assumed constant over the two
///   periods — block fading),
/// * `noise_var` — per-RX-antenna complex noise variance.
///
/// Returns decisions for `(s1, s2)`.
///
/// # Panics
///
/// Panics if `y` and `h` disagree on the antenna count or are empty.
pub fn alamouti_decode(
    y: &[[Complex64; 2]],
    h: &[[Complex64; 2]],
    noise_var: f64,
    modulation: Modulation,
) -> [StbcDecision; 2] {
    assert!(!y.is_empty(), "need at least one RX antenna");
    assert_eq!(y.len(), h.len(), "y and h must cover the same antennas");
    let mut gain = 0.0;
    let mut s1_hat = Complex64::ZERO;
    let mut s2_hat = Complex64::ZERO;
    for (yr, hr) in y.iter().zip(h) {
        let (h0, h1) = (hr[0], hr[1]);
        gain += h0.norm_sqr() + h1.norm_sqr();
        // Orthogonal matched-filter combining.
        s1_hat += h0.conj() * yr[0] + h1 * yr[1].conj();
        s2_hat += h0.conj() * yr[1] - h1 * yr[0].conj();
    }
    let gain = gain.max(1e-15);
    let s1 = s1_hat / gain;
    let s2 = s2_hat / gain;
    // Post-combining noise variance on the normalized estimate: the
    // combiner sums |h|^2-weighted unit-variance noise, so var = nv/gain.
    let nv_eff = (noise_var / gain).max(1e-15);
    [
        StbcDecision {
            symbol: s1,
            llrs: modulation.demap_soft(s1, nv_eff),
        },
        StbcDecision {
            symbol: s2,
            llrs: modulation.demap_soft(s2, nv_eff),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use mimonet_channel::noise::crandn;
    use mimonet_dsp::complex::C64;
    use rand::Rng;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn send_through(
        h: &[[C64; 2]],
        s1: C64,
        s2: C64,
        noise: f64,
        rng: &mut ChaCha8Rng,
    ) -> Vec<[C64; 2]> {
        let tx = alamouti_encode(s1, s2);
        h.iter()
            .map(|hr| {
                let mut y = [C64::ZERO; 2];
                for (t, slot) in y.iter_mut().enumerate() {
                    *slot = hr[0] * tx[0][t] + hr[1] * tx[1][t] + crandn(rng).scale(noise.sqrt());
                }
                y
            })
            .collect()
    }

    #[test]
    fn encode_structure() {
        let s1 = C64::new(1.0, 2.0);
        let s2 = C64::new(-0.5, 0.3);
        let tx = alamouti_encode(s1, s2);
        assert_eq!(tx[0], [s1, s2]);
        assert_eq!(tx[1], [-s2.conj(), s1.conj()]);
        // Code matrix columns are orthogonal.
        let dot = tx[0][0] * tx[1][0].conj() + tx[0][1] * tx[1][1].conj();
        assert!(dot.abs() < 1e-12);
    }

    #[test]
    fn decode_exact_noiseless() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let h = vec![
            [C64::new(0.8, -0.3), C64::new(-0.2, 0.6)],
            [C64::new(0.1, 0.9), C64::new(0.5, 0.2)],
        ];
        let m = Modulation::Qam16;
        for _ in 0..20 {
            let bits: Vec<u8> = (0..8).map(|_| rng.gen_range(0..2u8)).collect();
            let syms = m.map(&bits);
            let y = send_through(&h, syms[0], syms[1], 0.0, &mut rng);
            let dec = alamouti_decode(&y, &h, 1e-9, m);
            assert!(dec[0].symbol.dist(syms[0]) < 1e-9);
            assert!(dec[1].symbol.dist(syms[1]) < 1e-9);
            assert_eq!(m.demap_hard(dec[0].symbol), &bits[..4]);
            assert_eq!(m.demap_hard(dec[1].symbol), &bits[4..]);
        }
    }

    #[test]
    fn llr_signs_match_bits() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let h = vec![[C64::new(1.0, 0.1), C64::new(-0.4, 0.7)]];
        let m = Modulation::Qpsk;
        let bits = vec![1u8, 0, 0, 1];
        let syms = m.map(&bits);
        let y = send_through(&h, syms[0], syms[1], 0.001, &mut rng);
        let dec = alamouti_decode(&y, &h, 0.001, m);
        for (d, chunk) in dec.iter().zip(bits.chunks(2)) {
            for (b, l) in chunk.iter().zip(&d.llrs) {
                assert!((*b == 0) == (*l > 0.0));
            }
        }
    }

    #[test]
    fn diversity_beats_single_antenna_on_fading() {
        // Symbol-level Monte Carlo: Alamouti 2x1 vs uncoded SISO at the
        // same total TX power and same per-symbol rate (QPSK). On Rayleigh
        // fading the diversity-2 slope must yield clearly fewer errors.
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let m = Modulation::Qpsk;
        let nv: f64 = 0.1; // ~10 dB
        let trials = 4000;
        let mut errs_siso = 0usize;
        let mut errs_stbc = 0usize;
        for _ in 0..trials {
            let bits: Vec<u8> = (0..4).map(|_| rng.gen_range(0..2u8)).collect();
            let syms = m.map(&bits);

            // SISO: one antenna, full power.
            let h = crandn(&mut rng);
            for (i, &s) in syms.iter().enumerate() {
                let y = h * s + crandn(&mut rng).scale(nv.sqrt());
                let got = m.demap_hard(y / h);
                errs_siso += got
                    .iter()
                    .zip(&bits[i * 2..i * 2 + 2])
                    .filter(|(a, b)| a != b)
                    .count();
            }

            // Alamouti 2x1: two TX antennas at half power each.
            let hr = [[crandn(&mut rng), crandn(&mut rng)]];
            let scale = 1.0 / 2f64.sqrt();
            let tx = alamouti_encode(syms[0] * scale, syms[1] * scale);
            let mut y = [C64::ZERO; 2];
            for (t, slot) in y.iter_mut().enumerate() {
                *slot =
                    hr[0][0] * tx[0][t] + hr[0][1] * tx[1][t] + crandn(&mut rng).scale(nv.sqrt());
            }
            let dec = alamouti_decode(&[y], &hr, nv, m);
            for (i, d) in dec.iter().enumerate() {
                let got = m.demap_hard(d.symbol / scale);
                errs_stbc += got
                    .iter()
                    .zip(&bits[i * 2..i * 2 + 2])
                    .filter(|(a, b)| a != b)
                    .count();
            }
        }
        assert!(
            errs_stbc * 2 < errs_siso,
            "STBC {errs_stbc} errors vs SISO {errs_siso} over {trials} blocks"
        );
    }

    #[test]
    fn two_rx_antennas_add_more_diversity() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let m = Modulation::Qpsk;
        let nv: f64 = 0.2;
        let trials = 3000;
        let mut errs_1rx = 0usize;
        let mut errs_2rx = 0usize;
        for _ in 0..trials {
            let bits: Vec<u8> = (0..4).map(|_| rng.gen_range(0..2u8)).collect();
            let syms = m.map(&bits);
            let h: Vec<[C64; 2]> = (0..2)
                .map(|_| [crandn(&mut rng), crandn(&mut rng)])
                .collect();
            let y = send_through(&h, syms[0], syms[1], nv, &mut rng);
            let count_errs = |dec: &[StbcDecision; 2]| -> usize {
                dec.iter()
                    .enumerate()
                    .map(|(i, d)| {
                        m.demap_hard(d.symbol)
                            .iter()
                            .zip(&bits[i * 2..i * 2 + 2])
                            .filter(|(a, b)| a != b)
                            .count()
                    })
                    .sum()
            };
            errs_1rx += count_errs(&alamouti_decode(&y[..1], &h[..1], nv, m));
            errs_2rx += count_errs(&alamouti_decode(&y, &h, nv, m));
        }
        assert!(
            errs_2rx * 3 < errs_1rx,
            "2 RX {errs_2rx} vs 1 RX {errs_1rx}"
        );
    }

    #[test]
    #[should_panic(expected = "same antennas")]
    fn mismatched_inputs_rejected() {
        let y = [[C64::ZERO; 2]];
        let h = [[C64::ONE; 2], [C64::ONE; 2]];
        alamouti_decode(&y, &h, 0.1, Modulation::Bpsk);
    }
}
