//! MIMO detection: zero-forcing, MMSE and maximum-likelihood.
//!
//! Given the per-carrier model `y = H x + w` (`H` from
//! [`crate::chanest`], `x` the per-stream constellation symbols, `w` white
//! noise of variance `noise_var` per RX antenna), each detector returns
//! per-stream symbol estimates and per-bit LLRs (positive ⇒ bit 0, the
//! convention `mimonet_fec::viterbi::decode_soft` expects).
//!
//! * **ZF** — `x_hat = (H^H H)^-1 H^H y`. Per-stream post-detection noise
//!   is `noise_var * [(H^H H)^-1]_ss`; simple but noise-enhancing on
//!   ill-conditioned channels.
//! * **MMSE** — `W = (H^H H + noise_var I)^-1 H^H`. Output is biased
//!   (`E[x_tilde_s] = mu_s x_s` with `mu_s = [W H]_ss`); we unbias and
//!   compute the exact per-stream interference-plus-noise variance.
//! * **ML** — exhaustive max-log over the joint constellation (`M^n_ss`
//!   hypotheses; 2 streams of 64-QAM = 4096). Optimal, and the reference
//!   the F7 experiment compares against.

use crate::linalg::CMat;
use mimonet_dsp::complex::Complex64;
use mimonet_frame::modulation::Modulation;

/// Detector selection.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DetectorKind {
    /// Zero forcing.
    Zf,
    /// Linear MMSE with unbiasing.
    Mmse,
    /// Exhaustive maximum likelihood (max-log LLRs).
    Ml,
}

impl std::fmt::Display for DetectorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DetectorKind::Zf => write!(f, "ZF"),
            DetectorKind::Mmse => write!(f, "MMSE"),
            DetectorKind::Ml => write!(f, "ML"),
        }
    }
}

/// Per-stream detection output for one subcarrier.
#[derive(Clone, Debug)]
pub struct StreamDecision {
    /// Equalized (unbiased) symbol estimate.
    pub symbol: Complex64,
    /// Per-bit LLRs, transmission order.
    pub llrs: Vec<f64>,
}

/// Detection failure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DetectError {
    /// Channel matrix is singular (ZF) and cannot be inverted.
    SingularChannel,
}

impl std::fmt::Display for DetectError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DetectError::SingularChannel => write!(f, "channel matrix is singular"),
        }
    }
}

impl std::error::Error for DetectError {}

/// Detects the spatial streams on one subcarrier.
///
/// * `h` — `n_rx × n_ss` channel estimate.
/// * `y` — received frequency-domain samples, one per RX antenna.
/// * `noise_var` — complex noise variance per RX antenna.
///
/// Returns one [`StreamDecision`] per spatial stream.
pub fn detect(
    kind: DetectorKind,
    h: &CMat,
    y: &[Complex64],
    noise_var: f64,
    modulation: Modulation,
) -> Result<Vec<StreamDecision>, DetectError> {
    assert_eq!(y.len(), h.rows(), "one observation per RX antenna");
    let nv = noise_var.max(1e-12);
    match kind {
        DetectorKind::Zf => zf(h, y, nv, modulation),
        DetectorKind::Mmse => mmse(h, y, nv, modulation),
        DetectorKind::Ml => Ok(ml(h, y, nv, modulation)),
    }
}

fn zf(
    h: &CMat,
    y: &[Complex64],
    noise_var: f64,
    modulation: Modulation,
) -> Result<Vec<StreamDecision>, DetectError> {
    let hh = h.hermitian();
    let gram = hh.mul(h); // n_ss × n_ss
    let ginv = gram.inverse().ok_or(DetectError::SingularChannel)?;
    let x = ginv.mul(&hh).mul_vec(y);
    let n_ss = h.cols();
    Ok((0..n_ss)
        .map(|s| {
            // Post-ZF noise variance on stream s.
            let nv_s = noise_var * ginv[(s, s)].re.max(1e-15);
            StreamDecision {
                symbol: x[s],
                llrs: modulation.demap_soft(x[s], nv_s),
            }
        })
        .collect())
}

fn mmse(
    h: &CMat,
    y: &[Complex64],
    noise_var: f64,
    modulation: Modulation,
) -> Result<Vec<StreamDecision>, DetectError> {
    let hh = h.hermitian();
    let mut gram = hh.mul(h);
    gram.add_diag(noise_var);
    // The regularized Gram matrix is positive definite, hence invertible.
    let w = gram.inverse().ok_or(DetectError::SingularChannel)?.mul(&hh);
    let x = w.mul_vec(y);
    let wh = w.mul(h); // bias/interference matrix
    let n_ss = h.cols();
    let n_rx = h.rows();
    Ok((0..n_ss)
        .map(|s| {
            let mu = wh[(s, s)];
            let mu_mag = mu.abs().max(1e-15);
            // Residual interference from other streams plus filtered noise.
            let mut interf = 0.0;
            for j in 0..n_ss {
                if j != s {
                    interf += wh[(s, j)].norm_sqr();
                }
            }
            let mut wnorm = 0.0;
            for r in 0..n_rx {
                wnorm += w[(s, r)].norm_sqr();
            }
            let nv_s = (interf + noise_var * wnorm) / (mu_mag * mu_mag);
            let unbiased = x[s] / mu;
            StreamDecision {
                symbol: unbiased,
                llrs: modulation.demap_soft(unbiased, nv_s.max(1e-15)),
            }
        })
        .collect())
}

fn ml(h: &CMat, y: &[Complex64], noise_var: f64, modulation: Modulation) -> Vec<StreamDecision> {
    let n_ss = h.cols();
    let n_rx = h.rows();
    let points = modulation.constellation();
    let m = points.len();
    let bits_per = modulation.bits_per_symbol();
    let n_hyp = m.pow(n_ss as u32);

    // For every joint hypothesis, the squared distance ||y - Hx||^2.
    // min-distance bookkeeping per (stream, bit, value).
    let mut best_overall = f64::INFINITY;
    let mut best_idx = vec![0usize; n_ss];
    let mut min0 = vec![vec![f64::INFINITY; bits_per]; n_ss];
    let mut min1 = vec![vec![f64::INFINITY; bits_per]; n_ss];

    let mut idx = vec![0usize; n_ss];
    for hyp in 0..n_hyp {
        // Decode hypothesis into per-stream constellation indices.
        let mut rem = hyp;
        for slot in idx.iter_mut() {
            *slot = rem % m;
            rem /= m;
        }
        // Distance.
        let mut d = 0.0;
        for r in 0..n_rx {
            let mut pred = Complex64::ZERO;
            for (s, &pi) in idx.iter().enumerate() {
                pred += h[(r, s)] * points[pi];
            }
            d += y[r].dist_sqr(pred);
        }
        if d < best_overall {
            best_overall = d;
            best_idx.copy_from_slice(&idx);
        }
        for (s, &pi) in idx.iter().enumerate() {
            for b in 0..bits_per {
                if (pi >> b) & 1 == 0 {
                    if d < min0[s][b] {
                        min0[s][b] = d;
                    }
                } else if d < min1[s][b] {
                    min1[s][b] = d;
                }
            }
        }
    }

    (0..n_ss)
        .map(|s| StreamDecision {
            symbol: points[best_idx[s]],
            llrs: (0..bits_per)
                .map(|b| (min1[s][b] - min0[s][b]) / noise_var)
                .collect(),
        })
        .collect()
}

/// A detector with per-carrier precomputation hoisted out of the
/// per-symbol loop.
///
/// On a block-fading channel `H(k)` is constant for the whole frame, so
/// the linear combining matrices (ZF/MMSE) and the ML hypothesis
/// predictions `H s` only need computing once per carrier; [`Prepared::apply`]
/// then runs per received symbol. Results are identical to [`detect`] —
/// the equivalence test below enforces it.
// The inline stack matrices intentionally make the Linear variant big:
// boxing them would put a heap allocation back into the per-carrier
// prepare path the zero-alloc contract forbids.
#[allow(clippy::large_enum_variant)]
pub enum Prepared {
    /// Linear combiner: `x = W y`, unbias by `mu`, demap at `nv_eff`.
    /// Fully inline (no heap) — preparing and applying a ZF/MMSE detector
    /// never allocates.
    Linear {
        /// Combining matrix, `n_ss × n_rx`.
        w: CMat,
        /// Per-stream unbiasing factor (`1` for ZF); first `n_ss` entries
        /// are meaningful.
        mu: [Complex64; CMat::MAX_DIM],
        /// Per-stream effective noise variance; first `n_ss` entries are
        /// meaningful.
        nv_eff: [f64; CMat::MAX_DIM],
        /// Modulation for demapping.
        modulation: Modulation,
    },
    /// Exhaustive ML with precomputed `H s` per joint hypothesis. The
    /// hypothesis table is heap-allocated once per carrier at prepare time
    /// (up to `M^n_ss * n_rx` entries — too large for the stack at 64-QAM);
    /// applying it is allocation-free.
    Ml {
        /// Flat hypothesis predictions, stride `n_rx`:
        /// `pred[hyp * n_rx + r]` = sample predicted at antenna `r`.
        pred: Vec<Complex64>,
        /// Receive antennas (the stride of `pred`).
        n_rx: usize,
        /// Constellation points (for symbol output).
        points: Vec<Complex64>,
        /// Streams.
        n_ss: usize,
        /// Noise variance for LLR scaling.
        noise_var: f64,
        /// Modulation for bit bookkeeping.
        modulation: Modulation,
    },
}

/// Precomputes the per-carrier detector state for a block-fading frame.
pub fn prepare(
    kind: DetectorKind,
    h: &CMat,
    noise_var: f64,
    modulation: Modulation,
) -> Result<Prepared, DetectError> {
    let nv = noise_var.max(1e-12);
    let n_ss = h.cols();
    let n_rx = h.rows();
    match kind {
        DetectorKind::Zf => {
            let hh = h.hermitian();
            let ginv = hh.mul(h).inverse().ok_or(DetectError::SingularChannel)?;
            let w = ginv.mul(&hh);
            let mut nv_eff = [0.0; CMat::MAX_DIM];
            for s in 0..n_ss {
                nv_eff[s] = nv * ginv[(s, s)].re.max(1e-15);
            }
            Ok(Prepared::Linear {
                w,
                mu: [Complex64::ONE; CMat::MAX_DIM],
                nv_eff,
                modulation,
            })
        }
        DetectorKind::Mmse => {
            let hh = h.hermitian();
            let mut gram = hh.mul(h);
            gram.add_diag(nv);
            let w = gram.inverse().ok_or(DetectError::SingularChannel)?.mul(&hh);
            let wh = w.mul(h);
            let mut mu = [Complex64::ZERO; CMat::MAX_DIM];
            let mut nv_eff = [0.0; CMat::MAX_DIM];
            for s in 0..n_ss {
                let m = wh[(s, s)];
                let m_mag = m.abs().max(1e-15);
                let mut interf = 0.0;
                for j in 0..n_ss {
                    if j != s {
                        interf += wh[(s, j)].norm_sqr();
                    }
                }
                let mut wnorm = 0.0;
                for r in 0..n_rx {
                    wnorm += w[(s, r)].norm_sqr();
                }
                mu[s] = m;
                nv_eff[s] = ((interf + nv * wnorm) / (m_mag * m_mag)).max(1e-15);
            }
            Ok(Prepared::Linear {
                w,
                mu,
                nv_eff,
                modulation,
            })
        }
        DetectorKind::Ml => {
            let points = modulation.constellation();
            let m = points.len();
            let n_hyp = m.pow(n_ss as u32);
            let mut pred = Vec::with_capacity(n_hyp * n_rx);
            let mut idx = [0usize; CMat::MAX_DIM];
            for hyp in 0..n_hyp {
                let mut rem = hyp;
                for slot in idx[..n_ss].iter_mut() {
                    *slot = rem % m;
                    rem /= m;
                }
                for r in 0..n_rx {
                    let mut p = Complex64::ZERO;
                    for (s, &pi) in idx[..n_ss].iter().enumerate() {
                        p += h[(r, s)] * points[pi];
                    }
                    pred.push(p);
                }
            }
            Ok(Prepared::Ml {
                pred,
                n_rx,
                points,
                n_ss,
                noise_var: nv,
                modulation,
            })
        }
    }
}

/// Maximum coded bits per subcarrier (64-QAM) — sizes the stack scratch in
/// [`Prepared::apply_into`].
const MAX_BITS: usize = 6;

impl Prepared {
    /// Spatial streams this detector outputs.
    pub fn n_ss(&self) -> usize {
        match self {
            Prepared::Linear { w, .. } => w.rows(),
            Prepared::Ml { n_ss, .. } => *n_ss,
        }
    }

    /// Modulation this detector demaps.
    pub fn modulation(&self) -> Modulation {
        match self {
            Prepared::Linear { modulation, .. } | Prepared::Ml { modulation, .. } => *modulation,
        }
    }

    /// Detects one received vector (one symbol's samples on this carrier).
    pub fn apply(&self, y: &[Complex64]) -> Vec<StreamDecision> {
        let n_ss = self.n_ss();
        let bp = self.modulation().bits_per_symbol();
        let mut syms = [Complex64::ZERO; CMat::MAX_DIM];
        let mut llrs = vec![0.0; n_ss * bp];
        self.apply_into(y, &mut syms[..n_ss], &mut llrs);
        (0..n_ss)
            .map(|s| StreamDecision {
                symbol: syms[s],
                llrs: llrs[s * bp..(s + 1) * bp].to_vec(),
            })
            .collect()
    }

    /// [`Prepared::apply`] into caller-owned storage — the allocation-free
    /// path for the per-symbol RX loop. `symbols` receives one equalized
    /// symbol per stream; `llrs` receives the per-bit LLRs stream-major
    /// (`llrs[s * bits_per + b]`). Results are bit-identical to `apply`.
    ///
    /// # Panics
    ///
    /// Panics if `symbols.len() != n_ss` or
    /// `llrs.len() != n_ss * bits_per_symbol`, or on an observation-count
    /// mismatch.
    pub fn apply_into(&self, y: &[Complex64], symbols: &mut [Complex64], llrs: &mut [f64]) {
        let bits_per = self.modulation().bits_per_symbol();
        assert_eq!(symbols.len(), self.n_ss(), "one symbol slot per stream");
        assert_eq!(
            llrs.len(),
            self.n_ss() * bits_per,
            "stream-major LLR slab of n_ss * bits_per"
        );
        match self {
            Prepared::Linear {
                w,
                mu,
                nv_eff,
                modulation,
            } => {
                assert_eq!(y.len(), w.cols(), "one observation per RX antenna");
                let n_ss = w.rows();
                let mut x = [Complex64::ZERO; CMat::MAX_DIM];
                w.mul_vec_into(y, &mut x[..n_ss]);
                for s in 0..n_ss {
                    let sym = x[s] / mu[s];
                    symbols[s] = sym;
                    modulation.demap_soft_into(
                        sym,
                        nv_eff[s],
                        &mut llrs[s * bits_per..][..bits_per],
                    );
                }
            }
            Prepared::Ml {
                pred,
                n_rx,
                points,
                n_ss,
                noise_var,
                modulation: _,
            } => {
                let m = points.len();
                let mut best = f64::INFINITY;
                let mut best_hyp = 0usize;
                let mut min0 = [[f64::INFINITY; MAX_BITS]; CMat::MAX_DIM];
                let mut min1 = [[f64::INFINITY; MAX_BITS]; CMat::MAX_DIM];
                for (hyp, row) in pred.chunks_exact(*n_rx).enumerate() {
                    let mut d = 0.0;
                    for (yr, pr) in y.iter().zip(row) {
                        d += yr.dist_sqr(*pr);
                    }
                    if d < best {
                        best = d;
                        best_hyp = hyp;
                    }
                    let mut rem = hyp;
                    for s in 0..*n_ss {
                        let pi = rem % m;
                        rem /= m;
                        for b in 0..bits_per {
                            if (pi >> b) & 1 == 0 {
                                if d < min0[s][b] {
                                    min0[s][b] = d;
                                }
                            } else if d < min1[s][b] {
                                min1[s][b] = d;
                            }
                        }
                    }
                }
                for s in 0..*n_ss {
                    let pi = best_hyp / m.pow(s as u32) % m;
                    symbols[s] = points[pi];
                    for b in 0..bits_per {
                        llrs[s * bits_per + b] = (min1[s][b] - min0[s][b]) / noise_var;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mimonet_channel::noise::crandn;
    use mimonet_dsp::complex::C64;
    use rand::Rng;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    const KINDS: [DetectorKind; 3] = [DetectorKind::Zf, DetectorKind::Mmse, DetectorKind::Ml];

    fn random_symbols(rng: &mut ChaCha8Rng, m: Modulation, n: usize) -> (Vec<u8>, Vec<C64>) {
        let bits: Vec<u8> = (0..n * m.bits_per_symbol())
            .map(|_| rng.gen_range(0..2u8))
            .collect();
        let syms = m.map(&bits);
        (bits, syms)
    }

    fn well_conditioned_h() -> CMat {
        CMat::new(
            2,
            2,
            vec![
                C64::new(1.0, 0.2),
                C64::new(-0.3, 0.4),
                C64::new(0.2, -0.5),
                C64::new(0.9, -0.1),
            ],
        )
    }

    #[test]
    fn all_detectors_recover_noiseless_2x2() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let h = well_conditioned_h();
        for m in [
            Modulation::Bpsk,
            Modulation::Qpsk,
            Modulation::Qam16,
            Modulation::Qam64,
        ] {
            let (bits, syms) = random_symbols(&mut rng, m, 2);
            let y = h.mul_vec(&syms);
            for kind in KINDS {
                let dec = detect(kind, &h, &y, 1e-6, m).unwrap();
                for s in 0..2 {
                    let got = m.demap_hard(dec[s].symbol);
                    let want = &bits[s * m.bits_per_symbol()..(s + 1) * m.bits_per_symbol()];
                    assert_eq!(got, want, "{kind} {m} stream {s}");
                    // LLR signs agree with bits.
                    for (b, l) in want.iter().zip(&dec[s].llrs) {
                        assert!((*b == 0) == (*l > 0.0), "{kind} {m}");
                    }
                }
            }
        }
    }

    #[test]
    fn siso_detection_reduces_to_equalization() {
        let h = CMat::new(1, 1, vec![C64::new(0.5, 0.5)]);
        let x = Modulation::Qpsk.map(&[1, 0]);
        let y = h.mul_vec(&x);
        for kind in KINDS {
            let dec = detect(kind, &h, &y, 1e-4, Modulation::Qpsk).unwrap();
            assert!(dec[0].symbol.dist(x[0]) < 1e-3, "{kind}");
        }
    }

    #[test]
    fn zf_rejects_singular_channel() {
        let h = CMat::new(2, 2, vec![C64::ONE, C64::ONE, C64::ONE, C64::ONE]);
        let y = [C64::ONE, C64::ONE];
        assert!(matches!(
            detect(DetectorKind::Zf, &h, &y, 0.1, Modulation::Bpsk),
            Err(DetectError::SingularChannel)
        ));
        // MMSE regularizes and survives.
        assert!(detect(DetectorKind::Mmse, &h, &y, 0.1, Modulation::Bpsk).is_ok());
        // ML always works.
        assert!(detect(DetectorKind::Ml, &h, &y, 0.1, Modulation::Bpsk).is_ok());
    }

    /// Monte-Carlo BER comparison on an ill-conditioned channel: ML must
    /// beat ZF, and MMSE must sit in between (or tie ML).
    #[test]
    fn detector_ordering_on_hard_channel() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        // Nearly rank-deficient channel.
        let h = CMat::new(
            2,
            2,
            vec![
                C64::new(1.0, 0.0),
                C64::new(0.95, 0.05),
                C64::new(0.7, -0.2),
                C64::new(0.75, -0.15),
            ],
        );
        let m = Modulation::Qpsk;
        let nv: f64 = 0.05;
        let mut errs = [0usize; 3];
        let trials = 2000;
        for _ in 0..trials {
            let (bits, syms) = random_symbols(&mut rng, m, 2);
            let mut y = h.mul_vec(&syms);
            for v in &mut y {
                *v += crandn(&mut rng).scale(nv.sqrt());
            }
            for (ki, kind) in KINDS.iter().enumerate() {
                let dec = detect(*kind, &h, &y, nv, m).unwrap();
                for s in 0..2 {
                    let got = m.demap_hard(dec[s].symbol);
                    let want = &bits[s * 2..s * 2 + 2];
                    errs[ki] += got.iter().zip(want).filter(|(a, b)| a != b).count();
                }
            }
        }
        let [zf, mmse, ml] = errs;
        assert!(ml < zf, "ML {ml} must beat ZF {zf}");
        assert!(mmse <= zf, "MMSE {mmse} must not lose to ZF {zf}");
        assert!(ml <= mmse, "ML {ml} must not lose to MMSE {mmse}");
        assert!(zf > 0, "channel must actually be stressful");
    }

    #[test]
    fn mmse_unbiasing_centers_constellation() {
        // At moderate noise the unbiased MMSE output should average to the
        // transmitted symbol, not a shrunk version of it.
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let h = well_conditioned_h();
        let m = Modulation::Bpsk;
        let nv: f64 = 0.5;
        let mut mean = C64::ZERO;
        let trials = 3000;
        for _ in 0..trials {
            // Stream 0 fixed at +1; stream 1 random so its residual
            // interference averages out and only stream 0's bias remains.
            let other = if rng.gen_bool(0.5) { 1 } else { 0 };
            let tx = m.map(&[1, other]);
            let mut y = h.mul_vec(&tx);
            for v in &mut y {
                *v += crandn(&mut rng).scale(nv.sqrt());
            }
            let dec = detect(DetectorKind::Mmse, &h, &y, nv, m).unwrap();
            mean += dec[0].symbol;
        }
        mean = mean.scale(1.0 / trials as f64);
        let want = C64::ONE;
        assert!(mean.dist(want) < 0.07, "biased mean {mean:?} vs {want:?}");
    }

    #[test]
    fn llr_magnitude_grows_with_snr() {
        let h = well_conditioned_h();
        let m = Modulation::Qpsk;
        let x = m.map(&[0, 1, 1, 0]);
        let y = h.mul_vec(&x);
        for kind in KINDS {
            let lo = detect(kind, &h, &y, 0.5, m).unwrap();
            let hi = detect(kind, &h, &y, 0.05, m).unwrap();
            assert!(
                hi[0].llrs[0].abs() > lo[0].llrs[0].abs(),
                "{kind}: hi {} lo {}",
                hi[0].llrs[0],
                lo[0].llrs[0]
            );
        }
    }

    #[test]
    fn ml_llr_is_max_log_exact_for_bpsk_siso() {
        let h = CMat::new(1, 1, vec![C64::ONE]);
        let y = [C64::new(0.3, 0.0)];
        let nv = 0.2;
        let dec = detect(DetectorKind::Ml, &h, &y, nv, Modulation::Bpsk).unwrap();
        // min1 = |0.3-1|^2 = 0.49, min0 = |0.3+1|^2 = 1.69;
        // llr = (0.49-1.69)/0.2 = -6.
        assert!(
            (dec[0].llrs[0] + 6.0).abs() < 1e-9,
            "llr {}",
            dec[0].llrs[0]
        );
    }

    #[test]
    fn prepared_detectors_match_one_shot() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let h = well_conditioned_h();
        for m in [Modulation::Bpsk, Modulation::Qpsk, Modulation::Qam16] {
            for kind in KINDS {
                let prepared = prepare(kind, &h, 0.07, m).unwrap();
                for _ in 0..30 {
                    let (_, syms) = random_symbols(&mut rng, m, 2);
                    let mut y = h.mul_vec(&syms);
                    for v in &mut y {
                        *v += crandn(&mut rng).scale(0.07f64.sqrt());
                    }
                    let a = detect(kind, &h, &y, 0.07, m).unwrap();
                    let b = prepared.apply(&y);
                    for (da, db) in a.iter().zip(&b) {
                        assert!(da.symbol.dist(db.symbol) < 1e-9, "{kind} {m}");
                        for (la, lb) in da.llrs.iter().zip(&db.llrs) {
                            assert!(
                                (la - lb).abs() <= 1e-9 * (1.0 + la.abs()),
                                "{kind} {m}: {la} vs {lb}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn apply_into_matches_apply() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let h = well_conditioned_h();
        let mut syms = [C64::ZERO; CMat::MAX_DIM];
        let mut llrs = [0.0; CMat::MAX_DIM * 6];
        for m in [Modulation::Bpsk, Modulation::Qpsk, Modulation::Qam64] {
            let bp = m.bits_per_symbol();
            for kind in KINDS {
                let prepared = prepare(kind, &h, 0.09, m).unwrap();
                for _ in 0..20 {
                    let (_, tx) = random_symbols(&mut rng, m, 2);
                    let mut y = h.mul_vec(&tx);
                    for v in &mut y {
                        *v += crandn(&mut rng).scale(0.09f64.sqrt());
                    }
                    let a = prepared.apply(&y);
                    prepared.apply_into(&y, &mut syms[..2], &mut llrs[..2 * bp]);
                    for s in 0..2 {
                        assert_eq!(syms[s], a[s].symbol, "{kind} {m} stream {s}");
                        assert_eq!(
                            &llrs[s * bp..(s + 1) * bp],
                            a[s].llrs.as_slice(),
                            "{kind} {m} stream {s}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn prepare_rejects_singular_zf() {
        let h = CMat::new(2, 2, vec![C64::ONE, C64::ONE, C64::ONE, C64::ONE]);
        assert!(matches!(
            prepare(DetectorKind::Zf, &h, 0.1, Modulation::Bpsk),
            Err(DetectError::SingularChannel)
        ));
        assert!(prepare(DetectorKind::Mmse, &h, 0.1, Modulation::Bpsk).is_ok());
    }

    #[test]
    #[should_panic(expected = "one observation per RX antenna")]
    fn wrong_observation_count_panics() {
        let h = well_conditioned_h();
        let _ = detect(DetectorKind::Zf, &h, &[C64::ONE], 0.1, Modulation::Bpsk);
    }
}
