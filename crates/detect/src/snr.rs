//! Fine-grained SNR estimation — the paper's instrumentation for
//! "evaluating the channel conditions".
//!
//! Two estimators with different latencies and assumptions:
//!
//! * [`snr_from_ltf_repetitions`] — **preamble-based**: the two L-LTF
//!   repetitions carry identical signal and independent noise, so the
//!   half-sum estimates signal power and the half-difference estimates
//!   noise power. Available before any data is decoded; one estimate per
//!   frame per antenna.
//! * [`EvmSnrEstimator`] — **decision-directed (EVM)**: accumulates
//!   `|y - decision|^2` against `|decision|^2` over equalized data
//!   symbols. Fine-grained (updates every symbol, usable per subcarrier
//!   region), but biased at very low SNR where decisions are wrong.

use mimonet_dsp::complex::Complex64;
use mimonet_dsp::stats::lin_to_db;
use mimonet_frame::modulation::Modulation;

/// SNR estimate from two noisy repetitions of the same 64-sample signal
/// (time or frequency domain — linearity makes them equivalent).
///
/// Returns the linear SNR estimate; may be tiny or negative-biased at very
/// low SNR (clamped at 0). `None` if the windows are empty or mismatched.
pub fn snr_from_ltf_repetitions(rep1: &[Complex64], rep2: &[Complex64]) -> Option<f64> {
    if rep1.is_empty() || rep1.len() != rep2.len() {
        return None;
    }
    let n = rep1.len() as f64;
    let mut sig = 0.0;
    let mut noise = 0.0;
    for (&a, &b) in rep1.iter().zip(rep2) {
        sig += (a + b).scale(0.5).norm_sqr();
        noise += (a - b).scale(0.5).norm_sqr();
    }
    sig /= n;
    noise /= n;
    // The half-sum still contains noise/2; unbias both.
    let noise_unbiased = noise; // E[|w1-w2|^2]/4 * 2 components = sigma^2/2 each... see below
                                // E[|(a-b)/2|^2] = sigma^2/2 where sigma^2 is per-repetition noise.
    let sigma2 = 2.0 * noise_unbiased;
    let signal = (sig - sigma2 / 2.0).max(0.0);
    if sigma2 <= 0.0 {
        return Some(f64::INFINITY);
    }
    Some(signal / sigma2)
}

/// Multi-antenna preamble SNR: averages per-antenna estimates in the
/// linear domain (total signal over total noise).
pub fn snr_from_ltf_mimo(reps: &[(&[Complex64], &[Complex64])]) -> Option<f64> {
    if reps.is_empty() {
        return None;
    }
    let mut acc = 0.0;
    let mut count = 0usize;
    for (a, b) in reps {
        acc += snr_from_ltf_repetitions(a, b)?;
        count += 1;
    }
    Some(acc / count as f64)
}

/// Decision-directed EVM accumulator.
#[derive(Clone, Debug, Default)]
pub struct EvmSnrEstimator {
    err: f64,
    sig: f64,
    n: u64,
}

impl EvmSnrEstimator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one equalized observation against its known transmitted symbol
    /// (pilot-aided mode).
    pub fn push_known(&mut self, observed: Complex64, transmitted: Complex64) {
        self.err += observed.dist_sqr(transmitted);
        self.sig += transmitted.norm_sqr();
        self.n += 1;
    }

    /// Adds one equalized observation, slicing it to the nearest
    /// constellation point (decision-directed mode).
    pub fn push_decided(&mut self, observed: Complex64, modulation: Modulation) {
        self.push_known(observed, modulation.decide(observed));
    }

    /// Number of accumulated observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Error vector magnitude, RMS, normalized to RMS signal amplitude
    /// (the conventional EVM definition). `None` when empty.
    pub fn evm(&self) -> Option<f64> {
        if self.n == 0 || self.sig <= 0.0 {
            return None;
        }
        Some((self.err / self.sig).sqrt())
    }

    /// SNR estimate in linear units: `1 / EVM^2`.
    pub fn snr(&self) -> Option<f64> {
        let evm = self.evm()?;
        if evm <= 0.0 {
            return Some(f64::INFINITY);
        }
        Some(1.0 / (evm * evm))
    }

    /// SNR estimate in dB.
    pub fn snr_db(&self) -> Option<f64> {
        self.snr().map(lin_to_db)
    }

    /// Clears the accumulator.
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mimonet_channel::noise::crandn;
    use mimonet_dsp::complex::C64;
    use mimonet_dsp::stats::db_to_lin;
    use rand::Rng;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn reps_at_snr(rng: &mut ChaCha8Rng, snr_db: f64, n: usize) -> (Vec<C64>, Vec<C64>) {
        let sigma2 = db_to_lin(-snr_db);
        let clean: Vec<C64> = (0..n).map(|_| crandn(rng)).collect();
        let r1 = clean
            .iter()
            .map(|&c| c + crandn(rng).scale(sigma2.sqrt()))
            .collect();
        let r2 = clean
            .iter()
            .map(|&c| c + crandn(rng).scale(sigma2.sqrt()))
            .collect();
        (r1, r2)
    }

    #[test]
    fn preamble_estimator_tracks_truth() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for snr_db in [0.0, 5.0, 10.0, 20.0, 30.0] {
            // Average 100 frames of 64-sample LTFs.
            let mut acc = 0.0;
            let frames = 100;
            for _ in 0..frames {
                let (r1, r2) = reps_at_snr(&mut rng, snr_db, 64);
                acc += snr_from_ltf_repetitions(&r1, &r2).unwrap();
            }
            let est_db = lin_to_db(acc / frames as f64);
            assert!(
                (est_db - snr_db).abs() < 1.0,
                "target {snr_db} dB, estimated {est_db} dB"
            );
        }
    }

    #[test]
    fn preamble_estimator_identical_reps_is_infinite() {
        let r: Vec<C64> = (0..64).map(|i| C64::cis(i as f64)).collect();
        assert_eq!(snr_from_ltf_repetitions(&r, &r), Some(f64::INFINITY));
    }

    #[test]
    fn preamble_estimator_degenerate_inputs() {
        assert_eq!(snr_from_ltf_repetitions(&[], &[]), None);
        let a = vec![C64::ONE; 4];
        let b = vec![C64::ONE; 5];
        assert_eq!(snr_from_ltf_repetitions(&a, &b), None);
    }

    #[test]
    fn mimo_preamble_average() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let (a1, a2) = reps_at_snr(&mut rng, 10.0, 64);
        let (b1, b2) = reps_at_snr(&mut rng, 10.0, 64);
        let joint = snr_from_ltf_mimo(&[(&a1, &a2), (&b1, &b2)]).unwrap();
        let s1 = snr_from_ltf_repetitions(&a1, &a2).unwrap();
        let s2 = snr_from_ltf_repetitions(&b1, &b2).unwrap();
        assert!((joint - (s1 + s2) / 2.0).abs() < 1e-12);
        assert_eq!(snr_from_ltf_mimo(&[]), None);
    }

    #[test]
    fn evm_known_symbols_exact() {
        let mut est = EvmSnrEstimator::new();
        // Error power = 0.01 against unit symbols → SNR 20 dB, EVM 10%.
        for i in 0..1000 {
            let tx = C64::cis(i as f64);
            let rx = tx + C64::from_polar(0.1, i as f64 * 2.7);
            est.push_known(rx, tx);
        }
        assert!((est.evm().unwrap() - 0.1).abs() < 1e-12);
        assert!((est.snr_db().unwrap() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn evm_decision_directed_matches_at_high_snr() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let m = Modulation::Qam16;
        let snr_db = 25.0;
        let sigma2 = db_to_lin(-snr_db);
        let mut est = EvmSnrEstimator::new();
        for _ in 0..20_000 {
            let bits: Vec<u8> = (0..4).map(|_| rng.gen_range(0..2u8)).collect();
            let tx = m.map_bits(&bits);
            let rx = tx + crandn(&mut rng).scale(sigma2.sqrt());
            est.push_decided(rx, m);
        }
        let got = est.snr_db().unwrap();
        assert!((got - snr_db).abs() < 0.7, "got {got} dB");
    }

    #[test]
    fn evm_decision_directed_biased_at_low_snr() {
        // With frequent decision errors, the estimator reports *higher*
        // SNR than the truth (errors snap to the nearest point). Document
        // the bias direction.
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let m = Modulation::Qam16;
        let snr_db = 5.0;
        let sigma2 = db_to_lin(-snr_db);
        let mut est = EvmSnrEstimator::new();
        for _ in 0..20_000 {
            let bits: Vec<u8> = (0..4).map(|_| rng.gen_range(0..2u8)).collect();
            let tx = m.map_bits(&bits);
            let rx = tx + crandn(&mut rng).scale(sigma2.sqrt());
            est.push_decided(rx, m);
        }
        let got = est.snr_db().unwrap();
        assert!(got > snr_db + 1.0, "expected optimistic bias, got {got} dB");
    }

    #[test]
    fn evm_empty_and_reset() {
        let mut est = EvmSnrEstimator::new();
        assert_eq!(est.evm(), None);
        assert_eq!(est.snr_db(), None);
        est.push_known(C64::ONE, C64::ONE);
        assert_eq!(est.count(), 1);
        est.reset();
        assert_eq!(est.count(), 0);
        assert_eq!(est.snr(), None);
    }
}
