//! # mimonet-detect
//!
//! Estimation and detection for MIMONet-rs:
//!
//! * [`linalg`] — small complex matrices (no external LA crate),
//! * [`chanest`] — LS channel estimation from L-LTF (legacy) and HT-LTF
//!   (MIMO, P-matrix despreading) with optional frequency smoothing,
//! * [`detectors`] — ZF / MMSE / ML spatial-stream detection with
//!   per-bit LLR output,
//! * [`snr`] — preamble-based and EVM-based fine-grained SNR estimation,
//! * [`stbc`] — Alamouti space-time block coding (transmit diversity),
//!   the counterpart MIMO technique to spatial multiplexing.

pub mod chanest;
pub mod detectors;
pub mod linalg;
pub mod snr;
pub mod stbc;

pub use chanest::{estimate_mimo_htltf, estimate_siso_lltf, smooth_frequency, ChannelEstimate};
pub use detectors::{detect, prepare, DetectError, DetectorKind, Prepared, StreamDecision};
pub use linalg::CMat;
pub use snr::{snr_from_ltf_mimo, snr_from_ltf_repetitions, EvmSnrEstimator};
pub use stbc::{alamouti_decode, alamouti_encode, StbcDecision};
