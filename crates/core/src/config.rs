//! Transmitter and receiver configuration.

use mimonet_detect::DetectorKind;
use mimonet_frame::mcs::{InvalidMcs, Mcs};

/// Transmitter configuration.
#[derive(Clone, Debug)]
pub struct TxConfig {
    /// Modulation and coding scheme (0–15; 8–15 are two-stream).
    pub mcs: Mcs,
    /// 7-bit scrambler seed (nonzero). Real transmitters rotate this per
    /// frame; the receiver recovers it from the SERVICE field either way.
    pub scrambler_seed: u8,
}

impl TxConfig {
    /// Creates a config for `mcs_index` with the default scrambler seed.
    pub fn new(mcs_index: u8) -> Result<Self, InvalidMcs> {
        Ok(Self {
            mcs: Mcs::from_index(mcs_index)?,
            scrambler_seed: 0x5D,
        })
    }
}

/// Receiver configuration.
#[derive(Clone, Debug)]
pub struct RxConfig {
    /// Number of receive antennas.
    pub n_rx: usize,
    /// MIMO detector.
    pub detector: DetectorKind,
    /// Use soft-decision (LLR) Viterbi decoding; hard otherwise.
    pub soft_decoding: bool,
    /// Enable pilot-based phase tracking on data symbols.
    pub pilot_tracking: bool,
    /// Enable L-LTF cross-correlation fine timing. When disabled, the
    /// receiver refines the detector's coarse position with the
    /// MIMO-extended Van de Beek CP metric instead (the paper's
    /// synchronization algorithm).
    pub fine_timing: bool,
    /// Channel-estimate frequency smoothing half-width (0 = off). Only
    /// applied when HT-SIG advertises smoothing.
    pub smoothing: usize,
    /// Nominal SNR assumption for the Van de Beek rho weight used by the
    /// fallback timing refinement, in dB. Mild mismatch is harmless.
    pub vdb_snr_db: f64,
    /// Samples to back the FFT window into the cyclic prefix (standard
    /// receiver practice: keeps the window tail away from the symbol
    /// transition, where multipath tails and front-end filter smearing
    /// live). Must stay below `CP_LEN` minus the channel delay spread.
    pub timing_backoff: usize,
}

impl RxConfig {
    /// Default receiver: MMSE, soft decoding, tracking and fine timing on.
    pub fn new(n_rx: usize) -> Self {
        assert!(n_rx >= 1, "need at least one RX antenna");
        Self {
            n_rx,
            detector: DetectorKind::Mmse,
            soft_decoding: true,
            pilot_tracking: true,
            fine_timing: true,
            smoothing: 0,
            vdb_snr_db: 10.0,
            timing_backoff: 3,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tx_config_validates_mcs() {
        assert!(TxConfig::new(15).is_ok());
        assert!(TxConfig::new(31).is_ok());
        assert!(TxConfig::new(32).is_err());
    }

    #[test]
    fn rx_defaults() {
        let cfg = RxConfig::new(2);
        assert_eq!(cfg.n_rx, 2);
        assert_eq!(cfg.detector, DetectorKind::Mmse);
        assert!(cfg.soft_decoding && cfg.pilot_tracking && cfg.fine_timing);
        assert_eq!(cfg.smoothing, 0);
        assert_eq!(cfg.timing_backoff, 3);
    }

    #[test]
    #[should_panic(expected = "at least one RX")]
    fn zero_antennas_rejected() {
        RxConfig::new(0);
    }
}
