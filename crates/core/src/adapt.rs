//! Link adaptation: choosing the MCS from the receiver's channel-quality
//! feedback — the "network-level exploitation of MIMO technology" the
//! MIMONet platform was built to enable.
//!
//! Two cooperating pieces:
//!
//! * [`SnrThresholdTable`] — maps an SNR estimate to the highest MCS whose
//!   switching threshold it clears. Default thresholds were calibrated
//!   from this workspace's own F9 experiment (goodput crossovers over
//!   AWGN); construct with custom thresholds for other channels.
//! * [`RateController`] — wraps the table with hysteresis plus
//!   success/failure nudging (a simplified Minstrel-style fallback for
//!   when SNR feedback is stale), driving per-frame MCS decisions.

use mimonet_frame::mcs::Mcs;

/// SNR-indexed MCS selection table.
#[derive(Clone, Debug)]
pub struct SnrThresholdTable {
    /// `(min_snr_db, mcs)` rows, ascending in SNR.
    rows: Vec<(f64, u8)>,
}

impl SnrThresholdTable {
    /// Builds a table from `(min_snr_db, mcs)` rows.
    ///
    /// # Panics
    ///
    /// Panics if rows are empty, not ascending in SNR, or name an invalid
    /// MCS.
    pub fn new(rows: Vec<(f64, u8)>) -> Self {
        assert!(!rows.is_empty(), "threshold table must not be empty");
        assert!(
            rows.windows(2).all(|w| w[0].0 < w[1].0),
            "thresholds must be strictly ascending"
        );
        for &(_, mcs) in &rows {
            assert!(Mcs::from_index(mcs).is_ok(), "invalid MCS {mcs}");
        }
        Self { rows }
    }

    /// Default 2-stream table calibrated against the F9 goodput
    /// crossovers (AWGN, 1000 B payloads), in the *preamble-estimate*
    /// domain (which reads the per-antenna SNR — ~3 dB under the
    /// configured total-power SNR on a 2x2 identity channel).
    pub fn default_two_stream() -> Self {
        Self::new(vec![
            (8.0, 8),   // BPSK 1/2
            (11.0, 9),  // QPSK 1/2
            (13.0, 10), // QPSK 3/4
            (17.0, 11), // 16-QAM 1/2
            (22.0, 13), // 64-QAM 2/3
            (25.0, 15), // 64-QAM 5/6
        ])
    }

    /// Highest MCS whose threshold `snr_db` clears; `None` below the
    /// lowest threshold (don't transmit / use the most robust rate).
    pub fn select(&self, snr_db: f64) -> Option<u8> {
        self.rows
            .iter()
            .rev()
            .find(|&&(th, _)| snr_db >= th)
            .map(|&(_, mcs)| mcs)
    }

    /// The most robust MCS in the table.
    pub fn lowest(&self) -> u8 {
        self.rows[0].1
    }

    /// The table rows.
    pub fn rows(&self) -> &[(f64, u8)] {
        &self.rows
    }
}

/// Per-frame rate controller with hysteresis and loss fallback.
#[derive(Clone, Debug)]
pub struct RateController {
    table: SnrThresholdTable,
    current: u8,
    /// Extra SNR margin (dB) required before stepping *up* — hysteresis
    /// against flapping at a threshold.
    up_margin: f64,
    /// Consecutive delivery failures before stepping down one table row
    /// regardless of SNR.
    max_failures: u32,
    failures: u32,
}

impl RateController {
    /// Creates a controller starting at the most robust rate.
    pub fn new(table: SnrThresholdTable) -> Self {
        let current = table.lowest();
        Self {
            table,
            current,
            up_margin: 1.0,
            max_failures: 2,
            failures: 0,
        }
    }

    /// The MCS to use for the next frame.
    pub fn current_mcs(&self) -> u8 {
        self.current
    }

    /// Feeds the outcome of the last frame and (optionally) fresh SNR
    /// feedback; returns the MCS for the next frame.
    pub fn update(&mut self, delivered: bool, snr_db: Option<f64>) -> u8 {
        if delivered {
            self.failures = 0;
        } else {
            self.failures += 1;
        }

        if let Some(snr) = snr_db {
            let target = self.table.select(snr).unwrap_or(self.table.lowest());
            if target > self.current {
                // Step up only with margin beyond the bare threshold.
                if self
                    .table
                    .select(snr - self.up_margin)
                    .unwrap_or(self.table.lowest())
                    > self.current
                {
                    self.current = self.next_up();
                }
            } else if target < self.current {
                self.current = target;
            }
        }

        if self.failures >= self.max_failures {
            self.current = self.next_down();
            self.failures = 0;
        }
        self.current
    }

    fn position(&self) -> usize {
        self.table
            .rows()
            .iter()
            .position(|&(_, m)| m == self.current)
            .expect("current always from the table")
    }

    fn next_up(&self) -> u8 {
        let pos = self.position();
        self.table.rows()[(pos + 1).min(self.table.rows().len() - 1)].1
    }

    fn next_down(&self) -> u8 {
        let pos = self.position();
        self.table.rows()[pos.saturating_sub(1)].1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_selects_by_threshold() {
        let t = SnrThresholdTable::default_two_stream();
        assert_eq!(t.select(5.0), None);
        assert_eq!(t.select(8.0), Some(8));
        assert_eq!(t.select(12.0), Some(9));
        assert_eq!(t.select(30.0), Some(15));
    }

    #[test]
    fn table_rejects_bad_rows() {
        assert!(std::panic::catch_unwind(|| SnrThresholdTable::new(vec![])).is_err());
        assert!(
            std::panic::catch_unwind(|| SnrThresholdTable::new(vec![(10.0, 9), (10.0, 10)]))
                .is_err()
        );
        assert!(std::panic::catch_unwind(|| SnrThresholdTable::new(vec![(5.0, 99)])).is_err());
    }

    #[test]
    fn controller_steps_up_one_rate_at_a_time() {
        let mut rc = RateController::new(SnrThresholdTable::default_two_stream());
        assert_eq!(rc.current_mcs(), 8);
        // Huge SNR: still climbs one row per update (stability).
        assert_eq!(rc.update(true, Some(40.0)), 9);
        assert_eq!(rc.update(true, Some(40.0)), 10);
        assert_eq!(rc.update(true, Some(40.0)), 11);
    }

    #[test]
    fn controller_hysteresis_blocks_marginal_upgrades() {
        let mut rc = RateController::new(SnrThresholdTable::default_two_stream());
        rc.update(true, Some(40.0)); // now MCS9 (threshold 11)
        assert_eq!(rc.current_mcs(), 9);
        // 13.0 dB is exactly the MCS10 threshold; with 1 dB margin it
        // must NOT step up...
        assert_eq!(rc.update(true, Some(13.5)), 9);
        // ...but 14.1 dB clears threshold + margin.
        assert_eq!(rc.update(true, Some(14.1)), 10);
    }

    #[test]
    fn controller_drops_immediately_on_low_snr() {
        let mut rc = RateController::new(SnrThresholdTable::default_two_stream());
        for _ in 0..8 {
            rc.update(true, Some(40.0));
        }
        assert_eq!(rc.current_mcs(), 15);
        // SNR collapse: drop straight to the indicated rate, no stepping.
        assert_eq!(rc.update(true, Some(12.0)), 9);
    }

    #[test]
    fn controller_falls_back_on_repeated_loss_without_snr() {
        let mut rc = RateController::new(SnrThresholdTable::default_two_stream());
        for _ in 0..4 {
            rc.update(true, Some(40.0));
        }
        let before = rc.current_mcs();
        assert_eq!(rc.update(false, None), before);
        let after = rc.update(false, None);
        assert!(after < before, "after two losses: {after} < {before}");
    }

    #[test]
    fn controller_never_leaves_the_table() {
        let mut rc = RateController::new(SnrThresholdTable::default_two_stream());
        for _ in 0..20 {
            rc.update(false, None);
        }
        assert_eq!(rc.current_mcs(), 8, "clamped at the most robust rate");
        for _ in 0..20 {
            rc.update(true, Some(60.0));
        }
        assert_eq!(rc.current_mcs(), 15, "clamped at the fastest rate");
    }

    #[test]
    fn success_resets_failure_count() {
        let mut rc = RateController::new(SnrThresholdTable::default_two_stream());
        for _ in 0..4 {
            rc.update(true, Some(40.0));
        }
        let rate = rc.current_mcs();
        rc.update(false, None);
        rc.update(true, None); // success clears the streak
        rc.update(false, None);
        assert_eq!(rc.current_mcs(), rate, "no drop without consecutive losses");
    }
}
