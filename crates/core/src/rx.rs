//! The MIMO-OFDM receiver state machine.
//!
//! Processing order (the practical pipeline the paper describes):
//!
//! 1. **Packet detection** — STF plateau across antennas, coarse CFO.
//! 2. **Coarse CFO correction**, applied lazily as each stage extends its
//!    reach into the capture.
//! 3. **Fine timing** — L-LTF cross-correlation (or detection geometry
//!    when disabled, the A2 ablation).
//! 4. **Fine CFO** from the two L-LTF repetitions, corrected.
//! 5. **SNR / noise-variance estimation** from the LTF repetitions.
//! 6. **L-SIG**, then **HT-SIG** decode (legacy channel estimate + MRC).
//! 7. **HT-LTF MIMO channel estimation** (P-matrix despreading).
//! 8. Per data symbol: FFT, **pilot phase tracking**, **ZF/MMSE/ML
//!    detection**, per-stream deinterleave, stream deparse.
//! 9. Depuncture → Viterbi (soft or hard) → descramble → PSDU.
//!
//! # Hot path & memory discipline
//!
//! The receiver operates on *borrowed* per-antenna sample views
//! (`&[&[Complex64]]`) and keeps every scratch buffer in a reusable
//! [`RxWorkspace`]. After the workspace has warmed up on one frame,
//! [`Receiver::receive_into`] performs **zero heap allocations** (pinned
//! by `tests/alloc_regression.rs`; the ML detector is the one documented
//! exception — its hypothesis table scales with the constellation).
//!
//! Two structural changes make this possible without changing a single
//! output bit (the reference implementation in [`crate::rx_reference`]
//! is the oracle):
//!
//! * **View-based scanning.** [`Receiver::scan`] hands each decode
//!   attempt a window of sub-slices instead of copying up to
//!   [`MAX_FRAME_SPAN`] samples per attempt, which made back-to-back
//!   scans O(capture²) in copied bytes.
//! * **Lazy chunked CFO correction.** The CFO-corrected buffers are
//!   extended only as far as the pipeline actually reads. Chunking is
//!   bit-exact because [`apply_cfo_raw`] threads the *raw accumulated
//!   phase* across chunk boundaries — the identical sequence of `phase +=
//!   step` additions the old whole-buffer pass performed.

use crate::config::RxConfig;
use crate::telemetry::{RxCaptureProfile, RxStage, StageClock, StageProfile};
use crate::tx::{deparse_streams_soft_flat, DATA_POLARITY_OFFSET};
use mimonet_channel::impairments::apply_cfo_raw;
use mimonet_detect::chanest::{
    estimate_mimo_htltf_into, estimate_siso_lltf_into, smooth_frequency_into, ChannelEstimate,
};
use mimonet_detect::snr::snr_from_ltf_repetitions;
use mimonet_detect::{prepare as prepare_detector, CMat, EvmSnrEstimator, Prepared};
use mimonet_dsp::complex::Complex64;
use mimonet_dsp::stats::lin_to_db;
use mimonet_fec::interleaver::Interleaver;
use mimonet_fec::puncture::depuncture_soft_into;
use mimonet_fec::{Symbol, ViterbiDecoder};
use mimonet_frame::carriers::{carrier_to_bin, FFT_LEN, PILOT_CARRIERS};
use mimonet_frame::mcs::Mcs;
use mimonet_frame::ofdm::Ofdm;
use mimonet_frame::pilots::{ht_pilots, legacy_pilots};
use mimonet_frame::preamble::num_htltf;
use mimonet_frame::psdu::descramble_data_bits_into;
use mimonet_frame::sig::{HtSig, LSig, SigError};
use mimonet_frame::Layout;
use mimonet_sync::finetiming::{fine_timing_with, FineTimingScratch};
use mimonet_sync::{DetectorConfig, PacketDetector, PhaseTracker, VanDeBeek};
use std::cell::RefCell;

/// A successfully decoded frame plus the receiver's channel measurements —
/// the paper's "fine grained SNR estimation, BER and PER computations"
/// hang off these fields.
///
/// Implements `Default` so callers can recycle one instance across
/// [`Receiver::receive_into`] calls; every field is fully overwritten on
/// success (on error the contents are unspecified).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RxFrame {
    /// The decoded PSDU (length from HT-SIG; FCS *not* checked here — the
    /// MAC layer / link simulator does that).
    pub psdu: Vec<u8>,
    /// MCS announced in HT-SIG.
    pub mcs: u8,
    /// Preamble-based SNR estimate in dB (average over RX antennas).
    pub snr_db: f64,
    /// Total CFO correction applied, in subcarrier spacings.
    pub cfo: f64,
    /// Sample index of the first L-LTF body in the input buffers.
    pub timing: usize,
    /// EVM-based SNR over the equalized data symbols, in dB.
    pub evm_snr_db: Option<f64>,
    /// Sample index just past the last data symbol — where a streaming
    /// receiver resumes its search for the next frame.
    pub frame_end: usize,
    /// Hard decisions on the received coded stream (punctured domain),
    /// for pre-FEC BER instrumentation.
    pub coded_hard: Vec<u8>,
}

/// Receiver failure at a specific pipeline stage — each maps to an error
/// class the PER instrumentation attributes separately.
#[derive(Clone, Debug, PartialEq)]
pub enum RxError {
    /// Antenna count or buffer lengths inconsistent with the config.
    AntennaMismatch { expected: usize, got: usize },
    /// No STF plateau found.
    NoPacket,
    /// The L-LTF could not be located after detection.
    SyncLost,
    /// Buffer ends before the announced frame does.
    BufferTooShort,
    /// L-SIG failed parity/decoding.
    LSig(SigError),
    /// HT-SIG failed CRC/decoding.
    HtSig(SigError),
    /// HT-SIG announces more streams than we have antennas.
    TooManyStreams { streams: usize, antennas: usize },
    /// The MIMO detector failed on a data carrier (singular channel under
    /// ZF).
    Detector,
    /// FEC decode or descramble failed on the data payload (Viterbi
    /// rejected the stream, or the descrambler found too few bits).
    Fec,
}

impl std::fmt::Display for RxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RxError::AntennaMismatch { expected, got } => {
                write!(f, "expected {expected} RX streams, got {got}")
            }
            RxError::NoPacket => write!(f, "no packet detected"),
            RxError::SyncLost => write!(f, "synchronization lost after detection"),
            RxError::BufferTooShort => write!(f, "buffer ends before the frame does"),
            RxError::LSig(e) => write!(f, "L-SIG: {e}"),
            RxError::HtSig(e) => write!(f, "HT-SIG: {e}"),
            RxError::TooManyStreams { streams, antennas } => {
                write!(f, "{streams} spatial streams but only {antennas} antennas")
            }
            RxError::Detector => write!(f, "MIMO detection failed"),
            RxError::Fec => write!(f, "FEC decode/descramble failed"),
        }
    }
}

impl std::error::Error for RxError {}

/// Upper bound on the samples one frame can legally span: preamble plus
/// the data symbols of a maximum-length (65535-byte) PSDU at the lowest
/// rate (MCS0, 26 data bits/symbol ⇒ ~20.2k symbols × 80 samples), with
/// headroom for detection lead-in. [`Receiver::scan`] windows each decode
/// attempt to this span so a corrupt length field cannot make the
/// receiver chew through (or allocate proportionally to) an arbitrarily
/// long capture.
pub const MAX_FRAME_SPAN: usize = 1_700_000;

/// Robustness statistics from one [`Receiver::scan`] pass.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ScanStats {
    /// Frames successfully decoded.
    pub frames: usize,
    /// Error-driven skip-ahead re-scans (every non-`NoPacket` failure).
    pub rescans: usize,
    /// Failures before the headers: lost sync, short buffer, detector.
    pub sync_errors: usize,
    /// Failures decoding L-SIG / HT-SIG or validating their fields.
    pub header_errors: usize,
    /// Failures in the FEC decode / descramble stage.
    pub fec_errors: usize,
}

/// Reusable scratch memory for one receive chain.
///
/// Holds every buffer the pipeline needs — the lazily CFO-corrected
/// per-antenna sample buffers, FFT bin arrays, channel estimates,
/// prepared per-carrier detectors, flat stride-indexed LLR slabs and the
/// Viterbi decoder's trellis state. All of it is recycled from frame to
/// frame: once warmed, [`Receiver::receive_into`] allocates nothing.
///
/// Construction is cheap (empty vectors); buffers grow on first use.
pub struct RxWorkspace {
    detector: Option<PacketDetector>,
    /// CFO-corrected copies of the input views, extended lazily.
    bufs: Vec<Vec<Complex64>>,
    /// Samples copied in and coarse-corrected so far.
    corrected_len: usize,
    coarse_corr: f64,
    /// Raw accumulated coarse phase at `corrected_len` — chunk boundary
    /// carry that keeps chunked correction bit-identical to one pass.
    coarse_carry: f64,
    fine_corr: f64,
    fine_carry: f64,
    /// Samples fine-corrected so far (fine correction starts at the LTF).
    fine_len: usize,
    timing: FineTimingScratch,
    legacy_est: Vec<ChannelEstimate>,
    bins: Vec<[Complex64; FFT_LEN]>,
    ltf_bins: Vec<[Complex64; FFT_LEN]>,
    chan: ChannelEstimate,
    chan_smooth: ChannelEstimate,
    prepared: Vec<Prepared>,
    interleavers: Vec<Interleaver>,
    obs: Vec<(i32, Complex64, Complex64)>,
    /// Stream-major per-symbol LLRs: `[s * n_cbpss + ci * n_bpsc + b]`.
    stream_llrs: Vec<f64>,
    deinterleaved: Vec<f64>,
    all_llrs: Vec<f64>,
    full_llrs: Vec<f64>,
    syms: Vec<Symbol>,
    hard_syms: Vec<Symbol>,
    hdr: Vec<u8>,
    viterbi: ViterbiDecoder,
    decoded: Vec<u8>,
    descramble_scratch: Vec<u8>,
}

impl RxWorkspace {
    /// Creates an empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        Self {
            detector: None,
            bufs: Vec::new(),
            corrected_len: 0,
            coarse_corr: 0.0,
            coarse_carry: 0.0,
            fine_corr: 0.0,
            fine_carry: 0.0,
            fine_len: 0,
            timing: FineTimingScratch::default(),
            legacy_est: Vec::new(),
            bins: Vec::new(),
            ltf_bins: Vec::new(),
            chan: ChannelEstimate::empty(1, 1),
            chan_smooth: ChannelEstimate::empty(1, 1),
            prepared: Vec::new(),
            interleavers: Vec::new(),
            obs: Vec::new(),
            stream_llrs: Vec::new(),
            deinterleaved: Vec::new(),
            all_llrs: Vec::new(),
            full_llrs: Vec::new(),
            syms: Vec::new(),
            hard_syms: Vec::new(),
            hdr: Vec::new(),
            viterbi: ViterbiDecoder::new(),
            decoded: Vec::new(),
            descramble_scratch: Vec::new(),
        }
    }

    /// Resets per-frame state, keeping all capacity.
    fn begin(&mut self, n_rx: usize) {
        if self.bufs.len() < n_rx {
            self.bufs.resize_with(n_rx, Vec::new);
        }
        for b in &mut self.bufs[..n_rx] {
            b.clear();
        }
        self.corrected_len = 0;
        self.coarse_corr = 0.0;
        self.coarse_carry = 0.0;
        self.fine_corr = 0.0;
        self.fine_carry = 0.0;
        self.fine_len = 0;
    }

    /// Copies input samples into the working buffers and coarse-corrects
    /// them, up to (at least) sample `n`. Already-corrected samples are
    /// never touched again, so repeated calls with growing `n` produce
    /// exactly the sample values a single whole-buffer pass would.
    fn ensure_coarse(&mut self, rx: &[&[Complex64]], n: usize) {
        let n = n.min(rx[0].len());
        if n <= self.corrected_len {
            return;
        }
        let lo = self.corrected_len;
        let mut carry = self.coarse_carry;
        for (b, a) in self.bufs.iter_mut().zip(rx) {
            b.extend_from_slice(&a[lo..n]);
            carry = apply_cfo_raw(&mut b[lo..n], self.coarse_corr, self.coarse_carry);
        }
        self.coarse_carry = carry;
        self.corrected_len = n;
    }

    /// Activates the fine CFO correction from sample `from` onward.
    ///
    /// The old implementation corrected the whole buffer from sample 0;
    /// samples before the LTF are never read again, so only the *phase
    /// accumulator* has to walk the prefix. The walk repeats the exact
    /// `phase += step` additions of the full pass — a closed-form
    /// `step * from` would differ in the last ulps and break bit-identity.
    fn start_fine(&mut self, corr: f64, from: usize) {
        self.fine_corr = corr;
        let step = 2.0 * std::f64::consts::PI * corr / 64.0;
        let mut carry = 0.0;
        for _ in 0..from {
            carry += step;
        }
        self.fine_carry = carry;
        self.fine_len = from;
    }

    /// Extends both corrections (coarse then fine, per sample in that
    /// order — matching the old two whole-buffer passes) up to sample `n`.
    fn ensure_fine(&mut self, rx: &[&[Complex64]], n: usize) {
        self.ensure_coarse(rx, n);
        let n = n.min(self.corrected_len);
        if n <= self.fine_len {
            return;
        }
        let lo = self.fine_len;
        let mut carry = self.fine_carry;
        for b in &mut self.bufs[..rx.len()] {
            carry = apply_cfo_raw(&mut b[lo..n], self.fine_corr, self.fine_carry);
        }
        self.fine_carry = carry;
        self.fine_len = n;
    }
}

impl Default for RxWorkspace {
    fn default() -> Self {
        Self::new()
    }
}

thread_local! {
    static WORKSPACE: RefCell<RxWorkspace> = RefCell::new(RxWorkspace::new());
}

/// Runs `f` with this thread's shared receive workspace — the backing
/// store for the owned-buffer convenience APIs ([`Receiver::receive`],
/// [`Receiver::scan`], …), mirroring the FEC crate's thread-local decoder.
pub fn with_workspace<R>(f: impl FnOnce(&mut RxWorkspace) -> R) -> R {
    WORKSPACE.with(|w| f(&mut w.borrow_mut()))
}

/// Antennas beyond which the view helpers fall back to a heap-allocated
/// slice-of-slices (the stack array covers every realistic MIMO order).
const MAX_STACK_RX: usize = 8;

/// Calls `f` with per-antenna sub-views `[lo..hi)`, building the
/// slice-of-slices on the stack for realistic antenna counts.
fn with_views<T: AsRef<[Complex64]>, R>(
    ants: &[T],
    lo: usize,
    hi: usize,
    f: impl FnOnce(&[&[Complex64]]) -> R,
) -> R {
    if ants.len() <= MAX_STACK_RX {
        let mut store: [&[Complex64]; MAX_STACK_RX] = [&[]; MAX_STACK_RX];
        for (w, a) in store.iter_mut().zip(ants) {
            *w = &a.as_ref()[lo..hi];
        }
        f(&store[..ants.len()])
    } else {
        let v: Vec<&[Complex64]> = ants.iter().map(|a| &a.as_ref()[lo..hi]).collect();
        f(&v)
    }
}

/// Calls `f` with full-length per-antenna views (lengths may differ; the
/// receiver validates them itself).
fn with_full_views<T: AsRef<[Complex64]>, R>(
    ants: &[T],
    f: impl FnOnce(&[&[Complex64]]) -> R,
) -> R {
    if ants.len() <= MAX_STACK_RX {
        let mut store: [&[Complex64]; MAX_STACK_RX] = [&[]; MAX_STACK_RX];
        for (w, a) in store.iter_mut().zip(ants) {
            *w = a.as_ref();
        }
        f(&store[..ants.len()])
    } else {
        let v: Vec<&[Complex64]> = ants.iter().map(|a| a.as_ref()).collect();
        f(&v)
    }
}

/// The receiver. Reusable across frames.
#[derive(Clone, Debug)]
pub struct Receiver {
    cfg: RxConfig,
    ofdm: Ofdm,
}

impl Receiver {
    /// Creates a receiver.
    pub fn new(cfg: RxConfig) -> Self {
        Self {
            cfg,
            ofdm: Ofdm::new(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &RxConfig {
        &self.cfg
    }

    /// Scans a long multi-frame capture, decoding every frame it finds.
    ///
    /// Returns `(offset, frame)` pairs where `offset` is the start of the
    /// slice in which the frame was decoded (its `timing`/`frame_end`
    /// fields are relative to that offset). Decode failures after a
    /// detection advance the scan by a fixed stride so one broken frame
    /// cannot stall the stream; the scan ends at the first stretch with no
    /// detectable packet.
    pub fn receive_all(&self, rx: &[Vec<Complex64>]) -> Vec<(usize, RxFrame)> {
        self.scan(rx).0
    }

    /// [`Self::receive_all`] plus per-capture robustness statistics.
    ///
    /// Hardening over a naive scan loop, all reachable under injected
    /// faults:
    ///
    /// * per-antenna buffers of *unequal* length are scanned up to the
    ///   shortest (a desynchronized or partially-truncated capture must
    ///   degrade, not index out of bounds);
    /// * each `receive` call sees a window of at most [`MAX_FRAME_SPAN`]
    ///   samples, so the work a corrupt HT-SIG can trigger is bounded by
    ///   the longest legal frame, not the capture length — and the window
    ///   is a *view*, so sliding it copies nothing;
    /// * after `SyncLost` / a failed header the scan skips ahead and
    ///   re-scans instead of aborting the capture, and a persistent
    ///   [`RxError::AntennaMismatch`] (a config error, not a channel
    ///   condition) stops the scan instead of looping on it.
    pub fn scan(&self, rx: &[Vec<Complex64>]) -> (Vec<(usize, RxFrame)>, ScanStats) {
        self.scan_profiled(rx, &mut RxCaptureProfile::default())
    }

    /// [`Self::scan`] over borrowed per-antenna views.
    pub fn scan_views(&self, rx: &[&[Complex64]]) -> (Vec<(usize, RxFrame)>, ScanStats) {
        self.scan_views_profiled(rx, &mut RxCaptureProfile::default())
    }

    /// [`Self::scan`] that additionally records telemetry into `cap`:
    /// aggregated per-stage timing spans, plus one `(offset, error)` event
    /// per failed decode attempt (scan order, offsets absolute in the
    /// capture) — the raw material for attributing every lost frame to a
    /// named pipeline stage.
    pub fn scan_profiled(
        &self,
        rx: &[Vec<Complex64>],
        cap: &mut RxCaptureProfile,
    ) -> (Vec<(usize, RxFrame)>, ScanStats) {
        with_full_views(rx, |views| self.scan_views_profiled(views, cap))
    }

    /// [`Self::scan_profiled`] over borrowed per-antenna views, using the
    /// thread-local workspace.
    pub fn scan_views_profiled(
        &self,
        rx: &[&[Complex64]],
        cap: &mut RxCaptureProfile,
    ) -> (Vec<(usize, RxFrame)>, ScanStats) {
        with_workspace(|ws| self.scan_with(rx, ws, cap))
    }

    fn scan_with(
        &self,
        rx: &[&[Complex64]],
        ws: &mut RxWorkspace,
        cap: &mut RxCaptureProfile,
    ) -> (Vec<(usize, RxFrame)>, ScanStats) {
        const ERROR_STRIDE: usize = 400;
        let len = rx.iter().map(|a| a.len()).min().unwrap_or(0);
        let mut out = Vec::new();
        let mut stats = ScanStats::default();
        let mut frame = RxFrame::default();
        let mut offset = 0usize;
        while offset + 640 < len {
            let hi = (offset + MAX_FRAME_SPAN).min(len);
            let res = with_views(rx, offset, hi, |window| {
                self.receive_profiled_into(window, ws, &mut cap.stages, &mut frame)
            });
            match res {
                Ok(()) => {
                    let end = frame.frame_end;
                    out.push((offset, std::mem::take(&mut frame)));
                    offset += end.max(ERROR_STRIDE);
                }
                Err(RxError::NoPacket) => {
                    if hi == len {
                        break;
                    }
                    // Nothing in this window, but the capture continues:
                    // slide forward, overlapping by one detection span so a
                    // frame straddling the boundary is still found.
                    offset = hi - 640;
                }
                Err(e @ RxError::AntennaMismatch { .. }) => {
                    cap.events.push((offset, e));
                    break;
                }
                Err(e) => {
                    stats.rescans += 1;
                    match e {
                        RxError::LSig(_) | RxError::HtSig(_) | RxError::TooManyStreams { .. } => {
                            stats.header_errors += 1
                        }
                        RxError::Fec => stats.fec_errors += 1,
                        _ => stats.sync_errors += 1,
                    }
                    cap.events.push((offset, e));
                    offset += ERROR_STRIDE;
                }
            }
        }
        stats.frames = out.len();
        (out, stats)
    }

    /// Attempts to detect and decode one frame from per-antenna buffers.
    pub fn receive(&self, rx: &[Vec<Complex64>]) -> Result<RxFrame, RxError> {
        with_full_views(rx, |views| self.receive_views(views))
    }

    /// [`Self::receive`] over borrowed per-antenna views, using the
    /// thread-local workspace.
    pub fn receive_views(&self, rx: &[&[Complex64]]) -> Result<RxFrame, RxError> {
        self.receive_profiled_views(rx, &mut StageProfile::default())
    }

    /// The allocation-free receive path: decodes one frame from borrowed
    /// views into a caller-owned workspace and frame. With both warmed
    /// (one prior call of the same shape), this performs no heap
    /// allocation. On `Err` the frame's contents are unspecified.
    pub fn receive_into(
        &self,
        rx: &[&[Complex64]],
        ws: &mut RxWorkspace,
        frame: &mut RxFrame,
    ) -> Result<(), RxError> {
        self.receive_profiled_into(rx, ws, &mut StageProfile::default(), frame)
    }

    /// [`Self::receive`] with per-stage timing spans recorded into
    /// `profile`. On failure the partial span of the stage that errored is
    /// attributed via [`RxStage::of_error`], so a profiled capture's time
    /// is fully accounted whether frames decode or not. The stage *call*
    /// counts are a pure function of the input; only the nanosecond spans
    /// are wall-clock (and stripped from deterministic renderings).
    pub fn receive_profiled(
        &self,
        rx: &[Vec<Complex64>],
        profile: &mut StageProfile,
    ) -> Result<RxFrame, RxError> {
        with_full_views(rx, |views| self.receive_profiled_views(views, profile))
    }

    /// [`Self::receive_profiled`] over borrowed per-antenna views.
    pub fn receive_profiled_views(
        &self,
        rx: &[&[Complex64]],
        profile: &mut StageProfile,
    ) -> Result<RxFrame, RxError> {
        with_workspace(|ws| {
            let mut frame = RxFrame::default();
            self.receive_profiled_into(rx, ws, profile, &mut frame)?;
            Ok(frame)
        })
    }

    /// [`Self::receive_into`] with per-stage telemetry — the primitive
    /// every other receive/scan entry point funnels through.
    pub fn receive_profiled_into(
        &self,
        rx: &[&[Complex64]],
        ws: &mut RxWorkspace,
        profile: &mut StageProfile,
        frame: &mut RxFrame,
    ) -> Result<(), RxError> {
        let mut clock = StageClock::start();
        let res = self.receive_inner(rx, ws, profile, &mut clock, frame);
        if let Err(e) = &res {
            clock.lap(profile, RxStage::of_error(e));
        }
        res
    }

    fn receive_inner(
        &self,
        rx: &[&[Complex64]],
        ws: &mut RxWorkspace,
        profile: &mut StageProfile,
        clock: &mut StageClock,
        frame: &mut RxFrame,
    ) -> Result<(), RxError> {
        let n_rx = self.cfg.n_rx;
        if rx.len() != n_rx {
            return Err(RxError::AntennaMismatch {
                expected: n_rx,
                got: rx.len(),
            });
        }
        let len = rx[0].len();
        if rx.iter().any(|a| a.len() != len) {
            return Err(RxError::AntennaMismatch {
                expected: n_rx,
                got: rx.len(),
            });
        }

        // --- 1. Packet detection + coarse CFO ---
        if ws.detector.as_ref().is_none_or(|d| d.n_antennas() != n_rx) {
            ws.detector = Some(PacketDetector::new(n_rx, DetectorConfig::default()));
        }
        let detector = ws.detector.as_mut().expect("detector just ensured");
        detector.reset();
        let det = detector.detect(rx).ok_or(RxError::NoPacket)?;
        clock.lap(profile, RxStage::Detect);

        // --- 2. Coarse CFO correction (lazily chunked from here on) ---
        ws.begin(n_rx);
        ws.coarse_corr = -det.coarse_cfo;
        let mut total_cfo = det.coarse_cfo;

        // --- 3. Fine timing: locate the first L-LTF body ---
        // Detection confirms ~(warmup + min_run) samples into the STF; the
        // LTF body then starts ≈ 160 + 32 − that far ahead.
        let cfg_det = DetectorConfig::default();
        let approx_stf_start = det
            .confirmed_at
            .saturating_sub(cfg_det.lag + cfg_det.window + cfg_det.min_run - 1);
        let ltf_guess = approx_stf_start + 160 + 32;
        let ltf_start = if self.cfg.fine_timing {
            let win_lo = ltf_guess.saturating_sub(40);
            // The window must contain BOTH 64-sample LTF repetitions past
            // the last candidate offset, or the two-peak pairing inside
            // fine_timing cannot score the true position.
            let win_hi = (ltf_guess + 40 + 128 + 64).min(len);
            if win_hi <= win_lo + 64 {
                return Err(RxError::SyncLost);
            }
            ws.ensure_coarse(rx, win_hi);
            let RxWorkspace { bufs, timing, .. } = &mut *ws;
            let ft = with_views(&bufs[..n_rx], win_lo, win_hi, |w| {
                fine_timing_with(w, timing)
            })
            .ok_or(RxError::SyncLost)?;
            win_lo + ft.ltf_start
        } else {
            // Fallback refinement: the paper's MIMO-extended Van de Beek.
            // Every field from the L-SIG onward is a CP-80 OFDM symbol, so
            // run the joint CP metric over a post-L-LTF window (which
            // starts on a symbol boundary if the guess is right) and fold
            // the strongest boundary's mod-80 residue back into the guess.
            let win_lo = (ltf_guess + 128).min(len);
            let win_hi = (win_lo + 480).min(len);
            if win_hi >= win_lo + 160 {
                ws.ensure_coarse(rx, win_hi);
                let vdb = VanDeBeek::new(64, 16, self.cfg.vdb_snr_db);
                match with_views(&ws.bufs[..n_rx], win_lo, win_hi, |w| vdb.estimate(w)) {
                    Some(est) => {
                        // Signed residue in (−40, 40]: how far the detected
                        // boundary sits from the guessed symbol grid.
                        let r = (est.timing % 80) as isize;
                        let delta = if r > 40 { r - 80 } else { r };
                        (ltf_guess as isize + delta).max(0) as usize
                    }
                    None => ltf_guess,
                }
            } else {
                ltf_guess
            }
        };
        // Back the FFT window into the cyclic prefix: every downstream
        // window shifts identically, so the channel estimate absorbs the
        // resulting phase ramp, while the window tail stays clear of the
        // symbol transition.
        let ltf_start = ltf_start.saturating_sub(self.cfg.timing_backoff);
        if ltf_start + 128 > len {
            return Err(RxError::BufferTooShort);
        }

        // --- 4. Fine CFO from the LTF repetitions ---
        ws.ensure_coarse(rx, ltf_start + 128);
        let mut gamma = Complex64::ZERO;
        for b in &ws.bufs[..n_rx] {
            let b1 = &b[ltf_start..ltf_start + 64];
            let b2 = &b[ltf_start + 64..ltf_start + 128];
            gamma += mimonet_dsp::complex::dot_conj(b1, b2);
        }
        let fine_cfo = -gamma.arg() / (2.0 * std::f64::consts::PI);
        total_cfo += fine_cfo;
        ws.start_fine(-fine_cfo, ltf_start);
        ws.ensure_fine(rx, ltf_start + 128);
        clock.lap(profile, RxStage::Sync);

        // --- 5. SNR and noise variance from the corrected LTFs ---
        let scale52 = Ofdm::unit_power_scale(52);
        let scale56 = Ofdm::unit_power_scale(56);
        let mut snr_acc = 0.0;
        let mut noise_bin_var = 0.0;
        if ws.legacy_est.len() < n_rx {
            ws.legacy_est
                .resize_with(n_rx, || ChannelEstimate::empty(1, 1));
        }
        {
            let RxWorkspace {
                bufs, legacy_est, ..
            } = &mut *ws;
            for (b, est) in bufs[..n_rx].iter().zip(&mut legacy_est[..n_rx]) {
                let b1 = &b[ltf_start..ltf_start + 64];
                let b2 = &b[ltf_start + 64..ltf_start + 128];
                snr_acc += snr_from_ltf_repetitions(b1, b2).unwrap_or(0.0);
                let f1 = self.ofdm.demodulate_window(b1, scale52);
                let f2 = self.ofdm.demodulate_window(b2, scale52);
                // Frequency-domain noise variance over occupied carriers:
                // E|F1-F2|^2 / 2 per repetition pair.
                let mut acc = 0.0;
                let mut n = 0.0;
                for k in -26..=26i32 {
                    if k == 0 {
                        continue;
                    }
                    let bin = carrier_to_bin(k);
                    acc += f1[bin].dist_sqr(f2[bin]);
                    n += 1.0;
                }
                noise_bin_var += acc / n / 2.0;
                estimate_siso_lltf_into(&f1, &f2, est);
            }
        }
        let snr_db = lin_to_db(snr_acc / n_rx as f64);
        // Per-antenna bin noise at LTF scaling; data symbols use the
        // 56-carrier scale, which raises the per-bin variance by 56/52.
        let noise_var_sig = (noise_bin_var / n_rx as f64).max(1e-12);
        let noise_var_data = noise_var_sig * 56.0 / 52.0;
        clock.lap(profile, RxStage::SnrEst);

        // --- 6. L-SIG and HT-SIG ---
        let lsig_start = ltf_start + 128;
        if lsig_start + 3 * 80 > len {
            return Err(RxError::BufferTooShort);
        }
        ws.ensure_fine(rx, lsig_start + 3 * 80);
        let mut lsig_bits = [0u8; 48];
        self.decode_legacy_symbol_into(ws, n_rx, lsig_start, 0, false, &mut lsig_bits)?;
        {
            let RxWorkspace {
                syms, hdr, viterbi, ..
            } = &mut *ws;
            syms.clear();
            syms.extend(lsig_bits.iter().map(|&b| Symbol::Bit(b)));
            viterbi
                .decode_hard_into(syms, hdr)
                .map_err(|_| RxError::SyncLost)?;
            hdr.extend_from_slice(&[0; 6]);
            let _lsig = LSig::decode(hdr).map_err(RxError::LSig)?;
        }

        let mut ht1 = [0u8; 48];
        let mut ht2 = [0u8; 48];
        self.decode_legacy_symbol_into(ws, n_rx, lsig_start + 80, 1, true, &mut ht1)?;
        self.decode_legacy_symbol_into(ws, n_rx, lsig_start + 160, 2, true, &mut ht2)?;
        let htsig = {
            let RxWorkspace {
                syms, hdr, viterbi, ..
            } = &mut *ws;
            syms.clear();
            syms.extend(ht1.iter().chain(ht2.iter()).map(|&b| Symbol::Bit(b)));
            viterbi
                .decode_hard_into(syms, hdr)
                .map_err(|_| RxError::SyncLost)?;
            hdr.extend_from_slice(&[0; 6]);
            HtSig::decode(hdr).map_err(RxError::HtSig)?
        };
        // Do NOT trust the decode-time validation here: these bits came off
        // the air, and a corrupt-but-CRC-colliding HT-SIG reaching an
        // `expect` would let attacker-controlled input panic the receiver.
        let mcs =
            Mcs::from_index(htsig.mcs).map_err(|_| RxError::HtSig(SigError::BadMcs(htsig.mcs)))?;
        let n_ss = mcs.n_streams;
        if n_ss > n_rx {
            return Err(RxError::TooManyStreams {
                streams: n_ss,
                antennas: n_rx,
            });
        }
        clock.lap(profile, RxStage::Header);

        // --- 7. HT-LTF channel estimation ---
        let n_ltf = num_htltf(n_ss);
        let htltf_start = lsig_start + 240 + 80; // skip HT-STF
        if htltf_start + n_ltf * 80 > len {
            return Err(RxError::BufferTooShort);
        }
        ws.ensure_fine(rx, htltf_start + n_ltf * 80);
        {
            let RxWorkspace {
                bufs,
                ltf_bins,
                chan,
                ..
            } = &mut *ws;
            ltf_bins.clear();
            for i in 0..n_ltf {
                let base = htltf_start + i * 80;
                for b in &bufs[..n_rx] {
                    ltf_bins.push(self.ofdm.demodulate(&b[base..base + 80], scale56));
                }
            }
            estimate_mimo_htltf_into(ltf_bins, n_rx, n_ss, chan);
        }
        let smoothed = self.cfg.smoothing > 0 && htsig.smoothing;
        if smoothed {
            let RxWorkspace {
                chan, chan_smooth, ..
            } = &mut *ws;
            smooth_frequency_into(chan, self.cfg.smoothing, chan_smooth);
        }
        clock.lap(profile, RxStage::ChanEst);

        // --- 8/9. Data symbols ---
        let n_sym = mcs.num_symbols(htsig.length as usize * 8);
        let data_start = htltf_start + n_ltf * 80;
        if data_start + n_sym * 80 > len {
            return Err(RxError::BufferTooShort);
        }
        ws.ensure_fine(rx, data_start + n_sym * 80);

        let data_carriers = Layout::Ht.data_carriers();
        let n_cbpss = mcs.n_cbpss();
        let n_bpsc = mcs.n_bpsc();
        let RxWorkspace {
            bufs,
            chan,
            chan_smooth,
            prepared,
            interleavers,
            bins,
            obs,
            stream_llrs,
            deinterleaved,
            all_llrs,
            full_llrs,
            viterbi,
            hard_syms,
            decoded,
            descramble_scratch,
            ..
        } = &mut *ws;
        let chan: &ChannelEstimate = if smoothed { chan_smooth } else { chan };
        let bufs = &bufs[..n_rx];

        interleavers.clear();
        interleavers.extend((0..n_ss).map(|s| Interleaver::ht(n_cbpss, n_bpsc, s, n_ss)));
        // The channel is block-fading: hoist the per-carrier detector
        // preparation (matrix inversions, ML hypothesis predictions) out
        // of the per-symbol loop.
        prepared.clear();
        for &k in data_carriers {
            let h = chan.at(k).ok_or(RxError::Detector)?;
            prepared.push(
                prepare_detector(self.cfg.detector, h, noise_var_data, mcs.modulation)
                    .map_err(|_| RxError::Detector)?,
            );
        }
        let mut tracker = PhaseTracker::new(0.5);
        let mut evm = EvmSnrEstimator::new();
        all_llrs.clear();
        all_llrs.reserve(n_sym * mcs.n_cbps());
        stream_llrs.clear();
        stream_llrs.resize(n_ss * n_cbpss, 0.0);
        deinterleaved.clear();
        deinterleaved.resize(n_ss * n_cbpss, 0.0);

        for sym in 0..n_sym {
            let base = data_start + sym * 80;
            bins.clear();
            for b in bufs {
                bins.push(self.ofdm.demodulate(&b[base..base + 80], scale56));
            }

            // Pilot tracking: shared phase across antennas.
            if self.cfg.pilot_tracking {
                obs.clear();
                for (i, &k) in PILOT_CARRIERS.iter().enumerate() {
                    if let Some(h) = chan.at(k) {
                        for r in 0..n_rx {
                            let mut expected = Complex64::ZERO;
                            for s in 0..n_ss {
                                let p = ht_pilots(s, n_ss, sym, DATA_POLARITY_OFFSET)[i];
                                expected += h[(r, s)] * p;
                            }
                            obs.push((k, expected, bins[r][carrier_to_bin(k)]));
                        }
                    }
                }
                if let Some(est) = tracker.update(obs) {
                    for b in bins.iter_mut() {
                        for k in -28..=28i32 {
                            if k == 0 {
                                continue;
                            }
                            let bin = carrier_to_bin(k);
                            b[bin] *= est.correction(k);
                        }
                    }
                }
            }

            // Detect every data carrier with the prepared per-carrier
            // state, writing LLRs straight into the stream-major slab.
            for (ci, (det, &k)) in prepared.iter().zip(data_carriers).enumerate() {
                let mut y = [Complex64::ZERO; CMat::MAX_DIM];
                for (slot, b) in y.iter_mut().zip(bins.iter()) {
                    *slot = b[carrier_to_bin(k)];
                }
                let mut sym_tmp = [Complex64::ZERO; CMat::MAX_DIM];
                let mut llr_tmp = [0.0f64; CMat::MAX_DIM * 6];
                det.apply_into(
                    &y[..n_rx],
                    &mut sym_tmp[..n_ss],
                    &mut llr_tmp[..n_ss * n_bpsc],
                );
                for s in 0..n_ss {
                    let dst = s * n_cbpss + ci * n_bpsc;
                    stream_llrs[dst..dst + n_bpsc]
                        .copy_from_slice(&llr_tmp[s * n_bpsc..(s + 1) * n_bpsc]);
                    evm.push_decided(sym_tmp[s], mcs.modulation);
                }
            }

            // Per-stream deinterleave, then merge via the stream deparser.
            for (s, il) in interleavers.iter().enumerate() {
                il.deinterleave_soft_into(
                    &stream_llrs[s * n_cbpss..(s + 1) * n_cbpss],
                    &mut deinterleaved[s * n_cbpss..(s + 1) * n_cbpss],
                );
            }
            deparse_streams_soft_flat(deinterleaved, n_ss, n_bpsc, all_llrs);
        }
        clock.lap(profile, RxStage::Equalize);

        // --- 10. FEC decode + descramble ---
        let mother_len = 2 * n_sym * mcs.n_dbps();
        depuncture_soft_into(all_llrs, mcs.code_rate, mother_len, full_llrs);
        if self.cfg.soft_decoding {
            viterbi
                .decode_soft_unterminated_into(full_llrs, decoded)
                .map_err(|_| RxError::Fec)?;
        } else {
            hard_syms.clear();
            hard_syms.extend(full_llrs.iter().map(|&l| {
                if l == 0.0 {
                    Symbol::Erased
                } else {
                    Symbol::Bit(if l > 0.0 { 0 } else { 1 })
                }
            }));
            viterbi
                .decode_hard_unterminated_into(hard_syms, decoded)
                .map_err(|_| RxError::Fec)?;
        }
        if !descramble_data_bits_into(
            decoded,
            htsig.length as usize,
            descramble_scratch,
            &mut frame.psdu,
        ) {
            return Err(RxError::Fec);
        }
        clock.lap(profile, RxStage::Fec);

        frame.mcs = htsig.mcs;
        frame.snr_db = snr_db;
        frame.cfo = total_cfo;
        frame.timing = ltf_start;
        frame.evm_snr_db = evm.snr_db();
        frame.frame_end = data_start + n_sym * 80;
        frame.coded_hard.clear();
        frame
            .coded_hard
            .extend(all_llrs.iter().map(|&l| if l > 0.0 { 0 } else { 1 }));
        Ok(())
    }

    /// Demodulates and MRC-equalizes one legacy symbol, writing the 48
    /// deinterleaved coded bits into `out`.
    fn decode_legacy_symbol_into(
        &self,
        ws: &mut RxWorkspace,
        n_rx: usize,
        start: usize,
        sym_index: usize,
        quadrature: bool,
        out: &mut [u8; 48],
    ) -> Result<(), RxError> {
        let scale52 = Ofdm::unit_power_scale(52);
        let RxWorkspace {
            bufs,
            bins,
            legacy_est,
            ..
        } = &mut *ws;
        bins.clear();
        for b in &bufs[..n_rx] {
            bins.push(self.ofdm.demodulate(&b[start..start + 80], scale52));
        }
        let legacy_est = &legacy_est[..n_rx];

        // Common phase correction from the four legacy pilots (MRC over
        // antennas).
        let pil = legacy_pilots(sym_index, 0);
        let mut phase_acc = Complex64::ZERO;
        for (i, &k) in PILOT_CARRIERS.iter().enumerate() {
            for (r, est) in legacy_est.iter().enumerate() {
                if let Some(h) = est.at(k) {
                    let expected = h[(0, 0)] * pil[i];
                    phase_acc += bins[r][carrier_to_bin(k)] * expected.conj();
                }
            }
        }
        let derot = if phase_acc.abs() > 1e-12 {
            Complex64::cis(-phase_acc.arg())
        } else {
            Complex64::ONE
        };

        let rot = if quadrature {
            // Undo the QBPSK 90° rotation.
            Complex64::new(0.0, -1.0)
        } else {
            Complex64::ONE
        };
        let mut hard = [0u8; 48];
        for (slot, &k) in hard.iter_mut().zip(Layout::Legacy.data_carriers()) {
            let bin = carrier_to_bin(k);
            let mut num = Complex64::ZERO;
            let mut den = 0.0;
            for (r, est) in legacy_est.iter().enumerate() {
                if let Some(h) = est.at(k) {
                    let hv = h[(0, 0)];
                    num += bins[r][bin] * hv.conj();
                    den += hv.norm_sqr();
                }
            }
            if den <= 1e-15 {
                return Err(RxError::SyncLost);
            }
            let eq = num.scale(1.0 / den) * derot * rot;
            *slot = if eq.re > 0.0 { 1 } else { 0 };
        }
        Interleaver::legacy(48, 1).deinterleave_into(&hard, out);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TxConfig;
    use crate::tx::Transmitter;
    use mimonet_channel::{ChannelConfig, ChannelSim};

    fn run_link(
        mcs: u8,
        psdu: &[u8],
        chan: ChannelConfig,
        seed: u64,
        rx_cfg: RxConfig,
    ) -> Result<RxFrame, RxError> {
        let tx = Transmitter::new(TxConfig::new(mcs).unwrap());
        let mut streams = tx.transmit(psdu).unwrap();
        // Lead-in/out silence so detection and channel tails have room.
        for s in &mut streams {
            let mut padded = vec![Complex64::ZERO; 120];
            padded.extend_from_slice(s);
            padded.extend(vec![Complex64::ZERO; 80]);
            *s = padded;
        }
        let mut sim = ChannelSim::new(chan, seed);
        let (rx, _) = sim.apply(&streams);
        Receiver::new(rx_cfg).receive(&rx)
    }

    #[test]
    fn siso_clean_channel_roundtrip() {
        let psdu: Vec<u8> = (0..200u8).collect();
        let frame = run_link(
            0,
            &psdu,
            ChannelConfig::awgn(1, 1, 35.0),
            1,
            RxConfig::new(1),
        )
        .expect("decode");
        assert_eq!(frame.psdu, psdu);
        assert_eq!(frame.mcs, 0);
        assert!((frame.snr_db - 35.0).abs() < 3.0, "snr {}", frame.snr_db);
    }

    #[test]
    fn mimo_clean_channel_roundtrip() {
        let psdu: Vec<u8> = (0..255u8).collect();
        for mcs in [8u8, 9, 11] {
            let frame = run_link(
                mcs,
                &psdu,
                ChannelConfig::awgn(2, 2, 35.0),
                2,
                RxConfig::new(2),
            )
            .unwrap_or_else(|e| panic!("MCS{mcs}: {e}"));
            assert_eq!(frame.psdu, psdu, "MCS{mcs}");
            assert_eq!(frame.mcs, mcs);
        }
    }

    #[test]
    fn survives_cfo_and_timing_offset() {
        let psdu: Vec<u8> = (0..100u8).collect();
        let mut chan = ChannelConfig::awgn(2, 2, 30.0);
        chan.cfo_norm = 0.35;
        chan.timing_offset = 33.0;
        let frame = run_link(9, &psdu, chan, 3, RxConfig::new(2)).expect("decode");
        assert_eq!(frame.psdu, psdu);
        assert!((frame.cfo - 0.35).abs() < 0.02, "cfo {}", frame.cfo);
    }

    #[test]
    fn no_packet_in_noise() {
        let rx = Receiver::new(RxConfig::new(1));
        let mut sim = ChannelSim::new(ChannelConfig::awgn(1, 1, 0.0), 4);
        let silence = vec![vec![Complex64::ZERO; 4000]];
        let (noisy, _) = sim.apply(&silence);
        assert!(matches!(rx.receive(&noisy), Err(RxError::NoPacket)));
    }

    #[test]
    fn antenna_mismatch_detected() {
        let rx = Receiver::new(RxConfig::new(2));
        let buf = vec![vec![Complex64::ZERO; 100]];
        assert!(matches!(
            rx.receive(&buf),
            Err(RxError::AntennaMismatch { .. })
        ));
    }

    #[test]
    fn truncated_frame_reports_short_buffer() {
        let tx = Transmitter::new(TxConfig::new(0).unwrap());
        let psdu = vec![0x42u8; 500];
        let mut s = vec![Complex64::ZERO; 100];
        s.extend(tx.transmit(&psdu).unwrap().remove(0));
        s.truncate(s.len() - 600); // cut into the data symbols
        let rx = Receiver::new(RxConfig::new(1));
        assert!(matches!(rx.receive(&[s]), Err(RxError::BufferTooShort)));
    }

    #[test]
    fn hard_decoding_also_works() {
        let psdu: Vec<u8> = (0..150u8).collect();
        let mut cfg = RxConfig::new(2);
        cfg.soft_decoding = false;
        let frame = run_link(10, &psdu, ChannelConfig::awgn(2, 2, 35.0), 5, cfg).expect("decode");
        assert_eq!(frame.psdu, psdu);
    }

    #[test]
    fn two_stream_frame_needs_two_antennas() {
        // A 2-stream frame received by a 1-antenna receiver must be
        // rejected at HT-SIG (TooManyStreams), not crash the detector.
        let tx = Transmitter::new(TxConfig::new(9).unwrap());
        let streams = tx.transmit(&[7u8; 40]).unwrap();
        // Single-antenna capture: sum of both TX antennas (what one
        // physical antenna would see on an identity-ish channel).
        let mut capture = vec![Complex64::ZERO; 120];
        capture.extend(streams[0].iter().zip(&streams[1]).map(|(&a, &b)| a + b));
        capture.extend(vec![Complex64::ZERO; 80]);
        let rx = Receiver::new(RxConfig::new(1));
        match rx.receive(&[capture]) {
            Err(RxError::TooManyStreams {
                streams: 2,
                antennas: 1,
            }) => {}
            // The summed legacy preamble can also corrupt HT-SIG itself.
            Err(RxError::HtSig(_)) | Err(RxError::SyncLost) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn receive_all_finds_back_to_back_frames() {
        let tx = Transmitter::new(TxConfig::new(9).unwrap());
        let rx = Receiver::new(RxConfig::new(2));
        let psdus: Vec<Vec<u8>> = (0..3u8).map(|k| vec![k; 60 + 10 * k as usize]).collect();
        // Concatenate three frames with inter-frame gaps into one capture.
        let mut capture: Vec<Vec<Complex64>> = vec![vec![Complex64::ZERO; 150]; 2];
        for psdu in &psdus {
            let streams = tx.transmit(psdu).unwrap();
            for (c, s) in capture.iter_mut().zip(&streams) {
                c.extend_from_slice(s);
                c.extend(vec![Complex64::ZERO; 200]);
            }
        }
        let mut sim = ChannelSim::new(ChannelConfig::awgn(2, 2, 30.0), 9);
        let (noisy, _) = sim.apply(&capture);
        let frames = rx.receive_all(&noisy);
        assert_eq!(frames.len(), 3, "found {} frames", frames.len());
        for ((off, frame), want) in frames.iter().zip(&psdus) {
            assert_eq!(&frame.psdu, want, "frame at offset {off}");
        }
        // Offsets are strictly increasing.
        assert!(frames.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn receive_all_empty_capture() {
        let rx = Receiver::new(RxConfig::new(1));
        assert!(rx.receive_all(&[vec![Complex64::ZERO; 5000]]).is_empty());
        assert!(rx.receive_all(&[vec![]]).is_empty());
    }

    #[test]
    fn coded_hard_matches_tx_reference_on_clean_channel() {
        let tx = Transmitter::new(TxConfig::new(8).unwrap());
        let psdu: Vec<u8> = (0..64u8).collect();
        let reference = tx.coded_bits(&psdu);
        let frame = run_link(
            8,
            &psdu,
            ChannelConfig::awgn(2, 2, 40.0),
            6,
            RxConfig::new(2),
        )
        .expect("decode");
        assert_eq!(frame.coded_hard.len(), reference.len());
        let errs = frame
            .coded_hard
            .iter()
            .zip(&reference)
            .filter(|(a, b)| a != b)
            .count();
        assert_eq!(errs, 0, "clean channel must have zero pre-FEC errors");
    }

    #[test]
    fn receive_into_reuses_frame_and_workspace() {
        // Two different frames through the same workspace + RxFrame must
        // decode as if each had a fresh receiver (no state bleed).
        let tx = Transmitter::new(TxConfig::new(9).unwrap());
        let rx = Receiver::new(RxConfig::new(2));
        let mut ws = RxWorkspace::new();
        let mut frame = RxFrame::default();
        for (seed, len) in [(11u64, 120usize), (12, 40)] {
            let psdu: Vec<u8> = (0..len as u8).collect();
            let mut streams = tx.transmit(&psdu).unwrap();
            for s in &mut streams {
                let mut padded = vec![Complex64::ZERO; 120];
                padded.extend_from_slice(s);
                padded.extend(vec![Complex64::ZERO; 80]);
                *s = padded;
            }
            let mut sim = ChannelSim::new(ChannelConfig::awgn(2, 2, 32.0), seed);
            let (noisy, _) = sim.apply(&streams);
            let views: Vec<&[Complex64]> = noisy.iter().map(|a| a.as_slice()).collect();
            rx.receive_into(&views, &mut ws, &mut frame)
                .expect("decode");
            assert_eq!(frame.psdu, psdu, "seed {seed}");
        }
    }
}
