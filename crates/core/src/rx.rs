//! The MIMO-OFDM receiver state machine.
//!
//! Processing order (the practical pipeline the paper describes):
//!
//! 1. **Packet detection** — STF plateau across antennas, coarse CFO.
//! 2. **Coarse CFO correction** over the whole buffer.
//! 3. **Fine timing** — L-LTF cross-correlation (or detection geometry
//!    when disabled, the A2 ablation).
//! 4. **Fine CFO** from the two L-LTF repetitions, corrected.
//! 5. **SNR / noise-variance estimation** from the LTF repetitions.
//! 6. **L-SIG**, then **HT-SIG** decode (legacy channel estimate + MRC).
//! 7. **HT-LTF MIMO channel estimation** (P-matrix despreading).
//! 8. Per data symbol: FFT, **pilot phase tracking**, **ZF/MMSE/ML
//!    detection**, per-stream deinterleave, stream deparse.
//! 9. Depuncture → Viterbi (soft or hard) → descramble → PSDU.

use crate::config::RxConfig;
use crate::telemetry::{RxCaptureProfile, RxStage, StageClock, StageProfile};
use crate::tx::{deparse_streams_soft, DATA_POLARITY_OFFSET};
use mimonet_detect::chanest::ChannelEstimate;
use mimonet_detect::snr::snr_from_ltf_repetitions;
use mimonet_detect::{
    estimate_mimo_htltf, prepare as prepare_detector, smooth_frequency, Prepared,
};
use mimonet_dsp::complex::Complex64;
use mimonet_dsp::stats::lin_to_db;
use mimonet_fec::interleaver::Interleaver;
use mimonet_fec::puncture::depuncture_soft;
use mimonet_fec::viterbi::decode_soft_unterminated;
use mimonet_fec::{decode_hard, Symbol};
use mimonet_frame::carriers::{carrier_to_bin, FFT_LEN, PILOT_CARRIERS};
use mimonet_frame::mcs::Mcs;
use mimonet_frame::ofdm::Ofdm;
use mimonet_frame::pilots::{ht_pilots, legacy_pilots};
use mimonet_frame::preamble::num_htltf;
use mimonet_frame::psdu::descramble_data_bits;
use mimonet_frame::sig::{HtSig, LSig, SigError};
use mimonet_frame::Layout;
use mimonet_sync::{fine_timing, DetectorConfig, PacketDetector, PhaseTracker, VanDeBeek};

/// A successfully decoded frame plus the receiver's channel measurements —
/// the paper's "fine grained SNR estimation, BER and PER computations"
/// hang off these fields.
#[derive(Clone, Debug)]
pub struct RxFrame {
    /// The decoded PSDU (length from HT-SIG; FCS *not* checked here — the
    /// MAC layer / link simulator does that).
    pub psdu: Vec<u8>,
    /// MCS announced in HT-SIG.
    pub mcs: u8,
    /// Preamble-based SNR estimate in dB (average over RX antennas).
    pub snr_db: f64,
    /// Total CFO correction applied, in subcarrier spacings.
    pub cfo: f64,
    /// Sample index of the first L-LTF body in the input buffers.
    pub timing: usize,
    /// EVM-based SNR over the equalized data symbols, in dB.
    pub evm_snr_db: Option<f64>,
    /// Sample index just past the last data symbol — where a streaming
    /// receiver resumes its search for the next frame.
    pub frame_end: usize,
    /// Hard decisions on the received coded stream (punctured domain),
    /// for pre-FEC BER instrumentation.
    pub coded_hard: Vec<u8>,
}

/// Receiver failure at a specific pipeline stage — each maps to an error
/// class the PER instrumentation attributes separately.
#[derive(Clone, Debug, PartialEq)]
pub enum RxError {
    /// Antenna count or buffer lengths inconsistent with the config.
    AntennaMismatch { expected: usize, got: usize },
    /// No STF plateau found.
    NoPacket,
    /// The L-LTF could not be located after detection.
    SyncLost,
    /// Buffer ends before the announced frame does.
    BufferTooShort,
    /// L-SIG failed parity/decoding.
    LSig(SigError),
    /// HT-SIG failed CRC/decoding.
    HtSig(SigError),
    /// HT-SIG announces more streams than we have antennas.
    TooManyStreams { streams: usize, antennas: usize },
    /// The MIMO detector failed on a data carrier (singular channel under
    /// ZF).
    Detector,
    /// FEC decode or descramble failed on the data payload (Viterbi
    /// rejected the stream, or the descrambler found too few bits).
    Fec,
}

impl std::fmt::Display for RxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RxError::AntennaMismatch { expected, got } => {
                write!(f, "expected {expected} RX streams, got {got}")
            }
            RxError::NoPacket => write!(f, "no packet detected"),
            RxError::SyncLost => write!(f, "synchronization lost after detection"),
            RxError::BufferTooShort => write!(f, "buffer ends before the frame does"),
            RxError::LSig(e) => write!(f, "L-SIG: {e}"),
            RxError::HtSig(e) => write!(f, "HT-SIG: {e}"),
            RxError::TooManyStreams { streams, antennas } => {
                write!(f, "{streams} spatial streams but only {antennas} antennas")
            }
            RxError::Detector => write!(f, "MIMO detection failed"),
            RxError::Fec => write!(f, "FEC decode/descramble failed"),
        }
    }
}

impl std::error::Error for RxError {}

/// Upper bound on the samples one frame can legally span: preamble plus
/// the data symbols of a maximum-length (65535-byte) PSDU at the lowest
/// rate (MCS0, 26 data bits/symbol ⇒ ~20.2k symbols × 80 samples), with
/// headroom for detection lead-in. [`Receiver::scan`] windows each decode
/// attempt to this span so a corrupt length field cannot make the
/// receiver chew through (or allocate proportionally to) an arbitrarily
/// long capture.
pub const MAX_FRAME_SPAN: usize = 1_700_000;

/// Robustness statistics from one [`Receiver::scan`] pass.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ScanStats {
    /// Frames successfully decoded.
    pub frames: usize,
    /// Error-driven skip-ahead re-scans (every non-`NoPacket` failure).
    pub rescans: usize,
    /// Failures before the headers: lost sync, short buffer, detector.
    pub sync_errors: usize,
    /// Failures decoding L-SIG / HT-SIG or validating their fields.
    pub header_errors: usize,
    /// Failures in the FEC decode / descramble stage.
    pub fec_errors: usize,
}

/// The receiver. Reusable across frames.
#[derive(Clone, Debug)]
pub struct Receiver {
    cfg: RxConfig,
    ofdm: Ofdm,
}

impl Receiver {
    /// Creates a receiver.
    pub fn new(cfg: RxConfig) -> Self {
        Self {
            cfg,
            ofdm: Ofdm::new(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &RxConfig {
        &self.cfg
    }

    /// Scans a long multi-frame capture, decoding every frame it finds.
    ///
    /// Returns `(offset, frame)` pairs where `offset` is the start of the
    /// slice in which the frame was decoded (its `timing`/`frame_end`
    /// fields are relative to that offset). Decode failures after a
    /// detection advance the scan by a fixed stride so one broken frame
    /// cannot stall the stream; the scan ends at the first stretch with no
    /// detectable packet.
    pub fn receive_all(&self, rx: &[Vec<Complex64>]) -> Vec<(usize, RxFrame)> {
        self.scan(rx).0
    }

    /// [`Self::receive_all`] plus per-capture robustness statistics.
    ///
    /// Hardening over a naive scan loop, all reachable under injected
    /// faults:
    ///
    /// * per-antenna buffers of *unequal* length are scanned up to the
    ///   shortest (a desynchronized or partially-truncated capture must
    ///   degrade, not index out of bounds);
    /// * each `receive` call sees a window of at most [`MAX_FRAME_SPAN`]
    ///   samples, so the work and allocations a corrupt HT-SIG can trigger
    ///   are bounded by the longest legal frame, not the capture length;
    /// * after `SyncLost` / a failed header the scan skips ahead and
    ///   re-scans instead of aborting the capture, and a persistent
    ///   [`RxError::AntennaMismatch`] (a config error, not a channel
    ///   condition) stops the scan instead of looping on it.
    pub fn scan(&self, rx: &[Vec<Complex64>]) -> (Vec<(usize, RxFrame)>, ScanStats) {
        self.scan_profiled(rx, &mut RxCaptureProfile::default())
    }

    /// [`Self::scan`] that additionally records telemetry into `cap`:
    /// aggregated per-stage timing spans, plus one `(offset, error)` event
    /// per failed decode attempt (scan order, offsets absolute in the
    /// capture) — the raw material for attributing every lost frame to a
    /// named pipeline stage.
    pub fn scan_profiled(
        &self,
        rx: &[Vec<Complex64>],
        cap: &mut RxCaptureProfile,
    ) -> (Vec<(usize, RxFrame)>, ScanStats) {
        const ERROR_STRIDE: usize = 400;
        let len = rx.iter().map(|a| a.len()).min().unwrap_or(0);
        let mut out = Vec::new();
        let mut stats = ScanStats::default();
        let mut offset = 0usize;
        while offset + 640 < len {
            let hi = (offset + MAX_FRAME_SPAN).min(len);
            let window: Vec<Vec<Complex64>> = rx.iter().map(|a| a[offset..hi].to_vec()).collect();
            match self.receive_profiled(&window, &mut cap.stages) {
                Ok(frame) => {
                    let end = frame.frame_end;
                    out.push((offset, frame));
                    offset += end.max(ERROR_STRIDE);
                }
                Err(RxError::NoPacket) => {
                    if hi == len {
                        break;
                    }
                    // Nothing in this window, but the capture continues:
                    // slide forward, overlapping by one detection span so a
                    // frame straddling the boundary is still found.
                    offset = hi - 640;
                }
                Err(e @ RxError::AntennaMismatch { .. }) => {
                    cap.events.push((offset, e));
                    break;
                }
                Err(e) => {
                    stats.rescans += 1;
                    match e {
                        RxError::LSig(_) | RxError::HtSig(_) | RxError::TooManyStreams { .. } => {
                            stats.header_errors += 1
                        }
                        RxError::Fec => stats.fec_errors += 1,
                        _ => stats.sync_errors += 1,
                    }
                    cap.events.push((offset, e));
                    offset += ERROR_STRIDE;
                }
            }
        }
        stats.frames = out.len();
        (out, stats)
    }

    /// Attempts to detect and decode one frame from per-antenna buffers.
    pub fn receive(&self, rx: &[Vec<Complex64>]) -> Result<RxFrame, RxError> {
        self.receive_profiled(rx, &mut StageProfile::default())
    }

    /// [`Self::receive`] with per-stage timing spans recorded into
    /// `profile`. On failure the partial span of the stage that errored is
    /// attributed via [`RxStage::of_error`], so a profiled capture's time
    /// is fully accounted whether frames decode or not. The stage *call*
    /// counts are a pure function of the input; only the nanosecond spans
    /// are wall-clock (and stripped from deterministic renderings).
    pub fn receive_profiled(
        &self,
        rx: &[Vec<Complex64>],
        profile: &mut StageProfile,
    ) -> Result<RxFrame, RxError> {
        let mut clock = StageClock::start();
        let res = self.receive_inner(rx, profile, &mut clock);
        if let Err(e) = &res {
            clock.lap(profile, RxStage::of_error(e));
        }
        res
    }

    fn receive_inner(
        &self,
        rx: &[Vec<Complex64>],
        profile: &mut StageProfile,
        clock: &mut StageClock,
    ) -> Result<RxFrame, RxError> {
        if rx.len() != self.cfg.n_rx {
            return Err(RxError::AntennaMismatch {
                expected: self.cfg.n_rx,
                got: rx.len(),
            });
        }
        let len = rx[0].len();
        if rx.iter().any(|a| a.len() != len) {
            return Err(RxError::AntennaMismatch {
                expected: self.cfg.n_rx,
                got: rx.len(),
            });
        }

        // --- 1. Packet detection + coarse CFO ---
        let mut detector = PacketDetector::new(self.cfg.n_rx, DetectorConfig::default());
        let refs: Vec<&[Complex64]> = rx.iter().map(|a| a.as_slice()).collect();
        let det = detector.detect(&refs).ok_or(RxError::NoPacket)?;
        clock.lap(profile, RxStage::Detect);

        // --- 2. Coarse CFO correction (whole buffer) ---
        let mut bufs: Vec<Vec<Complex64>> = rx.to_vec();
        let mut total_cfo = det.coarse_cfo;
        for b in &mut bufs {
            mimonet_channel::impairments::apply_cfo(b, -det.coarse_cfo, 0.0);
        }

        // --- 3. Fine timing: locate the first L-LTF body ---
        // Detection confirms ~(warmup + min_run) samples into the STF; the
        // LTF body then starts ≈ 160 + 32 − that far ahead.
        let cfg_det = DetectorConfig::default();
        let approx_stf_start = det
            .confirmed_at
            .saturating_sub(cfg_det.lag + cfg_det.window + cfg_det.min_run - 1);
        let ltf_guess = approx_stf_start + 160 + 32;
        let ltf_start = if self.cfg.fine_timing {
            let win_lo = ltf_guess.saturating_sub(40);
            // The window must contain BOTH 64-sample LTF repetitions past
            // the last candidate offset, or the two-peak pairing inside
            // fine_timing cannot score the true position.
            let win_hi = (ltf_guess + 40 + 128 + 64).min(len);
            if win_hi <= win_lo + 64 {
                return Err(RxError::SyncLost);
            }
            let windows: Vec<&[Complex64]> = bufs.iter().map(|b| &b[win_lo..win_hi]).collect();
            let ft = fine_timing(&windows).ok_or(RxError::SyncLost)?;
            win_lo + ft.ltf_start
        } else {
            // Fallback refinement: the paper's MIMO-extended Van de Beek.
            // Every field from the L-SIG onward is a CP-80 OFDM symbol, so
            // run the joint CP metric over a post-L-LTF window (which
            // starts on a symbol boundary if the guess is right) and fold
            // the strongest boundary's mod-80 residue back into the guess.
            let win_lo = (ltf_guess + 128).min(len);
            let win_hi = (win_lo + 480).min(len);
            if win_hi >= win_lo + 160 {
                let windows: Vec<&[Complex64]> = bufs.iter().map(|b| &b[win_lo..win_hi]).collect();
                let vdb = VanDeBeek::new(64, 16, self.cfg.vdb_snr_db);
                match vdb.estimate(&windows) {
                    Some(est) => {
                        // Signed residue in (−40, 40]: how far the detected
                        // boundary sits from the guessed symbol grid.
                        let r = (est.timing % 80) as isize;
                        let delta = if r > 40 { r - 80 } else { r };
                        (ltf_guess as isize + delta).max(0) as usize
                    }
                    None => ltf_guess,
                }
            } else {
                ltf_guess
            }
        };
        // Back the FFT window into the cyclic prefix: every downstream
        // window shifts identically, so the channel estimate absorbs the
        // resulting phase ramp, while the window tail stays clear of the
        // symbol transition.
        let ltf_start = ltf_start.saturating_sub(self.cfg.timing_backoff);
        if ltf_start + 128 > len {
            return Err(RxError::BufferTooShort);
        }

        // --- 4. Fine CFO from the LTF repetitions ---
        let mut gamma = Complex64::ZERO;
        for b in &bufs {
            let b1 = &b[ltf_start..ltf_start + 64];
            let b2 = &b[ltf_start + 64..ltf_start + 128];
            gamma += mimonet_dsp::complex::dot_conj(b1, b2);
        }
        let fine_cfo = -gamma.arg() / (2.0 * std::f64::consts::PI);
        total_cfo += fine_cfo;
        for b in &mut bufs {
            mimonet_channel::impairments::apply_cfo(b, -fine_cfo, 0.0);
        }
        clock.lap(profile, RxStage::Sync);

        // --- 5. SNR and noise variance from the corrected LTFs ---
        let scale52 = Ofdm::unit_power_scale(52);
        let scale56 = Ofdm::unit_power_scale(56);
        let mut snr_acc = 0.0;
        let mut legacy_est: Vec<ChannelEstimate> = Vec::with_capacity(self.cfg.n_rx);
        let mut noise_bin_var = 0.0;
        for b in &bufs {
            let b1 = &b[ltf_start..ltf_start + 64];
            let b2 = &b[ltf_start + 64..ltf_start + 128];
            snr_acc += snr_from_ltf_repetitions(b1, b2).unwrap_or(0.0);
            let f1 = self.ofdm.demodulate_window(b1, scale52);
            let f2 = self.ofdm.demodulate_window(b2, scale52);
            // Frequency-domain noise variance over occupied carriers:
            // E|F1-F2|^2 / 2 per repetition pair.
            let mut acc = 0.0;
            let mut n = 0.0;
            for k in -26..=26i32 {
                if k == 0 {
                    continue;
                }
                let bin = carrier_to_bin(k);
                acc += f1[bin].dist_sqr(f2[bin]);
                n += 1.0;
            }
            noise_bin_var += acc / n / 2.0;
            legacy_est.push(mimonet_detect::estimate_siso_lltf(&f1, &f2));
        }
        let snr_db = lin_to_db(snr_acc / self.cfg.n_rx as f64);
        // Per-antenna bin noise at LTF scaling; data symbols use the
        // 56-carrier scale, which raises the per-bin variance by 56/52.
        let noise_var_sig = (noise_bin_var / self.cfg.n_rx as f64).max(1e-12);
        let noise_var_data = noise_var_sig * 56.0 / 52.0;
        clock.lap(profile, RxStage::SnrEst);

        // --- 6. L-SIG and HT-SIG ---
        let lsig_start = ltf_start + 128;
        if lsig_start + 3 * 80 > len {
            return Err(RxError::BufferTooShort);
        }
        let lsig_bits = self.decode_legacy_symbol(&bufs, lsig_start, &legacy_est, 0, false)?;
        let mut lsig24 = decode_hard(&to_symbols(&lsig_bits)).map_err(|_| RxError::SyncLost)?;
        lsig24.extend_from_slice(&[0; 6]);
        let _lsig = LSig::decode(&lsig24).map_err(RxError::LSig)?;

        let ht1 = self.decode_legacy_symbol(&bufs, lsig_start + 80, &legacy_est, 1, true)?;
        let ht2 = self.decode_legacy_symbol(&bufs, lsig_start + 160, &legacy_est, 2, true)?;
        let mut coded = ht1;
        coded.extend(ht2);
        let mut htsig_bits = decode_hard(&to_symbols(&coded)).map_err(|_| RxError::SyncLost)?;
        htsig_bits.extend_from_slice(&[0; 6]);
        let htsig = HtSig::decode(&htsig_bits).map_err(RxError::HtSig)?;
        // Do NOT trust the decode-time validation here: these bits came off
        // the air, and a corrupt-but-CRC-colliding HT-SIG reaching an
        // `expect` would let attacker-controlled input panic the receiver.
        let mcs =
            Mcs::from_index(htsig.mcs).map_err(|_| RxError::HtSig(SigError::BadMcs(htsig.mcs)))?;
        let n_ss = mcs.n_streams;
        if n_ss > self.cfg.n_rx {
            return Err(RxError::TooManyStreams {
                streams: n_ss,
                antennas: self.cfg.n_rx,
            });
        }
        clock.lap(profile, RxStage::Header);

        // --- 7. HT-LTF channel estimation ---
        let n_ltf = num_htltf(n_ss);
        let htltf_start = lsig_start + 240 + 80; // skip HT-STF
        if htltf_start + n_ltf * 80 > len {
            return Err(RxError::BufferTooShort);
        }
        let mut ltf_bins: Vec<Vec<[Complex64; FFT_LEN]>> = Vec::with_capacity(n_ltf);
        for i in 0..n_ltf {
            let base = htltf_start + i * 80;
            let per_rx: Vec<[Complex64; FFT_LEN]> = bufs
                .iter()
                .map(|b| self.ofdm.demodulate(&b[base..base + 80], scale56))
                .collect();
            ltf_bins.push(per_rx);
        }
        let mut chan = estimate_mimo_htltf(&ltf_bins, n_ss);
        if self.cfg.smoothing > 0 && htsig.smoothing {
            chan = smooth_frequency(&chan, self.cfg.smoothing);
        }
        clock.lap(profile, RxStage::ChanEst);

        // --- 8/9. Data symbols ---
        let n_sym = mcs.num_symbols(htsig.length as usize * 8);
        let data_start = htltf_start + n_ltf * 80;
        if data_start + n_sym * 80 > len {
            return Err(RxError::BufferTooShort);
        }

        let interleavers: Vec<Interleaver> = (0..n_ss)
            .map(|s| Interleaver::ht(mcs.n_cbpss(), mcs.n_bpsc(), s, n_ss))
            .collect();
        let data_carriers = Layout::Ht.data_carriers();
        // The channel is block-fading: hoist the per-carrier detector
        // preparation (matrix inversions, ML hypothesis predictions) out
        // of the per-symbol loop.
        let mut prepared: Vec<Prepared> = Vec::with_capacity(data_carriers.len());
        for &k in &data_carriers {
            let h = chan.at(k).ok_or(RxError::Detector)?;
            prepared.push(
                prepare_detector(self.cfg.detector, h, noise_var_data, mcs.modulation)
                    .map_err(|_| RxError::Detector)?,
            );
        }
        let mut tracker = PhaseTracker::new(0.5);
        let mut evm = mimonet_detect::EvmSnrEstimator::new();
        let mut all_llrs: Vec<f64> = Vec::with_capacity(n_sym * mcs.n_cbps());

        for sym in 0..n_sym {
            let base = data_start + sym * 80;
            let mut bins: Vec<[Complex64; FFT_LEN]> = bufs
                .iter()
                .map(|b| self.ofdm.demodulate(&b[base..base + 80], scale56))
                .collect();

            // Pilot tracking: shared phase across antennas.
            if self.cfg.pilot_tracking {
                let mut obs = Vec::with_capacity(4 * self.cfg.n_rx);
                for (i, &k) in PILOT_CARRIERS.iter().enumerate() {
                    if let Some(h) = chan.at(k) {
                        for r in 0..self.cfg.n_rx {
                            let mut expected = Complex64::ZERO;
                            for s in 0..n_ss {
                                let p = ht_pilots(s, n_ss, sym, DATA_POLARITY_OFFSET)[i];
                                expected += h[(r, s)] * p;
                            }
                            obs.push((k, expected, bins[r][carrier_to_bin(k)]));
                        }
                    }
                }
                if let Some(est) = tracker.update(&obs) {
                    for b in bins.iter_mut() {
                        for k in -28..=28i32 {
                            if k == 0 {
                                continue;
                            }
                            let bin = carrier_to_bin(k);
                            b[bin] *= est.correction(k);
                        }
                    }
                }
            }

            // Detect every data carrier with the prepared per-carrier state.
            let mut stream_llrs: Vec<Vec<f64>> = vec![Vec::with_capacity(mcs.n_cbpss()); n_ss];
            for (det, &k) in prepared.iter().zip(&data_carriers) {
                let y: Vec<Complex64> = bins.iter().map(|b| b[carrier_to_bin(k)]).collect();
                let decisions = det.apply(&y);
                for (s, d) in decisions.iter().enumerate() {
                    stream_llrs[s].extend(&d.llrs);
                    evm.push_decided(d.symbol, mcs.modulation);
                }
            }

            // Per-stream deinterleave, then merge via the stream deparser.
            let deinterleaved: Vec<Vec<f64>> = stream_llrs
                .iter()
                .enumerate()
                .map(|(s, l)| interleavers[s].deinterleave_soft(l))
                .collect();
            all_llrs.extend(deparse_streams_soft(&deinterleaved, mcs.n_bpsc()));
        }
        clock.lap(profile, RxStage::Equalize);

        // --- 10. FEC decode + descramble ---
        let mother_len = 2 * n_sym * mcs.n_dbps();
        let full_llrs = depuncture_soft(&all_llrs, mcs.code_rate, mother_len);
        let decoded = if self.cfg.soft_decoding {
            decode_soft_unterminated(&full_llrs).map_err(|_| RxError::Fec)?
        } else {
            let hard: Vec<Symbol> = full_llrs
                .iter()
                .map(|&l| {
                    if l == 0.0 {
                        Symbol::Erased
                    } else {
                        Symbol::Bit(if l > 0.0 { 0 } else { 1 })
                    }
                })
                .collect();
            mimonet_fec::decode_hard_unterminated(&hard).map_err(|_| RxError::Fec)?
        };
        let psdu = descramble_data_bits(&decoded, htsig.length as usize).ok_or(RxError::Fec)?;
        clock.lap(profile, RxStage::Fec);

        Ok(RxFrame {
            psdu,
            mcs: htsig.mcs,
            snr_db,
            cfo: total_cfo,
            timing: ltf_start,
            evm_snr_db: evm.snr_db(),
            frame_end: data_start + n_sym * 80,
            coded_hard: all_llrs
                .iter()
                .map(|&l| if l > 0.0 { 0 } else { 1 })
                .collect(),
        })
    }

    /// Demodulates and MRC-equalizes one legacy symbol, returning the 48
    /// deinterleaved coded bits.
    fn decode_legacy_symbol(
        &self,
        bufs: &[Vec<Complex64>],
        start: usize,
        legacy_est: &[ChannelEstimate],
        sym_index: usize,
        quadrature: bool,
    ) -> Result<Vec<u8>, RxError> {
        let scale52 = Ofdm::unit_power_scale(52);
        let bins: Vec<[Complex64; FFT_LEN]> = bufs
            .iter()
            .map(|b| self.ofdm.demodulate(&b[start..start + 80], scale52))
            .collect();

        // Common phase correction from the four legacy pilots (MRC over
        // antennas).
        let pil = legacy_pilots(sym_index, 0);
        let mut phase_acc = Complex64::ZERO;
        for (i, &k) in PILOT_CARRIERS.iter().enumerate() {
            for (r, est) in legacy_est.iter().enumerate() {
                if let Some(h) = est.at(k) {
                    let expected = h[(0, 0)] * pil[i];
                    phase_acc += bins[r][carrier_to_bin(k)] * expected.conj();
                }
            }
        }
        let derot = if phase_acc.abs() > 1e-12 {
            Complex64::cis(-phase_acc.arg())
        } else {
            Complex64::ONE
        };

        let rot = if quadrature {
            // Undo the QBPSK 90° rotation.
            Complex64::new(0.0, -1.0)
        } else {
            Complex64::ONE
        };
        let mut hard = Vec::with_capacity(48);
        for &k in &Layout::Legacy.data_carriers() {
            let bin = carrier_to_bin(k);
            let mut num = Complex64::ZERO;
            let mut den = 0.0;
            for (r, est) in legacy_est.iter().enumerate() {
                if let Some(h) = est.at(k) {
                    let hv = h[(0, 0)];
                    num += bins[r][bin] * hv.conj();
                    den += hv.norm_sqr();
                }
            }
            if den <= 1e-15 {
                return Err(RxError::SyncLost);
            }
            let eq = num.scale(1.0 / den) * derot * rot;
            hard.push(if eq.re > 0.0 { 1 } else { 0 });
        }
        let il = Interleaver::legacy(48, 1);
        Ok(il.deinterleave(&hard))
    }
}

fn to_symbols(bits: &[u8]) -> Vec<Symbol> {
    bits.iter().map(|&b| Symbol::Bit(b)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TxConfig;
    use crate::tx::Transmitter;
    use mimonet_channel::{ChannelConfig, ChannelSim};

    fn run_link(
        mcs: u8,
        psdu: &[u8],
        chan: ChannelConfig,
        seed: u64,
        rx_cfg: RxConfig,
    ) -> Result<RxFrame, RxError> {
        let tx = Transmitter::new(TxConfig::new(mcs).unwrap());
        let mut streams = tx.transmit(psdu).unwrap();
        // Lead-in/out silence so detection and channel tails have room.
        for s in &mut streams {
            let mut padded = vec![Complex64::ZERO; 120];
            padded.extend_from_slice(s);
            padded.extend(vec![Complex64::ZERO; 80]);
            *s = padded;
        }
        let mut sim = ChannelSim::new(chan, seed);
        let (rx, _) = sim.apply(&streams);
        Receiver::new(rx_cfg).receive(&rx)
    }

    #[test]
    fn siso_clean_channel_roundtrip() {
        let psdu: Vec<u8> = (0..200u8).collect();
        let frame = run_link(
            0,
            &psdu,
            ChannelConfig::awgn(1, 1, 35.0),
            1,
            RxConfig::new(1),
        )
        .expect("decode");
        assert_eq!(frame.psdu, psdu);
        assert_eq!(frame.mcs, 0);
        assert!((frame.snr_db - 35.0).abs() < 3.0, "snr {}", frame.snr_db);
    }

    #[test]
    fn mimo_clean_channel_roundtrip() {
        let psdu: Vec<u8> = (0..255u8).collect();
        for mcs in [8u8, 9, 11] {
            let frame = run_link(
                mcs,
                &psdu,
                ChannelConfig::awgn(2, 2, 35.0),
                2,
                RxConfig::new(2),
            )
            .unwrap_or_else(|e| panic!("MCS{mcs}: {e}"));
            assert_eq!(frame.psdu, psdu, "MCS{mcs}");
            assert_eq!(frame.mcs, mcs);
        }
    }

    #[test]
    fn survives_cfo_and_timing_offset() {
        let psdu: Vec<u8> = (0..100u8).collect();
        let mut chan = ChannelConfig::awgn(2, 2, 30.0);
        chan.cfo_norm = 0.35;
        chan.timing_offset = 33.0;
        let frame = run_link(9, &psdu, chan, 3, RxConfig::new(2)).expect("decode");
        assert_eq!(frame.psdu, psdu);
        assert!((frame.cfo - 0.35).abs() < 0.02, "cfo {}", frame.cfo);
    }

    #[test]
    fn no_packet_in_noise() {
        let rx = Receiver::new(RxConfig::new(1));
        let mut sim = ChannelSim::new(ChannelConfig::awgn(1, 1, 0.0), 4);
        let silence = vec![vec![Complex64::ZERO; 4000]];
        let (noisy, _) = sim.apply(&silence);
        assert!(matches!(rx.receive(&noisy), Err(RxError::NoPacket)));
    }

    #[test]
    fn antenna_mismatch_detected() {
        let rx = Receiver::new(RxConfig::new(2));
        let buf = vec![vec![Complex64::ZERO; 100]];
        assert!(matches!(
            rx.receive(&buf),
            Err(RxError::AntennaMismatch { .. })
        ));
    }

    #[test]
    fn truncated_frame_reports_short_buffer() {
        let tx = Transmitter::new(TxConfig::new(0).unwrap());
        let psdu = vec![0x42u8; 500];
        let mut s = vec![Complex64::ZERO; 100];
        s.extend(tx.transmit(&psdu).unwrap().remove(0));
        s.truncate(s.len() - 600); // cut into the data symbols
        let rx = Receiver::new(RxConfig::new(1));
        assert!(matches!(rx.receive(&[s]), Err(RxError::BufferTooShort)));
    }

    #[test]
    fn hard_decoding_also_works() {
        let psdu: Vec<u8> = (0..150u8).collect();
        let mut cfg = RxConfig::new(2);
        cfg.soft_decoding = false;
        let frame = run_link(10, &psdu, ChannelConfig::awgn(2, 2, 35.0), 5, cfg).expect("decode");
        assert_eq!(frame.psdu, psdu);
    }

    #[test]
    fn two_stream_frame_needs_two_antennas() {
        // A 2-stream frame received by a 1-antenna receiver must be
        // rejected at HT-SIG (TooManyStreams), not crash the detector.
        let tx = Transmitter::new(TxConfig::new(9).unwrap());
        let streams = tx.transmit(&[7u8; 40]).unwrap();
        // Single-antenna capture: sum of both TX antennas (what one
        // physical antenna would see on an identity-ish channel).
        let mut capture = vec![Complex64::ZERO; 120];
        capture.extend(streams[0].iter().zip(&streams[1]).map(|(&a, &b)| a + b));
        capture.extend(vec![Complex64::ZERO; 80]);
        let rx = Receiver::new(RxConfig::new(1));
        match rx.receive(&[capture]) {
            Err(RxError::TooManyStreams {
                streams: 2,
                antennas: 1,
            }) => {}
            // The summed legacy preamble can also corrupt HT-SIG itself.
            Err(RxError::HtSig(_)) | Err(RxError::SyncLost) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn receive_all_finds_back_to_back_frames() {
        let tx = Transmitter::new(TxConfig::new(9).unwrap());
        let rx = Receiver::new(RxConfig::new(2));
        let psdus: Vec<Vec<u8>> = (0..3u8).map(|k| vec![k; 60 + 10 * k as usize]).collect();
        // Concatenate three frames with inter-frame gaps into one capture.
        let mut capture: Vec<Vec<Complex64>> = vec![vec![Complex64::ZERO; 150]; 2];
        for psdu in &psdus {
            let streams = tx.transmit(psdu).unwrap();
            for (c, s) in capture.iter_mut().zip(&streams) {
                c.extend_from_slice(s);
                c.extend(vec![Complex64::ZERO; 200]);
            }
        }
        let mut sim = ChannelSim::new(ChannelConfig::awgn(2, 2, 30.0), 9);
        let (noisy, _) = sim.apply(&capture);
        let frames = rx.receive_all(&noisy);
        assert_eq!(frames.len(), 3, "found {} frames", frames.len());
        for ((off, frame), want) in frames.iter().zip(&psdus) {
            assert_eq!(&frame.psdu, want, "frame at offset {off}");
        }
        // Offsets are strictly increasing.
        assert!(frames.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn receive_all_empty_capture() {
        let rx = Receiver::new(RxConfig::new(1));
        assert!(rx.receive_all(&[vec![Complex64::ZERO; 5000]]).is_empty());
        assert!(rx.receive_all(&[vec![]]).is_empty());
    }

    #[test]
    fn coded_hard_matches_tx_reference_on_clean_channel() {
        let tx = Transmitter::new(TxConfig::new(8).unwrap());
        let psdu: Vec<u8> = (0..64u8).collect();
        let reference = tx.coded_bits(&psdu);
        let frame = run_link(
            8,
            &psdu,
            ChannelConfig::awgn(2, 2, 40.0),
            6,
            RxConfig::new(2),
        )
        .expect("decode");
        assert_eq!(frame.coded_hard.len(), reference.len());
        let errs = frame
            .coded_hard
            .iter()
            .zip(&reference)
            .filter(|(a, b)| a != b)
            .count();
        assert_eq!(errs, 0, "clean channel must have zero pre-FEC errors");
    }
}
