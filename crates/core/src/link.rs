//! Monte-Carlo link-level simulator: seeded TX → channel → RX loops with
//! full BER/PER/SNR/sync-accuracy instrumentation. Every figure in
//! EXPERIMENTS.md is a sweep over [`LinkSim`] runs.

use crate::config::{RxConfig, TxConfig};
use crate::metrics::{BerCounter, PerCounter, RecoveryCounter};
use crate::rx::{Receiver, RxError};
use crate::telemetry::{FrameOutcomes, StageProfile};
use crate::tx::Transmitter;
use mimonet_channel::{ChannelConfig, ChannelSim};
use mimonet_dsp::complex::Complex64;
use mimonet_dsp::stats::Running;
use mimonet_frame::psdu::Mpdu;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Link simulation configuration.
#[derive(Clone, Debug)]
pub struct LinkConfig {
    /// MCS index (0–15).
    pub mcs: u8,
    /// MAC payload size in octets (PSDU adds 22 octets of header + FCS).
    pub payload_len: usize,
    /// Channel between the radios.
    pub channel: ChannelConfig,
    /// Receiver settings.
    pub rx: RxConfig,
    /// Silence before the frame (samples).
    pub lead_in: usize,
    /// Silence after the frame (samples).
    pub lead_out: usize,
}

impl LinkConfig {
    /// A sensible default link: given MCS over the given channel, default
    /// receiver sized to the MCS's stream count (or the channel's RX
    /// count, whichever is larger).
    pub fn new(mcs: u8, payload_len: usize, channel: ChannelConfig) -> Self {
        let rx = RxConfig::new(channel.n_rx);
        Self {
            mcs,
            payload_len,
            channel,
            rx,
            lead_in: 160,
            lead_out: 80,
        }
    }
}

/// Aggregated statistics from a batch of frames.
#[derive(Clone, Debug, Default)]
pub struct LinkStats {
    /// Packet delivery with failure attribution.
    pub per: PerCounter,
    /// Post-FEC BER over the payloads of frames whose PSDU decoded with
    /// the right length (including FCS failures — that's where the
    /// residual errors live).
    pub payload_ber: BerCounter,
    /// Pre-FEC (coded-stream) BER over the same frames — the "uncoded"
    /// curve of experiment F6.
    pub coded_ber: BerCounter,
    /// Preamble SNR estimates (dB).
    pub snr_est_db: Running,
    /// EVM-derived SNR estimates (dB).
    pub evm_snr_db: Running,
    /// CFO estimation error (estimate − truth), subcarrier spacings.
    pub cfo_error: Running,
    /// Timing estimation error in samples (flat channels only; multipath
    /// makes "true" timing ambiguous).
    pub timing_error: Running,
    /// Fault-injection and recovery accounting. Stays all-zero for
    /// ordinary (fault-free) links; populated by the chaos harness.
    pub recovery: RecoveryCounter,
    /// Per-frame outcome taxonomy: every frame lands in exactly one
    /// terminal class, so `outcomes.total() == per.sent()` and loss is
    /// attributable to a named RX stage. Counts only — deterministic.
    pub outcomes: FrameOutcomes,
}

impl LinkStats {
    /// Folds another batch's statistics into this one. Merging batches in
    /// a fixed order is exactly equivalent to accumulating the underlying
    /// frames in that order (counters add; moment stats use the parallel
    /// Welford combination), which is what makes sharded parallel sweeps
    /// bit-reproducible.
    pub fn merge(&mut self, other: &Self) {
        self.per.merge(&other.per);
        self.payload_ber.merge(&other.payload_ber);
        self.coded_ber.merge(&other.coded_ber);
        self.snr_est_db.merge(&other.snr_est_db);
        self.evm_snr_db.merge(&other.evm_snr_db);
        self.cfo_error.merge(&other.cfo_error);
        self.timing_error.merge(&other.timing_error);
        self.recovery.merge(&other.recovery);
        crate::sweep::Merge::merge(&mut self.outcomes, &other.outcomes);
    }
}

impl serde::Serialize for LinkStats {
    fn serialize(&self) -> serde::Value {
        serde::Value::object([
            ("per", self.per.serialize()),
            ("payload_ber", self.payload_ber.serialize()),
            ("coded_ber", self.coded_ber.serialize()),
            ("snr_est_db", self.snr_est_db.serialize()),
            ("evm_snr_db", self.evm_snr_db.serialize()),
            ("cfo_error", self.cfo_error.serialize()),
            ("timing_error", self.timing_error.serialize()),
            ("recovery", self.recovery.serialize()),
            ("outcomes", self.outcomes.serialize()),
        ])
    }
}

/// The seeded link simulator.
pub struct LinkSim {
    cfg: LinkConfig,
    tx: Transmitter,
    rx: Receiver,
    chan: ChannelSim,
    rng: ChaCha8Rng,
    seq: u16,
}

impl LinkSim {
    /// Creates a simulator. `seed` drives payloads, channel realizations
    /// and noise — the same seed reproduces the same statistics exactly.
    pub fn new(cfg: LinkConfig, seed: u64) -> Self {
        let tx = Transmitter::new(TxConfig::new(cfg.mcs).expect("valid MCS"));
        assert_eq!(
            cfg.channel.n_tx,
            tx.mcs().n_streams,
            "channel n_tx must match the MCS stream count"
        );
        let rx = Receiver::new(cfg.rx.clone());
        let chan = ChannelSim::new(
            cfg.channel.clone(),
            mimonet_dsp::seedtree::salted(seed, mimonet_dsp::seedtree::CHANNEL_SALT),
        );
        Self {
            cfg,
            tx,
            rx,
            chan,
            rng: ChaCha8Rng::seed_from_u64(seed),
            seq: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &LinkConfig {
        &self.cfg
    }

    /// Airtime of one frame in microseconds (samples / 20 Msps).
    pub fn frame_airtime_us(&self) -> f64 {
        let psdu_len = self.cfg.payload_len + 22;
        self.tx.frame_len(psdu_len) as f64 / 20.0
    }

    /// Runs one frame through the link, updating `stats`.
    pub fn run_frame(&mut self, stats: &mut LinkStats) {
        self.run_frame_profiled(stats, &mut StageProfile::default());
    }

    /// [`Self::run_frame`] with RX-stage timing spans recorded into
    /// `profile` (see [`crate::Receiver::receive_profiled`]).
    pub fn run_frame_profiled(&mut self, stats: &mut LinkStats, profile: &mut StageProfile) {
        let payload: Vec<u8> = (0..self.cfg.payload_len).map(|_| self.rng.gen()).collect();
        let mpdu = Mpdu::data([0x02; 6], [0x04; 6], self.seq, payload.clone());
        self.seq = (self.seq + 1) & 0x0FFF;
        let psdu = mpdu.to_psdu();

        let mut streams = self.tx.transmit(&psdu).expect("valid PSDU");
        for s in &mut streams {
            let mut padded = vec![Complex64::ZERO; self.cfg.lead_in];
            padded.extend_from_slice(s);
            padded.extend(std::iter::repeat_n(Complex64::ZERO, self.cfg.lead_out));
            *s = padded;
        }
        let (rx_streams, truth) = self.chan.apply(&streams);

        match self.rx.receive_profiled(&rx_streams, profile) {
            Ok(frame) => {
                stats.snr_est_db.push(frame.snr_db);
                if let Some(e) = frame.evm_snr_db {
                    stats.evm_snr_db.push(e);
                }
                stats.cfo_error.push(frame.cfo - truth.cfo_norm);
                if truth.tdl.is_none() {
                    // The receiver deliberately backs its window into the
                    // CP; measure against the position it *aims* for.
                    let intended = self.cfg.lead_in as f64 + truth.timing_offset + 160.0 + 32.0
                        - self.cfg.rx.timing_backoff as f64;
                    stats.timing_error.push(frame.timing as f64 - intended);
                }

                if frame.psdu.len() == psdu.len() {
                    stats.payload_ber.compare_bytes(&psdu, &frame.psdu);
                    let reference = self.tx.coded_bits(&psdu);
                    if frame.coded_hard.len() == reference.len() {
                        stats.coded_ber.compare_bits(&reference, &frame.coded_hard);
                    }
                    match Mpdu::from_psdu(&frame.psdu) {
                        Some(got) if got.payload == payload => {
                            stats.per.record_ok();
                            stats.outcomes.record_ok();
                        }
                        _ => {
                            stats.per.record_fcs_failure();
                            stats.outcomes.record_payload_fail();
                        }
                    }
                } else {
                    // HT-SIG CRC passed but announced the wrong length —
                    // an undetected header corruption.
                    stats.per.record_header_failure();
                    stats.outcomes.header_fail += 1;
                }
            }
            Err(e) => {
                stats.outcomes.record_error(&e);
                match e {
                    // FEC failures keep their historical sync-class PER
                    // attribution (they used to surface as `SyncLost`);
                    // the fine-grained split lives in `outcomes`.
                    RxError::NoPacket
                    | RxError::SyncLost
                    | RxError::BufferTooShort
                    | RxError::Fec => stats.per.record_sync_failure(),
                    RxError::LSig(_)
                    | RxError::HtSig(_)
                    | RxError::TooManyStreams { .. }
                    | RxError::Detector => stats.per.record_header_failure(),
                    RxError::AntennaMismatch { .. } => {
                        unreachable!("configuration bug: antenna counts were validated in new()")
                    }
                }
            }
        }
    }

    /// Runs `n` frames and returns the aggregated statistics.
    pub fn run(&mut self, n: usize) -> LinkStats {
        let mut stats = LinkStats::default();
        for _ in 0..n {
            self.run_frame(&mut stats);
        }
        stats
    }

    /// Runs frames until `min_bit_errors` payload bit errors have been
    /// observed or `max_frames` exhausted — standard practice for
    /// waterfall BER curves where the error rate spans decades.
    pub fn run_until_errors(&mut self, min_bit_errors: u64, max_frames: usize) -> LinkStats {
        let mut stats = LinkStats::default();
        for _ in 0..max_frames {
            self.run_frame(&mut stats);
            if stats.payload_ber.errors() >= min_bit_errors {
                break;
            }
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mimonet_channel::{Fading, TgnModel};

    #[test]
    fn clean_link_delivers_everything() {
        let cfg = LinkConfig::new(8, 100, ChannelConfig::awgn(2, 2, 30.0));
        let mut sim = LinkSim::new(cfg, 42);
        let stats = sim.run(10);
        assert_eq!(stats.per.sent(), 10);
        assert_eq!(stats.per.ok(), 10, "PER failures: {:?}", stats.per);
        assert_eq!(stats.payload_ber.errors(), 0);
        assert_eq!(stats.coded_ber.errors(), 0);
        assert_eq!(stats.snr_est_db.count(), 10);
    }

    #[test]
    fn low_snr_link_fails() {
        let cfg = LinkConfig::new(15, 200, ChannelConfig::awgn(2, 2, 3.0));
        let mut sim = LinkSim::new(cfg, 43);
        let stats = sim.run(10);
        assert!(
            stats.per.per() > 0.5,
            "MCS15 at 3 dB must mostly fail: {:?}",
            stats.per
        );
    }

    #[test]
    fn seeds_reproduce() {
        let cfg = LinkConfig::new(9, 64, ChannelConfig::awgn(2, 2, 12.0));
        let a = LinkSim::new(cfg.clone(), 7).run(20);
        let b = LinkSim::new(cfg, 7).run(20);
        assert_eq!(a.per.ok(), b.per.ok());
        assert_eq!(a.payload_ber.errors(), b.payload_ber.errors());
        assert_eq!(a.coded_ber.errors(), b.coded_ber.errors());
    }

    #[test]
    fn coded_ber_nonzero_when_payload_clean() {
        // At a mid SNR the FEC should be cleaning up a nonzero channel BER.
        let cfg = LinkConfig::new(9, 300, ChannelConfig::awgn(2, 2, 10.0));
        let mut sim = LinkSim::new(cfg, 44);
        let stats = sim.run(30);
        assert!(stats.coded_ber.errors() > 0, "expected raw channel errors");
        assert!(
            stats.payload_ber.ber() < stats.coded_ber.ber(),
            "FEC must reduce BER: payload {} vs coded {}",
            stats.payload_ber.ber(),
            stats.coded_ber.ber()
        );
    }

    #[test]
    fn rayleigh_fading_link_runs() {
        let mut chan = ChannelConfig::awgn(2, 2, 25.0);
        chan.fading = Fading::RayleighFlat;
        let cfg = LinkConfig::new(8, 100, chan);
        let stats = LinkSim::new(cfg, 45).run(20);
        assert_eq!(stats.per.sent(), 20);
        assert!(
            stats.per.ok() > 0,
            "some frames should survive 25 dB Rayleigh"
        );
    }

    #[test]
    fn tgn_channel_link_runs() {
        let mut chan = ChannelConfig::awgn(2, 2, 30.0);
        chan.fading = Fading::Tgn(TgnModel::B);
        let cfg = LinkConfig::new(9, 100, chan);
        let stats = LinkSim::new(cfg, 46).run(15);
        assert!(stats.per.ok() > 10, "TGn-B at 30 dB: {:?}", stats.per);
    }

    #[test]
    fn timing_and_cfo_statistics_recorded() {
        let mut chan = ChannelConfig::awgn(1, 1, 25.0);
        chan.cfo_norm = 0.2;
        chan.timing_offset = 17.0;
        let cfg = LinkConfig::new(0, 80, chan);
        let stats = LinkSim::new(cfg, 47).run(10);
        assert!(stats.cfo_error.count() > 0);
        assert!(
            stats.cfo_error.rms() < 0.02,
            "cfo rms {}",
            stats.cfo_error.rms()
        );
        assert!(stats.timing_error.count() > 0);
        assert!(
            stats.timing_error.rms() <= 2.0,
            "timing rms {}",
            stats.timing_error.rms()
        );
    }

    #[test]
    fn airtime_matches_rate_table() {
        // MCS8, 100-byte payload: PSDU 122 B = 976 bits; N_DBPS 52 →
        // ceil(998/52) = 20 symbols; preamble 560 + HT-STF/LTFs 240 →
        // (800 + 1600) samples = 120 µs.
        let cfg = LinkConfig::new(8, 100, ChannelConfig::awgn(2, 2, 20.0));
        let sim = LinkSim::new(cfg, 48);
        let t = sim.frame_airtime_us();
        assert!((t - 120.0).abs() < 1e-9, "airtime {t}");
    }

    #[test]
    #[should_panic(expected = "channel n_tx must match")]
    fn mismatched_channel_rejected() {
        let cfg = LinkConfig::new(8, 100, ChannelConfig::awgn(1, 1, 20.0));
        LinkSim::new(cfg, 0);
    }
}
