//! The MIMO-OFDM transmitter: PSDU bytes → per-antenna baseband sample
//! streams, in the 802.11n mixed-format frame the paper implements.
//!
//! Frame layout (80-sample symbols unless noted):
//!
//! ```text
//! L-STF (160) | L-LTF (160) | L-SIG | HT-SIG1 | HT-SIG2 | HT-STF |
//! HT-LTF1 [| HT-LTF2] | DATA...
//! ```
//!
//! The legacy portion (through HT-SIG) is transmitted identically from all
//! antennas with per-antenna cyclic shifts; the HT portion maps each
//! spatial stream to one antenna (direct mapping). Every antenna's output
//! is scaled by `1/sqrt(n_tx)` so total radiated power is 1 regardless of
//! antenna count — the convention the channel simulator's SNR definition
//! assumes.

use crate::config::TxConfig;
use mimonet_dsp::complex::Complex64;
use mimonet_fec::interleaver::Interleaver;
use mimonet_fec::puncture::puncture;
use mimonet_fec::ConvEncoder;
use mimonet_frame::carriers::{carrier_to_bin, FFT_LEN};
use mimonet_frame::mcs::Mcs;
use mimonet_frame::modulation::Modulation;
use mimonet_frame::ofdm::{apply_cyclic_shift, ht_cyclic_shift, legacy_cyclic_shift, Ofdm};
use mimonet_frame::pilots::{ht_pilots, legacy_pilots};
use mimonet_frame::preamble::{htltf_time, htstf_time, lltf_time, lstf_time, num_htltf};
use mimonet_frame::psdu::{assemble_data_bits, scramble_data_bits};
use mimonet_frame::sig::{HtSig, LSig};
use mimonet_frame::Layout;

/// Number of pre-data symbols that consume pilot-polarity indices:
/// L-SIG (p_0) + two HT-SIG symbols (p_1, p_2); data starts at p_3.
pub const DATA_POLARITY_OFFSET: usize = 3;

/// Samples in the frame before the HT-STF for an HT mixed frame:
/// L-STF + L-LTF + L-SIG + 2 × HT-SIG.
pub const PRE_HT_LEN: usize = 160 + 160 + 80 + 160;

/// The transmitter. Holds a planned FFT; reuse across frames.
#[derive(Clone, Debug)]
pub struct Transmitter {
    cfg: TxConfig,
    ofdm: Ofdm,
}

/// Transmit-side errors.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TxError {
    /// PSDU exceeds the 16-bit HT length field.
    PsduTooLong(usize),
    /// PSDU is empty.
    EmptyPsdu,
}

impl std::fmt::Display for TxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TxError::PsduTooLong(n) => write!(f, "PSDU of {n} octets exceeds 65535"),
            TxError::EmptyPsdu => write!(f, "PSDU must not be empty"),
        }
    }
}

impl std::error::Error for TxError {}

impl Transmitter {
    /// Creates a transmitter.
    pub fn new(cfg: TxConfig) -> Self {
        Self {
            cfg,
            ofdm: Ofdm::new(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &TxConfig {
        &self.cfg
    }

    /// The MCS in use.
    pub fn mcs(&self) -> Mcs {
        self.cfg.mcs
    }

    /// Total frame length in samples for a PSDU of `psdu_len` octets.
    pub fn frame_len(&self, psdu_len: usize) -> usize {
        let mcs = self.cfg.mcs;
        let n_sym = mcs.num_symbols(psdu_len * 8);
        PRE_HT_LEN + 80 + num_htltf(mcs.n_streams) * 80 + n_sym * 80
    }

    /// The punctured (over-the-air) coded bit stream for a PSDU — the
    /// reference the link instrumentation compares received LLR hard
    /// decisions against to measure *pre-FEC* (uncoded) BER.
    pub fn coded_bits(&self, psdu: &[u8]) -> Vec<u8> {
        let mcs = self.cfg.mcs;
        let mut bits = assemble_data_bits(psdu, &mcs);
        scramble_data_bits(&mut bits, psdu.len(), self.cfg.scrambler_seed);
        let coded = ConvEncoder::new().encode(&bits);
        puncture(&coded, mcs.code_rate)
    }

    /// Builds the per-antenna sample streams for one PSDU.
    pub fn transmit(&self, psdu: &[u8]) -> Result<Vec<Vec<Complex64>>, TxError> {
        if psdu.is_empty() {
            return Err(TxError::EmptyPsdu);
        }
        if psdu.len() > u16::MAX as usize {
            return Err(TxError::PsduTooLong(psdu.len()));
        }
        let mcs = self.cfg.mcs;
        let n_tx = mcs.n_streams;
        let antenna_scale = 1.0 / (n_tx as f64).sqrt();

        let mut streams: Vec<Vec<Complex64>> = (0..n_tx)
            .map(|_| Vec::with_capacity(self.frame_len(psdu.len())))
            .collect();

        // ---- Legacy preamble ----
        for (a, s) in streams.iter_mut().enumerate() {
            s.extend(lstf_time(a, n_tx));
            s.extend(lltf_time(a, n_tx));
        }

        // ---- L-SIG ----
        // The legacy LENGTH/RATE announce a 6 Mb/s frame spanning the HT
        // duration (spoofing); receivers in this workspace read HT-SIG for
        // the real parameters.
        let lsig = LSig::new(6.0, (psdu.len() as u16).clamp(1, 4095));
        let lsig_coded = ConvEncoder::new().encode(&lsig.encode());
        debug_assert_eq!(lsig_coded.len(), 48);
        let lsig_sym = self.legacy_bpsk_symbol(&lsig_coded, 0, false);
        self.append_legacy_symbol(&mut streams, &lsig_sym);

        // ---- HT-SIG (two QBPSK symbols) ----
        let htsig = HtSig::new(mcs.index, psdu.len() as u16);
        let coded = ConvEncoder::new().encode(&htsig.encode());
        debug_assert_eq!(coded.len(), 96);
        for (i, half) in coded.chunks(48).enumerate() {
            let sym = self.legacy_bpsk_symbol(half, 1 + i, true);
            self.append_legacy_symbol(&mut streams, &sym);
        }

        // ---- HT-STF and HT-LTFs ----
        let n_ltf = num_htltf(n_tx);
        for (a, s) in streams.iter_mut().enumerate() {
            s.extend(htstf_time(&self.ofdm, a, n_tx));
        }
        for ltf in 0..n_ltf {
            for (a, s) in streams.iter_mut().enumerate() {
                s.extend(htltf_time(&self.ofdm, a, n_tx, ltf));
            }
        }

        // ---- HT-Data ----
        let mut bits = assemble_data_bits(psdu, &mcs);
        scramble_data_bits(&mut bits, psdu.len(), self.cfg.scrambler_seed);
        let coded = ConvEncoder::new().encode(&bits);
        let tx_bits = puncture(&coded, mcs.code_rate);
        debug_assert_eq!(tx_bits.len() % mcs.n_cbps(), 0);
        let n_sym = tx_bits.len() / mcs.n_cbps();

        let interleavers: Vec<Interleaver> = (0..n_tx)
            .map(|s| Interleaver::ht(mcs.n_cbpss(), mcs.n_bpsc(), s, n_tx))
            .collect();

        for sym in 0..n_sym {
            let sym_bits = &tx_bits[sym * mcs.n_cbps()..(sym + 1) * mcs.n_cbps()];
            let stream_bits = parse_streams(sym_bits, n_tx, mcs.n_bpsc());
            for (stream, s_bits) in stream_bits.iter().enumerate() {
                let interleaved = interleavers[stream].interleave(s_bits);
                let symbols = mcs.modulation.map(&interleaved);
                let td = self.ht_data_symbol(&symbols, stream, n_tx, sym, mcs.modulation);
                streams[stream].extend(td);
            }
        }

        // ---- Per-antenna power normalization ----
        for s in &mut streams {
            for x in s.iter_mut() {
                *x = x.scale(antenna_scale);
            }
        }
        Ok(streams)
    }

    /// One legacy-format BPSK (or QBPSK when `quadrature`) symbol carrying
    /// 48 already-coded bits, with pilots at polarity index `sym_index`.
    /// Returns the *unshifted* frequency bins; CSD is applied per antenna by
    /// [`Self::append_legacy_symbol`].
    fn legacy_bpsk_symbol(
        &self,
        coded_bits: &[u8],
        sym_index: usize,
        quadrature: bool,
    ) -> [Complex64; FFT_LEN] {
        assert_eq!(coded_bits.len(), 48, "legacy symbol carries 48 coded bits");
        let il = Interleaver::legacy(48, 1);
        let interleaved = il.interleave(coded_bits);
        let data = Modulation::Bpsk.map(&interleaved);
        let rot = if quadrature {
            Complex64::I
        } else {
            Complex64::ONE
        };
        let mut bins = [Complex64::ZERO; FFT_LEN];
        for (i, &k) in Layout::Legacy.data_carriers().iter().enumerate() {
            bins[carrier_to_bin(k)] = data[i] * rot;
        }
        let pil = legacy_pilots(sym_index, 0);
        for (i, &k) in mimonet_frame::carriers::PILOT_CARRIERS.iter().enumerate() {
            bins[carrier_to_bin(k)] = Complex64::from_re(pil[i]);
        }
        bins
    }

    /// Appends a legacy symbol to every antenna with its legacy CSD.
    fn append_legacy_symbol(&self, streams: &mut [Vec<Complex64>], bins: &[Complex64; FFT_LEN]) {
        let n_tx = streams.len();
        for (a, s) in streams.iter_mut().enumerate() {
            let mut shifted = *bins;
            apply_cyclic_shift(&mut shifted, legacy_cyclic_shift(a, n_tx));
            s.extend(
                self.ofdm
                    .modulate_bins(&shifted, Ofdm::unit_power_scale(52)),
            );
        }
    }

    /// One HT data symbol for `stream`: 52 data carriers + 4 pilots, HT
    /// CSD, 56-carrier power scale.
    fn ht_data_symbol(
        &self,
        symbols: &[Complex64],
        stream: usize,
        n_sts: usize,
        sym_index: usize,
        _modulation: Modulation,
    ) -> Vec<Complex64> {
        debug_assert_eq!(symbols.len(), 52);
        let mut bins = [Complex64::ZERO; FFT_LEN];
        for (i, &k) in Layout::Ht.data_carriers().iter().enumerate() {
            bins[carrier_to_bin(k)] = symbols[i];
        }
        let pil = ht_pilots(stream, n_sts, sym_index, DATA_POLARITY_OFFSET);
        for (i, &k) in mimonet_frame::carriers::PILOT_CARRIERS.iter().enumerate() {
            bins[carrier_to_bin(k)] = Complex64::from_re(pil[i]);
        }
        apply_cyclic_shift(&mut bins, ht_cyclic_shift(stream, n_sts));
        self.ofdm.modulate_bins(&bins, Ofdm::unit_power_scale(56))
    }
}

/// The 802.11n stream parser: distributes one symbol's coded bits
/// round-robin in groups of `s = max(1, n_bpsc/2)` bits per stream.
pub fn parse_streams(bits: &[u8], n_streams: usize, n_bpsc: usize) -> Vec<Vec<u8>> {
    let s = (n_bpsc / 2).max(1);
    assert_eq!(
        bits.len() % (n_streams * s),
        0,
        "bit count {} not divisible by {} streams × s={}",
        bits.len(),
        n_streams,
        s
    );
    let per_stream = bits.len() / n_streams;
    let mut out = vec![Vec::with_capacity(per_stream); n_streams];
    for (g, group) in bits.chunks(s).enumerate() {
        out[g % n_streams].extend_from_slice(group);
    }
    out
}

/// Inverse of [`parse_streams`] over per-stream LLR vectors.
pub fn deparse_streams_soft(streams: &[Vec<f64>], n_bpsc: usize) -> Vec<f64> {
    let s = (n_bpsc / 2).max(1);
    let n_streams = streams.len();
    let per_stream = streams[0].len();
    assert!(
        streams.iter().all(|v| v.len() == per_stream),
        "ragged streams"
    );
    assert_eq!(per_stream % s, 0, "stream length not a multiple of s");
    let mut out = Vec::with_capacity(per_stream * n_streams);
    let groups_per_stream = per_stream / s;
    for g in 0..groups_per_stream {
        for stream in streams.iter().take(n_streams) {
            out.extend_from_slice(&stream[g * s..(g + 1) * s]);
        }
    }
    out
}

/// [`deparse_streams_soft`] over a flat stream-major slab
/// (`streams[st * per_stream + i]`, `per_stream = streams.len() /
/// n_streams`), *appending* to `out` — the allocation-free path for the
/// per-symbol RX loop, which accumulates every symbol's deparsed LLRs into
/// one frame-long vector. Emits the same values in the same order as the
/// nested variant.
pub fn deparse_streams_soft_flat(
    streams: &[f64],
    n_streams: usize,
    n_bpsc: usize,
    out: &mut Vec<f64>,
) {
    let s = (n_bpsc / 2).max(1);
    assert!(n_streams > 0, "need at least one stream");
    assert_eq!(streams.len() % n_streams, 0, "ragged streams");
    let per_stream = streams.len() / n_streams;
    assert_eq!(per_stream % s, 0, "stream length not a multiple of s");
    out.reserve(streams.len());
    let groups_per_stream = per_stream / s;
    for g in 0..groups_per_stream {
        for st in 0..n_streams {
            let base = st * per_stream + g * s;
            out.extend_from_slice(&streams[base..base + s]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TxConfig;
    use mimonet_dsp::complex::mean_power;

    fn tx(mcs: u8) -> Transmitter {
        Transmitter::new(TxConfig::new(mcs).unwrap())
    }

    #[test]
    fn deparse_flat_matches_nested() {
        for (n_streams, n_bpsc, per_stream) in [(1usize, 1usize, 52usize), (2, 2, 104), (2, 6, 312)]
        {
            let nested: Vec<Vec<f64>> = (0..n_streams)
                .map(|st| {
                    (0..per_stream)
                        .map(|i| (st * per_stream + i) as f64 * 0.25 - 7.0)
                        .collect()
                })
                .collect();
            let flat: Vec<f64> = nested.iter().flatten().copied().collect();
            let want = deparse_streams_soft(&nested, n_bpsc);
            let mut got = vec![-1.0; 3]; // pre-existing content must be kept
            deparse_streams_soft_flat(&flat, n_streams, n_bpsc, &mut got);
            assert_eq!(got[..3], [-1.0, -1.0, -1.0]);
            assert_eq!(got[3..], want[..], "ns={n_streams} bpsc={n_bpsc}");
        }
    }

    #[test]
    fn frame_lengths() {
        // MCS8 (2 streams, BPSK 1/2): N_DBPS = 52.
        let t = tx(8);
        let psdu = vec![0u8; 100];
        // bits: 16 + 800 + 6 = 822 → 16 symbols (822/52 = 15.8).
        let streams = t.transmit(&psdu).unwrap();
        assert_eq!(streams.len(), 2);
        let want = PRE_HT_LEN + 80 + 2 * 80 + 16 * 80;
        assert_eq!(streams[0].len(), want);
        assert_eq!(streams[1].len(), want);
        assert_eq!(t.frame_len(100), want);
    }

    #[test]
    fn siso_frame_has_one_stream() {
        let t = tx(0);
        let streams = t.transmit(&[1, 2, 3]).unwrap();
        assert_eq!(streams.len(), 1);
        assert_eq!(streams[0].len(), t.frame_len(3));
    }

    #[test]
    fn total_power_is_unity() {
        for mcs in [0u8, 3, 8, 11] {
            let t = tx(mcs);
            let streams = t.transmit(&[0xA5; 200]).unwrap();
            let total: f64 = streams.iter().map(|s| mean_power(s)).sum();
            assert!(
                (total - 1.0).abs() < 0.12,
                "MCS{mcs}: total mean power {total}"
            );
        }
    }

    #[test]
    fn frame_starts_with_lstf() {
        let t = tx(8);
        let streams = t.transmit(&[0u8; 10]).unwrap();
        let want = lstf_time(0, 2);
        let scale = 1.0 / 2f64.sqrt();
        for i in 0..160 {
            assert!(streams[0][i].dist(want[i].scale(scale)) < 1e-9);
        }
    }

    #[test]
    fn rejects_bad_psdu() {
        let t = tx(0);
        assert_eq!(t.transmit(&[]), Err(TxError::EmptyPsdu));
        let big = vec![0u8; 70_000];
        assert_eq!(t.transmit(&big), Err(TxError::PsduTooLong(70_000)));
    }

    #[test]
    fn stream_parser_round_robin() {
        // QPSK: s = 1 → strict alternation.
        let bits: Vec<u8> = (0..8).map(|i| (i % 2) as u8).collect();
        let out = parse_streams(&bits, 2, 2);
        assert_eq!(out[0], vec![0, 0, 0, 0]);
        assert_eq!(out[1], vec![1, 1, 1, 1]);
        // 64-QAM: s = 3 → groups of three.
        let bits: Vec<u8> = (0..12).map(|i| (i / 3 % 2) as u8).collect();
        let out = parse_streams(&bits, 2, 6);
        assert_eq!(out[0], vec![0, 0, 0, 0, 0, 0]);
        assert_eq!(out[1], vec![1, 1, 1, 1, 1, 1]);
    }

    #[test]
    fn stream_parser_single_stream_is_identity() {
        let bits: Vec<u8> = (0..26).map(|i| (i % 2) as u8).collect();
        assert_eq!(parse_streams(&bits, 1, 4)[0], bits);
    }

    #[test]
    fn deparse_inverts_parse() {
        for n_bpsc in [1usize, 2, 4, 6] {
            let s = (n_bpsc / 2).max(1);
            let n = 2 * s * 10;
            let bits: Vec<u8> = (0..n).map(|i| ((i * 7) % 2) as u8).collect();
            let parsed = parse_streams(&bits, 2, n_bpsc);
            let soft: Vec<Vec<f64>> = parsed
                .iter()
                .map(|v| v.iter().map(|&b| if b == 0 { 1.0 } else { -1.0 }).collect())
                .collect();
            let merged = deparse_streams_soft(&soft, n_bpsc);
            let hard: Vec<u8> = merged
                .iter()
                .map(|&l| if l > 0.0 { 0 } else { 1 })
                .collect();
            assert_eq!(hard, bits, "n_bpsc {n_bpsc}");
        }
    }

    #[test]
    fn different_seeds_give_different_waveforms() {
        let mut cfg = TxConfig::new(8).unwrap();
        cfg.scrambler_seed = 0x11;
        let t1 = Transmitter::new(cfg.clone());
        cfg.scrambler_seed = 0x12;
        let t2 = Transmitter::new(cfg);
        let a = t1.transmit(&[0xFFu8; 50]).unwrap();
        let b = t2.transmit(&[0xFFu8; 50]).unwrap();
        // Preambles identical...
        for i in 0..PRE_HT_LEN {
            assert!(a[0][i].dist(b[0][i]) < 1e-12);
        }
        // ...data differs.
        let data_start = PRE_HT_LEN + 80 + 160;
        let diff: f64 = (data_start..a[0].len())
            .map(|i| a[0][i].dist(b[0][i]))
            .sum();
        assert!(diff > 1.0);
    }
}
