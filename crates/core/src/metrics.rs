//! BER / PER / throughput instrumentation — the measurement layer the
//! paper uses to "validate performance of the software implementation".

/// Accumulates bit-error statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct BerCounter {
    bits: u64,
    errors: u64,
}

impl BerCounter {
    /// Creates an empty counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Compares two equal-length bit slices (0/1 values) and accumulates.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch — comparing misaligned streams would
    /// produce garbage statistics silently. The message carries both
    /// lengths so a panic surfaced through the threaded scheduler's
    /// supervisor (`GraphError::BlockPanicked`) is diagnosable.
    pub fn compare_bits(&mut self, sent: &[u8], received: &[u8]) {
        assert_eq!(
            sent.len(),
            received.len(),
            "bit stream length mismatch: sent {} bits, received {} bits",
            sent.len(),
            received.len()
        );
        self.bits += sent.len() as u64;
        self.errors += sent.iter().zip(received).filter(|(a, b)| a != b).count() as u64;
    }

    /// Compares two equal-length byte slices bitwise.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch, with both lengths in the message (see
    /// [`Self::compare_bits`]).
    pub fn compare_bytes(&mut self, sent: &[u8], received: &[u8]) {
        assert_eq!(
            sent.len(),
            received.len(),
            "byte stream length mismatch: sent {} bytes, received {} bytes",
            sent.len(),
            received.len()
        );
        self.bits += sent.len() as u64 * 8;
        self.errors += sent
            .iter()
            .zip(received)
            .map(|(a, b)| (a ^ b).count_ones() as u64)
            .sum::<u64>();
    }

    /// Marks `n` bits as all errored (for frames that never decoded, when
    /// the caller chooses to count them against BER).
    pub fn add_erased(&mut self, n: u64) {
        self.bits += n;
        self.errors += n;
    }

    /// Total bits compared.
    pub fn bits(&self) -> u64 {
        self.bits
    }

    /// Total bit errors.
    pub fn errors(&self) -> u64 {
        self.errors
    }

    /// Bit error rate; 0 when nothing compared.
    pub fn ber(&self) -> f64 {
        if self.bits == 0 {
            0.0
        } else {
            self.errors as f64 / self.bits as f64
        }
    }

    /// Merges another counter.
    pub fn merge(&mut self, other: &BerCounter) {
        self.bits += other.bits;
        self.errors += other.errors;
    }
}

impl serde::Serialize for BerCounter {
    fn serialize(&self) -> serde::Value {
        serde::Value::object([
            ("bits", self.bits.serialize()),
            ("errors", self.errors.serialize()),
            ("ber", self.ber().serialize()),
        ])
    }
}

/// Accumulates packet-error statistics with per-failure-class attribution.
#[derive(Clone, Copy, Debug, Default)]
pub struct PerCounter {
    sent: u64,
    ok: u64,
    /// Frame never detected / sync failed.
    sync_failures: u64,
    /// SIGNAL field (L-SIG/HT-SIG) decode failures.
    header_failures: u64,
    /// Decoded but FCS mismatch.
    fcs_failures: u64,
}

impl PerCounter {
    /// Creates an empty counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a delivered frame.
    pub fn record_ok(&mut self) {
        self.sent += 1;
        self.ok += 1;
    }

    /// Records a detection/synchronization loss.
    pub fn record_sync_failure(&mut self) {
        self.sent += 1;
        self.sync_failures += 1;
    }

    /// Records a SIGNAL-field failure.
    pub fn record_header_failure(&mut self) {
        self.sent += 1;
        self.header_failures += 1;
    }

    /// Records a payload (FCS) failure.
    pub fn record_fcs_failure(&mut self) {
        self.sent += 1;
        self.fcs_failures += 1;
    }

    /// Frames transmitted.
    pub fn sent(&self) -> u64 {
        self.sent
    }

    /// Frames delivered intact.
    pub fn ok(&self) -> u64 {
        self.ok
    }

    /// Sync-class failures.
    pub fn sync_failures(&self) -> u64 {
        self.sync_failures
    }

    /// Header-class failures.
    pub fn header_failures(&self) -> u64 {
        self.header_failures
    }

    /// FCS-class failures.
    pub fn fcs_failures(&self) -> u64 {
        self.fcs_failures
    }

    /// Packet error rate; 0 when nothing sent.
    pub fn per(&self) -> f64 {
        if self.sent == 0 {
            0.0
        } else {
            (self.sent - self.ok) as f64 / self.sent as f64
        }
    }

    /// Goodput in Mb/s given the payload size and PHY rate: successful
    /// payload bits over the airtime of all transmitted frames.
    pub fn goodput_mbps(&self, payload_octets: usize, frame_airtime_us: f64) -> f64 {
        if self.sent == 0 || frame_airtime_us <= 0.0 {
            return 0.0;
        }
        (self.ok as f64 * payload_octets as f64 * 8.0) / (self.sent as f64 * frame_airtime_us)
    }

    /// Merges another counter.
    pub fn merge(&mut self, other: &PerCounter) {
        self.sent += other.sent;
        self.ok += other.ok;
        self.sync_failures += other.sync_failures;
        self.header_failures += other.header_failures;
        self.fcs_failures += other.fcs_failures;
    }
}

impl serde::Serialize for PerCounter {
    fn serialize(&self) -> serde::Value {
        serde::Value::object([
            ("sent", self.sent.serialize()),
            ("ok", self.ok.serialize()),
            ("sync_failures", self.sync_failures.serialize()),
            ("header_failures", self.header_failures.serialize()),
            ("fcs_failures", self.fcs_failures.serialize()),
            ("per", self.per().serialize()),
        ])
    }
}

/// Fault-and-recovery instrumentation for chaos experiments: how much
/// damage a fault schedule did and, separately, how the link performed on
/// frames inside versus after the fault window. The headline number is
/// [`Self::post_fault_recovery`] — the fraction of post-window frames
/// delivered intact, the "link comes back when the interference stops"
/// metric the chaos suite asserts on.
#[derive(Clone, Copy, Debug, Default)]
pub struct RecoveryCounter {
    fault_events: u64,
    rescans: u64,
    faulted_sent: u64,
    faulted_ok: u64,
    post_fault_sent: u64,
    post_fault_ok: u64,
}

impl RecoveryCounter {
    /// Creates an empty counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `n` injected fault events.
    pub fn record_events(&mut self, n: u64) {
        self.fault_events += n;
    }

    /// Records `n` error-driven receiver re-scans.
    pub fn record_rescans(&mut self, n: u64) {
        self.rescans += n;
    }

    /// Records a frame whose samples overlapped the fault window.
    pub fn record_faulted(&mut self, ok: bool) {
        self.faulted_sent += 1;
        self.faulted_ok += u64::from(ok);
    }

    /// Records a frame transmitted entirely after the fault window.
    pub fn record_post_fault(&mut self, ok: bool) {
        self.post_fault_sent += 1;
        self.post_fault_ok += u64::from(ok);
    }

    /// Injected fault events.
    pub fn fault_events(&self) -> u64 {
        self.fault_events
    }

    /// Receiver re-scans.
    pub fn rescans(&self) -> u64 {
        self.rescans
    }

    /// Frames overlapping the fault window: (sent, delivered).
    pub fn faulted(&self) -> (u64, u64) {
        (self.faulted_sent, self.faulted_ok)
    }

    /// Frames after the fault window: (sent, delivered).
    pub fn post_fault(&self) -> (u64, u64) {
        (self.post_fault_sent, self.post_fault_ok)
    }

    /// Delivered fraction of post-window frames; 1.0 when none were sent
    /// (no post-window traffic means nothing failed to recover).
    pub fn post_fault_recovery(&self) -> f64 {
        if self.post_fault_sent == 0 {
            1.0
        } else {
            self.post_fault_ok as f64 / self.post_fault_sent as f64
        }
    }

    /// Merges another counter.
    pub fn merge(&mut self, other: &RecoveryCounter) {
        self.fault_events += other.fault_events;
        self.rescans += other.rescans;
        self.faulted_sent += other.faulted_sent;
        self.faulted_ok += other.faulted_ok;
        self.post_fault_sent += other.post_fault_sent;
        self.post_fault_ok += other.post_fault_ok;
    }
}

impl serde::Serialize for RecoveryCounter {
    fn serialize(&self) -> serde::Value {
        serde::Value::object([
            ("fault_events", self.fault_events.serialize()),
            ("rescans", self.rescans.serialize()),
            ("faulted_sent", self.faulted_sent.serialize()),
            ("faulted_ok", self.faulted_ok.serialize()),
            ("post_fault_sent", self.post_fault_sent.serialize()),
            ("post_fault_ok", self.post_fault_ok.serialize()),
            (
                "post_fault_recovery",
                self.post_fault_recovery().serialize(),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ber_counting() {
        let mut c = BerCounter::new();
        c.compare_bits(&[0, 1, 1, 0], &[0, 1, 0, 0]);
        assert_eq!(c.bits(), 4);
        assert_eq!(c.errors(), 1);
        assert!((c.ber() - 0.25).abs() < 1e-12);
        c.compare_bytes(&[0xFF], &[0x0F]);
        assert_eq!(c.bits(), 12);
        assert_eq!(c.errors(), 5);
    }

    #[test]
    fn ber_empty_and_erased() {
        let mut c = BerCounter::new();
        assert_eq!(c.ber(), 0.0);
        c.add_erased(10);
        assert_eq!(c.ber(), 1.0);
    }

    #[test]
    fn ber_merge() {
        let mut a = BerCounter::new();
        a.compare_bits(&[0, 0], &[1, 0]);
        let mut b = BerCounter::new();
        b.compare_bits(&[1, 1], &[1, 1]);
        a.merge(&b);
        assert_eq!(a.bits(), 4);
        assert_eq!(a.errors(), 1);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn ber_rejects_misaligned() {
        BerCounter::new().compare_bits(&[0], &[0, 1]);
    }

    #[test]
    fn per_attribution() {
        let mut p = PerCounter::new();
        p.record_ok();
        p.record_ok();
        p.record_sync_failure();
        p.record_header_failure();
        p.record_fcs_failure();
        assert_eq!(p.sent(), 5);
        assert_eq!(p.ok(), 2);
        assert!((p.per() - 0.6).abs() < 1e-12);
        assert_eq!(p.sync_failures(), 1);
        assert_eq!(p.header_failures(), 1);
        assert_eq!(p.fcs_failures(), 1);
    }

    #[test]
    fn goodput() {
        let mut p = PerCounter::new();
        for _ in 0..8 {
            p.record_ok();
        }
        for _ in 0..2 {
            p.record_fcs_failure();
        }
        // 8 of 10 frames × 1500 B over 100 µs airtime each:
        // 8*12000 bits / 1000 µs = 96 Mb/s.
        let g = p.goodput_mbps(1500, 100.0);
        assert!((g - 96.0).abs() < 1e-9);
        assert_eq!(PerCounter::new().goodput_mbps(100, 100.0), 0.0);
    }

    #[test]
    fn recovery_counting_and_merge() {
        let mut r = RecoveryCounter::new();
        assert_eq!(r.post_fault_recovery(), 1.0, "vacuous recovery is 1.0");
        r.record_events(3);
        r.record_rescans(2);
        r.record_faulted(false);
        r.record_faulted(true);
        r.record_post_fault(true);
        r.record_post_fault(true);
        r.record_post_fault(false);
        assert_eq!(r.fault_events(), 3);
        assert_eq!(r.rescans(), 2);
        assert_eq!(r.faulted(), (2, 1));
        assert_eq!(r.post_fault(), (3, 2));
        assert!((r.post_fault_recovery() - 2.0 / 3.0).abs() < 1e-12);
        let mut other = RecoveryCounter::new();
        other.record_post_fault(true);
        r.merge(&other);
        assert_eq!(r.post_fault(), (4, 3));
    }

    #[test]
    fn per_merge() {
        let mut a = PerCounter::new();
        a.record_ok();
        let mut b = PerCounter::new();
        b.record_sync_failure();
        a.merge(&b);
        assert_eq!(a.sent(), 2);
        assert!((a.per() - 0.5).abs() < 1e-12);
    }
}
