//! # mimonet
//!
//! The MIMONet MIMO-OFDM spatial-multiplexing transceiver — a Rust
//! reproduction of "MIMO-OFDM spatial multiplexing technique
//! implementation for GNU radio" (Martelli, Kocian, Santi, Gardellin,
//! SRIF '14).
//!
//! * [`tx`] / [`rx`] — the full 802.11n-mixed-format transmit and receive
//!   chains over 1 or 2 spatial streams,
//! * [`config`] — MCS, detector, and receiver-feature knobs,
//! * `link` — the Monte-Carlo link simulator with BER/PER/SNR
//!   instrumentation,
//! * `blocks` — flowgraph block wrappers for the GNU-Radio-like
//!   `mimonet-runtime`,
//! * [`adapt`] — SNR-threshold link adaptation with hysteresis and loss
//!   fallback,
//! * [`sweep`] — the deterministic parallel Monte-Carlo sweep engine
//!   every figure binary runs on,
//! * [`chaos`] — multi-frame captures under seeded fault schedules, with
//!   recovery accounting (the robustness test harness),
//! * [`telemetry`] — RX-stage timing spans and the frame-outcome taxonomy
//!   (every lost frame attributed to a named pipeline stage); pairs with
//!   `mimonet_runtime::telemetry` for per-block scheduler counters,
//! * [`scenario`] — the network-scale scenario engine: K concurrent links
//!   with per-link channel presets, mobility, faults, rate adaptation and
//!   cross-link interference, executed deterministically on [`sweep`],
//! * [`seedtree`] — the canonical seed-derivation tree shared by every
//!   seeded subsystem (re-exported from `mimonet_dsp`).

pub mod adapt;
pub mod blocks;
pub mod chaos;
pub mod config;
pub mod link;
pub mod metrics;
pub mod rx;
pub mod rx_reference;
pub mod scenario;
pub mod sweep;
pub mod telemetry;
pub mod tx;

/// Canonical seed derivations — one tree for sweep points, chaos trials,
/// fault schedules and scenario links. Lives in `mimonet_dsp` so the
/// channel crate can share it; re-exported here as the public face.
pub use mimonet_dsp::seedtree;

pub use adapt::{RateController, SnrThresholdTable};
pub use blocks::{build_link_flowgraph, ChannelBlock, RxBlock, TxBlock};
pub use chaos::{chaos_shard, run_chaos, run_chaos_capture, ChaosConfig};
pub use config::{RxConfig, TxConfig};
pub use link::{LinkConfig, LinkSim, LinkStats};
pub use metrics::{BerCounter, PerCounter, RecoveryCounter};
pub use rx::{with_workspace, Receiver, RxError, RxFrame, RxWorkspace, ScanStats, MAX_FRAME_SPAN};
pub use rx_reference::ReferenceReceiver;
pub use sweep::{run_link, run_link_until_errors, Merge, ShardCtx, SweepResult, SweepSpec};
pub use telemetry::{
    FrameOutcomes, RxCaptureProfile, RxStage, StageClock, StageProfile, STAGE_COUNT,
};
pub use tx::{Transmitter, TxError};
