//! # mimonet
//!
//! The MIMONet MIMO-OFDM spatial-multiplexing transceiver — a Rust
//! reproduction of "MIMO-OFDM spatial multiplexing technique
//! implementation for GNU radio" (Martelli, Kocian, Santi, Gardellin,
//! SRIF '14).
//!
//! * [`tx`] / [`rx`] — the full 802.11n-mixed-format transmit and receive
//!   chains over 1 or 2 spatial streams,
//! * [`config`] — MCS, detector, and receiver-feature knobs,
//! * `link` — the Monte-Carlo link simulator with BER/PER/SNR
//!   instrumentation,
//! * `blocks` — flowgraph block wrappers for the GNU-Radio-like
//!   `mimonet-runtime`,
//! * [`adapt`] — SNR-threshold link adaptation with hysteresis and loss
//!   fallback,
//! * [`sweep`] — the deterministic parallel Monte-Carlo sweep engine
//!   every figure binary runs on.

pub mod adapt;
pub mod blocks;
pub mod config;
pub mod link;
pub mod metrics;
pub mod rx;
pub mod sweep;
pub mod tx;

pub use adapt::{RateController, SnrThresholdTable};
pub use blocks::{build_link_flowgraph, ChannelBlock, RxBlock, TxBlock};
pub use config::{RxConfig, TxConfig};
pub use link::{LinkConfig, LinkSim, LinkStats};
pub use metrics::{BerCounter, PerCounter};
pub use rx::{Receiver, RxError, RxFrame};
pub use sweep::{run_link, run_link_until_errors, Merge, ShardCtx, SweepResult, SweepSpec};
pub use tx::{Transmitter, TxError};
