//! Parallel Monte-Carlo sweep engine.
//!
//! Every figure in EXPERIMENTS.md is a sweep: a grid of points (SNR,
//! detector, payload size, …) with a few hundred seeded trials per point.
//! This module is the single execution path for all of them, replacing
//! the hand-rolled serial `for point { for trial { .. } }` loops that had
//! drifted across the 16 bench binaries.
//!
//! # Determinism
//!
//! Results are **bit-identical for any worker-thread count**. Three
//! mechanisms combine to guarantee that:
//!
//! 1. Trials are grouped into fixed-size *shards* whose boundaries depend
//!    only on the spec (`shard_size`), never on the thread count.
//! 2. Every shard's RNG seed is derived purely from
//!    `(spec.seed, point_index, shard_index)` via SplitMix64 mixing — the
//!    "`seed ^ hash(point)`" scheme: the spec seed is XOR-combined with a
//!    hash of the point/shard coordinates.
//! 3. Per-shard statistics are folded **in shard order** (a completion
//!    frontier per point), so floating-point merges see the same operand
//!    order regardless of which worker finished first.
//!
//! Early stopping ([`SweepSpec::run_until`]) is also deterministic: a
//! point stops after the first shard — in shard order — whose cumulative
//! statistics satisfy the predicate. Workers that already started a
//! later shard simply have their result discarded, so the answer never
//! depends on scheduling.
//!
//! # Example
//!
//! ```
//! use mimonet::link::{LinkConfig, LinkStats};
//! use mimonet::sweep::SweepSpec;
//! use mimonet_channel::ChannelConfig;
//!
//! let points: Vec<f64> = vec![10.0, 20.0];
//! let spec = SweepSpec::new("doc", points, 8).seed(7).threads(2);
//! let result = spec.run(|&snr, ctx, stats: &mut LinkStats| {
//!     let cfg = LinkConfig::new(8, 64, ChannelConfig::awgn(2, 2, snr));
//!     mimonet::sweep::link_shard(cfg, ctx, stats);
//! });
//! assert_eq!(result.stats.len(), 2);
//! assert_eq!(result.stats[1].per.sent(), 8);
//! ```

use crate::link::{LinkConfig, LinkSim, LinkStats};
use crate::metrics::{BerCounter, PerCounter};
use mimonet_dsp::stats::Running;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Statistics that can be combined across shards.
///
/// `merge` must be associative enough that folding per-shard values in a
/// fixed order reproduces the single-threaded result — which is exactly
/// how the engine calls it.
pub trait Merge: Default + Send {
    /// Folds `other` (a later shard, in shard order) into `self`.
    fn merge(&mut self, other: &Self);
}

impl Merge for BerCounter {
    fn merge(&mut self, other: &Self) {
        BerCounter::merge(self, other)
    }
}

impl Merge for PerCounter {
    fn merge(&mut self, other: &Self) {
        PerCounter::merge(self, other)
    }
}

impl Merge for Running {
    fn merge(&mut self, other: &Self) {
        Running::merge(self, other)
    }
}

impl Merge for crate::metrics::RecoveryCounter {
    fn merge(&mut self, other: &Self) {
        crate::metrics::RecoveryCounter::merge(self, other)
    }
}

impl Merge for LinkStats {
    fn merge(&mut self, other: &Self) {
        LinkStats::merge(self, other)
    }
}

/// Plain counters merge by summation.
impl Merge for u64 {
    fn merge(&mut self, other: &Self) {
        *self += other;
    }
}

impl Merge for f64 {
    fn merge(&mut self, other: &Self) {
        *self += other;
    }
}

impl<T: Merge, U: Merge> Merge for (T, U) {
    fn merge(&mut self, other: &Self) {
        self.0.merge(&other.0);
        self.1.merge(&other.1);
    }
}

impl<T: Merge, U: Merge, V: Merge> Merge for (T, U, V) {
    fn merge(&mut self, other: &Self) {
        self.0.merge(&other.0);
        self.1.merge(&other.1);
        self.2.merge(&other.2);
    }
}

impl<T: Merge, const N: usize> Merge for [T; N]
where
    [T; N]: Default,
{
    fn merge(&mut self, other: &Self) {
        for (a, b) in self.iter_mut().zip(other) {
            a.merge(b);
        }
    }
}

/// Element-wise merge; an empty side adopts the other wholesale (so the
/// `Default` identity works for any length).
impl<T: Merge + Clone> Merge for Vec<T> {
    fn merge(&mut self, other: &Self) {
        if self.is_empty() {
            *self = other.clone();
            return;
        }
        assert_eq!(
            self.len(),
            other.len(),
            "merging Vec stats of different lengths"
        );
        for (a, b) in self.iter_mut().zip(other) {
            a.merge(b);
        }
    }
}

/// SplitMix64 finalizer — the hash behind the seed-derivation scheme.
/// Re-exported from [`mimonet_dsp::seedtree`], the canonical home of all
/// seed derivations; kept here so existing callers keep compiling.
pub use mimonet_dsp::seedtree::mix;

/// Derives the per-point seed: `spec_seed ^ hash(point_index)`.
/// Re-exported from [`mimonet_dsp::seedtree`].
pub use mimonet_dsp::seedtree::point_seed;

/// Derives the per-shard seed from the point seed and shard index.
/// Re-exported from [`mimonet_dsp::seedtree`].
pub use mimonet_dsp::seedtree::shard_seed;

/// Context handed to the shard worker closure.
#[derive(Clone, Copy, Debug)]
pub struct ShardCtx {
    /// Index of the point in `SweepSpec::points`.
    pub point_index: usize,
    /// Index of this shard within the point.
    pub shard_index: usize,
    /// Deterministic seed for this shard's RNG streams.
    pub seed: u64,
    /// Number of trials this shard must run.
    pub trials: usize,
    /// Global index (within the point) of the shard's first trial.
    pub trial_offset: usize,
}

/// Live progress snapshot passed to the progress callback.
#[derive(Clone, Copy, Debug)]
pub struct Progress {
    /// Shards completed so far (across all points).
    pub shards_done: usize,
    /// Total shards the sweep scheduled.
    pub total_shards: usize,
    /// Trials completed so far.
    pub trials_done: usize,
    /// Wall-clock time since the sweep started.
    pub elapsed: Duration,
}

impl Progress {
    /// Aggregate trial throughput so far.
    pub fn trials_per_sec(&self) -> f64 {
        let s = self.elapsed.as_secs_f64();
        if s > 0.0 {
            self.trials_done as f64 / s
        } else {
            0.0
        }
    }
}

/// Options for [`SweepSpec::run_opts`].
pub struct RunOpts<'a, S> {
    /// Early-stop predicate on a point's cumulative statistics, checked
    /// after each in-order shard fold.
    pub stop: Option<&'a (dyn Fn(&S) -> bool + Sync)>,
    /// Called after every completed shard (from worker threads).
    pub progress: Option<&'a (dyn Fn(Progress) + Sync)>,
}

impl<S> Default for RunOpts<'_, S> {
    fn default() -> Self {
        Self {
            stop: None,
            progress: None,
        }
    }
}

/// A declarative Monte-Carlo sweep: a grid of points × trials per point.
#[derive(Clone, Debug)]
pub struct SweepSpec<P> {
    /// Name for diagnostics and report files.
    pub name: String,
    /// The sweep grid.
    pub points: Vec<P>,
    /// Trials per point.
    pub trials: usize,
    /// Trials per shard (the unit of parallel work); fixed independently
    /// of thread count to keep results thread-count-invariant.
    pub shard_size: usize,
    /// Master seed; every shard seed is derived from it.
    pub seed: u64,
    /// Worker threads; 0 = one per available CPU.
    pub threads: usize,
}

impl<P> SweepSpec<P> {
    /// A sweep over `points` with `trials` per point and default
    /// sharding (32 trials/shard), seed 0, auto thread count.
    pub fn new(name: impl Into<String>, points: Vec<P>, trials: usize) -> Self {
        Self {
            name: name.into(),
            points,
            trials,
            shard_size: 32,
            seed: 0,
            threads: 0,
        }
    }

    /// Sets the master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the worker-thread count (0 = auto).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the shard size. Changing this changes RNG stream boundaries
    /// (and therefore exact statistics); changing `threads` does not.
    pub fn shard_size(mut self, shard_size: usize) -> Self {
        assert!(shard_size > 0, "shard_size must be positive");
        self.shard_size = shard_size;
        self
    }

    fn shards_per_point(&self) -> usize {
        self.trials.div_ceil(self.shard_size)
    }

    fn shard_trials(&self, shard_index: usize) -> usize {
        let spp = self.shards_per_point();
        if shard_index + 1 == spp {
            self.trials - shard_index * self.shard_size
        } else {
            self.shard_size
        }
    }

    fn resolve_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }

    /// Runs the full sweep.
    pub fn run<S, F>(&self, shard_fn: F) -> SweepResult<S>
    where
        P: Sync,
        S: Merge,
        F: Fn(&P, &ShardCtx, &mut S) + Sync,
    {
        self.run_opts(shard_fn, RunOpts::default())
    }

    /// Runs with early stopping: a point finishes after the first shard
    /// (in shard order) whose cumulative statistics satisfy `stop`.
    pub fn run_until<S, F, Q>(&self, shard_fn: F, stop: Q) -> SweepResult<S>
    where
        P: Sync,
        S: Merge,
        F: Fn(&P, &ShardCtx, &mut S) + Sync,
        Q: Fn(&S) -> bool + Sync,
    {
        self.run_opts(
            shard_fn,
            RunOpts {
                stop: Some(&stop),
                progress: None,
            },
        )
    }

    /// The engine: scoped worker pool over an atomic task queue, with
    /// per-point in-order folding.
    pub fn run_opts<S, F>(&self, shard_fn: F, opts: RunOpts<'_, S>) -> SweepResult<S>
    where
        P: Sync,
        S: Merge,
        F: Fn(&P, &ShardCtx, &mut S) + Sync,
    {
        struct PointState<S> {
            /// Completed shards not yet folded, indexed by shard.
            pending: Vec<Option<S>>,
            /// Next shard index to fold.
            frontier: usize,
            /// Cumulative statistics over folded shards.
            merged: S,
            /// Inclusive index of the shard whose fold satisfied `stop`.
            stop_at: Option<usize>,
            /// Trials represented in `merged`.
            folded_trials: usize,
        }

        let start = Instant::now();
        let spp = self.shards_per_point();
        let n_points = self.points.len();
        let total_shards = n_points * spp;
        let threads = self.resolve_threads();

        let states: Vec<Mutex<PointState<S>>> = (0..n_points)
            .map(|_| {
                Mutex::new(PointState {
                    pending: (0..spp).map(|_| None).collect(),
                    frontier: 0,
                    merged: S::default(),
                    stop_at: None,
                    folded_trials: 0,
                })
            })
            .collect();

        let next_task = AtomicUsize::new(0);
        let shards_done = AtomicUsize::new(0);
        let trials_done = AtomicUsize::new(0);

        std::thread::scope(|scope| {
            for _ in 0..threads.max(1) {
                scope.spawn(|| loop {
                    let task = next_task.fetch_add(1, Ordering::Relaxed);
                    if task >= total_shards {
                        break;
                    }
                    let (p, s) = (task / spp, task % spp);

                    // Skip shards past a point's deterministic stop index.
                    {
                        let state = states[p].lock().unwrap();
                        if state.stop_at.is_some_and(|at| s > at) {
                            continue;
                        }
                    }

                    let ctx = ShardCtx {
                        point_index: p,
                        shard_index: s,
                        seed: shard_seed(self.seed, p, s),
                        trials: self.shard_trials(s),
                        trial_offset: s * self.shard_size,
                    };
                    let mut stats = S::default();
                    shard_fn(&self.points[p], &ctx, &mut stats);

                    {
                        let mut state = states[p].lock().unwrap();
                        if state.stop_at.is_some_and(|at| s > at) {
                            continue; // raced with a stop decision
                        }
                        state.pending[s] = Some(stats);
                        // Fold the contiguous completed prefix, in order.
                        while state.stop_at.is_none()
                            && state.frontier < spp
                            && state.pending[state.frontier].is_some()
                        {
                            let f = state.frontier;
                            let shard = state.pending[f].take().expect("checked above");
                            state.merged.merge(&shard);
                            state.folded_trials += self.shard_trials(f);
                            if let Some(stop) = opts.stop {
                                if stop(&state.merged) {
                                    state.stop_at = Some(f);
                                }
                            }
                            state.frontier += 1;
                        }
                    }

                    let done = shards_done.fetch_add(1, Ordering::Relaxed) + 1;
                    let trials = trials_done.fetch_add(ctx.trials, Ordering::Relaxed) + ctx.trials;
                    if let Some(progress) = opts.progress {
                        progress(Progress {
                            shards_done: done,
                            total_shards,
                            trials_done: trials,
                            elapsed: start.elapsed(),
                        });
                    }
                });
            }
        });

        let mut stats = Vec::with_capacity(n_points);
        let mut trials_run = Vec::with_capacity(n_points);
        for state in states {
            let state = state.into_inner().unwrap();
            debug_assert!(
                state.stop_at.is_some() || state.frontier == spp || self.trials == 0,
                "sweep finished with unfolded shards"
            );
            stats.push(state.merged);
            trials_run.push(state.folded_trials);
        }

        SweepResult {
            stats,
            trials_run,
            wall: start.elapsed(),
            threads,
            total_shards,
        }
    }
}

/// Aggregated outcome of a sweep.
#[derive(Clone, Debug)]
pub struct SweepResult<S> {
    /// Final statistics per point (same order as `SweepSpec::points`).
    pub stats: Vec<S>,
    /// Trials actually folded per point (less than `spec.trials` when
    /// early stopping triggered).
    pub trials_run: Vec<usize>,
    /// Wall-clock duration of the sweep.
    pub wall: Duration,
    /// Worker threads used.
    pub threads: usize,
    /// Shards scheduled.
    pub total_shards: usize,
}

impl<S> SweepResult<S> {
    /// Total trials folded across all points.
    pub fn total_trials(&self) -> usize {
        self.trials_run.iter().sum()
    }

    /// Aggregate trials/second over the whole sweep.
    pub fn trials_per_sec(&self) -> f64 {
        let s = self.wall.as_secs_f64();
        if s > 0.0 {
            self.total_trials() as f64 / s
        } else {
            0.0
        }
    }
}

/// Standard shard body for link-level sweeps: a fresh seeded [`LinkSim`]
/// per shard running `ctx.trials` frames into `stats`.
pub fn link_shard(cfg: LinkConfig, ctx: &ShardCtx, stats: &mut LinkStats) {
    let mut sim = LinkSim::new(cfg, ctx.seed);
    for _ in 0..ctx.trials {
        sim.run_frame(stats);
    }
}

/// Runs a link-config sweep to completion.
pub fn run_link(spec: &SweepSpec<LinkConfig>) -> SweepResult<LinkStats> {
    spec.run(|cfg, ctx, stats| link_shard(cfg.clone(), ctx, stats))
}

/// Runs a link-config sweep with BER-style early stopping: each point
/// finishes once `min_bit_errors` payload bit errors have accumulated
/// (checked at shard granularity), or its trial budget is exhausted.
pub fn run_link_until_errors(
    spec: &SweepSpec<LinkConfig>,
    min_bit_errors: u64,
) -> SweepResult<LinkStats> {
    spec.run_until(
        |cfg, ctx, stats| link_shard(cfg.clone(), ctx, stats),
        move |s: &LinkStats| s.payload_ber.errors() >= min_bit_errors,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use mimonet_channel::ChannelConfig;

    fn tiny_spec(threads: usize) -> SweepSpec<f64> {
        SweepSpec::new("test", vec![8.0, 14.0, 30.0], 12)
            .seed(99)
            .shard_size(4)
            .threads(threads)
    }

    fn run_tiny(threads: usize) -> SweepResult<LinkStats> {
        tiny_spec(threads).run(|&snr, ctx, stats| {
            link_shard(
                LinkConfig::new(8, 40, ChannelConfig::awgn(2, 2, snr)),
                ctx,
                stats,
            )
        })
    }

    #[test]
    fn all_points_run_all_trials() {
        let r = run_tiny(2);
        assert_eq!(r.stats.len(), 3);
        assert_eq!(r.trials_run, vec![12, 12, 12]);
        for s in &r.stats {
            assert_eq!(s.per.sent(), 12);
        }
        assert_eq!(r.total_trials(), 36);
        assert!(r.trials_per_sec() > 0.0);
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let a = run_tiny(1);
        let b = run_tiny(3);
        for (x, y) in a.stats.iter().zip(&b.stats) {
            assert_eq!(x.per.ok(), y.per.ok());
            assert_eq!(x.payload_ber.errors(), y.payload_ber.errors());
            assert_eq!(x.snr_est_db.mean().to_bits(), y.snr_est_db.mean().to_bits());
            assert_eq!(
                x.cfo_error.variance().to_bits(),
                y.cfo_error.variance().to_bits()
            );
        }
    }

    #[test]
    fn early_stop_is_deterministic_and_bounded() {
        // Stop each point after >= 20 sent frames (i.e. 2 shards of 16...
        // here 5 shards of 4 → stops at shard index 4 with 20 trials).
        let run = |threads| {
            SweepSpec::new("stop", vec![5.0], 400)
                .seed(3)
                .shard_size(4)
                .threads(threads)
                .run_until(
                    |&snr: &f64, ctx, stats: &mut LinkStats| {
                        link_shard(
                            LinkConfig::new(8, 40, ChannelConfig::awgn(2, 2, snr)),
                            ctx,
                            stats,
                        )
                    },
                    |s: &LinkStats| s.per.sent() >= 20,
                )
        };
        let a = run(1);
        let b = run(8);
        assert_eq!(a.trials_run, vec![20]);
        assert_eq!(b.trials_run, vec![20]);
        assert_eq!(a.stats[0].per.ok(), b.stats[0].per.ok());
        assert!(a.stats[0].per.sent() == 20);
    }

    #[test]
    fn progress_callback_reaches_total() {
        let max_seen = std::sync::atomic::AtomicUsize::new(0);
        let spec = tiny_spec(2);
        spec.run_opts(
            |&snr: &f64, ctx, stats: &mut LinkStats| {
                link_shard(
                    LinkConfig::new(8, 40, ChannelConfig::awgn(2, 2, snr)),
                    ctx,
                    stats,
                )
            },
            RunOpts {
                stop: None,
                progress: Some(&|p: Progress| {
                    max_seen.fetch_max(p.shards_done, Ordering::Relaxed);
                    assert!(p.total_shards == 9);
                }),
            },
        );
        assert_eq!(max_seen.load(Ordering::Relaxed), 9);
    }

    #[test]
    fn seed_changes_statistics() {
        let base = tiny_spec(2);
        let a = base.clone().seed(1).run(|&snr, ctx, stats| {
            link_shard(
                LinkConfig::new(8, 40, ChannelConfig::awgn(2, 2, snr)),
                ctx,
                stats,
            )
        });
        let b = base.seed(2).run(|&snr, ctx, stats| {
            link_shard(
                LinkConfig::new(8, 40, ChannelConfig::awgn(2, 2, snr)),
                ctx,
                stats,
            )
        });
        // Same trial counts, different noise realizations.
        assert_eq!(a.stats[0].per.sent(), b.stats[0].per.sent());
        assert_ne!(
            a.stats[0].snr_est_db.mean().to_bits(),
            b.stats[0].snr_est_db.mean().to_bits()
        );
    }

    #[test]
    fn shard_seeds_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for p in 0..10 {
            for s in 0..10 {
                assert!(seen.insert(shard_seed(42, p, s)), "collision at ({p},{s})");
            }
        }
    }

    #[test]
    fn custom_accumulator_types_merge() {
        // Count even trial offsets with a plain u64 accumulator.
        let spec = SweepSpec::new("count", vec![0u8, 1], 10)
            .shard_size(3)
            .threads(2);
        let r = spec.run(|_, ctx, acc: &mut u64| {
            for t in ctx.trial_offset..ctx.trial_offset + ctx.trials {
                if t % 2 == 0 {
                    *acc += 1;
                }
            }
        });
        assert_eq!(r.stats, vec![5, 5]);
    }

    #[test]
    fn zero_points_and_zero_trials_are_fine() {
        let empty: SweepSpec<u8> = SweepSpec::new("empty", vec![], 10);
        let r = empty.run(|_, _, _: &mut u64| {});
        assert!(r.stats.is_empty());
        let none = SweepSpec::new("none", vec![1u8], 0);
        let r = none.run(|_, _, acc: &mut u64| *acc += 1);
        assert_eq!(r.stats, vec![0]);
    }
}
