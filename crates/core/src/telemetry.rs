//! RX-chain telemetry: per-stage timing spans and the frame-outcome
//! taxonomy.
//!
//! Two complementary views of the receive pipeline:
//!
//! * [`StageProfile`] — *where the time goes*: wall-clock spans per
//!   pipeline stage ([`RxStage`]), recorded by
//!   [`crate::Receiver::receive_profiled`]. Stage nanoseconds are
//!   wall-clock and therefore excluded from deterministic renderings
//!   (`to_value(false)`); stage call counts are pure functions of the
//!   input and always kept.
//! * [`FrameOutcomes`] — *where the frames go*: every transmitted frame
//!   lands in exactly one terminal class (ok, sync miss, header fail,
//!   detector fail, FEC fail, payload CRC fail), so
//!   `total() == frames sent` and loss is attributable to a named stage
//!   instead of a boolean. Purely counting, hence deterministic and safe
//!   inside [`crate::LinkStats`].
//!
//! Both merge associatively in the [`crate::sweep::Merge`] sense, so they
//! compose with the sharded sweep engine bit-identically at any thread
//! count. The `telemetry-off` feature compiles the stage clock out
//! (counts remain — they are semantics, not telemetry).

use crate::rx::RxError;
use crate::sweep::Merge;

/// The receive pipeline stages a [`StageProfile`] distinguishes — the
/// numbered phases of [`crate::Receiver::receive`] grouped into spans.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RxStage {
    /// STF plateau search + coarse CFO estimate (stage 1).
    Detect = 0,
    /// Coarse CFO correction, fine timing, fine CFO (stages 2–4).
    Sync = 1,
    /// SNR / noise-variance estimation from the L-LTF (stage 5).
    SnrEst = 2,
    /// L-SIG and HT-SIG decode (stage 6).
    Header = 3,
    /// HT-LTF MIMO channel estimation (stage 7).
    ChanEst = 4,
    /// Data symbols: FFT, pilot tracking, MIMO detection, deinterleave
    /// (stages 8–9).
    Equalize = 5,
    /// Depuncture, Viterbi, descramble (stage 10).
    Fec = 6,
}

/// Number of [`RxStage`] variants.
pub const STAGE_COUNT: usize = 7;

impl RxStage {
    /// All stages, pipeline order.
    pub const ALL: [RxStage; STAGE_COUNT] = [
        RxStage::Detect,
        RxStage::Sync,
        RxStage::SnrEst,
        RxStage::Header,
        RxStage::ChanEst,
        RxStage::Equalize,
        RxStage::Fec,
    ];

    /// Short stable name (JSON keys, table rows).
    pub fn name(self) -> &'static str {
        match self {
            RxStage::Detect => "detect",
            RxStage::Sync => "sync",
            RxStage::SnrEst => "snr_est",
            RxStage::Header => "header",
            RxStage::ChanEst => "chanest",
            RxStage::Equalize => "equalize",
            RxStage::Fec => "fec",
        }
    }

    /// The stage a receive error terminates in — the attribution used
    /// when a decode attempt fails partway through the pipeline.
    pub fn of_error(e: &RxError) -> RxStage {
        match e {
            RxError::AntennaMismatch { .. } | RxError::NoPacket => RxStage::Detect,
            RxError::SyncLost | RxError::BufferTooShort => RxStage::Sync,
            RxError::LSig(_) | RxError::HtSig(_) | RxError::TooManyStreams { .. } => {
                RxStage::Header
            }
            RxError::Detector => RxStage::Equalize,
            RxError::Fec => RxStage::Fec,
        }
    }
}

/// Per-stage execution counts and wall-clock spans for the RX pipeline.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StageProfile {
    /// Times each stage ran.
    pub calls: [u64; STAGE_COUNT],
    /// Wall time per stage, ns (all-zero under `telemetry-off`).
    pub ns: [u64; STAGE_COUNT],
}

impl StageProfile {
    /// Records one execution of `stage` taking `ns` nanoseconds.
    pub fn record(&mut self, stage: RxStage, ns: u64) {
        self.calls[stage as usize] += 1;
        self.ns[stage as usize] += ns;
    }

    /// Total stage-span time, ns.
    pub fn total_ns(&self) -> u64 {
        self.ns.iter().sum()
    }

    /// Total stage executions.
    pub fn total_calls(&self) -> u64 {
        self.calls.iter().sum()
    }

    /// Serializes per-stage objects; `include_ns = false` drops the
    /// wall-clock fields (the deterministic rendering).
    pub fn to_value(&self, include_ns: bool) -> serde::Value {
        use serde::Serialize;
        serde::Value::object(RxStage::ALL.map(|s| {
            let mut fields = vec![("calls", self.calls[s as usize].serialize())];
            if include_ns {
                fields.push(("ns", self.ns[s as usize].serialize()));
            }
            (s.name(), serde::Value::object(fields))
        }))
    }

    /// Renders a per-stage table (calls, ms, % of total stage time).
    /// Timing columns are dashed out when the profile carries no spans
    /// (deterministic mode / `telemetry-off`).
    pub fn render_table(&self) -> String {
        let total = self.total_ns();
        let mut out = format!(
            "{:<10} {:>9} {:>10} {:>7}\n",
            "stage", "calls", "ms", "%time"
        );
        out.push_str(&format!("{}\n", "-".repeat(39)));
        for s in RxStage::ALL {
            let ns = self.ns[s as usize];
            let (ms, pct) = if total > 0 {
                (
                    format!("{:10.3}", ns as f64 / 1e6),
                    format!("{:6.1}%", 100.0 * ns as f64 / total as f64),
                )
            } else {
                (format!("{:>10}", "-"), format!("{:>7}", "-"))
            };
            out.push_str(&format!(
                "{:<10} {:>9} {} {}\n",
                s.name(),
                self.calls[s as usize],
                ms,
                pct
            ));
        }
        out
    }
}

impl Merge for StageProfile {
    fn merge(&mut self, other: &Self) {
        for i in 0..STAGE_COUNT {
            self.calls[i] += other.calls[i];
            self.ns[i] += other.ns[i];
        }
    }
}

/// Monotonic lap timer feeding a [`StageProfile`]. Compiled to a pure
/// call-counter under `telemetry-off`.
#[derive(Clone, Copy, Debug)]
pub struct StageClock {
    #[cfg(not(feature = "telemetry-off"))]
    last: std::time::Instant,
}

impl StageClock {
    /// Starts the clock.
    pub fn start() -> Self {
        Self {
            #[cfg(not(feature = "telemetry-off"))]
            last: std::time::Instant::now(),
        }
    }

    /// Ends the span that began at the previous lap (or at `start`),
    /// attributing it to `stage`, and begins the next span.
    pub fn lap(&mut self, profile: &mut StageProfile, stage: RxStage) {
        #[cfg(not(feature = "telemetry-off"))]
        {
            let now = std::time::Instant::now();
            profile.record(stage, now.duration_since(self.last).as_nanos() as u64);
            self.last = now;
        }
        #[cfg(feature = "telemetry-off")]
        profile.record(stage, 0);
    }
}

/// Terminal classification of every transmitted frame — the outcome
/// taxonomy. Each frame lands in exactly one bucket, so
/// [`FrameOutcomes::total`] equals the number of frames sent and frame
/// loss is attributable to a named pipeline stage. All counts, no clocks:
/// deterministic, and safe to serialize inside sweep statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FrameOutcomes {
    /// Delivered intact (FCS passed).
    pub ok: u64,
    /// Never (correctly) detected or synchronized: no STF plateau, lost
    /// sync, truncated buffer.
    pub sync_miss: u64,
    /// L-SIG / HT-SIG decode, CRC or field validation failed — including
    /// a CRC-colliding header announcing the wrong length.
    pub header_fail: u64,
    /// MIMO detection failed (singular channel under ZF).
    pub detector_fail: u64,
    /// Viterbi / descrambler failure in the FEC stage.
    pub fec_fail: u64,
    /// Decoded end to end but the payload was corrupt (FCS mismatch).
    pub payload_fail: u64,
}

impl FrameOutcomes {
    /// Records a delivered frame.
    pub fn record_ok(&mut self) {
        self.ok += 1;
    }

    /// Records a frame that decoded but failed the payload CRC.
    pub fn record_payload_fail(&mut self) {
        self.payload_fail += 1;
    }

    /// Records a frame lost to a pipeline error, classified by stage.
    pub fn record_error(&mut self, e: &RxError) {
        match RxStage::of_error(e) {
            RxStage::Detect | RxStage::Sync | RxStage::SnrEst => self.sync_miss += 1,
            RxStage::Header | RxStage::ChanEst => self.header_fail += 1,
            RxStage::Equalize => self.detector_fail += 1,
            RxStage::Fec => self.fec_fail += 1,
        }
    }

    /// Records a frame lost with no decode attempt to blame — the
    /// detector never fired on it.
    pub fn record_sync_miss(&mut self) {
        self.sync_miss += 1;
    }

    /// Frames accounted for, across every bucket.
    pub fn total(&self) -> u64 {
        self.ok
            + self.sync_miss
            + self.header_fail
            + self.detector_fail
            + self.fec_fail
            + self.payload_fail
    }

    /// Frames in any loss bucket.
    pub fn losses(&self) -> u64 {
        self.total() - self.ok
    }

    /// `(name, count)` rows, taxonomy order.
    pub fn rows(&self) -> [(&'static str, u64); 6] {
        [
            ("ok", self.ok),
            ("sync_miss", self.sync_miss),
            ("header_fail", self.header_fail),
            ("detector_fail", self.detector_fail),
            ("fec_fail", self.fec_fail),
            ("payload_fail", self.payload_fail),
        ]
    }
}

impl Merge for FrameOutcomes {
    fn merge(&mut self, other: &Self) {
        self.ok += other.ok;
        self.sync_miss += other.sync_miss;
        self.header_fail += other.header_fail;
        self.detector_fail += other.detector_fail;
        self.fec_fail += other.fec_fail;
        self.payload_fail += other.payload_fail;
    }
}

impl serde::Serialize for FrameOutcomes {
    fn serialize(&self) -> serde::Value {
        let mut fields: Vec<(&str, serde::Value)> = self
            .rows()
            .iter()
            .map(|&(k, v)| (k, v.serialize()))
            .collect();
        fields.push(("total", self.total().serialize()));
        serde::Value::object(fields)
    }
}

/// Everything one profiled [`crate::Receiver::scan_profiled`] pass
/// records: the aggregated stage spans plus the offset and error of every
/// failed decode attempt — the raw material the chaos harness uses to
/// attribute each lost frame to a stage.
#[derive(Clone, Debug, Default)]
pub struct RxCaptureProfile {
    /// Stage spans aggregated over every decode attempt in the capture.
    pub stages: StageProfile,
    /// `(capture offset, error)` per failed decode attempt, scan order.
    /// The offset is where the failing window began; the frame the
    /// attempt was chewing on starts at or after it.
    pub events: Vec<(usize, RxError)>,
}

impl RxCaptureProfile {
    /// Merges another capture's profile (stage spans add; events append).
    pub fn merge(&mut self, other: &Self) {
        self.stages.merge(&other.stages);
        self.events.extend(other.events.iter().cloned());
    }
}

/// Merge for graph-level snapshots: lives here (not in `mimonet-runtime`)
/// because the [`Merge`] trait belongs to the sweep engine.
impl Merge for mimonet_runtime::GraphSnapshot {
    fn merge(&mut self, other: &Self) {
        mimonet_runtime::GraphSnapshot::merge(self, other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcomes_account_for_every_frame() {
        let mut o = FrameOutcomes::default();
        o.record_ok();
        o.record_payload_fail();
        o.record_error(&RxError::NoPacket);
        o.record_error(&RxError::SyncLost);
        o.record_error(&RxError::HtSig(mimonet_frame::sig::SigError::BadMcs(99)));
        o.record_error(&RxError::Detector);
        o.record_error(&RxError::Fec);
        o.record_sync_miss();
        assert_eq!(o.total(), 8);
        assert_eq!(o.losses(), 7);
        assert_eq!(o.sync_miss, 3);
        assert_eq!(o.header_fail, 1);
        assert_eq!(o.detector_fail, 1);
        assert_eq!(o.fec_fail, 1);
        assert_eq!(o.payload_fail, 1);
    }

    #[test]
    fn outcomes_merge_is_sum() {
        let mut a = FrameOutcomes {
            ok: 1,
            sync_miss: 2,
            ..Default::default()
        };
        let b = FrameOutcomes {
            ok: 3,
            fec_fail: 1,
            ..Default::default()
        };
        Merge::merge(&mut a, &b);
        assert_eq!(a.ok, 4);
        assert_eq!(a.sync_miss, 2);
        assert_eq!(a.fec_fail, 1);
        assert_eq!(a.total(), 7);
    }

    #[test]
    fn stage_profile_records_and_renders() {
        let mut p = StageProfile::default();
        p.record(RxStage::Detect, 1_000_000);
        p.record(RxStage::Fec, 3_000_000);
        p.record(RxStage::Fec, 1_000_000);
        assert_eq!(p.calls[RxStage::Fec as usize], 2);
        assert_eq!(p.total_ns(), 5_000_000);
        let table = p.render_table();
        assert!(table.contains("detect"));
        assert!(table.contains("fec"));
        let det = serde::json::to_string(&p.to_value(false));
        assert!(!det.contains("\"ns\""), "{det}");
        assert!(det.contains("\"calls\":2"));
    }

    #[test]
    fn stage_clock_laps_accumulate() {
        let mut p = StageProfile::default();
        let mut c = StageClock::start();
        c.lap(&mut p, RxStage::Detect);
        c.lap(&mut p, RxStage::Sync);
        assert_eq!(p.calls[RxStage::Detect as usize], 1);
        assert_eq!(p.calls[RxStage::Sync as usize], 1);
    }

    #[test]
    fn error_stage_attribution_covers_every_variant() {
        use RxStage::*;
        let cases: Vec<(RxError, RxStage)> = vec![
            (RxError::NoPacket, Detect),
            (
                RxError::AntennaMismatch {
                    expected: 2,
                    got: 1,
                },
                Detect,
            ),
            (RxError::SyncLost, Sync),
            (RxError::BufferTooShort, Sync),
            (RxError::LSig(mimonet_frame::sig::SigError::Parity), Header),
            (
                RxError::TooManyStreams {
                    streams: 2,
                    antennas: 1,
                },
                Header,
            ),
            (RxError::Detector, Equalize),
            (RxError::Fec, Fec),
        ];
        for (e, want) in cases {
            assert_eq!(RxStage::of_error(&e), want, "{e:?}");
        }
    }
}
