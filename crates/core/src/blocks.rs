//! Flowgraph blocks wrapping the transceiver — the "modified and added
//! blocks" of the paper, expressed against `mimonet-runtime`'s GNU-Radio-
//! like block model.
//!
//! The blocks operate frame-synchronously: [`TxBlock`] consumes fixed-size
//! PSDUs from a byte stream and emits per-antenna sample bursts of a known
//! length; [`ChannelBlock`] and [`RxBlock`] chunk their inputs to that same
//! burst length. [`frame_burst_len`] computes it; the
//! [`build_link_flowgraph`] helper wires a complete TX → channel → RX graph
//! with consistent sizes.

use crate::config::{RxConfig, TxConfig};
use crate::rx::Receiver;
use crate::tx::Transmitter;
use mimonet_channel::{ChannelConfig, ChannelSim};
use mimonet_dsp::complex::Complex64;
use mimonet_runtime::{
    convert, Block, BlockCtx, BlockId, Flowgraph, InputBuffer, Item, Message, OutputBuffer,
    SinkHandle, TagValue, VectorSink, VectorSource, WorkStatus,
};

/// Silence prepended to each burst so detection has a noise floor to rise
/// from.
pub const LEAD_IN: usize = 160;
/// Silence appended so channel tails ring out inside the burst.
pub const LEAD_OUT: usize = 80;

/// Samples per frame burst (frame + lead-in + lead-out) for a PSDU size.
pub fn frame_burst_len(tx_cfg: &TxConfig, psdu_len: usize) -> usize {
    Transmitter::new(tx_cfg.clone()).frame_len(psdu_len) + LEAD_IN + LEAD_OUT
}

/// Byte stream in (whole PSDUs), per-antenna sample bursts out.
pub struct TxBlock {
    tx: Transmitter,
    psdu_len: usize,
}

impl TxBlock {
    /// Creates a transmitter block for fixed-size PSDUs.
    pub fn new(cfg: TxConfig, psdu_len: usize) -> Self {
        assert!(psdu_len > 0, "PSDU size must be nonzero");
        Self {
            tx: Transmitter::new(cfg),
            psdu_len,
        }
    }
}

impl Block for TxBlock {
    fn name(&self) -> &str {
        "mimonet_tx"
    }
    fn num_inputs(&self) -> usize {
        1
    }
    fn num_outputs(&self) -> usize {
        self.tx.mcs().n_streams
    }
    fn work(
        &mut self,
        inputs: &mut [InputBuffer],
        outputs: &mut [OutputBuffer],
        _ctx: &mut BlockCtx<'_>,
    ) -> WorkStatus {
        let mut progressed = false;
        while inputs[0].available() >= self.psdu_len {
            let psdu = convert::to_bytes(&inputs[0].take(self.psdu_len));
            let streams = self.tx.transmit(&psdu).expect("nonzero PSDU");
            for (s, out) in streams.iter().zip(outputs.iter_mut()) {
                out.add_tag(
                    out.offset(),
                    "frame_start",
                    TagValue::U64(psdu.len() as u64),
                );
                out.push_slice(&vec![Item::Complex(0.0, 0.0); LEAD_IN]);
                out.push_slice(&convert::from_complex(s));
                out.push_slice(&vec![Item::Complex(0.0, 0.0); LEAD_OUT]);
            }
            progressed = true;
        }
        if progressed {
            WorkStatus::Progress
        } else if inputs[0].is_finished() {
            WorkStatus::Done
        } else {
            WorkStatus::Blocked
        }
    }
}

/// Applies the channel simulator burst-by-burst (one fading realization
/// per burst, matching the block-fading link simulator).
pub struct ChannelBlock {
    sim: ChannelSim,
    burst_len: usize,
    n_tx: usize,
    n_rx: usize,
}

impl ChannelBlock {
    /// Creates a channel block operating on bursts of `burst_len` samples.
    pub fn new(cfg: ChannelConfig, seed: u64, burst_len: usize) -> Self {
        assert!(burst_len > 0, "burst length must be nonzero");
        let n_tx = cfg.n_tx;
        let n_rx = cfg.n_rx;
        Self {
            sim: ChannelSim::new(cfg, seed),
            burst_len,
            n_tx,
            n_rx,
        }
    }
}

impl Block for ChannelBlock {
    fn name(&self) -> &str {
        "mimonet_channel"
    }
    fn num_inputs(&self) -> usize {
        self.n_tx
    }
    fn num_outputs(&self) -> usize {
        self.n_rx
    }
    fn work(
        &mut self,
        inputs: &mut [InputBuffer],
        outputs: &mut [OutputBuffer],
        _ctx: &mut BlockCtx<'_>,
    ) -> WorkStatus {
        let mut progressed = false;
        while inputs.iter().all(|i| i.available() >= self.burst_len) {
            let tx: Vec<Vec<Complex64>> = inputs
                .iter_mut()
                .map(|i| convert::to_complex(&i.take(self.burst_len)))
                .collect();
            let (rx, _) = self.sim.apply(&tx);
            for (stream, out) in rx.iter().zip(outputs.iter_mut()) {
                // Channel tails may extend the stream; clip to the burst so
                // downstream chunking stays aligned.
                let clipped = &stream[..self.burst_len.min(stream.len())];
                out.push_slice(&convert::from_complex(clipped));
            }
            progressed = true;
        }
        if progressed {
            WorkStatus::Progress
        } else if inputs
            .iter()
            .any(|i| i.is_finished() && i.available() < self.burst_len)
        {
            WorkStatus::Done
        } else {
            WorkStatus::Blocked
        }
    }
}

/// Per-antenna sample bursts in, decoded PSDU bytes out. Publishes
/// `"mimonet.frames"` ([`Message::Bytes`]) per decoded PSDU and
/// `"mimonet.snr"` ([`Message::F64`], dB) per frame on the message hub.
pub struct RxBlock {
    rx: Receiver,
    burst_len: usize,
}

impl RxBlock {
    /// Creates a receiver block operating on bursts of `burst_len` samples.
    pub fn new(cfg: RxConfig, burst_len: usize) -> Self {
        assert!(burst_len > 0, "burst length must be nonzero");
        Self {
            rx: Receiver::new(cfg),
            burst_len,
        }
    }
}

impl Block for RxBlock {
    fn name(&self) -> &str {
        "mimonet_rx"
    }
    fn num_inputs(&self) -> usize {
        self.rx.config().n_rx
    }
    fn num_outputs(&self) -> usize {
        1
    }
    fn work(
        &mut self,
        inputs: &mut [InputBuffer],
        outputs: &mut [OutputBuffer],
        ctx: &mut BlockCtx<'_>,
    ) -> WorkStatus {
        let mut progressed = false;
        while inputs.iter().all(|i| i.available() >= self.burst_len) {
            let bufs: Vec<Vec<Complex64>> = inputs
                .iter_mut()
                .map(|i| convert::to_complex(&i.take(self.burst_len)))
                .collect();
            if let Ok(frame) = self.rx.receive(&bufs) {
                ctx.msgs.publish("mimonet.snr", Message::F64(frame.snr_db));
                ctx.msgs
                    .publish("mimonet.frames", Message::Bytes(frame.psdu.clone()));
                outputs[0].add_tag(
                    outputs[0].offset(),
                    "frame_start",
                    TagValue::U64(frame.psdu.len() as u64),
                );
                outputs[0].push_slice(&convert::from_bytes(&frame.psdu));
            }
            progressed = true;
        }
        if progressed {
            WorkStatus::Progress
        } else if inputs
            .iter()
            .any(|i| i.is_finished() && i.available() < self.burst_len)
        {
            WorkStatus::Done
        } else {
            WorkStatus::Blocked
        }
    }
}

/// Builds the complete loopback flowgraph
/// `source(psdus) → TxBlock → ChannelBlock → RxBlock → sink` and returns
/// the graph, the sink handle, and the ids of the three transceiver blocks.
pub fn build_link_flowgraph(
    tx_cfg: TxConfig,
    chan_cfg: ChannelConfig,
    rx_cfg: RxConfig,
    psdus: &[u8],
    psdu_len: usize,
    seed: u64,
) -> (Flowgraph, SinkHandle, [BlockId; 3]) {
    assert_eq!(
        psdus.len() % psdu_len,
        0,
        "byte stream must hold whole PSDUs"
    );
    let burst = frame_burst_len(&tx_cfg, psdu_len);
    let n_tx = tx_cfg.mcs.n_streams;
    let n_rx = rx_cfg.n_rx;

    let mut fg = Flowgraph::new();
    let src = fg.add(VectorSource::from_bytes(psdus));
    let tx = fg.add(TxBlock::new(tx_cfg, psdu_len));
    let chan = fg.add(ChannelBlock::new(chan_cfg, seed, burst));
    let rx = fg.add(RxBlock::new(rx_cfg, burst));
    let (sink, handle) = VectorSink::new();
    let sink = fg.add(sink);

    fg.connect(src, 0, tx, 0).expect("topology");
    for p in 0..n_tx {
        fg.connect(tx, p, chan, p).expect("topology");
    }
    for p in 0..n_rx {
        fg.connect(chan, p, rx, p).expect("topology");
    }
    fg.connect(rx, 0, sink, 0).expect("topology");
    (fg, handle, [tx, chan, rx])
}

#[cfg(test)]
mod tests {
    use super::*;
    use mimonet_runtime::MessageHub;

    #[test]
    fn loopback_flowgraph_delivers_psdus() {
        let psdu_len = 60;
        let psdus: Vec<u8> = (0..3 * psdu_len).map(|i| (i * 7 % 256) as u8).collect();
        let (mut fg, handle, _) = build_link_flowgraph(
            TxConfig::new(8).unwrap(),
            ChannelConfig::awgn(2, 2, 30.0),
            RxConfig::new(2),
            &psdus,
            psdu_len,
            11,
        );
        let hub = MessageHub::new();
        let frames = hub.subscribe("mimonet.frames");
        let snrs = hub.subscribe("mimonet.snr");
        fg.run(&hub).unwrap();
        assert_eq!(handle.bytes(), psdus);
        assert_eq!(frames.drain().len(), 3);
        let snr_msgs = snrs.drain();
        assert_eq!(snr_msgs.len(), 3);
        for m in snr_msgs {
            match m {
                Message::F64(db) => assert!((db - 30.0).abs() < 4.0, "snr {db}"),
                other => panic!("unexpected message {other:?}"),
            }
        }
    }

    #[test]
    fn siso_loopback_over_threaded_scheduler() {
        let psdu_len = 40;
        let psdus: Vec<u8> = (0..2 * psdu_len).map(|i| i as u8).collect();
        let (fg, handle, _) = build_link_flowgraph(
            TxConfig::new(1).unwrap(),
            ChannelConfig::awgn(1, 1, 28.0),
            RxConfig::new(1),
            &psdus,
            psdu_len,
            12,
        );
        fg.run_threaded(std::sync::Arc::new(MessageHub::new()))
            .unwrap();
        assert_eq!(handle.bytes(), psdus);
    }

    #[test]
    fn noisy_channel_drops_frames_not_the_graph() {
        let psdu_len = 80;
        let psdus: Vec<u8> = vec![0xA5; 4 * psdu_len];
        let (mut fg, handle, _) = build_link_flowgraph(
            TxConfig::new(15).unwrap(),
            ChannelConfig::awgn(2, 2, 2.0), // far below MCS15's threshold
            RxConfig::new(2),
            &psdus,
            psdu_len,
            13,
        );
        fg.run(&MessageHub::new()).unwrap();
        // Graph completes; most/all frames lost.
        assert!(handle.bytes().len() < psdus.len());
    }

    #[test]
    fn burst_length_accounts_for_leads() {
        let cfg = TxConfig::new(0).unwrap();
        let t = Transmitter::new(cfg.clone());
        assert_eq!(
            frame_burst_len(&cfg, 100),
            t.frame_len(100) + LEAD_IN + LEAD_OUT
        );
    }

    #[test]
    #[should_panic(expected = "whole PSDUs")]
    fn ragged_psdu_stream_rejected() {
        build_link_flowgraph(
            TxConfig::new(0).unwrap(),
            ChannelConfig::awgn(1, 1, 20.0),
            RxConfig::new(1),
            &[0u8; 10],
            3,
            0,
        );
    }
}
