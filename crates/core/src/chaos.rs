//! Chaos harness: multi-frame link captures under seeded fault schedules.
//!
//! One chaos trial builds a capture of `n_frames` back-to-back frames,
//! passes it through the channel simulator, applies a deterministic
//! [`FaultSchedule`], then lets [`Receiver::scan`] pick up the pieces.
//! Frames are classified against the schedule's damage window — inside it
//! (allowed to die) versus after it (must mostly survive) — into
//! [`LinkStats::recovery`], which is what `tests/chaos_soak.rs` and the
//! `fig_chaos` figure assert on.
//!
//! Everything is a pure function of `(config, seed)`: trial seeds derive
//! with the sweep engine's [`mix`], so a chaos sweep is bit-identical at
//! any `--threads` count.

use crate::config::{RxConfig, TxConfig};
use crate::link::LinkStats;
use crate::rx::Receiver;
use crate::sweep::{ShardCtx, SweepResult, SweepSpec};
use crate::telemetry::RxCaptureProfile;
use crate::tx::Transmitter;
use mimonet_channel::{ChannelConfig, ChannelSim, FaultReport, FaultSchedule, FaultSpec};
use mimonet_dsp::complex::Complex64;
use mimonet_dsp::seedtree;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Configuration for one chaos capture.
#[derive(Clone, Debug)]
pub struct ChaosConfig {
    /// MCS index for every frame.
    pub mcs: u8,
    /// PSDU length per frame, octets.
    pub payload_len: usize,
    /// Frames in the capture.
    pub n_frames: usize,
    /// Silence between frames, samples.
    pub gap: usize,
    /// Silence before the first frame, samples.
    pub lead_in: usize,
    /// Channel between the radios.
    pub channel: ChannelConfig,
    /// Receiver settings.
    pub rx: RxConfig,
    /// The fault schedule specification.
    pub faults: FaultSpec,
}

impl ChaosConfig {
    /// A chaos capture of `n_frames` frames at `mcs` over `channel` with
    /// `faults`; receiver sized to the channel.
    pub fn new(mcs: u8, n_frames: usize, channel: ChannelConfig, faults: FaultSpec) -> Self {
        let rx = RxConfig::new(channel.n_rx);
        Self {
            mcs,
            payload_len: 80,
            n_frames,
            gap: 240,
            lead_in: 160,
            channel,
            rx,
            faults,
        }
    }
}

/// Runs one seeded chaos capture, folding delivery and recovery counts
/// into `stats`. Returns what the fault schedule did to the samples.
///
/// Frame classification against the schedule's damage window
/// ([`FaultSchedule::window`]): a frame whose samples overlap the window
/// is *faulted* (allowed to fail); a frame starting at or after the
/// window's end is *post-fault* (counted toward
/// [`crate::metrics::RecoveryCounter::post_fault_recovery`]). With an
/// empty schedule every frame counts as post-fault, so the recovery
/// metric degenerates to plain delivery rate.
pub fn run_chaos_capture(cfg: &ChaosConfig, seed: u64, stats: &mut LinkStats) -> FaultReport {
    run_chaos_capture_profiled(cfg, seed, stats, &mut RxCaptureProfile::default())
}

/// [`run_chaos_capture`] that additionally records RX-stage telemetry
/// into `cap` and attributes **every** lost frame to a named outcome in
/// [`LinkStats::outcomes`] — `outcomes.total()` grows by exactly
/// `cfg.n_frames` per capture. Attribution, per lost frame:
///
/// 1. an unclaimed *decoded* frame overlapping the sent span means the
///    pipeline ran end to end but the bits were wrong → `payload_fail`;
/// 2. else a failed decode attempt (scan error event) near the sent span
///    names the stage that rejected it → its error class;
/// 3. else the detector never fired on it → `sync_miss`.
pub fn run_chaos_capture_profiled(
    cfg: &ChaosConfig,
    seed: u64,
    stats: &mut LinkStats,
    cap: &mut RxCaptureProfile,
) -> FaultReport {
    let tx = Transmitter::new(TxConfig::new(cfg.mcs).expect("valid MCS"));
    let n_tx = tx.mcs().n_streams;
    assert_eq!(
        cfg.channel.n_tx, n_tx,
        "channel n_tx must match the MCS stream count"
    );
    let mut rng = ChaCha8Rng::seed_from_u64(seed);

    // --- Build the multi-frame TX capture ---
    let mut capture: Vec<Vec<Complex64>> = vec![vec![Complex64::ZERO; cfg.lead_in]; n_tx];
    // (sample span in the capture, PSDU) per frame.
    let mut sent: Vec<((usize, usize), Vec<u8>)> = Vec::with_capacity(cfg.n_frames);
    for _ in 0..cfg.n_frames {
        let psdu: Vec<u8> = (0..cfg.payload_len).map(|_| rng.gen()).collect();
        let streams = tx.transmit(&psdu).expect("valid PSDU");
        let start = capture[0].len();
        let end = start + streams[0].len();
        for (c, s) in capture.iter_mut().zip(&streams) {
            c.extend_from_slice(s);
            c.extend(std::iter::repeat_n(Complex64::ZERO, cfg.gap));
        }
        sent.push(((start, end), psdu));
    }

    // --- Channel, then faults on the received samples ---
    let mut sim = ChannelSim::new(
        cfg.channel.clone(),
        seedtree::salted(seed, seedtree::CHANNEL_SALT),
    );
    let (mut rx_streams, _truth) = sim.apply(&capture);
    let capture_len = rx_streams.iter().map(|a| a.len()).min().unwrap_or(0);
    let sched = FaultSchedule::generate(
        &cfg.faults,
        capture_len,
        seedtree::salted(seed, seedtree::FAULT_SALT),
    );
    let report = sched.apply(&mut rx_streams);

    // --- Scan and score ---
    let receiver = Receiver::new(cfg.rx.clone());
    let ev_base = cap.events.len();
    let (frames, scan) = receiver.scan_profiled(&rx_streams, cap);
    stats.recovery.record_events(report.events.len() as u64);
    stats.recovery.record_rescans(scan.rescans as u64);

    // This capture's failed-attempt events; each may explain one frame.
    let events = &cap.events[ev_base..];
    let mut event_used = vec![false; events.len()];
    let mut claimed = vec![false; frames.len()];
    for ((start, end), psdu) in &sent {
        let delivered = frames
            .iter()
            .enumerate()
            .find(|(i, (_, f))| !claimed[*i] && &f.psdu == psdu)
            .map(|(i, _)| i);
        if let Some(i) = delivered {
            claimed[i] = true;
        }
        let ok = delivered.is_some();
        if ok {
            stats.per.record_ok();
            stats.outcomes.record_ok();
        } else {
            stats.per.record_sync_failure();
            // A decoded frame whose samples overlap the sent span but
            // whose PSDU matched nothing: the pipeline ran end to end and
            // produced wrong bits — a payload failure.
            let corrupt_twin = frames.iter().enumerate().find(|(i, (off, f))| {
                !claimed[*i] && off + f.timing < *end && off + f.frame_end > *start
            });
            if let Some((i, _)) = corrupt_twin {
                claimed[i] = true;
                stats.outcomes.record_payload_fail();
            } else {
                // A failed decode attempt whose window reaches the sent
                // span names the stage that rejected this frame. Windows
                // start up to one detection span (640 samples) early.
                let blamed = events
                    .iter()
                    .enumerate()
                    .find(|(j, (off, _))| !event_used[*j] && *off < *end && off + 640 > *start);
                match blamed {
                    Some((j, (_, e))) => {
                        event_used[j] = true;
                        stats.outcomes.record_error(e);
                    }
                    // Detection never fired anywhere near it.
                    None => stats.outcomes.record_sync_miss(),
                }
            }
        }
        match sched.window() {
            Some((lo, hi)) if *start < hi && *end > lo => stats.recovery.record_faulted(ok),
            Some((_, hi)) if *start >= hi => stats.recovery.record_post_fault(ok),
            Some(_) => {} // entirely before the window: plain traffic
            None => stats.recovery.record_post_fault(ok),
        }
    }
    report
}

/// Standard shard body for chaos sweeps: `ctx.trials` independent seeded
/// captures, each with its own derived seed.
pub fn chaos_shard(cfg: &ChaosConfig, ctx: &ShardCtx, stats: &mut LinkStats) {
    for t in 0..ctx.trials {
        let capture_seed =
            seedtree::trial_seed(ctx.seed, seedtree::CHAOS_TAG, ctx.trial_offset + t);
        run_chaos_capture(cfg, capture_seed, stats);
    }
}

/// Runs a chaos-config sweep to completion — composes with the parallel
/// engine bit-identically at any thread count.
pub fn run_chaos(spec: &SweepSpec<ChaosConfig>) -> SweepResult<LinkStats> {
    spec.run(chaos_shard)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_cfg() -> ChaosConfig {
        ChaosConfig::new(
            8,
            4,
            ChannelConfig::awgn(2, 2, 30.0),
            FaultSpec::harsh_mid_capture(),
        )
    }

    #[test]
    fn fault_free_capture_delivers_everything() {
        let cfg = ChaosConfig {
            faults: FaultSpec::none(),
            ..base_cfg()
        };
        let mut stats = LinkStats::default();
        let report = run_chaos_capture(&cfg, 5, &mut stats);
        assert!(report.events.is_empty());
        assert_eq!(stats.per.sent(), 4);
        assert_eq!(stats.per.ok(), 4, "clean capture: {:?}", stats.per);
        assert_eq!(stats.recovery.post_fault(), (4, 4));
        assert_eq!(stats.recovery.post_fault_recovery(), 1.0);
    }

    #[test]
    fn faulted_capture_is_damaged_but_accounted() {
        let cfg = base_cfg();
        let mut stats = LinkStats::default();
        let report = run_chaos_capture(&cfg, 11, &mut stats);
        assert!(!report.events.is_empty());
        assert!(report.corrupted_samples + report.zeroed_samples > 0);
        assert_eq!(stats.per.sent(), 4);
        let (f_sent, _) = stats.recovery.faulted();
        let (p_sent, _) = stats.recovery.post_fault();
        assert!(
            f_sent + p_sent <= 4,
            "classified frames cannot exceed transmitted"
        );
    }

    #[test]
    fn captures_reproduce_per_seed() {
        let cfg = base_cfg();
        let run = |seed| {
            let mut stats = LinkStats::default();
            run_chaos_capture(&cfg, seed, &mut stats);
            (
                stats.per.ok(),
                stats.recovery.rescans(),
                stats.recovery.post_fault(),
            )
        };
        assert_eq!(run(3), run(3));
    }
}
