//! Network-scale scenario engine: K concurrent links on one substrate.
//!
//! A scenario file (TOML or JSON) describes a set of named links — each
//! with its own channel preset, SNR/Doppler mobility schedule, seeded
//! chaos faults, transport chunk loss and rate-adaptation policy — plus
//! cross-link interference between links sharing a band. [`ScenarioSpec::run`]
//! executes every link on the [`crate::sweep`] worker pool and merges the
//! per-link [`crate::link::LinkStats`] into a [`ScenarioReport`].
//!
//! # Determinism
//!
//! The report is bit-identical for any `--threads` count *and* any order
//! of the `[[links]]` tables:
//!
//! * every per-link stream derives from
//!   [`seedtree::name_seed`]`(scenario_seed, LINK_TAG, link_name)` — a
//!   hash of the link's *name*, not its list position;
//! * per-round streams split off the link seed with
//!   [`seedtree::trial_seed`]; channel noise, fault placement, transport
//!   loss and payload bytes take disjoint salted branches;
//! * interference a victim receives from link `x` in round `r` is a pure
//!   function of `(scenario_seed, x, r)` — computing it never touches the
//!   interferer's simulation state, so links need no cross-thread
//!   communication;
//! * the report sorts links by name before aggregating, so floating-point
//!   sums always see the same operand order.
//!
//! One modeling choice follows from purity: an interferer's airtime is
//! modeled at its *base* MCS even when it runs rate adaptation. Using the
//! adapted rate would make every link's waveform depend on every other
//! link's delivery history — a fixed-point coupling that serializes the
//! network. The base-rate approximation keeps links embarrassingly
//! parallel and errs toward *more* interference (adaptation only ever
//! shortens frames by raising the rate).
//!
//! Each link is sequential across rounds (the rate controller's state
//! carries between frames), so the unit of parallelism is the link: the
//! engine runs the scenario as a sweep whose grid points are links, one
//! single-trial shard each.

use crate::adapt::{RateController, SnrThresholdTable};
use crate::config::{RxConfig, TxConfig};
use crate::link::LinkStats;
use crate::rx::Receiver;
use crate::sweep::{Merge, SweepSpec};
use crate::tx::Transmitter;
use mimonet_channel::{presets, ChannelSim, FaultSchedule, FaultSpec};
use mimonet_dsp::complex::Complex64;
use mimonet_dsp::seedtree;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{json, toml, Serialize, Value};

/// Samples of silence before each frame (matches the chaos harness).
const LEAD_IN: usize = 160;
/// Samples of silence after each frame.
const LEAD_OUT: usize = 240;
/// Sample rate the airtime math assumes (20 Msps).
const SAMPLES_PER_US: f64 = 20.0;

/// A failed scenario load or validation, typed.
#[derive(Clone, Debug, PartialEq)]
pub enum ScenarioError {
    /// The file could not be read.
    Io(String),
    /// The text was not valid TOML/JSON.
    Parse(String),
    /// The document parsed but violates the schema.
    Invalid(String),
}

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScenarioError::Io(d) => write!(f, "scenario io error: {d}"),
            ScenarioError::Parse(d) => write!(f, "scenario parse error: {d}"),
            ScenarioError::Invalid(d) => write!(f, "invalid scenario: {d}"),
        }
    }
}

impl std::error::Error for ScenarioError {}

fn invalid(msg: impl Into<String>) -> ScenarioError {
    ScenarioError::Invalid(msg.into())
}

/// How links sharing a band couple into each other.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InterferenceModel {
    /// No cross-link coupling (isolated-links baseline).
    None,
    /// Structured co-channel noise: one seeded noise burst per interferer
    /// per round, sized to the interferer's frame airtime. Cheap default.
    Burst,
    /// Full waveform regeneration: the interferer's actual OFDM frame
    /// (base MCS, its own seeded payload) is scaled and summed in.
    Waveform,
}

impl InterferenceModel {
    fn parse(name: &str) -> Result<Self, ScenarioError> {
        match name {
            "none" => Ok(Self::None),
            "burst" => Ok(Self::Burst),
            "waveform" => Ok(Self::Waveform),
            other => Err(invalid(format!(
                "interference model {other:?} (expected none|burst|waveform)"
            ))),
        }
    }

    fn name(self) -> &'static str {
        match self {
            Self::None => "none",
            Self::Burst => "burst",
            Self::Waveform => "waveform",
        }
    }
}

/// Cross-link interference configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct InterferenceSpec {
    /// Coupling model.
    pub model: InterferenceModel,
    /// Interferer power at the victim, dB relative to the victim's unit
    /// signal power (negative = attenuated, the usual case).
    pub coupling_db: f64,
}

impl Default for InterferenceSpec {
    fn default() -> Self {
        Self {
            model: InterferenceModel::None,
            coupling_db: -20.0,
        }
    }
}

/// Transport-layer impairment: the `mimonet-io` stream path drops IQ
/// chunks; a dropped chunk zeroes its sample span at the receiver.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TransportSpec {
    /// Samples per transport chunk.
    pub chunk_len: usize,
    /// Per-chunk drop probability in `[0, 1]`.
    pub drop_rate: f64,
}

/// One link of a scenario.
#[derive(Clone, Debug, PartialEq)]
pub struct LinkSpec {
    /// Unique link name — the root of the link's seed derivations.
    pub name: String,
    /// Channel preset name from [`mimonet_channel::presets`].
    pub preset: String,
    /// Base SNR in dB (overridden per round by `mobility`).
    pub snr_db: f64,
    /// Normalized Doppler override: `Some(fd)` replaces the preset's
    /// fading with Jakes at `fd` (overridden per round by `fd_trace`).
    pub fd_norm: Option<f64>,
    /// Carrier frequency offset, subcarrier spacings.
    pub cfo_norm: f64,
    /// Sampling frequency offset, ppm.
    pub sfo_ppm: f64,
    /// Base MCS — the fixed rate without adaptation, the starting point
    /// and interferer-model rate with it.
    pub mcs: u8,
    /// Payload octets per frame.
    pub payload_len: usize,
    /// Band index; links sharing a band interfere.
    pub band: u64,
    /// Fault preset name from [`presets::fault_lookup`].
    pub faults: String,
    /// Run the [`RateController`] adaptation policy.
    pub adapt: bool,
    /// Piecewise-linear SNR schedule: `(round, snr_db)` knots, ascending
    /// in round. Empty = constant `snr_db`.
    pub mobility: Vec<(f64, f64)>,
    /// Piecewise-linear Doppler schedule: `(round, fd_norm)` knots.
    /// Empty = constant `fd_norm` (or the preset's own fading).
    pub fd_trace: Vec<(f64, f64)>,
    /// Transport chunk-loss model, if any.
    pub transport: Option<TransportSpec>,
}

impl Default for LinkSpec {
    fn default() -> Self {
        Self {
            name: String::new(),
            preset: "awgn".into(),
            snr_db: 25.0,
            fd_norm: None,
            cfo_norm: 0.0,
            sfo_ppm: 0.0,
            mcs: 8,
            payload_len: 256,
            band: 0,
            faults: "none".into(),
            adapt: false,
            mobility: Vec::new(),
            fd_trace: Vec::new(),
            transport: None,
        }
    }
}

/// A full scenario: K links, shared seed, interference policy.
#[derive(Clone, Debug, PartialEq)]
pub struct ScenarioSpec {
    /// Scenario name (reports, diagnostics).
    pub name: String,
    /// Master seed; every stream in the scenario derives from it.
    pub seed: u64,
    /// Frames per link (the adaptation rounds).
    pub rounds: usize,
    /// Cross-link interference policy.
    pub interference: InterferenceSpec,
    /// The links.
    pub links: Vec<LinkSpec>,
}

impl ScenarioSpec {
    /// Parses a scenario from TOML text.
    pub fn from_toml_str(text: &str) -> Result<Self, ScenarioError> {
        let value = toml::from_str(text).map_err(|e| ScenarioError::Parse(e.to_string()))?;
        Self::from_value(&value)
    }

    /// Parses a scenario from JSON text.
    pub fn from_json_str(text: &str) -> Result<Self, ScenarioError> {
        let value = json::from_str(text).map_err(|e| ScenarioError::Parse(e.to_string()))?;
        Self::from_value(&value)
    }

    /// Loads a scenario file, dispatching on the `.json` extension
    /// (anything else parses as TOML).
    pub fn from_file(path: &std::path::Path) -> Result<Self, ScenarioError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| ScenarioError::Io(format!("{}: {e}", path.display())))?;
        if path.extension().is_some_and(|e| e == "json") {
            Self::from_json_str(&text)
        } else {
            Self::from_toml_str(&text)
        }
    }

    /// Builds and validates a scenario from a parsed [`Value`] tree.
    ///
    /// Schema: top-level `name` (string, required), `seed` (int, default
    /// 0), `rounds` (int, required), optional `[interference]` table
    /// (`model`, `coupling_db`), optional `[defaults]` table holding any
    /// per-link key, and one `[[links]]` table per link.
    pub fn from_value(root: &Value) -> Result<Self, ScenarioError> {
        check_keys(
            root,
            &[
                "name",
                "seed",
                "rounds",
                "interference",
                "defaults",
                "links",
            ],
            "scenario",
        )?;
        let name = root
            .get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| invalid("missing scenario 'name'"))?
            .to_string();
        let seed = match root.get("seed") {
            None => 0,
            Some(v) => v
                .as_u64()
                .ok_or_else(|| invalid("'seed' must be a non-negative integer"))?,
        };
        let rounds =
            root.get("rounds")
                .and_then(Value::as_u64)
                .ok_or_else(|| invalid("missing 'rounds' (frames per link)"))? as usize;
        let interference = match root.get("interference") {
            None => InterferenceSpec::default(),
            Some(v) => parse_interference(v)?,
        };
        let defaults = match root.get("defaults") {
            None => LinkSpec::default(),
            Some(v) => parse_link(v, &LinkSpec::default(), true)?,
        };
        let links_value = root
            .get("links")
            .and_then(Value::as_array)
            .ok_or_else(|| invalid("missing [[links]]"))?;
        let mut links = Vec::with_capacity(links_value.len());
        for lv in links_value {
            links.push(parse_link(lv, &defaults, false)?);
        }
        let spec = Self {
            name,
            seed,
            rounds,
            interference,
            links,
        };
        spec.validate()?;
        Ok(spec)
    }

    /// Checks the semantic constraints the parser can't express.
    pub fn validate(&self) -> Result<(), ScenarioError> {
        if self.name.is_empty() {
            return Err(invalid("scenario name must be non-empty"));
        }
        if self.rounds == 0 {
            return Err(invalid("rounds must be >= 1"));
        }
        if self.links.is_empty() {
            return Err(invalid("a scenario needs at least one link"));
        }
        let mut names = std::collections::HashSet::new();
        for link in &self.links {
            if link.name.is_empty() {
                return Err(invalid("every link needs a non-empty 'name'"));
            }
            if !names.insert(link.name.as_str()) {
                return Err(invalid(format!("duplicate link name {:?}", link.name)));
            }
            if presets::lookup(&link.preset).is_none() {
                return Err(invalid(format!(
                    "link {:?}: unknown channel preset {:?}",
                    link.name, link.preset
                )));
            }
            if presets::fault_lookup(&link.faults).is_none() {
                return Err(invalid(format!(
                    "link {:?}: unknown fault preset {:?} (expected one of {:?})",
                    link.name,
                    link.faults,
                    presets::FAULT_PRESETS
                )));
            }
            if TxConfig::new(link.mcs).is_err() {
                return Err(invalid(format!(
                    "link {:?}: invalid MCS {}",
                    link.name, link.mcs
                )));
            }
            if link.adapt && link.mcs < 8 {
                return Err(invalid(format!(
                    "link {:?}: adaptation uses the 2-stream table; base MCS must be 8..=15",
                    link.name
                )));
            }
            if link.payload_len == 0 || link.payload_len > 2048 {
                return Err(invalid(format!(
                    "link {:?}: payload_len outside 1..=2048",
                    link.name
                )));
            }
            if !link.snr_db.is_finite() {
                return Err(invalid(format!(
                    "link {:?}: snr_db must be finite",
                    link.name
                )));
            }
            for (label, trace) in [("mobility", &link.mobility), ("fd_trace", &link.fd_trace)] {
                if !trace.windows(2).all(|w| w[0].0 < w[1].0) {
                    return Err(invalid(format!(
                        "link {:?}: {label} knots must be ascending in round",
                        link.name
                    )));
                }
            }
            if let Some(t) = &link.transport {
                if t.chunk_len == 0 {
                    return Err(invalid(format!(
                        "link {:?}: transport chunk_len must be >= 1",
                        link.name
                    )));
                }
                if !(0.0..=1.0).contains(&t.drop_rate) {
                    return Err(invalid(format!(
                        "link {:?}: transport drop_rate outside [0, 1]",
                        link.name
                    )));
                }
            }
        }
        if !self.interference.coupling_db.is_finite() {
            return Err(invalid("interference coupling_db must be finite"));
        }
        Ok(())
    }

    /// Runs the scenario on `threads` workers (0 = auto) and returns the
    /// merged report. Bit-identical for any thread count and link order.
    pub fn run(&self, threads: usize) -> ScenarioReport {
        // One grid point per link, one single-trial shard each: the
        // sweep pool schedules links across workers while each link
        // stays sequential (the adaptation state is a chain).
        let sweep = SweepSpec::new(format!("scenario/{}", self.name), self.links.clone(), 1)
            .seed(self.seed)
            .shard_size(1)
            .threads(threads);
        let result = sweep.run(|link: &LinkSpec, _ctx, out: &mut LinkReport| {
            *out = self.run_link(link);
        });
        let mut links = result.stats;
        // Name order, not file order: aggregation below folds floats in
        // a deterministic sequence and the report is order-invariant.
        links.sort_by(|a, b| a.name.cmp(&b.name));
        ScenarioReport {
            name: self.name.clone(),
            seed: self.seed,
            rounds: self.rounds,
            interference: self.interference,
            links,
        }
    }

    /// Runs one link of the scenario, sequentially across rounds.
    pub fn run_link(&self, link: &LinkSpec) -> LinkReport {
        let link_seed = seedtree::name_seed(self.seed, seedtree::LINK_TAG, &link.name);
        let mut controller = link
            .adapt
            .then(|| RateController::new(SnrThresholdTable::default_two_stream()));
        let interferers: Vec<Interferer> = if self.interference.model == InterferenceModel::None {
            Vec::new()
        } else {
            // Name order, not file order: injections add floats into the
            // capture, and float addition is order-sensitive — the same
            // set of interferers must always sum in the same sequence.
            let mut sources: Vec<&LinkSpec> = self
                .links
                .iter()
                .filter(|o| o.band == link.band && o.name != link.name)
                .collect();
            sources.sort_by(|a, b| a.name.cmp(&b.name));
            sources.iter().map(|o| Interferer::new(self, o)).collect()
        };
        let mut report = LinkReport {
            name: link.name.clone(),
            band: link.band,
            final_mcs: link.mcs,
            ..LinkReport::default()
        };
        for round in 0..self.rounds {
            let round_seed = seedtree::trial_seed(link_seed, seedtree::ROUND_TAG, round);
            let mcs = controller
                .as_ref()
                .map(|c| c.current_mcs())
                .unwrap_or(link.mcs);
            let outcome = self.run_round(link, mcs, round, round_seed, &interferers, &mut report);
            if let Some(c) = controller.as_mut() {
                c.update(outcome.delivered, outcome.snr_db);
                report.final_mcs = c.current_mcs();
            }
            report.mcs_sum += mcs as u64;
            report.rounds += 1;
        }
        report
    }

    /// One frame: TX at `mcs` → per-round channel → faults → transport
    /// loss → co-channel interference → scan → score.
    fn run_round(
        &self,
        link: &LinkSpec,
        mcs: u8,
        round: usize,
        round_seed: u64,
        interferers: &[Interferer],
        report: &mut LinkReport,
    ) -> RoundOutcome {
        let tx = Transmitter::new(TxConfig::new(mcs).expect("validated MCS"));
        let n = tx.mcs().n_streams;

        // Payload bytes: own salted stream, pure in (link, round).
        let mut psdu_rng =
            ChaCha8Rng::seed_from_u64(seedtree::salted(round_seed, seedtree::PSDU_SALT));
        let psdu: Vec<u8> = (0..link.payload_len).map(|_| psdu_rng.gen()).collect();
        let streams = tx.transmit(&psdu).expect("valid PSDU");
        let frame_samples = streams[0].len();
        let mut capture: Vec<Vec<Complex64>> = vec![vec![Complex64::ZERO; LEAD_IN]; n];
        for (c, s) in capture.iter_mut().zip(&streams) {
            c.extend_from_slice(s);
            c.extend(std::iter::repeat_n(Complex64::ZERO, LEAD_OUT));
        }

        // Channel for this round: mobility schedules override SNR/Doppler.
        let snr_db = trace_eval(&link.mobility, round, link.snr_db);
        let fd = match (&link.fd_trace[..], link.fd_norm) {
            ([], None) => None,
            ([], Some(fd)) => Some(fd),
            (trace, base) => Some(trace_eval(trace, round, base.unwrap_or(0.0))),
        };
        let mut chan_cfg = match fd {
            Some(fd) => presets::jakes(fd, n, n, snr_db),
            None => presets::channel(&link.preset, n, n, snr_db).expect("validated preset"),
        };
        chan_cfg.cfo_norm = link.cfo_norm;
        chan_cfg.sfo_ppm = link.sfo_ppm;
        let mut chan = ChannelSim::new(
            chan_cfg,
            seedtree::salted(round_seed, seedtree::CHANNEL_SALT),
        );
        let (mut rx, _truth) = chan.apply(&capture);
        let capture_len = rx.iter().map(|a| a.len()).min().unwrap_or(0);

        // Chaos faults on the received samples.
        let fault_spec = presets::fault_lookup(&link.faults).expect("validated fault preset");
        if !matches!(
            fault_spec,
            FaultSpec {
                bursts: 0,
                dropouts: 0,
                impulses: 0,
                desyncs: 0,
                ..
            }
        ) || fault_spec.truncate_frac < 1.0
        {
            let sched = FaultSchedule::generate(
                &fault_spec,
                capture_len,
                seedtree::salted(round_seed, seedtree::FAULT_SALT),
            );
            let fr = sched.apply(&mut rx);
            report.stats.recovery.record_events(fr.events.len() as u64);
        }

        // Transport chunk loss: the io stream path dropping IQ chunks.
        if let Some(t) = &link.transport {
            if t.drop_rate > 0.0 {
                let mut rng = ChaCha8Rng::seed_from_u64(seedtree::salted(
                    round_seed,
                    seedtree::TRANSPORT_SALT,
                ));
                let mut start = 0;
                while start < capture_len {
                    let end = (start + t.chunk_len).min(capture_len);
                    if rng.gen::<f64>() < t.drop_rate {
                        for ant in rx.iter_mut() {
                            let stop = end.min(ant.len());
                            for s in &mut ant[start.min(stop)..stop] {
                                *s = Complex64::ZERO;
                            }
                        }
                        report.dropped_chunks += 1;
                    }
                    start = end;
                }
            }
        }

        // Co-channel interference from band mates: pure in
        // (scenario seed, interferer name, round).
        for interferer in interferers {
            interferer.inject(&mut rx, round, self.interference.coupling_db);
        }

        // Scan and score — exact-PSDU claiming, like the chaos harness.
        let receiver = Receiver::new(RxConfig::new(n));
        let (frames, scan) = receiver.scan(&rx);
        report.stats.recovery.record_rescans(scan.rescans as u64);
        let hit = frames.iter().find(|(_, f)| f.psdu == psdu);
        let span = (LEAD_IN, LEAD_IN + frame_samples);
        let mut snr_feedback = None;
        let delivered = hit.is_some();
        if let Some((_, f)) = hit {
            report.stats.per.record_ok();
            report.stats.outcomes.record_ok();
            report.stats.snr_est_db.push(f.snr_db);
            if let Some(e) = f.evm_snr_db {
                report.stats.evm_snr_db.push(e);
            }
            report.stats.cfo_error.push(f.cfo - link.cfo_norm);
            report.delivered_octets += link.payload_len as u64;
            snr_feedback = Some(f.snr_db);
        } else {
            report.stats.per.record_sync_failure();
            // A decoded frame overlapping the sent span with the wrong
            // bits: the pipeline ran end to end — payload failure.
            let twin = frames
                .iter()
                .find(|(off, f)| off + f.timing < span.1 && off + f.frame_end > span.0);
            match twin {
                Some((_, f)) => {
                    report.stats.outcomes.record_payload_fail();
                    snr_feedback = Some(f.snr_db);
                }
                None => report.stats.outcomes.record_sync_miss(),
            }
        }
        report.airtime_us += frame_samples as f64 / SAMPLES_PER_US;
        RoundOutcome {
            delivered,
            snr_db: snr_feedback,
        }
    }
}

/// What one round feeds back to the rate controller.
struct RoundOutcome {
    delivered: bool,
    snr_db: Option<f64>,
}

/// Precomputed interference source: everything needed to inject link
/// `x`'s round-`r` emission into a victim capture without touching `x`'s
/// simulation state.
struct Interferer {
    /// Seed root: `name_seed(scenario_seed, XLINK_TAG, x.name)`.
    seed: u64,
    /// Interferer frame duration in samples at its base MCS.
    duration: usize,
    /// Base MCS and payload for the waveform model.
    mcs: u8,
    payload_len: usize,
    model: InterferenceModel,
}

impl Interferer {
    fn new(scenario: &ScenarioSpec, x: &LinkSpec) -> Self {
        let tx = Transmitter::new(TxConfig::new(x.mcs).expect("validated MCS"));
        Self {
            seed: seedtree::name_seed(scenario.seed, seedtree::XLINK_TAG, &x.name),
            duration: tx.frame_len(x.payload_len),
            mcs: x.mcs,
            payload_len: x.payload_len,
            model: scenario.interference.model,
        }
    }

    /// Adds this interferer's round-`round` emission to `rx`.
    fn inject(&self, rx: &mut [Vec<Complex64>], round: usize, coupling_db: f64) {
        let capture_len = rx.iter().map(|a| a.len()).min().unwrap_or(0);
        if capture_len == 0 {
            return;
        }
        let round_seed = seedtree::trial_seed(self.seed, seedtree::ROUND_TAG, round);
        let mut rng = ChaCha8Rng::seed_from_u64(round_seed);
        // Unslotted timing: the interferer's frame is not synchronized to
        // the victim's, so its emission can straddle either edge of the
        // capture — partial collisions, not guaranteed full overlap.
        let start = rng.gen_range(0..capture_len + self.duration) as i64 - self.duration as i64;
        let offset = start.max(0) as usize;
        // How far into the interferer's emission the capture starts.
        let skip = (-start).max(0) as usize;
        let duration = (self.duration - skip).min(capture_len - offset);
        if duration == 0 {
            return;
        }
        let power = 10f64.powf(coupling_db / 10.0);
        match self.model {
            InterferenceModel::None => {}
            InterferenceModel::Burst => {
                // Uniform complex noise; components scaled so the burst's
                // mean power equals the coupling (uniform on [-1,1] has
                // power 1/3 per component).
                let amp = (1.5 * power).sqrt();
                for ant in rx.iter_mut() {
                    let end = (offset + duration).min(ant.len());
                    for s in &mut ant[offset.min(end)..end] {
                        let re: f64 = rng.gen_range(-1.0..1.0);
                        let im: f64 = rng.gen_range(-1.0..1.0);
                        *s += Complex64::new(amp * re, amp * im);
                    }
                }
            }
            InterferenceModel::Waveform => {
                // The interferer's actual frame for this round: its PSDU
                // stream reuses the same derivation its own simulation
                // uses, so the waveform is exactly what it transmitted.
                let mut psdu_rng =
                    ChaCha8Rng::seed_from_u64(seedtree::salted(round_seed, seedtree::PSDU_SALT));
                let psdu: Vec<u8> = (0..self.payload_len).map(|_| psdu_rng.gen()).collect();
                let tx = Transmitter::new(TxConfig::new(self.mcs).expect("validated MCS"));
                let streams = tx.transmit(&psdu).expect("valid PSDU");
                let amp = power.sqrt();
                for (i, ant) in rx.iter_mut().enumerate() {
                    let src = &streams[i % streams.len()];
                    if skip >= src.len() {
                        continue;
                    }
                    let take = duration.min(src.len() - skip);
                    let end = (offset + take).min(ant.len());
                    for (s, x) in ant[offset.min(end)..end].iter_mut().zip(&src[skip..]) {
                        *s += Complex64::new(amp * x.re, amp * x.im);
                    }
                }
            }
        }
    }
}

/// Piecewise-linear evaluation of a `(round, value)` trace at `round`,
/// clamping outside the knot range; `base` when the trace is empty.
pub fn trace_eval(trace: &[(f64, f64)], round: usize, base: f64) -> f64 {
    let r = round as f64;
    match trace {
        [] => base,
        [(r0, v0), ..] if r <= *r0 => *v0,
        [.., (rn, vn)] if r >= *rn => *vn,
        _ => {
            let i = trace.partition_point(|&(k, _)| k <= r);
            let (r0, v0) = trace[i - 1];
            let (r1, v1) = trace[i];
            v0 + (v1 - v0) * (r - r0) / (r1 - r0)
        }
    }
}

/// Per-link results of a scenario run.
#[derive(Clone, Debug, Default)]
pub struct LinkReport {
    /// The link's name.
    pub name: String,
    /// The link's band.
    pub band: u64,
    /// Rounds executed.
    pub rounds: u64,
    /// Full link statistics (delivery, BER, estimator accuracy, outcome
    /// taxonomy, recovery accounting).
    pub stats: LinkStats,
    /// Payload octets delivered.
    pub delivered_octets: u64,
    /// Total frame airtime, microseconds.
    pub airtime_us: f64,
    /// Sum of per-round MCS indices (mean = `mcs_sum / rounds`).
    pub mcs_sum: u64,
    /// The rate controller's final MCS (base MCS without adaptation).
    pub final_mcs: u8,
    /// Transport chunks dropped.
    pub dropped_chunks: u64,
}

impl LinkReport {
    /// Delivered payload bits over total airtime, Mbit/s.
    pub fn goodput_mbps(&self) -> f64 {
        if self.airtime_us > 0.0 {
            (self.delivered_octets * 8) as f64 / self.airtime_us
        } else {
            0.0
        }
    }

    /// Mean MCS across rounds.
    pub fn mean_mcs(&self) -> f64 {
        if self.rounds > 0 {
            self.mcs_sum as f64 / self.rounds as f64
        } else {
            0.0
        }
    }
}

impl Merge for LinkReport {
    /// A link runs as a single shard; merging only ever folds the real
    /// report into the identity.
    fn merge(&mut self, other: &Self) {
        if self.rounds == 0 && self.name.is_empty() {
            *self = other.clone();
        } else if other.rounds > 0 || !other.name.is_empty() {
            panic!("scenario links are single-shard; nothing to merge");
        }
    }
}

impl Serialize for LinkReport {
    fn serialize(&self) -> Value {
        Value::object([
            ("name", Value::Str(self.name.clone())),
            ("band", Value::U64(self.band)),
            ("rounds", Value::U64(self.rounds)),
            ("delivered_octets", Value::U64(self.delivered_octets)),
            ("airtime_us", Value::F64(self.airtime_us)),
            ("goodput_mbps", Value::F64(self.goodput_mbps())),
            ("mean_mcs", Value::F64(self.mean_mcs())),
            ("final_mcs", Value::U64(self.final_mcs as u64)),
            ("dropped_chunks", Value::U64(self.dropped_chunks)),
            ("stats", self.stats.serialize()),
        ])
    }
}

/// The scenario-level report: links (sorted by name) plus aggregates.
#[derive(Clone, Debug)]
pub struct ScenarioReport {
    /// Scenario name.
    pub name: String,
    /// Master seed the run used.
    pub seed: u64,
    /// Rounds per link.
    pub rounds: usize,
    /// The interference policy that was in force.
    pub interference: InterferenceSpec,
    /// Per-link reports, sorted by link name.
    pub links: Vec<LinkReport>,
}

impl ScenarioReport {
    /// Network aggregate goodput: links are concurrent, so the aggregate
    /// is the sum of per-link goodputs (folded in name order).
    pub fn aggregate_goodput_mbps(&self) -> f64 {
        self.links.iter().map(LinkReport::goodput_mbps).sum()
    }

    /// Frames delivered across all links.
    pub fn delivered(&self) -> u64 {
        self.links.iter().map(|l| l.stats.per.ok()).sum()
    }

    /// Frames sent across all links.
    pub fn sent(&self) -> u64 {
        self.links.iter().map(|l| l.stats.per.sent()).sum()
    }

    /// Network delivery rate.
    pub fn delivery_rate(&self) -> f64 {
        let sent = self.sent();
        if sent > 0 {
            self.delivered() as f64 / sent as f64
        } else {
            0.0
        }
    }

    /// Merged frame-outcome taxonomy, folded in name order.
    pub fn outcomes(&self) -> crate::telemetry::FrameOutcomes {
        let mut out = crate::telemetry::FrameOutcomes::default();
        for link in &self.links {
            Merge::merge(&mut out, &link.stats.outcomes);
        }
        out
    }
}

impl Serialize for ScenarioReport {
    fn serialize(&self) -> Value {
        Value::object([
            ("name", Value::Str(self.name.clone())),
            ("seed", Value::U64(self.seed)),
            ("rounds", Value::U64(self.rounds as u64)),
            (
                "interference",
                Value::object([
                    ("model", Value::Str(self.interference.model.name().into())),
                    ("coupling_db", Value::F64(self.interference.coupling_db)),
                ]),
            ),
            (
                "aggregate",
                Value::object([
                    ("goodput_mbps", Value::F64(self.aggregate_goodput_mbps())),
                    ("delivered", Value::U64(self.delivered())),
                    ("sent", Value::U64(self.sent())),
                    ("delivery_rate", Value::F64(self.delivery_rate())),
                    ("outcomes", self.outcomes().serialize()),
                ]),
            ),
            (
                "links",
                Value::Array(self.links.iter().map(Serialize::serialize).collect()),
            ),
        ])
    }
}

// ---------------------------------------------------------------------
// Value-tree parsing helpers.

/// Rejects unknown keys — typos in scenario files fail loudly instead of
/// silently running defaults.
fn check_keys(value: &Value, allowed: &[&str], what: &str) -> Result<(), ScenarioError> {
    let Some(pairs) = value.as_object() else {
        return Err(invalid(format!("{what} must be a table")));
    };
    for (k, _) in pairs {
        if !allowed.contains(&k.as_str()) {
            return Err(invalid(format!(
                "{what}: unknown key {k:?} (allowed: {allowed:?})"
            )));
        }
    }
    Ok(())
}

fn parse_interference(value: &Value) -> Result<InterferenceSpec, ScenarioError> {
    check_keys(value, &["model", "coupling_db"], "interference")?;
    let mut spec = InterferenceSpec::default();
    if let Some(v) = value.get("model") {
        let name = v
            .as_str()
            .ok_or_else(|| invalid("interference 'model' must be a string"))?;
        spec.model = InterferenceModel::parse(name)?;
    } else {
        // An [interference] table without an explicit model means "on".
        spec.model = InterferenceModel::Burst;
    }
    if let Some(v) = value.get("coupling_db") {
        spec.coupling_db = v
            .as_f64()
            .ok_or_else(|| invalid("interference 'coupling_db' must be a number"))?;
    }
    Ok(spec)
}

fn parse_trace(value: &Value, what: &str) -> Result<Vec<(f64, f64)>, ScenarioError> {
    let items = value
        .as_array()
        .ok_or_else(|| invalid(format!("{what} must be an array of [round, value] pairs")))?;
    let mut trace = Vec::with_capacity(items.len());
    for item in items {
        let pair = item
            .as_array()
            .filter(|p| p.len() == 2)
            .ok_or_else(|| invalid(format!("{what} entries must be [round, value] pairs")))?;
        let r = pair[0]
            .as_f64()
            .ok_or_else(|| invalid(format!("{what}: round must be a number")))?;
        let v = pair[1]
            .as_f64()
            .ok_or_else(|| invalid(format!("{what}: value must be a number")))?;
        trace.push((r, v));
    }
    Ok(trace)
}

/// Parses one link table over `defaults`. `is_defaults` permits the
/// nameless `[defaults]` table itself.
fn parse_link(
    value: &Value,
    defaults: &LinkSpec,
    is_defaults: bool,
) -> Result<LinkSpec, ScenarioError> {
    check_keys(
        value,
        &[
            "name",
            "preset",
            "snr_db",
            "fd_norm",
            "cfo_norm",
            "sfo_ppm",
            "mcs",
            "payload_len",
            "band",
            "faults",
            "adapt",
            "mobility",
            "fd_trace",
            "transport",
        ],
        "link",
    )?;
    let mut link = defaults.clone();
    match value.get("name") {
        Some(v) => {
            link.name = v
                .as_str()
                .ok_or_else(|| invalid("link 'name' must be a string"))?
                .to_string()
        }
        None if is_defaults => {}
        None => return Err(invalid("every [[links]] entry needs a 'name'")),
    }
    if let Some(v) = value.get("preset") {
        link.preset = v
            .as_str()
            .ok_or_else(|| invalid("link 'preset' must be a string"))?
            .to_string();
    }
    if let Some(v) = value.get("snr_db") {
        link.snr_db = v
            .as_f64()
            .ok_or_else(|| invalid("link 'snr_db' must be a number"))?;
    }
    if let Some(v) = value.get("fd_norm") {
        link.fd_norm = Some(
            v.as_f64()
                .ok_or_else(|| invalid("link 'fd_norm' must be a number"))?,
        );
    }
    if let Some(v) = value.get("cfo_norm") {
        link.cfo_norm = v
            .as_f64()
            .ok_or_else(|| invalid("link 'cfo_norm' must be a number"))?;
    }
    if let Some(v) = value.get("sfo_ppm") {
        link.sfo_ppm = v
            .as_f64()
            .ok_or_else(|| invalid("link 'sfo_ppm' must be a number"))?;
    }
    if let Some(v) = value.get("mcs") {
        link.mcs = v
            .as_u64()
            .filter(|&m| m <= u8::MAX as u64)
            .ok_or_else(|| invalid("link 'mcs' must be a small integer"))? as u8;
    }
    if let Some(v) = value.get("payload_len") {
        link.payload_len = v
            .as_u64()
            .ok_or_else(|| invalid("link 'payload_len' must be an integer"))?
            as usize;
    }
    if let Some(v) = value.get("band") {
        link.band = v
            .as_u64()
            .ok_or_else(|| invalid("link 'band' must be a non-negative integer"))?;
    }
    if let Some(v) = value.get("faults") {
        link.faults = v
            .as_str()
            .ok_or_else(|| invalid("link 'faults' must be a fault preset name"))?
            .to_string();
    }
    if let Some(v) = value.get("adapt") {
        link.adapt = v
            .as_bool()
            .ok_or_else(|| invalid("link 'adapt' must be a boolean"))?;
    }
    if let Some(v) = value.get("mobility") {
        link.mobility = parse_trace(v, "mobility")?;
    }
    if let Some(v) = value.get("fd_trace") {
        link.fd_trace = parse_trace(v, "fd_trace")?;
    }
    if let Some(v) = value.get("transport") {
        check_keys(v, &["chunk_len", "drop_rate"], "transport")?;
        let chunk_len = v
            .get("chunk_len")
            .map(|c| {
                c.as_u64()
                    .ok_or_else(|| invalid("transport 'chunk_len' must be an integer"))
            })
            .transpose()?
            .unwrap_or(1024) as usize;
        let drop_rate = v
            .get("drop_rate")
            .map(|d| {
                d.as_f64()
                    .ok_or_else(|| invalid("transport 'drop_rate' must be a number"))
            })
            .transpose()?
            .unwrap_or(0.0);
        link.transport = Some(TransportSpec {
            chunk_len,
            drop_rate,
        });
    }
    Ok(link)
}

#[cfg(test)]
mod tests {
    use super::*;

    const DUEL: &str = r#"
        name = "duel"
        seed = 9
        rounds = 4

        [interference]
        model = "burst"
        coupling_db = -14.0

        [defaults]
        mcs = 8
        payload_len = 64
        snr_db = 30.0

        [[links]]
        name = "a"

        [[links]]
        name = "b"
        adapt = true
        mobility = [[0, 30.0], [3, 24.0]]
    "#;

    #[test]
    fn toml_scenario_parses_with_defaults() {
        let spec = ScenarioSpec::from_toml_str(DUEL).unwrap();
        assert_eq!(spec.name, "duel");
        assert_eq!(spec.links.len(), 2);
        assert_eq!(spec.links[0].payload_len, 64);
        assert_eq!(spec.links[1].mobility.len(), 2);
        assert!(spec.links[1].adapt);
        assert_eq!(spec.interference.model, InterferenceModel::Burst);
        assert_eq!(spec.interference.coupling_db, -14.0);
    }

    #[test]
    fn json_scenario_parses() {
        let spec = ScenarioSpec::from_json_str(
            r#"{"name":"j","rounds":2,"links":[{"name":"x","snr_db":28.0,"payload_len":40}]}"#,
        )
        .unwrap();
        assert_eq!(spec.links[0].name, "x");
        assert_eq!(spec.links[0].payload_len, 40);
        assert_eq!(spec.interference.model, InterferenceModel::None);
    }

    #[test]
    fn invalid_scenarios_are_rejected() {
        let cases: &[(&str, &str)] = &[
            ("name = \"x\"\nrounds = 1\n", "no links"),
            (
                "name = \"x\"\nrounds = 1\n[[links]]\nname = \"a\"\n[[links]]\nname = \"a\"\n",
                "duplicate name",
            ),
            (
                "name = \"x\"\nrounds = 0\n[[links]]\nname = \"a\"\n",
                "zero rounds",
            ),
            (
                "name = \"x\"\nrounds = 1\n[[links]]\nname = \"a\"\npreset = \"nope\"\n",
                "unknown preset",
            ),
            (
                "name = \"x\"\nrounds = 1\n[[links]]\nname = \"a\"\nfaults = \"nope\"\n",
                "unknown fault preset",
            ),
            (
                "name = \"x\"\nrounds = 1\n[[links]]\nname = \"a\"\nmcs = 3\nadapt = true\n",
                "1-stream adapt",
            ),
            (
                "name = \"x\"\nrounds = 1\n[[links]]\nname = \"a\"\nbogus_key = 1\n",
                "unknown key",
            ),
            (
                "name = \"x\"\nrounds = 1\n[[links]]\nname = \"a\"\nmobility = [[3, 1.0], [1, 2.0]]\n",
                "descending trace",
            ),
            (
                "name = \"x\"\nrounds = 1\n[[links]]\nname = \"a\"\ntransport = { drop_rate = 1.5 }\n",
                "drop rate out of range",
            ),
        ];
        for (text, why) in cases {
            assert!(
                ScenarioSpec::from_toml_str(text).is_err(),
                "accepted scenario with {why}"
            );
        }
    }

    #[test]
    fn trace_eval_interpolates_and_clamps() {
        let trace = [(2.0, 10.0), (6.0, 30.0)];
        assert_eq!(trace_eval(&trace, 0, 99.0), 10.0);
        assert_eq!(trace_eval(&trace, 2, 99.0), 10.0);
        assert_eq!(trace_eval(&trace, 4, 99.0), 20.0);
        assert_eq!(trace_eval(&trace, 6, 99.0), 30.0);
        assert_eq!(trace_eval(&trace, 9, 99.0), 30.0);
        assert_eq!(trace_eval(&[], 5, 42.0), 42.0);
    }

    #[test]
    fn clean_two_link_scenario_delivers() {
        let spec = ScenarioSpec::from_toml_str(DUEL).unwrap();
        let report = spec.run(1);
        assert_eq!(report.links.len(), 2);
        assert_eq!(report.sent(), 8);
        assert!(
            report.delivery_rate() > 0.7,
            "30 dB duel should mostly deliver: {}",
            report.delivery_rate()
        );
        assert!(report.aggregate_goodput_mbps() > 0.0);
        for link in &report.links {
            assert_eq!(link.rounds, 4);
            assert_eq!(link.stats.outcomes.total(), 4);
        }
    }

    #[test]
    fn thread_count_and_link_order_do_not_change_the_report() {
        let spec = ScenarioSpec::from_toml_str(DUEL).unwrap();
        let mut shuffled = spec.clone();
        shuffled.links.reverse();
        let a = json::to_string(&spec.run(1).serialize());
        let b = json::to_string(&spec.run(4).serialize());
        let c = json::to_string(&shuffled.run(2).serialize());
        assert_eq!(a, b, "thread count changed the report");
        assert_eq!(a, c, "link order changed the report");
    }

    #[test]
    fn interference_degrades_shared_band_links() {
        let base = r#"
            name = "iso"
            seed = 3
            rounds = 6
            [defaults]
            mcs = 8
            payload_len = 96
            snr_db = 26.0
            [[links]]
            name = "a"
            [[links]]
            name = "b"
            [[links]]
            name = "c"
        "#;
        let isolated = ScenarioSpec::from_toml_str(base).unwrap();
        let mut jammed = isolated.clone();
        jammed.interference = InterferenceSpec {
            model: InterferenceModel::Burst,
            coupling_db: 3.0,
        };
        let clean = isolated.run(2);
        let noisy = jammed.run(2);
        assert!(
            noisy.delivered() < clean.delivered(),
            "strong co-channel bursts must cost frames: {} !< {}",
            noisy.delivered(),
            clean.delivered()
        );
    }

    #[test]
    fn waveform_interference_runs_and_differs_from_burst() {
        let mut spec = ScenarioSpec::from_toml_str(DUEL).unwrap();
        spec.interference.model = InterferenceModel::Waveform;
        let w = json::to_string(&spec.run(1).serialize());
        spec.interference.model = InterferenceModel::Burst;
        let b = json::to_string(&spec.run(1).serialize());
        assert_ne!(w, b, "the two interference models must not coincide");
    }

    #[test]
    fn adaptation_climbs_on_a_clean_link() {
        let spec = ScenarioSpec::from_toml_str(
            r#"
            name = "climb"
            seed = 1
            rounds = 12
            [[links]]
            name = "a"
            mcs = 8
            adapt = true
            snr_db = 34.0
            payload_len = 64
        "#,
        )
        .unwrap();
        let report = spec.run(1);
        let link = &report.links[0];
        assert!(
            link.final_mcs > 8,
            "a 34 dB link must climb above the base rate (final {})",
            link.final_mcs
        );
        assert!(link.mean_mcs() > 8.0);
    }

    #[test]
    fn transport_loss_drops_chunks_deterministically() {
        let spec = ScenarioSpec::from_toml_str(
            r#"
            name = "lossy"
            seed = 5
            rounds = 4
            [[links]]
            name = "a"
            snr_db = 30.0
            payload_len = 64
            transport = { chunk_len = 256, drop_rate = 0.5 }
        "#,
        )
        .unwrap();
        let a = spec.run(1);
        let b = spec.run(3);
        assert!(a.links[0].dropped_chunks > 0, "50% chunk loss must drop");
        assert_eq!(a.links[0].dropped_chunks, b.links[0].dropped_chunks);
        assert!(a.delivery_rate() < 1.0, "chunk loss must cost frames");
    }
}
