//! The pre-optimization receiver, kept verbatim.
//!
//! [`ReferenceReceiver`] is the straightforward allocate-per-stage
//! implementation the zero-copy [`crate::rx::Receiver`] replaced: it
//! copies the capture window per scan attempt, CFO-corrects whole buffers
//! eagerly, and allocates fresh vectors in every stage. It exists for two
//! reasons:
//!
//! * **Equivalence oracle** — `tests/equivalence.rs` asserts the
//!   optimized receiver produces *bit-identical* frames, errors and scan
//!   statistics on randomized captures.
//! * **Benchmark baseline** — the hot-path benchmarks report the
//!   optimized receiver's speedup against this implementation.
//!
//! Do not "improve" this module; its value is that it does not change.

use crate::config::RxConfig;
use crate::rx::{RxError, RxFrame, ScanStats, MAX_FRAME_SPAN};
use crate::tx::{deparse_streams_soft, DATA_POLARITY_OFFSET};
use mimonet_detect::chanest::ChannelEstimate;
use mimonet_detect::snr::snr_from_ltf_repetitions;
use mimonet_detect::{
    estimate_mimo_htltf, prepare as prepare_detector, smooth_frequency, Prepared,
};
use mimonet_dsp::complex::Complex64;
use mimonet_dsp::stats::lin_to_db;
use mimonet_fec::interleaver::Interleaver;
use mimonet_fec::puncture::depuncture_soft;
use mimonet_fec::viterbi::decode_soft_unterminated;
use mimonet_fec::{decode_hard, Symbol};
use mimonet_frame::carriers::{carrier_to_bin, FFT_LEN, PILOT_CARRIERS};
use mimonet_frame::mcs::Mcs;
use mimonet_frame::ofdm::Ofdm;
use mimonet_frame::pilots::{ht_pilots, legacy_pilots};
use mimonet_frame::preamble::num_htltf;
use mimonet_frame::psdu::descramble_data_bits;
use mimonet_frame::sig::{HtSig, LSig, SigError};
use mimonet_frame::Layout;
use mimonet_sync::{fine_timing, DetectorConfig, PacketDetector, VanDeBeek};

/// The pre-optimization receiver. Same configuration, same outputs as
/// [`crate::rx::Receiver`] — different (allocation-heavy) mechanics.
#[derive(Clone, Debug)]
pub struct ReferenceReceiver {
    cfg: RxConfig,
    ofdm: Ofdm,
}

impl ReferenceReceiver {
    /// Creates a reference receiver.
    pub fn new(cfg: RxConfig) -> Self {
        Self {
            cfg,
            ofdm: Ofdm::new(),
        }
    }

    /// Scans a long multi-frame capture, decoding every frame it finds —
    /// the copy-per-window implementation [`crate::rx::Receiver::scan`]
    /// replaced.
    pub fn scan(&self, rx: &[Vec<Complex64>]) -> (Vec<(usize, RxFrame)>, ScanStats) {
        const ERROR_STRIDE: usize = 400;
        let len = rx.iter().map(|a| a.len()).min().unwrap_or(0);
        let mut out = Vec::new();
        let mut stats = ScanStats::default();
        let mut offset = 0usize;
        while offset + 640 < len {
            let hi = (offset + MAX_FRAME_SPAN).min(len);
            let window: Vec<Vec<Complex64>> = rx.iter().map(|a| a[offset..hi].to_vec()).collect();
            match self.receive(&window) {
                Ok(frame) => {
                    let end = frame.frame_end;
                    out.push((offset, frame));
                    offset += end.max(ERROR_STRIDE);
                }
                Err(RxError::NoPacket) => {
                    if hi == len {
                        break;
                    }
                    offset = hi - 640;
                }
                Err(RxError::AntennaMismatch { .. }) => {
                    break;
                }
                Err(e) => {
                    stats.rescans += 1;
                    match e {
                        RxError::LSig(_) | RxError::HtSig(_) | RxError::TooManyStreams { .. } => {
                            stats.header_errors += 1
                        }
                        RxError::Fec => stats.fec_errors += 1,
                        _ => stats.sync_errors += 1,
                    }
                    offset += ERROR_STRIDE;
                }
            }
        }
        stats.frames = out.len();
        (out, stats)
    }

    /// [`Self::scan`] returning only the frames.
    pub fn receive_all(&self, rx: &[Vec<Complex64>]) -> Vec<(usize, RxFrame)> {
        self.scan(rx).0
    }

    /// Attempts to detect and decode one frame from per-antenna buffers.
    pub fn receive(&self, rx: &[Vec<Complex64>]) -> Result<RxFrame, RxError> {
        if rx.len() != self.cfg.n_rx {
            return Err(RxError::AntennaMismatch {
                expected: self.cfg.n_rx,
                got: rx.len(),
            });
        }
        let len = rx[0].len();
        if rx.iter().any(|a| a.len() != len) {
            return Err(RxError::AntennaMismatch {
                expected: self.cfg.n_rx,
                got: rx.len(),
            });
        }

        // --- 1. Packet detection + coarse CFO ---
        let mut detector = PacketDetector::new(self.cfg.n_rx, DetectorConfig::default());
        let refs: Vec<&[Complex64]> = rx.iter().map(|a| a.as_slice()).collect();
        let det = detector.detect(&refs).ok_or(RxError::NoPacket)?;

        // --- 2. Coarse CFO correction (whole buffer) ---
        let mut bufs: Vec<Vec<Complex64>> = rx.to_vec();
        let mut total_cfo = det.coarse_cfo;
        for b in &mut bufs {
            mimonet_channel::impairments::apply_cfo(b, -det.coarse_cfo, 0.0);
        }

        // --- 3. Fine timing: locate the first L-LTF body ---
        let cfg_det = DetectorConfig::default();
        let approx_stf_start = det
            .confirmed_at
            .saturating_sub(cfg_det.lag + cfg_det.window + cfg_det.min_run - 1);
        let ltf_guess = approx_stf_start + 160 + 32;
        let ltf_start = if self.cfg.fine_timing {
            let win_lo = ltf_guess.saturating_sub(40);
            let win_hi = (ltf_guess + 40 + 128 + 64).min(len);
            if win_hi <= win_lo + 64 {
                return Err(RxError::SyncLost);
            }
            let windows: Vec<&[Complex64]> = bufs.iter().map(|b| &b[win_lo..win_hi]).collect();
            let ft = fine_timing(&windows).ok_or(RxError::SyncLost)?;
            win_lo + ft.ltf_start
        } else {
            let win_lo = (ltf_guess + 128).min(len);
            let win_hi = (win_lo + 480).min(len);
            if win_hi >= win_lo + 160 {
                let windows: Vec<&[Complex64]> = bufs.iter().map(|b| &b[win_lo..win_hi]).collect();
                let vdb = VanDeBeek::new(64, 16, self.cfg.vdb_snr_db);
                match vdb.estimate(&windows) {
                    Some(est) => {
                        let r = (est.timing % 80) as isize;
                        let delta = if r > 40 { r - 80 } else { r };
                        (ltf_guess as isize + delta).max(0) as usize
                    }
                    None => ltf_guess,
                }
            } else {
                ltf_guess
            }
        };
        let ltf_start = ltf_start.saturating_sub(self.cfg.timing_backoff);
        if ltf_start + 128 > len {
            return Err(RxError::BufferTooShort);
        }

        // --- 4. Fine CFO from the LTF repetitions ---
        let mut gamma = Complex64::ZERO;
        for b in &bufs {
            let b1 = &b[ltf_start..ltf_start + 64];
            let b2 = &b[ltf_start + 64..ltf_start + 128];
            gamma += mimonet_dsp::complex::dot_conj(b1, b2);
        }
        let fine_cfo = -gamma.arg() / (2.0 * std::f64::consts::PI);
        total_cfo += fine_cfo;
        for b in &mut bufs {
            mimonet_channel::impairments::apply_cfo(b, -fine_cfo, 0.0);
        }

        // --- 5. SNR and noise variance from the corrected LTFs ---
        let scale52 = Ofdm::unit_power_scale(52);
        let scale56 = Ofdm::unit_power_scale(56);
        let mut snr_acc = 0.0;
        let mut legacy_est: Vec<ChannelEstimate> = Vec::with_capacity(self.cfg.n_rx);
        let mut noise_bin_var = 0.0;
        for b in &bufs {
            let b1 = &b[ltf_start..ltf_start + 64];
            let b2 = &b[ltf_start + 64..ltf_start + 128];
            snr_acc += snr_from_ltf_repetitions(b1, b2).unwrap_or(0.0);
            let f1 = self.ofdm.demodulate_window(b1, scale52);
            let f2 = self.ofdm.demodulate_window(b2, scale52);
            let mut acc = 0.0;
            let mut n = 0.0;
            for k in -26..=26i32 {
                if k == 0 {
                    continue;
                }
                let bin = carrier_to_bin(k);
                acc += f1[bin].dist_sqr(f2[bin]);
                n += 1.0;
            }
            noise_bin_var += acc / n / 2.0;
            legacy_est.push(mimonet_detect::estimate_siso_lltf(&f1, &f2));
        }
        let snr_db = lin_to_db(snr_acc / self.cfg.n_rx as f64);
        let noise_var_sig = (noise_bin_var / self.cfg.n_rx as f64).max(1e-12);
        let noise_var_data = noise_var_sig * 56.0 / 52.0;

        // --- 6. L-SIG and HT-SIG ---
        let lsig_start = ltf_start + 128;
        if lsig_start + 3 * 80 > len {
            return Err(RxError::BufferTooShort);
        }
        let lsig_bits = self.decode_legacy_symbol(&bufs, lsig_start, &legacy_est, 0, false)?;
        let mut lsig24 = decode_hard(&to_symbols(&lsig_bits)).map_err(|_| RxError::SyncLost)?;
        lsig24.extend_from_slice(&[0; 6]);
        let _lsig = LSig::decode(&lsig24).map_err(RxError::LSig)?;

        let ht1 = self.decode_legacy_symbol(&bufs, lsig_start + 80, &legacy_est, 1, true)?;
        let ht2 = self.decode_legacy_symbol(&bufs, lsig_start + 160, &legacy_est, 2, true)?;
        let mut coded = ht1;
        coded.extend(ht2);
        let mut htsig_bits = decode_hard(&to_symbols(&coded)).map_err(|_| RxError::SyncLost)?;
        htsig_bits.extend_from_slice(&[0; 6]);
        let htsig = HtSig::decode(&htsig_bits).map_err(RxError::HtSig)?;
        let mcs =
            Mcs::from_index(htsig.mcs).map_err(|_| RxError::HtSig(SigError::BadMcs(htsig.mcs)))?;
        let n_ss = mcs.n_streams;
        if n_ss > self.cfg.n_rx {
            return Err(RxError::TooManyStreams {
                streams: n_ss,
                antennas: self.cfg.n_rx,
            });
        }

        // --- 7. HT-LTF channel estimation ---
        let n_ltf = num_htltf(n_ss);
        let htltf_start = lsig_start + 240 + 80; // skip HT-STF
        if htltf_start + n_ltf * 80 > len {
            return Err(RxError::BufferTooShort);
        }
        let mut ltf_bins: Vec<Vec<[Complex64; FFT_LEN]>> = Vec::with_capacity(n_ltf);
        for i in 0..n_ltf {
            let base = htltf_start + i * 80;
            let per_rx: Vec<[Complex64; FFT_LEN]> = bufs
                .iter()
                .map(|b| self.ofdm.demodulate(&b[base..base + 80], scale56))
                .collect();
            ltf_bins.push(per_rx);
        }
        let mut chan = estimate_mimo_htltf(&ltf_bins, n_ss);
        if self.cfg.smoothing > 0 && htsig.smoothing {
            chan = smooth_frequency(&chan, self.cfg.smoothing);
        }

        // --- 8/9. Data symbols ---
        let n_sym = mcs.num_symbols(htsig.length as usize * 8);
        let data_start = htltf_start + n_ltf * 80;
        if data_start + n_sym * 80 > len {
            return Err(RxError::BufferTooShort);
        }

        let interleavers: Vec<Interleaver> = (0..n_ss)
            .map(|s| Interleaver::ht(mcs.n_cbpss(), mcs.n_bpsc(), s, n_ss))
            .collect();
        let data_carriers = Layout::Ht.data_carriers();
        let mut prepared: Vec<Prepared> = Vec::with_capacity(data_carriers.len());
        for &k in data_carriers {
            let h = chan.at(k).ok_or(RxError::Detector)?;
            prepared.push(
                prepare_detector(self.cfg.detector, h, noise_var_data, mcs.modulation)
                    .map_err(|_| RxError::Detector)?,
            );
        }
        let mut tracker = mimonet_sync::PhaseTracker::new(0.5);
        let mut evm = mimonet_detect::EvmSnrEstimator::new();
        let mut all_llrs: Vec<f64> = Vec::with_capacity(n_sym * mcs.n_cbps());

        for sym in 0..n_sym {
            let base = data_start + sym * 80;
            let mut bins: Vec<[Complex64; FFT_LEN]> = bufs
                .iter()
                .map(|b| self.ofdm.demodulate(&b[base..base + 80], scale56))
                .collect();

            if self.cfg.pilot_tracking {
                let mut obs = Vec::with_capacity(4 * self.cfg.n_rx);
                for (i, &k) in PILOT_CARRIERS.iter().enumerate() {
                    if let Some(h) = chan.at(k) {
                        for r in 0..self.cfg.n_rx {
                            let mut expected = Complex64::ZERO;
                            for s in 0..n_ss {
                                let p = ht_pilots(s, n_ss, sym, DATA_POLARITY_OFFSET)[i];
                                expected += h[(r, s)] * p;
                            }
                            obs.push((k, expected, bins[r][carrier_to_bin(k)]));
                        }
                    }
                }
                if let Some(est) = tracker.update(&obs) {
                    for b in bins.iter_mut() {
                        for k in -28..=28i32 {
                            if k == 0 {
                                continue;
                            }
                            let bin = carrier_to_bin(k);
                            b[bin] *= est.correction(k);
                        }
                    }
                }
            }

            let mut stream_llrs: Vec<Vec<f64>> = vec![Vec::with_capacity(mcs.n_cbpss()); n_ss];
            for (det, &k) in prepared.iter().zip(data_carriers) {
                let y: Vec<Complex64> = bins.iter().map(|b| b[carrier_to_bin(k)]).collect();
                let decisions = det.apply(&y);
                for (s, d) in decisions.iter().enumerate() {
                    stream_llrs[s].extend(&d.llrs);
                    evm.push_decided(d.symbol, mcs.modulation);
                }
            }

            let deinterleaved: Vec<Vec<f64>> = stream_llrs
                .iter()
                .enumerate()
                .map(|(s, l)| interleavers[s].deinterleave_soft(l))
                .collect();
            all_llrs.extend(deparse_streams_soft(&deinterleaved, mcs.n_bpsc()));
        }

        // --- 10. FEC decode + descramble ---
        let mother_len = 2 * n_sym * mcs.n_dbps();
        let full_llrs = depuncture_soft(&all_llrs, mcs.code_rate, mother_len);
        let decoded = if self.cfg.soft_decoding {
            decode_soft_unterminated(&full_llrs).map_err(|_| RxError::Fec)?
        } else {
            let hard: Vec<Symbol> = full_llrs
                .iter()
                .map(|&l| {
                    if l == 0.0 {
                        Symbol::Erased
                    } else {
                        Symbol::Bit(if l > 0.0 { 0 } else { 1 })
                    }
                })
                .collect();
            mimonet_fec::decode_hard_unterminated(&hard).map_err(|_| RxError::Fec)?
        };
        let psdu = descramble_data_bits(&decoded, htsig.length as usize).ok_or(RxError::Fec)?;

        Ok(RxFrame {
            psdu,
            mcs: htsig.mcs,
            snr_db,
            cfo: total_cfo,
            timing: ltf_start,
            evm_snr_db: evm.snr_db(),
            frame_end: data_start + n_sym * 80,
            coded_hard: all_llrs
                .iter()
                .map(|&l| if l > 0.0 { 0 } else { 1 })
                .collect(),
        })
    }

    /// Demodulates and MRC-equalizes one legacy symbol, returning the 48
    /// deinterleaved coded bits.
    fn decode_legacy_symbol(
        &self,
        bufs: &[Vec<Complex64>],
        start: usize,
        legacy_est: &[ChannelEstimate],
        sym_index: usize,
        quadrature: bool,
    ) -> Result<Vec<u8>, RxError> {
        let scale52 = Ofdm::unit_power_scale(52);
        let bins: Vec<[Complex64; FFT_LEN]> = bufs
            .iter()
            .map(|b| self.ofdm.demodulate(&b[start..start + 80], scale52))
            .collect();

        let pil = legacy_pilots(sym_index, 0);
        let mut phase_acc = Complex64::ZERO;
        for (i, &k) in PILOT_CARRIERS.iter().enumerate() {
            for (r, est) in legacy_est.iter().enumerate() {
                if let Some(h) = est.at(k) {
                    let expected = h[(0, 0)] * pil[i];
                    phase_acc += bins[r][carrier_to_bin(k)] * expected.conj();
                }
            }
        }
        let derot = if phase_acc.abs() > 1e-12 {
            Complex64::cis(-phase_acc.arg())
        } else {
            Complex64::ONE
        };

        let rot = if quadrature {
            Complex64::new(0.0, -1.0)
        } else {
            Complex64::ONE
        };
        let mut hard = Vec::with_capacity(48);
        for &k in Layout::Legacy.data_carriers() {
            let bin = carrier_to_bin(k);
            let mut num = Complex64::ZERO;
            let mut den = 0.0;
            for (r, est) in legacy_est.iter().enumerate() {
                if let Some(h) = est.at(k) {
                    let hv = h[(0, 0)];
                    num += bins[r][bin] * hv.conj();
                    den += hv.norm_sqr();
                }
            }
            if den <= 1e-15 {
                return Err(RxError::SyncLost);
            }
            let eq = num.scale(1.0 / den) * derot * rot;
            hard.push(if eq.re > 0.0 { 1 } else { 0 });
        }
        let il = Interleaver::legacy(48, 1);
        Ok(il.deinterleave(&hard))
    }
}

fn to_symbols(bits: &[u8]) -> Vec<Symbol> {
    bits.iter().map(|&b| Symbol::Bit(b)).collect()
}
