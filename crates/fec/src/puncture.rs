//! Puncturing and depuncturing for the 802.11 code-rate family.
//!
//! The rate-1/2 mother code (see [`crate::conv`]) is punctured to 2/3, 3/4
//! or 5/6 by deleting coded bits in the fixed patterns of IEEE 802.11-2012
//! §18.3.5.6 / 802.11n §20.3.11.6. The receiver re-inserts erasures at the
//! deleted positions before Viterbi decoding.

use crate::viterbi::Symbol;

/// The code rates supported by the transceiver.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CodeRate {
    /// Rate 1/2 — the unpunctured mother code.
    R1_2,
    /// Rate 2/3 — one of every four coded bits removed.
    R2_3,
    /// Rate 3/4 — two of every six coded bits removed.
    R3_4,
    /// Rate 5/6 (802.11n) — four of every ten coded bits removed.
    R5_6,
}

impl CodeRate {
    /// Puncture pattern over one period of the *coded* stream
    /// (`[a0,b0,a1,b1,...]`): `true` = keep, `false` = delete.
    pub fn pattern(self) -> &'static [bool] {
        match self {
            // No puncturing.
            CodeRate::R1_2 => &[true, true],
            // Keep A1 B1 A2, drop B2.
            CodeRate::R2_3 => &[true, true, true, false],
            // Keep A1 B1 A2 B3, drop B2 A3.
            CodeRate::R3_4 => &[true, true, true, false, false, true],
            // Keep A1 B1 A2 B3 A4 B5, drop B2 A3 B4 A5.
            CodeRate::R5_6 => &[
                true, true, true, false, false, true, true, false, false, true,
            ],
        }
    }

    /// Numerator of the rate (data bits per period).
    pub fn k(self) -> usize {
        match self {
            CodeRate::R1_2 => 1,
            CodeRate::R2_3 => 2,
            CodeRate::R3_4 => 3,
            CodeRate::R5_6 => 5,
        }
    }

    /// Denominator of the rate (transmitted bits per period).
    pub fn n(self) -> usize {
        match self {
            CodeRate::R1_2 => 2,
            CodeRate::R2_3 => 3,
            CodeRate::R3_4 => 4,
            CodeRate::R5_6 => 6,
        }
    }

    /// The rate as a float, `k/n`.
    pub fn as_f64(self) -> f64 {
        self.k() as f64 / self.n() as f64
    }

    /// Number of transmitted bits produced by `data_bits` information bits
    /// passed through encode → puncture (excluding tail handling; use on
    /// tail-included lengths).
    pub fn coded_len(self, mother_coded_len: usize) -> usize {
        let p = self.pattern();
        let keep_per_period = p.iter().filter(|&&k| k).count();
        let full = mother_coded_len / p.len();
        let rem = mother_coded_len % p.len();
        let partial = p[..rem].iter().filter(|&&k| k).count();
        full * keep_per_period + partial
    }
}

impl std::fmt::Display for CodeRate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodeRate::R1_2 => write!(f, "1/2"),
            CodeRate::R2_3 => write!(f, "2/3"),
            CodeRate::R3_4 => write!(f, "3/4"),
            CodeRate::R5_6 => write!(f, "5/6"),
        }
    }
}

/// Removes punctured positions from a mother-coded stream.
pub fn puncture(coded: &[u8], rate: CodeRate) -> Vec<u8> {
    let p = rate.pattern();
    coded
        .iter()
        .enumerate()
        .filter(|(i, _)| p[i % p.len()])
        .map(|(_, &b)| b)
        .collect()
}

/// Re-inserts erasures at punctured positions, producing a hard-decision
/// stream of `mother_len` symbols for the Viterbi decoder.
///
/// # Panics
///
/// Panics if `punctured.len()` does not match
/// `rate.coded_len(mother_len)` — a framing bug upstream.
pub fn depuncture_hard(punctured: &[u8], rate: CodeRate, mother_len: usize) -> Vec<Symbol> {
    let expect = rate.coded_len(mother_len);
    assert_eq!(
        punctured.len(),
        expect,
        "punctured stream length {} != expected {} for rate {} and mother length {}",
        punctured.len(),
        expect,
        rate,
        mother_len
    );
    let p = rate.pattern();
    let mut it = punctured.iter();
    (0..mother_len)
        .map(|i| {
            if p[i % p.len()] {
                Symbol::Bit(*it.next().expect("length checked above"))
            } else {
                Symbol::Erased
            }
        })
        .collect()
}

/// Soft-decision counterpart of [`depuncture_hard`]: re-inserts LLR `0.0`
/// (no information) at punctured positions.
pub fn depuncture_soft(punctured: &[f64], rate: CodeRate, mother_len: usize) -> Vec<f64> {
    let mut out = Vec::new();
    depuncture_soft_into(punctured, rate, mother_len, &mut out);
    out
}

/// [`depuncture_soft`] writing into a caller-owned vector (cleared first;
/// capacity is reused) — the allocation-free path for the RX FEC stage.
///
/// # Panics
///
/// Panics on the same length mismatch as [`depuncture_soft`].
pub fn depuncture_soft_into(
    punctured: &[f64],
    rate: CodeRate,
    mother_len: usize,
    out: &mut Vec<f64>,
) {
    let expect = rate.coded_len(mother_len);
    assert_eq!(
        punctured.len(),
        expect,
        "punctured LLR length {} != expected {} for rate {} and mother length {}",
        punctured.len(),
        expect,
        rate,
        mother_len
    );
    out.clear();
    out.reserve(mother_len);
    let p = rate.pattern();
    let mut it = punctured.iter();
    out.extend((0..mother_len).map(|i| {
        if p[i % p.len()] {
            *it.next().unwrap()
        } else {
            0.0
        }
    }));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv::encode_terminated;
    use crate::viterbi::{decode_hard, decode_soft};

    fn prbs(len: usize, mut x: u64) -> Vec<u8> {
        x |= 1;
        (0..len)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x & 1) as u8
            })
            .collect()
    }

    #[test]
    fn rate_arithmetic() {
        assert_eq!(CodeRate::R1_2.as_f64(), 0.5);
        assert!((CodeRate::R2_3.as_f64() - 2.0 / 3.0).abs() < 1e-12);
        assert!((CodeRate::R3_4.as_f64() - 0.75).abs() < 1e-12);
        assert!((CodeRate::R5_6.as_f64() - 5.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn pattern_keep_counts_match_rates() {
        for r in [
            CodeRate::R1_2,
            CodeRate::R2_3,
            CodeRate::R3_4,
            CodeRate::R5_6,
        ] {
            let p = r.pattern();
            // Period covers 2*k mother bits and keeps n of them.
            assert_eq!(p.len(), 2 * r.k());
            assert_eq!(p.iter().filter(|&&b| b).count(), r.n());
        }
    }

    #[test]
    fn rate_1_2_is_identity() {
        let coded = prbs(40, 9);
        assert_eq!(puncture(&coded, CodeRate::R1_2), coded);
    }

    #[test]
    fn coded_len_counts() {
        // 24 mother bits at 3/4: periods of 6 keep 4 → 16.
        assert_eq!(CodeRate::R3_4.coded_len(24), 16);
        // Partial period: 26 mother bits = 4 periods + 2 → 16 + 2 kept.
        assert_eq!(CodeRate::R3_4.coded_len(26), 18);
        assert_eq!(CodeRate::R5_6.coded_len(20), 12);
        assert_eq!(CodeRate::R1_2.coded_len(10), 10);
    }

    #[test]
    fn puncture_depuncture_positions() {
        let coded: Vec<u8> = (0..12).map(|i| (i % 2) as u8).collect();
        let tx = puncture(&coded, CodeRate::R3_4);
        assert_eq!(tx.len(), 8);
        let rx = depuncture_hard(&tx, CodeRate::R3_4, 12);
        for (i, s) in rx.iter().enumerate() {
            let kept = CodeRate::R3_4.pattern()[i % 6];
            match s {
                Symbol::Bit(b) => {
                    assert!(kept);
                    assert_eq!(*b, coded[i]);
                }
                Symbol::Erased => assert!(!kept),
            }
        }
    }

    #[test]
    fn end_to_end_all_rates_clean_channel() {
        for rate in [
            CodeRate::R1_2,
            CodeRate::R2_3,
            CodeRate::R3_4,
            CodeRate::R5_6,
        ] {
            // Pick a data length that makes the mother length divisible by
            // the pattern period to keep the test simple.
            let data = prbs(114, 1234);
            let mother = encode_terminated(&data);
            let tx = puncture(&mother, rate);
            let rx = depuncture_hard(&tx, rate, mother.len());
            let decoded = decode_hard(&rx).unwrap_or_else(|e| panic!("rate {rate}: {e}"));
            assert_eq!(decoded, data, "rate {rate}");
        }
    }

    #[test]
    fn end_to_end_soft_all_rates() {
        for rate in [CodeRate::R2_3, CodeRate::R3_4, CodeRate::R5_6] {
            let data = prbs(114, 77);
            let mother = encode_terminated(&data);
            let tx = puncture(&mother, rate);
            let llrs: Vec<f64> = tx
                .iter()
                .map(|&b| if b == 0 { 3.0 } else { -3.0 })
                .collect();
            let rx = depuncture_soft(&llrs, rate, mother.len());
            assert_eq!(decode_soft(&rx).unwrap(), data, "rate {rate}");
        }
    }

    #[test]
    fn punctured_code_still_corrects_an_error() {
        let data = prbs(114, 5);
        let mother = encode_terminated(&data);
        let mut tx = puncture(&mother, CodeRate::R2_3);
        tx[30] ^= 1;
        let rx = depuncture_hard(&tx, CodeRate::R2_3, mother.len());
        assert_eq!(decode_hard(&rx).unwrap(), data);
    }

    #[test]
    #[should_panic(expected = "punctured stream length")]
    fn depuncture_length_mismatch_panics() {
        depuncture_hard(&[1, 0, 1], CodeRate::R3_4, 24);
    }

    #[test]
    fn display_names() {
        assert_eq!(CodeRate::R1_2.to_string(), "1/2");
        assert_eq!(CodeRate::R5_6.to_string(), "5/6");
    }
}
