//! CRC-32 (IEEE 802.3 / 802.11 FCS).
//!
//! The MIMONet packet format appends this FCS to every PSDU so the receiver
//! can count packet errors (PER) exactly as the paper's instrumentation
//! does. Parameters: polynomial 0x04C11DB7 (reflected 0xEDB88320), init
//! 0xFFFFFFFF, reflected input/output, final XOR 0xFFFFFFFF.

/// Byte-at-a-time lookup table for the reflected polynomial.
fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, slot) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *slot = c;
        }
        t
    })
}

/// Streaming CRC-32 accumulator.
#[derive(Clone, Copy, Debug)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Creates a fresh accumulator.
    pub fn new() -> Self {
        Self { state: 0xFFFF_FFFF }
    }

    /// Absorbs bytes.
    pub fn update(&mut self, data: &[u8]) {
        let t = table();
        for &b in data {
            self.state = t[((self.state ^ b as u32) & 0xFF) as usize] ^ (self.state >> 8);
        }
    }

    /// Finalizes and returns the CRC value.
    pub fn finalize(self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

/// One-shot CRC-32 of a byte slice.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(data);
    c.finalize()
}

/// Appends the FCS to `data` in the 802.11 wire order (little-endian).
pub fn append_fcs(data: &mut Vec<u8>) {
    let fcs = crc32(data);
    data.extend_from_slice(&fcs.to_le_bytes());
}

/// Checks a frame that ends with a little-endian FCS; returns the payload
/// on success.
pub fn check_fcs(frame: &[u8]) -> Option<&[u8]> {
    if frame.len() < 4 {
        return None;
    }
    let (payload, fcs_bytes) = frame.split_at(frame.len() - 4);
    let got = u32::from_le_bytes([fcs_bytes[0], fcs_bytes[1], fcs_bytes[2], fcs_bytes[3]]);
    if crc32(payload) == got {
        Some(payload)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The classic check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn streaming_equals_oneshot() {
        let data: Vec<u8> = (0..=255).collect();
        let mut c = Crc32::new();
        c.update(&data[..100]);
        c.update(&data[100..]);
        assert_eq!(c.finalize(), crc32(&data));
    }

    #[test]
    fn fcs_roundtrip() {
        let mut frame = b"hello mimo world".to_vec();
        append_fcs(&mut frame);
        assert_eq!(frame.len(), 20);
        assert_eq!(check_fcs(&frame), Some(b"hello mimo world".as_slice()));
    }

    #[test]
    fn fcs_detects_single_bit_flip_anywhere() {
        let mut frame = vec![0x42u8; 64];
        append_fcs(&mut frame);
        for byte in 0..frame.len() {
            for bit in 0..8 {
                let mut bad = frame.clone();
                bad[byte] ^= 1 << bit;
                assert!(check_fcs(&bad).is_none(), "missed flip at {byte}:{bit}");
            }
        }
    }

    #[test]
    fn short_frames_rejected() {
        assert!(check_fcs(&[]).is_none());
        assert!(check_fcs(&[1, 2, 3]).is_none());
        // Exactly 4 bytes: empty payload; valid only if the 4 bytes are the
        // CRC of nothing (0).
        let mut empty = Vec::new();
        append_fcs(&mut empty);
        assert_eq!(check_fcs(&empty), Some(&[][..]));
    }
}
