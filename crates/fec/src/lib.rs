//! # mimonet-fec
//!
//! Forward error correction for MIMONet-rs, covering the "concatenation of
//! FEC in the packet construction" feature of the SRIF'14 paper:
//!
//! * the 802.11 frame-synchronous [`scrambler`],
//! * the K=7 (133, 171) [`conv`]olutional encoder,
//! * [`mod@puncture`]-derived code rates 1/2, 2/3, 3/4, 5/6,
//! * hard- and soft-decision [`viterbi`] decoding with erasure support,
//! * the per-symbol, per-spatial-stream block [`interleaver`], and
//! * the CRC-32 frame check sequence ([`crc`]).
//!
//! Everything is bit-exact against the IEEE 802.11-2012 definitions where a
//! published test vector exists (scrambler keystream, CRC check values,
//! legacy BPSK interleaver map, code free distance).

pub mod bits;
pub mod conv;
pub mod crc;
pub mod interleaver;
pub mod puncture;
pub mod scrambler;
pub mod viterbi;

pub use conv::{encode_terminated, ConvEncoder};
pub use crc::{append_fcs, check_fcs, crc32};
pub use interleaver::Interleaver;
pub use puncture::{depuncture_hard, depuncture_soft, depuncture_soft_into, puncture, CodeRate};
pub use scrambler::Scrambler;
pub use viterbi::{
    decode_hard, decode_hard_unterminated, decode_soft, decode_soft_unterminated, Symbol,
    ViterbiDecoder, ViterbiError,
};
