//! 802.11 data scrambler.
//!
//! The standard's frame-synchronous scrambler is a 7-bit LFSR with
//! generator `x^7 + x^4 + 1` (IEEE 802.11-2012 §18.3.5.5). The transmitter
//! seeds it with a nonzero 7-bit initial state carried implicitly in the
//! first 7 scrambled bits of the SERVICE field; descrambling is the
//! identical operation, so one type serves both directions.

/// The 802.11 frame-synchronous scrambler / descrambler.
#[derive(Clone, Debug)]
pub struct Scrambler {
    state: u8, // 7-bit LFSR state, bit 0 = x^1 ... bit 6 = x^7
}

impl Scrambler {
    /// Creates a scrambler with the given 7-bit seed.
    ///
    /// # Panics
    ///
    /// Panics when `seed` is zero (an all-zero LFSR never leaves the zero
    /// state) or wider than 7 bits.
    pub fn new(seed: u8) -> Self {
        assert!(seed != 0, "scrambler seed must be nonzero");
        assert!(
            seed < 0x80,
            "scrambler seed is a 7-bit value, got {seed:#x}"
        );
        Self { state: seed }
    }

    /// The conventional default seed used by the reference GNU Radio
    /// implementation (all ones).
    pub fn with_default_seed() -> Self {
        Self::new(0x7F)
    }

    /// Produces the next keystream bit and advances the LFSR.
    pub fn next_bit(&mut self) -> u8 {
        // Feedback: x^7 xor x^4 (bits 6 and 3 of the state).
        let fb = ((self.state >> 6) ^ (self.state >> 3)) & 1;
        self.state = ((self.state << 1) | fb) & 0x7F;
        fb
    }

    /// Scrambles (or descrambles) a bit sequence in place.
    pub fn scramble_in_place(&mut self, bits: &mut [u8]) {
        for b in bits.iter_mut() {
            *b ^= self.next_bit();
        }
    }

    /// Scrambles (or descrambles) a bit sequence, returning a new vector.
    pub fn scramble(&mut self, bits: &[u8]) -> Vec<u8> {
        let mut out = bits.to_vec();
        self.scramble_in_place(&mut out);
        out
    }

    /// Current 7-bit LFSR state.
    pub fn state(&self) -> u8 {
        self.state
    }
}

/// Recovers the scrambler seed from the first 7 descrambled-to-zero bits.
///
/// 802.11 transmits the SERVICE field's first 7 bits as zeros; after
/// scrambling they equal the keystream, so the receiver can solve for the
/// initial state. `first7` holds those 7 received (scrambled) bits in
/// transmission order. Returns `None` for the impossible all-zero state.
pub fn recover_seed(first7: &[u8; 7]) -> Option<u8> {
    // The keystream bits are successive feedback outputs; run the LFSR
    // relation backwards. keystream[i] = s6(i) ^ s3(i), and the state shifts
    // left absorbing the keystream. Brute force over 127 states is simpler
    // and obviously correct at this size.
    for seed in 1u8..0x80 {
        let mut s = Scrambler::new(seed);
        if (0..7).all(|i| s.next_bit() == first7[i]) {
            return Some(seed);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scramble_descramble_roundtrip() {
        let bits: Vec<u8> = (0..256).map(|i| ((i * 7) % 3 == 0) as u8).collect();
        let mut tx = Scrambler::new(0x5D);
        let scrambled = tx.scramble(&bits);
        assert_ne!(scrambled, bits);
        let mut rx = Scrambler::new(0x5D);
        assert_eq!(rx.scramble(&scrambled), bits);
    }

    #[test]
    fn known_keystream_prefix() {
        // With the all-ones seed the 802.11 keystream starts
        // 0000 1110 1111 0010 ... (§18.3.5.5 example, first bits 00001110...).
        let mut s = Scrambler::new(0x7F);
        let ks: Vec<u8> = (0..16).map(|_| s.next_bit()).collect();
        assert_eq!(&ks[..8], &[0, 0, 0, 0, 1, 1, 1, 0]);
        assert_eq!(&ks[8..16], &[1, 1, 1, 1, 0, 0, 1, 0]);
    }

    #[test]
    fn period_is_127() {
        let mut s = Scrambler::new(0x01);
        let first: Vec<u8> = (0..127).map(|_| s.next_bit()).collect();
        let second: Vec<u8> = (0..127).map(|_| s.next_bit()).collect();
        assert_eq!(first, second);
        // A maximal-length sequence of period 127 has 64 ones.
        assert_eq!(first.iter().filter(|&&b| b == 1).count(), 64);
    }

    #[test]
    fn seed_recovery() {
        for seed in [0x01u8, 0x2A, 0x7F, 0x55] {
            let mut s = Scrambler::new(seed);
            // First 7 scrambled bits of an all-zero prefix = keystream.
            let mut first7 = [0u8; 7];
            for b in &mut first7 {
                *b = s.next_bit();
            }
            assert_eq!(recover_seed(&first7), Some(seed));
        }
    }

    #[test]
    fn all_zero_keystream_is_unreachable() {
        assert_eq!(recover_seed(&[0; 7]), None);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn rejects_zero_seed() {
        Scrambler::new(0);
    }

    #[test]
    #[should_panic(expected = "7-bit")]
    fn rejects_wide_seed() {
        Scrambler::new(0x80);
    }
}
