//! Per-OFDM-symbol block interleaver (802.11a §18.3.5.7, extended with the
//! 802.11n per-spatial-stream frequency rotation of §20.3.11.8.2).
//!
//! The interleaver operates on one OFDM symbol's worth of coded bits per
//! spatial stream (`n_cbpss` bits). Two permutations are applied:
//!
//! 1. adjacent coded bits map onto non-adjacent subcarriers
//!    (row/column write/read over 16 columns — 13 in our 52-carrier HT
//!    configuration per the standard's `N_COL` table; we parameterize), and
//! 2. adjacent coded bits alternate between more and less significant
//!    constellation bit positions.
//!
//! For the second and later spatial streams, 802.11n adds a frequency
//! *rotation* so the same coded bit never rides the same subcarrier on two
//! streams — this is what gives spatial multiplexing its interleaving
//! diversity. We implement the standard's third permutation with
//! `N_ROT = 11` base rotation.

/// Interleaver configuration for one spatial stream of one OFDM symbol.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interleaver {
    /// Coded bits per symbol per spatial stream.
    n_cbpss: usize,
    /// Coded bits per subcarrier (1, 2, 4, 6 for BPSK..64-QAM).
    n_bpsc: usize,
    /// Number of interleaver columns (16 for legacy 48-carrier symbols,
    /// 13 for HT 52-carrier symbols).
    n_col: usize,
    /// Index of this spatial stream (0-based) for the frequency rotation.
    stream: usize,
    /// Total number of spatial streams.
    n_streams: usize,
}

impl Interleaver {
    /// Creates an interleaver.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (`n_cbpss` not divisible by
    /// `n_bpsc * n_col`, zero sizes, or `stream >= n_streams`).
    pub fn new(
        n_cbpss: usize,
        n_bpsc: usize,
        n_col: usize,
        stream: usize,
        n_streams: usize,
    ) -> Self {
        assert!(
            n_cbpss > 0 && n_bpsc > 0 && n_col > 0,
            "zero-size interleaver"
        );
        assert!(
            n_cbpss.is_multiple_of(n_bpsc * n_col),
            "N_CBPSS {n_cbpss} must be a multiple of N_BPSC {n_bpsc} * N_COL {n_col}"
        );
        assert!(
            stream < n_streams,
            "stream {stream} out of range (of {n_streams})"
        );
        Self {
            n_cbpss,
            n_bpsc,
            n_col,
            stream,
            n_streams,
        }
    }

    /// Legacy 802.11a geometry: 48 data carriers, 16 columns, single stream.
    pub fn legacy(n_cbps: usize, n_bpsc: usize) -> Self {
        Self::new(n_cbps, n_bpsc, 16, 0, 1)
    }

    /// HT (802.11n, 20 MHz) geometry: 52 data carriers, 13 columns.
    pub fn ht(n_cbpss: usize, n_bpsc: usize, stream: usize, n_streams: usize) -> Self {
        Self::new(n_cbpss, n_bpsc, 13, stream, n_streams)
    }

    /// Number of bits this interleaver permutes.
    pub fn len(&self) -> usize {
        self.n_cbpss
    }

    /// Always false (constructor enforces nonzero length).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Maps input bit index `k` to its interleaved position.
    fn map_index(&self, k: usize) -> usize {
        let n = self.n_cbpss;
        let ncol = self.n_col;
        let nrow = n / ncol;
        let s = (self.n_bpsc / 2).max(1);

        // First permutation: write row-wise, read column-wise.
        let i = nrow * (k % ncol) + k / ncol;
        // Second permutation: rotate within groups of s across the symbol.
        let j = s * (i / s) + (i + n - (ncol * i) / n) % s;
        // Third permutation (HT frequency rotation) for streams > 0:
        // rotate by J(iss) = ((iss*2) mod 3 + 3*floor(iss/3)) * N_ROT * N_BPSC.
        if self.n_streams > 1 {
            let nrot = 11usize; // 20 MHz value from the standard
            let iss = self.stream;
            let j_iss = ((iss * 2) % 3 + 3 * (iss / 3)) * nrot * self.n_bpsc;
            (j + n - j_iss % n) % n
        } else {
            j
        }
    }

    /// Interleaves one symbol's worth of bits.
    ///
    /// # Panics
    ///
    /// Panics if `bits.len() != self.len()`.
    pub fn interleave(&self, bits: &[u8]) -> Vec<u8> {
        assert_eq!(
            bits.len(),
            self.n_cbpss,
            "interleaver expects exactly one symbol"
        );
        let mut out = vec![0u8; self.n_cbpss];
        for (k, &b) in bits.iter().enumerate() {
            out[self.map_index(k)] = b;
        }
        out
    }

    /// Inverse permutation.
    pub fn deinterleave(&self, bits: &[u8]) -> Vec<u8> {
        let mut out = vec![0u8; self.n_cbpss];
        self.deinterleave_into(bits, &mut out);
        out
    }

    /// Inverse permutation written into a caller-owned slice — the
    /// allocation-free path for the legacy-symbol header decode.
    ///
    /// # Panics
    ///
    /// Panics if either slice length differs from `self.len()`.
    pub fn deinterleave_into(&self, bits: &[u8], out: &mut [u8]) {
        assert_eq!(
            bits.len(),
            self.n_cbpss,
            "deinterleaver expects exactly one symbol"
        );
        assert_eq!(
            out.len(),
            self.n_cbpss,
            "deinterleaver output must be exactly one symbol"
        );
        for (k, slot) in out.iter_mut().enumerate() {
            *slot = bits[self.map_index(k)];
        }
    }

    /// Inverse permutation over soft values (LLRs).
    pub fn deinterleave_soft(&self, llrs: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.n_cbpss];
        self.deinterleave_soft_into(llrs, &mut out);
        out
    }

    /// Inverse permutation over soft values written into a caller-owned
    /// slice — the allocation-free path for the per-symbol RX loop.
    ///
    /// # Panics
    ///
    /// Panics if either slice length differs from `self.len()`.
    pub fn deinterleave_soft_into(&self, llrs: &[f64], out: &mut [f64]) {
        assert_eq!(
            llrs.len(),
            self.n_cbpss,
            "deinterleaver expects exactly one symbol"
        );
        assert_eq!(
            out.len(),
            self.n_cbpss,
            "deinterleaver output must be exactly one symbol"
        );
        for (k, slot) in out.iter_mut().enumerate() {
            *slot = llrs[self.map_index(k)];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prbs(len: usize, mut x: u64) -> Vec<u8> {
        x |= 1;
        (0..len)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x & 1) as u8
            })
            .collect()
    }

    #[test]
    fn mapping_is_a_permutation() {
        for (ncbpss, nbpsc, ncol, ns) in [
            (48usize, 1usize, 16usize, 1usize), // legacy BPSK
            (96, 2, 16, 1),                     // legacy QPSK
            (192, 4, 16, 1),                    // legacy 16-QAM
            (288, 6, 16, 1),                    // legacy 64-QAM
            (52, 1, 13, 2),                     // HT BPSK 2 streams
            (104, 2, 13, 2),                    // HT QPSK
            (208, 4, 13, 2),
            (312, 6, 13, 2),
        ] {
            for stream in 0..ns {
                let il = Interleaver::new(ncbpss, nbpsc, ncol, stream, ns);
                let mut seen = vec![false; ncbpss];
                for k in 0..ncbpss {
                    let m = il.map_index(k);
                    assert!(m < ncbpss);
                    assert!(
                        !seen[m],
                        "collision at {m} (ncbpss={ncbpss}, stream={stream})"
                    );
                    seen[m] = true;
                }
            }
        }
    }

    #[test]
    fn roundtrip_all_geometries() {
        for (ncbpss, nbpsc) in [(52usize, 1usize), (104, 2), (208, 4), (312, 6)] {
            for stream in 0..2 {
                let il = Interleaver::ht(ncbpss, nbpsc, stream, 2);
                let bits = prbs(ncbpss, 0xABCD + stream as u64);
                assert_eq!(il.deinterleave(&il.interleave(&bits)), bits);
            }
        }
    }

    #[test]
    fn soft_roundtrip_matches_hard() {
        let il = Interleaver::ht(104, 2, 1, 2);
        let bits = prbs(104, 33);
        let interleaved = il.interleave(&bits);
        let soft: Vec<f64> = interleaved
            .iter()
            .map(|&b| if b == 0 { 1.0 } else { -1.0 })
            .collect();
        let de = il.deinterleave_soft(&soft);
        for (b, l) in bits.iter().zip(&de) {
            assert_eq!(*b == 0, *l > 0.0);
        }
    }

    #[test]
    fn adjacent_bits_separate_onto_distant_carriers() {
        // The whole point of the first permutation: consecutive coded bits
        // must land at least N_ROW/2 positions apart for BPSK.
        let il = Interleaver::legacy(48, 1);
        for k in 0..47 {
            let d = (il.map_index(k) as isize - il.map_index(k + 1) as isize).unsigned_abs();
            assert!(d >= 3, "bits {k},{} land {d} apart", k + 1);
        }
    }

    #[test]
    fn known_legacy_bpsk_mapping() {
        // 802.11a BPSK: s=1, so permutation reduces to the row/column map
        // i = 3*(k mod 16) + floor(k/16).
        let il = Interleaver::legacy(48, 1);
        for k in 0..48 {
            assert_eq!(il.map_index(k), 3 * (k % 16) + k / 16);
        }
    }

    #[test]
    fn streams_get_distinct_mappings() {
        let il0 = Interleaver::ht(104, 2, 0, 2);
        let il1 = Interleaver::ht(104, 2, 1, 2);
        let differing = (0..104)
            .filter(|&k| il0.map_index(k) != il1.map_index(k))
            .count();
        assert_eq!(differing, 104, "rotation must move every bit");
        // And the offset should be the standard's 2*11*N_BPSC rotation.
        let delta = (il0.map_index(0) as isize - il1.map_index(0) as isize).rem_euclid(104);
        assert_eq!(delta as usize, 44); // J(1) = 2 * N_ROT * N_BPSC = 2*11*2
    }

    #[test]
    #[should_panic(expected = "exactly one symbol")]
    fn wrong_length_panics() {
        Interleaver::legacy(48, 1).interleave(&[0; 47]);
    }

    #[test]
    #[should_panic(expected = "multiple of")]
    fn inconsistent_geometry_panics() {
        Interleaver::new(50, 1, 16, 0, 1);
    }
}
