//! Bit/byte conversion helpers.
//!
//! 802.11 serializes each octet least-significant bit first; every
//! bit-oriented stage in this crate (scrambler, encoder, interleaver)
//! operates on `u8` values that are 0 or 1, produced and consumed by these
//! helpers.

/// Expands bytes into bits, LSB first, one bit per output `u8` (0 or 1).
pub fn bytes_to_bits(bytes: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(bytes.len() * 8);
    for &b in bytes {
        for k in 0..8 {
            out.push((b >> k) & 1);
        }
    }
    out
}

/// Packs bits (LSB first) back into bytes.
///
/// # Panics
///
/// Panics if `bits.len()` is not a multiple of 8 or any value is not 0/1.
pub fn bits_to_bytes(bits: &[u8]) -> Vec<u8> {
    assert!(
        bits.len().is_multiple_of(8),
        "bit count {} is not a whole number of octets",
        bits.len()
    );
    bits.chunks(8)
        .map(|chunk| {
            let mut b = 0u8;
            for (k, &bit) in chunk.iter().enumerate() {
                assert!(bit <= 1, "bit value {bit} is not 0 or 1");
                b |= bit << k;
            }
            b
        })
        .collect()
}

/// Counts positions where the two bit/byte slices differ, over the common
/// prefix. Works on raw bytes too (exact inequality count).
pub fn hamming_distance(a: &[u8], b: &[u8]) -> usize {
    a.iter().zip(b.iter()).filter(|(x, y)| x != y).count()
}

/// XOR of two bits expressed as 0/1 `u8` values.
#[inline]
pub fn xor(a: u8, b: u8) -> u8 {
    a ^ b
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let data = [0x00u8, 0xFF, 0xA5, 0x3C, 0x01, 0x80];
        assert_eq!(bits_to_bytes(&bytes_to_bits(&data)), data);
    }

    #[test]
    fn lsb_first_order() {
        // 0x01 -> bit 0 set -> first bit out is 1.
        assert_eq!(bytes_to_bits(&[0x01]), vec![1, 0, 0, 0, 0, 0, 0, 0]);
        // 0x80 -> bit 7 set -> last bit out is 1.
        assert_eq!(bytes_to_bits(&[0x80]), vec![0, 0, 0, 0, 0, 0, 0, 1]);
    }

    #[test]
    fn hamming() {
        assert_eq!(hamming_distance(&[0, 1, 1, 0], &[0, 1, 0, 0]), 1);
        assert_eq!(hamming_distance(&[], &[]), 0);
        assert_eq!(hamming_distance(&[1, 1], &[0, 0, 1]), 2);
    }

    #[test]
    #[should_panic(expected = "whole number of octets")]
    fn rejects_ragged_bits() {
        bits_to_bytes(&[1, 0, 1]);
    }

    #[test]
    #[should_panic(expected = "not 0 or 1")]
    fn rejects_non_binary() {
        bits_to_bytes(&[2, 0, 0, 0, 0, 0, 0, 0]);
    }
}
