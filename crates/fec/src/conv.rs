//! Rate-1/2, constraint-length-7 convolutional encoder.
//!
//! This is the industry-standard K=7 code used by 802.11 (IEEE 802.11-2012
//! §18.3.5.6): generator polynomials g0 = 133₈ and g1 = 171₈. Each input bit
//! produces two output bits (A from g0 first, then B from g1). Higher code
//! rates are obtained by puncturing (see [`mod@crate::puncture`]).
//!
//! The encoder state is the last six input bits; appending six zero "tail"
//! bits returns it to the zero state, which is what the Viterbi decoder's
//! terminated mode assumes.

/// Constraint length of the 802.11 code.
pub const CONSTRAINT_LEN: usize = 7;
/// Number of trellis states (2^(K-1)).
pub const NUM_STATES: usize = 64;
/// Generator polynomial g0 = 133 octal.
pub const G0: u32 = 0o133;
/// Generator polynomial g1 = 171 octal.
pub const G1: u32 = 0o171;
/// Number of zero tail bits that terminate the trellis.
pub const TAIL_BITS: usize = 6;

#[inline]
fn parity(x: u32) -> u8 {
    (x.count_ones() & 1) as u8
}

/// Computes the two output bits for an input `bit` entering `state`
/// (state = previous six input bits, newest in the MSB position of 6 bits).
///
/// Returns `(a, b, next_state)`.
#[inline]
pub fn encode_step(state: u8, bit: u8) -> (u8, u8, u8) {
    debug_assert!(bit <= 1);
    debug_assert!(state < NUM_STATES as u8);
    // Shift register contents, newest bit first: [bit, s5..s0].
    let reg = ((bit as u32) << 6) | state as u32;
    let a = parity(reg & G0);
    let b = parity(reg & G1);
    let next_state = ((reg >> 1) & 0x3F) as u8;
    (a, b, next_state)
}

/// The streaming convolutional encoder.
#[derive(Clone, Debug, Default)]
pub struct ConvEncoder {
    state: u8,
}

impl ConvEncoder {
    /// Creates an encoder in the all-zero state.
    pub fn new() -> Self {
        Self { state: 0 }
    }

    /// Encodes a block of bits; output has twice the length
    /// (`[a0, b0, a1, b1, ...]`).
    pub fn encode(&mut self, bits: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(bits.len() * 2);
        for &bit in bits {
            assert!(bit <= 1, "input bit {bit} is not 0 or 1");
            let (a, b, next) = encode_step(self.state, bit);
            out.push(a);
            out.push(b);
            self.state = next;
        }
        out
    }

    /// Current 6-bit encoder state.
    pub fn state(&self) -> u8 {
        self.state
    }

    /// Resets to the all-zero state.
    pub fn reset(&mut self) {
        self.state = 0;
    }
}

/// Convenience: encodes `bits` followed by six zero tail bits, starting from
/// the zero state, so the trellis terminates at state zero. Output length is
/// `2 * (bits.len() + 6)`.
pub fn encode_terminated(bits: &[u8]) -> Vec<u8> {
    let mut enc = ConvEncoder::new();
    let mut out = enc.encode(bits);
    out.extend(enc.encode(&[0u8; TAIL_BITS]));
    debug_assert_eq!(enc.state(), 0);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_input_gives_zero_output() {
        let mut e = ConvEncoder::new();
        assert_eq!(e.encode(&[0; 10]), vec![0; 20]);
        assert_eq!(e.state(), 0);
    }

    #[test]
    fn impulse_response_is_the_generators() {
        // A single 1 followed by zeros reads out the generator taps:
        // g0 = 133o = 1011011b, g1 = 171o = 1111001b, MSB = newest bit.
        let mut e = ConvEncoder::new();
        let out = e.encode(&[1, 0, 0, 0, 0, 0, 0]);
        let a_bits: Vec<u8> = out.iter().step_by(2).copied().collect();
        let b_bits: Vec<u8> = out.iter().skip(1).step_by(2).copied().collect();
        // g0 taps from MSB (current bit) to LSB (oldest): 1,0,1,1,0,1,1
        assert_eq!(a_bits, vec![1, 0, 1, 1, 0, 1, 1]);
        // g1 taps: 1,1,1,1,0,0,1
        assert_eq!(b_bits, vec![1, 1, 1, 1, 0, 0, 1]);
    }

    #[test]
    fn encoder_is_linear() {
        let x: Vec<u8> = vec![1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1, 0];
        let y: Vec<u8> = vec![0, 1, 1, 0, 1, 0, 0, 1, 1, 0, 1, 1];
        let xy: Vec<u8> = x.iter().zip(&y).map(|(a, b)| a ^ b).collect();
        let ex = ConvEncoder::new().encode(&x);
        let ey = ConvEncoder::new().encode(&y);
        let exy = ConvEncoder::new().encode(&xy);
        let want: Vec<u8> = ex.iter().zip(&ey).map(|(a, b)| a ^ b).collect();
        assert_eq!(exy, want);
    }

    #[test]
    fn terminated_encoding_returns_to_zero_state() {
        let bits = vec![1, 1, 0, 1, 0, 0, 1];
        let out = encode_terminated(&bits);
        assert_eq!(out.len(), 2 * (bits.len() + TAIL_BITS));
    }

    #[test]
    fn state_tracks_last_six_bits() {
        let mut e = ConvEncoder::new();
        e.encode(&[1, 0, 1, 1, 0, 1]);
        // State holds the six most recent bits; after pushing b0..b5 the
        // newest (b5=1) sits in bit 5, oldest (b0=1) in bit 0.
        assert_eq!(e.state(), 0b101101);
    }

    #[test]
    #[should_panic(expected = "not 0 or 1")]
    fn rejects_non_binary_input() {
        ConvEncoder::new().encode(&[0, 2]);
    }

    #[test]
    fn free_distance_is_ten() {
        // The K=7 (133,171) code has free distance 10: no nonzero terminated
        // codeword of modest length has weight < 10. Exhaustively check all
        // short inputs.
        let mut min_weight = usize::MAX;
        for len in 1..=8usize {
            for pattern in 1u32..(1 << len) {
                let bits: Vec<u8> = (0..len).map(|i| ((pattern >> i) & 1) as u8).collect();
                let cw = encode_terminated(&bits);
                let w = cw.iter().filter(|&&b| b == 1).count();
                min_weight = min_weight.min(w);
            }
        }
        assert_eq!(min_weight, 10);
    }
}
