//! Viterbi decoding for the K=7 (133, 171) convolutional code.
//!
//! Two front ends share one trellis search:
//!
//! * [`decode_hard`] takes hard bits (0/1) and uses Hamming branch metrics;
//! * [`decode_soft`] takes log-likelihood ratios (LLRs, positive ⇒ bit 0
//!   more likely, the convention produced by `mimonet-detect`'s demappers)
//!   and uses correlation branch metrics, which is the max-likelihood
//!   metric for BPSK-like per-bit channels.
//!
//! Punctured positions are passed as *erasures*: [`Symbol::Erased`] for hard
//! input, LLR 0.0 for soft input — both contribute nothing to any branch
//! metric, which is exactly the ML treatment of depunctured bits.
//!
//! Decoding is block-oriented with a terminated trellis (six zero tail bits,
//! as produced by [`crate::conv::encode_terminated`]); `decode_*` returns the
//! data bits *without* the tail.

// Index-based loops here are the clearer expression of the math
// (matrix/carrier indexing); silence the iterator-style suggestion.
#![allow(clippy::needless_range_loop)]
use crate::conv::{encode_step, NUM_STATES, TAIL_BITS};

/// One received coded bit for hard-decision decoding.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Symbol {
    /// A received hard bit.
    Bit(u8),
    /// A punctured (never transmitted) position.
    Erased,
}

impl Symbol {
    /// Wraps a 0/1 bit.
    pub fn bit(b: u8) -> Self {
        debug_assert!(b <= 1);
        Symbol::Bit(b)
    }
}

/// Errors from the decoder front ends.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ViterbiError {
    /// Input length is odd — the rate-1/2 mother code emits bit pairs.
    OddLength(usize),
    /// Input is shorter than the six tail-bit pairs.
    TooShort(usize),
}

impl std::fmt::Display for ViterbiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ViterbiError::OddLength(n) => {
                write!(f, "coded input length {n} is odd; expected (A,B) pairs")
            }
            ViterbiError::TooShort(n) => {
                write!(f, "coded input length {n} too short for a terminated block")
            }
        }
    }
}

impl std::error::Error for ViterbiError {}

/// Precomputed trellis: for each (state, input bit) the output pair and next
/// state. Built once lazily; 64 states is tiny.
struct Trellis {
    // [state][input] -> (a, b, next)
    step: [[(u8, u8, u8); 2]; NUM_STATES],
}

impl Trellis {
    fn new() -> Self {
        let mut step = [[(0u8, 0u8, 0u8); 2]; NUM_STATES];
        for (s, row) in step.iter_mut().enumerate() {
            for (bit, slot) in row.iter_mut().enumerate() {
                *slot = encode_step(s as u8, bit as u8);
            }
        }
        Self { step }
    }
}

fn trellis() -> &'static Trellis {
    use std::sync::OnceLock;
    static T: OnceLock<Trellis> = OnceLock::new();
    T.get_or_init(Trellis::new)
}

/// Core Viterbi search maximizing a per-branch *reward*.
///
/// `rewards(t)` must return, for trellis step `t`, a closure-computable pair
/// reward for hypothesized output bits `(a, b)`. We pass the per-position
/// bit rewards and combine inside.
fn search(
    num_steps: usize,
    bit_reward: impl Fn(usize, u8) -> f64, // (coded bit index, hypothesized bit) -> reward
    terminated: bool,
) -> Vec<u8> {
    let tr = trellis();
    const NEG: f64 = f64::NEG_INFINITY;

    let mut metric = vec![NEG; NUM_STATES];
    metric[0] = 0.0; // encoder starts in the zero state
                     // survivor[t][next_state] = (prev_state, input bit)
    let mut survivor: Vec<[(u8, u8); NUM_STATES]> = Vec::with_capacity(num_steps);

    let mut next_metric = vec![NEG; NUM_STATES];
    for t in 0..num_steps {
        next_metric.fill(NEG);
        let mut surv = [(0u8, 0u8); NUM_STATES];
        for s in 0..NUM_STATES {
            let m = metric[s];
            if m == NEG {
                continue;
            }
            for bit in 0..2u8 {
                let (a, b, ns) = tr.step[s][bit as usize];
                let r = bit_reward(2 * t, a) + bit_reward(2 * t + 1, b);
                let cand = m + r;
                if cand > next_metric[ns as usize] {
                    next_metric[ns as usize] = cand;
                    surv[ns as usize] = (s as u8, bit);
                }
            }
        }
        survivor.push(surv);
        std::mem::swap(&mut metric, &mut next_metric);
    }

    // Final state: zero for terminated blocks, otherwise best metric.
    let mut state = if terminated {
        0usize
    } else {
        metric
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i)
            .unwrap_or(0)
    };

    let mut bits = vec![0u8; num_steps];
    for t in (0..num_steps).rev() {
        let (prev, bit) = survivor[t][state];
        bits[t] = bit;
        state = prev as usize;
    }
    bits
}

/// Hard-decision decoding of a terminated block.
///
/// `coded` holds the (possibly depunctured) coded stream as
/// `[a0, b0, a1, b1, ...]` with erasures at punctured positions. Returns the
/// decoded data bits with the six tail bits stripped.
pub fn decode_hard(coded: &[Symbol]) -> Result<Vec<u8>, ViterbiError> {
    if !coded.len().is_multiple_of(2) {
        return Err(ViterbiError::OddLength(coded.len()));
    }
    let steps = coded.len() / 2;
    if steps < TAIL_BITS {
        return Err(ViterbiError::TooShort(coded.len()));
    }
    let bits = search(
        steps,
        |idx, hyp| match coded[idx] {
            Symbol::Erased => 0.0,
            Symbol::Bit(rx) => {
                if rx == hyp {
                    1.0
                } else {
                    0.0
                }
            }
        },
        true,
    );
    Ok(bits[..steps - TAIL_BITS].to_vec())
}

/// Hard-decision decoding of an *unterminated* stream: the trellis may end
/// in any state (the survivor with the best metric wins) and **all** input
/// positions decode to output bits — nothing is stripped.
///
/// This is the mode for the 802.11 DATA field, whose six tail bits sit
/// between the PSDU and the scrambled pad bits, so the encoder does not
/// finish in the zero state.
pub fn decode_hard_unterminated(coded: &[Symbol]) -> Result<Vec<u8>, ViterbiError> {
    if !coded.len().is_multiple_of(2) {
        return Err(ViterbiError::OddLength(coded.len()));
    }
    let steps = coded.len() / 2;
    if steps == 0 {
        return Ok(Vec::new());
    }
    Ok(search(
        steps,
        |idx, hyp| match coded[idx] {
            Symbol::Erased => 0.0,
            Symbol::Bit(rx) => {
                if rx == hyp {
                    1.0
                } else {
                    0.0
                }
            }
        },
        false,
    ))
}

/// Soft-decision decoding of an unterminated stream; see
/// [`decode_hard_unterminated`].
pub fn decode_soft_unterminated(llrs: &[f64]) -> Result<Vec<u8>, ViterbiError> {
    if !llrs.len().is_multiple_of(2) {
        return Err(ViterbiError::OddLength(llrs.len()));
    }
    let steps = llrs.len() / 2;
    if steps == 0 {
        return Ok(Vec::new());
    }
    Ok(search(
        steps,
        |idx, hyp| {
            let l = llrs[idx];
            if hyp == 0 {
                0.5 * l
            } else {
                -0.5 * l
            }
        },
        false,
    ))
}

/// Soft-decision decoding of a terminated block.
///
/// `llrs[i]` is the log-likelihood ratio of coded bit `i`:
/// `log P(bit=0) - log P(bit=1)` (positive ⇒ 0 more likely). Punctured
/// positions must carry LLR `0.0`. Returns data bits without the tail.
pub fn decode_soft(llrs: &[f64]) -> Result<Vec<u8>, ViterbiError> {
    if !llrs.len().is_multiple_of(2) {
        return Err(ViterbiError::OddLength(llrs.len()));
    }
    let steps = llrs.len() / 2;
    if steps < TAIL_BITS {
        return Err(ViterbiError::TooShort(llrs.len()));
    }
    let bits = search(
        steps,
        // Reward of hypothesizing bit value `hyp` at position `idx`:
        // +llr/2 for 0, -llr/2 for 1 (constant offsets cancel).
        |idx, hyp| {
            let l = llrs[idx];
            if hyp == 0 {
                0.5 * l
            } else {
                -0.5 * l
            }
        },
        true,
    );
    Ok(bits[..steps - TAIL_BITS].to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv::encode_terminated;

    fn to_symbols(bits: &[u8]) -> Vec<Symbol> {
        bits.iter().map(|&b| Symbol::bit(b)).collect()
    }

    fn pattern(len: usize, seed: u64) -> Vec<u8> {
        // Small deterministic PRBS for tests.
        let mut x = seed | 1;
        (0..len)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x & 1) as u8
            })
            .collect()
    }

    #[test]
    fn clean_roundtrip_hard() {
        let data = pattern(200, 42);
        let coded = encode_terminated(&data);
        let decoded = decode_hard(&to_symbols(&coded)).unwrap();
        assert_eq!(decoded, data);
    }

    #[test]
    fn clean_roundtrip_soft() {
        let data = pattern(177, 7);
        let coded = encode_terminated(&data);
        let llrs: Vec<f64> = coded
            .iter()
            .map(|&b| if b == 0 { 4.0 } else { -4.0 })
            .collect();
        let decoded = decode_soft(&llrs).unwrap();
        assert_eq!(decoded, data);
    }

    #[test]
    fn corrects_scattered_bit_errors() {
        // Free distance 10 ⇒ any 4 errors sufficiently separated correct.
        let data = pattern(120, 99);
        let mut coded = encode_terminated(&data);
        for &pos in &[5usize, 60, 130, 200] {
            coded[pos] ^= 1;
        }
        let decoded = decode_hard(&to_symbols(&coded)).unwrap();
        assert_eq!(decoded, data);
    }

    #[test]
    fn corrects_burst_of_four_within_capability() {
        let data = pattern(100, 3);
        let mut coded = encode_terminated(&data);
        // Four errors in a short span: within d_free/2 for this code only if
        // spread over ≥ the traceback span; use pairs 40,41 and 80,81.
        coded[40] ^= 1;
        coded[41] ^= 1;
        coded[80] ^= 1;
        coded[81] ^= 1;
        assert_eq!(decode_hard(&to_symbols(&coded)).unwrap(), data);
    }

    #[test]
    fn erasures_decode_like_punctured_bits() {
        let data = pattern(90, 17);
        let coded = encode_terminated(&data);
        let mut syms = to_symbols(&coded);
        // Erase every 6th coded bit (a rate-ish 6/5 puncture — well within
        // the code's margin on a clean channel).
        for i in (0..syms.len()).step_by(6) {
            syms[i] = Symbol::Erased;
        }
        assert_eq!(decode_hard(&syms).unwrap(), data);
    }

    #[test]
    fn soft_zero_llrs_at_punctures() {
        let data = pattern(90, 21);
        let coded = encode_terminated(&data);
        let mut llrs: Vec<f64> = coded
            .iter()
            .map(|&b| if b == 0 { 2.0 } else { -2.0 })
            .collect();
        for i in (0..llrs.len()).step_by(6) {
            llrs[i] = 0.0;
        }
        assert_eq!(decode_soft(&llrs).unwrap(), data);
    }

    #[test]
    fn soft_outperforms_hard_with_weak_bits() {
        // Flip three bits but mark them as low-confidence in the soft input;
        // soft decoding must recover, as must hard (3 < d_free/2), but a
        // soft decoder with *confidence* on correct bits and doubt on
        // errors converges with far fewer metric ties.
        let data = pattern(60, 5);
        let coded = encode_terminated(&data);
        let mut llrs: Vec<f64> = coded
            .iter()
            .map(|&b| if b == 0 { 5.0 } else { -5.0 })
            .collect();
        for &pos in &[10usize, 50, 90] {
            // wrong sign but small magnitude
            llrs[pos] = -llrs[pos].signum() * 0.2;
        }
        assert_eq!(decode_soft(&llrs).unwrap(), data);
    }

    #[test]
    fn empty_data_block() {
        // Only the 6 tail bits.
        let coded = encode_terminated(&[]);
        assert_eq!(coded.len(), 12);
        assert_eq!(decode_hard(&to_symbols(&coded)).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn error_cases() {
        assert_eq!(
            decode_hard(&[Symbol::bit(0)]),
            Err(ViterbiError::OddLength(1))
        );
        assert_eq!(
            decode_hard(&to_symbols(&[0, 0])),
            Err(ViterbiError::TooShort(2))
        );
        assert_eq!(decode_soft(&[0.0; 3]), Err(ViterbiError::OddLength(3)));
        assert_eq!(decode_soft(&[0.0; 4]), Err(ViterbiError::TooShort(4)));
    }

    #[test]
    fn unterminated_decodes_full_stream() {
        // Encode WITHOUT tail bits: the encoder ends in a data-dependent
        // state; the unterminated decoder must still recover everything.
        let data = pattern(150, 31);
        let coded = crate::conv::ConvEncoder::new().encode(&data);
        let got = decode_hard_unterminated(&to_symbols(&coded)).unwrap();
        assert_eq!(got, data);
        let llrs: Vec<f64> = coded
            .iter()
            .map(|&b| if b == 0 { 3.0 } else { -3.0 })
            .collect();
        assert_eq!(decode_soft_unterminated(&llrs).unwrap(), data);
    }

    #[test]
    fn unterminated_corrects_errors_midstream() {
        let data = pattern(150, 8);
        let mut coded = crate::conv::ConvEncoder::new().encode(&data);
        for &p in &[40usize, 120, 200] {
            coded[p] ^= 1;
        }
        assert_eq!(decode_hard_unterminated(&to_symbols(&coded)).unwrap(), data);
    }

    #[test]
    fn unterminated_empty_input() {
        assert_eq!(decode_hard_unterminated(&[]).unwrap(), Vec::<u8>::new());
        assert_eq!(decode_soft_unterminated(&[]).unwrap(), Vec::<u8>::new());
        assert_eq!(
            decode_soft_unterminated(&[1.0]),
            Err(ViterbiError::OddLength(1))
        );
    }

    #[test]
    fn all_erased_still_terminates() {
        // With no channel information the decoder must still return *some*
        // path ending in state 0 (all-zero data is such a path).
        let syms = vec![Symbol::Erased; 2 * (20 + TAIL_BITS)];
        let out = decode_hard(&syms).unwrap();
        assert_eq!(out.len(), 20);
    }
}
